# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/tmk_system_test[1]_include.cmake")
include("/root/repo/build2/tests/core_runtime_test[1]_include.cmake")
include("/root/repo/build2/tests/mpi_test[1]_include.cmake")
include("/root/repo/build2/tests/apps_test[1]_include.cmake")
include("/root/repo/build2/tests/common_test[1]_include.cmake")
include("/root/repo/build2/tests/sim_test[1]_include.cmake")
include("/root/repo/build2/tests/net_test[1]_include.cmake")
include("/root/repo/build2/tests/trace_test[1]_include.cmake")
include("/root/repo/build2/tests/tmk_unit_test[1]_include.cmake")
include("/root/repo/build2/tests/translate_test[1]_include.cmake")
