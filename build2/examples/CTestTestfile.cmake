# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build2/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(translator_full_app_sor "/root/repo/build2/examples/sor_translated")
set_tests_properties(translator_full_app_sor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(translator_demo_pi "/root/repo/build2/examples/translator_demo")
set_tests_properties(translator_demo_pi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;39;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(translator_demo_histogram "/root/repo/build2/examples/histogram_demo")
set_tests_properties(translator_demo_histogram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;40;add_test;/root/repo/examples/CMakeLists.txt;0;")
