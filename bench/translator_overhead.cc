// Translator/fork-join overhead: OpenMP-style regions vs hand-written
// TreadMarks code.
//
// The paper's §6 cites the authors' earlier result ([9]) that
// OpenMP-translated programs run within 17% of hand-written TreadMarks
// versions — the compiler and the fork-join model add very little. This
// bench reproduces that comparison on SOR and MGS: the "hand" variants are
// written directly against the Tmk facade, fork once for the entire
// computation and synchronize with raw barriers (no per-loop fork/join, no
// schedule machinery).
#include <cstdio>

#include <cmath>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "tmk/tmk_api.hpp"

namespace {

using namespace omsp;
using namespace omsp::bench;

// Hand-written TreadMarks SOR: one fork, block rows, two barriers/iteration.
double hand_sor(const apps::sor::Params& p) {
  tmk::Tmk tmk(paper_config(tmk::Mode::kThread));
  tmk.startup();
  const std::int64_t stride = p.cols + 2;
  auto* grid = static_cast<double*>(
      tmk.malloc(sizeof(double) * (p.rows + 2) * stride));
  const GlobalAddr addr = tmk.global_addr(grid);
  for (std::int64_t i = 0; i < (p.rows + 2) * stride; ++i) grid[i] = 0;
  for (std::int64_t c = 0; c < stride; ++c) {
    grid[c] = p.boundary;
    grid[(p.rows + 1) * stride + c] = p.boundary;
  }
  for (std::int64_t r = 0; r < p.rows + 2; ++r) {
    grid[r * stride] = p.boundary;
    grid[r * stride + p.cols + 1] = p.boundary;
  }

  tmk.system().reset_stats();
  const double t0 = tmk.system().master_time_us();
  tmk.fork([&](unsigned proc) {
    double* g = tmk.from_global<double>(addr);
    const auto range = block_partition(
        static_cast<std::uint64_t>(p.rows), tmk.nprocs(), proc);
    const std::int64_t lo = 1 + static_cast<std::int64_t>(range.begin);
    const std::int64_t hi = 1 + static_cast<std::int64_t>(range.end);
    for (int it = 0; it < p.iters; ++it) {
      for (int color = 0; color < 2; ++color) {
        for (std::int64_t r = lo; r < hi; ++r) {
          double* row = g + r * stride;
          for (std::int64_t c = 1 + ((r + color) & 1); c <= p.cols; c += 2)
            row[c] = 0.25 * (row[c - 1] + row[c + 1] + row[c - stride] +
                             row[c + stride]);
        }
        tmk.barrier();
      }
    }
  });
  return tmk.system().master_time_us() - t0;
}

// Hand-written TreadMarks MGS: one fork, owner-normalizes, raw barriers.
double hand_mgs(const apps::mgs::Params& p) {
  tmk::Tmk tmk(paper_config(tmk::Mode::kThread));
  tmk.startup();
  auto* a = static_cast<double*>(tmk.malloc(sizeof(double) * p.n * p.dim));
  const GlobalAddr addr = tmk.global_addr(a);
  {
    omsp::Rng rng(p.seed);
    for (std::int64_t i = 0; i < p.n * p.dim; ++i)
      a[i] = rng.next_double(-1.0, 1.0);
    for (std::int64_t i = 0; i < p.n; ++i) a[i * p.dim + (i % p.dim)] += 4.0;
  }

  tmk.system().reset_stats();
  const double t0 = tmk.system().master_time_us();
  tmk.fork([&](unsigned proc) {
    double* m = tmk.from_global<double>(addr);
    const unsigned np = tmk.nprocs();
    for (std::int64_t i = 0; i < p.n; ++i) {
      if (i % np == proc) { // owner normalizes (vs master in the OpenMP port)
        double* vi = m + i * p.dim;
        double norm = 0;
        for (std::int64_t k = 0; k < p.dim; ++k) norm += vi[k] * vi[k];
        norm = std::sqrt(norm);
        for (std::int64_t k = 0; k < p.dim; ++k) vi[k] /= norm;
      }
      tmk.barrier();
      const double* vi = m + i * p.dim;
      for (std::int64_t j = i + 1; j < p.n; ++j) {
        if (static_cast<unsigned>(j % np) != proc) continue;
        double* vj = m + j * p.dim;
        double proj = 0;
        for (std::int64_t k = 0; k < p.dim; ++k) proj += vj[k] * vi[k];
        for (std::int64_t k = 0; k < p.dim; ++k) vj[k] -= proj * vi[k];
      }
      tmk.barrier();
    }
  });
  return tmk.system().master_time_us() - t0;
}

} // namespace

int main() {
  using namespace omsp::bench;

  std::printf("Translator + fork-join overhead vs hand-written TreadMarks\n");
  std::printf("(paper's related work [9]: OpenMP within 17%% of hand-written)\n");
  print_rule(70);
  std::printf("%-8s %16s %16s %12s\n", "app", "OpenMP (s)", "hand Tmk (s)",
              "overhead");
  print_rule(70);

  {
    const auto p = sor_params();
    const double omp =
        omsp::apps::sor::run_omp(p, paper_config(omsp::tmk::Mode::kThread))
            .time_us;
    const double hand = hand_sor(p);
    std::printf("%-8s %16.2f %16.2f %+10.0f%%\n", "SOR", omp * 1e-6,
                hand * 1e-6, 100.0 * (omp / hand - 1.0));
  }
  {
    const auto p = mgs_params();
    const double omp =
        omsp::apps::mgs::run_omp(p, paper_config(omsp::tmk::Mode::kThread))
            .time_us;
    const double hand = hand_mgs(p);
    std::printf("%-8s %16.2f %16.2f %+10.0f%%\n", "MGS", omp * 1e-6,
                hand * 1e-6, 100.0 * (omp / hand - 1.0));
  }
  print_rule(70);
  std::printf("Overhead sources: one fork/join pair per parallel loop versus "
              "a single fork,\nplus worksharing bookkeeping. The hand-MGS "
              "also uses owner-normalization,\nremoving the paper-noted "
              "master bottleneck.\n");
  return 0;
}
