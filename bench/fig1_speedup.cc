// Figure 1 — Speedup comparison between the OpenMP/original, OpenMP/thread,
// and MPI versions of the applications on an SP2 with four four-processor
// SMP nodes.
//
// Speedup = simulated sequential time / simulated parallel time, exactly how
// the paper computes it from Table 1's sequential baselines. The paper's
// qualitative findings to reproduce:
//   * MPI fastest overall; OpenMP/thread within 7-30% of MPI;
//   * OpenMP/thread >= OpenMP/original for all applications except 3D-FFT
//     (up to ~30% better for the low computation/communication group TSP and
//     MGS; roughly equal for Barnes, Water, SOR);
//   * 3D-FFT thread version slightly slower (paper: 8%, attributed to an AIX
//     artifact their platform adds; our simulator has no such artifact so
//     parity or a small win is the expected outcome here).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace omsp;
  using namespace omsp::bench;

  const BenchArgs args = parse_bench_args(argc, argv);

  std::printf("Figure 1: speedups on topology %s (%u-way)\n",
              paper_topology().spec().c_str(), paper_topology().nprocs());
  print_rule(86);
  std::printf("%-8s %12s %14s %14s %8s   %s\n", "Appl.", "OpenMP/orig",
              "OpenMP/thread", "MPI", "thr/MPI", "thread vs orig");
  print_rule(86);

  JsonObject apps_obj;
  const double scale = paper_cost().cpu_scale;
  for (const auto& app : all_apps()) {
    const auto seq = app.run_seq(scale);
    const auto orig = app.run_omp(paper_config(tmk::Mode::kProcess));
    const auto thrd = app.run_omp(paper_config(tmk::Mode::kThread));
    const auto mpi = app.run_mpi(paper_topology(), paper_cost());

    const double s_orig = seq.time_us / orig.time_us;
    const double s_thrd = seq.time_us / thrd.time_us;
    const double s_mpi = seq.time_us / mpi.time_us;
    std::printf("%-8s %12.2f %14.2f %14.2f %7.0f%%   %+.0f%%\n", app.name,
                s_orig, s_thrd, s_mpi, 100.0 * s_thrd / s_mpi,
                100.0 * (s_thrd / s_orig - 1.0));

    JsonObject row;
    row.add("seq_us", seq.time_us);
    row.add("orig", run_json(orig));
    row.add("thread", run_json(thrd));
    row.add("mpi", run_json(mpi));
    apps_obj.add(app.name, row.str());
  }
  print_rule(86);
  if (!args.json_path.empty()) {
    JsonObject root;
    root.add_string("bench", "fig1_speedup");
    root.add("smoke", args.smoke);
    root.add("apps", apps_obj.str());
    write_json_file(args.json_path, root.str());
  }
  std::printf("thr/MPI: OpenMP/thread speedup as %% of MPI's (paper: "
              "70-93%%).\n");
  std::printf("thread vs orig: improvement of thread over original (paper: "
              "up to +30%%, FFT -8%%).\n");
  return 0;
}
