// Speedup curves: speedup vs processor count for each system, the classic
// scaling view behind Figure 1's 16-way bars. Uses SOR (regular, stencil)
// and Water (reduction-heavy) as the probes.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace omsp;
  using namespace omsp::bench;

  struct Point {
    std::uint32_t nodes, ppn;
  };
  const Point points[] = {{1, 1}, {1, 2}, {1, 4}, {2, 4}, {4, 4}};

  const auto sor_p = sor_params();
  const auto water_p = water_params();

  for (const char* app : {"SOR", "Water"}) {
    const apps::Result seq = (app[0] == 'S')
                                 ? apps::sor::run_seq(sor_p, paper_cost().cpu_scale)
                                 : apps::water::run_seq(water_p,
                                                        paper_cost().cpu_scale);
    std::printf("\n%s — speedup vs processors (sequential %.2f s)\n", app,
                seq.time_us * 1e-6);
    print_rule(72);
    std::printf("%-10s %12s %14s %12s\n", "procs", "OpenMP/orig",
                "OpenMP/thread", "MPI");
    print_rule(72);
    for (const auto& pt : points) {
      const sim::Topology topo(pt.nodes, pt.ppn);
      auto run_one = [&](tmk::Mode mode) {
        tmk::Config cfg = paper_config(mode, topo);
        return (app[0] == 'S') ? apps::sor::run_omp(sor_p, cfg)
                               : apps::water::run_omp(water_p, cfg);
      };
      const auto orig = run_one(tmk::Mode::kProcess);
      const auto thrd = run_one(tmk::Mode::kThread);
      const auto mpi = (app[0] == 'S')
                           ? apps::sor::run_mpi(sor_p, topo, paper_cost())
                           : apps::water::run_mpi(water_p, topo, paper_cost());
      std::printf("%2ux%-7u %12.2f %14.2f %12.2f\n", pt.nodes, pt.ppn,
                  seq.time_us / orig.time_us, seq.time_us / thrd.time_us,
                  seq.time_us / mpi.time_us);
    }
    print_rule(72);
  }
  std::printf("\nAt one node the two OpenMP systems differ only by the alias "
              "mapping and the\nintra-node message elimination; the gap "
              "widens with node count as the paper's\nanalysis predicts.\n");
  return 0;
}
