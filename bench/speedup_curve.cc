// Speedup curves: speedup vs processor count for each system, the classic
// scaling view behind Figure 1's 16-way bars. Uses SOR (regular, stencil)
// and Water (reduction-heavy) as the probes.
//
// Two modes:
//  * default — the paper-scale sweep up to the SP2's 4x4, printed as a
//    table (unchanged seed behavior);
//  * --scale — the beyond-the-SP2 sweep (EXPERIMENTS.md "Scalability beyond
//    the SP2"): weak-scaled SOR over 16-, 64- and 256-node machines, flat
//    crossbar vs two-level fat tree, MPI at every size plus SDSM thread
//    mode at the sizes a single host can carry. --seed <n> runs the MPI
//    sweep over a lossy network (seeded per-link loss schedules, no jitter)
//    so the curves are a pure function of the seed; --json emits the curves
//    keyed by topology spec for the BENCH_pr10.json drift check, plus the
//    incast/saturation probes whose per-stage wait shape bench_smoke.sh
//    asserts (spine saturates before edge NICs on the fat trees).
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "net/router.hpp"
#include "net/transport.hpp"
#include "sim/virtual_clock.hpp"

namespace {

using namespace omsp;
using namespace omsp::bench;

// Weak scaling: the grid grows with the machine so per-rank work stays
// constant; the communication share then isolates what the topology costs.
apps::sor::Params scaled_sor(std::uint32_t nprocs) {
  apps::sor::Params p;
  p.rows = 8 * static_cast<std::int64_t>(nprocs);
  p.cols = g_smoke ? 64 : 128;
  p.iters = g_smoke ? 2 : 4;
  return p;
}

// One collective micro-episode under an explicit engine selection: modeled
// time per operation (cpu_scale is zero in the caller's cost model, so the
// number is a pure function of topology x schedule x cost knobs).
double coll_micro_us(const sim::Topology& topo, const sim::CostModel& cost,
                     bool tree, bool barrier_op, std::size_t payload_bytes,
                     int iters) {
  mpi::MpiWorld w(topo, cost);
  coll::Options opts;
  opts.tree = tree;
  // Compare the schedules themselves at every size; the size switchover is
  // the production default, but a benchmark that silently fell back to flat
  // would chart the same engine twice.
  opts.flat_max_bytes = 0;
  w.set_coll(opts);
  w.run([&](mpi::Comm& c) {
    if (barrier_op) {
      for (int i = 0; i < iters; ++i) c.barrier();
    } else {
      std::vector<double> buf(payload_bytes / sizeof(double),
                              static_cast<double>(c.rank()));
      for (int i = 0; i < iters; ++i)
        c.allreduce(buf.data(), buf.size(), std::plus<double>{});
    }
  });
  return w.makespan_us() / iters;
}

// --- saturation probes: which tier of the machine queues first -------------
// One request per sender at modeled time zero (each sender gets a fresh
// virtual clock), so the per-stage wait boards show WHERE the machine
// saturates, not just by how much. Requests reserve per-segment busy windows
// at the sp2-calibrated switch hold; a sender whose modeled time lands
// inside a segment's window queues behind it at that stage's rate.
struct IncastPoint {
  double makespan_us = 0; // max sender completion (latency + queueing)
  std::vector<net::InlineTransport::StageWait> waits;

  double stage_wait_us(std::size_t stage) const {
    return stage < waits.size() ? waits[stage].wait_us : 0.0;
  }
  // Edge tier = stage 1 (node NICs / endpoint links); spine = everything
  // above it (switch-to-switch trunks). Flat machines have no spine tiers.
  double edge_wait_us() const { return stage_wait_us(1); }
  double spine_wait_us() const {
    double s = 0;
    for (std::size_t i = 2; i < waits.size(); ++i) s += waits[i].wait_us;
    return s;
  }
};

// `shift` sends node i's one page-sized request to node (i + n/2) % n — a
// cross-switch permutation where every message climbs to the top of the
// tree; otherwise every sender targets rank 0 (the classic incast).
IncastPoint run_incast(const sim::Topology& topo, bool shift) {
  sim::CostModel cost = paper_cost();
  cost.cpu_scale = 0;
  cost.link_contention_us = 30.0; // the sp2cal switch hold (docs/TOPOLOGY.md)
  const std::uint32_t n = topo.nprocs();
  std::vector<NodeId> ctx(n);
  for (std::uint32_t i = 0; i < n; ++i) ctx[i] = topo.node_of_rank(i);
  net::Router router(std::move(ctx), cost, topo);
  struct Sink : net::MessageHandler {
    void handle(ContextId, net::MsgType, ByteReader&, ByteWriter&) override {}
  } sink;
  for (std::uint32_t i = 0; i < n; ++i) router.bind_handler(i, &sink);

  IncastPoint out;
  std::vector<std::uint8_t> page(4096, 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t dst = shift ? (i + n / 2) % n : 0u;
    if (dst == i) continue;
    sim::VirtualClock clk(0.0);
    sim::VirtualClock::Binder bind(&clk);
    ByteWriter req;
    req.put_span<std::uint8_t>({page.data(), page.size()});
    (void)router.transport().call(
        net::Envelope::request(i, dst, net::MsgType::kDiffRequest, req));
    out.makespan_us = std::max(out.makespan_us, clk.now_us());
  }
  out.waits =
      dynamic_cast<net::InlineTransport&>(router.transport()).stage_waits();
  return out;
}

std::string point_json(const apps::Result& r, std::uint32_t nprocs) {
  JsonObject o;
  o.add("nprocs", static_cast<std::uint64_t>(nprocs));
  o.add("time_us", r.time_us);
  o.add("msgs", r.stats[Counter::kMsgsSent]);
  o.add("bytes", r.stats[Counter::kBytesSent]);
  o.add("offnode_msgs", r.stats[Counter::kMsgsOffNode]);
  o.add("offnode_bytes", r.stats[Counter::kBytesOffNode]);
  return o.str();
}

int run_scale(const BenchArgs& args) {
  // Loss-only fault injection: per-link seeded schedules keep the makespan
  // of named-source programs (SOR is one) a deterministic function of the
  // seed. Jitter/duplication draws would come from a host-order-shared
  // generator, so they stay off.
  net::PerturbOptions perturb;
  if (args.seed != 0) {
    perturb.enabled = true;
    perturb.seed = args.seed;
    perturb.jitter_max_us = 0;
    perturb.duplicate_prob = 0;
    perturb.reorder_prob = 0;
    perturb.loss_prob = 0.02;
  }

  // Communication-bound curves: compute is charged at zero scale, so an MPI
  // makespan is a pure function of the modeled network (topology stages +
  // seeded loss schedule) — bit-identical across runs, which the smoke
  // script verifies by rerunning seed 1. With host CPU in the clock (the
  // default cpu_scale) the times would carry host noise and the topology
  // signal at these problem sizes would drown in it.
  sim::CostModel mpi_cost = paper_cost();
  mpi_cost.cpu_scale = 0;

  const sim::Topology mpi_topos[] = {
      sim::Topology::flat_switch(16, 2),  sim::Topology::fat_tree(2, 4, 2),
      sim::Topology::flat_switch(64, 2),  sim::Topology::fat_tree(2, 8, 2),
      sim::Topology::flat_switch(256, 2), sim::Topology::fat_tree(2, 16, 2),
  };
  // SDSM thread mode: one context per node. 256 contexts would mean 256
  // full DSM address spaces in one host process, so the DSM curve stops at
  // 64 nodes; MPI covers the full sweep.
  const sim::Topology dsm_topos[] = {
      sim::Topology::flat_switch(16, 2),
      sim::Topology::flat_switch(64, 2),
  };

  std::printf("Weak-scaled SOR across machine shapes (rows = 8 x nprocs)\n");
  if (args.seed != 0)
    std::printf("MPI sweep over lossy links: seed %llu, loss 0.02/delivery\n",
                static_cast<unsigned long long>(args.seed));
  print_rule(72);
  std::printf("%-14s %7s %14s %12s %14s\n", "topology", "procs", "time (s)",
              "msgs", "offnode MB");
  print_rule(72);

  std::string mpi_json, dsm_json;
  for (const auto& topo : mpi_topos) {
    const auto p = scaled_sor(topo.nprocs());
    const auto r = apps::sor::run_mpi(p, topo, mpi_cost, perturb);
    std::printf("mpi %-10s %7u %14.3f %12llu %14.2f\n", topo.spec().c_str(),
                topo.nprocs(), r.time_us * 1e-6,
                static_cast<unsigned long long>(r.stats[Counter::kMsgsSent]),
                static_cast<double>(r.stats[Counter::kBytesOffNode]) / 1e6);
    if (!mpi_json.empty()) mpi_json += ", ";
    mpi_json += "\"" + topo.spec() + "\": " + point_json(r, topo.nprocs());
  }
  for (const auto& topo : dsm_topos) {
    tmk::Config cfg = paper_config(tmk::Mode::kThread, topo);
    cfg.heap_bytes = 8u << 20;
    const auto p = scaled_sor(topo.nprocs());
    const auto r = apps::sor::run_omp(p, cfg);
    std::printf("dsm %-10s %7u %14.3f %12llu %14.2f\n", topo.spec().c_str(),
                topo.nprocs(), r.time_us * 1e-6,
                static_cast<unsigned long long>(r.stats[Counter::kMsgsSent]),
                static_cast<double>(r.stats[Counter::kBytesOffNode]) / 1e6);
    if (!dsm_json.empty()) dsm_json += ", ";
    dsm_json += "\"" + topo.spec() + "\": " + point_json(r, topo.nprocs());
  }
  print_rule(72);
  std::printf("\nFlat vs fat tree at equal node count isolates the spine "
              "tiers: same traffic,\nextra per-hop cost on the cross-switch "
              "share of it. The MPI rows are\ndeterministic (bit-identical "
              "across runs, per seed); the DSM rows carry the\nusual "
              "host-race tolerance (EXPERIMENTS.md).\n");

  // --- hierarchical collectives: central/flat vs tree ------------------------
  // Injection occupancy on (per-byte only): a sender holds its link for
  // bytes * occupancy_byte_us per message, so the flat star's root serializes
  // p-1 arrivals while the tree spreads them over node and switch leaders.
  // Latency-dominated small payloads still favor the flat star (fewer
  // chained hops) — the crossover OMSP_COLL=tree:<bytes> is tuned by.
  sim::CostModel coll_cost = paper_cost();
  coll_cost.cpu_scale = 0;
  coll_cost.occupancy_byte_us = 0.02;
  const int coll_iters = g_smoke ? 1 : 4;
  constexpr std::size_t kSmall = 8, kLarge = 64 * 1024;

  std::printf("\nCollectives on the fat trees: modeled us per operation\n");
  print_rule(72);
  std::printf("%-12s %6s %10s %10s %12s %12s %12s %12s\n", "topology", "ranks",
              "barr-ctr", "barr-tree", "ar8-flat", "ar8-tree", "ar64k-flat",
              "ar64k-tree");
  print_rule(72);
  std::string coll_json;
  for (const auto& topo :
       {sim::Topology::fat_tree(2, 4, 2), sim::Topology::fat_tree(2, 8, 2),
        sim::Topology::fat_tree(2, 16, 2)}) {
    const double barr_central =
        coll_micro_us(topo, coll_cost, false, true, 0, coll_iters);
    const double barr_tree =
        coll_micro_us(topo, coll_cost, true, true, 0, coll_iters);
    const double ar8_flat =
        coll_micro_us(topo, coll_cost, false, false, kSmall, coll_iters);
    const double ar8_tree =
        coll_micro_us(topo, coll_cost, true, false, kSmall, coll_iters);
    const double ar64k_flat =
        coll_micro_us(topo, coll_cost, false, false, kLarge, coll_iters);
    const double ar64k_tree =
        coll_micro_us(topo, coll_cost, true, false, kLarge, coll_iters);
    std::printf("%-12s %6u %10.1f %10.1f %12.1f %12.1f %12.1f %12.1f\n",
                topo.spec().c_str(), topo.nprocs(), barr_central, barr_tree,
                ar8_flat, ar8_tree, ar64k_flat, ar64k_tree);
    JsonObject o;
    o.add("nprocs", static_cast<std::uint64_t>(topo.nprocs()));
    o.add("barrier_central_us", barr_central);
    o.add("barrier_tree_us", barr_tree);
    o.add("allreduce8_flat_us", ar8_flat);
    o.add("allreduce8_tree_us", ar8_tree);
    o.add("allreduce64k_flat_us", ar64k_flat);
    o.add("allreduce64k_tree_us", ar64k_tree);
    if (!coll_json.empty()) coll_json += ", ";
    coll_json += "\"" + topo.spec() + "\": " + o.str();
  }
  print_rule(72);
  std::printf("\nThe tree barrier replaces log2(p) dissemination rounds of "
              "spine crossings with\none leader-merged pass up and down; the "
              "64 KB allreduce flips to the tree as\nper-byte injection "
              "occupancy overtakes hop latency. At 8 bytes the flat\nstar's "
              "two hops win up to 128 ranks; by 512 even small-message "
              "fan-in\nserializes enough to favor the tree — the size-and-"
              "scale crossover the\nOMSP_COLL=tree:<bytes> knob tunes.\n");

  // --- incast/saturation shape: flat crossbar vs fat tree --------------------
  std::printf("\nSaturation probes: modeled queueing by tier (one 4 KB "
              "request per sender)\n");
  print_rule(72);
  std::printf("%-12s %-8s %6s %12s %12s %12s\n", "topology", "pattern",
              "nodes", "makespan us", "edge-wait us", "spine-wait us");
  print_rule(72);
  std::string incast_json;
  const sim::Topology sat_topos[] = {
      sim::Topology::flat_switch(64, 1), sim::Topology::fat_tree(2, 8, 1),
      sim::Topology::flat_switch(256, 1), sim::Topology::fat_tree(2, 16, 1),
  };
  for (const auto& topo : sat_topos) {
    for (const bool shift : {true, false}) {
      const IncastPoint pt = run_incast(topo, shift);
      const char* pattern = shift ? "shift" : "incast";
      std::printf("%-12s %-8s %6u %12.0f %12.0f %12.0f\n", topo.spec().c_str(),
                  pattern, topo.nodes(), pt.makespan_us, pt.edge_wait_us(),
                  pt.spine_wait_us());
      JsonObject o;
      o.add("nodes", static_cast<std::uint64_t>(topo.nodes()));
      o.add("makespan_us", pt.makespan_us);
      o.add("edge_wait_us", pt.edge_wait_us());
      o.add("spine_wait_us", pt.spine_wait_us());
      std::string stage_arr;
      for (const auto& w : pt.waits) {
        if (!stage_arr.empty()) stage_arr += ", ";
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", w.wait_us);
        stage_arr += buf;
      }
      o.add("stage_wait_us", "[" + stage_arr + "]");
      if (!incast_json.empty()) incast_json += ", ";
      incast_json +=
          "\"" + topo.spec() + "/" + pattern + "\": " + o.str();
    }
  }
  print_rule(72);
  std::printf("\nThe shift permutation never queues on the crossbar (every "
              "node owns a private\nport) but serializes each fat-tree edge "
              "switch's senders behind its shared\nspine trunk: the spine "
              "saturates first, edge NICs pay only residual reply\nholds. "
              "Pointing everyone at rank 0 instead drags the hot receiver's "
              "edge\ndownlink into the queueing (at 256 nodes its wait grows "
              "~5x over the\npermutation's) — incast adds an edge-tier "
              "bottleneck below the spine\noversubscription.\n");

  if (!args.json_path.empty()) {
    JsonObject top;
    top.add_string("bench", "speedup_curve_scale");
    top.add("smoke", args.smoke);
    top.add("seed", static_cast<std::uint64_t>(args.seed));
    top.add("curves", "{\"mpi\": {" + mpi_json + "}, \"sdsm_thread\": {" +
                          dsm_json + "}, \"collectives\": {" + coll_json +
                          "}, \"incast\": {" + incast_json + "}}");
    write_json_file(args.json_path, top.str());
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  if (args.scale) return run_scale(args);

  struct Point {
    std::uint32_t nodes, ppn;
  };
  const Point points[] = {{1, 1}, {1, 2}, {1, 4}, {2, 4}, {4, 4}};

  const auto sor_p = sor_params();
  const auto water_p = water_params();

  for (const char* app : {"SOR", "Water"}) {
    const apps::Result seq = (app[0] == 'S')
                                 ? apps::sor::run_seq(sor_p, paper_cost().cpu_scale)
                                 : apps::water::run_seq(water_p,
                                                        paper_cost().cpu_scale);
    std::printf("\n%s — speedup vs processors (sequential %.2f s)\n", app,
                seq.time_us * 1e-6);
    print_rule(72);
    std::printf("%-10s %12s %14s %12s\n", "procs", "OpenMP/orig",
                "OpenMP/thread", "MPI");
    print_rule(72);
    for (const auto& pt : points) {
      const sim::Topology topo(pt.nodes, pt.ppn);
      auto run_one = [&](tmk::Mode mode) {
        tmk::Config cfg = paper_config(mode, topo);
        return (app[0] == 'S') ? apps::sor::run_omp(sor_p, cfg)
                               : apps::water::run_omp(water_p, cfg);
      };
      const auto orig = run_one(tmk::Mode::kProcess);
      const auto thrd = run_one(tmk::Mode::kThread);
      const auto mpi = (app[0] == 'S')
                           ? apps::sor::run_mpi(sor_p, topo, paper_cost())
                           : apps::water::run_mpi(water_p, topo, paper_cost());
      std::printf("%2ux%-7u %12.2f %14.2f %12.2f\n", pt.nodes, pt.ppn,
                  seq.time_us / orig.time_us, seq.time_us / thrd.time_us,
                  seq.time_us / mpi.time_us);
    }
    print_rule(72);
  }
  std::printf("\nAt one node the two OpenMP systems differ only by the alias "
              "mapping and the\nintra-node message elimination; the gap "
              "widens with node count as the paper's\nanalysis predicts.\n");
  return 0;
}
