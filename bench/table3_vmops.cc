// Table 3 — Number of mprotect operations, page faults, and diffs in the
// OpenMP/original and OpenMP/thread versions.
//
// Orig/1 and Orig/4: OpenMP/original with 1 and 4 processes per node (4
// nodes); Thrd/1 and Thrd/4: OpenMP/thread with 1 and 4 threads per node.
//
// Shape to reproduce from the paper:
//   * Thrd/1 performs 25-56% fewer mprotects than Orig/1 — the alias mapping
//     removes the write-enable mprotect independent of multithreading;
//   * Thrd/4 performs 1.9-6.2x fewer mprotects than Orig/4;
//   * page faults: Thrd/1 == Orig/1; Thrd/4 incurs 1.2-5x fewer than Orig/4
//     (one fault validates a page for the whole node);
//   * diffs: Thrd/4 creates 1.03-5x fewer than Orig/4 (one twin per node).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace omsp;
  using namespace omsp::bench;

  struct Row {
    std::string name;
    apps::Result orig1, thrd1, orig4, thrd4;
  };
  std::vector<Row> rows;
  for (const auto& app : all_apps()) {
    Row r;
    r.name = app.name;
    r.orig1 = app.run_omp(
        paper_config(tmk::Mode::kProcess, sim::Topology(4, 1)));
    r.thrd1 =
        app.run_omp(paper_config(tmk::Mode::kThread, sim::Topology(4, 1)));
    r.orig4 = app.run_omp(paper_config(tmk::Mode::kProcess));
    r.thrd4 = app.run_omp(paper_config(tmk::Mode::kThread));
    rows.push_back(std::move(r));
  }

  const auto section = [&](const char* title, Counter c) {
    std::printf("\n%s\n", title);
    print_rule(84);
    std::printf("%-8s %10s %10s %12s %12s %9s %9s\n", "Appl.", "Orig/1",
                "Thrd/1", "Orig/4", "Thrd/4", "1:o/t", "4:o/t");
    print_rule(84);
    for (const auto& r : rows) {
      const auto v = [&](const apps::Result& x) {
        return static_cast<unsigned long long>(x.stats[c]);
      };
      std::printf("%-8s %10llu %10llu %12llu %12llu %8.2fx %8.2fx\n",
                  r.name.c_str(), v(r.orig1), v(r.thrd1), v(r.orig4),
                  v(r.thrd4),
                  static_cast<double>(v(r.orig1)) / std::max(1ull, v(r.thrd1)),
                  static_cast<double>(v(r.orig4)) / std::max(1ull, v(r.thrd4)));
    }
    print_rule(84);
  };

  std::printf("Table 3: VM operations, 4 nodes x {1,4} processors\n");
  section("mprotect count", Counter::kMprotect);
  section("page fault count", Counter::kPageFaults);
  section("diff count (created)", Counter::kDiffsCreated);
  return 0;
}
