// Table 1 — Application, problem size, sequential execution time, and
// parallelization directive(s) in the OpenMP programs.
//
// Paper values (SP2, PowerPC 604): Barnes 158.0 s (65536 bodies), 3D-FFT
// 65.2 s (128x128x64, 10 it), Water 760.3 s (4096 molecules, 4 steps), SOR
// 149.0 s (8K x 4K, 20 it), TSP 248.1 s (19 cities), MGS 563.3 s (2K x 2K).
// Our problem sizes are scaled down (one CI core must run the whole
// evaluation); the simulated sequential times below are on the virtual
// PowerPC-604-scaled clock.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace omsp;
  using namespace omsp::bench;

  struct PaperRow {
    const char* size;
    double seconds;
  };
  const PaperRow paper[] = {
      {"65536", 158.0},          {"128x128x64, 10", 65.2},
      {"4096, 4", 760.3},        {"8K x 4K, 20", 149.0},
      {"19 cities, -r14", 248.1}, {"2K x 2K", 563.3},
  };

  std::printf("Table 1: applications, sizes, sequential time, directives\n");
  std::printf("(simulated PowerPC-604 seconds; paper sizes/times for "
              "reference)\n");
  print_rule(100);
  std::printf("%-8s %-26s %12s   %-18s %10s   %s\n", "Appl.", "Size (ours)",
              "Seq time(s)", "Paper size", "Paper(s)", "OpenMP directives");
  print_rule(100);
  const double scale = paper_cost().cpu_scale;
  int i = 0;
  for (const auto& app : all_apps()) {
    const auto r = app.run_seq(scale);
    std::printf("%-8s %-26s %12.2f   %-18s %10.1f   %s\n", app.name,
                app.size_desc.c_str(), r.time_us * 1e-6, paper[i].size,
                paper[i].seconds, app.directives);
    ++i;
  }
  print_rule(100);
  return 0;
}
