// Protocol comparison: TreadMarks-style lazy release consistency (diffs
// fetched from their writers) vs home-based LRC (eager diffs to a home,
// whole-page fetches) — the design space of the paper's §6 related work
// (HLRC-SMP, Cashmere-2L).
//
// The literature's expectation, reproduced here: the home-based protocol
// sends FEWER messages (one page fetch replaces one diff request per writer)
// but MORE data (whole pages instead of diffs, plus eager diff pushes nobody
// may ever read). TreadMarks wins on data volume for sparse-update patterns
// (SOR), home-based wins on message count for multi-writer pages (Water's
// reduction arrays, Barnes' tree).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace omsp;
  using namespace omsp::bench;

  std::printf("Lazy RC (TreadMarks) vs home-based LRC — thread mode, 4x4\n");
  print_rule(96);
  std::printf("%-8s | %10s %10s %9s | %10s %10s %9s | %7s\n", "", "LRC msgs",
              "LRC MB", "LRC t(s)", "HLRC msgs", "HLRC MB", "HLRC t(s)",
              "msg win");
  print_rule(96);
  for (const auto& app : all_apps()) {
    tmk::Config lrc = paper_config(tmk::Mode::kThread);
    tmk::Config hlrc = paper_config(tmk::Mode::kThread);
    hlrc.protocol = tmk::Protocol::kHomeLRC;
    const auto a = app.run_omp(lrc);
    const auto b = app.run_omp(hlrc);
    std::printf(
        "%-8s | %10llu %10.2f %9.2f | %10llu %10.2f %9.2f | %6.2fx\n",
        app.name,
        static_cast<unsigned long long>(a.stats[Counter::kMsgsSent]),
        a.stats.data_mbytes(), a.time_us * 1e-6,
        static_cast<unsigned long long>(b.stats[Counter::kMsgsSent]),
        b.stats.data_mbytes(), b.time_us * 1e-6,
        static_cast<double>(a.stats[Counter::kMsgsSent]) /
            std::max<std::uint64_t>(1, b.stats[Counter::kMsgsSent]));
  }
  print_rule(96);
  std::printf("msg win: LRC messages / HLRC messages (>1 means home-based "
              "saves messages).\n");
  return 0;
}
