// Ablation bench for the design choices §3.3.1 calls out:
//   * the alias ("second") mapping of the shared heap,
//   * the per-page mutex in the fault handler,
//   * lazy vs eager diff creation.
// Each knob is toggled independently on the thread-mode runtime; SOR and
// Water are the probes (regular stencil vs reduction-heavy).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace omsp;
  using namespace omsp::bench;

  struct Variant {
    const char* name;
    tmk::Config cfg;
  };
  std::vector<Variant> variants;
  {
    Variant v{"thread (baseline)", paper_config(tmk::Mode::kThread)};
    variants.push_back(v);
  }
  {
    Variant v{"no alias mapping", paper_config(tmk::Mode::kThread)};
    // The alias-off path is only sound with one thread per context (the
    // original TreadMarks never ran threads); use 4 nodes x 1 proc.
    v.cfg.topology = sim::Topology(4, 1);
    v.cfg.alias_mapping = false;
    variants.push_back(v);
    Variant w{"alias mapping (4x1)", paper_config(tmk::Mode::kThread)};
    w.cfg.topology = sim::Topology(4, 1);
    variants.push_back(w);
  }
  {
    Variant v{"coarse fault lock", paper_config(tmk::Mode::kThread)};
    v.cfg.per_page_fault_lock = false;
    variants.push_back(v);
  }
  {
    Variant v{"eager diffs", paper_config(tmk::Mode::kThread)};
    v.cfg.lazy_diffs = false;
    variants.push_back(v);
  }
  {
    Variant v{"GC every barrier", paper_config(tmk::Mode::kThread)};
    v.cfg.gc_threshold_bytes = 1;
    variants.push_back(v);
  }

  const auto sor_p = sor_params();
  const auto water_p = water_params();

  std::printf("DSM design ablations (thread-mode runtime)\n");
  for (const char* app : {"SOR", "Water"}) {
    std::printf("\n%s\n", app);
    print_rule(96);
    std::printf("%-22s %10s %12s %10s %10s %10s %12s\n", "variant", "time(s)",
                "msgs", "MB", "mprotect", "faults", "diffs_made");
    print_rule(96);
    for (const auto& v : variants) {
      const apps::Result r = (app[0] == 'S')
                                 ? apps::sor::run_omp(sor_p, v.cfg)
                                 : apps::water::run_omp(water_p, v.cfg);
      std::printf("%-22s %10.2f %12llu %10.2f %10llu %10llu %12llu\n", v.name,
                  r.time_us * 1e-6,
                  static_cast<unsigned long long>(r.stats[Counter::kMsgsSent]),
                  r.stats.data_mbytes(),
                  static_cast<unsigned long long>(r.stats[Counter::kMprotect]),
                  static_cast<unsigned long long>(
                      r.stats[Counter::kPageFaults]),
                  static_cast<unsigned long long>(
                      r.stats[Counter::kDiffsCreated]));
    }
    print_rule(96);
  }
  std::printf("\nExpectations: no-alias raises mprotects ~25-56%% over the "
              "aliased 4x1 run (Table 3's\nThrd/1 vs Orig/1 effect); the "
              "coarse lock leaves counters equal but serializes faults;\n"
              "eager diffs raise diff counts (diffs made at every close, "
              "requested or not);\naggressive GC trades extra validation "
              "traffic for bounded protocol memory.\n");
  return 0;
}
