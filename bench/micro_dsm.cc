// Microbenchmarks (google-benchmark) for the DSM's hot primitives: diff
// creation/application, twin copies, message serialization and the
// fault/fetch round trip. These are host-time benchmarks (not virtual time)
// — they size the constant factors behind the cost model.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "common/buffer_pool.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "tmk/diff.hpp"
#include "tmk/system.hpp"

namespace {

using namespace omsp;
using namespace omsp::tmk;

// Build a (twin, current) pair where `fraction` of the bytes changed, spread
// over `runs` contiguous regions.
void make_pair(std::uint8_t* twin, std::uint8_t* cur, double fraction,
               int runs) {
  Rng rng(99);
  for (std::size_t i = 0; i < kPageSize; ++i)
    twin[i] = cur[i] = static_cast<std::uint8_t>(rng.next_u32());
  const std::size_t change = static_cast<std::size_t>(kPageSize * fraction);
  const std::size_t per_run = std::max<std::size_t>(1, change / runs);
  for (int r = 0; r < runs; ++r) {
    const std::size_t start = (kPageSize / runs) * r;
    for (std::size_t i = start; i < start + per_run && i < kPageSize; ++i)
      cur[i] ^= 0x5a;
  }
}

void BM_DiffCreate(benchmark::State& state) {
  alignas(64) std::uint8_t twin[kPageSize], cur[kPageSize];
  make_pair(twin, cur, state.range(0) / 100.0, 8);
  for (auto _ : state) {
    auto d = create_diff(twin, cur);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
  state.SetLabel(diff_kernel_name());
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(5)->Arg(25)->Arg(100);

// The pre-PR word-at-a-time encoder, kept callable as create_diff_scalar():
// the ratio BM_DiffCreateScalar / BM_DiffCreate at each dirtiness level is
// the SIMD speedup recorded in BENCH_pr8.json.
void BM_DiffCreateScalar(benchmark::State& state) {
  alignas(64) std::uint8_t twin[kPageSize], cur[kPageSize];
  make_pair(twin, cur, state.range(0) / 100.0, 8);
  for (auto _ : state) {
    auto d = create_diff_scalar(twin, cur);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_DiffCreateScalar)->Arg(0)->Arg(5)->Arg(25)->Arg(100);

void BM_DiffApply(benchmark::State& state) {
  alignas(64) std::uint8_t twin[kPageSize], cur[kPageSize], dst[kPageSize];
  make_pair(twin, cur, state.range(0) / 100.0, 8);
  const auto d = create_diff(twin, cur);
  std::memcpy(dst, twin, kPageSize);
  for (auto _ : state) {
    apply_diff(d, dst);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(diff_patch_bytes(d)));
}
BENCHMARK(BM_DiffApply)->Arg(5)->Arg(25)->Arg(100);

// Run-heavy sparse page: 25% of the bytes dirty but shattered over 64 runs —
// the per-run (header decode + bounds check + short copy) overhead dominates,
// which is what the checked run-iterator and copy_run fast paths optimize.
void BM_DiffApplyRunHeavy(benchmark::State& state) {
  alignas(64) std::uint8_t twin[kPageSize], cur[kPageSize], dst[kPageSize];
  make_pair(twin, cur, 0.25, 64);
  const auto d = create_diff(twin, cur);
  std::memcpy(dst, twin, kPageSize);
  for (auto _ : state) {
    apply_diff(d, dst);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(diff_patch_bytes(d)));
}
BENCHMARK(BM_DiffApplyRunHeavy);

// The pre-PR apply loop, embedded verbatim (checks included, out of line so
// the call boundary matches the library function) as the wall-clock reference
// for BM_DiffApply. It also documents the bounds bug this PR fixes: no
// offset+length <= page_size check before the memcpy.
__attribute__((noinline)) void apply_diff_ref(std::span<const std::uint8_t> diff,
                                              std::uint8_t* dst) {
  struct RunHeader {
    std::uint16_t offset;
    std::uint16_t length;
  };
  std::size_t pos = 0;
  while (pos < diff.size()) {
    OMSP_CHECK_MSG(pos + sizeof(RunHeader) <= diff.size(),
                   "truncated diff header");
    RunHeader h;
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    pos += sizeof(h);
    OMSP_CHECK_MSG(pos + h.length <= diff.size(), "truncated diff run");
    std::memcpy(dst + h.offset, diff.data() + pos, h.length);
    pos += h.length;
  }
}

void BM_DiffApplyRefRunHeavy(benchmark::State& state) {
  alignas(64) std::uint8_t twin[kPageSize], cur[kPageSize], dst[kPageSize];
  make_pair(twin, cur, 0.25, 64);
  const auto d = create_diff(twin, cur);
  std::memcpy(dst, twin, kPageSize);
  for (auto _ : state) {
    apply_diff_ref(d, dst);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(diff_patch_bytes(d)));
}
BENCHMARK(BM_DiffApplyRefRunHeavy);

void BM_DiffApplyRef(benchmark::State& state) {
  alignas(64) std::uint8_t twin[kPageSize], cur[kPageSize], dst[kPageSize];
  make_pair(twin, cur, state.range(0) / 100.0, 8);
  const auto d = create_diff(twin, cur);
  std::memcpy(dst, twin, kPageSize);
  for (auto _ : state) {
    apply_diff_ref(d, dst);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(diff_patch_bytes(d)));
}
BENCHMARK(BM_DiffApplyRef)->Arg(5)->Arg(25)->Arg(100);

void BM_TwinCopy(benchmark::State& state) {
  alignas(64) std::uint8_t src[kPageSize], dst[kPageSize];
  std::memset(src, 0x5a, sizeof src);
  for (auto _ : state) {
    std::memcpy(dst, src, kPageSize);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_TwinCopy);

// Twin provisioning: pooled blocks (arg 1, what the write-fault path does
// now) against a fresh zeroed allocation per twin (arg 0, the pre-PR path).
void BM_TwinProvision(benchmark::State& state) {
  alignas(64) std::uint8_t src[kPageSize];
  std::memset(src, 0x5a, sizeof src);
  PagePool pool(kPageSize);
  const bool pooled = state.range(0) != 0;
  for (auto _ : state) {
    if (pooled) {
      auto twin = pool.acquire();
      std::memcpy(twin.get(), src, kPageSize);
      benchmark::DoNotOptimize(twin.get());
    } else {
      auto twin = std::make_unique<std::uint8_t[]>(kPageSize);
      std::memcpy(twin.get(), src, kPageSize);
      benchmark::DoNotOptimize(twin.get());
    }
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_TwinProvision)->Arg(0)->Arg(1)->ArgName("pooled");

void BM_SerializeRecords(benchmark::State& state) {
  std::vector<IntervalRecord> recs;
  for (int i = 0; i < state.range(0); ++i) {
    IntervalRecord r;
    r.creator = static_cast<ContextId>(i % 4);
    r.seq = static_cast<IntervalSeq>(i + 1);
    r.vt = VectorTime(16);
    for (int k = 0; k < 6; ++k) r.pages.push_back(static_cast<PageId>(k * 7));
    recs.push_back(std::move(r));
  }
  for (auto _ : state) {
    ByteWriter w;
    serialize_records(recs, w);
    ByteReader r(w.bytes());
    auto back = deserialize_records(r);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_SerializeRecords)->Arg(1)->Arg(16)->Arg(128);

void BM_FaultFetchRoundTrip(benchmark::State& state) {
  // One writer context, one reader context; each iteration invalidates the
  // reader and forces a full fault -> diff request -> apply cycle.
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.cost = sim::CostModel::zero();
  cfg.heap_bytes = 1u << 20;
  DsmSystem dsm(cfg);
  auto data = dsm.alloc_page_aligned<long>(512);
  long expect = 0;
  for (auto _ : state) {
    ++expect;
    dsm.parallel([&](Rank r) {
      if (r == 0) data[0] = expect;
      dsm.barrier();
      if (r == 1) benchmark::DoNotOptimize(data[0]);
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultFetchRoundTrip)->Unit(benchmark::kMicrosecond);

// Intra-node fault/fetch with the zero-copy switch (OMSP_ZEROCOPY): two
// contexts on ONE node, so the reply payload is eligible for view delivery.
// Host time is the quantity zero-copy optimizes; every modeled number is
// asserted bit-for-bit elsewhere (zerocopy_test.cc).
void BM_IntraNodeFetchZeroCopy(benchmark::State& state) {
  Config cfg;
  cfg.topology = sim::Topology(1, 2); // one node, two procs
  cfg.mode = Mode::kProcess;          // two contexts, same node
  cfg.cost = sim::CostModel::zero();
  cfg.heap_bytes = 1u << 20;
  cfg.zerocopy.enabled = state.range(0) != 0;
  DsmSystem dsm(cfg);
  auto data = dsm.alloc_page_aligned<long>(512);
  long expect = 0;
  for (auto _ : state) {
    ++expect;
    dsm.parallel([&](Rank r) {
      if (r == 0) data[0] = expect;
      dsm.barrier();
      if (r == 1) benchmark::DoNotOptimize(data[0]);
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntraNodeFetchZeroCopy)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("zerocopy")
    ->Unit(benchmark::kMicrosecond);

// Multi-writer fetch: four writers each dirty a quarter of one falsely
// shared page; the post-barrier read faults once and fetches diffs from all
// three remote creators. With overlap off the stall is the SUM of the three
// RTTs, with overlap on it is the MAX. Host time measures the transport
// machinery's overhead; the modeled stall is exported as the
// `virtual_us_per_iter` counter — the quantity the overlap work optimizes.
void BM_MultiWriterFetch(benchmark::State& state) {
  Config cfg;
  cfg.topology = sim::Topology(4, 1);
  cfg.cost = sim::CostModel::zero();
  cfg.cost.net_latency_us = 100.0;
  cfg.cost.handler_service_us = 10.0;
  cfg.heap_bytes = 1u << 20;
  cfg.overlap.enabled = state.range(0) != 0;
  DsmSystem dsm(cfg);
  const int P = 4;
  const std::size_t Q = kPageSize / sizeof(long) / P;
  auto data = dsm.alloc_page_aligned<long>(kPageSize / sizeof(long));
  long expect = 0;
  double virtual_us = 0;
  for (auto _ : state) {
    ++expect;
    dsm.parallel([&](Rank r) {
      for (std::size_t i = 0; i < Q; ++i) data[r * Q + i] = expect;
      dsm.barrier();
      long sum = 0;
      for (std::size_t i = 0; i < static_cast<std::size_t>(P) * Q; ++i)
        sum += data[i];
      benchmark::DoNotOptimize(sum);
      dsm.barrier();
    });
    virtual_us = dsm.master_time_us();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["virtual_us_per_iter"] =
      benchmark::Counter(virtual_us / static_cast<double>(expect));
}
BENCHMARK(BM_MultiWriterFetch)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("overlap")
    ->Unit(benchmark::kMicrosecond);

// Barrier engine comparison on a 16-node fat tree: arg 0 runs the seed's
// centralized manager, arg 1 the hierarchical tree episode (OMSP_COLL=tree).
// Host time measures the episode machinery; the modeled cost of one barrier
// — the quantity the engine optimizes — is exported as virtual_us_per_iter.
// Per-byte injection occupancy is on, so the manager's 15-message departure
// fan-out serializes while the tree spreads it over node and edge leaders.
void BM_BarrierEpisode(benchmark::State& state) {
  Config cfg;
  cfg.topology = sim::Topology::fat_tree(2, 4, 1); // 16 nodes, 1 proc each
  cfg.cost = sim::CostModel::sp2_default();
  cfg.cost.cpu_scale = 0;
  cfg.cost.occupancy_byte_us = 0.02;
  cfg.heap_bytes = 1u << 20;
  cfg.coll.tree = state.range(0) != 0;
  DsmSystem dsm(cfg);
  const std::size_t n = kPageSize / sizeof(long);
  auto data = dsm.alloc_page_aligned<long>(n);
  long expect = 0;
  double virtual_us = 0;
  for (auto _ : state) {
    ++expect;
    dsm.parallel([&](Rank r) {
      // Every context dirties a slice of one falsely shared page, so each
      // barrier carries real write notices up (and departures down) the tree.
      data[r * (n / 16)] = expect;
      dsm.barrier();
      benchmark::DoNotOptimize(data[0]);
      dsm.barrier();
    });
    virtual_us = dsm.master_time_us();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["virtual_us_per_iter"] =
      benchmark::Counter(virtual_us / static_cast<double>(expect));
}
BENCHMARK(BM_BarrierEpisode)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("tree")
    ->Unit(benchmark::kMicrosecond);

// Detector overhead: the same falsely-shared barrier workload with the
// vector-clock race detector off / page-granular / word-granular. The
// detector's cost is pure host time (race baselines, collection diffs and
// the barrier-time sweep); the exported virtual_us_per_iter must be
// IDENTICAL across the three args — the bit-for-bit knob contract
// (docs/OBSERVABILITY.md, bench_smoke asserts it from the JSON).
void BM_RaceDetectOverhead(benchmark::State& state) {
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::sp2_default();
  cfg.cost.cpu_scale = 0;
  cfg.heap_bytes = 1u << 20;
  switch (state.range(0)) {
  case 0: cfg.race.mode = race::Mode::kOff; break;
  case 1: cfg.race.mode = race::Mode::kPage; break;
  default: cfg.race.mode = race::Mode::kWord; break;
  }
  DsmSystem dsm(cfg);
  const std::size_t n = kPageSize / sizeof(long);
  auto data = dsm.alloc_page_aligned<long>(4 * n);
  long expect = 0;
  double prev_us = 0, episode_us = 0;
  for (auto _ : state) {
    ++expect;
    dsm.parallel([&](Rank r) {
      // Four falsely shared pages, every rank dirtying its slice of each:
      // each barrier flushes four diffs per context through the detector's
      // collection path and the sweep sees 4 pages x 4 writers.
      for (std::size_t pg = 0; pg < 4; ++pg)
        data[pg * n + r * (n / 4)] = expect;
      dsm.barrier();
      benchmark::DoNotOptimize(data[0]);
      dsm.barrier();
    });
    // Steady-state modeled cost of ONE episode (the last iteration's virtual-
    // time delta, free of cold-fault warm-up). Comparable across the three
    // detector modes because the iteration count is pinned below: periodic
    // protocol work (GC exchanges) gives the episode sequence a cycle longer
    // than one iteration, so only equal counts sample equal phases.
    const double now_us = dsm.master_time_us();
    episode_us = now_us - prev_us;
    prev_us = now_us;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["virtual_us_per_iter"] = benchmark::Counter(episode_us);
}
BENCHMARK(BM_RaceDetectOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("race")
    ->Iterations(512)
    ->Unit(benchmark::kMicrosecond);

void BM_Mprotect(benchmark::State& state) {
  Config cfg;
  cfg.topology = sim::Topology(1, 1);
  cfg.cost = sim::CostModel::zero();
  cfg.heap_bytes = 1u << 20;
  DsmSystem dsm(cfg);
  auto& heap = dsm.context(0).heap();
  bool rw = false;
  for (auto _ : state) {
    heap.protect(4, rw ? Protection::kRead : Protection::kReadWrite);
    rw = !rw;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Mprotect)->Unit(benchmark::kNanosecond);

// --- tracing overhead --------------------------------------------------------
// The disabled macro must cost one relaxed load + predicted branch; the
// enabled path one SPSC push. Compare against BM_FaultFetchRoundTrip to see
// that protocol work dwarfs either (docs/OBSERVABILITY.md "Overhead").

void BM_TraceEventDisabled(benchmark::State& state) {
  // No tracer installed: the macro's fast path.
  for (auto _ : state) {
    OMSP_TRACE_EVENT(kPageFault, 0, 1, 0, trace::kFlagWrite);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEventDisabled)->Unit(benchmark::kNanosecond);

void BM_TraceEventEnabled(benchmark::State& state) {
  trace::Options opts;
  opts.enabled = true;
  opts.ring_events = 1u << 16;
  trace::Tracer tracer(opts);
  tracer.install();
  trace::Tracer::bind_thread(0);
  std::size_t n = 0;
  for (auto _ : state) {
    OMSP_TRACE_EVENT(kPageFault, 0, 1, 0, trace::kFlagWrite);
    if (++n == (1u << 15)) { // drain periodically, as barriers would
      state.PauseTiming();
      tracer.clear();
      n = 0;
      state.ResumeTiming();
    }
  }
  tracer.uninstall();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEventEnabled)->Unit(benchmark::kNanosecond);

void BM_FaultFetchRoundTripTraced(benchmark::State& state) {
  // BM_FaultFetchRoundTrip with tracing on: the end-to-end overhead check.
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.cost = sim::CostModel::zero();
  cfg.heap_bytes = 1u << 20;
  cfg.trace.enabled = true;
  DsmSystem dsm(cfg);
  auto data = dsm.alloc_page_aligned<long>(512);
  long expect = 0;
  for (auto _ : state) {
    ++expect;
    dsm.parallel([&](Rank r) {
      if (r == 0) data[0] = expect;
      dsm.barrier();
      if (r == 1) benchmark::DoNotOptimize(data[0]);
    });
    // Bound the collected-event buffer; a real run drains to a sink instead.
    if (expect % 8192 == 0) dsm.reset_stats();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultFetchRoundTripTraced)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
