// Shared configuration for the evaluation-reproduction benches.
//
// By default every bench models the paper's platform: an IBM SP2 with 4
// nodes x 4 PowerPC-604 processors (sim::Topology::sp2()) and the SP2-era
// cost model. OMSP_TOPOLOGY=<spec> rebenches the same workloads on another
// machine shape ("flat:64x4", "fat:2x8x2", "asym:8+4+4", ... — see
// docs/TOPOLOGY.md); bench JSON carries the topology spec so per-shape
// baselines never collide. Problem sizes are scaled down from the paper's
// (which needed hours on the 1999 machine and would need comparable virtual
// time here); the per-app compute/communication character is preserved, and
// EXPERIMENTS.md records the paper-vs-measured comparison for every row.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/barnes.hpp"
#include "apps/fft3d.hpp"
#include "apps/mgs.hpp"
#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "apps/water.hpp"

namespace omsp::bench {

inline sim::Topology paper_topology() {
  return sim::Topology::from_env_or(sim::Topology::sp2());
}
inline sim::CostModel paper_cost() {
  sim::CostModel m = sim::CostModel::sp2_default();
  // The bench problem sizes are scaled well below the paper's; raising the
  // CPU scale restores a paper-like compute:communication ratio (one unit of
  // our compute stands for the larger per-iteration compute of the paper's
  // full-size problems). See EXPERIMENTS.md for the calibration notes.
  m.cpu_scale = 500.0;
  return m;
}

inline tmk::Config paper_config(tmk::Mode mode,
                                sim::Topology topo = paper_topology()) {
  tmk::Config cfg;
  cfg.topology = topo;
  cfg.mode = mode;
  cfg.cost = paper_cost();
  cfg.heap_bytes = 64u << 20;
  return cfg;
}

// Problem-size tier: the regular bench sizes (scaled below the paper's but
// calibrated for the tables), or the CI smoke tier — small enough to run in
// seconds, still exercising every protocol path. Selected once per process
// by parse_bench_args(--smoke) before all_apps() materializes its params.
inline bool g_smoke = false;

// Scaled problem sizes (paper's sizes in comments).
inline apps::sor::Params sor_params() {
  if (g_smoke) return {128, 64, 4, 1.0};
  return {512, 256, 20, 1.0}; // paper: 8192 x 4096, 20 iterations
}
inline apps::mgs::Params mgs_params() {
  if (g_smoke) return {64, 64, 3};
  return {256, 256, 7}; // paper: 2048 x 2048
}
inline apps::tsp::Params tsp_params() {
  if (g_smoke) return {9, 42, 5};
  return {13, 42, 10}; // paper: 19 cities, -r14
}
inline apps::water::Params water_params() {
  if (g_smoke) return {128, 2, 1e-3, 0.3, 11};
  return {512, 3, 1e-3, 0.3, 11}; // paper: 4096 molecules, 4 steps
}
inline apps::fft3d::Params fft_params() {
  // nx and nz must stay divisible by the 16 MPI ranks.
  if (g_smoke) return {32, 16, 16, 2, 2};
  return {64, 64, 32, 4, 5}; // paper: 128 x 128 x 64, 10 iterations
}
inline apps::barnes::Params barnes_params() {
  if (g_smoke) return {256, 2, 0.7, 0.02, 0.05, 17};
  return {2048, 3, 0.7, 0.02, 0.05, 17}; // paper: 65536 bodies
}

// Shared CLI for the table/figure benches: `--smoke` switches to the CI
// problem sizes, `--json <path>` additionally writes machine-readable rows
// (scripts/bench_smoke.sh merges them into BENCH_pr3.json).
struct BenchArgs {
  bool smoke = false;
  std::string json_path;
  // speedup_curve only: `--scale` switches to the beyond-the-SP2 machine
  // sweep; `--seed <n>` (nonzero) runs its MPI curves over seeded lossy
  // links. Other benches accept and ignore both.
  bool scale = false;
  std::uint64_t seed = 0;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      a.smoke = true;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      a.scale = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      a.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--scale] [--seed <n>] "
                   "[--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  g_smoke = a.smoke;
  return a;
}

// Minimal JSON emitter for the bench rows — flat enough that a hand-rolled
// writer beats a dependency.
class JsonObject {
public:
  void add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields_.push_back("\"" + key + "\": " + buf);
  }
  void add(const std::string& key, std::uint64_t v) {
    fields_.push_back("\"" + key + "\": " + std::to_string(v));
  }
  void add(const std::string& key, bool v) {
    fields_.push_back(std::string("\"") + key + "\": " + (v ? "true" : "false"));
  }
  void add(const std::string& key, const std::string& raw_value) {
    fields_.push_back("\"" + key + "\": " + raw_value);
  }
  void add_string(const std::string& key, const std::string& s) {
    fields_.push_back("\"" + key + "\": \"" + s + "\"");
  }
  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ", ";
      out += fields_[i];
    }
    return out + "}";
  }

private:
  std::vector<std::string> fields_;
};

// Stats of one app run as a JSON object (the quantities the drift check and
// the perf trajectory care about).
inline std::string run_json(const apps::Result& r) {
  JsonObject o;
  o.add("time_us", r.time_us);
  o.add("msgs", r.stats[Counter::kMsgsSent]);
  o.add("bytes", r.stats[Counter::kBytesSent]);
  o.add("offnode_msgs", r.stats[Counter::kMsgsOffNode]);
  o.add("offnode_bytes", r.stats[Counter::kBytesOffNode]);
  return o.str();
}

inline void write_json_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(body.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

struct AppEntry {
  const char* name;
  const char* directives; // Table 1's "OpenMP parallel directives" column
  apps::Result (*run_seq)(double cpu_scale);
  apps::Result (*run_omp)(const tmk::Config& cfg);
  apps::Result (*run_mpi)(const sim::Topology&, const sim::CostModel&);
  std::string size_desc;
};

inline std::vector<AppEntry> all_apps() {
  static const auto sor_p = sor_params();
  static const auto mgs_p = mgs_params();
  static const auto tsp_p = tsp_params();
  static const auto water_p = water_params();
  static const auto fft_p = fft_params();
  static const auto barnes_p = barnes_params();
  std::vector<AppEntry> apps_list;
  apps_list.push_back(
      {"Barnes", "parallel region",
       [](double s) { return apps::barnes::run_seq(barnes_p, s); },
       [](const tmk::Config& c) { return apps::barnes::run_omp(barnes_p, c); },
       [](const sim::Topology& t, const sim::CostModel& m) {
         return apps::barnes::run_mpi(barnes_p, t, m);
       },
       std::to_string(barnes_p.bodies) + " bodies, " +
           std::to_string(barnes_p.iters) + " iters"});
  apps_list.push_back(
      {"3D-FFT", "parallel for",
       [](double s) { return apps::fft3d::run_seq(fft_p, s); },
       [](const tmk::Config& c) { return apps::fft3d::run_omp(fft_p, c); },
       [](const sim::Topology& t, const sim::CostModel& m) {
         return apps::fft3d::run_mpi(fft_p, t, m);
       },
       std::to_string(fft_p.nx) + "x" + std::to_string(fft_p.ny) + "x" +
           std::to_string(fft_p.nz) + ", " + std::to_string(fft_p.iters) +
           " iters"});
  apps_list.push_back(
      {"Water", "parallel for/region",
       [](double s) { return apps::water::run_seq(water_p, s); },
       [](const tmk::Config& c) { return apps::water::run_omp(water_p, c); },
       [](const sim::Topology& t, const sim::CostModel& m) {
         return apps::water::run_mpi(water_p, t, m);
       },
       std::to_string(water_p.molecules) + " molecules, " +
           std::to_string(water_p.steps) + " steps"});
  apps_list.push_back(
      {"SOR", "parallel for",
       [](double s) { return apps::sor::run_seq(sor_p, s); },
       [](const tmk::Config& c) { return apps::sor::run_omp(sor_p, c); },
       [](const sim::Topology& t, const sim::CostModel& m) {
         return apps::sor::run_mpi(sor_p, t, m);
       },
       std::to_string(sor_p.rows) + "x" + std::to_string(sor_p.cols) + ", " +
           std::to_string(sor_p.iters) + " iters"});
  apps_list.push_back(
      {"TSP", "parallel region",
       [](double s) { return apps::tsp::run_seq(tsp_p, s); },
       [](const tmk::Config& c) { return apps::tsp::run_omp(tsp_p, c); },
       [](const sim::Topology& t, const sim::CostModel& m) {
         return apps::tsp::run_mpi(tsp_p, t, m);
       },
       std::to_string(tsp_p.cities) + " cities, -r" +
           std::to_string(tsp_p.solve_threshold)});
  apps_list.push_back(
      {"MGS", "parallel for",
       [](double s) { return apps::mgs::run_seq(mgs_p, s); },
       [](const tmk::Config& c) { return apps::mgs::run_omp(mgs_p, c); },
       [](const sim::Topology& t, const sim::CostModel& m) {
         return apps::mgs::run_mpi(mgs_p, t, m);
       },
       std::to_string(mgs_p.n) + " x " + std::to_string(mgs_p.dim)});
  return apps_list;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

} // namespace omsp::bench
