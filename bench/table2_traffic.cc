// Table 2 — Amount of data and number of messages transmitted in the
// OpenMP/original, OpenMP/thread, and MPI versions on an SP2 with four
// four-processor SMP nodes.
//
// Paper values (for its larger problem sizes):
//             data (MB): orig / thread / MPI-total / MPI-offnode
//   Barnes     543.0 / 166.4 / 259.7 / 207.8
//   3D-FFT     159.4 / 126.5 / 157.3 / 125.8
//   Water      192.3 /  42.7 /  34.6 /  26.0
//   SOR          0.64 /  0.07 /  9.8 /  2.0
//   TSP          2.8 /   0.55 /  0.03 / 0.026
//   MGS        508.6 / 102.2 / 251.6 / 201.3
//             messages: orig / thread / MPI-total / MPI-offnode
//   Barnes    841565 / 100259 /   720 /  576
//   3D-FFT     40975 /  31694 /  9750 / 7800
//   Water      78402 /  24667 /  1776 / 1344
//   SOR         3637 /    735 /  1200 /  240
//   TSP         9227 /   4853 /  1256 / 1070
//   MGS       184583 /  37041 / 30720 / 24576
//
// Shape to reproduce: the thread version sends 1.26-9.1x less data and
// 1.29-8.4x fewer messages than the original; SDSM sends far more messages
// than MPI (except SOR, where TreadMarks' diffs beat MPI's whole boundary
// rows on data volume); MPI sends ~12/15 of its traffic off-node (SOR ~20%).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace omsp;
  using namespace omsp::bench;

  const BenchArgs args = parse_bench_args(argc, argv);

  struct Row {
    std::string name;
    apps::Result orig, thrd, mpi;
  };
  std::vector<Row> rows;
  for (const auto& app : all_apps()) {
    Row r;
    r.name = app.name;
    r.orig = app.run_omp(paper_config(tmk::Mode::kProcess));
    r.thrd = app.run_omp(paper_config(tmk::Mode::kThread));
    r.mpi = app.run_mpi(paper_topology(), paper_cost());
    rows.push_back(std::move(r));
  }

  std::printf("Table 2: data and messages, topology %s\n\n",
              paper_topology().spec().c_str());
  std::printf("Data (Mbytes)\n");
  print_rule(92);
  std::printf("%-8s %14s %14s %12s %14s %10s\n", "Appl.", "OpenMP/orig",
              "OpenMP/thread", "MPI total", "MPI off-node", "orig/thr");
  print_rule(92);
  for (const auto& r : rows) {
    std::printf("%-8s %14.2f %14.2f %12.2f %14.2f %9.1fx\n", r.name.c_str(),
                r.orig.stats.data_mbytes(), r.thrd.stats.data_mbytes(),
                r.mpi.stats.data_mbytes(), r.mpi.stats.offnode_mbytes(),
                r.orig.stats.data_mbytes() /
                    std::max(1e-9, r.thrd.stats.data_mbytes()));
  }

  std::printf("\nMessages\n");
  print_rule(92);
  std::printf("%-8s %14s %14s %12s %14s %10s\n", "Appl.", "OpenMP/orig",
              "OpenMP/thread", "MPI total", "MPI off-node", "orig/thr");
  print_rule(92);
  for (const auto& r : rows) {
    const auto m = [](const apps::Result& x) {
      return static_cast<unsigned long long>(x.stats[Counter::kMsgsSent]);
    };
    const auto moff = static_cast<unsigned long long>(
        r.mpi.stats[Counter::kMsgsOffNode]);
    std::printf("%-8s %14llu %14llu %12llu %14llu %9.1fx\n", r.name.c_str(),
                m(r.orig), m(r.thrd), m(r.mpi), moff,
                static_cast<double>(m(r.orig)) /
                    std::max(1ull, m(r.thrd)));
  }
  print_rule(92);

  if (!args.json_path.empty()) {
    JsonObject apps_obj;
    for (const auto& r : rows) {
      JsonObject versions;
      versions.add("orig", run_json(r.orig));
      versions.add("thread", run_json(r.thrd));
      versions.add("mpi", run_json(r.mpi));
      apps_obj.add(r.name, versions.str());
    }
    JsonObject root;
    root.add_string("bench", "table2_traffic");
    root.add("smoke", args.smoke);
    // The machine shape the rows were measured on: the drift check matches
    // rows against the baseline for THIS topology only, so the exact 4x4
    // baseline survives sweeps over larger machines.
    root.add_string("topology", paper_topology().spec());
    root.add("apps", apps_obj.str());
    write_json_file(args.json_path, root.str());
  }
  return 0;
}
