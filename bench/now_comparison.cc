// Beyond the paper's tables: SMP cluster vs network of workstations.
//
// The authors' prior system ([9], "OpenMP on networks of workstations") ran
// the same translator over single-processor nodes. This bench contrasts
// three 16-processor platforms at equal total compute:
//   * NOW      — 16 uniprocessor workstations (every message crosses the
//                network; no hardware sharing anywhere);
//   * SMP/orig — 4x4 SMP cluster driven by the original process-per-processor
//                TreadMarks (intra-node messages are cheap but still
//                messages);
//   * SMP/thrd — 4x4 with the paper's multithreaded TreadMarks.
// The interesting quantity is how much of the NOW -> SMP win comes from the
// cheaper intra-node wire (orig) versus from eliminating intra-node protocol
// entirely (thread) — the decomposition implicit in the paper's §5.3.1.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace omsp;
  using namespace omsp::bench;

  struct Platform {
    const char* name;
    tmk::Config cfg;
  };
  const Platform platforms[] = {
      {"NOW 16x1", paper_config(tmk::Mode::kProcess, sim::Topology(16, 1))},
      {"SMP 4x4 original", paper_config(tmk::Mode::kProcess)},
      {"SMP 4x4 thread", paper_config(tmk::Mode::kThread)},
  };

  std::printf("Network of workstations vs SMP cluster (16 processors each)\n");
  for (const auto& app : all_apps()) {
    const auto seq = app.run_seq(paper_cost().cpu_scale);
    std::printf("\n%s (sequential %.2f s)\n", app.name, seq.time_us * 1e-6);
    print_rule(88);
    std::printf("%-18s %9s %12s %10s %14s\n", "platform", "speedup", "msgs",
                "MB", "off-node msgs");
    print_rule(88);
    for (const auto& p : platforms) {
      const auto r = app.run_omp(p.cfg);
      std::printf("%-18s %9.2f %12llu %10.2f %14llu\n", p.name,
                  seq.time_us / r.time_us,
                  static_cast<unsigned long long>(r.stats[Counter::kMsgsSent]),
                  r.stats.data_mbytes(),
                  static_cast<unsigned long long>(
                      r.stats[Counter::kMsgsOffNode]));
    }
    print_rule(88);
  }
  std::printf("\nReading: NOW's messages are all off-node; the original SMP "
              "system keeps the same\nmessage count but moves ~3/4 of it to "
              "the fast intra-node wire; the thread system\nmakes the "
              "intra-node 3/4 disappear altogether.\n");
  return 0;
}
