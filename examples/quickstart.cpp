// Quickstart — a tour of the OpenMP-on-networks-of-SMPs runtime.
//
// The cluster here is the paper's platform: 4 SMP nodes x 4 processors,
// TreadMarks software DSM underneath, POSIX threads inside each node. The
// program parallelizes a dot product and a histogram exactly the way the
// OpenMP translator would lower them, then prints what the DSM did on the
// wire.
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "core/api.hpp"
#include "core/runtime.hpp"

int main() {
  using namespace omsp;

  // 1. Configure the cluster: 4 nodes x 4 processors, thread mode (the
  //    paper's contribution). Try tmk::Mode::kProcess to feel the original
  //    TreadMarks behave.
  tmk::Config cfg;
  cfg.topology = sim::Topology(4, 4);
  cfg.mode = tmk::Mode::kThread;
  core::OmpRuntime rt(cfg);

  std::printf("cluster: %u nodes x %u processors, %s mode\n",
              cfg.topology.nodes(), cfg.topology.procs_per_node(),
              cfg.mode == tmk::Mode::kThread ? "thread" : "process");

  // 2. Shared data lives in the DSM heap. GlobalPtr<T> works like T* in any
  //    thread; the consistency protocol keeps the node copies coherent.
  constexpr std::int64_t kN = 1 << 16;
  auto x = rt.alloc_page_aligned<double>(kN);
  auto y = rt.alloc_page_aligned<double>(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    x[i] = 0.5 + i % 7;
    y[i] = 1.0 / (1 + i % 5);
  }

  // 3. #pragma omp parallel for reduction(+:dot)
  double dot = 0.0;
  rt.parallel([&](core::Team& t) {
    double local = 0.0;
    t.for_loop_nowait(0, kN, core::Schedule::static_block(),
                      [&](std::int64_t i) { local += x[i] * y[i]; });
    const double total = t.reduce(local, std::plus<double>{});
    if (t.thread_num() == 0) dot = total;
  });
  std::printf("dot product  = %.3f\n", dot);

  // 4. #pragma omp parallel + critical: a shared histogram.
  auto hist = rt.alloc_page_aligned<long>(8);
  for (int b = 0; b < 8; ++b) hist[b] = 0;
  rt.parallel([&](core::Team& t) {
    long local[8] = {};
    t.for_loop_nowait(0, kN, core::Schedule::dynamic(1024),
                      [&](std::int64_t i) { local[i % 8]++; });
    t.critical("histogram", [&] {
      for (int b = 0; b < 8; ++b) hist[b] = hist[b] + local[b];
    });
  });
  long total = 0;
  for (int b = 0; b < 8; ++b) total += hist[b];
  std::printf("histogram    = %ld entries across 8 bins\n", total);

  // 5. What did the software DSM actually do?
  const auto s = rt.dsm().stats();
  std::printf("\n--- DSM activity ---\n");
  std::printf("messages sent      : %llu (%llu crossed a node boundary)\n",
              static_cast<unsigned long long>(s[Counter::kMsgsSent]),
              static_cast<unsigned long long>(s[Counter::kMsgsOffNode]));
  std::printf("data moved         : %.2f MB\n", s.data_mbytes());
  std::printf("page faults        : %llu\n",
              static_cast<unsigned long long>(s[Counter::kPageFaults]));
  std::printf("mprotect calls     : %llu\n",
              static_cast<unsigned long long>(s[Counter::kMprotect]));
  std::printf("twins / diffs made : %llu / %llu\n",
              static_cast<unsigned long long>(s[Counter::kTwins]),
              static_cast<unsigned long long>(s[Counter::kDiffsCreated]));
  std::printf("simulated time     : %.1f ms on the 1999-era cluster\n",
              rt.dsm().master_time_us() / 1000.0);
  return 0;
}
