// Irregular task processing on the DSM — the scenario behind the paper's TSP
// benchmark: a shared work queue under `critical`, migratory data, and a
// shared best-so-far bound that every worker reads and improves.
//
// The "tasks" here are branches of a toy knapsack branch-and-bound: maximize
// value under a weight budget. Each dequeue extends a partial selection or
// bounds it out; improved incumbents propagate through the DSM lock exactly
// like TSP's shortest tour.
#include <cstdio>

#include "core/runtime.hpp"

namespace {

constexpr int kItems = 20;
constexpr int kBudget = 40;

struct Item {
  int weight;
  int value;
};

// Deterministic item set.
Item item(int i) {
  return {1 + (i * 7) % 9, 3 + (i * 11) % 13};
}

struct Task {
  std::int32_t next_item;
  std::int32_t weight;
  std::int32_t value;
};

struct Queue {
  std::int32_t top;       // stack pointer
  std::int32_t best;      // incumbent value
  std::int32_t in_flight; // tasks taken but not finished
  Task tasks[4096];
};

// Optimistic bound: all remaining items fit.
int upper_bound(const Task& t) {
  int bound = t.value;
  for (int i = t.next_item; i < kItems; ++i) bound += item(i).value;
  return bound;
}

} // namespace

int main() {
  using namespace omsp;
  tmk::Config cfg; // 4 nodes x 4 processors
  core::OmpRuntime rt(cfg);

  auto q = rt.alloc_page_aligned<Queue>(1);
  q->top = 0;
  q->best = 0;
  q->in_flight = 0;
  q->tasks[q->top++] = Task{0, 0, 0};
  q->in_flight = 1;

  rt.parallel([&](core::Team& t) {
    Queue* queue = q.local();
    for (;;) {
      Task task{};
      bool got = false, done = false;
      t.critical("queue", [&] {
        if (queue->top > 0) {
          task = queue->tasks[--queue->top];
          got = true;
        } else if (queue->in_flight == 0) {
          done = true;
        }
      });
      if (done) break;
      if (!got) continue;

      if (task.next_item == kItems || upper_bound(task) <= q->best) {
        // Leaf or bounded out: record the incumbent, finish the task.
        t.critical("queue", [&] {
          if (task.value > queue->best) queue->best = task.value;
          --queue->in_flight;
        });
        continue;
      }

      // Branch: skip item, and take it if it fits.
      Task skip = task;
      skip.next_item++;
      Task take = skip;
      take.weight += item(task.next_item).weight;
      take.value += item(task.next_item).value;
      t.critical("queue", [&] {
        if (task.value > queue->best) queue->best = task.value;
        queue->tasks[queue->top++] = skip;
        ++queue->in_flight;
        if (take.weight <= kBudget) {
          queue->tasks[queue->top++] = take;
          ++queue->in_flight;
        }
        --queue->in_flight; // the task we just expanded
      });
    }
  });

  std::printf("knapsack optimum: value %d within weight %d\n", q->best,
              kBudget);

  // Sequential verification.
  {
    int best = 0;
    for (int mask = 0; mask < (1 << kItems); ++mask) {
      int w = 0, v = 0;
      for (int i = 0; i < kItems; ++i)
        if (mask & (1 << i)) {
          w += item(i).weight;
          v += item(i).value;
        }
      if (w <= kBudget && v > best) best = v;
    }
    std::printf("sequential check: %d (%s)\n", best,
                best == q->best ? "MATCH" : "MISMATCH");
  }

  const auto s = rt.dsm().stats();
  std::printf("lock acquires: %llu (%llu crossed contexts)\n",
              static_cast<unsigned long long>(s[Counter::kLockAcquires]),
              static_cast<unsigned long long>(s[Counter::kLockRemoteAcquires]));
  return 0;
}
