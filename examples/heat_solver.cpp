// Heat diffusion on a plate — the PDE-solving scenario the paper's SOR
// benchmark models, here written as a small application: iterate a 5-point
// stencil until the residual converges, with red-black coloring so each
// sweep is a single `parallel for`.
//
// Demonstrates: iterative stencils on the DSM, convergence checks via scalar
// reductions, and how little data the diff-based protocol ships for a
// stencil (compare with the MPI version's whole boundary rows — the paper's
// §5.3.2 SOR observation).
#include <cmath>
#include <cstdio>

#include "core/runtime.hpp"

int main() {
  using namespace omsp;

  tmk::Config cfg; // 4 nodes x 4 processors, thread mode
  core::OmpRuntime rt(cfg);

  constexpr std::int64_t kRows = 256, kCols = 128;
  constexpr std::int64_t kStride = kCols + 2;
  auto grid = rt.alloc_page_aligned<double>((kRows + 2) * kStride);

  // Cold plate with a hot top edge and a warm right edge.
  for (std::int64_t i = 0; i < (kRows + 2) * kStride; ++i) grid[i] = 0.0;
  for (std::int64_t c = 0; c < kStride; ++c) grid[c] = 100.0;
  for (std::int64_t r = 0; r < kRows + 2; ++r)
    grid[r * kStride + kCols + 1] = 40.0;

  const double tolerance = 1e-3;
  double residual = 1e9;
  int iterations = 0;

  while (residual > tolerance && iterations < 500) {
    // Two colored half-sweeps; each is one parallel for over rows.
    for (int color = 0; color < 2; ++color) {
      rt.parallel_for(1, kRows + 1, core::Schedule::static_block(),
                      [&](std::int64_t r) {
                        double* row = grid.local() + r * kStride;
                        for (std::int64_t c = 1 + ((r + color) & 1);
                             c <= kCols; c += 2)
                          row[c] = 0.25 * (row[c - 1] + row[c + 1] +
                                           row[c - kStride] + row[c + kStride]);
                      });
    }
    ++iterations;

    // Convergence check every 10 sweeps: max residual via reduction.
    if (iterations % 10 == 0) {
      rt.parallel([&](core::Team& t) {
        double local = 0.0;
        t.for_loop_nowait(1, kRows + 1, core::Schedule::static_block(),
                          [&](std::int64_t r) {
                            const double* row = grid.local() + r * kStride;
                            for (std::int64_t c = 1; c <= kCols; ++c) {
                              const double next =
                                  0.25 * (row[c - 1] + row[c + 1] +
                                          row[c - kStride] + row[c + kStride]);
                              local = std::max(local, std::fabs(next - row[c]));
                            }
                          });
        const double m =
            t.reduce(local, [](double a, double b) { return std::max(a, b); });
        if (t.thread_num() == 0) residual = m;
      });
      std::printf("sweep %4d: residual %.6f\n", iterations, residual);
    }
  }

  // Sample the solution along the diagonal.
  std::printf("\n%s after %d sweeps (residual %.4f); diagonal temperatures:\n",
              residual <= tolerance ? "converged" : "stopped", iterations,
              residual);
  for (std::int64_t k = 1; k <= 5; ++k) {
    const std::int64_t r = k * kRows / 6, c = k * kCols / 6;
    std::printf("  T(%3lld,%3lld) = %6.2f\n", static_cast<long long>(r),
                static_cast<long long>(c), grid[r * kStride + c]);
  }

  const auto s = rt.dsm().stats();
  std::printf("\nDSM shipped %.2f MB in %llu messages for the whole solve\n",
              s.data_mbytes(),
              static_cast<unsigned long long>(s[Counter::kMsgsSent]));
  return 0;
}
