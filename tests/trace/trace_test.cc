// omsp::trace tests: ring semantics, serialization round-trips, sink output,
// and the end-to-end invariant the subsystem exists to uphold — an enabled
// trace reconstructs every StatsBoard counter exactly (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "tmk/system.hpp"
#include "trace/sinks.hpp"
#include "trace/tracer.hpp"

namespace omsp::trace {
namespace {

Event make_event(EventKind kind, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0, std::uint16_t flags = 0) {
  Event e;
  e.kind = kind;
  e.ctx = 1;
  e.rank = 3;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.flags = flags;
  e.ts_us = 12.5;
  e.dur_us = 2.25;
  return e;
}

// ------------------------------------------------------------------ ring ----

TEST(Ring, RoundsCapacityToPowerOfTwo) {
  EXPECT_EQ(Ring(5).capacity(), 8u);
  EXPECT_EQ(Ring(8).capacity(), 8u);
  EXPECT_EQ(Ring(1).capacity(), 2u);
}

TEST(Ring, DropsWhenFullAndCountsEveryDrop) {
  Ring ring(4);
  for (std::uint64_t i = 0; i < 7; ++i)
    ring.push(make_event(EventKind::kPageFault, i));
  EXPECT_EQ(ring.dropped(), 3u);

  std::vector<Event> out;
  ring.drain([&](const Event& e) { out.push_back(e); });
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].arg0, i);
}

TEST(Ring, WrapsCorrectlyAcrossManyDrainCycles) {
  Ring ring(4);
  std::uint64_t next_expected = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.push(make_event(EventKind::kMessage, i)));
    if (i % 3 == 2) {
      ring.drain([&](const Event& e) {
        ASSERT_EQ(e.arg0, next_expected);
        ++next_expected;
      });
    }
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

// --------------------------------------------------------- serialization ----

TEST(EventWire, RoundTripsEveryField) {
  const Event e =
      make_event(EventKind::kLockAcquire, 42, 7, kFlagRemote | kFlagWrite);
  ByteWriter w;
  serialize_event(e, w);
  EXPECT_EQ(w.size(), kEventWireBytes);
  ByteReader r(w.bytes());
  EXPECT_EQ(deserialize_event(r), e);
  EXPECT_TRUE(r.done());
}

TEST(TraceContainer, RoundTripsEventsDropsAndCounters) {
  std::vector<Event> events = {make_event(EventKind::kPageFault, 9),
                               make_event(EventKind::kTwinCreate, 9),
                               make_event(EventKind::kBarrierArrive, 0)};
  StatsSnapshot stats;
  stats[Counter::kPageFaults] = 1;
  stats[Counter::kTwins] = 1;
  stats[Counter::kBarriers] = 1;

  const auto bytes = encode_trace(events, /*dropped=*/5, stats);
  const TraceFile tf = decode_trace(bytes.data(), bytes.size());
  EXPECT_EQ(tf.events, events);
  EXPECT_EQ(tf.dropped, 5u);
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(tf.stats.v[c], stats.v[c]) << counter_name(static_cast<Counter>(c));
  EXPECT_EQ(tf.raw_counters.size(),
            static_cast<std::size_t>(Counter::kCount));
}

TEST(TraceContainer, RejectsCorruptMagic) {
  auto bytes = encode_trace({}, 0, StatsSnapshot{});
  bytes[0] = 'X';
  EXPECT_DEATH(decode_trace(bytes.data(), bytes.size()), "bad magic");
}

TEST(ChromeJson, EmitsSlicesInstantsAndTrackMetadata) {
  std::vector<Event> events = {make_event(EventKind::kPageFault, 9),
                               make_event(EventKind::kTwinCreate, 9)};
  events[1].dur_us = 0; // instant
  const std::string json = chrome_trace_json(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"page_fault\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos); // dur > 0
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos); // dur == 0
  EXPECT_NE(json.find("\"name\":\"ctx1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank3\""), std::string::npos);
}

// ---------------------------------------------------------- reconstruction --

TEST(Reconstruct, MapsEveryCounterBearingKind) {
  std::vector<Event> events = {
      make_event(EventKind::kMessage, 100, 2, kFlagOffNode),
      make_event(EventKind::kMessage, 40, 0, 0),
      make_event(EventKind::kPageFault, 3, 0, kFlagWrite),
      make_event(EventKind::kPageFault, 3, 0, 0),
      make_event(EventKind::kTwinCreate, 3),
      make_event(EventKind::kDiffCreate, 3, 64),
      make_event(EventKind::kDiffApply, 3, 64),
      make_event(EventKind::kMprotect, 3, 2),
      make_event(EventKind::kLockAcquire, 7, 0, kFlagRemote),
      make_event(EventKind::kLockAcquire, 7, 0, 0),
      make_event(EventKind::kBarrierArrive, 0),
      make_event(EventKind::kIntervalClose, 4, 2),
      make_event(EventKind::kWriteNoticesSent, 6),
      make_event(EventKind::kWriteNoticesRecv, 5),
      make_event(EventKind::kInvalidate, 3),
      make_event(EventKind::kFullPageFetch, 3),
      // Analysis-only kinds must not perturb any counter.
      make_event(EventKind::kBarrierWait, 0),
      make_event(EventKind::kDiffFetch, 3, 80),
      make_event(EventKind::kGcEpisode, 9000),
      make_event(EventKind::kRegionBegin, 1),
      make_event(EventKind::kRegionEnd, 1),
  };
  const StatsSnapshot s = reconstruct_counters(events);
  EXPECT_EQ(s[Counter::kMsgsSent], 2u);
  EXPECT_EQ(s[Counter::kBytesSent], 140u);
  EXPECT_EQ(s[Counter::kMsgsOffNode], 1u);
  EXPECT_EQ(s[Counter::kBytesOffNode], 100u);
  EXPECT_EQ(s[Counter::kPageFaults], 2u);
  EXPECT_EQ(s[Counter::kWriteFaults], 1u);
  EXPECT_EQ(s[Counter::kReadFaults], 1u);
  EXPECT_EQ(s[Counter::kTwins], 1u);
  EXPECT_EQ(s[Counter::kDiffsCreated], 1u);
  EXPECT_EQ(s[Counter::kDiffBytesCreated], 64u);
  EXPECT_EQ(s[Counter::kDiffsApplied], 1u);
  EXPECT_EQ(s[Counter::kMprotect], 1u);
  EXPECT_EQ(s[Counter::kLockAcquires], 2u);
  EXPECT_EQ(s[Counter::kLockRemoteAcquires], 1u);
  EXPECT_EQ(s[Counter::kBarriers], 1u);
  EXPECT_EQ(s[Counter::kIntervals], 1u);
  EXPECT_EQ(s[Counter::kWriteNoticesSent], 6u);
  EXPECT_EQ(s[Counter::kWriteNoticesRecv], 5u);
  EXPECT_EQ(s[Counter::kPageInvalidations], 1u);
  EXPECT_EQ(s[Counter::kFullPageFetches], 1u);
}

// ----------------------------------------------------------- tracer core ----

Options enabled_options(std::size_t ring_events = 1u << 16) {
  Options o;
  o.enabled = true;
  o.ring_events = ring_events;
  return o;
}

TEST(Tracer, SecondInstallLosesAndEmissionGoesToFirst) {
  Tracer first(enabled_options());
  Tracer second(enabled_options());
  ASSERT_TRUE(first.install());
  EXPECT_FALSE(second.install());
  EXPECT_EQ(Tracer::active(), &first);

  OMSP_TRACE_EVENT(kTwinCreate, 0, 11);
  EXPECT_EQ(first.snapshot_events().size(), 1u);
  EXPECT_EQ(second.snapshot_events().size(), 0u);

  first.uninstall();
  EXPECT_EQ(Tracer::active(), nullptr);
  OMSP_TRACE_EVENT(kTwinCreate, 0, 12); // no active tracer: dropped silently
  EXPECT_EQ(first.snapshot_events().size(), 1u);
}

TEST(Tracer, ClearResetsEventsAndDropAccounting) {
  Tracer tr(enabled_options(/*ring_events=*/4));
  ASSERT_TRUE(tr.install());
  for (int i = 0; i < 10; ++i) OMSP_TRACE_EVENT(kInvalidate, 0, i);
  EXPECT_EQ(tr.dropped_total(), 6u);
  tr.clear();
  EXPECT_EQ(tr.dropped_total(), 0u);
  EXPECT_TRUE(tr.snapshot_events().empty());
  OMSP_TRACE_EVENT(kInvalidate, 0, 99);
  EXPECT_EQ(tr.snapshot_events().size(), 1u);
  tr.uninstall();
}

// ----------------------------------------------------------- integration ----

// The protocol-hostile triangular-update pattern (see tests/tmk/stress_test)
// plus explicit barrier and lock traffic, run with tracing enabled: the
// reconstructed counters must equal the live StatsBoard totals EXACTLY, and
// nothing may be dropped.
void run_traced_workload(tmk::Mode mode) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = mode;
  cfg.trace.enabled = true;
  tmk::DsmSystem dsm(cfg);
  ASSERT_NE(dsm.tracer(), nullptr);

  constexpr std::int64_t kN = 16, kD = 512; // one page per vector
  auto data = dsm.alloc_page_aligned<long>(kN * kD);
  auto counter = dsm.alloc_page_aligned<long>(1);
  for (std::int64_t i = 0; i < kN * kD; ++i) data[i] = 1;
  counter[0] = 0;

  for (std::int64_t i = 0; i < kN; i += 4) {
    dsm.parallel([&](Rank r) {
      const std::int64_t lo = i, hi = std::min<std::int64_t>(i + 4, kN);
      for (std::int64_t j = lo + r; j < hi; j += dsm.nprocs())
        for (std::int64_t k = 0; k < kD; ++k) data[j * kD + k] += j;
      dsm.barrier();
      dsm.lock_acquire(3);
      counter[0] = counter[0] + 1;
      dsm.lock_release(3);
      dsm.barrier();
    });
  }
  EXPECT_EQ(counter[0], (kN / 4) * static_cast<long>(dsm.nprocs()));

  const auto events = dsm.tracer()->snapshot_events();
  EXPECT_GT(events.size(), 0u);
  EXPECT_EQ(dsm.tracer()->dropped_total(), 0u);

  const StatsSnapshot live = dsm.stats();
  const StatsSnapshot rebuilt = reconstruct_counters(events);
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
  // The workload must exercise the full taxonomy's counter-bearing core.
  EXPECT_GT(live[Counter::kPageFaults], 0u);
  EXPECT_GT(live[Counter::kBarriers], 0u);
  EXPECT_GT(live[Counter::kLockAcquires], 0u);
  EXPECT_GT(live[Counter::kDiffsCreated], 0u);
}

TEST(TraceIntegration, ReconstructsCountersExactlyThreadMode) {
  run_traced_workload(tmk::Mode::kThread);
}

TEST(TraceIntegration, ReconstructsCountersExactlyProcessMode) {
  run_traced_workload(tmk::Mode::kProcess);
}

TEST(TraceIntegration, ResetStatsAlsoClearsTrace) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.trace.enabled = true;
  tmk::DsmSystem dsm(cfg);
  ASSERT_NE(dsm.tracer(), nullptr);

  auto x = dsm.alloc_page_aligned<long>(1);
  dsm.parallel([&](Rank r) {
    if (r == 1) x[0] = 7;
    dsm.barrier();
  });
  EXPECT_GT(dsm.tracer()->snapshot_events().size(), 0u);

  // reset_stats mid-run (what apps::run_openmp does before timing a region)
  // must discard buffered events too, or finish-time reconciliation breaks.
  dsm.reset_stats();
  EXPECT_TRUE(dsm.tracer()->snapshot_events().empty());

  dsm.parallel([&](Rank r) {
    if (r == 0) x[0] = 9;
    dsm.barrier();
  });
  const StatsSnapshot live = dsm.stats();
  const StatsSnapshot rebuilt =
      reconstruct_counters(dsm.tracer()->snapshot_events());
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
}

TEST(TraceIntegration, FinishWritesSelfContainedBinaryFile) {
  const std::string path =
      "/tmp/omsp_trace_test_" + std::to_string(::getpid()) + ".trace";
  {
    tmk::Config cfg;
    cfg.topology = sim::Topology(2, 1);
    cfg.trace.enabled = true;
    cfg.trace.binary_path = path;
    tmk::DsmSystem dsm(cfg);
    auto x = dsm.alloc_page_aligned<long>(64);
    dsm.parallel([&](Rank r) {
      x[r] = r;
      dsm.barrier();
      x[32 + r] = x[1 - r];
    });
  } // destructor drains and writes the sink

  const TraceFile tf = read_binary(path);
  std::remove(path.c_str());
  EXPECT_GT(tf.events.size(), 0u);
  EXPECT_EQ(tf.dropped, 0u);
  const StatsSnapshot rebuilt = reconstruct_counters(tf.events);
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], tf.stats.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
}

TEST(TraceIntegration, DisabledTracingInstallsNothing) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 1);
  tmk::DsmSystem dsm(cfg);
  EXPECT_EQ(dsm.tracer(), nullptr);
  EXPECT_EQ(Tracer::active(), nullptr);
}

} // namespace
} // namespace omsp::trace
