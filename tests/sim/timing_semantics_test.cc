// Virtual-time semantics at the system level: the makespan rules that make
// Figure 1 measurable on a single-core host. All tests use cpu_scale = 0 so
// only modeled costs move the clocks, making outcomes exact.
#include <gtest/gtest.h>

#include <vector>

#include "../common/env_guard.hpp"
#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

Config timing_cfg(std::uint32_t nodes = 2, std::uint32_t ppn = 1) {
  Config cfg;
  cfg.topology = sim::Topology(nodes, ppn);
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  cfg.cost.cpu_scale = 0;
  return cfg;
}

TEST(TimingSemantics, LockGrantWaitsForReleaseTime) {
  Config cfg = timing_cfg();
  DsmSystem dsm(cfg);
  std::vector<double> t_after(2, 0);
  dsm.parallel([&](Rank r) {
    if (r == 0) {
      dsm.lock_acquire(4);
      dsm.clock(0).charge(10000); // hold the lock for 10ms of virtual time
      dsm.barrier();              // let rank 1 start its acquire attempt
      dsm.lock_release(4);
    } else {
      dsm.barrier();
      dsm.lock_acquire(4); // must wait for rank 0's virtual release time
      t_after[1] = dsm.clock(1).now_us();
      dsm.lock_release(4);
    }
  });
  EXPECT_GE(t_after[1], 10000.0);
}

TEST(TimingSemantics, MessageLatencyChargesAcquirer) {
  Config cfg = timing_cfg();
  cfg.cost.net_latency_us = 500;
  DsmSystem dsm(cfg);
  std::vector<double> taken(2, 0);
  dsm.parallel([&](Rank r) {
    if (r == 1) {
      const double before = dsm.clock(1).now_us();
      dsm.lock_acquire(0); // manager & token on context 0: remote acquire
      taken[1] = dsm.clock(1).now_us() - before;
      dsm.lock_release(0);
    }
  });
  // At least the request message latency must have been charged.
  EXPECT_GE(taken[1], 500.0);
}

TEST(TimingSemantics, JoinDominatesSlowestWorker) {
  Config cfg = timing_cfg(2, 2);
  DsmSystem dsm(cfg);
  dsm.parallel([&](Rank r) {
    if (r == 3) dsm.clock(3).charge(42000); // one slow worker
  });
  EXPECT_GE(dsm.master_time_us(), 42000.0);
}

TEST(TimingSemantics, ClocksNeverRegressAcrossRegions) {
  Config cfg = timing_cfg(2, 2);
  cfg.cost = sim::CostModel::sp2_default();
  cfg.cost.cpu_scale = 1.0;
  DsmSystem dsm(cfg);
  auto x = dsm.alloc_page_aligned<long>(512);
  double last = 0;
  for (int round = 0; round < 5; ++round) {
    dsm.parallel([&](Rank r) {
      x[r] = x[r] + 1;
      dsm.barrier();
    });
    const double now = dsm.master_time_us();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(TimingSemantics, OffNodeCostsMoreThanIntraNode) {
  // Same workload on one node (2 procs) vs two nodes (1 proc each): the
  // cross-node version pays switch latencies and must take longer. The
  // margin assumes the seed fetch path — pin the environment.
  const test::ScopedEnvClear env_guard;
  const auto run = [](std::uint32_t nodes, std::uint32_t ppn) {
    Config cfg;
    cfg.topology = sim::Topology(nodes, ppn);
    cfg.heap_bytes = 1u << 20;
    cfg.cost = sim::CostModel::sp2_default();
    cfg.cost.cpu_scale = 0;
    DsmSystem dsm(cfg);
    auto x = dsm.alloc_page_aligned<long>(1024);
    dsm.parallel([&](Rank r) {
      for (int round = 0; round < 5; ++round) {
        x[r * 512] = round;
        dsm.barrier();
        volatile long v = x[(1 - r) * 512];
        (void)v;
        dsm.barrier();
      }
    });
    return dsm.master_time_us();
  };
  const double intra = run(1, 2);
  const double inter = run(2, 1);
  EXPECT_GT(inter, intra);
}

TEST(TimingSemantics, ThreadModeBeatsProcessModeOnSharedReads) {
  // Four readers of one page: thread mode faults once per node, process mode
  // once per processor — the Table 3 effect expressed in time. The margin is
  // small enough that env-forced overlapped fetching can flip it; pin the
  // environment so the test measures the mode effect it names.
  const test::ScopedEnvClear env_guard;
  const auto run = [](Mode mode) {
    Config cfg;
    cfg.topology = sim::Topology(2, 2);
    cfg.mode = mode;
    cfg.heap_bytes = 1u << 20;
    cfg.cost = sim::CostModel::sp2_default();
    cfg.cost.cpu_scale = 0;
    DsmSystem dsm(cfg);
    auto x = dsm.alloc_page_aligned<long>(512);
    x[0] = 7;
    dsm.parallel([&](Rank r) {
      for (int round = 0; round < 10; ++round) {
        if (r == 0) x[round] = round;
        dsm.barrier();
        volatile long v = x[round];
        (void)v;
        dsm.barrier();
      }
    });
    return dsm.master_time_us();
  };
  EXPECT_LT(run(Mode::kThread), run(Mode::kProcess));
}

} // namespace
} // namespace omsp::tmk
