// Unit tests for the simulation substrate: topology math, cost model, and
// the virtual clock (including the compute-exclusion brackets).
#include <gtest/gtest.h>

#include "sim/cost_model.hpp"
#include "sim/topology.hpp"
#include "sim/virtual_clock.hpp"

namespace omsp::sim {
namespace {

TEST(Topology, RankMapping) {
  Topology t(4, 4);
  EXPECT_EQ(t.nprocs(), 16u);
  EXPECT_EQ(t.node_of_rank(0), 0u);
  EXPECT_EQ(t.node_of_rank(3), 0u);
  EXPECT_EQ(t.node_of_rank(4), 1u);
  EXPECT_EQ(t.node_of_rank(15), 3u);
  EXPECT_EQ(t.proc_of_rank(5), 1u);
  EXPECT_EQ(t.rank_of(2, 3), 11u);
  for (Rank r = 0; r < t.nprocs(); ++r)
    EXPECT_EQ(t.rank_of(t.node_of_rank(r), t.proc_of_rank(r)), r);
}

TEST(Topology, SameNode) {
  Topology t(2, 2);
  EXPECT_TRUE(t.same_node(0, 1));
  EXPECT_FALSE(t.same_node(1, 2));
  EXPECT_TRUE(t.same_node(2, 3));
}

TEST(Topology, Sp2IsFourByFour) {
  EXPECT_EQ(Topology::sp2().nodes(), 4u);
  EXPECT_EQ(Topology::sp2().procs_per_node(), 4u);
}

TEST(CostModel, MessageCostsSplitByLocality) {
  CostModel m = CostModel::sp2_default();
  const double local = m.message_us(1024, true);
  const double remote = m.message_us(1024, false);
  EXPECT_LT(local, remote);
  // Latency floor even for empty messages.
  EXPECT_GE(m.message_us(0, false), m.net_latency_us);
  // Bandwidth term grows linearly.
  const double big = m.message_us(1 << 20, false);
  EXPECT_NEAR(big - remote,
              ((1 << 20) - 1024) / m.net_bw_bytes_per_us, 1e-6);
}

TEST(CostModel, ZeroModelIsFree) {
  CostModel z = CostModel::zero();
  EXPECT_LT(z.message_us(1 << 20, false), 1e-9);
  EXPECT_EQ(z.mprotect_us, 0.0);
  EXPECT_EQ(z.cpu_scale, 0.0);
}

TEST(VirtualClock, ChargeAndMerge) {
  VirtualClock c(1.0);
  c.charge(100);
  EXPECT_DOUBLE_EQ(c.now_us(), 100);
  c.advance_to(50); // merge never goes backwards
  EXPECT_DOUBLE_EQ(c.now_us(), 100);
  c.advance_to(400);
  EXPECT_DOUBLE_EQ(c.now_us(), 400);
}

TEST(VirtualClock, CpuAccrualScales) {
  VirtualClock c(10.0);
  volatile double sink = 0;
  for (int i = 0; i < 4000000; ++i) sink = sink + 1;
  c.sync_cpu();
  const double t1 = c.now_us();
  EXPECT_GT(t1, 0);
  // skip_cpu drops the elapsed CPU instead of accruing it.
  for (int i = 0; i < 4000000; ++i) sink = sink + 1;
  c.skip_cpu();
  EXPECT_DOUBLE_EQ(c.now_us(), t1);
}

TEST(VirtualClock, DiscountScalesWithCpuScale) {
  VirtualClock c(50.0);
  c.charge(1000);
  c.discount_cpu(2.0); // 2 host-us at scale 50 = 100 simulated us
  EXPECT_DOUBLE_EQ(c.now_us(), 900);
}

TEST(VirtualClock, ThreadLocalBinding) {
  EXPECT_EQ(VirtualClock::current(), nullptr);
  VirtualClock c(1.0);
  {
    VirtualClock::Binder bind(&c);
    EXPECT_EQ(VirtualClock::current(), &c);
    {
      VirtualClock inner(1.0);
      VirtualClock::Binder bind2(&inner);
      EXPECT_EQ(VirtualClock::current(), &inner);
    }
    EXPECT_EQ(VirtualClock::current(), &c);
  }
  EXPECT_EQ(VirtualClock::current(), nullptr);
}

TEST(VirtualClock, RuntimeSectionExcludesHostWork) {
  VirtualClock c(1000.0);
  VirtualClock::Binder bind(&c);
  c.sync_cpu();
  const double before = c.now_us();
  {
    RuntimeSection rs;
    // "Runtime work" — must not count as scaled app compute.
    volatile double sink = 0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1;
  }
  c.sync_cpu();
  // Only the (tiny) bracket overhead may have accrued, not the loop at
  // 1000x scale (which would be tens of milliseconds of virtual time).
  EXPECT_LT(c.now_us() - before, 3000.0);
}

} // namespace
} // namespace omsp::sim
