// Hierarchical topology descriptor: rank <-> leaf round trips for every
// preset, path-stage enumeration, the bit-for-bit sp2 == legacy-cost
// guarantee, spec parsing and the OMSP_TOPOLOGY override. The worked cost
// examples in docs/TOPOLOGY.md are asserted here (FatTreeWorkedExamples) so
// the documented numbers cannot drift from the code.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/topology.hpp"

namespace omsp::sim {
namespace {

std::vector<Topology> all_presets() {
  return {Topology::sp2(), Topology::flat_switch(64, 4),
          Topology::fat_tree(2, 4, 2), Topology::fat_tree(3, 2, 4),
          Topology::asymmetric({4, 2, 2, 1})};
}

TEST(TopologyDescriptor, RankLeafRoundTripEveryPreset) {
  for (const auto& t : all_presets()) {
    SCOPED_TRACE(t.spec());
    std::uint32_t total = 0;
    for (NodeId n = 0; n < t.nodes(); ++n) total += t.procs_on_node(n);
    EXPECT_EQ(t.nprocs(), total);
    for (Rank r = 0; r < t.nprocs(); ++r) {
      const NodeId n = t.node_of_rank(r);
      const ProcId p = t.proc_of_rank(r);
      EXPECT_LT(n, t.nodes());
      EXPECT_LT(p, t.procs_on_node(n));
      EXPECT_EQ(t.rank_of(n, p), r);
    }
    // Node-major: consecutive ranks fill a node before spilling over.
    for (Rank r = 0; r + 1 < t.nprocs(); ++r)
      EXPECT_LE(t.node_of_rank(r), t.node_of_rank(r + 1));
  }
}

TEST(TopologyDescriptor, PathStagesSymmetricAndShaped) {
  for (const auto& t : all_presets()) {
    SCOPED_TRACE(t.spec());
    for (NodeId a = 0; a < t.nodes(); ++a) {
      for (NodeId b = 0; b < t.nodes(); ++b) {
        EXPECT_EQ(t.top_stage(a, b), t.top_stage(b, a));
        EXPECT_EQ(t.path_stages(a, b), t.path_stages(b, a));
        const auto path = t.path_stages(a, b);
        if (a == b) {
          EXPECT_EQ(path, std::vector<std::uint32_t>{0});
        } else {
          // Up through 1..k, down through k-1..1: palindromic, length 2k-1,
          // peaking at the top stage.
          const std::uint32_t k = t.top_stage(a, b);
          ASSERT_EQ(path.size(), 2u * k - 1);
          for (std::size_t i = 0; i < path.size(); ++i) {
            EXPECT_EQ(path[i], path[path.size() - 1 - i]);
            EXPECT_EQ(path[i], i < k ? i + 1 : 2 * k - 1 - i);
          }
        }
      }
    }
  }
}

TEST(TopologyDescriptor, FatTreeGrouping) {
  const Topology t = Topology::fat_tree(2, 4, 2);
  EXPECT_EQ(t.nodes(), 16u);
  EXPECT_EQ(t.nprocs(), 32u);
  EXPECT_EQ(t.top_stage(0, 0), 0u);  // same node
  EXPECT_EQ(t.top_stage(0, 3), 1u);  // same edge switch (nodes 0-3)
  EXPECT_EQ(t.top_stage(0, 4), 2u);  // crosses the spine
  EXPECT_EQ(t.top_stage(12, 15), 1u);
  EXPECT_EQ(t.top_stage(3, 12), 2u);
}

// The tier-1 guard: the sp2 preset must reproduce the legacy binary
// intra/inter cost split EXACTLY (EXPECT_EQ on doubles, not NEAR) for a
// grid of message sizes, under both the default and the zero cost model.
TEST(TopologyDescriptor, Sp2CostBitForBitMatchesLegacy) {
  const Topology sp2 = Topology::sp2();
  for (const CostModel& m : {CostModel::sp2_default(), CostModel::zero()}) {
    for (const std::size_t bytes :
         {std::size_t{0}, std::size_t{1}, std::size_t{64}, std::size_t{1024},
          std::size_t{4096}, std::size_t{65536}, std::size_t{1} << 20}) {
      EXPECT_EQ(sp2.message_us(m, bytes, 0, 0), m.message_us(bytes, true));
      EXPECT_EQ(sp2.message_us(m, bytes, 1, 1), m.message_us(bytes, true));
      EXPECT_EQ(sp2.message_us(m, bytes, 0, 3), m.message_us(bytes, false));
      EXPECT_EQ(sp2.message_us(m, bytes, 2, 1), m.message_us(bytes, false));
    }
  }
  // The legacy two-arg constructor and the preset are the same machine.
  EXPECT_EQ(sp2, Topology(4, 4));
  EXPECT_EQ(sp2.nodes(), 4u);
  EXPECT_EQ(sp2.procs_per_node(), 4u);
}

// The exact numbers documented in docs/TOPOLOGY.md "Worked cost examples".
// fat_tree(2, 4, 2), default cost model, 1024-byte message:
//   intra-node:    10 + 1024/150                    = 16.8267 us
//   same switch:   60 + 1024/35                     = 89.2571 us
//   cross-switch:  2*(60 + 1024/35) + 25 + 1024/300 = 206.9276 us
TEST(TopologyDescriptor, FatTreeWorkedExamples) {
  const Topology t = Topology::fat_tree(2, 4, 2);
  const CostModel m = CostModel::sp2_default();
  const double intra = t.message_us(m, 1024, 0, 0);
  const double edge = t.message_us(m, 1024, 0, 3);
  const double spine = t.message_us(m, 1024, 0, 5);
  EXPECT_DOUBLE_EQ(intra, 10.0 + 1024.0 / 150.0);
  EXPECT_DOUBLE_EQ(edge, 60.0 + 1024.0 / 35.0);
  EXPECT_DOUBLE_EQ(spine,
                   2.0 * (60.0 + 1024.0 / 35.0) + 25.0 + 1024.0 / 300.0);
  EXPECT_NEAR(intra, 16.8267, 1e-4);
  EXPECT_NEAR(edge, 89.2571, 1e-4);
  EXPECT_NEAR(spine, 206.9276, 1e-4);
}

TEST(TopologyDescriptor, PerStageOverridesAndOccupancy) {
  // Explicit stage parameters beat the CostModel; occupancy is additive.
  std::vector<Stage> stages = {Stage{2, 5.0, 100.0, 1.0},
                               Stage{3, 40.0, 50.0, 2.0}};
  const Topology t(std::move(stages), "custom");
  const CostModel m = CostModel::zero(); // must not matter for pinned stages
  EXPECT_DOUBLE_EQ(t.message_us(m, 1000, 1, 1), 5.0 + 10.0 + 1.0);
  EXPECT_DOUBLE_EQ(t.message_us(m, 1000, 0, 2), 40.0 + 20.0 + 2.0);
}

TEST(TopologyDescriptor, AsymmetricMix) {
  const Topology t = Topology::asymmetric({4, 2, 2});
  EXPECT_FALSE(t.uniform());
  EXPECT_EQ(t.nodes(), 3u);
  EXPECT_EQ(t.nprocs(), 8u);
  EXPECT_EQ(t.procs_on_node(0), 4u);
  EXPECT_EQ(t.procs_on_node(2), 2u);
  EXPECT_EQ(t.node_of_rank(3), 0u);
  EXPECT_EQ(t.node_of_rank(4), 1u);
  EXPECT_EQ(t.node_of_rank(6), 2u);
  EXPECT_EQ(t.proc_of_rank(5), 1u);
  EXPECT_EQ(t.rank_of(2, 1), 7u);
  EXPECT_TRUE(t.same_node(0, 3));
  EXPECT_FALSE(t.same_node(3, 4));
}

TEST(TopologyDescriptor, ParseRoundTripsAndRejectsMalformed) {
  for (const auto& t : all_presets()) {
    const auto parsed = Topology::parse(t.spec());
    ASSERT_TRUE(parsed.has_value()) << t.spec();
    EXPECT_EQ(*parsed, t) << t.spec();
    EXPECT_EQ(parsed->spec(), t.spec());
  }
  EXPECT_EQ(Topology::parse("flat:64x4")->nodes(), 64u);
  EXPECT_EQ(Topology::parse("fat:2x8x2")->nprocs(), 128u);
  EXPECT_EQ(Topology::parse("asym:4+2+1")->nprocs(), 7u);
  for (const char* bad :
       {"", "bogus", "flat:", "flat:4", "flat:4x", "flat:0x4", "flat:4x4x2",
        "fat:2x4", "fat:2x4x4x4", "asym:", "asym:4+", "asym:4+0",
        "flat:4x4junk", "sp3"}) {
    EXPECT_FALSE(Topology::parse(bad).has_value()) << bad;
  }
}

TEST(TopologyDescriptor, EnvOverride) {
  ::unsetenv("OMSP_TOPOLOGY");
  EXPECT_EQ(Topology::from_env_or(Topology::sp2()), Topology::sp2());
  ::setenv("OMSP_TOPOLOGY", "flat:64x4", 1);
  const Topology t = Topology::from_env_or(Topology::sp2());
  EXPECT_EQ(t, Topology::flat_switch(64, 4));
  EXPECT_EQ(t.spec(), "flat:64x4");
  ::setenv("OMSP_TOPOLOGY", "fat:2x4x2", 1);
  EXPECT_EQ(Topology::from_env_or(Topology::sp2()),
            Topology::fat_tree(2, 4, 2));
  ::unsetenv("OMSP_TOPOLOGY");
}

TEST(TopologyDescriptor, LinkSegments) {
  const Topology flat = Topology::flat_switch(4, 2);
  // Same node: stage 0, keyed by the node itself.
  EXPECT_EQ(flat.link_segment(2, 2), (std::uint64_t{0} << 32) | 2);
  // Off node: stage 1, keyed by the SENDER's uplink — destination-agnostic.
  EXPECT_EQ(flat.link_segment(1, 0), flat.link_segment(1, 3));
  EXPECT_EQ(flat.link_segment(1, 0), (std::uint64_t{1} << 32) | 1);

  const Topology fat = Topology::fat_tree(2, 4, 2);
  // Within one edge group: the sender node's NIC.
  EXPECT_EQ(fat.link_segment(0, 3), (std::uint64_t{1} << 32) | 0);
  // Across the spine: the sender's edge-switch trunk (group of 4), shared
  // by every cross-spine sender in that group.
  EXPECT_EQ(fat.link_segment(0, 5), fat.link_segment(3, 12));
  EXPECT_EQ(fat.link_segment(0, 5), (std::uint64_t{2} << 32) | 0);
  EXPECT_NE(fat.link_segment(0, 5), fat.link_segment(5, 0));
}

// For ANY two-stage topology the contended path is the single uplink window
// Router::link_segment names — the guarantee that keeps flat presets (sp2
// included) on exactly one busy window per message, bit-for-bit with the
// pre-stage-aware transport.
TEST(TopologyDescriptor, PathSegmentsCollapseToLinkSegmentOnTwoStages) {
  for (const auto& t : {Topology::sp2(), Topology::flat_switch(8, 2),
                        Topology::asymmetric({4, 2, 2, 1})}) {
    SCOPED_TRACE(t.spec());
    for (NodeId a = 0; a < t.nodes(); ++a)
      for (NodeId b = 0; b < t.nodes(); ++b)
        EXPECT_EQ(t.path_segments(a, b),
                  std::vector<std::uint64_t>{t.link_segment(a, b)});
  }
}

TEST(TopologyDescriptor, PathSegmentsWalkFatTreeUpAndDown) {
  const Topology t = Topology::fat_tree(2, 4, 2); // 16 nodes, groups of 4
  // Same edge group: just the sender's NIC.
  EXPECT_EQ(t.path_segments(1, 3),
            (std::vector<std::uint64_t>{(std::uint64_t{1} << 32) | 1}));
  // Cross-spine 1 -> 14: up node 1's NIC and edge switch 0's trunk, down
  // node 14's NIC — in path order.
  const std::vector<std::uint64_t> expect = {(std::uint64_t{1} << 32) | 1,
                                             (std::uint64_t{2} << 32) | 0,
                                             (std::uint64_t{1} << 32) | 14};
  EXPECT_EQ(t.path_segments(1, 14), expect);
  for (const std::uint64_t seg : expect)
    EXPECT_EQ(Topology::segment_stage(seg),
              static_cast<std::uint32_t>(seg >> 32));
  // Same node: the single intra-node segment.
  EXPECT_EQ(t.path_segments(2, 2), (std::vector<std::uint64_t>{2}));
}

// sp2 stays all-kInherit: the per-stage congestion helpers must resolve
// EXACTLY (EXPECT_EQ on doubles) to the CostModel scalars, and per-message
// occupancy must equal the single-scalar model for every node pair. This is
// the bit-for-bit half of the stage-aware congestion contract.
TEST(TopologyDescriptor, InheritedCongestionResolvesToCostModelExactly) {
  CostModel m = CostModel::sp2_default();
  m.send_occupancy_us = 3.0;
  m.occupancy_byte_us = 0.25;
  m.link_contention_us = 9.0;
  const Topology sp2 = Topology::sp2();
  for (std::uint32_t i = 0; i < sp2.num_stages(); ++i) {
    EXPECT_EQ(sp2.stage_send_occupancy_us(m, i), m.send_occupancy_us);
    EXPECT_EQ(sp2.stage_occupancy_byte_us(m, i), m.occupancy_byte_us);
    EXPECT_EQ(sp2.stage_link_contention_us(m, i), m.link_contention_us);
    EXPECT_EQ(sp2.stage_occupancy_us(m, i, 100), m.occupancy_us(100));
  }
  for (NodeId a = 0; a < sp2.nodes(); ++a)
    for (NodeId b = 0; b < sp2.nodes(); ++b)
      EXPECT_EQ(sp2.message_occupancy_us(m, 1024, a, b), m.occupancy_us(1024));
}

TEST(TopologyDescriptor, Sp2CalibratedPinsSwitchCongestion) {
  const CostModel m = CostModel::sp2_default();
  const Topology sp2 = Topology::sp2();
  const Topology cal = Topology::sp2_calibrated();
  EXPECT_EQ(cal.spec(), "sp2cal");
  ASSERT_TRUE(Topology::parse("sp2cal").has_value());
  EXPECT_EQ(*Topology::parse("sp2cal"), cal);
  EXPECT_NE(cal, sp2);
  // Same machine shape, latency and bandwidth as sp2...
  EXPECT_EQ(cal.nodes(), 4u);
  EXPECT_EQ(cal.procs_per_node(), 4u);
  EXPECT_EQ(cal.message_us(m, 4096, 0, 3), sp2.message_us(m, 4096, 0, 3));
  // ...with the switch stage's congestion triple pinned to the documented
  // SP2 numbers (docs/TOPOLOGY.md "Per-stage congestion and calibration"):
  EXPECT_DOUBLE_EQ(cal.stage_send_occupancy_us(m, 1), 25.0);
  EXPECT_DOUBLE_EQ(cal.stage_occupancy_byte_us(m, 1), 0.01);
  EXPECT_DOUBLE_EQ(cal.stage_link_contention_us(m, 1), 30.0);
  // The node stage still inherits — intra-node costs are untouched.
  EXPECT_EQ(cal.stage_send_occupancy_us(m, 0), m.send_occupancy_us);
  EXPECT_EQ(cal.stage_link_contention_us(m, 0), m.link_contention_us);
}

// The worked calibration example from docs/TOPOLOGY.md "Per-stage congestion
// and calibration", asserted so the documented numbers cannot drift.
//
// Price the paper's Table 2 message traffic on sp2cal's switch stage and
// fold it into the paper's Table 1 sequential times across 16 processors:
//
//   comm(msgs, MB) = msgs * (latency 60 + send occupancy 25)
//                  + MB * 1e6 * (1/35 per-byte wire + 0.01 per-byte stack)
//   T16 = (T_seq + comm) / 16,  predicted speedup = T_seq / T16
//
// Every application must land in the paper's observed envelope: speedups in
// (1, 16] for both program versions, comfortably parallel (>= 5x) for the
// translator's thread-optimized version, strictly better than the original
// (whose traffic is larger in every row of Table 2), and Barnes — the
// paper's headline restructuring win — at >= 1.3x the original's speedup.
// Barnes's worked numbers are pinned tight as the docs example.
TEST(TopologyDescriptor, Sp2CalibrationReproducesTable1Band) {
  const CostModel m = CostModel::sp2_default();
  const Topology cal = Topology::sp2_calibrated();

  const double per_msg_us =
      cal.stage_cost_us(m, 1, 0) + cal.stage_occupancy_us(m, 1, 0);
  EXPECT_DOUBLE_EQ(per_msg_us, 60.0 + 25.0);
  const double per_byte_us = 1.0 / 35.0 + cal.stage_occupancy_byte_us(m, 1);

  struct Row {
    const char* app;
    double seq_s;      // Table 1 sequential seconds
    double thr_msgs;   // Table 2 thread-version messages
    double thr_mb;     // Table 2 thread-version MB
    double orig_msgs;  // Table 2 original-version messages
    double orig_mb;    // Table 2 original-version MB
  };
  const Row rows[] = {
      {"Barnes", 158.0, 100259, 166.4, 841565, 543.0},
      {"3D-FFT", 65.2, 31694, 126.5, 40975, 159.4},
      {"Water", 760.3, 24667, 42.7, 78402, 192.3},
      {"SOR", 149.0, 735, 0.07, 3637, 0.64},
      {"TSP", 248.1, 4853, 0.55, 9227, 2.8},
      {"MGS", 563.3, 37041, 102.2, 184583, 508.6},
  };
  auto speedup = [&](double seq_s, double msgs, double mb) {
    const double comm_s =
        (msgs * per_msg_us + mb * 1e6 * per_byte_us) / 1e6;
    return seq_s / ((seq_s + comm_s) / 16.0);
  };
  for (const Row& r : rows) {
    SCOPED_TRACE(r.app);
    const double thr = speedup(r.seq_s, r.thr_msgs, r.thr_mb);
    const double orig = speedup(r.seq_s, r.orig_msgs, r.orig_mb);
    EXPECT_GT(thr, 5.0);
    EXPECT_LE(thr, 16.0);
    EXPECT_GT(orig, 1.0);
    EXPECT_LE(orig, 16.0);
    // Table 2's thread version sends less in every row, so it must predict
    // a strictly better runtime under the calibrated switch.
    EXPECT_GT(thr, orig);
  }
  // The docs' worked Barnes numbers: ~14.9s of modeled switch time for the
  // thread version against ~92.5s for the original — a 14.6x vs 10.1x
  // predicted speedup, mirroring the paper's Barnes restructuring win.
  const double barnes_thr = speedup(158.0, 100259, 166.4);
  const double barnes_orig = speedup(158.0, 841565, 543.0);
  EXPECT_NEAR(barnes_thr, 14.6, 0.1);
  EXPECT_NEAR(barnes_orig, 10.1, 0.1);
  EXPECT_GE(barnes_thr / barnes_orig, 1.3);
}

} // namespace
} // namespace omsp::sim
