// Hierarchical topology descriptor: rank <-> leaf round trips for every
// preset, path-stage enumeration, the bit-for-bit sp2 == legacy-cost
// guarantee, spec parsing and the OMSP_TOPOLOGY override. The worked cost
// examples in docs/TOPOLOGY.md are asserted here (FatTreeWorkedExamples) so
// the documented numbers cannot drift from the code.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/topology.hpp"

namespace omsp::sim {
namespace {

std::vector<Topology> all_presets() {
  return {Topology::sp2(), Topology::flat_switch(64, 4),
          Topology::fat_tree(2, 4, 2), Topology::fat_tree(3, 2, 4),
          Topology::asymmetric({4, 2, 2, 1})};
}

TEST(TopologyDescriptor, RankLeafRoundTripEveryPreset) {
  for (const auto& t : all_presets()) {
    SCOPED_TRACE(t.spec());
    std::uint32_t total = 0;
    for (NodeId n = 0; n < t.nodes(); ++n) total += t.procs_on_node(n);
    EXPECT_EQ(t.nprocs(), total);
    for (Rank r = 0; r < t.nprocs(); ++r) {
      const NodeId n = t.node_of_rank(r);
      const ProcId p = t.proc_of_rank(r);
      EXPECT_LT(n, t.nodes());
      EXPECT_LT(p, t.procs_on_node(n));
      EXPECT_EQ(t.rank_of(n, p), r);
    }
    // Node-major: consecutive ranks fill a node before spilling over.
    for (Rank r = 0; r + 1 < t.nprocs(); ++r)
      EXPECT_LE(t.node_of_rank(r), t.node_of_rank(r + 1));
  }
}

TEST(TopologyDescriptor, PathStagesSymmetricAndShaped) {
  for (const auto& t : all_presets()) {
    SCOPED_TRACE(t.spec());
    for (NodeId a = 0; a < t.nodes(); ++a) {
      for (NodeId b = 0; b < t.nodes(); ++b) {
        EXPECT_EQ(t.top_stage(a, b), t.top_stage(b, a));
        EXPECT_EQ(t.path_stages(a, b), t.path_stages(b, a));
        const auto path = t.path_stages(a, b);
        if (a == b) {
          EXPECT_EQ(path, std::vector<std::uint32_t>{0});
        } else {
          // Up through 1..k, down through k-1..1: palindromic, length 2k-1,
          // peaking at the top stage.
          const std::uint32_t k = t.top_stage(a, b);
          ASSERT_EQ(path.size(), 2u * k - 1);
          for (std::size_t i = 0; i < path.size(); ++i) {
            EXPECT_EQ(path[i], path[path.size() - 1 - i]);
            EXPECT_EQ(path[i], i < k ? i + 1 : 2 * k - 1 - i);
          }
        }
      }
    }
  }
}

TEST(TopologyDescriptor, FatTreeGrouping) {
  const Topology t = Topology::fat_tree(2, 4, 2);
  EXPECT_EQ(t.nodes(), 16u);
  EXPECT_EQ(t.nprocs(), 32u);
  EXPECT_EQ(t.top_stage(0, 0), 0u);  // same node
  EXPECT_EQ(t.top_stage(0, 3), 1u);  // same edge switch (nodes 0-3)
  EXPECT_EQ(t.top_stage(0, 4), 2u);  // crosses the spine
  EXPECT_EQ(t.top_stage(12, 15), 1u);
  EXPECT_EQ(t.top_stage(3, 12), 2u);
}

// The tier-1 guard: the sp2 preset must reproduce the legacy binary
// intra/inter cost split EXACTLY (EXPECT_EQ on doubles, not NEAR) for a
// grid of message sizes, under both the default and the zero cost model.
TEST(TopologyDescriptor, Sp2CostBitForBitMatchesLegacy) {
  const Topology sp2 = Topology::sp2();
  for (const CostModel& m : {CostModel::sp2_default(), CostModel::zero()}) {
    for (const std::size_t bytes :
         {std::size_t{0}, std::size_t{1}, std::size_t{64}, std::size_t{1024},
          std::size_t{4096}, std::size_t{65536}, std::size_t{1} << 20}) {
      EXPECT_EQ(sp2.message_us(m, bytes, 0, 0), m.message_us(bytes, true));
      EXPECT_EQ(sp2.message_us(m, bytes, 1, 1), m.message_us(bytes, true));
      EXPECT_EQ(sp2.message_us(m, bytes, 0, 3), m.message_us(bytes, false));
      EXPECT_EQ(sp2.message_us(m, bytes, 2, 1), m.message_us(bytes, false));
    }
  }
  // The legacy two-arg constructor and the preset are the same machine.
  EXPECT_EQ(sp2, Topology(4, 4));
  EXPECT_EQ(sp2.nodes(), 4u);
  EXPECT_EQ(sp2.procs_per_node(), 4u);
}

// The exact numbers documented in docs/TOPOLOGY.md "Worked cost examples".
// fat_tree(2, 4, 2), default cost model, 1024-byte message:
//   intra-node:    10 + 1024/150                    = 16.8267 us
//   same switch:   60 + 1024/35                     = 89.2571 us
//   cross-switch:  2*(60 + 1024/35) + 25 + 1024/300 = 206.9276 us
TEST(TopologyDescriptor, FatTreeWorkedExamples) {
  const Topology t = Topology::fat_tree(2, 4, 2);
  const CostModel m = CostModel::sp2_default();
  const double intra = t.message_us(m, 1024, 0, 0);
  const double edge = t.message_us(m, 1024, 0, 3);
  const double spine = t.message_us(m, 1024, 0, 5);
  EXPECT_DOUBLE_EQ(intra, 10.0 + 1024.0 / 150.0);
  EXPECT_DOUBLE_EQ(edge, 60.0 + 1024.0 / 35.0);
  EXPECT_DOUBLE_EQ(spine,
                   2.0 * (60.0 + 1024.0 / 35.0) + 25.0 + 1024.0 / 300.0);
  EXPECT_NEAR(intra, 16.8267, 1e-4);
  EXPECT_NEAR(edge, 89.2571, 1e-4);
  EXPECT_NEAR(spine, 206.9276, 1e-4);
}

TEST(TopologyDescriptor, PerStageOverridesAndOccupancy) {
  // Explicit stage parameters beat the CostModel; occupancy is additive.
  std::vector<Stage> stages = {Stage{2, 5.0, 100.0, 1.0},
                               Stage{3, 40.0, 50.0, 2.0}};
  const Topology t(std::move(stages), "custom");
  const CostModel m = CostModel::zero(); // must not matter for pinned stages
  EXPECT_DOUBLE_EQ(t.message_us(m, 1000, 1, 1), 5.0 + 10.0 + 1.0);
  EXPECT_DOUBLE_EQ(t.message_us(m, 1000, 0, 2), 40.0 + 20.0 + 2.0);
}

TEST(TopologyDescriptor, AsymmetricMix) {
  const Topology t = Topology::asymmetric({4, 2, 2});
  EXPECT_FALSE(t.uniform());
  EXPECT_EQ(t.nodes(), 3u);
  EXPECT_EQ(t.nprocs(), 8u);
  EXPECT_EQ(t.procs_on_node(0), 4u);
  EXPECT_EQ(t.procs_on_node(2), 2u);
  EXPECT_EQ(t.node_of_rank(3), 0u);
  EXPECT_EQ(t.node_of_rank(4), 1u);
  EXPECT_EQ(t.node_of_rank(6), 2u);
  EXPECT_EQ(t.proc_of_rank(5), 1u);
  EXPECT_EQ(t.rank_of(2, 1), 7u);
  EXPECT_TRUE(t.same_node(0, 3));
  EXPECT_FALSE(t.same_node(3, 4));
}

TEST(TopologyDescriptor, ParseRoundTripsAndRejectsMalformed) {
  for (const auto& t : all_presets()) {
    const auto parsed = Topology::parse(t.spec());
    ASSERT_TRUE(parsed.has_value()) << t.spec();
    EXPECT_EQ(*parsed, t) << t.spec();
    EXPECT_EQ(parsed->spec(), t.spec());
  }
  EXPECT_EQ(Topology::parse("flat:64x4")->nodes(), 64u);
  EXPECT_EQ(Topology::parse("fat:2x8x2")->nprocs(), 128u);
  EXPECT_EQ(Topology::parse("asym:4+2+1")->nprocs(), 7u);
  for (const char* bad :
       {"", "bogus", "flat:", "flat:4", "flat:4x", "flat:0x4", "flat:4x4x2",
        "fat:2x4", "fat:2x4x4x4", "asym:", "asym:4+", "asym:4+0",
        "flat:4x4junk", "sp3"}) {
    EXPECT_FALSE(Topology::parse(bad).has_value()) << bad;
  }
}

TEST(TopologyDescriptor, EnvOverride) {
  ::unsetenv("OMSP_TOPOLOGY");
  EXPECT_EQ(Topology::from_env_or(Topology::sp2()), Topology::sp2());
  ::setenv("OMSP_TOPOLOGY", "flat:64x4", 1);
  const Topology t = Topology::from_env_or(Topology::sp2());
  EXPECT_EQ(t, Topology::flat_switch(64, 4));
  EXPECT_EQ(t.spec(), "flat:64x4");
  ::setenv("OMSP_TOPOLOGY", "fat:2x4x2", 1);
  EXPECT_EQ(Topology::from_env_or(Topology::sp2()),
            Topology::fat_tree(2, 4, 2));
  ::unsetenv("OMSP_TOPOLOGY");
}

TEST(TopologyDescriptor, LinkSegments) {
  const Topology flat = Topology::flat_switch(4, 2);
  // Same node: stage 0, keyed by the node itself.
  EXPECT_EQ(flat.link_segment(2, 2), (std::uint64_t{0} << 32) | 2);
  // Off node: stage 1, keyed by the SENDER's uplink — destination-agnostic.
  EXPECT_EQ(flat.link_segment(1, 0), flat.link_segment(1, 3));
  EXPECT_EQ(flat.link_segment(1, 0), (std::uint64_t{1} << 32) | 1);

  const Topology fat = Topology::fat_tree(2, 4, 2);
  // Within one edge group: the sender node's NIC.
  EXPECT_EQ(fat.link_segment(0, 3), (std::uint64_t{1} << 32) | 0);
  // Across the spine: the sender's edge-switch trunk (group of 4), shared
  // by every cross-spine sender in that group.
  EXPECT_EQ(fat.link_segment(0, 5), fat.link_segment(3, 12));
  EXPECT_EQ(fat.link_segment(0, 5), (std::uint64_t{2} << 32) | 0);
  EXPECT_NE(fat.link_segment(0, 5), fat.link_segment(5, 0));
}

} // namespace
} // namespace omsp::sim
