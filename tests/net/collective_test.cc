// coll::Schedule derivation on every topology preset (leaders, levels,
// fan-out shape, asymmetric node sizes), the flat-vs-tree switchover, the
// OMSP_COLL spec grammar and its malformed-spec hard error. The worked
// schedule-derivation example in docs/TOPOLOGY.md is asserted here
// (FatTreeWorkedExample) so the documented numbers cannot drift.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "net/collective.hpp"
#include "sim/topology.hpp"

namespace omsp::coll {
namespace {

// Schedule over the ranks of `t` placed by node_of_rank — the MPI shape and
// the process-mode DSM shape (thread mode maps members to nodes instead).
Schedule rank_schedule(const sim::Topology& t) {
  return Schedule::tree(t, t.nprocs(),
                        [&t](std::uint32_t m) { return t.node_of_rank(m); });
}

std::vector<sim::Topology> all_presets() {
  return {sim::Topology::sp2(), sim::Topology::flat_switch(64, 4),
          sim::Topology::fat_tree(2, 4, 2), sim::Topology::fat_tree(3, 2, 4),
          sim::Topology::asymmetric({4, 2, 2, 1})};
}

TEST(CollOptions, SpecGrammarRoundTrip) {
  auto central = Options::parse("central");
  ASSERT_TRUE(central.has_value());
  EXPECT_FALSE(central->tree);

  auto tree = Options::parse("tree");
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->tree);
  EXPECT_EQ(tree->flat_max_bytes, Options{}.flat_max_bytes);

  auto sized = Options::parse("tree:4096");
  ASSERT_TRUE(sized.has_value());
  EXPECT_TRUE(sized->tree);
  EXPECT_EQ(sized->flat_max_bytes, 4096u);

  // tree:0 is legal: every payload takes the hierarchy.
  auto always = Options::parse("tree:0");
  ASSERT_TRUE(always.has_value());
  EXPECT_EQ(always->flat_max_bytes, 0u);
}

TEST(CollOptions, MalformedSpecsRejected) {
  for (const char* bad : {"", "Tree", "flat", "central:1", "tree:", "tree:abc",
                          "tree:12x", "tree::4", "tree:-1", "tree: 4",
                          "tree:99999999999"}) {
    SCOPED_TRACE(bad);
    EXPECT_FALSE(Options::parse(bad).has_value());
  }
}

TEST(CollOptions, EnvResolution) {
  ::unsetenv("OMSP_COLL");
  EXPECT_FALSE(Options::from_env().tree);
  ::setenv("OMSP_COLL", "tree:2048", 1);
  const Options o = Options::from_env();
  EXPECT_TRUE(o.tree);
  EXPECT_EQ(o.flat_max_bytes, 2048u);
  ::unsetenv("OMSP_COLL");
}

TEST(CollOptionsDeathTest, MalformedEnvIsHardError) {
  // A typo must not silently fall back to the centralized engine, mirroring
  // OMSP_TOPOLOGY's posture.
  ::setenv("OMSP_COLL", "ring", 1);
  EXPECT_DEATH((void)Options::from_env(), "malformed OMSP_COLL");
  ::unsetenv("OMSP_COLL");
}

TEST(CollSchedule, FlatStar) {
  const Schedule s = Schedule::flat(5);
  EXPECT_FALSE(s.is_tree());
  EXPECT_EQ(s.depth(), 1u);
  EXPECT_EQ(s.parent(0), -1);
  ASSERT_EQ(s.children(0).size(), 4u);
  for (std::uint32_t m = 1; m < 5; ++m) {
    EXPECT_EQ(s.parent(m), 0);
    EXPECT_EQ(s.level(m), 0u);
    EXPECT_TRUE(s.children(m).empty());
  }
}

TEST(CollSchedule, BuildAppliesSizeSwitchover) {
  const auto topo = sim::Topology::fat_tree(2, 4, 2);
  const auto node_of = [&topo](std::uint32_t m) { return topo.node_of_rank(m); };
  Options central;
  EXPECT_FALSE(
      Schedule::build(topo, topo.nprocs(), 1 << 20, central, node_of).is_tree());
  Options tree;
  tree.tree = true;
  tree.flat_max_bytes = 1024;
  EXPECT_FALSE(
      Schedule::build(topo, topo.nprocs(), 1024, tree, node_of).is_tree());
  EXPECT_TRUE(
      Schedule::build(topo, topo.nprocs(), 1025, tree, node_of).is_tree());
}

// Structural invariants on every preset: member 0 is the root; parents are
// lower-indexed (the leader rule); an edge's level is exactly the top stage
// between the two endpoints' nodes; leaders really are the lowest member of
// their group; traversal orders visit children before/after parents.
TEST(CollSchedule, LeaderDerivationEveryPreset) {
  for (const auto& t : all_presets()) {
    SCOPED_TRACE(t.spec());
    const Schedule s = rank_schedule(t);
    ASSERT_EQ(s.size(), t.nprocs());
    EXPECT_TRUE(s.is_tree());
    EXPECT_EQ(s.parent(0), -1);
    std::uint32_t edges = 0;
    for (std::uint32_t m = 1; m < s.size(); ++m) {
      const int parent = s.parent(m);
      ASSERT_GE(parent, 0);
      EXPECT_LT(static_cast<std::uint32_t>(parent), m); // leader = lowest index
      const NodeId nm = t.node_of_rank(m);
      const NodeId np = t.node_of_rank(static_cast<Rank>(parent));
      EXPECT_EQ(s.level(m), t.top_stage(nm, np));
      // The parent really is the leader: no member below it shares m's group
      // at the edge level, and no member below m shares a strictly cheaper
      // level (else m would have attached there instead).
      for (std::uint32_t o = 0; o < m; ++o) {
        const std::uint32_t shared = t.top_stage(t.node_of_rank(o), nm);
        if (o < static_cast<std::uint32_t>(parent)) {
          EXPECT_GT(shared, s.level(m))
              << "member " << o << " undercuts the leader of " << m;
        } else {
          EXPECT_GE(shared, s.level(m))
              << "member " << o << " offers " << m << " a cheaper attachment";
        }
      }
      ++edges;
    }
    EXPECT_EQ(edges, s.size() - 1); // spanning tree

    // Traversal orders respect the tree.
    std::vector<std::uint32_t> pos_up(s.size()), pos_down(s.size());
    const auto up = s.up_order(), down = s.down_order();
    ASSERT_EQ(up.size(), s.size());
    ASSERT_EQ(down.size(), s.size());
    for (std::uint32_t i = 0; i < s.size(); ++i) {
      pos_up[up[i]] = i;
      pos_down[down[i]] = i;
    }
    for (std::uint32_t m = 1; m < s.size(); ++m) {
      EXPECT_LT(pos_up[m], pos_up[static_cast<std::uint32_t>(s.parent(m))]);
      EXPECT_GT(pos_down[m], pos_down[static_cast<std::uint32_t>(s.parent(m))]);
    }
  }
}

// The docs/TOPOLOGY.md worked example: fat:2x4x2 (16 nodes x 2 procs, 4
// nodes per edge switch, 4 edge switches under one spine) over all 32 ranks.
TEST(CollSchedule, FatTreeWorkedExample) {
  const auto t = sim::Topology::fat_tree(2, 4, 2);
  const Schedule s = rank_schedule(t);
  EXPECT_EQ(s.depth(), 3u);

  // 16 intra-node edges, 12 edge-switch edges, 3 spine edges = 31 = p-1.
  std::map<std::uint32_t, std::uint32_t> edges_by_level;
  for (std::uint32_t m = 1; m < s.size(); ++m) ++edges_by_level[s.level(m)];
  EXPECT_EQ(edges_by_level[0], 16u);
  EXPECT_EQ(edges_by_level[1], 12u);
  EXPECT_EQ(edges_by_level[2], 3u);

  // Rank 11 (node 5): 11 -> 10 intra-node, 10 -> 8 across the edge switch,
  // 8 -> 0 across the spine.
  EXPECT_EQ(s.parent(11), 10);
  EXPECT_EQ(s.level(11), 0u);
  EXPECT_EQ(s.parent(10), 8);
  EXPECT_EQ(s.level(10), 1u);
  EXPECT_EQ(s.parent(8), 0);
  EXPECT_EQ(s.level(8), 2u);

  // Root fan-out, far-first: spine leaders 8/16/24, then edge-switch
  // leaders 2/4/6, then the root's own node peer 1.
  const std::vector<std::uint32_t> expect_kids = {8, 16, 24, 2, 4, 6, 1};
  EXPECT_EQ(s.children(0), expect_kids);
}

// Asymmetric node sizes: leaders follow the rank blocks (4+2+2+1).
TEST(CollSchedule, AsymmetricNodeSizes) {
  const auto t = sim::Topology::asymmetric({4, 2, 2, 1});
  const Schedule s = rank_schedule(t);
  EXPECT_EQ(s.depth(), 2u);
  // Node leaders are the first rank of each block: 0, 4, 6, 8.
  for (std::uint32_t m : {1u, 2u, 3u}) {
    EXPECT_EQ(s.parent(m), 0);
    EXPECT_EQ(s.level(m), 0u);
  }
  EXPECT_EQ(s.parent(5), 4);
  EXPECT_EQ(s.parent(7), 6);
  for (std::uint32_t m : {4u, 6u, 8u}) {
    EXPECT_EQ(s.parent(m), 0);
    EXPECT_EQ(s.level(m), 1u);
  }
  // Node 3 hosts a single rank: it is its own node leader and attaches at
  // the switch level like any other node leader.
  EXPECT_TRUE(s.children(8).empty());
}

// Thread-mode shape: members are nodes (the DSM barrier's mapping). A
// 3-level fat tree chains one hop per tier.
TEST(CollSchedule, NodeMembersDeepFatTree) {
  const auto t = sim::Topology::fat_tree(3, 2, 4);
  const Schedule s =
      Schedule::tree(t, t.nodes(), [](std::uint32_t m) { return m; });
  EXPECT_EQ(s.depth(), 3u);
  const std::vector<int> expect_parent = {-1, 0, 0, 2, 0, 4, 4, 6};
  const std::vector<std::uint32_t> expect_level = {0, 1, 2, 1, 3, 1, 2, 1};
  for (std::uint32_t m = 0; m < 8; ++m) {
    EXPECT_EQ(s.parent(m), expect_parent[m]) << "member " << m;
    if (m > 0) EXPECT_EQ(s.level(m), expect_level[m]) << "member " << m;
  }
}

// On a flat switch the hierarchy degenerates to the centralized star of
// node leaders — the schedule adds no artificial depth.
TEST(CollSchedule, FlatSwitchDegeneratesToStar) {
  const auto t = sim::Topology::flat_switch(64, 4);
  const Schedule s =
      Schedule::tree(t, t.nodes(), [](std::uint32_t m) { return m; });
  EXPECT_EQ(s.depth(), 1u);
  for (std::uint32_t m = 1; m < 64; ++m) {
    EXPECT_EQ(s.parent(m), 0);
    EXPECT_EQ(s.level(m), 1u);
  }
}

} // namespace
} // namespace omsp::coll
