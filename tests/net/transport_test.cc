// Transport-layer tests: kHeaderBytes framing, intra-/off-node
// classification, stats/trace pairing across reset_stats, the cost model's
// occupancy/contention knobs, and the seeded PerturbingTransport.
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "net/router.hpp"
#include "net/transport.hpp"
#include "trace/sinks.hpp"
#include "trace/tracer.hpp"

namespace omsp::net {
namespace {

class EchoHandler : public MessageHandler {
public:
  void handle(ContextId src, MsgType type, ByteReader& request,
              ByteWriter& reply) override {
    (void)src;
    (void)type;
    const auto payload = request.get_span<std::uint8_t>();
    reply.put_span<std::uint8_t>({payload.data(), payload.size()});
    ++calls;
  }
  int calls = 0;
};

Router make_router(sim::CostModel model = sim::CostModel::zero()) {
  // Contexts 0,1 on node 0; context 2 on node 1.
  return Router({0, 0, 1}, model);
}

// ------------------------------------------------------------- framing ------

TEST(InlineTransport, NotifyAddsExactlyHeaderBytes) {
  auto router = make_router();
  router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 100));
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsSent), 1u);
  EXPECT_EQ(router.stats(0).get(Counter::kBytesSent), 100 + kHeaderBytes);
  EXPECT_EQ(router.stats(0).get(Counter::kBytesOffNode), 100 + kHeaderBytes);
}

TEST(InlineTransport, CallFramesBothDirections) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);
  ByteWriter req;
  std::vector<std::uint8_t> payload(100, 9);
  req.put_span<std::uint8_t>({payload.data(), payload.size()});
  // put_span encodes a 4-byte length prefix, so the wire payload is 104.
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  EXPECT_EQ(router.stats(0).get(Counter::kBytesSent), 104 + kHeaderBytes);
  EXPECT_EQ(router.stats(2).get(Counter::kBytesSent), 104 + kHeaderBytes);
}

TEST(InlineTransport, ZeroPayloadNoticeStillCountsHeader) {
  auto router = make_router();
  router.transport().notify(Envelope::notice(0, 1, MsgType::kLockRequest, 0));
  EXPECT_EQ(router.stats(0).get(Counter::kBytesSent), kHeaderBytes);
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsOffNode), 0u); // same node
}

// -------------------------------------------------------- classification ----

TEST(InlineTransport, ClassifiesLinksByNodeNotContext) {
  auto router = make_router();
  router.transport().notify(Envelope::notice(0, 1, MsgType::kGcRecords, 8));
  router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 8));
  router.transport().notify(Envelope::notice(2, 1, MsgType::kGcRecords, 8));
  const auto s = router.snapshot();
  EXPECT_EQ(s[Counter::kMsgsSent], 3u);
  EXPECT_EQ(s[Counter::kMsgsOffNode], 2u); // 0->2 and 2->1 cross nodes
}

// ---------------------------------------------- stats/trace pairing ---------

// Every counter add in the transport has a paired trace event, and the pair
// survives a reset_stats() mid-run as long as the trace buffer is cleared in
// the same window (the DsmSystem::reset_stats contract).
TEST(InlineTransport, StatsTracePairingAcrossReset) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);

  auto expect_exact = [&] {
    const StatsSnapshot live = router.snapshot();
    const StatsSnapshot rebuilt =
        trace::reconstruct_counters(tracer.snapshot_events());
    for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
      EXPECT_EQ(rebuilt.v[c], live.v[c])
          << "counter " << counter_name(static_cast<Counter>(c));
  };

  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  router.transport().notify(Envelope::notice(1, 2, MsgType::kLockGrant, 32));
  expect_exact();

  router.reset_stats();
  tracer.clear();
  expect_exact(); // both sides empty

  router.transport().notify(Envelope::notice(2, 0, MsgType::kMpiData, 64));
  ByteWriter req2;
  req2.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(1, 2, MsgType::kPageRequest, req2));
  expect_exact();
  tracer.uninstall();
}

TEST(InlineTransport, MessageEventsCarryTypedArg1) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  auto router = make_router();
  router.transport().notify(
      Envelope::notice(0, 2, MsgType::kBarrierArrival, 24));
  const auto events = tracer.snapshot_events();
  tracer.uninstall();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, trace::EventKind::kMessage);
  EXPECT_EQ(message_type_of_arg1(events[0].arg1), MsgType::kBarrierArrival);
  EXPECT_EQ(message_dst_of_arg1(events[0].arg1), 2u);
  EXPECT_TRUE(events[0].flags & trace::kFlagOffNode);
}

// ------------------------------------------------- occupancy/contention -----

TEST(InlineTransport, OccupancyKnobsChargeAtTransport) {
  sim::CostModel model = sim::CostModel::zero();
  model.send_occupancy_us = 3.0;
  model.occupancy_byte_us = 0.5;
  auto router = make_router(model);
  // notify: modeled cost (0 under zero()) + occupancy of the wire bytes.
  const double cost = router.transport().notify(
      Envelope::notice(0, 1, MsgType::kLockRequest, 100 - kHeaderBytes));
  EXPECT_NEAR(cost, 3.0 + 0.5 * 100, 1e-9);
}

TEST(InlineTransport, CallChargesOccupancyBothWays) {
  sim::CostModel model = sim::CostModel::zero();
  model.send_occupancy_us = 10.0;
  auto router = make_router(model);
  EchoHandler echo;
  router.bind_handler(2, &echo);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  EXPECT_NEAR(clock.now_us(), 20.0, 1e-9); // request + reply occupancy
}

// A handler that issues a second call on the same directional link while the
// first is still in flight: the nested send must pay the contention penalty.
class NestedCallHandler : public MessageHandler {
public:
  explicit NestedCallHandler(Router& router) : router_(router) {}
  void handle(ContextId src, MsgType type, ByteReader& request,
              ByteWriter& reply) override {
    (void)src;
    (void)type;
    (void)request;
    (void)reply;
    if (depth_++ == 0) {
      ByteWriter req;
      req.put_span<std::uint8_t>({});
      (void)router_.transport().call(
          Envelope::request(0, 2, MsgType::kDiffRequest, req));
    }
  }

private:
  Router& router_;
  int depth_ = 0;
};

TEST(InlineTransport, LinkContentionChargesQueuedMessages) {
  sim::CostModel model = sim::CostModel::zero();
  model.link_contention_us = 7.0;
  auto router = make_router(model);
  NestedCallHandler nested(router);
  router.bind_handler(2, &nested);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  // Outer request saw an idle link (0 queued); the nested request saw one
  // message in flight on node0->node1 and paid 7us. Replies travel the
  // reverse link, which is idle.
  EXPECT_NEAR(clock.now_us(), 7.0, 1e-9);
}

// ------------------------------------------------------ perturbation --------

PerturbOptions perturb_all() {
  PerturbOptions o;
  o.enabled = true;
  o.seed = 42;
  o.jitter_max_us = 0;
  o.duplicate_prob = 1.0;
  o.reorder_prob = 0;
  return o;
}

TEST(PerturbingTransport, DuplicatesEveryCallAndReAccounts) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), perturb_all()));

  ByteWriter req;
  std::vector<std::uint8_t> payload{1, 2, 3};
  req.put_span<std::uint8_t>({payload.data(), payload.size()});
  auto reply = router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));

  EXPECT_EQ(echo.calls, 2); // original + injected retransmission
  ByteReader r(reply);
  EXPECT_EQ(r.get_span<std::uint8_t>(), payload); // first reply stands
  // Both deliveries are accounted, so counters stay audit-consistent.
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsSent), 2u);
  EXPECT_EQ(router.stats(2).get(Counter::kMsgsSent), 2u);
  auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
  EXPECT_EQ(pt.stats().duplicates, 1u);
}

TEST(PerturbingTransport, DuplicateDeliveriesCarryPerturbedFlag) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  auto router = make_router();
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), perturb_all()));
  router.transport().notify(Envelope::notice(0, 2, MsgType::kMpiData, 10));
  const auto events = tracer.snapshot_events();
  tracer.uninstall();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].flags & trace::kFlagPerturbed);
  EXPECT_TRUE(events[1].flags & trace::kFlagPerturbed);
  // Even with injected traffic the trace reconstructs the boards exactly.
  const StatsSnapshot rebuilt = trace::reconstruct_counters(events);
  EXPECT_EQ(rebuilt[Counter::kMsgsSent],
            router.snapshot()[Counter::kMsgsSent]);
}

TEST(PerturbingTransport, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    auto router = make_router();
    EchoHandler echo;
    router.bind_handler(2, &echo);
    PerturbOptions o;
    o.enabled = true;
    o.seed = seed;
    o.duplicate_prob = 0.5;
    o.reorder_prob = 0.5;
    router.set_transport(std::make_unique<PerturbingTransport>(
        std::make_unique<InlineTransport>(router), o));
    double cost = 0;
    for (int i = 0; i < 64; ++i)
      cost += router.transport().notify(
          Envelope::notice(0, 2, MsgType::kGcRecords, 8));
    auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
    return std::tuple{router.snapshot()[Counter::kMsgsSent],
                      pt.stats().duplicates, pt.stats().reorders,
                      pt.stats().jitter_us, cost};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(std::get<3>(run(7)), std::get<3>(run(8)));
}

TEST(PerturbingTransport, ReorderHoldsBackNotificationsBounded) {
  auto router = make_router();
  PerturbOptions o;
  o.enabled = true;
  o.seed = 1;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 1.0;
  o.reorder_max_us = 50.0;
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), o));
  for (int i = 0; i < 32; ++i) {
    const double cost = router.transport().notify(
        Envelope::notice(0, 2, MsgType::kGcRecords, 8));
    EXPECT_GE(cost, 0.0);
    EXPECT_LE(cost, o.reorder_max_us); // zero() model: cost is pure hold-back
  }
  auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
  EXPECT_EQ(pt.stats().reorders, 32u);
  EXPECT_LE(pt.stats().jitter_us, 32 * o.reorder_max_us);
}

TEST(PerturbOptions, FromEnvParsesSeed) {
  ::setenv("OMSP_PERTURB_SEED", "17", 1);
  auto o = PerturbOptions::from_env();
  EXPECT_TRUE(o.enabled);
  EXPECT_EQ(o.seed, 17u);
  ::unsetenv("OMSP_PERTURB_SEED");
  o = PerturbOptions::from_env();
  EXPECT_FALSE(o.enabled);
}

} // namespace
} // namespace omsp::net
