// Transport-layer tests: kHeaderBytes framing, intra-/off-node
// classification, stats/trace pairing across reset_stats, the cost model's
// occupancy/contention knobs, and the seeded PerturbingTransport.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdlib>
#include <thread>
#include <tuple>

#include "../common/env_guard.hpp"
#include "net/router.hpp"
#include "net/transport.hpp"
#include "trace/sinks.hpp"
#include "trace/tracer.hpp"

namespace omsp::net {
namespace {

class EchoHandler : public MessageHandler {
public:
  void handle(ContextId src, MsgType type, ByteReader& request,
              ByteWriter& reply) override {
    (void)src;
    (void)type;
    const auto payload = request.get_span<std::uint8_t>();
    reply.put_span<std::uint8_t>({payload.data(), payload.size()});
    ++calls;
  }
  int calls = 0;
};

Router make_router(sim::CostModel model = sim::CostModel::zero()) {
  // Contexts 0,1 on node 0; context 2 on node 1.
  return Router({0, 0, 1}, model);
}

// ------------------------------------------------------------- framing ------

TEST(InlineTransport, NotifyAddsExactlyHeaderBytes) {
  auto router = make_router();
  router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 100));
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsSent), 1u);
  EXPECT_EQ(router.stats(0).get(Counter::kBytesSent), 100 + kHeaderBytes);
  EXPECT_EQ(router.stats(0).get(Counter::kBytesOffNode), 100 + kHeaderBytes);
}

TEST(InlineTransport, CallFramesBothDirections) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);
  ByteWriter req;
  std::vector<std::uint8_t> payload(100, 9);
  req.put_span<std::uint8_t>({payload.data(), payload.size()});
  // put_span encodes a 4-byte length prefix, so the wire payload is 104.
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  EXPECT_EQ(router.stats(0).get(Counter::kBytesSent), 104 + kHeaderBytes);
  EXPECT_EQ(router.stats(2).get(Counter::kBytesSent), 104 + kHeaderBytes);
}

TEST(InlineTransport, ZeroPayloadNoticeStillCountsHeader) {
  auto router = make_router();
  router.transport().notify(Envelope::notice(0, 1, MsgType::kLockRequest, 0));
  EXPECT_EQ(router.stats(0).get(Counter::kBytesSent), kHeaderBytes);
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsOffNode), 0u); // same node
}

// -------------------------------------------------------- classification ----

TEST(InlineTransport, ClassifiesLinksByNodeNotContext) {
  auto router = make_router();
  router.transport().notify(Envelope::notice(0, 1, MsgType::kGcRecords, 8));
  router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 8));
  router.transport().notify(Envelope::notice(2, 1, MsgType::kGcRecords, 8));
  const auto s = router.snapshot();
  EXPECT_EQ(s[Counter::kMsgsSent], 3u);
  EXPECT_EQ(s[Counter::kMsgsOffNode], 2u); // 0->2 and 2->1 cross nodes
}

// ---------------------------------------------- stats/trace pairing ---------

// Every counter add in the transport has a paired trace event, and the pair
// survives a reset_stats() mid-run as long as the trace buffer is cleared in
// the same window (the DsmSystem::reset_stats contract).
TEST(InlineTransport, StatsTracePairingAcrossReset) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);

  auto expect_exact = [&] {
    const StatsSnapshot live = router.snapshot();
    const StatsSnapshot rebuilt =
        trace::reconstruct_counters(tracer.snapshot_events());
    for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
      EXPECT_EQ(rebuilt.v[c], live.v[c])
          << "counter " << counter_name(static_cast<Counter>(c));
  };

  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  router.transport().notify(Envelope::notice(1, 2, MsgType::kLockGrant, 32));
  expect_exact();

  router.reset_stats();
  tracer.clear();
  expect_exact(); // both sides empty

  router.transport().notify(Envelope::notice(2, 0, MsgType::kMpiData, 64));
  ByteWriter req2;
  req2.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(1, 2, MsgType::kPageRequest, req2));
  expect_exact();
  tracer.uninstall();
}

TEST(InlineTransport, MessageEventsCarryTypedArg1) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  auto router = make_router();
  router.transport().notify(
      Envelope::notice(0, 2, MsgType::kBarrierArrival, 24));
  const auto events = tracer.snapshot_events();
  tracer.uninstall();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, trace::EventKind::kMessage);
  EXPECT_EQ(message_type_of_arg1(events[0].arg1), MsgType::kBarrierArrival);
  EXPECT_EQ(message_dst_of_arg1(events[0].arg1), 2u);
  EXPECT_TRUE(events[0].flags & trace::kFlagOffNode);
}

// ------------------------------------------------- occupancy/contention -----

TEST(InlineTransport, OccupancyKnobsChargeAtTransport) {
  sim::CostModel model = sim::CostModel::zero();
  model.send_occupancy_us = 3.0;
  model.occupancy_byte_us = 0.5;
  auto router = make_router(model);
  // notify: modeled cost (0 under zero()) + occupancy of the wire bytes.
  const double cost = router.transport().notify(
      Envelope::notice(0, 1, MsgType::kLockRequest, 100 - kHeaderBytes));
  EXPECT_NEAR(cost, 3.0 + 0.5 * 100, 1e-9);
}

TEST(InlineTransport, CallChargesOccupancyBothWays) {
  sim::CostModel model = sim::CostModel::zero();
  model.send_occupancy_us = 10.0;
  auto router = make_router(model);
  EchoHandler echo;
  router.bind_handler(2, &echo);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  EXPECT_NEAR(clock.now_us(), 20.0, 1e-9); // request + reply occupancy
}

// A handler that issues a second call on the same directional link while the
// first is still in flight: the nested send must pay the contention penalty.
class NestedCallHandler : public MessageHandler {
public:
  explicit NestedCallHandler(Router& router) : router_(router) {}
  void handle(ContextId src, MsgType type, ByteReader& request,
              ByteWriter& reply) override {
    (void)src;
    (void)type;
    (void)request;
    (void)reply;
    if (depth_++ == 0) {
      ByteWriter req;
      req.put_span<std::uint8_t>({});
      (void)router_.transport().call(
          Envelope::request(0, 2, MsgType::kDiffRequest, req));
    }
  }

private:
  Router& router_;
  int depth_ = 0;
};

TEST(InlineTransport, LinkContentionChargesQueuedMessages) {
  sim::CostModel model = sim::CostModel::zero();
  model.link_contention_us = 7.0;
  auto router = make_router(model);
  NestedCallHandler nested(router);
  router.bind_handler(2, &nested);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  // Outer request saw an idle link (0 queued); the nested request saw one
  // message in flight on node0->node1 and paid 7us. Replies travel the
  // reverse link, which is idle.
  EXPECT_NEAR(clock.now_us(), 7.0, 1e-9);
}

// Regression: the old implementation counted host-instantaneous in-flight
// messages (fetch_add before the handler, fetch_sub after), so two sends that
// merely overlapped in HOST time charged each other the queueing penalty even
// when their MODELED times were a million microseconds apart — the charge
// depended on which thread won the race. The windowed model keys the charge
// on modeled time alone: sends in disjoint modeled busy periods never pay,
// no matter how the host scheduler interleaves them.
TEST(InlineTransport, LinkContentionIgnoresHostRaces) {
  class AtomicEcho : public MessageHandler {
  public:
    void handle(ContextId, MsgType, ByteReader& request,
                ByteWriter& reply) override {
      const auto payload = request.get_span<std::uint8_t>();
      reply.put_span<std::uint8_t>({payload.data(), payload.size()});
      calls.fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic<int> calls{0};
  };

  sim::CostModel model = sim::CostModel::zero();
  model.link_contention_us = 7.0;
  for (int iter = 0; iter < 100; ++iter) {
    auto router = make_router(model);
    AtomicEcho echo;
    router.bind_handler(2, &echo);
    std::barrier sync(2);
    auto send_at = [&](ContextId src, double t) {
      sim::VirtualClock clock(0.0);
      sim::VirtualClock::Binder bind(&clock);
      clock.set_now_us(t);
      sync.arrive_and_wait(); // maximize host-time overlap on the shared link
      ByteWriter req;
      req.put_span<std::uint8_t>({});
      (void)router.transport().call(
          Envelope::request(src, 2, MsgType::kDiffRequest, req));
      return clock.now_us();
    };
    double t0 = -1, t1 = -1;
    std::thread a([&] { t0 = send_at(0, 0.0); });
    std::thread b([&] { t1 = send_at(1, 1e6); });
    a.join();
    b.join();
    // Disjoint modeled windows: neither request queues behind the other,
    // on every run. (zero()'s bandwidth is finite, hence NEAR not EQ.)
    EXPECT_NEAR(t0, 0.0, 1e-9);
    EXPECT_NEAR(t1, 1e6, 1e-9);
  }
}

// Segment sharing: the stage-path topology keys the off-node busy window by
// the SENDER's uplink (Router::link_segment), not the (src, dst) pair — one
// NIC, one wire out of the node, no matter where the packets are headed.
class CrossDestNestedHandler : public MessageHandler {
public:
  explicit CrossDestNestedHandler(Router& router) : router_(router) {}
  void handle(ContextId src, MsgType type, ByteReader& request,
              ByteWriter& reply) override {
    (void)src;
    (void)type;
    (void)request;
    (void)reply;
    if (depth_++ == 0) {
      // A second send from node 0 while the first is in flight — but to a
      // DIFFERENT destination node.
      ByteWriter req;
      req.put_span<std::uint8_t>({});
      (void)router_.transport().call(
          Envelope::request(0, 2, MsgType::kDiffRequest, req));
    }
  }

private:
  Router& router_;
  int depth_ = 0;
};

TEST(InlineTransport, UplinkSegmentSharedAcrossDestinations) {
  sim::CostModel model = sim::CostModel::zero();
  model.link_contention_us = 7.0;
  // Three single-proc nodes behind one switch; contexts 0,1,2 on nodes 0,1,2.
  Router router({0, 1, 2}, model, sim::Topology::flat_switch(3, 1));
  CrossDestNestedHandler nested(router);
  router.bind_handler(1, &nested);
  EchoHandler echo;
  router.bind_handler(2, &echo);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 1, MsgType::kDiffRequest, req));
  // The nested 0->2 request left while 0->1 still occupied node 0's uplink:
  // different destination, same segment, so it queued and paid the 7us. A
  // (src, dst)-pair keyed window would have let it sail through for free.
  EXPECT_NEAR(clock.now_us(), 7.0, 1e-9);
  EXPECT_EQ(echo.calls, 1);
}

// ------------------------------------------------- per-stage busy windows ---

// A three-stage test machine: 4 single-proc nodes, 2 per edge switch, 2 edge
// switches under one spine. Each network tier pins its own contention hold,
// so an edge NIC and a spine trunk queue independently at their own rates.
// Under CostModel::zero() the only modeled time is queueing, which makes the
// assertions below closed-form.
sim::Topology deep_machine(double edge_hold_us, double spine_hold_us) {
  sim::Stage node{1};
  sim::Stage edge{2};
  edge.link_contention_us = edge_hold_us;
  sim::Stage spine{2};
  spine.link_contention_us = spine_hold_us;
  return sim::Topology({node, edge, spine}, "test:2x2x1");
}

Router make_deep_router(const sim::Topology& topo,
                        sim::CostModel model = sim::CostModel::zero()) {
  // One context per node: 0,1 under edge switch 0; 2,3 under edge switch 1.
  return Router({0, 1, 2, 3}, model, topo);
}

TEST(InlineTransport, SpineTrunkQueuesOnlySendersSharingIt) {
  auto router = make_deep_router(deep_machine(0.0, 11.0));
  EchoHandler echo;
  router.bind_handler(2, &echo);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  // The request reserved spine trunk 0 for [0, 11); its reply climbed trunk
  // 1 (up legs key on the sending side), which was idle — no charge.
  EXPECT_NEAR(clock.now_us(), 0.0, 1e-6);

  // 1 -> 3 climbs the same trunk 0 at modeled time 0: full residual hold.
  const double shared = router.transport().notify(
      Envelope::notice(1, 3, MsgType::kGcRecords, 8));
  EXPECT_NEAR(shared, 11.0, 1e-6);
  // 3 -> 1 climbs trunk 1: distinct segment of the same stage — free.
  const double distinct = router.transport().notify(
      Envelope::notice(3, 1, MsgType::kGcRecords, 8));
  EXPECT_NEAR(distinct, 0.0, 1e-6);

  auto& inline_t = dynamic_cast<InlineTransport&>(router.transport());
  const auto waits = inline_t.stage_waits();
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_EQ(waits[2].waits, 1u);
  EXPECT_NEAR(waits[2].wait_us, 11.0, 1e-6);
  EXPECT_EQ(waits[1].waits, 0u);
  EXPECT_EQ(router.stats(1).get(Counter::kContentionStageWaits), 1u);
  EXPECT_EQ(router.stats(3).get(Counter::kContentionStageWaits), 0u);

  inline_t.reset_stats();
  EXPECT_TRUE(inline_t.stage_waits().empty());
}

TEST(InlineTransport, EdgeNicWindowSharedAcrossTiersAndDestinations) {
  auto router = make_deep_router(deep_machine(5.0, 0.0));
  EchoHandler echo;
  router.bind_handler(1, &echo);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  // 0 -> 1 stays inside edge switch 0 and reserves node 0's NIC ([0, 5)).
  (void)router.transport().call(
      Envelope::request(0, 1, MsgType::kDiffRequest, req));
  EXPECT_NEAR(clock.now_us(), 0.0, 1e-6); // the reply used node 1's NIC: idle
  // A cross-spine send leaves node 0 through the same NIC and queues, even
  // though the two messages cross different top stages.
  const double cross = router.transport().notify(
      Envelope::notice(0, 3, MsgType::kGcRecords, 8));
  EXPECT_NEAR(cross, 5.0, 1e-6);
  // The other edge group's NICs never acquired a window.
  const double other = router.transport().notify(
      Envelope::notice(2, 3, MsgType::kGcRecords, 8));
  EXPECT_NEAR(other, 0.0, 1e-6);
}

TEST(InlineTransport, UpstreamQueueDelaysDownstreamArrival) {
  // The local-time rule: a message that waits 11us at the spine reaches the
  // destination's edge NIC at t = 11, AFTER that NIC's busy window [0, 5)
  // has drained — it must pay 11, not 11 + 5. Charging every segment against
  // the caller's clock-now would double-bill the path.
  auto router = make_deep_router(deep_machine(5.0, 11.0));
  EchoHandler echo;
  router.bind_handler(3, &echo);
  {
    sim::VirtualClock clock(0.0);
    sim::VirtualClock::Binder bind(&clock);
    ByteWriter req;
    req.put_span<std::uint8_t>({});
    // Reserves node 0's NIC [0, 5), spine trunk 0 [0, 11), node 3's NIC
    // [0, 5) — the request itself saw every segment idle.
    (void)router.transport().call(
        Envelope::request(0, 3, MsgType::kDiffRequest, req));
    // The reply left node 3 at ~0 and queued behind the request's own
    // reservation of node 3's NIC; after that 5us wait, spine trunk 1 was
    // untouched and node 0's downlink window had lapsed.
    EXPECT_NEAR(clock.now_us(), 5.0, 1e-6);
  }
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  const double cost = router.transport().notify(
      Envelope::notice(1, 3, MsgType::kGcRecords, 8));
  EXPECT_NEAR(cost, 11.0, 1e-6);

  auto& inline_t = dynamic_cast<InlineTransport&>(router.transport());
  const auto waits = inline_t.stage_waits();
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_EQ(waits[1].waits, 1u); // the reply, at node 3's NIC
  EXPECT_EQ(waits[2].waits, 1u); // the notice, at spine trunk 0
  EXPECT_NEAR(waits[2].wait_us, 11.0, 1e-6);
}

TEST(InlineTransport, PerStageQueueingDeterministicUnderSeeds) {
  // The windowed model composes with the seeded lossy transport: every
  // retransmitted copy pays the same modeled queueing on every run, so the
  // whole (time, waits, losses) tuple is a pure function of the seed.
  auto run = [](std::uint64_t seed) {
    sim::CostModel model = sim::CostModel::zero();
    model.rto_us = 50.0;
    auto router = make_deep_router(deep_machine(5.0, 11.0), model);
    EchoHandler echo;
    router.bind_handler(2, &echo);
    PerturbOptions o;
    o.enabled = true;
    o.seed = seed;
    o.jitter_max_us = 0;
    o.duplicate_prob = 0;
    o.reorder_prob = 0;
    o.loss_prob = 0.3;
    o.max_retries = 20;
    router.set_transport(std::make_unique<PerturbingTransport>(
        std::make_unique<InlineTransport>(router), router, o));
    sim::VirtualClock clock(0.0);
    sim::VirtualClock::Binder bind(&clock);
    std::uint64_t failures = 0;
    for (int i = 0; i < 16; ++i) {
      ByteWriter req;
      req.put_span<std::uint8_t>({});
      try {
        (void)router.transport().call(
            Envelope::request(0, 2, MsgType::kDiffRequest, req));
        (void)router.transport().notify(
            Envelope::notice(1, 3, MsgType::kGcRecords, 8));
      } catch (const TransportError&) {
        ++failures;
      }
    }
    auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
    auto& inline_t = dynamic_cast<InlineTransport&>(pt.inner());
    return std::tuple{clock.now_us(), inline_t.stage_waits(),
                      router.snapshot()[Counter::kContentionStageWaits],
                      router.snapshot()[Counter::kMsgsLost], failures};
  };
  for (const std::uint64_t seed : {1, 2, 3}) {
    SCOPED_TRACE(seed);
    const auto a = run(seed);
    EXPECT_EQ(a, run(seed)); // bit-identical time, waits and loss schedule
    EXPECT_GT(std::get<2>(a), 0u); // queueing actually happened
  }
}

// Satellite regression: the reply leg must price against the REVERSED
// (dst -> src) path. asym:2+1 puts contexts {0, 1} on node 0 and context 2
// on node 1; the request 0 -> 2 reserves node 0's uplink, and a reply keyed
// on the forward path would queue 7us behind it — the reversed path's
// node 1 uplink is idle, so the round trip must cost nothing.
TEST(InlineTransport, AsymmetricReplyPricesReversedPath) {
  sim::CostModel model = sim::CostModel::zero();
  model.link_contention_us = 7.0;
  Router router({0, 0, 1}, model, sim::Topology::asymmetric({2, 1}));
  EchoHandler echo;
  router.bind_handler(2, &echo);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  EXPECT_NEAR(clock.now_us(), 0.0, 1e-6);
  // The forward window is real: a second send out of node 0 queues...
  const double queued = router.transport().notify(
      Envelope::notice(1, 2, MsgType::kGcRecords, 8));
  EXPECT_NEAR(queued, 7.0, 1e-6);
  // ...while node 1's uplink never acquired one — the reply paid nothing.
  const double reverse = router.transport().notify(
      Envelope::notice(2, 0, MsgType::kGcRecords, 8));
  EXPECT_NEAR(reverse, 0.0, 1e-6);
}

// Every kContentionStageWaits bump pairs with a kContentionWait event whose
// args identify the queueing segment and whose dur is the modeled wait.
TEST(InlineTransport, ContentionWaitEventsAuditExactly) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  sim::CostModel model = sim::CostModel::zero();
  model.link_contention_us = 7.0;
  auto router = make_router(model);
  NestedCallHandler nested(router);
  router.bind_handler(2, &nested);
  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));

  const auto events = tracer.snapshot_events();
  tracer.uninstall();
  const trace::Event* wait = nullptr;
  for (const auto& e : events)
    if (e.kind == trace::EventKind::kContentionWait) {
      EXPECT_EQ(wait, nullptr) << "exactly one send queued";
      wait = &e;
    }
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->ctx, 0u);  // charged to the queued sender
  EXPECT_EQ(wait->arg0, 1u); // the switch stage...
  EXPECT_EQ(wait->arg1, (std::uint64_t{1} << 32) | 0); // ...node 0's uplink
  EXPECT_NEAR(wait->dur_us, 7.0, 1e-9);
  // The event folds back into exactly the counter it mirrors.
  const StatsSnapshot rebuilt = trace::reconstruct_counters(events);
  EXPECT_EQ(rebuilt[Counter::kContentionStageWaits], 1u);
  EXPECT_EQ(router.snapshot()[Counter::kContentionStageWaits], 1u);
}

// ------------------------------------------------------ perturbation --------

PerturbOptions perturb_all() {
  PerturbOptions o;
  o.enabled = true;
  o.seed = 42;
  o.jitter_max_us = 0;
  o.duplicate_prob = 1.0;
  o.reorder_prob = 0;
  return o;
}

TEST(PerturbingTransport, DuplicatesEveryCallAndReAccounts) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, perturb_all()));

  ByteWriter req;
  std::vector<std::uint8_t> payload{1, 2, 3};
  req.put_span<std::uint8_t>({payload.data(), payload.size()});
  auto reply = router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));

  EXPECT_EQ(echo.calls, 2); // original + injected retransmission
  ByteReader r(reply);
  EXPECT_EQ(r.get_span<std::uint8_t>(), payload); // first reply stands
  // Both deliveries are accounted, so counters stay audit-consistent.
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsSent), 2u);
  EXPECT_EQ(router.stats(2).get(Counter::kMsgsSent), 2u);
  auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
  EXPECT_EQ(pt.stats().duplicates, 1u);
}

TEST(PerturbingTransport, DuplicateDeliveriesCarryPerturbedFlag) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  auto router = make_router();
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, perturb_all()));
  router.transport().notify(Envelope::notice(0, 2, MsgType::kMpiData, 10));
  const auto events = tracer.snapshot_events();
  tracer.uninstall();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].flags & trace::kFlagPerturbed);
  EXPECT_TRUE(events[1].flags & trace::kFlagPerturbed);
  // Even with injected traffic the trace reconstructs the boards exactly.
  const StatsSnapshot rebuilt = trace::reconstruct_counters(events);
  EXPECT_EQ(rebuilt[Counter::kMsgsSent],
            router.snapshot()[Counter::kMsgsSent]);
}

TEST(PerturbingTransport, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    auto router = make_router();
    EchoHandler echo;
    router.bind_handler(2, &echo);
    PerturbOptions o;
    o.enabled = true;
    o.seed = seed;
    o.duplicate_prob = 0.5;
    o.reorder_prob = 0.5;
    router.set_transport(std::make_unique<PerturbingTransport>(
        std::make_unique<InlineTransport>(router), router, o));
    double cost = 0;
    for (int i = 0; i < 64; ++i)
      cost += router.transport().notify(
          Envelope::notice(0, 2, MsgType::kGcRecords, 8));
    auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
    return std::tuple{router.snapshot()[Counter::kMsgsSent],
                      pt.stats().duplicates, pt.stats().reorders,
                      pt.stats().jitter_us, cost};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(std::get<3>(run(7)), std::get<3>(run(8)));
}

TEST(PerturbingTransport, ReorderHoldsBackNotificationsBounded) {
  auto router = make_router();
  PerturbOptions o;
  o.enabled = true;
  o.seed = 1;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 1.0;
  o.reorder_max_us = 50.0;
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, o));
  for (int i = 0; i < 32; ++i) {
    const double cost = router.transport().notify(
        Envelope::notice(0, 2, MsgType::kGcRecords, 8));
    EXPECT_GE(cost, 0.0);
    EXPECT_LE(cost, o.reorder_max_us); // zero() model: cost is pure hold-back
  }
  auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
  EXPECT_EQ(pt.stats().reorders, 32u);
  EXPECT_LE(pt.stats().jitter_us, 32 * o.reorder_max_us);
}

TEST(PerturbOptions, FromEnvParsesSeed) {
  const test::ScopedEnvClear env_guard; // CI matrices export these vars
  ::setenv("OMSP_PERTURB_SEED", "17", 1);
  auto o = PerturbOptions::from_env();
  EXPECT_TRUE(o.enabled);
  EXPECT_EQ(o.seed, 17u);
  ::unsetenv("OMSP_PERTURB_SEED");
  o = PerturbOptions::from_env();
  EXPECT_FALSE(o.enabled);
}

// Regression: reset_stats() used to leave the PerturbStats tallies (reorders,
// jitter_us, ...) untouched — a mid-run reset kept counting from the old
// totals, so post-reset audits against the (cleared) trace buffer failed.
TEST(PerturbingTransport, ResetStatsClearsAllPerturbationTallies) {
  auto router = make_router();
  PerturbOptions o;
  o.enabled = true;
  o.seed = 11;
  o.jitter_max_us = 5.0;
  o.duplicate_prob = 1.0;
  o.reorder_prob = 1.0;
  o.reorder_max_us = 50.0;
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, o));
  for (int i = 0; i < 8; ++i)
    router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 8));
  auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
  ASSERT_GT(pt.stats().duplicates, 0u);
  ASSERT_GT(pt.stats().reorders, 0u);
  ASSERT_GT(pt.stats().jitter_us, 0.0);

  router.transport().reset_stats();
  const PerturbStats s = pt.stats();
  EXPECT_EQ(s.duplicates, 0u);
  EXPECT_EQ(s.reorders, 0u);
  EXPECT_EQ(s.jitter_us, 0.0);
  EXPECT_EQ(s.losses, 0u);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.acks, 0u);
  EXPECT_EQ(s.dups_suppressed, 0u);
  EXPECT_EQ(s.rto_wait_us, 0.0);

  // Tallying resumes from zero, not from the pre-reset totals.
  router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 8));
  EXPECT_EQ(pt.stats().duplicates, 1u);
  EXPECT_EQ(pt.stats().reorders, 1u);
}

// --------------------------------------------------------------- loss -------

// drop_first drops the first copy of every exchange in each direction, so a
// single call deterministically walks the whole retransmit path: request
// lost -> RTO -> retransmit delivered, reply lost -> RTO -> handler re-runs
// (the idempotence contract under genuine loss), second reply stands.
TEST(PerturbingTransport, DropFirstExercisesFullRetransmitPath) {
  sim::CostModel model = sim::CostModel::zero();
  model.rto_us = 100.0;
  model.rto_backoff = 2.0;
  auto router = make_router(model);
  EchoHandler echo;
  router.bind_handler(2, &echo);
  PerturbOptions o;
  o.enabled = true;
  o.seed = 3;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 0;
  o.drop_first = true;
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, o));

  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  std::vector<std::uint8_t> payload{1, 2, 3};
  req.put_span<std::uint8_t>({payload.data(), payload.size()});
  auto reply = router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));

  ByteReader r(reply);
  EXPECT_EQ(r.get_span<std::uint8_t>(), payload);
  // Attempt 1: request dropped. Attempt 2: delivered, reply dropped (the
  // handler ran). Attempt 3: delivered both ways (the handler ran again).
  EXPECT_EQ(echo.calls, 2);
  auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
  EXPECT_EQ(pt.stats().losses, 2u);
  EXPECT_EQ(pt.stats().retransmits, 2u);
  EXPECT_DOUBLE_EQ(pt.stats().rto_wait_us, 100.0 + 200.0);
  const auto s = router.snapshot();
  EXPECT_EQ(s[Counter::kMsgsLost], 2u);
  EXPECT_EQ(s[Counter::kRetransmits], 2u);
  // The caller sat out both modeled timeouts (100, then backed off to 200).
  EXPECT_DOUBLE_EQ(clock.now_us(), 300.0);
  // Every wire copy is accounted: lost request + 2 delivered requests from
  // ctx 0; 2 replies (one lost) from ctx 2.
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsSent), 3u);
  EXPECT_EQ(router.stats(2).get(Counter::kMsgsSent), 2u);
}

// Notices use explicit acks: a lost ack triggers a retransmission that the
// receiver suppresses by (channel, seq) and re-acks. Counters and trace stay
// an exact pair throughout.
TEST(PerturbingTransport, DropFirstNoticeAckDanceAuditsExactly) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  auto router = make_router();
  PerturbOptions o;
  o.enabled = true;
  o.seed = 3;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 0;
  o.drop_first = true;
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, o));
  router.transport().notify(Envelope::notice(0, 2, MsgType::kMpiData, 10));

  auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
  // Notice lost, retransmitted notice delivered, its ack lost, the sender's
  // third copy suppressed as a duplicate and re-acked.
  EXPECT_EQ(pt.stats().losses, 2u);
  EXPECT_EQ(pt.stats().retransmits, 2u);
  EXPECT_EQ(pt.stats().acks, 2u);
  EXPECT_EQ(pt.stats().dups_suppressed, 1u);
  const auto live = router.snapshot();
  EXPECT_EQ(live[Counter::kMsgsLost], 2u);
  EXPECT_EQ(live[Counter::kRetransmits], 2u);
  EXPECT_EQ(live[Counter::kAcksSent], 2u);
  // 3 notice copies from ctx 0 + 2 acks from ctx 2, all on the wire.
  EXPECT_EQ(live[Counter::kMsgsSent], 5u);

  const StatsSnapshot rebuilt =
      trace::reconstruct_counters(tracer.snapshot_events());
  tracer.uninstall();
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
}

// Exhausting the retry cap surfaces a typed error at the call site — the
// caller never hangs waiting for a reply that cannot arrive.
TEST(PerturbingTransport, RetryCapExhaustionThrowsTransportError) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);
  PerturbOptions o;
  o.enabled = true;
  o.seed = 3;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 0;
  o.drop_first = true;
  o.max_retries = 0; // one attempt, and drop_first always eats it
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, o));

  ByteWriter req;
  req.put_span<std::uint8_t>({});
  try {
    (void)router.transport().call(
        Envelope::request(0, 2, MsgType::kDiffRequest, req));
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.src, 0u);
    EXPECT_EQ(e.dst, 2u);
    EXPECT_EQ(e.type, MsgType::kDiffRequest);
    EXPECT_EQ(e.attempts, 1u);
  }
  EXPECT_EQ(echo.calls, 0); // the request never arrived
  // The doomed attempt is still on the wire and in the loss tally.
  EXPECT_EQ(router.snapshot()[Counter::kMsgsLost], 1u);
  EXPECT_THROW(router.transport().notify(
                   Envelope::notice(0, 2, MsgType::kMpiData, 10)),
               TransportError);
}

// Seeded loss is per-link deterministic: the same seed yields the identical
// loss schedule (and therefore identical counters and modeled penalties) on
// every run, and different seeds diverge.
TEST(PerturbingTransport, SameSeedSameLossSchedule) {
  auto run = [](std::uint64_t seed) {
    sim::CostModel model = sim::CostModel::zero();
    model.rto_us = 50.0;
    auto router = make_router(model);
    EchoHandler echo;
    router.bind_handler(2, &echo);
    PerturbOptions o;
    o.enabled = true;
    o.seed = seed;
    o.jitter_max_us = 0;
    o.duplicate_prob = 0;
    o.reorder_prob = 0;
    o.loss_prob = 0.3;
    router.set_transport(std::make_unique<PerturbingTransport>(
        std::make_unique<InlineTransport>(router), router, o));
    sim::VirtualClock clock(0.0);
    sim::VirtualClock::Binder bind(&clock);
    std::uint64_t failures = 0; // retry-cap exhaustions are deterministic too
    for (int i = 0; i < 64; ++i) {
      ByteWriter req;
      req.put_span<std::uint8_t>({});
      try {
        (void)router.transport().call(
            Envelope::request(0, 2, MsgType::kDiffRequest, req));
      } catch (const TransportError&) {
        ++failures;
      }
    }
    auto& pt = dynamic_cast<PerturbingTransport&>(router.transport());
    return std::tuple{router.snapshot()[Counter::kMsgsSent],
                      router.snapshot()[Counter::kRetransmits],
                      pt.stats().losses, failures, clock.now_us()};
  };
  const auto a = run(9);
  EXPECT_EQ(a, run(9));
  EXPECT_GT(std::get<2>(a), 0u); // p=0.3 over 64 round trips: losses occur
  EXPECT_NE(std::get<4>(a), std::get<4>(run(10)));
}

// With loss disabled the transport must not even stamp seq/ack headers:
// byte counts are bit-identical to a run without the reliability layer.
TEST(PerturbingTransport, NoLossPathAddsNoWireBytes) {
  auto base = make_router();
  base.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 100));

  auto router = make_router();
  PerturbOptions o;
  o.enabled = true;
  o.seed = 4;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 0;
  router.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(router), router, o));
  router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 100));

  EXPECT_EQ(router.stats(0).get(Counter::kBytesSent),
            base.stats(0).get(Counter::kBytesSent));
  EXPECT_EQ(router.snapshot()[Counter::kAcksSent], 0u);

  // With loss on, delivered copies carry the 8-byte seq/ack extension.
  auto lossy = make_router();
  PerturbOptions lo = o;
  lo.drop_first = true;
  lossy.set_transport(std::make_unique<PerturbingTransport>(
      std::make_unique<InlineTransport>(lossy), lossy, lo));
  lossy.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 100));
  // 3 notice copies + 2 acks, every one carrying the extension.
  EXPECT_EQ(lossy.snapshot()[Counter::kBytesSent],
            3 * (100 + kSeqAckBytes + kHeaderBytes) +
                2 * (kSeqAckBytes + kHeaderBytes));
}

TEST(PerturbOptions, FromEnvParsesLossProb) {
  const test::ScopedEnvClear env_guard; // CI matrices export these vars
  ::setenv("OMSP_LOSS_PROB", "0.25", 1);
  auto o = PerturbOptions::from_env();
  EXPECT_TRUE(o.enabled);
  EXPECT_TRUE(o.lossy());
  EXPECT_DOUBLE_EQ(o.loss_prob, 0.25);
  // Loss on its own keeps the other perturbations off, so lossy runs are
  // comparable to clean ones modulo retransmissions.
  EXPECT_EQ(o.jitter_max_us, 0.0);
  EXPECT_EQ(o.duplicate_prob, 0.0);
  EXPECT_EQ(o.reorder_prob, 0.0);
  // The retry cap scales with the rate: q = 1-(1-p)^2 per-attempt failure,
  // cap chosen so q^(cap+1) <= 1e-12 (here ceil(-12/log10(0.4375)) = 34) —
  // a full-suite env sweep must never spuriously exhaust.
  EXPECT_EQ(o.max_retries, 34u);

  // Composed with a perturbation seed, the jitter/dup/reorder defaults stay.
  ::setenv("OMSP_PERTURB_SEED", "17", 1);
  o = PerturbOptions::from_env();
  EXPECT_EQ(o.seed, 17u);
  EXPECT_DOUBLE_EQ(o.loss_prob, 0.25);
  EXPECT_GT(o.jitter_max_us, 0.0);
  ::unsetenv("OMSP_PERTURB_SEED");

  // p >= 1 can never deliver; clamp below certainty.
  ::setenv("OMSP_LOSS_PROB", "1.0", 1);
  o = PerturbOptions::from_env();
  EXPECT_DOUBLE_EQ(o.loss_prob, 0.95);
  EXPECT_EQ(o.max_retries, 64u); // pathological rate: cap at the ceiling
  ::unsetenv("OMSP_LOSS_PROB");
  o = PerturbOptions::from_env();
  EXPECT_FALSE(o.lossy());
}

} // namespace
} // namespace omsp::net
