// QueuedTransport: asynchronous request service on per-destination worker
// threads. The contract under test: completion times are a deterministic
// function of the modeled workload (not of host scheduling), concurrent
// requests to distinct destinations complete at the MAX of their RTTs,
// requests to one destination serialize on its service clock, and counters
// are identical to the synchronous path no matter when — or whether — the
// caller waits.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "net/router.hpp"
#include "net/transport.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/tracer.hpp"

namespace omsp::net {
namespace {

class CountingEcho : public MessageHandler {
public:
  void handle(ContextId src, MsgType type, ByteReader& request,
              ByteWriter& reply) override {
    (void)src;
    (void)type;
    const auto payload = request.get_span<std::uint8_t>();
    reply.put_span<std::uint8_t>({payload.data(), payload.size()});
    calls.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<int> calls{0};
};

// Every message costs exactly 100us one-way regardless of size; handler
// service is 10us. RTT through the worker: 100 (request) + 10 (service)
// + 100 (reply) = 210us.
sim::CostModel flat_model() {
  auto m = sim::CostModel::zero();
  m.net_latency_us = 100.0;
  m.handler_service_us = 10.0;
  return m;
}

constexpr double kRtt = 210.0;

Envelope request_to(ContextId src, ContextId dst, ByteWriter& req) {
  req.put_span<std::uint8_t>({});
  return Envelope::request(src, dst, MsgType::kDiffRequest, req);
}

struct Fixture {
  // Four contexts, one per node: every link is off-node at the flat cost.
  Fixture() : router({0, 1, 2, 3}, flat_model()) {
    for (ContextId c = 1; c < 4; ++c) router.bind_handler(c, &echo[c]);
    qt = std::make_unique<QueuedTransport>(
        std::make_unique<InlineTransport>(router), router);
  }
  Router router;
  CountingEcho echo[4];
  std::unique_ptr<QueuedTransport> qt;
};

TEST(QueuedTransport, ConcurrentRequestsCompleteAtMaxNotSum) {
  Fixture f;
  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);

  std::vector<PendingReply> pending;
  for (ContextId dst = 1; dst < 4; ++dst) {
    ByteWriter req;
    pending.push_back(f.qt->call_async(request_to(0, dst, req)));
  }
  for (auto& p : pending) (void)p.wait();

  // Three distinct destinations service in parallel: the issuing thread ends
  // one RTT later, not three.
  EXPECT_DOUBLE_EQ(clk.now_us(), kRtt);
}

TEST(QueuedTransport, SameDestinationSerializesService) {
  Fixture f;
  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);

  ByteWriter r1, r2;
  auto p1 = f.qt->call_async(request_to(0, 1, r1));
  auto p2 = f.qt->call_async(request_to(0, 1, r2));
  double c1 = 0, c2 = 0;
  (void)p1.wait_at(&c1);
  (void)p2.wait_at(&c2);

  // Both arrive at t=100 from the same source; the (src, dst) service
  // channel runs them back to back (one-SIGIO-at-a-time per requester), so
  // the second reply is one service time later.
  EXPECT_DOUBLE_EQ(c1, kRtt);
  EXPECT_DOUBLE_EQ(c2, kRtt + flat_model().handler_service_us);
}

TEST(QueuedTransport, CountersIdenticalToSynchronousPath) {
  Fixture sync_f, async_f;
  {
    sim::VirtualClock clk(0.0);
    sim::VirtualClock::Binder bind(&clk);
    ByteWriter req;
    (void)sync_f.qt->inner().call(request_to(0, 2, req));
  }
  {
    sim::VirtualClock clk(0.0);
    sim::VirtualClock::Binder bind(&clk);
    ByteWriter req;
    auto p = async_f.qt->call_async(request_to(0, 2, req));
    (void)p.wait();
  }
  const auto s = sync_f.router.snapshot();
  const auto a = async_f.router.snapshot();
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(a.v[c], s.v[c]) << counter_name(static_cast<Counter>(c));
}

TEST(QueuedTransport, DroppedHandleIsStillServicedAndAccounted) {
  Fixture f;
  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);
  {
    ByteWriter req;
    (void)f.qt->call_async(request_to(0, 3, req)); // handle dropped
  }
  f.qt->quiesce();
  EXPECT_EQ(f.echo[3].calls.load(), 1);
  // Both directions accounted: the request on the caller, the reply on the
  // servicing context.
  EXPECT_EQ(f.router.stats(0).get(Counter::kMsgsSent), 1u);
  EXPECT_EQ(f.router.stats(3).get(Counter::kMsgsSent), 1u);
}

// A mixed scripted workload produces bit-identical completion times and
// counters on every run: service order follows modeled arrival time with
// issue order as the tie-break, never host scheduling.
TEST(QueuedTransport, DeterministicAcrossRuns) {
  auto run = [] {
    Fixture f;
    sim::VirtualClock clk(0.0);
    sim::VirtualClock::Binder bind(&clk);
    std::vector<double> completions;
    std::vector<PendingReply> pending;
    for (int round = 0; round < 3; ++round) {
      for (ContextId dst = 1; dst < 4; ++dst) {
        ByteWriter req;
        pending.push_back(
            f.qt->call_async(request_to(0, (dst + round) % 3 + 1, req)));
      }
    }
    for (auto& p : pending) {
      double c = 0;
      (void)p.wait_at(&c);
      completions.push_back(c);
      clk.advance_to(c);
    }
    f.qt->quiesce();
    return std::make_pair(completions, f.router.snapshot());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(a.second.v[c], b.second.v[c])
        << counter_name(static_cast<Counter>(c));
}

// Perturbation composes with the async path: jitter delays the handle's
// completion (the destination's service clock is untouched), duplicates
// re-run the handler and are fully accounted after quiesce().
TEST(QueuedTransport, PerturbedAsyncJitterAndDuplicates) {
  Fixture f;
  PerturbOptions po;
  po.enabled = true;
  po.seed = 7;
  po.jitter_max_us = 25.0;
  po.duplicate_prob = 1.0;
  po.reorder_prob = 0;
  PerturbingTransport pt(std::move(f.qt), f.router, po);

  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);
  ByteWriter req;
  auto p = pt.call_async(request_to(0, 1, req));
  double c = 0;
  (void)p.wait_at(&c);
  EXPECT_GE(c, kRtt); // jitter only ever delays
  pt.quiesce();
  EXPECT_EQ(f.echo[1].calls.load(), 2); // the injected duplicate ran too
  EXPECT_EQ(pt.stats().duplicates, 1u);
}

// Regression (ordering): an injected duplicate models a RETRANSMISSION of
// its primary, so it must be serviced behind the primary on the (src,dst)
// channel. The old path issued the duplicate as a fresh call_async, whose
// recomputed arrival and unrelated global issue seq left nothing pinning it
// behind the primary; call_async_with_dups enqueues both in one critical
// section with consecutive seqs and arrival >= primary.
TEST(QueuedTransport, InjectedDuplicatesServiceBehindTheirPrimary) {
  trace::Options topt;
  topt.enabled = true;
  trace::Tracer tracer(topt);
  ASSERT_TRUE(tracer.install());

  Fixture f;
  PerturbOptions po;
  po.enabled = true;
  po.seed = 7;
  po.jitter_max_us = 0;
  po.duplicate_prob = 1.0;
  po.reorder_prob = 0;
  PerturbingTransport pt(std::move(f.qt), f.router, po);

  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);
  ByteWriter req;
  auto p = pt.call_async(request_to(0, 1, req));
  (void)p.wait();
  pt.quiesce();

  // The reply-side kMessage events (ctx 1) are emitted at modeled service
  // completion; the duplicate's carries kFlagPerturbed.
  double primary_ts = -1, dup_ts = -1;
  for (const auto& e : tracer.snapshot_events()) {
    if (e.kind != trace::EventKind::kMessage || e.ctx != 1) continue;
    if (e.flags & trace::kFlagPerturbed)
      dup_ts = e.ts_us;
    else
      primary_ts = e.ts_us;
  }
  tracer.uninstall();
  ASSERT_GE(primary_ts, 0.0);
  ASSERT_GE(dup_ts, 0.0);
  // Primary first, the duplicate queues behind it on the channel — never
  // ahead, exactly one service time later.
  EXPECT_GT(dup_ts, primary_ts);
  EXPECT_DOUBLE_EQ(dup_ts, primary_ts + flat_model().handler_service_us);
}

// Loss composes with the async path: a pre-drawn schedule accounts lost
// copies at issue, folds the modeled RTO into the reply's completion time
// (the retransmit timer runs concurrently with the caller), and re-services
// retransmissions as riders behind the primary; quiesce() drains them.
TEST(QueuedTransport, LossyAsyncFoldsRtoIntoCompletionAndDrains) {
  auto m = flat_model();
  m.rto_us = 1000.0;
  m.rto_backoff = 2.0;
  Router router({0, 1, 2, 3}, m);
  CountingEcho echo;
  router.bind_handler(1, &echo);
  auto qt = std::make_unique<QueuedTransport>(
      std::make_unique<InlineTransport>(router), router);
  PerturbOptions po;
  po.enabled = true;
  po.seed = 5;
  po.jitter_max_us = 0;
  po.duplicate_prob = 0;
  po.reorder_prob = 0;
  po.drop_first = true;
  PerturbingTransport pt(std::move(qt), router, po);

  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);
  ByteWriter req;
  auto p = pt.call_async(request_to(0, 1, req));
  double c = 0;
  (void)p.wait_at(&c);
  pt.quiesce();

  // drop_first: first request copy lost (RTO 1000), retransmission
  // delivered but its reply lost (RTO 2000, handler re-runs via a rider),
  // third copy's round trip completes — the reply lands one RTT plus both
  // timeouts after issue.
  EXPECT_DOUBLE_EQ(c, kRtt + 3000.0);
  EXPECT_EQ(echo.calls.load(), 2); // primary + retransmission rider
  const auto s = router.snapshot();
  EXPECT_EQ(s[Counter::kRetransmits], 2u);
  EXPECT_EQ(s[Counter::kMsgsLost], 2u);
  // Never hangs: exhausting the cap throws at issue time.
  po.max_retries = 0;
  PerturbingTransport dead(std::make_unique<InlineTransport>(router), router,
                           po);
  ByteWriter req2;
  EXPECT_THROW((void)dead.call_async(request_to(0, 1, req2)), TransportError);
}

} // namespace
} // namespace omsp::net
