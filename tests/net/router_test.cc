// Router unit tests: request/reply dispatch through the transport, traffic
// accounting, locality classification and virtual-time charging.
#include <gtest/gtest.h>

#include "net/router.hpp"

namespace omsp::net {
namespace {

class EchoHandler : public MessageHandler {
public:
  void handle(ContextId src, MsgType type, ByteReader& request,
              ByteWriter& reply) override {
    last_src = src;
    last_type = type;
    const auto payload = request.get_span<std::uint8_t>();
    reply.put_span<std::uint8_t>({payload.data(), payload.size()});
    reply.put<std::uint32_t>(static_cast<std::uint32_t>(payload.size()));
    ++calls;
  }
  ContextId last_src = kInvalidContext;
  MsgType last_type = MsgType::kNone;
  int calls = 0;
};

Router make_router(sim::CostModel model = sim::CostModel::zero()) {
  // Contexts 0,1 on node 0; context 2 on node 1.
  return Router({0, 0, 1}, model);
}

TEST(Router, CallDispatchesAndEchoes) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);

  ByteWriter req;
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  req.put_span<std::uint8_t>({payload.data(), payload.size()});
  auto reply = router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));

  EXPECT_EQ(echo.calls, 1);
  EXPECT_EQ(echo.last_src, 0u);
  EXPECT_EQ(echo.last_type, MsgType::kDiffRequest);
  ByteReader r(reply);
  EXPECT_EQ(r.get_span<std::uint8_t>(), payload);
  EXPECT_EQ(r.get<std::uint32_t>(), 5u);
}

TEST(Router, AccountsBothDirections) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(2, &echo);
  ByteWriter req;
  std::vector<std::uint8_t> payload(100, 9);
  req.put_span<std::uint8_t>({payload.data(), payload.size()});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));

  const auto s = router.snapshot();
  EXPECT_EQ(s[Counter::kMsgsSent], 2u);      // request + reply
  EXPECT_EQ(s[Counter::kMsgsOffNode], 2u);   // 0 and 2 are on different nodes
  EXPECT_GT(s[Counter::kBytesSent], 200u);   // payload both ways + headers
  // Request bytes land on the sender's board; reply on the responder's.
  EXPECT_EQ(router.stats(0).get(Counter::kMsgsSent), 1u);
  EXPECT_EQ(router.stats(2).get(Counter::kMsgsSent), 1u);
}

TEST(Router, IntraNodeNotCountedOffNode) {
  auto router = make_router();
  EchoHandler echo;
  router.bind_handler(1, &echo);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 1, MsgType::kDiffRequest, req));
  const auto s = router.snapshot();
  EXPECT_EQ(s[Counter::kMsgsSent], 2u);
  EXPECT_EQ(s[Counter::kMsgsOffNode], 0u);
}

TEST(Router, ChargesCallerClock) {
  sim::CostModel model = sim::CostModel::zero();
  model.net_latency_us = 50;
  model.handler_service_us = 5;
  auto router = make_router(model);
  EchoHandler echo;
  router.bind_handler(2, &echo);

  sim::VirtualClock clock(0.0);
  sim::VirtualClock::Binder bind(&clock);
  ByteWriter req;
  req.put_span<std::uint8_t>({});
  (void)router.transport().call(
      Envelope::request(0, 2, MsgType::kDiffRequest, req));
  // Two one-way latencies + service.
  EXPECT_NEAR(clock.now_us(), 105.0, 1.0);
}

TEST(Router, NotifyReturnsModeledCost) {
  sim::CostModel model = sim::CostModel::zero();
  model.shm_latency_us = 10;
  model.shm_bw_bytes_per_us = 100;
  auto router = make_router(model);
  const double cost = router.transport().notify(
      Envelope::notice(0, 1, MsgType::kLockRequest, 1000 - kHeaderBytes));
  EXPECT_NEAR(cost, 10 + 1000.0 / 100, 1e-9);
}

TEST(Router, ResetStatsClears) {
  auto router = make_router();
  router.transport().notify(Envelope::notice(0, 2, MsgType::kGcRecords, 10));
  EXPECT_GT(router.snapshot()[Counter::kMsgsSent], 0u);
  router.reset_stats();
  EXPECT_EQ(router.snapshot()[Counter::kMsgsSent], 0u);
}

TEST(Router, RegistryNamesAndSizes) {
  EXPECT_STREQ(msg_name(MsgType::kDiffRequest), "diff_request");
  EXPECT_STREQ(msg_name(MsgType::kMpiData), "mpi_data");
  EXPECT_STREQ(msg_name(static_cast<MsgType>(999)), "invalid");
  EXPECT_EQ(msg_fixed_bytes(MsgType::kForkDescriptor), 48u);
  EXPECT_EQ(msg_fixed_bytes(MsgType::kLockRequest), 16u);
  EXPECT_EQ(msg_fixed_bytes(MsgType::kDiffRequest), 0u);
  // Stable wire/trace values: these appear in serialized traces.
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kDiffRequest), 1);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kDiffToHome), 2);
  EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kPageRequest), 3);
}

TEST(Router, TraceArg1PacksTypeAndDst) {
  const auto arg1 = message_trace_arg1(MsgType::kBarrierArrival, 7);
  EXPECT_EQ(message_type_of_arg1(arg1), MsgType::kBarrierArrival);
  EXPECT_EQ(message_dst_of_arg1(arg1), 7u);
}

} // namespace
} // namespace omsp::net
