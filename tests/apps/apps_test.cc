// Cross-version validation: for every application, the sequential reference,
// the OpenMP/TreadMarks port (thread AND process mode) and the MPI version
// must compute the same result. This is the strongest end-to-end check of
// the DSM protocol: each app stresses a different sharing pattern (regular
// stencils, cyclic triangular loops, migratory queue data under locks,
// all-to-all transposes, reductions, irregular tree traversal).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/barnes.hpp"
#include "apps/fft3d.hpp"
#include "apps/mgs.hpp"
#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "apps/water.hpp"

namespace omsp::apps {
namespace {

tmk::Config app_config(tmk::Mode mode) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = mode;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

sim::Topology topo() { return sim::Topology(2, 2); }

void expect_close(double a, double b, double rel = 1e-9) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  EXPECT_NEAR(a, b, rel * scale);
}

// --- SOR ----------------------------------------------------------------------

sor::Params sor_params() { return {64, 48, 4, 1.0}; }

TEST(AppsSor, OmpThreadMatchesSeq) {
  const auto seq = sor::run_seq(sor_params(), 0);
  const auto omp = sor::run_omp(sor_params(), app_config(tmk::Mode::kThread));
  expect_close(seq.checksum, omp.checksum);
}

TEST(AppsSor, OmpProcessMatchesSeq) {
  const auto seq = sor::run_seq(sor_params(), 0);
  const auto omp = sor::run_omp(sor_params(), app_config(tmk::Mode::kProcess));
  expect_close(seq.checksum, omp.checksum);
}

TEST(AppsSor, MpiMatchesSeq) {
  const auto seq = sor::run_seq(sor_params(), 0);
  const auto mpi = sor::run_mpi(sor_params(), topo(), sim::CostModel::zero());
  expect_close(seq.checksum, mpi.checksum);
}

TEST(AppsSor, ChecksumIsNonTrivial) {
  const auto seq = sor::run_seq(sor_params(), 0);
  EXPECT_GT(std::abs(seq.checksum), 1.0);
}

// --- MGS ----------------------------------------------------------------------

mgs::Params mgs_params() { return {48, 64, 3}; }

TEST(AppsMgs, OmpThreadMatchesSeq) {
  const auto seq = mgs::run_seq(mgs_params(), 0);
  const auto omp = mgs::run_omp(mgs_params(), app_config(tmk::Mode::kThread));
  expect_close(seq.checksum, omp.checksum, 1e-8);
}

TEST(AppsMgs, OmpProcessMatchesSeq) {
  const auto seq = mgs::run_seq(mgs_params(), 0);
  const auto omp = mgs::run_omp(mgs_params(), app_config(tmk::Mode::kProcess));
  expect_close(seq.checksum, omp.checksum, 1e-8);
}

TEST(AppsMgs, MpiMatchesSeq) {
  const auto seq = mgs::run_seq(mgs_params(), 0);
  const auto mpi = mgs::run_mpi(mgs_params(), topo(), sim::CostModel::zero());
  expect_close(seq.checksum, mpi.checksum, 1e-8);
}

TEST(AppsMgs, ProducesOrthonormalBasis) {
  // Validate the numerics themselves, not just version agreement.
  mgs::Params p = mgs_params();
  std::vector<double> basis(p.n * p.dim);
  // Recompute sequentially through the public entry (checksum ignored) and
  // verify defect via a fresh sequential run on the same inputs.
  // run_seq does not expose the basis, so validate via defect on a local
  // computation mirroring it.
  // (The exported orthogonality_defect is exercised on the MGS unit level.)
  const auto seq = mgs::run_seq(p, 0);
  EXPECT_TRUE(std::isfinite(seq.checksum));
}

// --- TSP ----------------------------------------------------------------------

tsp::Params tsp_params() { return {11, 42, 7}; }

TEST(AppsTsp, SeqFindsOptimum) {
  const int opt = tsp::brute_force_optimum(tsp_params());
  const auto seq = tsp::run_seq(tsp_params(), 0);
  EXPECT_EQ(static_cast<int>(seq.checksum), opt);
}

TEST(AppsTsp, OmpThreadFindsOptimum) {
  const int opt = tsp::brute_force_optimum(tsp_params());
  const auto omp = tsp::run_omp(tsp_params(), app_config(tmk::Mode::kThread));
  EXPECT_EQ(static_cast<int>(omp.checksum), opt);
}

TEST(AppsTsp, OmpProcessFindsOptimum) {
  const int opt = tsp::brute_force_optimum(tsp_params());
  const auto omp = tsp::run_omp(tsp_params(), app_config(tmk::Mode::kProcess));
  EXPECT_EQ(static_cast<int>(omp.checksum), opt);
}

TEST(AppsTsp, MpiFindsOptimum) {
  const int opt = tsp::brute_force_optimum(tsp_params());
  const auto mpi = tsp::run_mpi(tsp_params(), topo(), sim::CostModel::zero());
  EXPECT_EQ(static_cast<int>(mpi.checksum), opt);
}

TEST(AppsTsp, DifferentSeedsDifferentTours) {
  tsp::Params a = tsp_params(), b = tsp_params();
  b.seed = 1234;
  EXPECT_NE(tsp::brute_force_optimum(a), tsp::brute_force_optimum(b));
}

// --- Water ----------------------------------------------------------------------

water::Params water_params() { return {96, 2, 1e-3, 0.45, 11}; }

TEST(AppsWater, OmpThreadMatchesSeq) {
  const auto seq = water::run_seq(water_params(), 0);
  const auto omp =
      water::run_omp(water_params(), app_config(tmk::Mode::kThread));
  expect_close(seq.checksum, omp.checksum, 1e-9);
}

TEST(AppsWater, OmpProcessMatchesSeq) {
  const auto seq = water::run_seq(water_params(), 0);
  const auto omp =
      water::run_omp(water_params(), app_config(tmk::Mode::kProcess));
  expect_close(seq.checksum, omp.checksum, 1e-9);
}

TEST(AppsWater, MpiMatchesSeq) {
  const auto seq = water::run_seq(water_params(), 0);
  const auto mpi =
      water::run_mpi(water_params(), topo(), sim::CostModel::zero());
  expect_close(seq.checksum, mpi.checksum, 1e-9);
}

// --- 3D-FFT ---------------------------------------------------------------------

fft3d::Params fft_params() { return {16, 16, 8, 2, 5}; }

TEST(AppsFft, OmpThreadMatchesSeq) {
  const auto seq = fft3d::run_seq(fft_params(), 0);
  const auto omp =
      fft3d::run_omp(fft_params(), app_config(tmk::Mode::kThread));
  expect_close(seq.checksum, omp.checksum, 1e-9);
}

TEST(AppsFft, OmpProcessMatchesSeq) {
  const auto seq = fft3d::run_seq(fft_params(), 0);
  const auto omp =
      fft3d::run_omp(fft_params(), app_config(tmk::Mode::kProcess));
  expect_close(seq.checksum, omp.checksum, 1e-9);
}

TEST(AppsFft, MpiMatchesSeq) {
  const auto seq = fft3d::run_seq(fft_params(), 0);
  const auto mpi =
      fft3d::run_mpi(fft_params(), topo(), sim::CostModel::zero());
  expect_close(seq.checksum, mpi.checksum, 1e-9);
}

// --- Barnes-Hut ------------------------------------------------------------------

barnes::Params barnes_params() { return {192, 2, 0.7, 0.02, 0.05, 17}; }

TEST(AppsBarnes, OmpThreadMatchesSeq) {
  const auto seq = barnes::run_seq(barnes_params(), 0);
  const auto omp =
      barnes::run_omp(barnes_params(), app_config(tmk::Mode::kThread));
  expect_close(seq.checksum, omp.checksum, 1e-9);
}

TEST(AppsBarnes, OmpProcessMatchesSeq) {
  const auto seq = barnes::run_seq(barnes_params(), 0);
  const auto omp =
      barnes::run_omp(barnes_params(), app_config(tmk::Mode::kProcess));
  expect_close(seq.checksum, omp.checksum, 1e-9);
}

TEST(AppsBarnes, MpiMatchesSeq) {
  const auto seq = barnes::run_seq(barnes_params(), 0);
  const auto mpi =
      barnes::run_mpi(barnes_params(), topo(), sim::CostModel::zero());
  expect_close(seq.checksum, mpi.checksum, 1e-9);
}

// --- Traffic sanity: the thread version must communicate less -------------------

TEST(AppsTraffic, ThreadModeSendsLessThanProcessMode) {
  // The paper's headline claim (§5.3.1): using hardware shared memory within
  // a node reduces both messages and data. Verify the direction on SOR.
  sor::Params p{128, 64, 6, 1.0};
  tmk::Config thread_cfg = app_config(tmk::Mode::kThread);
  tmk::Config process_cfg = app_config(tmk::Mode::kProcess);
  const auto thr = sor::run_omp(p, thread_cfg);
  const auto proc = sor::run_omp(p, process_cfg);
  EXPECT_LT(thr.stats[Counter::kMsgsSent], proc.stats[Counter::kMsgsSent]);
  EXPECT_LT(thr.stats[Counter::kBytesSent], proc.stats[Counter::kBytesSent]);
  EXPECT_LT(thr.stats[Counter::kMprotect], proc.stats[Counter::kMprotect]);
  EXPECT_LT(thr.stats[Counter::kPageFaults],
            proc.stats[Counter::kPageFaults]);
}

} // namespace
} // namespace omsp::apps

namespace omsp::apps {
namespace {

// Full paper topology (4 nodes x 4 processors) — the protocol at 16-way.
tmk::Config paper_cfg(tmk::Mode mode) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(4, 4);
  cfg.mode = mode;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

TEST(AppsFullTopology, SorBothModes) {
  sor::Params p{96, 64, 4, 1.0};
  const auto seq = sor::run_seq(p, 0);
  expect_close(seq.checksum,
               sor::run_omp(p, paper_cfg(tmk::Mode::kThread)).checksum);
  expect_close(seq.checksum,
               sor::run_omp(p, paper_cfg(tmk::Mode::kProcess)).checksum);
}

TEST(AppsFullTopology, MgsThreadMode) {
  mgs::Params p{64, 64, 3};
  const auto seq = mgs::run_seq(p, 0);
  expect_close(seq.checksum,
               mgs::run_omp(p, paper_cfg(tmk::Mode::kThread)).checksum, 1e-8);
}

TEST(AppsFullTopology, WaterProcessMode) {
  water::Params p{128, 2, 1e-3, 0.4, 11};
  const auto seq = water::run_seq(p, 0);
  expect_close(seq.checksum,
               water::run_omp(p, paper_cfg(tmk::Mode::kProcess)).checksum,
               1e-9);
}

TEST(AppsFullTopology, FftMpiSixteenRanks) {
  fft3d::Params p{32, 32, 16, 2, 5};
  const auto seq = fft3d::run_seq(p, 0);
  expect_close(seq.checksum,
               fft3d::run_mpi(p, sim::Topology(4, 4), sim::CostModel::zero())
                   .checksum,
               1e-9);
}

TEST(AppsFullTopology, BarnesThreadMode) {
  barnes::Params p{256, 2, 0.7, 0.02, 0.05, 17};
  const auto seq = barnes::run_seq(p, 0);
  expect_close(seq.checksum,
               barnes::run_omp(p, paper_cfg(tmk::Mode::kThread)).checksum,
               1e-9);
}

TEST(AppsFullTopology, TspProcessMode) {
  tsp::Params p{11, 42, 7};
  EXPECT_EQ(static_cast<int>(
                tsp::run_omp(p, paper_cfg(tmk::Mode::kProcess)).checksum),
            tsp::brute_force_optimum(p));
}

} // namespace
} // namespace omsp::apps

namespace omsp::apps {
namespace {

// Home-based LRC end-to-end: the alternative protocol must compute the same
// answers on real applications.
tmk::Config hlrc_cfg(tmk::Mode mode) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = mode;
  cfg.protocol = tmk::Protocol::kHomeLRC;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

TEST(AppsHomeLrc, SorMatchesSeq) {
  sor::Params p{64, 48, 4, 1.0};
  const auto seq = sor::run_seq(p, 0);
  expect_close(seq.checksum,
               sor::run_omp(p, hlrc_cfg(tmk::Mode::kThread)).checksum);
  expect_close(seq.checksum,
               sor::run_omp(p, hlrc_cfg(tmk::Mode::kProcess)).checksum);
}

TEST(AppsHomeLrc, WaterMatchesSeq) {
  water::Params p{96, 2, 1e-3, 0.45, 11};
  const auto seq = water::run_seq(p, 0);
  expect_close(seq.checksum,
               water::run_omp(p, hlrc_cfg(tmk::Mode::kThread)).checksum,
               1e-9);
}

TEST(AppsHomeLrc, MgsMatchesSeq) {
  mgs::Params p{48, 64, 3};
  const auto seq = mgs::run_seq(p, 0);
  expect_close(seq.checksum,
               mgs::run_omp(p, hlrc_cfg(tmk::Mode::kThread)).checksum, 1e-8);
}

TEST(AppsHomeLrc, TspFindsOptimum) {
  tsp::Params p{11, 42, 7};
  EXPECT_EQ(
      static_cast<int>(tsp::run_omp(p, hlrc_cfg(tmk::Mode::kThread)).checksum),
      tsp::brute_force_optimum(p));
}

} // namespace
} // namespace omsp::apps
