// Numerical-kernel tests for the application building blocks: the FFT, the
// Morton ordering, TSP's bounds, MGS's orthogonality and SOR/Water physical
// sanity — validating the apps beyond cross-version agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "apps/barnes.hpp"
#include "apps/fft3d.hpp"
#include "apps/mgs.hpp"
#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "apps/water.hpp"
#include "common/rng.hpp"

namespace omsp::apps {
namespace {

// --------------------------------------------------------------- fft1d ----

TEST(Fft1d, MatchesNaiveDft) {
  constexpr std::int64_t kN = 64;
  Rng rng(3);
  std::vector<fft3d::Cplx> a(kN);
  for (auto& c : a) {
    c.re = rng.next_double(-1, 1);
    c.im = rng.next_double(-1, 1);
  }
  auto fft = a;
  fft3d::fft1d(fft.data(), kN, false);
  for (std::int64_t k = 0; k < kN; ++k) {
    std::complex<double> ref(0, 0);
    for (std::int64_t n = 0; n < kN; ++n) {
      const double ang = -2 * M_PI * k * n / kN;
      ref += std::complex<double>(a[n].re, a[n].im) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    ASSERT_NEAR(fft[k].re, ref.real(), 1e-9) << k;
    ASSERT_NEAR(fft[k].im, ref.imag(), 1e-9) << k;
  }
}

TEST(Fft1d, ForwardInverseIdentity) {
  for (std::int64_t n : {2, 8, 64, 512}) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<fft3d::Cplx> a(n);
    for (auto& c : a) {
      c.re = rng.next_double(-1, 1);
      c.im = rng.next_double(-1, 1);
    }
    auto b = a;
    fft3d::fft1d(b.data(), n, false);
    fft3d::fft1d(b.data(), n, true);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(b[i].re, a[i].re, 1e-10);
      ASSERT_NEAR(b[i].im, a[i].im, 1e-10);
    }
  }
}

TEST(Fft1d, ParsevalHolds) {
  constexpr std::int64_t kN = 256;
  Rng rng(9);
  std::vector<fft3d::Cplx> a(kN);
  double time_energy = 0;
  for (auto& c : a) {
    c.re = rng.next_double(-1, 1);
    c.im = rng.next_double(-1, 1);
    time_energy += c.re * c.re + c.im * c.im;
  }
  fft3d::fft1d(a.data(), kN, false);
  double freq_energy = 0;
  for (const auto& c : a) freq_energy += c.re * c.re + c.im * c.im;
  EXPECT_NEAR(freq_energy, time_energy * kN, 1e-6 * time_energy * kN);
}

// -------------------------------------------------------------- morton ----

TEST(Morton, PreservesOctantOrdering) {
  // The highest interleaved bits are the top-level octant: points in octant
  // 0 sort before points in octant 7.
  double lo3[3] = {0.1, 0.1, 0.1};
  double hi3[3] = {0.9, 0.9, 0.9};
  EXPECT_LT(barnes::morton3(lo3, 0, 1), barnes::morton3(hi3, 0, 1));
}

TEST(Morton, NearbyPointsNearbyCodes) {
  // Stay inside one octant: Z-order locality breaks exactly at splits.
  double a[3] = {0.3, 0.3, 0.3};
  double b[3] = {0.3005, 0.3005, 0.3005};
  double c[3] = {0.95, 0.05, 0.95};
  const auto ka = barnes::morton3(a, 0, 1);
  const auto kb = barnes::morton3(b, 0, 1);
  const auto kc = barnes::morton3(c, 0, 1);
  EXPECT_LT(ka > kb ? ka - kb : kb - ka, ka > kc ? ka - kc : kc - ka);
}

TEST(Morton, ClampsOutOfRange) {
  double over[3] = {2.0, 2.0, 2.0};
  EXPECT_EQ(barnes::morton3(over, 0, 1), (1u << 30) - 1);
}

// ----------------------------------------------------------------- tsp ----

TEST(TspKernel, BruteForceIsDeterministic) {
  tsp::Params p{9, 7, 5};
  EXPECT_EQ(tsp::brute_force_optimum(p), tsp::brute_force_optimum(p));
}

TEST(TspKernel, SeqMatchesBruteForceAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 17ull, 99ull}) {
    tsp::Params p{10, seed, 6};
    EXPECT_EQ(static_cast<int>(tsp::run_seq(p, 0).checksum),
              tsp::brute_force_optimum(p))
        << "seed " << seed;
  }
}

TEST(TspKernel, LargerThresholdSameAnswer) {
  tsp::Params a{11, 5, 4}, b{11, 5, 9};
  EXPECT_EQ(static_cast<int>(tsp::run_seq(a, 0).checksum),
            static_cast<int>(tsp::run_seq(b, 0).checksum));
}

// ----------------------------------------------------------------- mgs ----

TEST(MgsKernel, DefectHelperDetectsNonOrthogonal) {
  // Identity basis has zero defect; a sheared basis does not.
  std::vector<double> id{1, 0, 0, 1};
  EXPECT_NEAR(mgs::orthogonality_defect(id.data(), 2, 2), 0.0, 1e-12);
  std::vector<double> shear{1, 0, 1, 1};
  EXPECT_GT(mgs::orthogonality_defect(shear.data(), 2, 2), 0.5);
}

// ----------------------------------------------------------------- sor ----

TEST(SorKernel, ConvergesTowardBoundary) {
  // With all boundaries at 1.0, the interior must move toward 1.0
  // monotonically in iteration count.
  sor::Params few{32, 32, 2, 1.0};
  sor::Params many{32, 32, 40, 1.0};
  const double sum_few = sor::run_seq(few, 0).checksum;
  const double sum_many = sor::run_seq(many, 0).checksum;
  EXPECT_GT(sum_many, sum_few);
  EXPECT_LE(sum_many, 32.0 * 32.0 + 1e-9); // can never exceed the boundary
}

TEST(SorKernel, ZeroIterationsLeaveInteriorZero) {
  sor::Params p{16, 16, 0, 1.0};
  EXPECT_DOUBLE_EQ(sor::run_seq(p, 0).checksum, 0.0);
}

// --------------------------------------------------------------- water ----

TEST(WaterKernel, MoleculesStayInBox) {
  // Reflecting walls: the position checksum is bounded by 3n (unit cube).
  water::Params p{64, 10, 5e-3, 0.4, 3};
  const double sum = water::run_seq(p, 0).checksum;
  EXPECT_GT(sum, 0.0);
  EXPECT_LT(sum, 3.0 * 64);
}

TEST(WaterKernel, DeterministicForSeed) {
  water::Params p{64, 3, 1e-3, 0.4, 3};
  EXPECT_DOUBLE_EQ(water::run_seq(p, 0).checksum,
                   water::run_seq(p, 0).checksum);
}

// -------------------------------------------------------------- barnes ----

TEST(BarnesKernel, MomentumRoughlyConserved) {
  // Pairwise forces are not exactly antisymmetric under Barnes-Hut
  // approximation, but with theta=0 (exact) the center of mass must drift
  // only by the initial velocity field.
  barnes::Params exact{64, 1, 0.0, 0.01, 0.05, 4};
  barnes::Params approx{64, 1, 0.9, 0.01, 0.05, 4};
  const double e = barnes::run_seq(exact, 0).checksum;
  const double a = barnes::run_seq(approx, 0).checksum;
  // The approximation changes trajectories only slightly in one step.
  EXPECT_NEAR(e, a, std::abs(e) * 0.05 + 1.0);
}

TEST(BarnesKernel, DeterministicForSeed) {
  barnes::Params p{128, 2, 0.7, 0.02, 0.05, 17};
  EXPECT_DOUBLE_EQ(barnes::run_seq(p, 0).checksum,
                   barnes::run_seq(p, 0).checksum);
}

} // namespace
} // namespace omsp::apps
