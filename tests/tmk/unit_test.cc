// Unit tests for the TreadMarks building blocks that don't need a running
// cluster: diffs, vector times, interval records, the heap allocator, heap
// mappings and the fault registry.
#include <gtest/gtest.h>

#include <cstring>
#include <sys/mman.h>

#include "sim/virtual_clock.hpp"

#include "common/rng.hpp"
#include "tmk/diff.hpp"
#include "tmk/fault_registry.hpp"
#include "tmk/heap_alloc.hpp"
#include "tmk/heap_mapping.hpp"
#include "tmk/interval.hpp"
#include "tmk/vclock.hpp"

namespace omsp::tmk {
namespace {

// ---------------------------------------------------------------- diffs ----

class DiffRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DiffRoundTrip, RandomPagesReconstructExactly) {
  // Property: apply(create(twin, cur), twin) == cur, and the diff touches
  // only changed bytes.
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> twin(kPageSize), cur(kPageSize);
    for (auto& b : twin) b = static_cast<std::uint8_t>(rng.next_u32());
    cur = twin;
    const int changes = static_cast<int>(rng.next_below(200));
    for (int c = 0; c < changes; ++c) {
      const auto at = rng.next_below(kPageSize);
      cur[at] = static_cast<std::uint8_t>(rng.next_u32());
    }
    const auto diff = create_diff(twin.data(), cur.data());
    std::vector<std::uint8_t> rebuilt = twin;
    apply_diff(diff, rebuilt.data());
    ASSERT_EQ(rebuilt, cur);
    ASSERT_LE(diff_patch_bytes(diff), kPageSize);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(Diff, EmptyWhenIdentical) {
  std::vector<std::uint8_t> page(kPageSize, 0x42);
  const auto diff = create_diff(page.data(), page.data());
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff_run_count(diff), 0u);
}

TEST(Diff, ByteExactness) {
  // A diff must never carry an unchanged byte — the multiple-writer merge
  // depends on it (two concurrent writers of one page patch disjoint bytes).
  std::vector<std::uint8_t> twin(kPageSize, 0), cur(kPageSize, 0);
  cur[100] = 1;
  cur[101] = 2;
  cur[500] = 3;
  const auto diff = create_diff(twin.data(), cur.data());
  EXPECT_EQ(diff_patch_bytes(diff), 3u);
  EXPECT_EQ(diff_run_count(diff), 2u); // {100,101} and {500}

  // Applying onto a page with OTHER bytes changed must preserve them.
  std::vector<std::uint8_t> other(kPageSize, 0);
  other[200] = 77;
  apply_diff(diff, other.data());
  EXPECT_EQ(other[100], 1);
  EXPECT_EQ(other[101], 2);
  EXPECT_EQ(other[500], 3);
  EXPECT_EQ(other[200], 77);
}

TEST(Diff, FullPageChange) {
  std::vector<std::uint8_t> twin(kPageSize, 0), cur(kPageSize, 0xff);
  const auto diff = create_diff(twin.data(), cur.data());
  EXPECT_EQ(diff_patch_bytes(diff), kPageSize);
  EXPECT_EQ(diff_run_count(diff), 1u);
}

TEST(Diff, WordBoundarySubByteChanges) {
  // One byte per 8-byte word, at every offset within the word.
  for (int off = 0; off < 8; ++off) {
    std::vector<std::uint8_t> twin(kPageSize, 0), cur(kPageSize, 0);
    cur[64 + off] = 9;
    const auto diff = create_diff(twin.data(), cur.data());
    EXPECT_EQ(diff_patch_bytes(diff), 1u) << off;
    std::vector<std::uint8_t> rebuilt = twin;
    apply_diff(diff, rebuilt.data());
    EXPECT_EQ(rebuilt, cur);
  }
}

// ------------------------------------------------------------- vclock ----

TEST(VectorTime, CoversAndMerge) {
  VectorTime a(3), b(3);
  a[0] = 5;
  a[1] = 2;
  b[0] = 3;
  b[1] = 4;
  EXPECT_TRUE(a.covers(0, 5));
  EXPECT_FALSE(a.covers(0, 6));
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  a.merge(b);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 4u);
  EXPECT_TRUE(a.covers(b));
}

TEST(VectorTime, SumLinearizesHappensBefore) {
  VectorTime a(4), b(4);
  a[0] = 1;
  b = a;
  b[2] = 3; // a < b componentwise
  EXPECT_LT(a.sum(), b.sum());
}

TEST(VectorTime, SerializeRoundTrip) {
  VectorTime a(5);
  for (ContextId c = 0; c < 5; ++c) a[c] = c * 11;
  ByteWriter w;
  a.serialize(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(VectorTime::deserialize(r), a);
}

// ------------------------------------------------------------ intervals ----

TEST(Interval, RecordRoundTripAndWireSize) {
  IntervalRecord rec;
  rec.creator = 2;
  rec.seq = 9;
  rec.vt = VectorTime(4);
  rec.vt[2] = 9;
  rec.pages = {1, 5, 42};
  ByteWriter w;
  rec.serialize(w);
  EXPECT_EQ(w.size(), rec.wire_size());
  ByteReader r(w.bytes());
  const auto back = IntervalRecord::deserialize(r);
  EXPECT_EQ(back.creator, rec.creator);
  EXPECT_EQ(back.seq, rec.seq);
  EXPECT_EQ(back.vt, rec.vt);
  EXPECT_EQ(back.pages, rec.pages);
}

TEST(Interval, BatchHelpers) {
  std::vector<IntervalRecord> recs(3);
  for (int i = 0; i < 3; ++i) {
    recs[i].creator = 0;
    recs[i].seq = static_cast<IntervalSeq>(i + 1);
    recs[i].vt = VectorTime(2);
    recs[i].pages = std::vector<PageId>(static_cast<std::size_t>(i), 7);
  }
  EXPECT_EQ(records_notice_count(recs), 0u + 1u + 2u);
  ByteWriter w;
  serialize_records(recs, w);
  EXPECT_EQ(w.size(), records_wire_size(recs));
  ByteReader r(w.bytes());
  const auto back = deserialize_records(r);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[2].pages.size(), 2u);
}

// ------------------------------------------------------------ allocator ----

TEST(HeapAlloc, AllocateAlignedAndFree) {
  HeapAllocator alloc(1 << 16);
  const auto a = alloc.allocate(100, 16);
  const auto b = alloc.allocate(200, 64);
  ASSERT_NE(a, kNullGlobalAddr);
  ASSERT_NE(b, kNullGlobalAddr);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_EQ(alloc.bytes_in_use(), 300u);
  alloc.free(a);
  alloc.free(b);
  EXPECT_EQ(alloc.bytes_in_use(), 0u);
  EXPECT_EQ(alloc.allocation_count(), 0u);
}

TEST(HeapAlloc, ExhaustionReturnsNull) {
  HeapAllocator alloc(4096);
  EXPECT_NE(alloc.allocate(4096, 1), kNullGlobalAddr);
  EXPECT_EQ(alloc.allocate(1, 1), kNullGlobalAddr);
}

TEST(HeapAlloc, CoalescingAllowsReuse) {
  HeapAllocator alloc(4096);
  const auto a = alloc.allocate(1024, 16);
  const auto b = alloc.allocate(1024, 16);
  const auto c = alloc.allocate(1024, 16);
  alloc.free(b);
  alloc.free(a); // coalesces with b's block
  alloc.free(c);
  // The whole heap must be reusable as one block again.
  EXPECT_NE(alloc.allocate(4000, 16), kNullGlobalAddr);
}

TEST(HeapAlloc, RandomizedAllocFreeNeverOverlaps) {
  HeapAllocator alloc(1 << 18);
  Rng rng(5);
  struct Block {
    GlobalAddr at;
    std::size_t size;
  };
  std::vector<Block> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_bool(0.6)) {
      const std::size_t size = 1 + rng.next_below(2000);
      const std::size_t align = std::size_t{1} << rng.next_below(8);
      const auto at = alloc.allocate(size, align);
      if (at == kNullGlobalAddr) continue;
      EXPECT_EQ(at % align, 0u);
      for (const auto& blk : live) {
        const bool overlap = at < blk.at + blk.size && blk.at < at + size;
        ASSERT_FALSE(overlap);
      }
      live.push_back({at, size});
    } else {
      const auto idx = rng.next_below(live.size());
      alloc.free(live[idx].at);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
}

// ---------------------------------------------------------- heap mapping ----

TEST(HeapMapping, AliasSharesBacking) {
  StatsBoard stats;
  sim::CostModel cost = sim::CostModel::zero();
  HeapMapping heap(4 * HeapMapping::kHeapPageSize, /*alias=*/true, /*owner=*/0,
                   &stats, &cost);
  ASSERT_TRUE(heap.has_alias());
  // Write via the runtime view while the app view is read-only.
  heap.runtime_page(1)[10] = 0x5a;
  EXPECT_EQ(heap.app_page(1)[10], 0x5a);
}

TEST(HeapMapping, ProtectCountsAndCharges) {
  StatsBoard stats;
  sim::CostModel cost = sim::CostModel::zero();
  cost.mprotect_us = 7;
  HeapMapping heap(2 * HeapMapping::kHeapPageSize, true, /*owner=*/0, &stats, &cost);
  sim::VirtualClock clock(1.0);
  sim::VirtualClock::Binder bind(&clock);
  heap.protect(0, Protection::kReadWrite);
  heap.protect(0, Protection::kRead);
  EXPECT_EQ(stats.get(Counter::kMprotect), 2u);
  EXPECT_DOUBLE_EQ(clock.now_us(), 14.0);
}

TEST(HeapMapping, SnapshotWithoutAlias) {
  StatsBoard stats;
  sim::CostModel cost = sim::CostModel::zero();
  HeapMapping heap(2 * HeapMapping::kHeapPageSize, /*alias=*/false, /*owner=*/0,
                   &stats, &cost);
  heap.protect(0, Protection::kReadWrite);
  std::memset(heap.app_page(0), 0x7e, HeapMapping::kHeapPageSize);
  heap.protect(0, Protection::kNone); // invalid page...
  std::vector<std::uint8_t> snap(HeapMapping::kHeapPageSize);
  heap.snapshot_page(0, snap.data()); // ...still snapshotable
  for (auto b : snap) ASSERT_EQ(b, 0x7e);
}

TEST(HeapMapping, ContainsAndPageOf) {
  StatsBoard stats;
  sim::CostModel cost = sim::CostModel::zero();
  HeapMapping heap(4 * HeapMapping::kHeapPageSize, true, /*owner=*/0, &stats, &cost);
  EXPECT_TRUE(heap.contains(heap.app_base()));
  EXPECT_TRUE(heap.contains(heap.app_base() + heap.bytes() - 1));
  EXPECT_FALSE(heap.contains(heap.app_base() + heap.bytes()));
  EXPECT_EQ(heap.page_of(heap.app_page(3) + 5), 3u);
}

// -------------------------------------------------------- fault registry ----

struct CountingTarget : FaultTarget {
  void on_fault(void* addr, bool is_write) override {
    ++faults;
    last_write = is_write;
    auto base = reinterpret_cast<std::uintptr_t>(addr) & ~std::uintptr_t{4095};
    ::mprotect(reinterpret_cast<void*>(base), 4096, PROT_READ | PROT_WRITE);
  }
  int faults = 0;
  bool last_write = false;
};

TEST(FaultRegistry, DispatchesToOwningRegion) {
  void* mem = ::mmap(nullptr, 4096, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS,
                     -1, 0);
  ASSERT_NE(mem, MAP_FAILED);
  CountingTarget target;
  FaultRegistry::add_region(mem, 4096, &target);
  static_cast<volatile char*>(mem)[0] = 1; // write fault
  EXPECT_EQ(target.faults, 1);
  EXPECT_TRUE(target.last_write);
  ::mprotect(mem, 4096, PROT_READ);
  (void)static_cast<volatile char*>(mem)[0]; // no fault: readable
  EXPECT_EQ(target.faults, 1);
  FaultRegistry::remove_region(mem);
  ::munmap(mem, 4096);
}

TEST(FaultRegistry, ReadFaultClassified) {
  void* mem = ::mmap(nullptr, 4096, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS,
                     -1, 0);
  CountingTarget target;
  FaultRegistry::add_region(mem, 4096, &target);
  volatile char sink = static_cast<volatile char*>(mem)[8];
  (void)sink;
  EXPECT_EQ(target.faults, 1);
  EXPECT_FALSE(target.last_write);
  FaultRegistry::remove_region(mem);
  ::munmap(mem, 4096);
}

TEST(FaultRegistry, TrapOverheadCalibrated) {
  const double us = FaultRegistry::fault_trap_overhead_us();
  EXPECT_GE(us, 0.0);
  EXPECT_LT(us, 1000.0); // sanity: well under a millisecond
  // Stable across calls (cached).
  EXPECT_EQ(us, FaultRegistry::fault_trap_overhead_us());
}

} // namespace
} // namespace omsp::tmk
