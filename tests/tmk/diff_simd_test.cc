// Property suite for the vectorized diff kernels (ISSUE 8): the canonical
// run encoding means every correct encoder emits byte-identical output, so
// create_diff() (AVX2/SSE2/portable64, chosen at build time) is checked
// byte-for-byte against create_diff_scalar(), the original word-at-a-time
// reference. Round-trips cover 0/5/25/100% dirtiness, runs engineered to
// straddle word and vector-lane boundaries, and adversarial encodings —
// truncated headers, truncated payloads, and the run-overflows-page case the
// hardened apply_diff() must reject BEFORE copying a byte.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "tmk/diff.hpp"

namespace omsp::tmk {
namespace {

std::vector<std::uint8_t> random_page(Rng& rng) {
  std::vector<std::uint8_t> page(kPageSize);
  for (auto& b : page) b = static_cast<std::uint8_t>(rng.next_u32());
  return page;
}

// Flip `fraction` of the bytes at random positions (not contiguous runs):
// the hardest shape for a mask->run emitter, since runs open and close at
// arbitrary bit offsets inside every 64-byte block.
std::vector<std::uint8_t> scatter_dirty(const std::vector<std::uint8_t>& twin,
                                        double fraction, Rng& rng) {
  auto cur = twin;
  const auto n = static_cast<std::size_t>(kPageSize * fraction);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = rng.next_u32() % kPageSize;
    cur[at] ^= static_cast<std::uint8_t>(1 + rng.next_u32() % 255);
  }
  return cur;
}

TEST(DiffSimd, KernelNameIsKnown) {
  const std::string k = diff_kernel_name();
  EXPECT_TRUE(k == "avx2" || k == "sse2" || k == "portable64") << k;
}

// The core property: SIMD output == scalar output, byte for byte, and both
// round-trip, across dirtiness levels and many random layouts.
TEST(DiffSimd, ScalarEquivalenceAcrossDirtiness) {
  Rng rng(1234);
  for (const double frac : {0.0, 0.05, 0.25, 1.0}) {
    for (int trial = 0; trial < 32; ++trial) {
      const auto twin = random_page(rng);
      const auto cur =
          frac == 1.0 ? scatter_dirty(twin, 2.0, rng) // saturate: all touched
                      : scatter_dirty(twin, frac, rng);
      const auto simd = create_diff(twin.data(), cur.data());
      const auto scalar = create_diff_scalar(twin.data(), cur.data());
      ASSERT_EQ(simd, scalar) << "frac=" << frac << " trial=" << trial;
      auto rebuilt = twin;
      apply_diff(simd, rebuilt.data());
      ASSERT_EQ(rebuilt, cur) << "frac=" << frac << " trial=" << trial;
    }
  }
}

// Runs positioned to straddle every alignment boundary the kernels care
// about: 8-byte words (portable64), 16-byte lanes (SSE2), 32-byte lanes
// (AVX2) and the 64-byte block the emitter consumes per step.
TEST(DiffSimd, RunsStraddlingLaneBoundaries) {
  for (const std::size_t boundary : {8u, 16u, 32u, 64u, 128u, 4032u}) {
    for (int span = 1; span <= 5; ++span) {
      for (int lead = -3; lead <= 3; ++lead) {
        const std::ptrdiff_t start =
            static_cast<std::ptrdiff_t>(boundary) + lead;
        if (start < 0 ||
            start + span > static_cast<std::ptrdiff_t>(kPageSize))
          continue;
        std::vector<std::uint8_t> twin(kPageSize, 0x11);
        auto cur = twin;
        for (int i = 0; i < span; ++i)
          cur[static_cast<std::size_t>(start) + static_cast<std::size_t>(i)] ^=
              0xff;
        const auto simd = create_diff(twin.data(), cur.data());
        const auto scalar = create_diff_scalar(twin.data(), cur.data());
        ASSERT_EQ(simd, scalar)
            << "boundary=" << boundary << " start=" << start
            << " span=" << span;
        ASSERT_EQ(diff_run_count(simd), 1u);
        ASSERT_EQ(diff_patch_bytes(simd), static_cast<std::size_t>(span));
        auto rebuilt = twin;
        apply_diff(simd, rebuilt.data());
        ASSERT_EQ(rebuilt, cur);
      }
    }
  }
}

// Alternating differ/equal bytes: maximal run COUNT (2048 one-byte runs),
// which stresses the open-run carry logic across every block boundary.
TEST(DiffSimd, AlternatingBytesMaximalRunCount) {
  std::vector<std::uint8_t> twin(kPageSize, 0x00);
  auto cur = twin;
  for (std::size_t i = 0; i < kPageSize; i += 2) cur[i] = 0x01;
  const auto simd = create_diff(twin.data(), cur.data());
  EXPECT_EQ(simd, create_diff_scalar(twin.data(), cur.data()));
  EXPECT_EQ(diff_run_count(simd), kPageSize / 2);
  auto rebuilt = twin;
  apply_diff(simd, rebuilt.data());
  EXPECT_EQ(rebuilt, cur);
}

// First and last byte of the page: the edges of the very first and very
// last vector lane.
TEST(DiffSimd, PageEdgeBytes) {
  std::vector<std::uint8_t> twin(kPageSize, 0x42);
  auto cur = twin;
  cur[0] ^= 0x80;
  cur[kPageSize - 1] ^= 0x80;
  const auto simd = create_diff(twin.data(), cur.data());
  EXPECT_EQ(simd, create_diff_scalar(twin.data(), cur.data()));
  EXPECT_EQ(diff_run_count(simd), 2u);
  auto rebuilt = twin;
  apply_diff(simd, rebuilt.data());
  EXPECT_EQ(rebuilt, cur);
}

// A full-page run exercises the u16 length field at its extreme (4096 fits;
// the header type caps pages at 64K by design).
TEST(DiffSimd, FullPageSingleRun) {
  std::vector<std::uint8_t> twin(kPageSize, 0xaa);
  std::vector<std::uint8_t> cur(kPageSize, 0x55);
  const auto simd = create_diff(twin.data(), cur.data());
  EXPECT_EQ(simd, create_diff_scalar(twin.data(), cur.data()));
  EXPECT_EQ(diff_run_count(simd), 1u);
  EXPECT_EQ(diff_patch_bytes(simd), kPageSize);
}

TEST(DiffSimd, CreateDiffIntoReusesCapacity) {
  Rng rng(7);
  const auto twin = random_page(rng);
  const auto cur = scatter_dirty(twin, 0.25, rng);
  DiffBytes out;
  create_diff_into(twin.data(), cur.data(), out);
  EXPECT_EQ(out, create_diff(twin.data(), cur.data()));
  const auto cap = out.capacity();
  // Second encode into the same vector must not reallocate for an equal or
  // smaller diff — the property the pooled flush path relies on.
  create_diff_into(twin.data(), cur.data(), out);
  EXPECT_EQ(out.capacity(), cap);
  EXPECT_EQ(out, create_diff(twin.data(), cur.data()));
}

// ------------------------------------------------ adversarial encodings ----

using DiffSimdDeath = ::testing::Test;

// Regression (ISSUE 8 bugfix): a run whose offset+length exceeds the page
// must be rejected BEFORE any byte is copied. Before the hardened
// for_each_run, apply_diff validated the payload against the diff buffer but
// not the run's landing zone against page_size — this encoding memcpy'd past
// the end of the destination page.
TEST(DiffSimdDeath, RunOverflowingPageRejected) {
  std::vector<std::uint8_t> diff;
  const std::uint16_t offset = kPageSize - 4; // 4092
  const std::uint16_t length = 16;            // lands at 4108 > 4096
  diff.push_back(static_cast<std::uint8_t>(offset & 0xff));
  diff.push_back(static_cast<std::uint8_t>(offset >> 8));
  diff.push_back(static_cast<std::uint8_t>(length & 0xff));
  diff.push_back(static_cast<std::uint8_t>(length >> 8));
  diff.insert(diff.end(), length, 0xee);
  std::vector<std::uint8_t> page(kPageSize, 0);
  EXPECT_DEATH(apply_diff(diff, page.data()), "overflows page");
}

TEST(DiffSimdDeath, TruncatedHeaderRejected) {
  const std::vector<std::uint8_t> diff = {0x00, 0x01, 0x02}; // 3 of 4 bytes
  std::vector<std::uint8_t> page(kPageSize, 0);
  EXPECT_DEATH(apply_diff(diff, page.data()), "truncated diff header");
  EXPECT_DEATH((void)diff_patch_bytes(diff), "truncated diff header");
}

TEST(DiffSimdDeath, TruncatedPayloadRejected) {
  std::vector<std::uint8_t> diff = {0x00, 0x00, 0x20, 0x00}; // 32-byte run
  diff.insert(diff.end(), 16, 0xdd);                         // only 16 present
  std::vector<std::uint8_t> page(kPageSize, 0);
  EXPECT_DEATH(apply_diff(diff, page.data()), "truncated diff run");
  EXPECT_DEATH((void)diff_run_count(diff), "truncated diff run");
}

// A valid encoding against a SMALLER logical page must also die: the same
// bytes can be fine for a 4K page and hostile for a 1K one.
TEST(DiffSimdDeath, RunOverflowingSmallerPageRejected) {
  std::vector<std::uint8_t> twin(kPageSize, 1), cur(kPageSize, 2);
  const auto diff = create_diff(twin.data(), cur.data()); // one 4096-run
  std::vector<std::uint8_t> small(1024, 0);
  EXPECT_DEATH(apply_diff(diff, small.data(), small.size()), "overflows page");
}

// ------------------------------------------------------- buffer pools ------

TEST(BufferPools, PagePoolRecyclesBlocks) {
  PagePool pool(kPageSize);
  EXPECT_EQ(pool.free_count(), 0u);
  auto a = pool.acquire();
  std::uint8_t* raw = a.get();
  a[0] = 0x7f;
  a.reset(); // returns the block to the pool, not the allocator
  EXPECT_EQ(pool.free_count(), 1u);
  auto b = pool.acquire();
  EXPECT_EQ(b.get(), raw); // same block came back
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPools, BufferPoolRecyclesCapacity) {
  BufferPool pool;
  auto v = pool.acquire();
  EXPECT_TRUE(v.empty());
  v.resize(1000);
  const auto cap = v.capacity();
  pool.release(std::move(v));
  EXPECT_EQ(pool.free_count(), 1u);
  auto w = pool.acquire();
  EXPECT_TRUE(w.empty());
  EXPECT_GE(w.capacity(), cap); // capacity survived the round trip
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPools, BufferPoolIgnoresEmptyReleases) {
  BufferPool pool;
  pool.release({});
  EXPECT_EQ(pool.free_count(), 0u);
}

} // namespace
} // namespace omsp::tmk
