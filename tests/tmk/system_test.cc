// End-to-end DsmSystem tests: fork/join memory semantics, cross-node
// propagation through barriers, false sharing under the multiple-writer
// protocol, and both execution modes.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

Config small_config(Mode mode, std::uint32_t nodes = 2,
                    std::uint32_t ppn = 2) {
  Config cfg;
  cfg.topology = sim::Topology(nodes, ppn);
  cfg.mode = mode;
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

class DsmSystemTest : public ::testing::TestWithParam<Mode> {};

TEST_P(DsmSystemTest, MasterWritesVisibleToAllRanks) {
  DsmSystem dsm(small_config(GetParam()));
  auto data = dsm.alloc<int>(1024);
  for (int i = 0; i < 1024; ++i) data[i] = i * 3;

  std::atomic<int> mismatches{0};
  dsm.parallel([&](Rank) {
    for (int i = 0; i < 1024; ++i)
      if (data[i] != i * 3) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_P(DsmSystemTest, WorkerWritesVisibleToMasterAfterJoin) {
  DsmSystem dsm(small_config(GetParam()));
  const std::uint32_t np = dsm.nprocs();
  auto data = dsm.alloc<int>(np * 256);

  dsm.parallel([&](Rank r) {
    for (std::uint32_t i = 0; i < 256; ++i)
      data[r * 256 + i] = static_cast<int>(r * 1000 + i);
  });
  for (std::uint32_t r = 0; r < np; ++r)
    for (std::uint32_t i = 0; i < 256; ++i)
      ASSERT_EQ(data[r * 256 + i], static_cast<int>(r * 1000 + i));
}

TEST_P(DsmSystemTest, BarrierPropagatesPeerWrites) {
  DsmSystem dsm(small_config(GetParam()));
  const std::uint32_t np = dsm.nprocs();
  // One page-aligned slot per rank to avoid false sharing in this test.
  auto slots = dsm.alloc_page_aligned<int>(np * 1024);

  std::atomic<int> mismatches{0};
  dsm.parallel([&](Rank r) {
    slots[r * 1024] = static_cast<int>(100 + r);
    dsm.barrier();
    for (std::uint32_t o = 0; o < np; ++o)
      if (slots[o * 1024] != static_cast<int>(100 + o)) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_P(DsmSystemTest, FalseSharingMergesConcurrentWriters) {
  // All ranks write disjoint ints within the SAME page; the multiple-writer
  // protocol must merge every write at the barrier.
  DsmSystem dsm(small_config(GetParam()));
  const std::uint32_t np = dsm.nprocs();
  auto page = dsm.alloc_page_aligned<int>(1024);

  std::atomic<int> mismatches{0};
  dsm.parallel([&](Rank r) {
    // 1024/np ints per rank, interleaved by rank to maximize false sharing.
    for (std::uint32_t i = r; i < 1024; i += np)
      page[i] = static_cast<int>(i * 7 + 1);
    dsm.barrier();
    for (std::uint32_t i = 0; i < 1024; ++i)
      if (page[i] != static_cast<int>(i * 7 + 1)) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
  for (std::uint32_t i = 0; i < 1024; ++i)
    ASSERT_EQ(page[i], static_cast<int>(i * 7 + 1)) << i;
}

TEST_P(DsmSystemTest, IterativeNeighborExchange) {
  // SOR-like: each rank repeatedly reads neighbours' boundary values written
  // in the previous iteration.
  DsmSystem dsm(small_config(GetParam()));
  const std::uint32_t np = dsm.nprocs();
  const int iters = 8;
  auto cur = dsm.alloc_page_aligned<long>(np);
  for (std::uint32_t i = 0; i < np; ++i) cur[i] = static_cast<long>(i);

  dsm.parallel([&](Rank r) {
    for (int it = 0; it < iters; ++it) {
      dsm.barrier();
      const long left = cur[(r + np - 1) % np];
      const long right = cur[(r + 1) % np];
      dsm.barrier();
      cur[r] = left + right;
    }
  });
  dsm.parallel([&](Rank) {});

  // Reference computation.
  std::vector<long> ref(np), next(np);
  std::iota(ref.begin(), ref.end(), 0L);
  for (int it = 0; it < iters; ++it) {
    for (std::uint32_t i = 0; i < np; ++i)
      next[i] = ref[(i + np - 1) % np] + ref[(i + 1) % np];
    ref = next;
  }
  for (std::uint32_t i = 0; i < np; ++i) EXPECT_EQ(cur[i], ref[i]) << i;
}

TEST_P(DsmSystemTest, MultipleRegionsReuseWorkers) {
  DsmSystem dsm(small_config(GetParam()));
  auto acc = dsm.alloc<long>(dsm.nprocs());
  for (std::uint32_t i = 0; i < dsm.nprocs(); ++i) acc[i] = 0;
  for (int round = 0; round < 5; ++round) {
    dsm.parallel([&](Rank r) { acc[r] = acc[r] + (round + 1); });
  }
  for (std::uint32_t i = 0; i < dsm.nprocs(); ++i) EXPECT_EQ(acc[i], 15);
}

TEST_P(DsmSystemTest, StatsCountCommunication) {
  DsmSystem dsm(small_config(GetParam()));
  dsm.reset_stats();
  auto x = dsm.alloc_page_aligned<int>(1024);
  x[0] = 41;
  dsm.parallel([&](Rank r) {
    if (r == dsm.nprocs() - 1) x[1] = x[0] + 1;
  });
  EXPECT_EQ(x[1], 42);
  auto s = dsm.stats();
  EXPECT_GT(s[Counter::kMsgsSent], 0u);
  EXPECT_GT(s[Counter::kBytesSent], 0u);
  EXPECT_GT(s[Counter::kPageFaults], 0u);
  EXPECT_GT(s[Counter::kDiffsCreated], 0u);
}

// An asymmetric node mix (4+2+2 ranks across three nodes) must run
// correctly in thread mode: rank_epilogue and the barrier count
// threads_in_context(cid) per context, not a uniform procs_per_node().
TEST(DsmAsymmetricTest, AsymmetricNodeMixThreadMode) {
  Config cfg;
  cfg.mode = Mode::kThread;
  cfg.topology = sim::Topology::asymmetric({4, 2, 2});
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);
  ASSERT_EQ(dsm.nprocs(), 8u);

  auto x = dsm.alloc_page_aligned<int>(dsm.nprocs());
  std::atomic<int> mismatches{0};
  dsm.parallel([&](Rank r) {
    x[r] = 100 + static_cast<int>(r);
    dsm.barrier();
    // Every rank sees every other rank's write after the barrier.
    for (Rank o = 0; o < dsm.nprocs(); ++o)
      if (x[o] != 100 + static_cast<int>(o)) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
  for (Rank r = 0; r < dsm.nprocs(); ++r)
    EXPECT_EQ(x[r], 100 + static_cast<int>(r));
}

INSTANTIATE_TEST_SUITE_P(Modes, DsmSystemTest,
                         ::testing::Values(Mode::kThread, Mode::kProcess),
                         [](const auto& info) {
                           return info.param == Mode::kThread ? "Thread"
                                                              : "Process";
                         });

} // namespace
} // namespace omsp::tmk
