// Tests for the classic Tmk_* facade: a TreadMarks-manual-style program.
#include <gtest/gtest.h>

#include "tmk/tmk_api.hpp"

namespace omsp::tmk {
namespace {

Config api_cfg() {
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

TEST(TmkApi, StartupForkJoinExit) {
  Tmk tmk(api_cfg());
  EXPECT_FALSE(tmk.started());
  tmk.startup();
  ASSERT_TRUE(tmk.started());
  EXPECT_EQ(tmk.nprocs(), 4u);

  auto* flags = static_cast<int*>(tmk.malloc(4 * sizeof(int)));
  for (int i = 0; i < 4; ++i) flags[i] = 0;
  const GlobalAddr shared = tmk.global_addr(flags);

  tmk.fork([&](unsigned proc) {
    // Pointers must be re-derived per context, like real TreadMarks ports
    // that pass a shared block pointer through Tmk_distribute.
    int* mine = tmk.from_global<int>(shared);
    mine[proc] = static_cast<int>(proc) + 1;
  });

  for (int i = 0; i < 4; ++i) EXPECT_EQ(flags[i], i + 1);
  tmk.exit();
  EXPECT_FALSE(tmk.started());
}

TEST(TmkApi, BarrierAndLocksInsideFork) {
  Tmk tmk(api_cfg());
  tmk.startup();
  auto* sum = static_cast<long*>(tmk.malloc(sizeof(long)));
  *sum = 0;
  const GlobalAddr addr = tmk.global_addr(sum);
  tmk.fork([&](unsigned) {
    long* s = tmk.from_global<long>(addr);
    for (int i = 0; i < 25; ++i) {
      tmk.lock_acquire(5);
      *s = *s + 1;
      tmk.lock_release(5);
    }
    tmk.barrier(1);
    EXPECT_EQ(*s, 100);
  });
  EXPECT_EQ(*sum, 100);
}

TEST(TmkApi, ProcIdMatchesRank) {
  Tmk tmk(api_cfg());
  tmk.startup();
  auto* seen = static_cast<int*>(tmk.malloc(4 * sizeof(int)));
  const GlobalAddr addr = tmk.global_addr(seen);
  tmk.fork([&](unsigned proc) {
    EXPECT_EQ(Tmk::proc_id(), proc);
    tmk.from_global<int>(addr)[proc] = 1;
  });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seen[i], 1);
}

TEST(TmkApi, MallocFreeCycle) {
  Tmk tmk(api_cfg());
  tmk.startup();
  void* a = tmk.malloc(100);
  void* b = tmk.malloc(200);
  EXPECT_NE(a, b);
  tmk.free(a);
  tmk.free(b);
  // Reuse after free.
  void* c = tmk.malloc(250);
  EXPECT_NE(c, nullptr);
}

} // namespace
} // namespace omsp::tmk
