// Protocol correctness on lossy links: with seeded message loss the
// reliable-delivery layer (seq/ack, RTO + exponential backoff, idempotent
// re-service) must deliver exact computed values on both protocols, both
// execution modes and both transports; loss schedules are a pure function of
// the seed, so reliability counters reproduce bit-for-bit; exhausting the
// retry cap surfaces net::TransportError instead of hanging; and the
// stats<->trace audit stays exact with retransmissions in flight.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "../common/env_guard.hpp"
#include "core/runtime.hpp"
#include "net/transport.hpp"
#include "trace/sinks.hpp"

namespace omsp::tmk {
namespace {

using test::ScopedEnvClear;

// Loss-only perturbation: jitter/duplicate/reorder off, so the only injected
// fault is dropped deliveries and everything else matches a clean run.
net::PerturbOptions loss_with(std::uint64_t seed, double prob) {
  net::PerturbOptions o;
  o.enabled = true;
  o.seed = seed;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 0;
  o.loss_prob = prob;
  // At p=0.2 an attempt fails with probability 1-(1-p)^2 = 0.36; the default
  // cap of 8 retries leaves ~1e-4 residual exhaustion odds per exchange,
  // enough to trip on a long run. Tests that WANT exhaustion set the cap to
  // 0 explicitly; here delivery must succeed.
  o.max_retries = 20;
  return o;
}

net::PerturbOptions drop_every_first(std::uint64_t seed) {
  net::PerturbOptions o = loss_with(seed, 0);
  // Adversarial mode: the first copy of every exchange is dropped in each
  // direction, so every single protocol message walks the full retransmit
  // path (request lost, reply/ack lost, third copy through).
  o.drop_first = true;
  o.max_retries = 8;
  return o;
}

// The protocol-hostile workload shared with perturb/overlap tests: a
// triangular elimination pattern where every iteration's writes are read by
// every later iteration across all contexts.
void run_triangular(const Config& base, std::vector<long>& out) {
  const std::int64_t N = 24, D = 64;
  const long M = 1000003;
  Config cfg = base;
  core::OmpRuntime rt(cfg);
  auto a = rt.alloc_page_aligned<long>(N * D);
  for (std::int64_t i = 0; i < N * D; ++i) a[i] = 1;
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t k = 0; k < D; ++k) a[i * D + k] = a[i * D + k] * 3 % M;
    rt.parallel_for(i + 1, N, core::Schedule::static_chunked(1),
                    [&](std::int64_t j) {
                      for (std::int64_t k = 0; k < D; ++k)
                        a[j * D + k] = (a[j * D + k] + a[i * D + k]) % M;
                    });
  }
  out.assign(a.local(), a.local() + N * D);
}

struct LossParam {
  std::uint64_t seed;
  Protocol protocol;
  bool overlap; // false: InlineTransport; true: QueuedTransport (OMSP_OVERLAP)
  const char* name;
};

class LossyTriangular : public ::testing::TestWithParam<LossParam> {};

// The acceptance bar: seeds 1..3, both protocols, both transports, loss
// rates 0.05 and 0.2 plus the adversarial drop-first mode — every computed
// value identical to the clean reference run.
TEST_P(LossyTriangular, ExactResultsUnderSeededLoss) {
  const ScopedEnvClear env_guard;
  const LossParam& p = GetParam();
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.protocol = p.protocol;
  cfg.cost = sim::CostModel::zero();
  cfg.overlap.enabled = p.overlap;
  std::vector<long> ref;
  run_triangular(cfg, ref); // loss_prob = 0: the clean reference

  for (const double prob : {0.05, 0.2}) {
    std::vector<long> lossy;
    cfg.perturb = loss_with(p.seed, prob);
    run_triangular(cfg, lossy);
    ASSERT_EQ(lossy, ref) << "loss_prob=" << prob;
  }
  std::vector<long> adversarial;
  cfg.perturb = drop_every_first(p.seed);
  run_triangular(cfg, adversarial);
  ASSERT_EQ(adversarial, ref) << "drop_first";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LossyTriangular,
    ::testing::Values(
        LossParam{1, Protocol::kLazyRC, false, "LazySeed1Inline"},
        LossParam{2, Protocol::kLazyRC, false, "LazySeed2Inline"},
        LossParam{3, Protocol::kLazyRC, false, "LazySeed3Inline"},
        LossParam{1, Protocol::kHomeLRC, false, "HomeSeed1Inline"},
        LossParam{2, Protocol::kHomeLRC, false, "HomeSeed2Inline"},
        LossParam{3, Protocol::kHomeLRC, false, "HomeSeed3Inline"},
        LossParam{1, Protocol::kLazyRC, true, "LazySeed1Queued"},
        LossParam{2, Protocol::kLazyRC, true, "LazySeed2Queued"},
        LossParam{3, Protocol::kLazyRC, true, "LazySeed3Queued"},
        LossParam{1, Protocol::kHomeLRC, true, "HomeSeed1Queued"},
        LossParam{2, Protocol::kHomeLRC, true, "HomeSeed2Queued"},
        LossParam{3, Protocol::kHomeLRC, true, "HomeSeed3Queued"}),
    [](const auto& info) { return info.param.name; });

// Both execution modes under the adversarial mode (process mode moves every
// rank to its own context, so every exchange is cross-context traffic).
struct ModeParam {
  Mode mode;
  Protocol protocol;
  const char* name;
};

class DropFirstModes : public ::testing::TestWithParam<ModeParam> {};

TEST_P(DropFirstModes, ExactResultsInBothModes) {
  const ScopedEnvClear env_guard;
  const ModeParam& p = GetParam();
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = p.mode;
  cfg.protocol = p.protocol;
  cfg.cost = sim::CostModel::zero();
  std::vector<long> ref, lossy;
  run_triangular(cfg, ref);
  cfg.perturb = drop_every_first(1);
  run_triangular(cfg, lossy);
  ASSERT_EQ(lossy, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, DropFirstModes,
    ::testing::Values(ModeParam{Mode::kThread, Protocol::kLazyRC, "ThreadLazy"},
                      ModeParam{Mode::kProcess, Protocol::kLazyRC,
                                "ProcessLazy"},
                      ModeParam{Mode::kThread, Protocol::kHomeLRC,
                                "ThreadHome"},
                      ModeParam{Mode::kProcess, Protocol::kHomeLRC,
                                "ProcessHome"}),
    [](const auto& info) { return info.param.name; });

// Loss schedules come from per-link seeded streams, so a heavy loss rate
// changes nothing about the computed data — run over run, per seed. (Exact
// counter reproduction is a net-layer property — see
// PerturbingTransport.SameSeedSameLossSchedule — because even the clean
// system's message count is service-time dependent; here the system-level
// claim is bit-identical results plus real, audited loss traffic.)
TEST(LossDeterminism, SameSeedSameResultsWithRealLossTraffic) {
  const ScopedEnvClear env_guard;
  auto run = [] {
    Config cfg;
    cfg.topology = sim::Topology(4, 1); // every context on its own node
    cfg.cost = sim::CostModel::zero();
    cfg.perturb = loss_with(2, 0.2);
    std::vector<long> vals;
    run_triangular(cfg, vals);
    return vals;
  };
  EXPECT_EQ(run(), run());

  Config cfg;
  cfg.topology = sim::Topology(4, 1);
  cfg.cost = sim::CostModel::zero();
  cfg.perturb = loss_with(2, 0.2);
  DsmSystem dsm(cfg);
  auto data = dsm.alloc_page_aligned<long>(1024);
  for (int i = 0; i < 1024; ++i) data[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 8; ++it) {
      for (int i = 0; i < 256; ++i) {
        const int idx = static_cast<int>(r) * 256 + i;
        data[idx] = data[idx] + i + it;
      }
      dsm.barrier();
    }
  });
  for (int i = 0; i < 1024; ++i)
    ASSERT_EQ(data[i], 8 * (i % 256) + 28) << "cell " << i;
  const auto s = dsm.stats();
  // p=0.2 across a whole run: losses certainly happened, every loss has its
  // retransmission, and notice-channel recoveries were acked.
  EXPECT_GT(s[Counter::kMsgsLost], 0u);
  EXPECT_GT(s[Counter::kRetransmits], 0u);
  EXPECT_GT(s[Counter::kAcksSent], 0u);
  const auto& pt =
      dynamic_cast<net::PerturbingTransport&>(dsm.router().transport());
  EXPECT_EQ(pt.stats().losses, s[Counter::kMsgsLost]);
  EXPECT_EQ(pt.stats().retransmits, s[Counter::kRetransmits]);
  EXPECT_EQ(pt.stats().acks, s[Counter::kAcksSent]);
}

// Retry-cap exhaustion surfaces as net::TransportError from the protocol
// operation that needed the exchange — a typed failure, never a hang.
TEST(LossHardFailure, RetryCapExhaustionSurfacesNotHangs) {
  const ScopedEnvClear env_guard;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  cfg.perturb = drop_every_first(1);
  cfg.perturb.max_retries = 0; // one copy per exchange, and it always drops
  DsmSystem dsm(cfg);
  // The fork descriptor is the first message of any parallel region; with an
  // undeliverable link the region must fail loudly on the master thread.
  EXPECT_THROW(dsm.parallel([&](Rank) {}), net::TransportError);
}

// With loss on, every counter bump still has its paired trace event:
// the trace reconstructs the boards exactly, including the new
// loss/retransmit/ack counters, and both loss markers appear.
TEST(LossyTrace, ReconstructsCountersExactly) {
  const ScopedEnvClear env_guard;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  cfg.trace.enabled = true;
  cfg.perturb = loss_with(2, 0.2);
  DsmSystem dsm(cfg);
  auto data = dsm.alloc_page_aligned<long>(512);
  for (int i = 0; i < 512; ++i) data[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 10; ++it) {
      for (int i = 0; i < 128; ++i) {
        const int idx = static_cast<int>(r) * 128 + i;
        data[idx] = data[idx] + i + it;
      }
      dsm.barrier();
    }
  });
  const StatsSnapshot live = dsm.stats();
  EXPECT_GT(live[Counter::kMsgsLost], 0u);
  EXPECT_GT(live[Counter::kRetransmits], 0u);
  EXPECT_GT(live[Counter::kAcksSent], 0u);
  const StatsSnapshot rebuilt =
      trace::reconstruct_counters(dsm.tracer()->snapshot_events());
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
  bool saw_lost = false, saw_retransmit = false;
  for (const auto& e : dsm.tracer()->events()) {
    if (e.kind == trace::EventKind::kMessageLost) saw_lost = true;
    if (e.kind == trace::EventKind::kRetransmit) saw_retransmit = true;
  }
  EXPECT_TRUE(saw_lost);
  EXPECT_TRUE(saw_retransmit);
}

// OMSP_LOSS_PROB is a code-free enable: DsmSystem stacks the loss-only
// perturbing transport from the environment, and reset_stats() clears the
// transport-local tallies together with boards and trace (the satellite-3
// contract, system-level).
TEST(LossFromEnv, SystemStacksLossOnlyTransportAndResetsStats) {
  const ScopedEnvClear env_guard;
  ::setenv("OMSP_LOSS_PROB", "0.1", 1);
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);
  auto& pt = dynamic_cast<net::PerturbingTransport&>(dsm.router().transport());
  EXPECT_TRUE(pt.options().lossy());
  EXPECT_DOUBLE_EQ(pt.options().loss_prob, 0.1);
  EXPECT_EQ(pt.options().duplicate_prob, 0.0); // loss-only mode

  auto data = dsm.alloc_page_aligned<long>(256);
  for (int i = 0; i < 256; ++i) data[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 6; ++it) {
      for (int i = 0; i < 128; ++i) {
        const int idx = static_cast<int>(r) * 128 + i;
        data[idx] = data[idx] + 1;
      }
      dsm.barrier();
    }
  });
  EXPECT_GT(pt.stats().losses, 0u);
  dsm.reset_stats();
  EXPECT_EQ(pt.stats().losses, 0u);
  EXPECT_EQ(pt.stats().retransmits, 0u);
  EXPECT_EQ(dsm.stats()[Counter::kMsgsLost], 0u);
}

} // namespace
} // namespace omsp::tmk
