// Overlapped diff fetching (Config::overlap, net::QueuedTransport): the
// asynchronous fetch path and the barrier-time batched prefetch must keep
// every computed value exact, keep counters and trace in lossless agreement,
// leave the diff request/reply message counts of the async fetch unchanged
// against the inline path, serve prefetch-hit pages with zero fault-time
// fetch stall, and stay deterministic per seed — including composed with the
// perturbation transport.
#include <gtest/gtest.h>

#include <vector>

#include "../common/env_guard.hpp"
#include "core/runtime.hpp"
#include "net/transport.hpp"
#include "trace/sinks.hpp"

namespace omsp::tmk {
namespace {

using test::ScopedEnvClear;

net::OverlapOptions overlap_all() {
  net::OverlapOptions o;
  o.enabled = true;
  return o; // async_fetch + prefetch
}

net::OverlapOptions overlap_fetch_only() {
  net::OverlapOptions o;
  o.enabled = true;
  o.prefetch = false;
  return o;
}

// Flat off-node latency with service occupancy and no host-CPU folding:
// makespans are purely modeled protocol time, so timing assertions are exact
// and reproducible.
sim::CostModel latency_model() {
  auto m = sim::CostModel::zero();
  m.net_latency_us = 100.0;
  m.handler_service_us = 10.0;
  return m;
}

// The perturbation suite's triangular elimination: lock-free but heavily
// multi-writer across barriers — the most protocol-hostile value check.
void run_triangular(const Config& base, std::vector<long>& out) {
  const std::int64_t N = 24, D = 64;
  const long M = 1000003;
  Config cfg = base;
  core::OmpRuntime rt(cfg);
  auto a = rt.alloc_page_aligned<long>(N * D);
  for (std::int64_t i = 0; i < N * D; ++i) a[i] = 1;
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t k = 0; k < D; ++k) a[i * D + k] = a[i * D + k] * 3 % M;
    rt.parallel_for(i + 1, N, core::Schedule::static_chunked(1),
                    [&](std::int64_t j) {
                      for (std::int64_t k = 0; k < D; ++k)
                        a[j * D + k] = (a[j * D + k] + a[i * D + k]) % M;
                    });
  }
  out.assign(a.local(), a.local() + N * D);
}

// Phased producer/consumer: each rank owns one page, writes it, and after a
// barrier reads its neighbor's page (always cross-context in process mode).
// Between barriers only one side of each page is active, so message counts
// are a deterministic function of the protocol — not of host scheduling.
// `compute_us` charges modeled private compute between the barrier and the
// first touch of the fetched page: the window batched prefetch overlaps.
struct NeighborResult {
  std::vector<long> sums;
  StatsSnapshot stats;
  double makespan_us = 0;
};

NeighborResult run_neighbor(const Config& base, double compute_us = 0) {
  const int kIters = 6;
  const std::int64_t B = kPageSize / sizeof(long); // one page per rank
  Config cfg = base;
  DsmSystem dsm(cfg);
  const int P = static_cast<int>(dsm.nprocs());
  auto data = dsm.alloc_page_aligned<long>(B * P);
  for (std::int64_t i = 0; i < B * P; ++i) data[i] = 0;
  NeighborResult res;
  res.sums.assign(P, 0);
  dsm.parallel([&](Rank r) {
    // Warm-up: take the rank's own page in a read-only phase. Without this,
    // iteration 0's write faults fetch from the master context while it is
    // itself mid-write-phase with an open written interval, and the content
    // of the service-time twin flush depends on how far its writes got —
    // real wall-clock nondeterminism that would break exact count
    // comparisons below.
    long warm = 0;
    for (std::int64_t i = 0; i < B; ++i) warm += data[r * B + i];
    res.sums[r] += warm;
    dsm.barrier();
    for (int it = 0; it < kIters; ++it) {
      for (std::int64_t i = 0; i < B; ++i)
        data[r * B + i] = data[r * B + i] + (r + 1) * (it + 1);
      dsm.barrier();
      if (compute_us > 0) sim::VirtualClock::current()->charge(compute_us);
      const int nb = (static_cast<int>(r) + 1) % P;
      long s = 0;
      for (std::int64_t i = 0; i < B; ++i) s += data[nb * B + i];
      res.sums[r] += s;
      dsm.barrier();
    }
  });
  res.stats = dsm.stats();
  res.makespan_us = dsm.master_time_us();
  return res;
}

// Counters that are a deterministic function of the phased workload. The
// piggyback-dependent quantities (byte totals, intervals closed, write
// notices) are wall-clock dependent even on the seed InlineTransport: a
// service-time twin flush mints an interval carrying the creator's *current*
// vector time, which races with the vt merges of the creator's own
// concurrent fetches. Message counts, faults and diffs are exact.
constexpr Counter kDeterministicCounters[] = {
    Counter::kMsgsSent,         Counter::kMsgsOffNode,
    Counter::kPageFaults,       Counter::kReadFaults,
    Counter::kWriteFaults,      Counter::kTwins,
    Counter::kDiffsCreated,     Counter::kDiffsApplied,
    Counter::kDiffBytesCreated, Counter::kFullPageFetches,
    Counter::kBarriers,         Counter::kPrefetchBatches,
    Counter::kPrefetchPagesFetched, Counter::kPrefetchHits,
};

void expect_deterministic_counters_eq(const StatsSnapshot& a,
                                      const StatsSnapshot& b) {
  for (const Counter c : kDeterministicCounters)
    EXPECT_EQ(a[c], b[c]) << "counter " << counter_name(c);
}

Config neighbor_config() {
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = Mode::kProcess; // 4 contexts; neighbor reads always cross
  cfg.cost = latency_model();
  return cfg;
}

// --------------------------------------------------------- exact values -----

struct OverlapParam {
  Mode mode;
  Protocol protocol;
  const char* name;
};

class OverlappedTriangular : public ::testing::TestWithParam<OverlapParam> {};

// The acceptance bar: with the overlapped paths on, the most protocol-hostile
// workload computes bit-exact results in both execution modes. The home-based
// protocol has no overlapped path — the gate must route it through the
// synchronous fetch untouched.
TEST_P(OverlappedTriangular, ExactResultsWithOverlap) {
  const OverlapParam& p = GetParam();
  std::vector<long> ref, overlapped;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = p.mode;
  cfg.protocol = p.protocol;
  cfg.cost = sim::CostModel::zero();
  run_triangular(cfg, ref);
  cfg.overlap = overlap_all();
  run_triangular(cfg, overlapped);
  ASSERT_EQ(overlapped, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, OverlappedTriangular,
    ::testing::Values(
        OverlapParam{Mode::kThread, Protocol::kLazyRC, "ThreadLazy"},
        OverlapParam{Mode::kProcess, Protocol::kLazyRC, "ProcessLazy"},
        OverlapParam{Mode::kThread, Protocol::kHomeLRC, "ThreadHome"},
        OverlapParam{Mode::kProcess, Protocol::kHomeLRC, "ProcessHome"}),
    [](const auto& info) { return info.param.name; });

// Overlap composed with seeded fault injection: jittered/duplicated async
// requests and perturbed one-way traffic, still exact (seeds 1..3).
class PerturbedOverlap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerturbedOverlap, ExactResultsUnderPerturbation) {
  std::vector<long> ref, perturbed;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  run_triangular(cfg, ref);
  cfg.overlap = overlap_all();
  cfg.perturb.enabled = true;
  cfg.perturb.seed = GetParam();
  run_triangular(cfg, perturbed);
  ASSERT_EQ(perturbed, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerturbedOverlap, ::testing::Values(1, 2, 3),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

// ------------------------------------------------- unchanged message counts -

// The async fetch issues the same per-creator requests a synchronous round
// would, just concurrently: every counter — messages, bytes, faults, diffs —
// is identical to the inline transport.
TEST(OverlappedFetch, AsyncFetchKeepsCountersIdentical) {
  const ScopedEnvClear env_guard;
  Config cfg = neighbor_config();
  const NeighborResult inline_run = run_neighbor(cfg);
  cfg.overlap = overlap_fetch_only();
  const NeighborResult overlap_run = run_neighbor(cfg);
  EXPECT_EQ(overlap_run.sums, inline_run.sums);
  expect_deterministic_counters_eq(overlap_run.stats, inline_run.stats);
}

// ----------------------------------------------------- overlapped stalls ----

// Multi-writer page, all-reader fault round: with four creators' diffs to
// fetch, the inline path stalls for the SUM of the round trips while the
// async path stalls for their MAX (plus serialized service). The makespan
// gap is the paper's overlap win; the traffic is identical.
TEST(OverlappedFetch, MultiWriterStallIsMaxNotSumOfRtts) {
  const ScopedEnvClear env_guard;
  const int kIters = 4;
  auto run = [&](const net::OverlapOptions& overlap) {
    Config cfg;
    cfg.topology = sim::Topology(4, 1); // every context on its own node
    cfg.mode = Mode::kProcess;
    cfg.cost = latency_model();
    cfg.overlap = overlap;
    DsmSystem dsm(cfg);
    const int P = static_cast<int>(dsm.nprocs());
    const std::int64_t Q = kPageSize / sizeof(long) / P;
    auto page = dsm.alloc_page_aligned<long>(Q * P); // one falsely-shared page
    for (std::int64_t i = 0; i < Q * P; ++i) page[i] = 0;
    std::vector<long> sums(P, 0);
    dsm.parallel([&](Rank r) {
      // Read-only warm-up (see run_neighbor): keeps every later fetch off
      // contexts with open written intervals, so counts compare exactly.
      long warm = 0;
      for (std::int64_t i = 0; i < Q * P; ++i) warm += page[i];
      sums[r] += warm;
      dsm.barrier();
      for (int it = 0; it < kIters; ++it) {
        for (std::int64_t i = 0; i < Q; ++i)
          page[r * Q + i] = page[r * Q + i] + r + it + 1;
        dsm.barrier();
        long s = 0;
        for (std::int64_t i = 0; i < Q * P; ++i) s += page[i];
        sums[r] += s;
        dsm.barrier();
      }
    });
    return std::tuple{sums, dsm.stats(), dsm.master_time_us()};
  };
  const auto [inline_sums, inline_stats, inline_us] =
      run(net::OverlapOptions{});
  const auto [async_sums, async_stats, async_us] = run(overlap_fetch_only());

  EXPECT_EQ(async_sums, inline_sums);
  // Identical traffic (message counts; byte totals carry the racy piggyback
  // variance described at kDeterministicCounters)...
  expect_deterministic_counters_eq(async_stats, inline_stats);
  // ...but the three-creator fetch rounds overlapped: each saves about two
  // round trips, across four iterations. Require at least a few RTTs of win.
  EXPECT_LT(async_us + 2 * 210.0, inline_us);
}

// Prefetch-hit pages cost zero fault-time fetch: when the modeled compute
// between barrier departure and first touch exceeds the batch round trip,
// the full-overlap run's read phase is pure compute, while the fetch-only
// run still pays the round trip at the fault.
TEST(OverlappedPrefetch, HitPagesHaveZeroFaultTimeStall) {
  const ScopedEnvClear env_guard;
  const double kComputeUs = 400.0; // > RTT (100 + 10 + 100)
  Config cfg = neighbor_config();
  cfg.overlap = overlap_fetch_only();
  const NeighborResult fetch_only = run_neighbor(cfg, kComputeUs);
  cfg.overlap = overlap_all();
  const NeighborResult prefetched = run_neighbor(cfg, kComputeUs);

  EXPECT_EQ(prefetched.sums, fetch_only.sums);
  EXPECT_GT(prefetched.stats[Counter::kPrefetchBatches], 0u);
  EXPECT_GT(prefetched.stats[Counter::kPrefetchPagesFetched], 0u);
  EXPECT_GT(prefetched.stats[Counter::kPrefetchHits], 0u);
  // Several iterations each save ~ one full round trip per rank.
  EXPECT_LT(prefetched.makespan_us + 2 * 210.0, fetch_only.makespan_us);
}

// ------------------------------------------------ bounded prefetch traffic --

// A page that is invalidated once and then left untouched must not be
// re-shipped every barrier. Two guards enforce that: the candidate gate
// (valid->invalid transition since the last round AND a prior local fault)
// admits the page to one round per actual use, and buffered coverage makes a
// later round request only diffs above what is already in hand. Without them
// the batch path re-shipped the page's entire growing diff history at every
// barrier — O(barriers^2) traffic on long runs.
TEST(OverlappedPrefetch, IdlePageIsNotReshippedEveryBarrier) {
  const ScopedEnvClear env_guard;
  const int kEpochs = 12;
  const std::int64_t B = kPageSize / sizeof(long);
  const auto run = [&](net::OverlapOptions overlap) {
    Config cfg = neighbor_config();
    cfg.overlap = overlap;
    DsmSystem dsm(cfg);
    auto data = dsm.alloc_page_aligned<long>(B);
    for (std::int64_t i = 0; i < B; ++i) data[i] = 0;
    std::vector<long> sums(dsm.nprocs(), 0);
    dsm.parallel([&](Rank r) {
      for (int it = 0; it < kEpochs; ++it) {
        if (r == 0)
          for (std::int64_t i = 0; i < B; ++i) data[i] = data[i] + it + 1;
        dsm.barrier();
        // Rank 1 reads in the first epoch (establishing access history) and
        // in the last (forcing a catch-up fetch across the idle stretch);
        // in between the page sits invalid and must be left alone.
        if (r == 1 && (it == 0 || it == kEpochs - 1)) {
          long s = 0;
          for (std::int64_t i = 0; i < B; ++i) s += data[i];
          sums[r] = s;
        }
        dsm.barrier();
      }
    });
    return std::pair{sums[1], dsm.stats()};
  };
  const auto [plain_sum, plain_stats] = run(net::OverlapOptions{});
  const auto [ov_sum, ov_stats] = run(overlap_all());

  // The catch-up read sees every interval minted during the idle stretch.
  EXPECT_EQ(ov_sum, plain_sum);
  // The idle page qualifies for at most one round per read that made it
  // valid — not one per barrier. (A handful of warm-up/stack pages may also
  // qualify once each.)
  EXPECT_LE(ov_stats[Counter::kPrefetchPagesFetched], std::uint64_t{6});
  // Bytes stay in the seed path's regime instead of growing quadratically
  // with the barrier count.
  EXPECT_LE(ov_stats[Counter::kBytesSent],
            2 * plain_stats[Counter::kBytesSent]);
}

// --------------------------------------------------- determinism per seed ---

TEST(OverlappedPrefetch, DeterministicAcrossRuns) {
  const ScopedEnvClear env_guard;
  Config cfg = neighbor_config();
  cfg.overlap = overlap_all();
  const NeighborResult a = run_neighbor(cfg, 150.0);
  const NeighborResult b = run_neighbor(cfg, 150.0);
  EXPECT_EQ(a.sums, b.sums);
  // The latency model's costs are size-independent, so the makespan is a
  // pure function of the deterministic message schedule.
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  expect_deterministic_counters_eq(a.stats, b.stats);
}

// --------------------------------------------------------- trace audit ------

// With the full overlap stack on (and prefetch actually hitting), the trace
// still reconstructs every counter exactly — the async request, the worker-
// side reply and the prefetch events all keep the add<->event pairing. Both
// execution modes.
class OverlapTraceAudit : public ::testing::TestWithParam<Mode> {};

TEST_P(OverlapTraceAudit, ReconstructsCountersExactly) {
  Config cfg = neighbor_config();
  cfg.mode = GetParam();
  cfg.trace.enabled = true;
  cfg.overlap = overlap_all();
  const int kIters = 6;
  const std::int64_t B = kPageSize / sizeof(long);
  DsmSystem dsm(cfg);
  const int P = static_cast<int>(dsm.nprocs());
  auto data = dsm.alloc_page_aligned<long>(B * P);
  for (std::int64_t i = 0; i < B * P; ++i) data[i] = 0;
  std::vector<long> sums(P, 0);
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < kIters; ++it) {
      for (std::int64_t i = 0; i < B; ++i) data[r * B + i] += r + it + 1;
      dsm.barrier();
      const int nb = (static_cast<int>(r) + 1) % P;
      long s = 0;
      for (std::int64_t i = 0; i < B; ++i) s += data[nb * B + i];
      sums[r] += s;
      dsm.barrier();
    }
  });
  const StatsSnapshot live = dsm.stats();
  const StatsSnapshot rebuilt =
      trace::reconstruct_counters(dsm.tracer()->snapshot_events());
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
  // The overlapped paths really ran: async fetches and/or prefetch events
  // are in the trace (thread mode may satisfy neighbor reads locally, so
  // only require them in process mode).
  if (GetParam() == Mode::kProcess) {
    bool saw_prefetch = false;
    for (const auto& e : dsm.tracer()->events())
      if (e.kind == trace::EventKind::kPrefetchBatch) saw_prefetch = true;
    EXPECT_TRUE(saw_prefetch);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, OverlapTraceAudit,
                         ::testing::Values(Mode::kThread, Mode::kProcess),
                         [](const auto& info) {
                           return info.param == Mode::kThread ? "Thread"
                                                              : "Process";
                         });

// --------------------------------------------------------- env plumbing -----

TEST(OverlapOptions, FromEnvParsesMasks) {
  const ScopedEnvClear env_guard; // also restores the outer values afterwards
  ::setenv("OMSP_OVERLAP", "1", 1);
  ::setenv("OMSP_OVERLAP_PREFETCH", "0", 1);
  auto o = net::OverlapOptions::from_env();
  EXPECT_TRUE(o.enabled);
  EXPECT_TRUE(o.async_fetch);
  EXPECT_FALSE(o.prefetch);
  ::unsetenv("OMSP_OVERLAP_PREFETCH");
  ::unsetenv("OMSP_OVERLAP");
  o = net::OverlapOptions::from_env();
  EXPECT_FALSE(o.enabled);
}

} // namespace
} // namespace omsp::tmk
