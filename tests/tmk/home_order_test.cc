// Regression tests for the HomeLRC home-apply ordering hole.
//
// apply_bytes_at_home runs on another context's host thread, concurrently
// with the home's own application threads. The pre-fix process-mode code
// write-enabled the home's APPLICATION mapping around the diff apply (the
// original TreadMarks protection dance — safe there only because the SIGIO
// handler interrupts the lone application thread). During that window a
// concurrent application store landed without faulting: no twin, no dirty
// bit, no write notice. The value reached the home copy, but with the
// notice lost no other context ever invalidated, and the next writer's
// diff — computed from a stale base — silently reverted the store. That
// lost update is the TriangularStress/HomeProcess ~2% miscompute the tsan
// CI job absorbed with `--repeat until-pass:2` until this fix.
//
// The test drives the exact interleaving deterministically through the
// testing_home_apply_hook seam: it parks the home's diff apply mid-window,
// lets the home's application thread store into the same page, then runs a
// second region whose writer would revert the store if the notice were
// lost. Pre-fix this fails with a[0] == 2; with the runtime-mapping fix
// the store faults, is twin-tracked, and the final value is exact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

struct Rendezvous {
  std::mutex m;
  std::condition_variable cv;
  bool in_window = false;
  bool store_done = false;
  std::atomic<bool> armed{false};
  std::atomic<bool> fired{false};
  std::atomic<PageId> page{0};
};

Rendezvous* g_rv = nullptr;

void park_in_apply_window(ContextId home, PageId page) {
  Rendezvous* rv = g_rv;
  if (rv == nullptr || home != 0 || page != rv->page.load()) return;
  if (!rv->armed.exchange(false)) return; // one-shot
  rv->fired.store(true);
  std::unique_lock<std::mutex> lk(rv->m);
  rv->in_window = true;
  rv->cv.notify_all();
  // Wait for the home application thread's store. Bounded: post-fix the
  // store faults and blocks on the page lock this handler holds, so
  // store_done cannot be signalled until the apply finishes — the timeout
  // is what lets the fixed runtime make progress.
  rv->cv.wait_for(lk, std::chrono::milliseconds(300),
                  [rv] { return rv->store_done; });
}

TEST(HomeApplyOrdering, HomeStoreDuringDiffApplyIsNeverLost) {
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.mode = Mode::kProcess;
  cfg.protocol = Protocol::kHomeLRC;
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);

  // Two full pages; use whichever page ctx0 is home of. (GlobalPtr resolves
  // per calling thread, so all accesses below index through `a`.)
  auto a = dsm.alloc_page_aligned<long>(1024);
  const PageId first = static_cast<PageId>(a.addr() / 4096);
  const std::size_t base = (first % 2 == 0) ? 0 : 512;
  const PageId target = (first % 2 == 0) ? first : first + 1;
  ASSERT_EQ(target % 2, 0u) << "test needs a page homed at ctx0";

  const std::size_t xi = base;      // the contended location
  const std::size_t yi = base + 64; // same page, disjoint bytes
  a[xi] = 1;
  a[yi] = 1;

  Rendezvous rv;
  rv.page.store(target);
  g_rv = &rv;
  testing_home_apply_hook = &park_in_apply_window;
  rv.armed.store(true);

  // Region 1: rank 1 dirties the page; its close-time diff-to-home parks in
  // the apply window while rank 0 (the home's application thread) stores x.
  dsm.parallel([&](Rank r) {
    if (r == 1) {
      a[yi] = 7;
      return;
    }
    {
      std::unique_lock<std::mutex> lk(rv.m);
      if (!rv.cv.wait_for(lk, std::chrono::seconds(10),
                          [&] { return rv.in_window; }))
        return; // hook never fired; rv.fired assert below reports it
    }
    a[xi] = 41;
    {
      std::lock_guard<std::mutex> lk(rv.m);
      rv.store_done = true;
    }
    rv.cv.notify_all();
  });
  ASSERT_TRUE(rv.fired.load())
      << "rank 1's close-time diff never reached the home apply hook";

  // Region 2: rank 1 increments x. If rank 0's store above slipped past
  // access detection (no write notice), rank 1 still holds its stale
  // region-1 copy, computes 1+1, and its diff reverts the home to 2.
  dsm.parallel([&](Rank r) {
    if (r == 1) a[xi] = a[xi] + 1;
  });

  testing_home_apply_hook = nullptr;
  g_rv = nullptr;

  EXPECT_EQ(a[xi], 42) << "home application store was lost to a stale diff";
  EXPECT_EQ(a[yi], 7);
}

// The hook seam is also exercised with the page already writable at the
// home (no modeled write-enable): the apply and a concurrent home store to
// disjoint bytes must both survive, and the home's next diff must carry
// only its own bytes.
TEST(HomeApplyOrdering, DirtyHomePageAbsorbsRemoteDiffExactly) {
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.mode = Mode::kProcess;
  cfg.protocol = Protocol::kHomeLRC;
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);

  auto a = dsm.alloc_page_aligned<long>(1024);
  const PageId first = static_cast<PageId>(a.addr() / 4096);
  const std::size_t base = (first % 2 == 0) ? 0 : 512;
  const std::size_t xi = base;
  const std::size_t yi = base + 64;
  a[xi] = 1;
  a[yi] = 1;

  dsm.parallel([&](Rank r) {
    if (r == 0) a[xi] = 10; // home dirties its own page (tracked, twin made)
    if (r == 1) a[yi] = 20; // remote write arrives via diff-to-home at close
  });
  EXPECT_EQ(a[xi], 10);
  EXPECT_EQ(a[yi], 20);

  dsm.parallel([&](Rank r) {
    if (r == 1) {
      // Rank 1 must observe both writes: its own via the home round-trip,
      // the home's via the write notice from region 1.
      EXPECT_EQ(a[xi], 10);
      EXPECT_EQ(a[yi], 20);
    }
  });
}

} // namespace
} // namespace omsp::tmk
