// Zero-copy intra-node delivery (Config::zerocopy, OMSP_ZEROCOPY): when the
// requester and responder share a node, diff/page reply payloads are parsed
// as views into the delivered buffer instead of deserialized copies. The
// contract is XHC's zero-copy vs copy-in/copy-out switch made bit-for-bit:
// flipping the knob may not change a single computed value, modeled
// microsecond, or pre-existing counter — only the two zerocopy_* counters
// (and their paired trace events) record that the fast path ran.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "../common/env_guard.hpp"
#include "net/transport.hpp"
#include "tmk/system.hpp"
#include "trace/sinks.hpp"

namespace omsp::tmk {
namespace {

using test::ScopedEnvClear;

// Flat latency with service occupancy and no host-CPU folding: makespans are
// purely modeled protocol time, so exact-equality assertions are
// reproducible (sp2_default's cpu_scale would fold measured host time — the
// very thing this PR changes — into the virtual clock).
sim::CostModel latency_model() {
  auto m = sim::CostModel::zero();
  m.net_latency_us = 100.0;
  m.handler_service_us = 10.0;
  return m;
}

// Strictly phased round-robin: exactly ONE rank is active per phase; it
// rewrites its own page, then reads the previous active rank's page while
// the other ranks head for the barrier. The structural counters (messages,
// faults, twins, diffs) are a deterministic function of the protocol; see
// kDeterministicCounters below for what run-to-run still varies and why.
struct RunResult {
  std::vector<long> sums;
  StatsSnapshot stats;
  double makespan_us = 0;
  std::uint64_t zc_deliveries = 0;
  std::uint64_t zc_bytes = 0;
};

RunResult run_round_robin(const Config& base) {
  Config cfg = base;
  DsmSystem dsm(cfg);
  const int P = static_cast<int>(dsm.nprocs());
  const std::int64_t B = kPageSize / sizeof(long); // one page per rank
  auto data = dsm.alloc_page_aligned<long>(B * P);
  for (std::int64_t i = 0; i < B * P; ++i) data[i] = 0;
  RunResult res;
  res.sums.assign(P, 0);
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 2 * P; ++it) {
      if (it % P == static_cast<int>(r)) {
        for (std::int64_t i = 0; i < B; ++i) data[r * B + i] += r + it + 1;
        const int prev = (static_cast<int>(r) + P - 1) % P;
        long s = 0;
        for (std::int64_t i = 0; i < B; ++i) s += data[prev * B + i];
        res.sums[r] += s;
      }
      dsm.barrier();
    }
  });
  res.stats = dsm.stats();
  res.makespan_us = dsm.master_time_us();
  res.zc_deliveries = res.stats[Counter::kZeroCopyDeliveries];
  res.zc_bytes = res.stats[Counter::kZeroCopyBytes];
  return res;
}

// Counters that are a deterministic function of the workload. As the
// overlap suite documents, the piggyback-dependent quantities (byte totals,
// intervals, write notices) vary run-to-run even on the seed transport with
// the feature OFF — a service-time twin flush mints an interval carrying the
// creator's instantaneous vector time, which races with concurrent merges.
// Off-vs-on equality of those is asserted suite-wide instead: the full
// pre-existing suite (every exact-value and trace-audit test) runs under
// OMSP_ZEROCOPY=on in CI and must pass unmodified. Here we demand equality
// of everything the workload itself holds fixed, plus values and makespan.
constexpr Counter kDeterministicCounters[] = {
    Counter::kMsgsSent,         Counter::kMsgsOffNode,
    Counter::kPageFaults,       Counter::kReadFaults,
    Counter::kWriteFaults,      Counter::kTwins,
    Counter::kDiffsCreated,     Counter::kDiffsApplied,
    Counter::kDiffBytesCreated, Counter::kFullPageFetches,
    Counter::kBarriers,         Counter::kPrefetchBatches,
    Counter::kPrefetchPagesFetched, Counter::kPrefetchHits,
};

void expect_deterministic_counters_eq(const StatsSnapshot& a,
                                      const StatsSnapshot& b) {
  for (const Counter c : kDeterministicCounters)
    EXPECT_EQ(a[c], b[c]) << "counter " << counter_name(c);
}

struct ZeroCopyParam {
  Mode mode;
  Protocol protocol;
  const char* name;
};

class ZeroCopyBitForBit : public ::testing::TestWithParam<ZeroCopyParam> {};

// The acceptance bar: off vs on, same values, same modeled time, same
// deterministic counters — and the on run really took the view path. (The
// suite-wide OMSP_ZEROCOPY=on CI leg extends this to every exact-value
// test in the repo.)
TEST_P(ZeroCopyBitForBit, OffAndOnAgreeExactly) {
  ScopedEnvClear env;
  const ZeroCopyParam& p = GetParam();
  Config cfg;
  cfg.topology = sim::Topology(1, 4); // one node: every message intra-node
  cfg.mode = p.mode;
  cfg.protocol = p.protocol;
  cfg.cost = latency_model();

  const RunResult off = run_round_robin(cfg);
  Config on = cfg;
  on.zerocopy.enabled = true;
  const RunResult zc = run_round_robin(on);

  EXPECT_EQ(off.sums, zc.sums);
  EXPECT_DOUBLE_EQ(off.makespan_us, zc.makespan_us);
  expect_deterministic_counters_eq(off.stats, zc.stats);
  EXPECT_EQ(off.zc_deliveries, 0u);
  EXPECT_EQ(off.zc_bytes, 0u);
  if (p.mode == Mode::kProcess) {
    // Four contexts share the node: page fetches/diff fetches cross context
    // boundaries and must have been delivered as views.
    EXPECT_GT(zc.zc_deliveries, 0u);
    EXPECT_GT(zc.zc_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesProtocols, ZeroCopyBitForBit,
    ::testing::Values(
        ZeroCopyParam{Mode::kProcess, Protocol::kLazyRC, "ProcessLazy"},
        ZeroCopyParam{Mode::kProcess, Protocol::kHomeLRC, "ProcessHome"},
        ZeroCopyParam{Mode::kThread, Protocol::kLazyRC, "ThreadLazy"}),
    [](const auto& info) { return std::string(info.param.name); });

// Mixed topology: only intra-node pairs may take the view path; off-node
// replies still copy. Values and pre-existing counters stay exact.
TEST(ZeroCopy, MixedTopologyStaysExact) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(2, 2); // 2 nodes x 2 procs
  cfg.mode = Mode::kProcess;
  cfg.cost = latency_model();
  const RunResult off = run_round_robin(cfg);
  Config on = cfg;
  on.zerocopy.enabled = true;
  const RunResult zc = run_round_robin(on);
  EXPECT_EQ(off.sums, zc.sums);
  EXPECT_DOUBLE_EQ(off.makespan_us, zc.makespan_us);
  expect_deterministic_counters_eq(off.stats, zc.stats);
  EXPECT_GT(zc.zc_deliveries, 0u); // the intra-node neighbor pairs
}

// A threshold larger than any payload disables the path without touching
// anything else — the "on but never eligible" corner.
TEST(ZeroCopy, ThresholdAbovePayloadsMeansNoDeliveries) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(1, 4);
  cfg.mode = Mode::kProcess;
  cfg.cost = latency_model();
  Config on = cfg;
  on.zerocopy.enabled = true;
  on.zerocopy.threshold_bytes = 1u << 20;
  const RunResult off = run_round_robin(cfg);
  const RunResult zc = run_round_robin(on);
  EXPECT_EQ(off.sums, zc.sums);
  expect_deterministic_counters_eq(off.stats, zc.stats);
  EXPECT_EQ(zc.zc_deliveries, 0u);
  EXPECT_EQ(zc.zc_bytes, 0u);
}

// Composed with the overlapped transport: the async fetch and the barrier
// prefetch batches go through the same view-parse, and stay value-exact.
TEST(ZeroCopy, ComposesWithOverlap) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(1, 4);
  cfg.mode = Mode::kProcess;
  cfg.cost = latency_model();
  cfg.overlap.enabled = true;
  const RunResult off = run_round_robin(cfg);
  Config on = cfg;
  on.zerocopy.enabled = true;
  const RunResult zc = run_round_robin(on);
  EXPECT_EQ(off.sums, zc.sums);
  EXPECT_DOUBLE_EQ(off.makespan_us, zc.makespan_us);
  expect_deterministic_counters_eq(off.stats, zc.stats);
  EXPECT_GT(zc.zc_deliveries, 0u);
}

// Stats <-> trace audit with the feature on: every zerocopy_* increment has
// a paired kZeroCopyDeliver event, and folding the trace reproduces the live
// board exactly (OBSERVABILITY.md "lossless" contract, trace version 6).
TEST(ZeroCopy, TraceReconstructsZeroCopyCounters) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(1, 4);
  cfg.mode = Mode::kProcess;
  cfg.cost = latency_model();
  cfg.trace.enabled = true;
  cfg.zerocopy.enabled = true;
  Config run = cfg;
  const int P = 4;
  const std::int64_t B = kPageSize / sizeof(long);
  DsmSystem dsm(run);
  auto data = dsm.alloc_page_aligned<long>(B * P);
  for (std::int64_t i = 0; i < B * P; ++i) data[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 2 * P; ++it) {
      if (it % P == static_cast<int>(r)) {
        for (std::int64_t i = 0; i < B; ++i) data[r * B + i] += it + 1;
        long s = 0;
        const int prev = (static_cast<int>(r) + P - 1) % P;
        for (std::int64_t i = 0; i < B; ++i) s += data[prev * B + i];
        (void)s;
      }
      dsm.barrier();
    }
  });
  const StatsSnapshot live = dsm.stats();
  EXPECT_GT(live[Counter::kZeroCopyDeliveries], 0u);
  const StatsSnapshot rebuilt =
      trace::reconstruct_counters(dsm.tracer()->snapshot_events());
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
}

// ------------------------------------------------------ knob parsing -------

TEST(ZeroCopyEnv, ParsesOffOnAndThreshold) {
  ScopedEnvClear env;
  const auto with = [](const char* v) {
    ::setenv("OMSP_ZEROCOPY", v, 1);
    const auto o = net::ZeroCopyOptions::from_env();
    ::unsetenv("OMSP_ZEROCOPY");
    return o;
  };
  ::unsetenv("OMSP_ZEROCOPY");
  EXPECT_FALSE(net::ZeroCopyOptions::from_env().enabled);
  EXPECT_FALSE(with("off").enabled);
  EXPECT_FALSE(with("0").enabled);
  EXPECT_TRUE(with("on").enabled);
  EXPECT_EQ(with("on").threshold_bytes, 0u);
  EXPECT_TRUE(with("1").enabled);
  const auto t = with("16384");
  EXPECT_TRUE(t.enabled);
  EXPECT_EQ(t.threshold_bytes, 16384u);
  EXPECT_FALSE(with("garbage").enabled); // unparseable -> stays off
}

// ---------------------------------------------------------- pools ----------

// The twin and diff pools behind the wall-clock work: after a multi-round
// run, blocks and scratch vectors really came back for reuse instead of
// churning the allocator. Home-based protocol so diff scratch is released
// every interval close (lazy-RC parks non-empty diffs in stored_diffs until
// GC, so only the home path guarantees visible reuse here).
TEST(ZeroCopy, TwinAndDiffPoolsRecycle) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(1, 2);
  cfg.mode = Mode::kProcess;
  cfg.protocol = Protocol::kHomeLRC;
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);
  const std::int64_t B = kPageSize / sizeof(long);
  auto data = dsm.alloc_page_aligned<long>(B * 2);
  for (std::int64_t i = 0; i < B * 2; ++i) data[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 4; ++it) {
      for (std::int64_t i = 0; i < B; ++i) data[r * B + i] += it + 1;
      dsm.barrier();
      long s = 0;
      for (std::int64_t i = 0; i < B; ++i) s += data[(1 - r) * B + i];
      (void)s;
      dsm.barrier();
    }
  });
  std::size_t twin_free = 0, diff_free = 0;
  for (ContextId c = 0; c < dsm.num_contexts(); ++c) {
    twin_free += dsm.context(c).twin_pool_free();
    diff_free += dsm.context(c).diff_pool_free();
  }
  EXPECT_GT(twin_free, 0u); // twins were retired back to the pool
  EXPECT_GT(diff_free, 0u); // diff scratch came back after the fetches
}

} // namespace
} // namespace omsp::tmk
