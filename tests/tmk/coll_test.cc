// DSM barrier on the hierarchical collective engine: OMSP_COLL=tree reduces
// interval/write-notice metadata up the topology tree and broadcasts
// departures down it. These tests pin (1) central as the untouched default,
// (2) exact value equivalence between central and tree episodes on both
// protocols, (3) determinism of the tree episode under seeded loss, (4) the
// coll_stages/coll_bytes counter gating, and (5) the modeled-time win of the
// tree episode on a deep machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../common/env_guard.hpp"
#include "core/runtime.hpp"
#include "net/collective.hpp"

namespace omsp::tmk {
namespace {

using test::ScopedEnvClear;

struct RunResult {
  std::vector<long> values;
  StatsSnapshot stats;
  double master_us = 0;
};

// A barrier-heavy ring stencil inside ONE parallel region: each iteration
// every rank reads its left neighbor's slice, barriers, rewrites its own
// slice, barriers again. The write notices of iteration i must reach the
// ring neighbor through the barrier for iteration i+1 to compute the right
// values — exactly the metadata the tree episode merges at leaders.
RunResult run_ring_stencil(const Config& base) {
  const int I = 8;
  const std::int64_t D = 64;
  const long M = 1000003;
  Config cfg = base;
  core::OmpRuntime rt(cfg);
  const std::int64_t P = rt.max_threads();
  auto a = rt.alloc_page_aligned<long>(P * D);
  for (std::int64_t i = 0; i < P * D; ++i) a[i] = i % 7 + 1;
  rt.parallel([&](core::Team& t) {
    const std::int64_t r = t.thread_num();
    const std::int64_t left = (r + P - 1) % P;
    for (int it = 0; it < I; ++it) {
      long acc = 0;
      for (std::int64_t k = 0; k < D; ++k)
        acc = (acc * 31 + a[left * D + k]) % M;
      t.barrier(); // everyone done reading iteration it's values
      for (std::int64_t k = 0; k < D; ++k)
        a[r * D + k] = (a[r * D + k] * 3 + acc + k) % M;
      t.barrier(); // everyone done writing iteration it+1's inputs
    }
  });
  RunResult r;
  r.values.assign(a.local(), a.local() + P * D);
  r.stats = rt.dsm().stats();
  r.master_us = rt.dsm().master_time_us();
  return r;
}

Config tree_config(Config cfg) {
  cfg.coll.tree = true;
  return cfg;
}

TEST(DsmColl, CentralIsDefaultAndEmitsNoCollStages) {
  const ScopedEnvClear env_guard;
  Config cfg;
  EXPECT_FALSE(cfg.coll.tree); // OMSP_COLL unset: the seed barrier, untouched
  cfg.topology = sim::Topology::fat_tree(2, 2, 2);
  cfg.cost = sim::CostModel::zero();
  const RunResult r = run_ring_stencil(cfg);
  EXPECT_EQ(r.stats[Counter::kCollStages], 0u);
  EXPECT_EQ(r.stats[Counter::kCollBytes], 0u);
}

TEST(DsmColl, TreeBarrierExactResultsBothProtocols) {
  const ScopedEnvClear env_guard;
  for (const Protocol proto : {Protocol::kLazyRC, Protocol::kHomeLRC}) {
    SCOPED_TRACE(static_cast<int>(proto));
    Config cfg;
    cfg.protocol = proto;
    cfg.topology = sim::Topology::fat_tree(2, 2, 2);
    cfg.cost = sim::CostModel::zero();
    const RunResult central = run_ring_stencil(cfg);
    const RunResult tree = run_ring_stencil(tree_config(cfg));
    ASSERT_EQ(tree.values, central.values);
    // Leader-merged metadata still reaches everyone: the tree episode emits
    // schedule-edge messages, the central one none.
    EXPECT_GT(tree.stats[Counter::kCollStages], 0u);
    EXPECT_EQ(central.stats[Counter::kCollStages], 0u);
  }
}

TEST(DsmColl, TreeBarrierExactResultsOnAsymmetricNodes) {
  const ScopedEnvClear env_guard;
  Config cfg;
  cfg.topology = sim::Topology::asymmetric({4, 2, 2, 1});
  cfg.cost = sim::CostModel::zero();
  const RunResult central = run_ring_stencil(cfg);
  const RunResult tree = run_ring_stencil(tree_config(cfg));
  ASSERT_EQ(tree.values, central.values);
}

TEST(DsmColl, TreeBarrierDeterministicUnderSeededLoss) {
  // The whole tree episode is modeled by the last-arriving thread in a fixed
  // traversal order, so its transport draws are a pure function of the seed:
  // same seed, bit-identical reliability and collective counters (the
  // contract the loss suite pins for the centralized path) — and the
  // computed values still match the clean central reference.
  const ScopedEnvClear env_guard;
  Config cfg;
  // One rank per node: each context's message order is program-ordered, so
  // the per-link RNG streams give every message the same draws in both runs.
  cfg.topology = sim::Topology::fat_tree(2, 2, 1);
  cfg.cost = sim::CostModel::zero();
  const RunResult ref = run_ring_stencil(cfg);

  net::PerturbOptions po;
  po.enabled = true;
  po.seed = 2;
  po.jitter_max_us = 0;
  po.duplicate_prob = 0;
  po.reorder_prob = 0;
  po.loss_prob = 0.2;
  po.max_retries = 20;
  Config lossy = tree_config(cfg);
  lossy.perturb = po;
  const RunResult a = run_ring_stencil(lossy);
  const RunResult b = run_ring_stencil(lossy);
  ASSERT_EQ(a.values, ref.values);
  ASSERT_EQ(b.values, ref.values);
  EXPECT_EQ(a.stats[Counter::kMsgsLost], b.stats[Counter::kMsgsLost]);
  EXPECT_EQ(a.stats[Counter::kRetransmits], b.stats[Counter::kRetransmits]);
  EXPECT_EQ(a.stats[Counter::kCollStages], b.stats[Counter::kCollStages]);
  EXPECT_GT(a.stats[Counter::kRetransmits], 0u);
}

TEST(DsmColl, TreeBarrierCheaperOnWideMachineWithOccupancy) {
  // With the occupancy knobs off both engines price a message by latency
  // alone, and the centralized star (one spine hop) beats the tree's chained
  // hops. Turn injection occupancy on — each message holds its sender's link
  // for send_occupancy_us + occupancy_byte_us * bytes — and the manager's
  // 63-message departure fan-out serializes while the tree spreads the same
  // work over node and edge-switch leaders (radix 8). fat:2x8x1, paper wire
  // costs, zero cpu_scale: modeled time must drop strictly.
  const ScopedEnvClear env_guard;
  Config cfg;
  cfg.topology = sim::Topology::fat_tree(2, 8, 1); // 64 nodes, 64 ranks
  cfg.cost = sim::CostModel::sp2_default();
  cfg.cost.cpu_scale = 0;
  cfg.cost.send_occupancy_us = 10;
  cfg.cost.occupancy_byte_us = 0.01;
  const RunResult central = run_ring_stencil(cfg);
  const RunResult tree = run_ring_stencil(tree_config(cfg));
  ASSERT_EQ(tree.values, central.values);
  EXPECT_LT(tree.master_us, central.master_us);
}

// OMSP_TOPOLOGY + OMSP_COLL=tree stacking: the env topology is resolved at
// config-assembly time (Topology::from_env_or — the bench path) and the env
// collective engine inside DsmSystem, and the tree schedule must be derived
// from the OVERRIDING topology — never cached from the config default.
TEST(DsmColl, EnvTopologyStacksWithEnvTreeColl) {
  const ScopedEnvClear env_guard;
  ::setenv("OMSP_COLL", "tree", 1);
  ::setenv("OMSP_TOPOLOGY", "fat:2x2x2", 1);
  Config env_cfg;
  env_cfg.topology = sim::Topology::from_env_or(sim::Topology::sp2());
  env_cfg.cost = sim::CostModel::zero();
  const RunResult from_env = run_ring_stencil(env_cfg);
  ::unsetenv("OMSP_TOPOLOGY");
  ::unsetenv("OMSP_COLL");

  // The same machine selected in code, tree mode selected in code, must run
  // the identical episode: same values, same schedule-edge traffic.
  Config code_cfg;
  code_cfg.topology = sim::Topology::fat_tree(2, 2, 2);
  code_cfg.cost = sim::CostModel::zero();
  const RunResult reference = run_ring_stencil(tree_config(code_cfg));
  EXPECT_EQ(from_env.values, reference.values);
  EXPECT_EQ(from_env.stats[Counter::kCollStages],
            reference.stats[Counter::kCollStages]);
  EXPECT_EQ(from_env.stats[Counter::kCollBytes],
            reference.stats[Counter::kCollBytes]);
  EXPECT_EQ(from_env.stats[Counter::kMsgsOffNode],
            reference.stats[Counter::kMsgsOffNode]);
  EXPECT_GT(from_env.stats[Counter::kCollStages], 0u);

  // And it is NOT the default machine's episode: sp2 is a 16-rank machine,
  // fat:2x2x2 an 8-rank one, so a stale cached default would have run twice
  // as many ranks (and a different stencil) as the override.
  Config stale_cfg;
  stale_cfg.cost = sim::CostModel::zero();
  const RunResult stale = run_ring_stencil(tree_config(stale_cfg));
  EXPECT_NE(from_env.values.size(), stale.values.size());
}

TEST(DsmCollDeathTest, MalformedEnvTopologyIsHardError) {
  // A typo'd machine must never silently bench the default one — mirror of
  // CollOptionsDeathTest for the stacked override.
  const ScopedEnvClear env_guard;
  ::setenv("OMSP_COLL", "tree", 1);
  ::setenv("OMSP_TOPOLOGY", "fat:2x", 1);
  EXPECT_DEATH((void)sim::Topology::from_env_or(sim::Topology::sp2()),
               "OMSP_CHECK failed");
  ::unsetenv("OMSP_TOPOLOGY");
  ::unsetenv("OMSP_COLL");
}

} // namespace
} // namespace omsp::tmk
