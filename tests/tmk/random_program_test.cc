// Randomized data-race-free program generator — the broadest protocol test.
//
// Each trial generates a random schedule of phases. A phase is either:
//   * a barrier-separated SPMD step: every rank updates a random slice of a
//     shared array as a deterministic function of values it is entitled to
//     read (its own slice plus values frozen at the last barrier), or
//   * a lock phase: ranks take turns under a random lock mutating a shared
//     record.
// The same schedule is executed on the DSM (several cluster shapes and both
// modes) and by a plain sequential simulator; the final heap images must be
// identical. Data-race freedom is guaranteed by construction (disjoint
// writes between barriers; lock-ordered read-modify-writes), which is
// exactly the contract lazy release consistency promises to honor.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

struct Step {
  bool lock_phase;
  LockId lock;
  // Barrier phase: per-rank slice permutation offset and multiplier.
  std::uint32_t rotate;
  long mul;
  long add;
};

constexpr std::int64_t kCells = 1536; // 3 pages of longs, heavy false sharing
constexpr long kMod = 1000003;

std::vector<Step> make_schedule(Rng& rng, int steps) {
  std::vector<Step> plan;
  for (int i = 0; i < steps; ++i) {
    Step s{};
    s.lock_phase = rng.next_bool(0.3);
    s.lock = static_cast<LockId>(rng.next_below(3));
    s.rotate = static_cast<std::uint32_t>(rng.next_below(16));
    s.mul = 1 + static_cast<long>(rng.next_below(5));
    s.add = static_cast<long>(rng.next_below(1000));
    plan.push_back(s);
  }
  return plan;
}

// Reference: sequential execution of the same schedule for `nprocs` ranks.
std::vector<long> reference(const std::vector<Step>& plan,
                            std::uint32_t nprocs) {
  std::vector<long> cells(kCells, 1);
  long lock_acc[3] = {0, 0, 0};
  for (const auto& s : plan) {
    if (s.lock_phase) {
      // Lock phases: each rank increments the lock's accumulator cell by a
      // deterministic amount; order between ranks does not matter (addition
      // commutes), matching what the DSM run may interleave.
      for (std::uint32_t r = 0; r < nprocs; ++r)
        lock_acc[s.lock] = (lock_acc[s.lock] + s.add + r) % kMod;
    } else {
      std::vector<long> next = cells;
      for (std::uint32_t r = 0; r < nprocs; ++r) {
        const std::uint32_t slot = (r + s.rotate) % nprocs;
        const std::int64_t lo = slot * kCells / nprocs;
        const std::int64_t hi = (slot + 1) * kCells / nprocs;
        for (std::int64_t i = lo; i < hi; ++i) {
          const long peer = cells[(i + kCells / 2) % kCells];
          next[i] = (cells[i] * s.mul + s.add + peer) % kMod;
        }
      }
      cells = next;
    }
  }
  cells.push_back(lock_acc[0]);
  cells.push_back(lock_acc[1]);
  cells.push_back(lock_acc[2]);
  return cells;
}

struct Shape {
  std::uint32_t nodes, ppn;
  Mode mode;
  const char* name;
  Protocol protocol = Protocol::kLazyRC;
};

class RandomDrfProgram
    : public ::testing::TestWithParam<std::tuple<int, Shape>> {};

TEST_P(RandomDrfProgram, DsmMatchesSequentialReference) {
  const auto [seed, shape] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  const auto plan = make_schedule(rng, 14);
  const std::uint32_t np = shape.nodes * shape.ppn;
  const auto expect = reference(plan, np);

  Config cfg;
  cfg.topology = sim::Topology(shape.nodes, shape.ppn);
  cfg.mode = shape.mode;
  cfg.protocol = shape.protocol;
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);

  auto cells = dsm.alloc_page_aligned<long>(kCells);
  auto scratch = dsm.alloc_page_aligned<long>(kCells); // double buffer
  auto locks_acc = dsm.alloc_page_aligned<long>(3);
  for (std::int64_t i = 0; i < kCells; ++i) cells[i] = 1;
  for (int l = 0; l < 3; ++l) locks_acc[l] = 0;

  dsm.parallel([&](Rank r) {
    for (const auto& s : plan) {
      if (s.lock_phase) {
        dsm.lock_acquire(s.lock);
        locks_acc[s.lock] = (locks_acc[s.lock] + s.add + static_cast<long>(r)) % kMod;
        dsm.lock_release(s.lock);
        dsm.barrier();
      } else {
        const std::uint32_t slot = (r + s.rotate) % np;
        const std::int64_t lo = slot * kCells / np;
        const std::int64_t hi = (slot + 1) * kCells / np;
        for (std::int64_t i = lo; i < hi; ++i) {
          const long peer = cells[(i + kCells / 2) % kCells];
          scratch[i] = (cells[i] * s.mul + s.add + peer) % kMod;
        }
        dsm.barrier();
        for (std::int64_t i = lo; i < hi; ++i) cells[i] = scratch[i];
        dsm.barrier();
      }
    }
  });

  for (std::int64_t i = 0; i < kCells; ++i)
    ASSERT_EQ(cells[i], expect[i]) << "cell " << i;
  for (int l = 0; l < 3; ++l)
    ASSERT_EQ(locks_acc[l], expect[kCells + l]) << "lock " << l;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, RandomDrfProgram,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(Shape{2, 2, Mode::kThread, "t22"},
                                         Shape{4, 1, Mode::kProcess, "p41"},
                                         Shape{2, 2, Mode::kProcess, "p22"},
                                         Shape{2, 2, Mode::kThread, "h22",
                                               Protocol::kHomeLRC})),
    [](const auto& info) {
      return std::string(std::get<1>(info.param).name) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

} // namespace
} // namespace omsp::tmk
