// Contract/death tests: the runtime's preconditions abort loudly instead of
// corrupting a distributed computation silently.
#include <gtest/gtest.h>

#include <thread>

#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

Config tiny_cfg() {
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.heap_bytes = 64 * 1024;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

TEST(Contracts, HeapExhaustionAborts) {
  EXPECT_DEATH(
      {
        DsmSystem dsm(tiny_cfg());
        (void)dsm.shared_malloc(1 << 20); // larger than the whole heap
      },
      "exhausted");
}

TEST(Contracts, MallocInsideParallelAborts) {
  EXPECT_DEATH(
      {
        DsmSystem dsm(tiny_cfg());
        dsm.parallel([&](Rank r) {
          if (r == 0) (void)dsm.shared_malloc(64);
        });
      },
      "sequential");
}

TEST(Contracts, ParallelFromWorkerThreadAborts) {
  EXPECT_DEATH(
      {
        DsmSystem dsm(tiny_cfg());
        std::thread t([&] { dsm.parallel([](Rank) {}); });
        t.join();
      },
      "master");
}

TEST(Contracts, NestedParallelAborts) {
  EXPECT_DEATH(
      {
        DsmSystem dsm(tiny_cfg());
        dsm.parallel([&](Rank r) {
          if (r == 0) dsm.parallel([](Rank) {});
        });
      },
      "nest|master");
}

TEST(Contracts, DoubleFreeAborts) {
  EXPECT_DEATH(
      {
        DsmSystem dsm(tiny_cfg());
        const auto a = dsm.shared_malloc(128);
        dsm.shared_free(a);
        dsm.shared_free(a);
      },
      "unknown");
}

TEST(Contracts, ForeignLockReleaseAborts) {
  EXPECT_DEATH(
      {
        DsmSystem dsm(tiny_cfg());
        dsm.parallel([&](Rank r) {
          if (r == 0) dsm.lock_acquire(3);
          dsm.barrier();
          if (r == 1) dsm.lock_release(3); // not the holder
        });
      },
      "does not hold|not held");
}

TEST(Contracts, SystemIsRestartable) {
  // Many systems in one process, sequentially and overlapping lifetimes.
  for (int i = 0; i < 3; ++i) {
    DsmSystem a(tiny_cfg());
    auto x = a.alloc<int>(16);
    x[0] = i;
    {
      DsmSystem b(tiny_cfg());
      b.parallel([&](Rank) {});
    }
    a.parallel([&](Rank r) {
      if (r == 0) x[1] = x[0] + 1;
    });
    EXPECT_EQ(x[1], i + 1);
  }
  EXPECT_EQ(FaultRegistry::region_count(), 0u);
}

} // namespace
} // namespace omsp::tmk
