// Config and GlobalPtr unit tests.
#include <gtest/gtest.h>

#include "tmk/config.hpp"
#include "tmk/global_ptr.hpp"

namespace omsp::tmk {
namespace {

TEST(Config, ThreadModeContextLayout) {
  Config cfg;
  cfg.topology = sim::Topology(4, 4);
  cfg.mode = Mode::kThread;
  EXPECT_EQ(cfg.num_contexts(), 4u);
  EXPECT_EQ(cfg.threads_per_context(), 4u);
  EXPECT_EQ(cfg.context_of_rank(0), 0u);
  EXPECT_EQ(cfg.context_of_rank(5), 1u);
  EXPECT_EQ(cfg.slot_of_rank(5), 1u);
  EXPECT_EQ(cfg.node_of_context(3), 3u);
  EXPECT_TRUE(cfg.use_alias_mapping());
  EXPECT_TRUE(cfg.use_per_page_fault_lock());
}

TEST(Config, ProcessModeContextLayout) {
  Config cfg;
  cfg.topology = sim::Topology(4, 4);
  cfg.mode = Mode::kProcess;
  EXPECT_EQ(cfg.num_contexts(), 16u);
  EXPECT_EQ(cfg.threads_per_context(), 1u);
  EXPECT_EQ(cfg.context_of_rank(5), 5u);
  EXPECT_EQ(cfg.node_of_context(5), 1u); // context 5 = rank 5 lives on node 1
  EXPECT_FALSE(cfg.use_alias_mapping());
  EXPECT_FALSE(cfg.use_per_page_fault_lock());
}

TEST(Config, AblationOverridesStick) {
  Config cfg;
  cfg.mode = Mode::kProcess;
  cfg.alias_mapping = true;
  cfg.per_page_fault_lock = true;
  EXPECT_TRUE(cfg.use_alias_mapping());
  EXPECT_TRUE(cfg.use_per_page_fault_lock());
}

TEST(GlobalPtr, NullAndArithmetic) {
  GlobalPtr<double> p;
  EXPECT_TRUE(p.is_null());
  EXPECT_FALSE(static_cast<bool>(p));
  GlobalPtr<double> q(128);
  EXPECT_EQ((q + 4).addr(), 128 + 4 * sizeof(double));
  EXPECT_EQ((q - 2).addr(), 128 - 2 * sizeof(double));
  q += 1;
  EXPECT_EQ(q.addr(), 128 + sizeof(double));
  EXPECT_EQ(q.cast<std::uint8_t>().addr(), q.addr());
}

TEST(GlobalPtr, ResolvesThroughBinding) {
  alignas(16) std::uint8_t arena[256] = {};
  ThreadHeapBinding::Scope scope(arena);
  GlobalPtr<std::uint32_t> p(16);
  *p = 0xabcd1234;
  EXPECT_EQ(p[0], 0xabcd1234u);
  EXPECT_EQ(*reinterpret_cast<std::uint32_t*>(arena + 16), 0xabcd1234u);
  // Rebinding moves the view.
  alignas(16) std::uint8_t other[256] = {};
  {
    ThreadHeapBinding::Scope inner(other);
    p[0] = 7;
    EXPECT_EQ(*reinterpret_cast<std::uint32_t*>(other + 16), 7u);
  }
  EXPECT_EQ(p[0], 0xabcd1234u); // outer binding restored
}

} // namespace
} // namespace omsp::tmk
