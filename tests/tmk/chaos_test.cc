// Chaos-mode stress: random microsecond delays at protocol decision points
// (OMSP_CHAOS) shake out interleavings the scheduler rarely produces, and
// try-lock semantics under contention.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/runtime.hpp"
#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

class ChaosEnv : public ::testing::Test {
protected:
  void SetUp() override { setenv("OMSP_CHAOS", "200", 1); } // 20% of points
  void TearDown() override { unsetenv("OMSP_CHAOS"); }
};

TEST_F(ChaosEnv, TriangularPatternStillExact) {
  const std::int64_t N = 24, D = 64;
  const long M = 1000003;
  std::vector<long> ref(N * D, 1);
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t k = 0; k < D; ++k) ref[i * D + k] = ref[i * D + k] * 3 % M;
    for (std::int64_t j = i + 1; j < N; ++j)
      for (std::int64_t k = 0; k < D; ++k)
        ref[j * D + k] = (ref[j * D + k] + ref[i * D + k]) % M;
  }
  for (int trial = 0; trial < 3; ++trial) {
    tmk::Config cfg;
    cfg.topology = sim::Topology(2, 2);
    cfg.cost = sim::CostModel::zero();
    core::OmpRuntime rt(cfg);
    auto a = rt.alloc_page_aligned<long>(N * D);
    for (std::int64_t i = 0; i < N * D; ++i) a[i] = 1;
    for (std::int64_t i = 0; i < N; ++i) {
      for (std::int64_t k = 0; k < D; ++k) a[i * D + k] = a[i * D + k] * 3 % M;
      rt.parallel_for(i + 1, N, core::Schedule::static_chunked(1),
                      [&](std::int64_t j) {
                        for (std::int64_t k = 0; k < D; ++k)
                          a[j * D + k] = (a[j * D + k] + a[i * D + k]) % M;
                      });
    }
    for (std::int64_t x = 0; x < N * D; ++x) ASSERT_EQ(a[x], ref[x]) << x;
  }
}

TEST_F(ChaosEnv, FalseSharingMergeUnderDelays) {
  Config cfg;
  cfg.topology = sim::Topology(4, 1);
  cfg.mode = Mode::kProcess;
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  for (int trial = 0; trial < 3; ++trial) {
    DsmSystem dsm(cfg);
    auto page = dsm.alloc_page_aligned<int>(1024);
    dsm.parallel([&](Rank r) {
      for (int round = 0; round < 5; ++round) {
        for (std::uint32_t i = r; i < 1024; i += 4)
          page[i] = page[i] + 1;
        dsm.barrier();
      }
    });
    for (int i = 0; i < 1024; ++i) ASSERT_EQ(page[i], 5) << i;
  }
}

TEST(TryLock, NonBlockingSemantics) {
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);
  auto winners = dsm.alloc_page_aligned<int>(4);
  winners[0] = 0;
  dsm.parallel([&](Rank r) {
    // Exactly one rank can hold the lock at a time; the other's test fails
    // while it is held.
    if (r == 0) {
      ASSERT_TRUE(dsm.lock_try_acquire(11));
      dsm.barrier(); // rank 1 probes while we hold it
      dsm.barrier();
      dsm.lock_release(11);
      dsm.barrier();
    } else {
      dsm.barrier();
      EXPECT_FALSE(dsm.lock_try_acquire(11));
      dsm.barrier();
      dsm.barrier(); // rank 0 released
      EXPECT_TRUE(dsm.lock_try_acquire(11));
      dsm.lock_release(11);
    }
  });
}

TEST(TryLock, SuccessfulTryTransfersConsistency) {
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);
  auto cell = dsm.alloc_page_aligned<long>(8);
  cell[0] = 0;
  dsm.parallel([&](Rank r) {
    if (r == 0) {
      dsm.lock_acquire(5);
      cell[0] = 42;
      dsm.lock_release(5);
      dsm.barrier();
    } else {
      dsm.barrier();
      // A successful try-acquire is an acquire: it must deliver rank 0's
      // write through the lock's release->acquire chain.
      ASSERT_TRUE(dsm.lock_try_acquire(5));
      EXPECT_EQ(cell[0], 42);
      dsm.lock_release(5);
    }
  });
}

} // namespace
} // namespace omsp::tmk
