// Protocol-level tests against DsmContext/DsmSystem internals: page state
// transitions, interval bookkeeping, lazy diff flow, lock semantics and
// barrier semantics — the mechanisms behind Table 3's counters.
#include <gtest/gtest.h>

#include <thread>

#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

Config cfg2(Mode mode = Mode::kThread) {
  Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.mode = mode;
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

// --------------------------------------------------------- page states ----

TEST(PageStates, InitialStateIsReadValid) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<int>(1024);
  const PageId p = static_cast<PageId>(x.addr() / kPageSize);
  EXPECT_EQ(dsm.context(0).page_state(p), PageState::kRead);
  EXPECT_FALSE(dsm.context(0).page_dirty(p));
}

TEST(PageStates, WriteFaultCreatesTwinAndDirty) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<int>(1024);
  const PageId p = static_cast<PageId>(x.addr() / kPageSize);
  x[0] = 5; // master writes through context 0
  EXPECT_EQ(dsm.context(0).page_state(p), PageState::kReadWrite);
  EXPECT_TRUE(dsm.context(0).page_dirty(p));
  auto s = dsm.stats();
  EXPECT_EQ(s[Counter::kTwins], 1u);
  EXPECT_EQ(s[Counter::kWriteFaults], 1u);
}

TEST(PageStates, NoticeInvalidatesRemoteCopy) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<int>(1024);
  const PageId p = static_cast<PageId>(x.addr() / kPageSize);
  x[0] = 5;
  dsm.parallel([&](Rank r) {
    if (r == 1) {
      // Fork delivered the master's write notice: our copy must have been
      // invalidated, and this read re-validates it.
      const int got = x[0];
      EXPECT_EQ(got, 5);
    }
  });
  EXPECT_EQ(dsm.context(1).page_state(p), PageState::kRead);
  EXPECT_GT(dsm.stats()[Counter::kPageInvalidations], 0u);
}

TEST(PageStates, LazyDiffOnlyOnRequest) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<int>(1024);
  const PageId p = static_cast<PageId>(x.addr() / kPageSize);
  x[0] = 5;
  dsm.parallel([&](Rank) {}); // fork/join: interval closes, notice travels
  EXPECT_EQ(dsm.stats()[Counter::kDiffsCreated], 0u)
      << "no one asked for the page yet";
  dsm.parallel([&](Rank r) {
    if (r == 1) {
      const int got = x[0]; // first touch fetches the diff
      EXPECT_EQ(got, 5);
    }
  });
  EXPECT_EQ(dsm.stats()[Counter::kDiffsCreated], 1u);
  EXPECT_GE(dsm.context(0).stored_diff_count(p), 1u);
}

TEST(PageStates, FlushWriteProtectsSoNextWriteRefaults) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<int>(1024);
  const PageId p = static_cast<PageId>(x.addr() / kPageSize);
  x[0] = 5;
  dsm.parallel([&](Rank r) {
    if (r == 1) {
      volatile int v = x[0]; // the read triggers the flush at context 0
      (void)v;
    }
  });
  EXPECT_EQ(dsm.context(0).page_state(p), PageState::kRead);
  const auto twins_before = dsm.stats()[Counter::kTwins];
  x[0] = 6; // must fault again and make a fresh twin
  EXPECT_EQ(dsm.stats()[Counter::kTwins], twins_before + 1);
}

// ----------------------------------------------------------- intervals ----

TEST(Intervals, CloseOnlyWhenDirty) {
  DsmSystem dsm(cfg2());
  EXPECT_EQ(dsm.context(0).own_seq(), 0u);
  dsm.parallel([&](Rank) {}); // nothing written: no interval anywhere
  EXPECT_EQ(dsm.context(0).own_seq(), 0u);
  EXPECT_EQ(dsm.context(1).own_seq(), 0u);
}

TEST(Intervals, RecordsFlowThroughForkJoin) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<int>(1024);
  x[0] = 1; // master write
  dsm.parallel([&](Rank r) {
    if (r == 1) x[1] = 2; // remote write
  });
  // Master learned the remote interval at join.
  const auto vt0 = dsm.context(0).vt_snapshot();
  EXPECT_GE(vt0[1], 1u);
  // And the remote context learned the master's at fork.
  const auto vt1 = dsm.context(1).vt_snapshot();
  EXPECT_GE(vt1[0], 1u);
}

TEST(Intervals, VectorTimeInvariantHolds) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<long>(2048);
  for (int round = 0; round < 5; ++round) {
    dsm.parallel([&](Rank r) {
      x[r * 512] = r + round;
      dsm.barrier();
      volatile long v = x[(1 - r) * 512];
      (void)v;
    });
  }
  // records_unknown_to validates vt <= stored records internally (CHECK);
  // exercise it for both contexts from both perspectives.
  const auto vt0 = dsm.context(0).vt_snapshot();
  const auto vt1 = dsm.context(1).vt_snapshot();
  (void)dsm.context(0).records_unknown_to(vt1);
  (void)dsm.context(1).records_unknown_to(vt0);
}

// --------------------------------------------------------------- locks ----

TEST(Locks, LocalReacquireSendsNoMessages) {
  Config cfg = cfg2();
  cfg.topology = sim::Topology(2, 2); // two threads on context 0
  cfg.mode = Mode::kThread;
  DsmSystem dsm(cfg);
  dsm.reset_stats();
  dsm.parallel([&](Rank r) {
    if (r == 0) {
      // Lock 0's manager is context 0; a context-0 thread acquiring it
      // repeatedly never needs the wire.
      for (int i = 0; i < 10; ++i) {
        dsm.lock_acquire(0);
        dsm.lock_release(0);
      }
    }
  });
  const auto s = dsm.stats();
  EXPECT_EQ(s[Counter::kLockAcquires], 10u);
  EXPECT_EQ(s[Counter::kLockRemoteAcquires], 0u);
}

TEST(Locks, RemoteAcquireCountsMessages) {
  DsmSystem dsm(cfg2());
  dsm.reset_stats();
  dsm.parallel([&](Rank r) {
    if (r == 1) { // context 1 acquiring a context-0-managed lock
      dsm.lock_acquire(0);
      dsm.lock_release(0);
    }
  });
  const auto s = dsm.stats();
  EXPECT_EQ(s[Counter::kLockRemoteAcquires], 1u);
  EXPECT_GT(s[Counter::kMsgsSent], 0u);
}

TEST(Locks, ReleaseConsistencyThroughLockChain) {
  DsmSystem dsm(cfg2());
  auto x = dsm.alloc_page_aligned<int>(1024);
  x[0] = 0;
  dsm.parallel([&](Rank r) {
    // Strict alternation via two locks builds a release->acquire chain;
    // every increment must be visible to the next holder.
    for (int round = 0; round < 10; ++round) {
      dsm.lock_acquire(7);
      if (static_cast<int>(x[1]) % 2 == static_cast<int>(r)) {
        x[0] = x[0] + 1;
        x[1] = x[1] + 1;
      }
      dsm.lock_release(7);
    }
  });
  // Total increments is x[1]; whatever interleaving, x[0] must equal it.
  EXPECT_EQ(x[0], x[1]);
}

TEST(Locks, HoldersMustMatch) {
  DsmSystem dsm(cfg2());
  dsm.parallel([&](Rank r) {
    if (r == 0) {
      dsm.lock_acquire(3);
      dsm.lock_release(3);
    }
  });
  // Releasing a lock never acquired aborts (contract): death test.
  EXPECT_DEATH(
      {
        DsmSystem inner(cfg2());
        inner.parallel([&](Rank rr) {
          if (rr == 0) inner.lock_release(99);
        });
      },
      "not held");
}

// -------------------------------------------------------------- barrier ----

TEST(Barrier, CountsOncePerContextPerEpisode) {
  Config cfg = cfg2();
  cfg.topology = sim::Topology(2, 2);
  DsmSystem dsm(cfg);
  dsm.reset_stats();
  dsm.parallel([&](Rank) {
    dsm.barrier();
    dsm.barrier();
  });
  EXPECT_EQ(dsm.stats()[Counter::kBarriers], 2u * 2u); // 2 contexts x 2
}

TEST(Barrier, DepartureTimeDominatesArrivals) {
  Config cfg = cfg2();
  cfg.cost = sim::CostModel::sp2_default();
  cfg.cost.cpu_scale = 0; // no compute accrual; only modeled costs
  DsmSystem dsm(cfg);
  std::vector<double> after(2, 0);
  dsm.parallel([&](Rank r) {
    if (r == 1) dsm.clock(1).charge(5000); // straggler arrives 5ms late
    dsm.barrier();
    after[r] = dsm.clock(r).now_us();
  });
  EXPECT_GE(after[0], 5000.0); // the fast thread waited for the straggler
  EXPECT_GE(after[1], after[0] - 1000.0);
}

} // namespace
} // namespace omsp::tmk
