// Vector-clock data-race detection (src/race/, OMSP_RACE): the on-line
// detector must (a) find a deliberately racy kernel deterministically — same
// page, same byte ranges, same interval pair on every run, both protocols,
// both execution modes — and (b) stay silent on the six properly synchronized
// benchmark applications even with every protocol stressor stacked on
// (tree collectives, zero-copy delivery, lossy links, perturbed seeds).
// With OMSP_RACE=off (the default) the detector must not exist at all:
// values, modeled time and every counter identical to the seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "../common/env_guard.hpp"
#include "apps/barnes.hpp"
#include "apps/fft3d.hpp"
#include "apps/mgs.hpp"
#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "apps/water.hpp"
#include "race/detector.hpp"
#include "race/options.hpp"
#include "tmk/system.hpp"
#include "trace/sinks.hpp"

namespace omsp::tmk {
namespace {

using test::ScopedEnvClear;

sim::CostModel latency_model() {
  auto m = sim::CostModel::zero();
  m.net_latency_us = 100.0;
  m.handler_service_us = 10.0;
  return m;
}

// ------------------------------------------------- the racy SOR variant ----
//
// A red-black SOR sweep whose row partition is deliberately broken: the first
// and the last rank both update boundary row 0 (cells [0, 8)) in the same
// interval, with no reduction/critical protection and no intervening
// synchronization. The cell patterns differ from zero AND from each other in
// every byte, so the two racing diffs are [0, 64) regardless of which writer
// faulted first (the second writer's twin may hold either zeros or the first
// writer's cells — the delta is the same either way): the detector must
// report exactly ONE byte-precise, interleaving-independent race.
constexpr int kRacyElems = 8;
constexpr std::uint64_t kCellA = 0x0101010101010101ull;
constexpr std::uint64_t kCellB = 0x2323232323232323ull;

struct RacyRun {
  std::vector<race::Report> reports; // sorted by lo
  StatsSnapshot stats;
  std::uint32_t last_ctx = 0; // context of the last rank
};

std::uint32_t context_of_last_rank(const Config& cfg) {
  // Thread mode folds each node into one context.
  return cfg.mode == Mode::kThread ? cfg.topology.nodes() - 1
                                   : cfg.topology.nprocs() - 1;
}

RacyRun run_racy_sor(Config cfg, race::Mode rmode) {
  cfg.race.mode = rmode;
  DsmSystem dsm(cfg);
  const auto P = dsm.nprocs();
  auto row = dsm.alloc_page_aligned<std::uint64_t>(kPageSize /
                                                   sizeof(std::uint64_t));
  dsm.parallel([&](Rank r) {
    if (r == 0) {
      for (int k = 0; k < kRacyElems; ++k) row[k] = kCellA; // red sweep...
    } else if (r == P - 1) {
      for (int k = 0; k < kRacyElems; ++k) row[k] = kCellB; // ...collides
    }
    dsm.barrier();
  });
  RacyRun res;
  res.reports = dsm.race_detector()->reports();
  std::sort(res.reports.begin(), res.reports.end(),
            [](const race::Report& a, const race::Report& b) {
              return a.lo < b.lo;
            });
  res.stats = dsm.stats();
  res.last_ctx = context_of_last_rank(cfg);
  return res;
}

struct RaceParam {
  Mode mode;
  Protocol protocol;
  const char* name;
};

class RacyKernel : public ::testing::TestWithParam<RaceParam> {};

// Page granularity: the eight racing cells form one maximal overlapping
// range — exactly ONE report covering bytes [0, 64) of page 0, attributed to
// interval 1 of each writer.
TEST_P(RacyKernel, PageModeReportsExactByteRange) {
  ScopedEnvClear env;
  const RaceParam& p = GetParam();
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = p.mode;
  cfg.protocol = p.protocol;
  cfg.cost = latency_model();
  const RacyRun run = run_racy_sor(cfg, race::Mode::kPage);

  ASSERT_EQ(run.reports.size(), 1u);
  const race::Report& rep = run.reports[0];
  EXPECT_EQ(rep.page, 0u);
  EXPECT_EQ(rep.lo, 0u);
  EXPECT_EQ(rep.hi, static_cast<std::uint32_t>(kRacyElems * 8));
  EXPECT_EQ(rep.ctx_a, 0u);
  EXPECT_EQ(rep.ctx_b, run.last_ctx);
  EXPECT_EQ(rep.seq_a, 1u);
  EXPECT_EQ(rep.seq_b, 1u);
  // Neither interval's sync vector time covers the other: truly concurrent.
  EXPECT_FALSE(rep.vt_a.covers(rep.ctx_b, rep.seq_b));
  EXPECT_FALSE(rep.vt_b.covers(rep.ctx_a, rep.seq_a));
  EXPECT_EQ(run.stats[Counter::kRacesDetected], 1u);
  EXPECT_GT(run.stats[Counter::kRaceChecks], 0u);
}

// Byte-disjoint writes to the same page: rank 0 stores byte 5, the last rank
// stores byte 6. Page granularity deliberately stays silent (false sharing,
// not a data race); word granularity widens both runs to the containing
// 4-byte word [4, 8) and must flag the collision.
std::pair<std::vector<race::Report>, StatsSnapshot> run_false_sharing(
    Config cfg, race::Mode rmode) {
  cfg.race.mode = rmode;
  DsmSystem dsm(cfg);
  const auto P = dsm.nprocs();
  auto bytes = dsm.alloc_page_aligned<unsigned char>(kPageSize);
  dsm.parallel([&](Rank r) {
    if (r == 0) bytes[5] = 0x11;
    if (r == P - 1) bytes[6] = 0x22;
    dsm.barrier();
  });
  return {dsm.race_detector()->reports(), dsm.stats()};
}

TEST_P(RacyKernel, WordModeFlagsFalseSharingPageModeDoesNot) {
  ScopedEnvClear env;
  const RaceParam& p = GetParam();
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = p.mode;
  cfg.protocol = p.protocol;
  cfg.cost = latency_model();

  const auto page = run_false_sharing(cfg, race::Mode::kPage);
  EXPECT_EQ(page.first.size(), 0u);
  EXPECT_EQ(page.second[Counter::kRacesDetected], 0u);
  EXPECT_GT(page.second[Counter::kRaceChecks], 0u); // the pair WAS checked

  const auto word = run_false_sharing(cfg, race::Mode::kWord);
  ASSERT_EQ(word.first.size(), 1u);
  EXPECT_EQ(word.first[0].page, 0u);
  EXPECT_EQ(word.first[0].lo, 4u);
  EXPECT_EQ(word.first[0].hi, 8u);
  EXPECT_EQ(word.second[Counter::kRacesDetected], 1u);
}

// Determinism: the full report list — pages, ranges, contexts, interval
// sequence numbers — is identical across repeated runs.
TEST_P(RacyKernel, ReportsAreDeterministicAcrossRuns) {
  ScopedEnvClear env;
  const RaceParam& p = GetParam();
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = p.mode;
  cfg.protocol = p.protocol;
  cfg.cost = latency_model();
  const RacyRun a = run_racy_sor(cfg, race::Mode::kPage);
  const RacyRun b = run_racy_sor(cfg, race::Mode::kPage);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].page, b.reports[i].page);
    EXPECT_EQ(a.reports[i].lo, b.reports[i].lo);
    EXPECT_EQ(a.reports[i].hi, b.reports[i].hi);
    EXPECT_EQ(a.reports[i].ctx_a, b.reports[i].ctx_a);
    EXPECT_EQ(a.reports[i].ctx_b, b.reports[i].ctx_b);
    EXPECT_EQ(a.reports[i].seq_a, b.reports[i].seq_a);
    EXPECT_EQ(a.reports[i].seq_b, b.reports[i].seq_b);
  }
  EXPECT_EQ(a.stats[Counter::kRacesDetected],
            b.stats[Counter::kRacesDetected]);
}

INSTANTIATE_TEST_SUITE_P(
    ModesProtocols, RacyKernel,
    ::testing::Values(
        RaceParam{Mode::kThread, Protocol::kLazyRC, "ThreadLazy"},
        RaceParam{Mode::kThread, Protocol::kHomeLRC, "ThreadHome"},
        RaceParam{Mode::kProcess, Protocol::kLazyRC, "ProcessLazy"},
        RaceParam{Mode::kProcess, Protocol::kHomeLRC, "ProcessHome"}),
    [](const auto& info) { return std::string(info.param.name); });

// A properly synchronized variant of the same kernel — the last rank's sweep
// moved behind a barrier — must be race-free: the happens-before edge through
// the barrier orders the two writes.
TEST(RaceDetect, BarrierOrderedWritesAreNotRaces) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = latency_model();
  cfg.race.mode = race::Mode::kPage;
  DsmSystem dsm(cfg);
  const auto P = dsm.nprocs();
  auto row = dsm.alloc_page_aligned<std::uint64_t>(kPageSize /
                                                   sizeof(std::uint64_t));
  dsm.parallel([&](Rank r) {
    if (r == 0)
      for (int k = 0; k < kRacyElems; ++k) row[k] = kCellA;
    dsm.barrier();
    if (r == P - 1)
      for (int k = 0; k < kRacyElems; ++k) row[k] = kCellB;
    dsm.barrier();
  });
  EXPECT_EQ(dsm.race_detector()->race_count(), 0u);
  // The ordered value survives: the last write wins everywhere.
  for (int k = 0; k < kRacyElems; ++k) EXPECT_EQ(row[k], kCellB);
}

// ------------------------------------------------- off-mode bit-for-bit ----

struct RunResult {
  std::vector<long> sums;
  StatsSnapshot stats;
  double makespan_us = 0;
};

RunResult run_round_robin(const Config& base) {
  Config cfg = base;
  DsmSystem dsm(cfg);
  const int P = static_cast<int>(dsm.nprocs());
  const std::int64_t B = kPageSize / sizeof(long);
  auto data = dsm.alloc_page_aligned<long>(B * P);
  // One falsely-shared page every rank stripes a disjoint slice of, exactly
  // once, after a read-only warm-up epoch made it valid everywhere: the
  // stripe writes upgrade a valid copy in place and nobody ever reads the
  // page, so no mid-epoch fetch can force a concurrent writer's flush and
  // perturb the pinned counters. The closing barrier's sweep still sees
  // cross-creator write pairs — the detector must CHECK them
  // (kRaceChecks > 0) and confirm none overlap (kRacesDetected == 0).
  auto shared = dsm.alloc_page_aligned<long>(B);
  const std::int64_t stripe = B / P;
  for (std::int64_t i = 0; i < B * P; ++i) data[i] = 0;
  RunResult res;
  res.sums.assign(static_cast<std::size_t>(P), 0);
  dsm.parallel([&](Rank r) {
    volatile long warm = shared[0];
    (void)warm;
    dsm.barrier();
    for (std::int64_t i = 0; i < stripe; ++i)
      shared[r * stripe + i] = static_cast<long>(r) * 1000 + 1;
    for (int it = 0; it < 2 * P; ++it) {
      if (it % P == static_cast<int>(r)) {
        for (std::int64_t i = 0; i < B; ++i) data[r * B + i] += r + it + 1;
        const int prev = (static_cast<int>(r) + P - 1) % P;
        long s = 0;
        for (std::int64_t i = 0; i < B; ++i) s += data[prev * B + i];
        res.sums[r] += s;
      }
      dsm.barrier();
    }
  });
  res.stats = dsm.stats();
  res.makespan_us = dsm.master_time_us();
  return res;
}

// The same deterministic-counter set the zerocopy suite pins: quantities the
// workload fixes exactly (the piggyback-dependent byte totals vary run-to-run
// even on the seed, see tests/tmk/overlap_test.cc).
constexpr Counter kDeterministicCounters[] = {
    Counter::kMsgsSent,         Counter::kMsgsOffNode,
    Counter::kPageFaults,       Counter::kReadFaults,
    Counter::kWriteFaults,      Counter::kTwins,
    Counter::kDiffsCreated,     Counter::kDiffsApplied,
    Counter::kDiffBytesCreated, Counter::kFullPageFetches,
    Counter::kBarriers,
};

// The acceptance bar for the knob: detection is passive. Turning the detector
// on may not change a computed value, a modeled microsecond, or any
// pre-existing deterministic counter — and off means off: no detector object,
// zero race counters.
TEST(RaceDetect, OffAndOnAgreeExactlyAndOffMeansOff) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = Mode::kProcess;
  cfg.cost = latency_model();

  const RunResult off = run_round_robin(cfg);
  Config on = cfg;
  on.race.mode = race::Mode::kPage;
  const RunResult traced = run_round_robin(on);

  EXPECT_EQ(off.sums, traced.sums);
  EXPECT_DOUBLE_EQ(off.makespan_us, traced.makespan_us);
  for (const Counter c : kDeterministicCounters)
    EXPECT_EQ(off.stats[c], traced.stats[c]) << "counter " << counter_name(c);
  EXPECT_EQ(off.stats[Counter::kRaceChecks], 0u);
  EXPECT_EQ(off.stats[Counter::kRacesDetected], 0u);
  EXPECT_EQ(traced.stats[Counter::kRacesDetected], 0u); // round-robin is clean
  EXPECT_GT(traced.stats[Counter::kRaceChecks], 0u);

  Config off_cfg = cfg;
  DsmSystem plain(off_cfg);
  EXPECT_EQ(plain.race_detector(), nullptr);
}

// ---------------------------------------------- stats <-> trace audit ------

// Every kRaceChecks/kRacesDetected increment has a paired trace event and
// folding the trace reproduces the live board exactly (trace version 7).
TEST(RaceDetect, TraceReconstructsRaceCounters) {
  ScopedEnvClear env;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = latency_model();
  cfg.trace.enabled = true;
  cfg.race.mode = race::Mode::kPage;
  DsmSystem dsm(cfg);
  const auto P = dsm.nprocs();
  auto row = dsm.alloc_page_aligned<std::uint64_t>(kPageSize /
                                                   sizeof(std::uint64_t));
  dsm.parallel([&](Rank r) {
    if (r == 0)
      for (int k = 0; k < kRacyElems; ++k) row[k] = kCellA;
    if (r == P - 1)
      for (int k = 0; k < kRacyElems; ++k) row[k] = kCellB;
    dsm.barrier();
  });
  const StatsSnapshot live = dsm.stats();
  EXPECT_EQ(live[Counter::kRacesDetected], 1u);
  ASSERT_NE(dsm.tracer(), nullptr);
  const StatsSnapshot rebuilt =
      trace::reconstruct_counters(dsm.tracer()->snapshot_events());
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
}

// ------------------------------------------------- apps stay race-clean ----

// Loss-only perturbation, as the loss suite configures it.
net::PerturbOptions loss_with(std::uint64_t seed, double prob) {
  net::PerturbOptions o;
  o.enabled = true;
  o.seed = seed;
  o.jitter_max_us = 0;
  o.duplicate_prob = 0;
  o.reorder_prob = 0;
  o.loss_prob = prob;
  o.max_retries = 20;
  return o;
}

// Every stressor from the CI matrix stacked at once: tree collectives,
// zero-copy delivery, 5% message loss, seeds 1..3 — and the detector at page
// granularity on top. All six applications must compute the reference
// checksum with ZERO race reports: no false positives from retransmitted
// diffs, piggybacked intervals, segmented broadcasts or view-parsed replies.
class AppsRaceClean : public ::testing::TestWithParam<std::uint64_t> {
protected:
  tmk::Config stacked_cfg(tmk::Mode mode) {
    tmk::Config cfg;
    cfg.topology = sim::Topology(2, 2);
    cfg.mode = mode;
    cfg.cost = sim::CostModel::zero();
    cfg.race.mode = race::Mode::kPage;
    cfg.coll.tree = true;
    cfg.zerocopy.enabled = true;
    cfg.perturb = loss_with(GetParam(), 0.05);
    return cfg;
  }

  static void expect_clean(const apps::Result& run, double want,
                           const char* app) {
    const double scale =
        std::max({std::abs(run.checksum), std::abs(want), 1.0});
    EXPECT_NEAR(run.checksum, want, 1e-8 * scale) << app;
    EXPECT_EQ(run.stats[Counter::kRacesDetected], 0u) << app;
    EXPECT_GT(run.stats[Counter::kRaceChecks], 0u) << app;
  }
};

TEST_P(AppsRaceClean, AllSixAppsZeroReports) {
  ScopedEnvClear env;
  {
    apps::sor::Params p{64, 48, 4, 1.0};
    const double want = apps::sor::run_seq(p, 1.0).checksum;
    expect_clean(apps::sor::run_omp(p, stacked_cfg(Mode::kThread)), want,
                 "sor");
  }
  {
    apps::mgs::Params p{48, 64, 3};
    const double want = apps::mgs::run_seq(p, 1.0).checksum;
    expect_clean(apps::mgs::run_omp(p, stacked_cfg(Mode::kProcess)), want,
                 "mgs");
  }
  {
    apps::tsp::Params p{11, 42, 7};
    const double want = apps::tsp::run_seq(p, 1.0).checksum;
    expect_clean(apps::tsp::run_omp(p, stacked_cfg(Mode::kThread)), want,
                 "tsp");
  }
  {
    apps::water::Params p{96, 2, 1e-3, 0.45, 11};
    const double want = apps::water::run_seq(p, 1.0).checksum;
    expect_clean(apps::water::run_omp(p, stacked_cfg(Mode::kProcess)), want,
                 "water");
  }
  {
    apps::fft3d::Params p{16, 16, 8, 2, 5};
    const double want = apps::fft3d::run_seq(p, 1.0).checksum;
    expect_clean(apps::fft3d::run_omp(p, stacked_cfg(Mode::kThread)), want,
                 "fft3d");
  }
  {
    apps::barnes::Params p{192, 2, 0.7, 0.02, 0.05, 17};
    const double want = apps::barnes::run_seq(p, 1.0).checksum;
    expect_clean(apps::barnes::run_omp(p, stacked_cfg(Mode::kProcess)), want,
                 "barnes");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppsRaceClean, ::testing::Values(1u, 2u, 3u),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

// The MPI versions never construct a DsmSystem: OMSP_RACE in the environment
// must be inert there — same checksum, no detector, no crash.
TEST(RaceDetect, MpiVersionsIgnoreRaceKnob) {
  ScopedEnvClear env;
  ::setenv("OMSP_RACE", "page", 1);
  apps::sor::Params p{64, 48, 4, 1.0};
  const double want = apps::sor::run_seq(p, 1.0).checksum;
  const auto mpi =
      apps::sor::run_mpi(p, sim::Topology(2, 2), sim::CostModel::zero());
  EXPECT_NEAR(mpi.checksum, want, 1e-9 * std::max(std::abs(want), 1.0));
  EXPECT_EQ(mpi.stats[Counter::kRacesDetected], 0u);
  ::unsetenv("OMSP_RACE");
}

// ------------------------------------------------------- the knob ----------

TEST(RaceEnv, ParsesOffPageWord) {
  ScopedEnvClear env;
  EXPECT_FALSE(race::Options::from_env().enabled()); // unset -> off
  const auto parsed = [](const char* v) {
    const auto o = race::Options::parse(v);
    return o.has_value() ? std::optional<race::Mode>(o->mode) : std::nullopt;
  };
  EXPECT_EQ(parsed("off"), race::Mode::kOff);
  EXPECT_EQ(parsed("page"), race::Mode::kPage);
  EXPECT_EQ(parsed("word"), race::Mode::kWord);
  EXPECT_EQ(parsed("bogus"), std::nullopt);
  EXPECT_EQ(parsed(""), std::nullopt);

  ::setenv("OMSP_RACE", "word", 1);
  EXPECT_EQ(race::Options::from_env().mode, race::Mode::kWord);
  ::unsetenv("OMSP_RACE");
}

// Malformed specs are a hard error, same convention as OMSP_COLL: die loudly
// instead of silently measuring the wrong configuration.
TEST(RaceEnvDeathTest, MalformedSpecDiesLoudly) {
  ScopedEnvClear env;
  ::setenv("OMSP_RACE", "pages", 1);
  EXPECT_DEATH((void)race::Options::from_env(), "malformed OMSP_RACE spec");
  ::unsetenv("OMSP_RACE");
}

} // namespace
} // namespace omsp::tmk
