// Garbage-collection tests: correctness is unchanged with GC on, stored-diff
// memory is actually reclaimed, and the post-GC protocol keeps working.
#include <gtest/gtest.h>

#include <vector>

#include "core/runtime.hpp"
#include "tmk/system.hpp"

namespace omsp::tmk {
namespace {

Config gc_cfg(std::size_t threshold) {
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.heap_bytes = 1u << 20;
  cfg.cost = sim::CostModel::zero();
  cfg.gc_threshold_bytes = threshold;
  return cfg;
}

std::size_t total_stored(DsmSystem& dsm) {
  std::size_t n = 0;
  for (ContextId c = 0; c < dsm.num_contexts(); ++c)
    n += dsm.context(c).stored_diff_bytes();
  return n;
}

TEST(GarbageCollection, ReclaimsStoredDiffs) {
  DsmSystem dsm(gc_cfg(/*threshold=*/1)); // GC at every barrier
  auto x = dsm.alloc_page_aligned<long>(2048);
  for (int i = 0; i < 2048; ++i) x[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int round = 0; round < 6; ++round) {
      for (int i = static_cast<int>(r); i < 2048; i += 4)
        x[i] = x[i] + 1;
      dsm.barrier(); // everyone reads a peer's cell -> diffs get stored
      volatile long v = x[(r * 512 + 1) % 2048];
      (void)v;
      dsm.barrier(); // ... and this barrier GCs them
    }
  });
  EXPECT_EQ(total_stored(dsm), 0u);
  for (int i = 0; i < 2048; ++i) ASSERT_EQ(x[i], 6) << i;
}

TEST(GarbageCollection, DisabledKeepsHistory) {
  DsmSystem dsm(gc_cfg(/*threshold=*/0));
  auto x = dsm.alloc_page_aligned<long>(1024);
  dsm.parallel([&](Rank r) {
    x[r * 256] = 1;
    dsm.barrier();
    volatile long v = x[((r + 1) % 4) * 256];
    (void)v;
    dsm.barrier();
  });
  EXPECT_GT(total_stored(dsm), 0u);
}

TEST(GarbageCollection, TriangularStressWithAggressiveGc) {
  // The protocol-hostile MGS pattern with GC at every barrier: results must
  // be identical to the reference (GC may never lose a byte).
  const std::int64_t N = 32, D = 64;
  const long M = 1000003;
  std::vector<long> ref(N * D, 1);
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t k = 0; k < D; ++k) ref[i * D + k] = ref[i * D + k] * 3 % M;
    for (std::int64_t j = i + 1; j < N; ++j)
      for (std::int64_t k = 0; k < D; ++k)
        ref[j * D + k] = (ref[j * D + k] + ref[i * D + k]) % M;
  }

  tmk::Config cfg = gc_cfg(1);
  core::OmpRuntime rt(cfg);
  auto a = rt.alloc_page_aligned<long>(N * D);
  for (std::int64_t i = 0; i < N * D; ++i) a[i] = 1;
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t k = 0; k < D; ++k) a[i * D + k] = a[i * D + k] * 3 % M;
    rt.parallel_for(i + 1, N, core::Schedule::static_chunked(1),
                    [&](std::int64_t j) {
                      for (std::int64_t k = 0; k < D; ++k)
                        a[j * D + k] = (a[j * D + k] + a[i * D + k]) % M;
                    });
  }
  for (std::int64_t x = 0; x < N * D; ++x) ASSERT_EQ(a[x], ref[x]) << x;
}

TEST(GarbageCollection, MemoryBoundedUnderChurn) {
  // Without GC, stored diffs grow with every round; with GC they stay near
  // zero across many rounds.
  Config with = gc_cfg(4096);
  Config without = gc_cfg(0);
  std::size_t peak_with = 0, peak_without = 0;
  for (auto* mode : {&with, &without}) {
    DsmSystem dsm(*mode);
    auto x = dsm.alloc_page_aligned<long>(4096);
    std::size_t peak = 0;
    dsm.parallel([&](Rank r) {
      for (int round = 0; round < 12; ++round) {
        for (int i = static_cast<int>(r); i < 4096; i += 4) x[i] = x[i] + round;
        dsm.barrier();
        volatile long v = x[(r + 1) % 4096];
        (void)v;
        dsm.barrier();
      }
    });
    peak = total_stored(dsm);
    if (mode == &with)
      peak_with = peak;
    else
      peak_without = peak;
  }
  EXPECT_LT(peak_with, peak_without);
}

} // namespace
} // namespace omsp::tmk
