// Protocol stress tests. The triangular-update pattern (Modified
// Gram-Schmidt's access shape) is the single most protocol-hostile workload
// we know: every page has multiple concurrent writers whose ownership
// rotates each region, the master interleaves sequential writes, and data
// migrates through fork/join, flushes and false sharing simultaneously.
// During development this pattern exposed six distinct consistency bugs —
// each of which is now impossible by construction (see the "correctness
// cornerstones" comment in context.hpp). These tests keep them impossible.
#include <gtest/gtest.h>

#include <vector>

#include "core/runtime.hpp"

namespace omsp::tmk {
namespace {

struct StressParam {
  std::uint32_t nodes;
  std::uint32_t ppn;
  Mode mode;
  std::optional<bool> alias;
  const char* name;
  Protocol protocol = Protocol::kLazyRC;
};

class TriangularStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(TriangularStress, ExactIntegerAgreementOverManyTrials) {
  const StressParam& sp = GetParam();
  const std::int64_t N = 48, D = 64; // 8 vectors per page: heavy false sharing
  const long M = 1000003;

  // Reference, computed once.
  std::vector<long> ref(N * D, 1);
  {
    std::vector<long> work = ref;
    for (std::int64_t i = 0; i < N; ++i) {
      for (std::int64_t k = 0; k < D; ++k) work[i * D + k] = work[i * D + k] * 3 % M;
      for (std::int64_t j = i + 1; j < N; ++j)
        for (std::int64_t k = 0; k < D; ++k)
          work[j * D + k] = (work[j * D + k] + work[i * D + k]) % M;
    }
    ref = work;
  }

  for (int trial = 0; trial < 6; ++trial) {
    Config cfg;
    cfg.topology = sim::Topology(sp.nodes, sp.ppn);
    cfg.mode = sp.mode;
    cfg.alias_mapping = sp.alias;
    cfg.protocol = sp.protocol;
    cfg.cost = sim::CostModel::zero();
    core::OmpRuntime rt(cfg);
    auto a = rt.alloc_page_aligned<long>(N * D);
    for (std::int64_t i = 0; i < N * D; ++i) a[i] = 1;
    for (std::int64_t i = 0; i < N; ++i) {
      for (std::int64_t k = 0; k < D; ++k) a[i * D + k] = a[i * D + k] * 3 % M;
      rt.parallel_for(i + 1, N, core::Schedule::static_chunked(1),
                      [&](std::int64_t j) {
                        for (std::int64_t k = 0; k < D; ++k)
                          a[j * D + k] =
                              (a[j * D + k] + a[i * D + k]) % M;
                      });
    }
    for (std::int64_t x = 0; x < N * D; ++x)
      ASSERT_EQ(a[x], ref[x]) << "trial " << trial << " index " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TriangularStress,
    ::testing::Values(
        StressParam{2, 2, Mode::kThread, std::nullopt, "Thread2x2"},
        StressParam{4, 1, Mode::kThread, std::nullopt, "Thread4x1"},
        StressParam{2, 2, Mode::kProcess, std::nullopt, "Process2x2"},
        StressParam{4, 1, Mode::kProcess, std::nullopt, "Process4x1"},
        StressParam{2, 2, Mode::kProcess, true, "ProcessAliased"},
        StressParam{2, 1, Mode::kThread, false, "ThreadNoAlias"},
        StressParam{2, 2, Mode::kThread, std::nullopt, "HomeThread",
                    Protocol::kHomeLRC},
        StressParam{4, 1, Mode::kProcess, std::nullopt, "HomeProcess",
                    Protocol::kHomeLRC}),
    [](const auto& info) { return info.param.name; });

TEST(LockStress, MigratoryCounterUnderContention) {
  // Migratory data under a lock: the classic TreadMarks lock-handoff path.
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);
  auto counters = dsm.alloc_page_aligned<long>(8);
  for (int i = 0; i < 8; ++i) counters[i] = 0;
  constexpr int kRounds = 120;
  dsm.parallel([&](Rank r) {
    for (int k = 0; k < kRounds; ++k) {
      const LockId l = static_cast<LockId>(k % 3);
      dsm.lock_acquire(l);
      counters[l] = counters[l] + 1;
      counters[3 + (r % 5)] = counters[3 + (r % 5)] + 1;
      dsm.lock_release(l);
    }
  });
  long total = 0;
  for (int i = 0; i < 3; ++i) total += counters[i];
  EXPECT_EQ(total, 4 * kRounds);
}

TEST(BarrierStress, ManyTinyRegionsAndBarriers) {
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  DsmSystem dsm(cfg);
  auto cells = dsm.alloc_page_aligned<long>(4);
  for (int i = 0; i < 4; ++i) cells[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 60; ++it) {
      cells[r] = cells[r] + static_cast<long>(r) + 1;
      dsm.barrier();
      long sum = 0;
      for (int i = 0; i < 4; ++i) sum += cells[i];
      ASSERT_EQ(sum, static_cast<long>(it + 1) * (1 + 2 + 3 + 4));
      dsm.barrier();
    }
  });
}

} // namespace
} // namespace omsp::tmk
