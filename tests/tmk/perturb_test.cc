// Protocol correctness under the seeded PerturbingTransport: latency jitter,
// bounded reordering and duplicate delivery must not change any computed
// value, and injected duplicates exercise the DsmContext::handle idempotence
// contract for real (a retransmitted diff request finds its twin consumed, a
// re-applied home diff is a byte-level no-op, a repeated page fetch is a pure
// read).
#include <gtest/gtest.h>

#include <vector>

#include "core/runtime.hpp"
#include "net/transport.hpp"
#include "trace/sinks.hpp"

namespace omsp::tmk {
namespace {

net::PerturbOptions perturb_with_seed(std::uint64_t seed) {
  net::PerturbOptions o;
  o.enabled = true;
  o.seed = seed;
  return o; // default jitter/duplicate/reorder rates
}

net::PerturbOptions duplicate_everything() {
  net::PerturbOptions o;
  o.enabled = true;
  o.seed = 99;
  o.jitter_max_us = 0;
  o.duplicate_prob = 1.0;
  o.reorder_prob = 0;
  return o;
}

void run_triangular(const Config& base, std::vector<long>& out) {
  const std::int64_t N = 24, D = 64;
  const long M = 1000003;
  Config cfg = base;
  core::OmpRuntime rt(cfg);
  auto a = rt.alloc_page_aligned<long>(N * D);
  for (std::int64_t i = 0; i < N * D; ++i) a[i] = 1;
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t k = 0; k < D; ++k) a[i * D + k] = a[i * D + k] * 3 % M;
    rt.parallel_for(i + 1, N, core::Schedule::static_chunked(1),
                    [&](std::int64_t j) {
                      for (std::int64_t k = 0; k < D; ++k)
                        a[j * D + k] = (a[j * D + k] + a[i * D + k]) % M;
                    });
  }
  out.assign(a.local(), a.local() + N * D);
}

struct PerturbParam {
  std::uint64_t seed;
  Protocol protocol;
  const char* name;
};

class PerturbedTriangular : public ::testing::TestWithParam<PerturbParam> {};

// The acceptance bar: with perturbation on (seeds 1..3, both protocols) the
// most protocol-hostile workload still computes exact integer results.
TEST_P(PerturbedTriangular, ExactResultsUnderPerturbation) {
  const PerturbParam& p = GetParam();
  std::vector<long> ref, perturbed;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.protocol = p.protocol;
  cfg.cost = sim::CostModel::zero();
  run_triangular(cfg, ref);
  cfg.perturb = perturb_with_seed(p.seed);
  run_triangular(cfg, perturbed);
  ASSERT_EQ(perturbed, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PerturbedTriangular,
    ::testing::Values(PerturbParam{1, Protocol::kLazyRC, "LazySeed1"},
                      PerturbParam{2, Protocol::kLazyRC, "LazySeed2"},
                      PerturbParam{3, Protocol::kLazyRC, "LazySeed3"},
                      PerturbParam{1, Protocol::kHomeLRC, "HomeSeed1"},
                      PerturbParam{2, Protocol::kHomeLRC, "HomeSeed2"},
                      PerturbParam{3, Protocol::kHomeLRC, "HomeSeed3"}),
    [](const auto& info) { return info.param.name; });

// Every request/reply duplicated: each diff request, home diff and page fetch
// is delivered twice, so the handlers' idempotence is exercised on every
// single protocol round trip — and the data must still be exact.
class DuplicateDelivery : public ::testing::TestWithParam<Protocol> {};

TEST_P(DuplicateDelivery, EveryRequestDeliveredTwiceStaysExact) {
  std::vector<long> ref, dup;
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.protocol = GetParam();
  cfg.cost = sim::CostModel::zero();
  run_triangular(cfg, ref);
  cfg.perturb = duplicate_everything();
  run_triangular(cfg, dup);
  ASSERT_EQ(dup, ref);
}

INSTANTIATE_TEST_SUITE_P(Protocols, DuplicateDelivery,
                         ::testing::Values(Protocol::kLazyRC,
                                           Protocol::kHomeLRC),
                         [](const auto& info) {
                           return info.param == Protocol::kLazyRC ? "Lazy"
                                                                  : "Home";
                         });

TEST(DuplicateDeliveryStats, InjectionActuallyHappened) {
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  cfg.perturb = duplicate_everything();
  DsmSystem dsm(cfg);
  auto& pt = dynamic_cast<net::PerturbingTransport&>(dsm.router().transport());
  EXPECT_STREQ(pt.name(), "perturbing");

  auto cells = dsm.alloc_page_aligned<long>(4);
  for (int i = 0; i < 4; ++i) cells[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 20; ++it) {
      dsm.lock_acquire(0);
      cells[0] = cells[0] + 1;
      dsm.lock_release(0);
      cells[1 + (r % 3)] = cells[1 + (r % 3)] + 1;
      dsm.barrier();
    }
  });
  EXPECT_EQ(cells[0], 4 * 20);
  // With duplicate_prob=1 every transport delivery was re-sent; both copies
  // are accounted, so the duplicate count is real traffic, not bookkeeping.
  EXPECT_GT(pt.stats().duplicates, 0u);
  EXPECT_EQ(pt.stats().reorders, 0u);
}

// Injected duplicates flow through Router::account like any delivery, so the
// stats<->trace pairing invariant holds even on a perturbed run: the trace
// reconstructs every counter exactly.
TEST(PerturbedTrace, ReconstructsCountersExactly) {
  Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  cfg.trace.enabled = true;
  // duplicate_prob=1 guarantees injected events regardless of how the thread
  // schedule shapes the message sequence; jitter/reorder stay at defaults.
  cfg.perturb = perturb_with_seed(2);
  cfg.perturb.duplicate_prob = 1.0;
  DsmSystem dsm(cfg);
  auto data = dsm.alloc_page_aligned<long>(512);
  for (int i = 0; i < 512; ++i) data[i] = 0;
  dsm.parallel([&](Rank r) {
    for (int it = 0; it < 10; ++it) {
      for (int i = 0; i < 128; ++i) {
        const int idx = static_cast<int>(r) * 128 + i;
        data[idx] = data[idx] + i + it;
      }
      dsm.barrier();
    }
  });
  const StatsSnapshot live = dsm.stats();
  const StatsSnapshot rebuilt =
      trace::reconstruct_counters(dsm.tracer()->snapshot_events());
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
    EXPECT_EQ(rebuilt.v[c], live.v[c])
        << "counter " << counter_name(static_cast<Counter>(c));
  // And at least one event carries the injected-duplicate marker.
  bool saw_perturbed = false;
  for (const auto& e : dsm.tracer()->events())
    if (e.flags & trace::kFlagPerturbed) saw_perturbed = true;
  EXPECT_TRUE(saw_perturbed);
}

} // namespace
} // namespace omsp::tmk
