// Mini-MPI correctness: point-to-point matching, every collective, traffic
// accounting split into total vs off-node.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "../common/env_guard.hpp"
#include "mpi/mpi.hpp"

namespace omsp::mpi {
namespace {

MpiWorld make_world(std::uint32_t nodes = 2, std::uint32_t ppn = 2) {
  return MpiWorld(sim::Topology(nodes, ppn), sim::CostModel::zero());
}

TEST(Mpi, SendRecvPingPong) {
  auto w = make_world();
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int x = 42;
      c.send(1, 7, &x, sizeof(x));
      int y = 0;
      c.recv(1, 8, &y, sizeof(y));
      EXPECT_EQ(y, 43);
    } else if (c.rank() == 1) {
      int x = 0;
      c.recv(0, 7, &x, sizeof(x));
      c.send(0, 8, &(++x), sizeof(x));
    }
  });
}

TEST(Mpi, TagMatchingOutOfOrder) {
  auto w = make_world();
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int a = 1, b = 2;
      c.send(1, 100, &a, sizeof(a));
      c.send(1, 200, &b, sizeof(b));
    } else if (c.rank() == 1) {
      int v = 0;
      c.recv(0, 200, &v, sizeof(v)); // match the second message first
      EXPECT_EQ(v, 2);
      c.recv(0, 100, &v, sizeof(v));
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Mpi, AnySourceReceivesAll) {
  auto w = make_world();
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int sum = 0;
      for (int i = 1; i < c.size(); ++i) {
        int v = 0;
        int src = -1;
        c.recv(kAnySource, 5, &v, sizeof(v), &src);
        EXPECT_EQ(v, src * 10);
        sum += v;
      }
      EXPECT_EQ(sum, 10 + 20 + 30);
    } else {
      int v = c.rank() * 10;
      c.send(0, 5, &v, sizeof(v));
    }
  });
}

TEST(Mpi, BarrierSynchronizes) {
  auto w = make_world();
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  w.run([&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != c.size()) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

class MpiCollective : public ::testing::TestWithParam<int> {};

TEST_P(MpiCollective, BcastFromEveryRoot) {
  auto w = make_world();
  const int root = GetParam();
  w.run([&](Comm& c) {
    std::vector<double> buf(64, 0.0);
    if (c.rank() == root)
      for (int i = 0; i < 64; ++i) buf[i] = root * 100.0 + i;
    c.bcast(root, buf.data(), buf.size() * sizeof(double));
    for (int i = 0; i < 64; ++i) ASSERT_DOUBLE_EQ(buf[i], root * 100.0 + i);
  });
}

TEST_P(MpiCollective, ReduceSumToEveryRoot) {
  auto w = make_world();
  const int root = GetParam();
  w.run([&](Comm& c) {
    std::vector<long> v(10);
    for (int i = 0; i < 10; ++i) v[i] = c.rank() * 10 + i;
    c.reduce(root, v.data(), v.size(), std::plus<long>{});
    if (c.rank() == root) {
      // sum over ranks r of (10r + i) = 10*sum(r) + p*i
      const long p = c.size();
      const long rsum = p * (p - 1) / 2;
      for (int i = 0; i < 10; ++i) ASSERT_EQ(v[i], 10 * rsum + p * i);
    }
  });
}

TEST_P(MpiCollective, GatherToEveryRoot) {
  auto w = make_world();
  const int root = GetParam();
  w.run([&](Comm& c) {
    std::array<int, 3> mine{c.rank(), c.rank() * 2, c.rank() * 3};
    std::vector<int> all(3 * c.size(), -1);
    c.gather(root, mine.data(), all.data(), 3);
    if (c.rank() == root) {
      for (int r = 0; r < c.size(); ++r)
        for (int k = 0; k < 3; ++k) ASSERT_EQ(all[r * 3 + k], r * (k + 1));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Roots, MpiCollective, ::testing::Values(0, 1, 2, 3));

TEST(Mpi, Allreduce) {
  auto w = make_world();
  w.run([](Comm& c) {
    double v = static_cast<double>(c.rank() + 1);
    c.allreduce(&v, 1, std::plus<double>{});
    EXPECT_DOUBLE_EQ(v, 10.0); // 1+2+3+4
  });
}

TEST(Mpi, AllreduceMax) {
  auto w = make_world();
  w.run([](Comm& c) {
    int v = (c.rank() * 37) % 11;
    c.allreduce(&v, 1, [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(v, std::max({0, 37 % 11, 74 % 11, 111 % 11}));
  });
}

TEST(Mpi, Alltoall) {
  auto w = make_world();
  w.run([](Comm& c) {
    const int p = c.size();
    std::vector<int> send(p * 2), recvd(p * 2, -1);
    for (int d = 0; d < p; ++d) {
      send[d * 2] = c.rank() * 100 + d;
      send[d * 2 + 1] = c.rank() * 100 + d + 50;
    }
    c.alltoall(send.data(), recvd.data(), 2);
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(recvd[s * 2], s * 100 + c.rank());
      ASSERT_EQ(recvd[s * 2 + 1], s * 100 + c.rank() + 50);
    }
  });
}

TEST(Mpi, Allgather) {
  auto w = make_world();
  w.run([](Comm& c) {
    double mine = c.rank() * 1.5;
    std::vector<double> all(c.size(), -1);
    c.allgather(&mine, all.data(), 1);
    for (int r = 0; r < c.size(); ++r) ASSERT_DOUBLE_EQ(all[r], r * 1.5);
  });
}

TEST(Mpi, TrafficSplitsOffNode) {
  // Topology (2 nodes x 2 procs): rank 0->1 intra-node, rank 0->2 inter-node.
  auto w = make_world();
  w.reset_stats();
  w.run([](Comm& c) {
    char b = 0;
    if (c.rank() == 0) {
      c.send(1, 1, &b, 1);
      c.send(2, 1, &b, 1);
    }
    if (c.rank() == 1) c.recv(0, 1, &b, 1);
    if (c.rank() == 2) c.recv(0, 1, &b, 1);
  });
  auto s = w.stats();
  EXPECT_EQ(s[Counter::kMsgsSent], 2u);
  EXPECT_EQ(s[Counter::kMsgsOffNode], 1u);
  EXPECT_GT(s[Counter::kBytesSent], s[Counter::kBytesOffNode]);
}

TEST(Mpi, MakespanReflectsCommunication) {
  MpiWorld w(sim::Topology(2, 1), sim::CostModel::sp2_default());
  w.run([](Comm& c) {
    std::vector<char> big(100000);
    if (c.rank() == 0) c.send(1, 1, big.data(), big.size());
    if (c.rank() == 1) c.recv(0, 1, big.data(), big.size());
  });
  // 100 KB at 35 B/us is ~2.9 ms plus latency.
  EXPECT_GT(w.makespan_us(), 2800.0);
}

TEST(Mpi, LargerWorldCollectives) {
  MpiWorld w(sim::Topology(4, 4), sim::CostModel::zero());
  w.run([](Comm& c) {
    long v = c.rank();
    c.allreduce(&v, 1, std::plus<long>{});
    EXPECT_EQ(v, 120); // 0+..+15
    c.barrier();
    std::vector<long> all(c.size());
    long mine = c.rank() * c.rank();
    c.allgather(&mine, all.data(), 1);
    for (int r = 0; r < c.size(); ++r) ASSERT_EQ(all[r], long{r} * r);
  });
}

} // namespace
} // namespace omsp::mpi

namespace omsp::mpi {
namespace {

TEST(MpiNonblocking, IrecvWaitMatches) {
  MpiWorld w(sim::Topology(2, 2), sim::CostModel::zero());
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int payload = 99;
      auto s = c.isend(1, 42, &payload, sizeof(payload));
      c.wait(s);
    } else if (c.rank() == 1) {
      int out = 0;
      auto r = c.irecv(0, 42, &out, sizeof(out));
      EXPECT_EQ(c.wait(r), sizeof(int));
      EXPECT_EQ(out, 99);
    }
  });
}

TEST(MpiNonblocking, WaitallDrainsSeveral) {
  MpiWorld w(sim::Topology(2, 2), sim::CostModel::zero());
  w.run([](Comm& c) {
    constexpr int kN = 5;
    if (c.rank() == 2) {
      for (int i = 0; i < kN; ++i) {
        int v = i * 3;
        c.send(3, 10 + i, &v, sizeof(v));
      }
    } else if (c.rank() == 3) {
      std::vector<int> vals(kN, -1);
      std::vector<Comm::Request> reqs;
      for (int i = 0; i < kN; ++i)
        reqs.push_back(c.irecv(2, 10 + i, &vals[i], sizeof(int)));
      c.waitall(reqs);
      for (int i = 0; i < kN; ++i) EXPECT_EQ(vals[i], i * 3);
    }
  });
}

TEST(MpiCollectiveExtra, ScatterDistributesBlocks) {
  MpiWorld w(sim::Topology(2, 2), sim::CostModel::zero());
  w.run([](Comm& c) {
    std::vector<int> all(c.size() * 2);
    for (int i = 0; i < c.size() * 2; ++i) all[i] = i * 7;
    std::array<int, 2> mine{-1, -1};
    c.scatter(1, all.data(), mine.data(), 2);
    EXPECT_EQ(mine[0], c.rank() * 2 * 7);
    EXPECT_EQ(mine[1], (c.rank() * 2 + 1) * 7);
  });
}

TEST(MpiCollectiveExtra, InclusiveScan) {
  MpiWorld w(sim::Topology(2, 2), sim::CostModel::zero());
  w.run([](Comm& c) {
    long v = c.rank() + 1; // 1, 2, 3, 4
    long out = 0;
    c.scan(&v, &out, 1, std::plus<long>{});
    long expect = 0;
    for (int r = 0; r <= c.rank(); ++r) expect += r + 1;
    EXPECT_EQ(out, expect);
  });
}

} // namespace
} // namespace omsp::mpi

namespace omsp::mpi {
namespace {

TEST(MpiCollectiveExtra, AlltoallvVariableBlocks) {
  MpiWorld w(sim::Topology(2, 2), sim::CostModel::zero());
  w.run([](Comm& c) {
    const int p = c.size();
    // Rank r sends (d + 1) ints to destination d: value = r*100 + d.
    std::vector<std::size_t> send_counts(p), send_offsets(p);
    std::vector<std::size_t> recv_counts(p), recv_offsets(p);
    std::size_t off = 0;
    for (int d = 0; d < p; ++d) {
      send_counts[d] = static_cast<std::size_t>(d + 1);
      send_offsets[d] = off;
      off += send_counts[d];
    }
    std::vector<int> send_buf(off);
    for (int d = 0; d < p; ++d)
      for (std::size_t k = 0; k < send_counts[d]; ++k)
        send_buf[send_offsets[d] + k] = c.rank() * 100 + d;
    // Everyone receives (me + 1) ints from each source.
    off = 0;
    for (int s = 0; s < p; ++s) {
      recv_counts[s] = static_cast<std::size_t>(c.rank() + 1);
      recv_offsets[s] = off;
      off += recv_counts[s];
    }
    std::vector<int> recv_buf(off, -1);
    c.alltoallv(send_buf.data(), send_counts.data(), send_offsets.data(),
                recv_buf.data(), recv_counts.data(), recv_offsets.data());
    for (int s = 0; s < p; ++s)
      for (std::size_t k = 0; k < recv_counts[s]; ++k)
        ASSERT_EQ(recv_buf[recv_offsets[s] + k], s * 100 + c.rank());
  });
}

TEST(MpiTopology, SpineHopsCostMoreThanFlat) {
  // Same program, same traffic, two machine shapes with 4 single-proc
  // nodes: a flat crossbar and a 2-level fat tree (2 nodes per edge
  // switch). Rank 0 -> 3 crosses the spine only in the fat tree, so its
  // makespan must be strictly larger; counters are shape-independent.
  // cpu_scale = 0: with host CPU folded into the clock the topology delta
  // (a few ms) would drown in scheduler noise.
  sim::CostModel m = sim::CostModel::sp2_default();
  m.cpu_scale = 0;
  auto run_shape = [&m](const sim::Topology& topo) {
    MpiWorld w(topo, m);
    w.run([](Comm& c) {
      std::vector<char> big(100000);
      if (c.rank() == 0) c.send(3, 1, big.data(), big.size());
      if (c.rank() == 3) c.recv(0, 1, big.data(), big.size());
    });
    return std::make_pair(w.makespan_us(), w.stats()[Counter::kMsgsOffNode]);
  };
  const auto [flat_us, flat_msgs] = run_shape(sim::Topology::flat_switch(4, 1));
  const auto [fat_us, fat_msgs] = run_shape(sim::Topology::fat_tree(2, 2, 1));
  EXPECT_EQ(flat_msgs, 1u);
  EXPECT_EQ(fat_msgs, 1u);
  EXPECT_GT(fat_us, flat_us);
  // The surcharge is exactly one extra edge hop plus the spine stage.
  const std::size_t wire = 100000 + net::kHeaderBytes;
  EXPECT_DOUBLE_EQ(
      fat_us - flat_us,
      sim::Topology::fat_tree(2, 2, 1).message_us(m, wire, 0, 3) -
          m.message_us(wire, false));
}

TEST(MpiTopology, EdgeLocalTrafficMatchesFlatCost) {
  // Within one edge group the fat tree prices messages exactly like the
  // flat switch (the edge tier inherits the net pair). cpu_scale = 0 so the
  // makespans are exact model outputs, comparable with EXPECT_DOUBLE_EQ.
  sim::CostModel m = sim::CostModel::sp2_default();
  m.cpu_scale = 0;
  auto run_shape = [&m](const sim::Topology& topo) {
    MpiWorld w(topo, m);
    w.run([](Comm& c) {
      std::vector<char> big(50000);
      if (c.rank() == 0) c.send(1, 1, big.data(), big.size());
      if (c.rank() == 1) c.recv(0, 1, big.data(), big.size());
    });
    return w.makespan_us();
  };
  EXPECT_DOUBLE_EQ(run_shape(sim::Topology::flat_switch(4, 1)),
                   run_shape(sim::Topology::fat_tree(2, 2, 1)));
}

TEST(MpiTopology, AsymmetricNodesClassifyTraffic) {
  // asym:2+1 -> ranks {0,1} on node 0, rank 2 alone on node 1.
  MpiWorld w(sim::Topology::asymmetric({2, 1}), sim::CostModel::zero());
  w.run([](Comm& c) {
    char b = 0;
    if (c.rank() == 0) {
      c.send(1, 1, &b, 1);
      c.send(2, 1, &b, 1);
    }
    if (c.rank() == 1) c.recv(0, 1, &b, 1);
    if (c.rank() == 2) c.recv(0, 1, &b, 1);
  });
  auto s = w.stats();
  EXPECT_EQ(s[Counter::kMsgsSent], 2u);
  EXPECT_EQ(s[Counter::kMsgsOffNode], 1u);
}

TEST(MpiColl, FusedAllreduceFlatExactCost) {
  // The fused flat allreduce is one star traversal each way: leaves send at
  // t=0, the root absorbs the last arrival at h, combines, and fans the
  // result back out — every rank finishes at exactly 2h. The old
  // reduce-then-bcast chained two binomial trees (2 * ceil(log2 p) = 4
  // dependent hops for p=4), so this pins the latency halving.
  const test::ScopedEnvClear env_guard; // CI matrices export OMSP_COLL
  sim::CostModel m = sim::CostModel::sp2_default();
  m.cpu_scale = 0; // makespan is a pure model output
  const auto topo = sim::Topology::flat_switch(4, 1);
  const double h =
      topo.message_us(m, sizeof(double) + net::kHeaderBytes, 0, 1);
  MpiWorld w(topo, m);
  w.run([](Comm& c) {
    double v = static_cast<double>(c.rank() + 1);
    c.allreduce(&v, 1, std::plus<double>{});
    EXPECT_DOUBLE_EQ(v, 10.0);
  });
  EXPECT_DOUBLE_EQ(w.makespan_us(), 2 * h);
  // Star both ways: 2 * (p - 1) messages, same count as reduce + bcast.
  EXPECT_EQ(w.stats()[Counter::kMsgsSent], 6u);
}

TEST(MpiColl, TreeCollectivesMatchValues) {
  // Every rewired collective must agree with the flat algorithms bit-for-bit
  // on values; flat_max_bytes = 0 forces the hierarchy for every payload.
  const test::ScopedEnvClear env_guard;
  coll::Options opts;
  opts.tree = true;
  opts.flat_max_bytes = 0;
  MpiWorld w(sim::Topology::fat_tree(2, 2, 2), sim::CostModel::zero());
  w.set_coll(opts);
  w.run([](Comm& c) {
    const int p = c.size();
    c.barrier();

    std::vector<double> buf(64, 0.0);
    if (c.rank() == 3)
      for (int i = 0; i < 64; ++i) buf[i] = 300.0 + i;
    c.bcast(3, buf.data(), buf.size() * sizeof(double));
    for (int i = 0; i < 64; ++i) ASSERT_DOUBLE_EQ(buf[i], 300.0 + i);

    std::vector<long> v(10);
    for (int i = 0; i < 10; ++i) v[i] = c.rank() * 10 + i;
    c.reduce(2, v.data(), v.size(), std::plus<long>{});
    if (c.rank() == 2) {
      const long rsum = long{p} * (p - 1) / 2;
      for (int i = 0; i < 10; ++i) ASSERT_EQ(v[i], 10 * rsum + p * i);
    }

    long a = c.rank() + 1;
    c.allreduce(&a, 1, std::plus<long>{});
    EXPECT_EQ(a, long{p} * (p + 1) / 2);

    std::vector<long> all(p, -1);
    long mine = long{c.rank()} * c.rank();
    c.allgather(&mine, all.data(), 1);
    for (int r = 0; r < p; ++r) ASSERT_EQ(all[r], long{r} * r);
  });
}

TEST(MpiColl, TreeBcastSegmentsLargePayload) {
  // Payloads above flat_max_bytes take the hierarchy in segment_bytes
  // slices; the reassembled buffer must be intact on every rank.
  const test::ScopedEnvClear env_guard;
  coll::Options opts;
  opts.tree = true;
  opts.flat_max_bytes = 1024;
  opts.segment_bytes = 4096;
  MpiWorld w(sim::Topology::fat_tree(2, 2, 2), sim::CostModel::zero());
  w.set_coll(opts);
  w.run([](Comm& c) {
    std::vector<int> buf(25000, -1); // 100 KB: 25 segments
    if (c.rank() == 5)
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<int>(i * 3);
    c.bcast(5, buf.data(), buf.size() * sizeof(int));
    for (std::size_t i = 0; i < buf.size(); ++i)
      ASSERT_EQ(buf[i], static_cast<int>(i * 3));
  });
}

TEST(MpiColl, TreeBarrierBeatsDisseminationOnFatTree) {
  // 32 ranks on fat:2x4x2: dissemination chains ceil(log2 32) = 5 rounds of
  // mostly spine-crossing exchanges; the hierarchical barrier crosses the
  // spine once up and once down. Strictly cheaper in modeled time.
  const test::ScopedEnvClear env_guard;
  sim::CostModel m = sim::CostModel::sp2_default();
  m.cpu_scale = 0;
  auto barrier_us = [&m](bool tree) {
    MpiWorld w(sim::Topology::fat_tree(2, 4, 2), m);
    coll::Options opts;
    opts.tree = tree;
    w.set_coll(opts);
    w.run([](Comm& c) { c.barrier(); });
    return w.makespan_us();
  };
  const double central = barrier_us(false);
  const double tree = barrier_us(true);
  EXPECT_LT(tree, central);
}

TEST(MpiColl, CollStageCountersGatedByMode) {
  // Central mode keeps the seed counter stream untouched; tree mode emits
  // one kCollStages tick (and the wire bytes) per schedule edge message.
  const test::ScopedEnvClear env_guard;
  auto run_mode = [](bool tree) {
    coll::Options opts;
    opts.tree = tree;
    opts.flat_max_bytes = 0;
    MpiWorld w(sim::Topology::fat_tree(2, 2, 2), sim::CostModel::zero());
    w.set_coll(opts);
    w.run([](Comm& c) {
      long v = c.rank();
      c.allreduce(&v, 1, std::plus<long>{});
    });
    return w.stats();
  };
  const auto central = run_mode(false);
  EXPECT_EQ(central[Counter::kCollStages], 0u);
  EXPECT_EQ(central[Counter::kCollBytes], 0u);
  const auto tree = run_mode(true);
  // Fused tree allreduce: p - 1 = 7 edges up, 7 down.
  EXPECT_EQ(tree[Counter::kCollStages], 14u);
  EXPECT_GT(tree[Counter::kCollBytes], 14u * net::kHeaderBytes);
}

TEST(MpiLoss, SeededLossDeterministicMakespan) {
  // Loss-only fault injection over named-source traffic: per-link split RNG
  // streams make the retransmit schedule — and therefore the makespan — a
  // pure function of the seed. Two worlds, same seed: bit-identical.
  auto run_seeded = [](std::uint64_t seed) {
    net::PerturbOptions po;
    po.enabled = true;
    po.seed = seed;
    po.jitter_max_us = 0;
    po.duplicate_prob = 0;
    po.reorder_prob = 0;
    po.loss_prob = 0.25;
    sim::CostModel m = sim::CostModel::sp2_default();
    m.cpu_scale = 0; // keep the makespan a pure function of the seed
    MpiWorld w(sim::Topology::flat_switch(4, 2), m, po);
    w.run([](Comm& c) {
      // Ring of named sendrecvs: every link carries traffic.
      const int p = c.size();
      std::uint32_t tok = static_cast<std::uint32_t>(c.rank());
      for (int i = 0; i < 4; ++i)
        c.sendrecv((c.rank() + 1) % p, 5, &tok, sizeof(tok),
                   (c.rank() + p - 1) % p, 5, &tok, sizeof(tok));
    });
    return std::make_pair(w.makespan_us(), w.stats()[Counter::kRetransmits]);
  };
  const auto [t1, r1] = run_seeded(7);
  const auto [t2, r2] = run_seeded(7);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(r1, 0u); // p=0.25 over 64+ deliveries: losses occur
}

TEST(MpiLoss, DropFirstForcesRetransmitOnEveryExchange) {
  net::PerturbOptions po;
  po.enabled = true;
  po.jitter_max_us = 0;
  po.duplicate_prob = 0;
  po.reorder_prob = 0;
  po.drop_first = true;
  MpiWorld w(sim::Topology(2, 1), sim::CostModel::sp2_default(), po);
  w.run([](Comm& c) {
    char b = 0;
    if (c.rank() == 0) c.send(1, 1, &b, 1);
    if (c.rank() == 1) c.recv(0, 1, &b, 1);
  });
  // drop_first drops the first copy in EACH direction: the notice itself
  // (retransmitted after one RTO) and then the first ack (the sender times
  // out again; the receiver suppresses the duplicate notice and re-acks).
  auto s = w.stats();
  EXPECT_EQ(s[Counter::kMsgsLost], 2u);
  EXPECT_EQ(s[Counter::kRetransmits], 2u);
  EXPECT_EQ(s[Counter::kAcksSent], 2u);
  EXPECT_GE(w.makespan_us(), sim::CostModel::sp2_default().rto_us);
}

} // namespace
} // namespace omsp::mpi
