// Tests that compare a reference run against a feature run (or one run
// against another) rely on the reference really being the seed
// configuration. The CI matrix exports OMSP_OVERLAP=1 / OMSP_PERTURB_SEED=<n>,
// which DsmSystem consults whenever the Config leaves the feature off —
// silently flipping the reference run. Instantiate a ScopedEnvClear to
// neutralize the overrides for the test's scope; the destructor restores
// the outer values.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace omsp::test {

class ScopedEnvClear {
public:
  ScopedEnvClear() {
    for (const char* n : {"OMSP_OVERLAP", "OMSP_OVERLAP_FETCH",
                          "OMSP_OVERLAP_PREFETCH", "OMSP_PERTURB_SEED",
                          "OMSP_LOSS_PROB", "OMSP_COLL", "OMSP_ZEROCOPY",
                          "OMSP_RACE", "OMSP_TOPOLOGY"}) {
      const char* v = std::getenv(n);
      saved_.emplace_back(n, v != nullptr ? std::optional<std::string>(v)
                                          : std::nullopt);
      ::unsetenv(n);
    }
  }
  ~ScopedEnvClear() {
    for (const auto& [n, v] : saved_) {
      if (v.has_value()) ::setenv(n.c_str(), v->c_str(), 1);
      else ::unsetenv(n.c_str());
    }
  }
  ScopedEnvClear(const ScopedEnvClear&) = delete;
  ScopedEnvClear& operator=(const ScopedEnvClear&) = delete;

private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

} // namespace omsp::test
