#include <gtest/gtest.h>

#include <thread>

#include "common/stats.hpp"

namespace omsp {
namespace {

TEST(Stats, AddAndGet) {
  StatsBoard b;
  EXPECT_EQ(b.get(Counter::kMsgsSent), 0u);
  b.add(Counter::kMsgsSent);
  b.add(Counter::kBytesSent, 100);
  b.add(Counter::kBytesSent, 23);
  EXPECT_EQ(b.get(Counter::kMsgsSent), 1u);
  EXPECT_EQ(b.get(Counter::kBytesSent), 123u);
}

TEST(Stats, ResetZeroes) {
  StatsBoard b;
  b.add(Counter::kDiffsCreated, 5);
  b.reset();
  EXPECT_EQ(b.get(Counter::kDiffsCreated), 0u);
}

TEST(Stats, ConcurrentIncrementsAreLossFree) {
  StatsBoard b;
  constexpr int kThreads = 8, kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) b.add(Counter::kPageFaults);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(b.get(Counter::kPageFaults),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Stats, SnapshotAccumulates) {
  StatsBoard a, b;
  a.add(Counter::kTwins, 3);
  b.add(Counter::kTwins, 4);
  StatsSnapshot s;
  a.accumulate(s.v);
  b.accumulate(s.v);
  EXPECT_EQ(s[Counter::kTwins], 7u);
}

TEST(Stats, SnapshotArithmetic) {
  StatsSnapshot a, b;
  a[Counter::kBytesSent] = 1024 * 1024;
  b[Counter::kBytesSent] = 512 * 1024;
  b[Counter::kBytesOffNode] = 512 * 1024;
  a += b;
  EXPECT_DOUBLE_EQ(a.data_mbytes(), 1.5);
  EXPECT_DOUBLE_EQ(a.offnode_mbytes(), 0.5);
}

TEST(Stats, EveryCounterHasAName) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount); ++i) {
    const char* name = counter_name(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

} // namespace
} // namespace omsp
