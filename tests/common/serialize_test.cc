#include <gtest/gtest.h>

#include <cstring>

#include "common/serialize.hpp"

namespace omsp {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  ByteWriter w;
  w.put<std::uint8_t>(7);
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<std::int64_t>(-42);
  w.put<double>(3.25);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, SpanRoundTrip) {
  std::vector<std::uint32_t> values{1, 2, 3, 5, 8, 13};
  ByteWriter w;
  w.put_span<std::uint32_t>({values.data(), values.size()});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_span<std::uint32_t>(), values);
}

TEST(Serialize, EmptySpan) {
  ByteWriter w;
  w.put_span<std::uint64_t>({});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_span<std::uint64_t>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  w.put_string(std::string("with\0nul", 8));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("with\0nul", 8));
}

TEST(Serialize, MixedSequence) {
  ByteWriter w;
  for (int i = 0; i < 100; ++i) {
    w.put<std::uint16_t>(static_cast<std::uint16_t>(i));
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(i % 17),
                                   static_cast<std::uint8_t>(i));
    w.put_span<std::uint8_t>({blob.data(), blob.size()});
  }
  ByteReader r(w.bytes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.get<std::uint16_t>(), i);
    const auto blob = r.get_span<std::uint8_t>();
    ASSERT_EQ(blob.size(), static_cast<std::size_t>(i % 17));
    for (auto b : blob) EXPECT_EQ(b, static_cast<std::uint8_t>(i));
  }
  EXPECT_TRUE(r.done());
}

TEST(Serialize, ViewBytesBorrows) {
  ByteWriter w;
  w.put<std::uint32_t>(4);
  w.put_bytes("abcd", 4);
  ByteReader r(w.bytes());
  (void)r.get<std::uint32_t>();
  auto view = r.view_bytes(4);
  EXPECT_EQ(std::memcmp(view.data(), "abcd", 4), 0);
  EXPECT_TRUE(r.done());
}

TEST(SerializeDeath, UnderflowAborts) {
  ByteWriter w;
  w.put<std::uint16_t>(1);
  ByteReader r(w.bytes());
  (void)r.get<std::uint16_t>();
  EXPECT_DEATH((void)r.get<std::uint32_t>(), "underflow");
}

} // namespace
} // namespace omsp
