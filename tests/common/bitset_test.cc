#include <gtest/gtest.h>

#include <set>

#include "common/bitset.hpp"
#include "common/rng.hpp"

namespace omsp {
namespace {

TEST(Bitset, SetTestReset) {
  DynamicBitset b(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, ClearEmptiesEverything) {
  DynamicBitset b(130);
  for (std::size_t i = 0; i < 130; i += 3) b.set(i);
  EXPECT_TRUE(b.any());
  b.clear();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitset, ForEachVisitsAscendingExactly) {
  DynamicBitset b(500);
  std::set<std::size_t> expected;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto idx = rng.next_below(500);
    b.set(idx);
    expected.insert(idx);
  }
  std::vector<std::size_t> visited;
  b.for_each_set([&](std::size_t i) { visited.push_back(i); });
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  EXPECT_EQ(std::set<std::size_t>(visited.begin(), visited.end()), expected);
}

TEST(Bitset, ResizeResets) {
  DynamicBitset b(64);
  b.set(10);
  b.resize(128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_FALSE(b.any());
}

TEST(Bitset, RandomizedAgainstReference) {
  DynamicBitset b(317);
  std::set<std::size_t> ref;
  Rng rng(99);
  for (int step = 0; step < 3000; ++step) {
    const auto idx = rng.next_below(317);
    if (rng.next_bool()) {
      b.set(idx);
      ref.insert(idx);
    } else {
      b.reset(idx);
      ref.erase(idx);
    }
    if (step % 250 == 0) {
      ASSERT_EQ(b.count(), ref.size());
      for (std::size_t i = 0; i < 317; ++i)
        ASSERT_EQ(b.test(i), ref.count(i) > 0) << i;
    }
  }
}

} // namespace
} // namespace omsp
