#include <gtest/gtest.h>

#include "common/mathutil.hpp"

namespace omsp {
namespace {

TEST(MathUtil, Rounding) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
  EXPECT_EQ(round_down(9, 8), 8u);
  EXPECT_EQ(round_down(8, 8), 8u);
  EXPECT_EQ(round_down(7, 8), 0u);
}

TEST(MathUtil, Pow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(MathUtil, BlockPartitionCoversExactly) {
  for (std::uint64_t n : {0ull, 1ull, 7ull, 16ull, 17ull, 1000ull}) {
    for (std::uint32_t workers : {1u, 2u, 3u, 16u}) {
      std::uint64_t covered = 0;
      std::uint64_t prev_end = 0;
      for (std::uint32_t w = 0; w < workers; ++w) {
        const auto r = block_partition(n, workers, w);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.begin, r.end);
        covered += r.end - r.begin;
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(MathUtil, BlockPartitionBalanced) {
  // Sizes differ by at most one.
  const auto a = block_partition(10, 3, 0);
  const auto b = block_partition(10, 3, 1);
  const auto c = block_partition(10, 3, 2);
  const auto len = [](BlockRange r) { return r.end - r.begin; };
  EXPECT_EQ(len(a) + len(b) + len(c), 10u);
  EXPECT_LE(len(a) - len(c), 1u);
}

} // namespace
} // namespace omsp
