#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace omsp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, RangedDouble) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(42);
  Rng s0 = base.split(0), s1 = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0.next_u64() == s1.next_u64()) ++same;
  EXPECT_LT(same, 2);
  // Splitting again with the same index reproduces the stream.
  Rng s0b = base.split(0);
  Rng s0c = base.split(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s0b.next_u64(), s0c.next_u64());
}

TEST(Rng, BoolRoughlyFair) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool() ? 1 : 0;
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

} // namespace
} // namespace omsp
