// Pure-function tests for the loop schedules (chunk enumeration invariants).
#include <gtest/gtest.h>

#include <set>

#include "core/schedule.hpp"

namespace omsp::core {
namespace {

// Collect every iteration thread `tid` executes under a static schedule.
std::vector<std::int64_t> iterations(std::int64_t lo, std::int64_t hi,
                                     std::int64_t chunk, std::uint32_t tid,
                                     std::uint32_t nthreads) {
  std::vector<std::int64_t> out;
  static_chunks(lo, hi, chunk, tid, nthreads,
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i) out.push_back(i);
                });
  return out;
}

TEST(StaticSchedule, BlockPartitionExactCover) {
  for (std::uint32_t nt : {1u, 3u, 4u, 16u}) {
    std::set<std::int64_t> seen;
    for (std::uint32_t t = 0; t < nt; ++t)
      for (auto i : iterations(-5, 100, 0, t, nt)) {
        EXPECT_TRUE(seen.insert(i).second) << "duplicate " << i;
      }
    EXPECT_EQ(seen.size(), 105u);
    EXPECT_EQ(*seen.begin(), -5);
    EXPECT_EQ(*seen.rbegin(), 99);
  }
}

TEST(StaticSchedule, ChunkedRoundRobin) {
  // chunk=2, 3 threads over [0,12): t0 gets {0,1,6,7}, t1 {2,3,8,9}, ...
  EXPECT_EQ(iterations(0, 12, 2, 0, 3),
            (std::vector<std::int64_t>{0, 1, 6, 7}));
  EXPECT_EQ(iterations(0, 12, 2, 1, 3),
            (std::vector<std::int64_t>{2, 3, 8, 9}));
  EXPECT_EQ(iterations(0, 12, 2, 2, 3),
            (std::vector<std::int64_t>{4, 5, 10, 11}));
}

TEST(StaticSchedule, ChunkedTailClipped) {
  // 10 iterations, chunk 4, 2 threads: the last chunk is short.
  std::set<std::int64_t> seen;
  for (std::uint32_t t = 0; t < 2; ++t)
    for (auto i : iterations(0, 10, 4, t, 2)) seen.insert(i);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(StaticSchedule, EmptyAndTinyRanges) {
  EXPECT_TRUE(iterations(5, 5, 0, 0, 4).empty());
  EXPECT_TRUE(iterations(5, 3, 0, 0, 4).empty());
  // One iteration, many threads: exactly one thread gets it.
  int holders = 0;
  for (std::uint32_t t = 0; t < 8; ++t)
    holders += iterations(7, 8, 0, t, 8).empty() ? 0 : 1;
  EXPECT_EQ(holders, 1);
}

TEST(StaticSchedule, CyclicChunkOneIsCyclic) {
  // The MGS schedule: chunk 1 deals single iterations round-robin.
  EXPECT_EQ(iterations(10, 18, 1, 0, 4),
            (std::vector<std::int64_t>{10, 14}));
  EXPECT_EQ(iterations(10, 18, 1, 3, 4),
            (std::vector<std::int64_t>{13, 17}));
}

TEST(GuidedSchedule, ChunksShrinkToMinimum) {
  std::int64_t remaining = 1000;
  std::int64_t prev = remaining;
  while (remaining > 0) {
    const auto c = guided_next_chunk(remaining, 4, 3);
    EXPECT_GE(c, 3);
    EXPECT_LE(c, prev);
    prev = c;
    remaining -= std::min(c, remaining);
  }
}

TEST(ScheduleFactories, Defaults) {
  EXPECT_EQ(Schedule::static_block().kind, ScheduleKind::kStatic);
  EXPECT_EQ(Schedule::static_block().chunk, 0);
  EXPECT_EQ(Schedule::dynamic().chunk, 1);
  EXPECT_EQ(Schedule::guided().chunk, 1);
  EXPECT_EQ(Schedule::static_chunked(9).chunk, 9);
}

} // namespace
} // namespace omsp::core
