// OpenMP runtime semantics: regions, worksharing schedules, single/master/
// sections, critical, reductions (scalar and array), threadprivate, nesting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "core/api.hpp"
#include "core/runtime.hpp"

namespace omsp::core {
namespace {

tmk::Config test_config(tmk::Mode mode = tmk::Mode::kThread) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = mode;
  cfg.heap_bytes = 2u << 20;
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

TEST(OmpRuntime, TeamIdentity) {
  OmpRuntime rt(test_config());
  std::atomic<std::uint32_t> seen{0};
  rt.parallel([&](Team& t) {
    EXPECT_EQ(t.num_threads(), 4u);
    EXPECT_EQ(omp_get_num_threads(), 4);
    EXPECT_EQ(omp_get_thread_num(), static_cast<int>(t.thread_num()));
    EXPECT_TRUE(omp_in_parallel());
    seen.fetch_add(1u << (4 * t.thread_num()));
  });
  EXPECT_FALSE(omp_in_parallel());
  EXPECT_EQ(seen.load(), 0x1111u); // each thread exactly once
}

TEST(OmpRuntime, NumThreadsClause) {
  OmpRuntime rt(test_config());
  std::atomic<int> members{0};
  rt.parallel([&](Team& t) {
    EXPECT_EQ(t.num_threads(), 2u);
    members.fetch_add(1);
  },
              2);
  EXPECT_EQ(members.load(), 2);
}

TEST(OmpRuntime, NestedParallelSerializes) {
  OmpRuntime rt(test_config());
  std::atomic<int> inner_runs{0};
  rt.parallel([&](Team& outer) {
    (void)outer;
    rt.parallel([&](Team& inner) {
      EXPECT_EQ(inner.num_threads(), 1u);
      EXPECT_EQ(inner.thread_num(), 0u);
      inner_runs.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_runs.load(), 4); // each outer thread ran it serially
}

class ScheduleCoverage : public ::testing::TestWithParam<Schedule> {};

TEST_P(ScheduleCoverage, EveryIterationExactlyOnce) {
  OmpRuntime rt(test_config());
  constexpr std::int64_t kN = 1000;
  auto hits = rt.alloc_page_aligned<int>(kN);
  for (std::int64_t i = 0; i < kN; ++i) hits[i] = 0;
  rt.parallel([&](Team& t) {
    t.for_loop(3, 3 + kN, GetParam(),
               [&](std::int64_t i) { hits[i - 3] = hits[i - 3] + 1; });
  });
  for (std::int64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ScheduleCoverage,
    ::testing::Values(Schedule::static_block(), Schedule::static_chunked(1),
                      Schedule::static_chunked(7), Schedule::dynamic(1),
                      Schedule::dynamic(13), Schedule::guided(1),
                      Schedule::guided(5)),
    [](const auto& info) {
      const Schedule& s = info.param;
      std::string name = s.kind == ScheduleKind::kStatic    ? "Static"
                         : s.kind == ScheduleKind::kDynamic ? "Dynamic"
                                                            : "Guided";
      return name + std::to_string(s.chunk);
    });

TEST(OmpRuntime, ParallelForShorthand) {
  OmpRuntime rt(test_config());
  constexpr std::int64_t kN = 512;
  auto a = rt.alloc<double>(kN);
  rt.parallel_for(0, kN, Schedule::static_block(),
                  [&](std::int64_t i) { a[i] = 2.0 * static_cast<double>(i); });
  for (std::int64_t i = 0; i < kN; ++i)
    ASSERT_DOUBLE_EQ(a[i], 2.0 * static_cast<double>(i));
}

TEST(OmpRuntime, CriticalIsMutuallyExclusive) {
  OmpRuntime rt(test_config());
  auto counter = rt.alloc<long>(1);
  *counter = 0;
  rt.parallel([&](Team& t) {
    for (int k = 0; k < 50; ++k)
      t.critical([&] { *counter = *counter + 1; });
  });
  EXPECT_EQ(*counter, 200);
}

TEST(OmpRuntime, NamedCriticalsAreIndependentLocks) {
  OmpRuntime rt(test_config());
  EXPECT_EQ(rt.critical_lock_id("a"), rt.critical_lock_id("a"));
  EXPECT_NE(rt.critical_lock_id("a"), rt.critical_lock_id("b"));
}

TEST(OmpRuntime, SingleRunsExactlyOnce) {
  OmpRuntime rt(test_config());
  std::atomic<int> runs{0};
  rt.parallel([&](Team& t) {
    for (int k = 0; k < 10; ++k) t.single([&] { runs.fetch_add(1); });
  });
  EXPECT_EQ(runs.load(), 10);
}

TEST(OmpRuntime, MasterRunsOnThreadZeroOnly) {
  OmpRuntime rt(test_config());
  std::atomic<int> runs{0};
  std::atomic<int> who{-1};
  rt.parallel([&](Team& t) {
    t.master([&] {
      runs.fetch_add(1);
      who.store(static_cast<int>(t.thread_num()));
    });
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(who.load(), 0);
}

TEST(OmpRuntime, SectionsCoverAllOnce) {
  OmpRuntime rt(test_config());
  std::array<std::atomic<int>, 6> runs{};
  rt.parallel([&](Team& t) {
    std::vector<std::function<void()>> secs;
    for (int s = 0; s < 6; ++s)
      secs.push_back([&runs, s] { runs[s].fetch_add(1); });
    t.sections(secs);
  });
  for (auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(OmpRuntime, ScalarReduction) {
  OmpRuntime rt(test_config());
  constexpr std::int64_t kN = 1000;
  auto data = rt.alloc<double>(kN);
  for (std::int64_t i = 0; i < kN; ++i) data[i] = static_cast<double>(i);
  std::atomic<double> result{0};
  rt.parallel([&](Team& t) {
    double local = 0;
    t.for_loop_nowait(0, kN, Schedule::static_block(),
                      [&](std::int64_t i) { local += data[i]; });
    const double total = t.reduce(local, std::plus<double>{});
    if (t.thread_num() == 0) result.store(total);
  });
  EXPECT_DOUBLE_EQ(result.load(), kN * (kN - 1) / 2.0);
}

TEST(OmpRuntime, MaxReduction) {
  OmpRuntime rt(test_config());
  std::atomic<int> result{0};
  rt.parallel([&](Team& t) {
    const int local = 10 + static_cast<int>(t.thread_num() * 7) % 23;
    const int m = t.reduce(local, [](int a, int b) { return std::max(a, b); });
    if (t.thread_num() == 0) result.store(m);
  });
  EXPECT_EQ(result.load(), 10 + 21);
}

TEST(OmpRuntime, ArrayReduction) {
  // The paper extends reductions to arrays (used by Water's force arrays).
  OmpRuntime rt(test_config());
  constexpr std::size_t kN = 300;
  auto dst = rt.alloc_page_aligned<double>(kN);
  rt.parallel([&](Team& t) {
    std::vector<double> local(kN);
    for (std::size_t i = 0; i < kN; ++i)
      local[i] = static_cast<double>(t.thread_num() + 1) * static_cast<double>(i);
    t.reduce_array(local.data(), dst, kN, std::plus<double>{});
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_DOUBLE_EQ(dst[i], 10.0 * static_cast<double>(i)); // (1+2+3+4)*i
}

TEST(OmpRuntime, ThreadPrivatePersistsAcrossRegions) {
  OmpRuntime rt(test_config());
  ThreadPrivate<int> tp(rt, 100);
  rt.parallel([&](Team& t) { tp.get(t) += static_cast<int>(t.thread_num()); });
  rt.parallel([&](Team& t) { tp.get(t) += 1; });
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(tp.get(i), 101 + static_cast<int>(i));
}

TEST(OmpRuntime, FlushPropagatesThroughLockChain) {
  OmpRuntime rt(test_config());
  auto flag = rt.alloc_page_aligned<int>(2);
  flag[0] = 0;
  rt.parallel([&](Team& t) {
    if (t.thread_num() == 1) {
      flag[0] = 7;
      t.flush();
    }
    t.barrier();
    if (t.thread_num() == 2) {
      const int got = flag[0];
      EXPECT_EQ(got, 7);
    }
  });
}

TEST(OmpRuntime, WtimeAdvancesWithWork) {
  tmk::Config cfg = test_config();
  cfg.cost = sim::CostModel::sp2_default();
  OmpRuntime rt(cfg);
  const double t0 = rt.wtime();
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  const double t1 = rt.wtime();
  EXPECT_GT(t1, t0);
}

TEST(OmpRuntime, OmpLocks) {
  OmpRuntime rt(test_config());
  OmpLockAllocator locks(rt);
  omp_lock_t l;
  locks.init(&l);
  auto counter = rt.alloc<long>(1);
  *counter = 0;
  rt.parallel([&](Team&) {
    for (int k = 0; k < 25; ++k) {
      locks.set(&l);
      *counter = *counter + 1;
      locks.unset(&l);
    }
  });
  EXPECT_EQ(*counter, 100);
  locks.destroy(&l);
}

} // namespace
} // namespace omsp::core

namespace omsp::core {
namespace {

tmk::Config env_cfg() {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  return cfg;
}

TEST(OmpEnv, SetNumThreadsControlsTeamSize) {
  OmpRuntime rt(env_cfg());
  rt.set_num_threads(3);
  std::atomic<int> members{0};
  rt.parallel([&](Team& t) {
    EXPECT_EQ(t.num_threads(), 3u);
    members.fetch_add(1);
  });
  EXPECT_EQ(members.load(), 3);
  // Explicit num_threads overrides the setting.
  members = 0;
  rt.parallel([&](Team&) { members.fetch_add(1); }, 2);
  EXPECT_EQ(members.load(), 2);
}

TEST(OmpEnv, OmpNumThreadsEnvRespected) {
  setenv("OMP_NUM_THREADS", "2", 1);
  OmpRuntime rt(env_cfg());
  unsetenv("OMP_NUM_THREADS");
  std::atomic<int> members{0};
  rt.parallel([&](Team&) { members.fetch_add(1); });
  EXPECT_EQ(members.load(), 2);
}

TEST(OmpEnv, OmpScheduleParsed) {
  setenv("OMP_SCHEDULE", "dynamic,4", 1);
  OmpRuntime rt(env_cfg());
  unsetenv("OMP_SCHEDULE");
  EXPECT_EQ(rt.runtime_schedule().kind, ScheduleKind::kDynamic);
  EXPECT_EQ(rt.runtime_schedule().chunk, 4);

  setenv("OMP_SCHEDULE", "guided", 1);
  OmpRuntime rt2(env_cfg());
  unsetenv("OMP_SCHEDULE");
  EXPECT_EQ(rt2.runtime_schedule().kind, ScheduleKind::kGuided);

  OmpRuntime rt3(env_cfg()); // unset -> static default
  EXPECT_EQ(rt3.runtime_schedule().kind, ScheduleKind::kStatic);
  EXPECT_EQ(rt3.runtime_schedule().chunk, 0);
}

TEST(OmpEnv, RuntimeScheduleUsableInLoops) {
  setenv("OMP_SCHEDULE", "static,5", 1);
  OmpRuntime rt(env_cfg());
  unsetenv("OMP_SCHEDULE");
  auto hits = rt.alloc_page_aligned<int>(100);
  for (int i = 0; i < 100; ++i) hits[i] = 0;
  rt.parallel([&](Team& t) {
    t.for_loop(0, 100, rt.runtime_schedule(),
               [&](std::int64_t i) { hits[i] = hits[i] + 1; });
  });
  for (int i = 0; i < 100; ++i) ASSERT_EQ(hits[i], 1);
}

} // namespace
} // namespace omsp::core

namespace omsp::core {
namespace {

TEST(OmpLocksExtra, TestLockNeverBlocks) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 1);
  cfg.cost = sim::CostModel::zero();
  OmpRuntime rt(cfg);
  OmpLockAllocator locks(rt);
  omp_lock_t l;
  locks.init(&l);
  auto order = rt.alloc_page_aligned<int>(1);
  *order = 0;
  rt.parallel([&](Team& t) {
    if (t.thread_num() == 0) {
      locks.set(&l);
      t.barrier();
      t.barrier();
      locks.unset(&l);
      t.barrier();
    } else {
      t.barrier();
      EXPECT_FALSE(locks.test(&l)); // held by thread 0
      t.barrier();
      t.barrier();
      EXPECT_TRUE(locks.test(&l)); // free now
      locks.unset(&l);
    }
  });
}

} // namespace
} // namespace omsp::core
