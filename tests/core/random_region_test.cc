// Randomized OpenMP-layer programs: sequences of parallel regions with
// random schedules, reductions and critical-section updates, validated
// against a sequential interpreter of the same plan. Complements the
// tmk-level random program test by exercising the worksharing and reduction
// machinery on top of the DSM.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/runtime.hpp"

namespace omsp::core {
namespace {

constexpr std::int64_t kCells = 1024;
constexpr long kMod = 1000003;

struct Phase {
  int kind;      // 0 = for-loop update, 1 = critical accumulate, 2 = reduce
  Schedule sched;
  long mul, add;
  std::uint32_t stride; // for-loop: update every stride-th cell
};

std::vector<Phase> make_plan(Rng& rng, int phases) {
  std::vector<Phase> plan;
  for (int i = 0; i < phases; ++i) {
    Phase ph{};
    ph.kind = static_cast<int>(rng.next_below(3));
    switch (rng.next_below(4)) {
    case 0: ph.sched = Schedule::static_block(); break;
    case 1: ph.sched = Schedule::static_chunked(1 + static_cast<std::int64_t>(rng.next_below(7))); break;
    case 2: ph.sched = Schedule::dynamic(1 + static_cast<std::int64_t>(rng.next_below(5))); break;
    default: ph.sched = Schedule::guided(1 + static_cast<std::int64_t>(rng.next_below(3))); break;
    }
    ph.mul = 1 + static_cast<long>(rng.next_below(4));
    ph.add = static_cast<long>(rng.next_below(100));
    ph.stride = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    plan.push_back(ph);
  }
  return plan;
}

struct Expected {
  std::vector<long> cells;
  long critical_total;
  long reduce_total;
};

Expected reference(const std::vector<Phase>& plan, std::uint32_t nprocs) {
  Expected e{std::vector<long>(kCells, 1), 0, 0};
  for (const auto& ph : plan) {
    switch (ph.kind) {
    case 0:
      for (std::int64_t i = 0; i < kCells; i += ph.stride)
        e.cells[i] = (e.cells[i] * ph.mul + ph.add) % kMod;
      break;
    case 1:
      // Each thread adds (ph.add + its id); commutative.
      for (std::uint32_t r = 0; r < nprocs; ++r)
        e.critical_total = (e.critical_total + ph.add + r) % kMod;
      break;
    case 2: {
      // Sum of cells, folded into the running reduce_total.
      long sum = 0;
      for (auto v : e.cells) sum = (sum + v) % kMod;
      e.reduce_total = (e.reduce_total + sum) % kMod;
      break;
    }
    }
  }
  return e;
}

class RandomRegionProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomRegionProgram, MatchesSequentialInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const auto plan = make_plan(rng, 10);

  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.cost = sim::CostModel::zero();
  OmpRuntime rt(cfg);
  const std::uint32_t np = rt.max_threads();
  const auto expect = reference(plan, np);

  auto cells = rt.alloc_page_aligned<long>(kCells);
  auto totals = rt.alloc_page_aligned<long>(2); // critical, reduce
  for (std::int64_t i = 0; i < kCells; ++i) cells[i] = 1;
  totals[0] = totals[1] = 0;

  for (const auto& ph : plan) {
    switch (ph.kind) {
    case 0:
      rt.parallel([&](Team& t) {
        t.for_loop(0, (kCells + ph.stride - 1) / ph.stride, ph.sched,
                   [&](std::int64_t k) {
                     const std::int64_t i = k * ph.stride;
                     cells[i] = (cells[i] * ph.mul + ph.add) % kMod;
                   });
      });
      break;
    case 1:
      rt.parallel([&](Team& t) {
        t.critical("acc", [&] {
          totals[0] = (totals[0] + ph.add +
                       static_cast<long>(t.thread_num())) %
                      kMod;
        });
      });
      break;
    case 2:
      rt.parallel([&](Team& t) {
        long local = 0;
        t.for_loop_nowait(0, kCells, Schedule::static_block(),
                          [&](std::int64_t i) {
                            local = (local + cells[i]) % kMod;
                          });
        const long sum = t.reduce(local, [](long a, long b) {
          return (a + b) % kMod;
        });
        if (t.thread_num() == 0) totals[1] = (totals[1] + sum) % kMod;
      });
      break;
    }
  }

  for (std::int64_t i = 0; i < kCells; ++i)
    ASSERT_EQ(cells[i], expect.cells[i]) << "cell " << i;
  EXPECT_EQ(totals[0], expect.critical_total);
  EXPECT_EQ(totals[1], expect.reduce_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegionProgram,
                         ::testing::Range(1, 9));

} // namespace
} // namespace omsp::core
