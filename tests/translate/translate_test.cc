// Translator tests: pragma parsing, source scanning, and end-to-end lowering
// of OpenMP constructs onto the omsp::core API.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "translate/codegen.hpp"
#include "translate/directive.hpp"
#include "translate/lint.hpp"
#include "translate/source.hpp"

namespace omsp::translate {
namespace {

// ------------------------------------------------------------- directives ----

TEST(DirectiveParse, ParallelWithClauses) {
  std::string err;
  auto d = parse_directive(
      " parallel shared(a, b) private(i) firstprivate(x) num_threads(8)",
      &err);
  ASSERT_TRUE(d) << err;
  EXPECT_EQ(d->kind, DirectiveKind::kParallel);
  EXPECT_EQ(d->shared_vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d->private_vars, (std::vector<std::string>{"i"}));
  EXPECT_EQ(d->firstprivate_vars, (std::vector<std::string>{"x"}));
  EXPECT_EQ(d->num_threads, "8");
}

TEST(DirectiveParse, ParallelFor) {
  std::string err;
  auto d = parse_directive(" parallel for schedule(dynamic, 4)", &err);
  ASSERT_TRUE(d) << err;
  EXPECT_EQ(d->kind, DirectiveKind::kParallelFor);
  EXPECT_EQ(d->schedule, ScheduleKind::kDynamic);
  EXPECT_EQ(d->schedule_chunk, "4");
}

TEST(DirectiveParse, ForWithReduction) {
  std::string err;
  auto d = parse_directive(" for reduction(+: sum, count) nowait", &err);
  ASSERT_TRUE(d) << err;
  EXPECT_EQ(d->kind, DirectiveKind::kFor);
  ASSERT_EQ(d->reductions.size(), 1u);
  EXPECT_EQ(d->reductions[0].op, ReductionOp::kSum);
  EXPECT_EQ(d->reductions[0].vars,
            (std::vector<std::string>{"sum", "count"}));
  EXPECT_TRUE(d->nowait);
}

TEST(DirectiveParse, CriticalNamedAndUnnamed) {
  std::string err;
  auto named = parse_directive(" critical(queue)", &err);
  ASSERT_TRUE(named);
  EXPECT_EQ(named->critical_name, "queue");
  auto unnamed = parse_directive(" critical", &err);
  ASSERT_TRUE(unnamed);
  EXPECT_EQ(unnamed->critical_name, "");
}

TEST(DirectiveParse, SimpleDirectives) {
  std::string err;
  EXPECT_EQ(parse_directive(" barrier", &err)->kind, DirectiveKind::kBarrier);
  EXPECT_EQ(parse_directive(" master", &err)->kind, DirectiveKind::kMaster);
  EXPECT_EQ(parse_directive(" single", &err)->kind, DirectiveKind::kSingle);
  auto tp = parse_directive(" threadprivate(counter, scratch)", &err);
  ASSERT_TRUE(tp);
  EXPECT_EQ(tp->threadprivate_vars,
            (std::vector<std::string>{"counter", "scratch"}));
}

TEST(DirectiveParse, RejectsUnknown) {
  std::string err;
  EXPECT_FALSE(parse_directive(" taskloop", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_directive(" parallel bogus(x)", &err));
  EXPECT_FALSE(parse_directive(" for schedule(auto)", &err));
  EXPECT_FALSE(parse_directive(" for reduction(+ sum)", &err));
}

TEST(DirectiveParse, VarListSplitting) {
  EXPECT_EQ(split_var_list("a, b ,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_var_list("arr[0], f(x, y), z"),
            (std::vector<std::string>{"arr[0]", "f(x, y)", "z"}));
  EXPECT_TRUE(split_var_list("  ").empty());
}

// ----------------------------------------------------------------- source ----

TEST(SourceScan, BlockExtent) {
  const std::string src = "  { a; { b; } \"}\" ; } tail";
  const auto end = statement_end(src, 0);
  ASSERT_TRUE(end);
  EXPECT_EQ(src.substr(*end), " tail");
}

TEST(SourceScan, SingleStatement) {
  const std::string src = "x = f(a, \";\") + 1; rest";
  const auto end = statement_end(src, 0);
  ASSERT_TRUE(end);
  EXPECT_EQ(src.substr(*end), " rest");
}

TEST(SourceScan, ForWithoutBraces) {
  const std::string src = "for (i = 0; i < n; i++) a[i] = 0; rest";
  const auto end = statement_end(src, 0);
  ASSERT_TRUE(end);
  EXPECT_EQ(src.substr(*end), " rest");
}

TEST(SourceScan, ForHeaderCanonical) {
  std::string err;
  const std::string src = "for (long i = 2; i < n + 1; i++) { body; }";
  auto fh = parse_for_header(src, 0, &err);
  ASSERT_TRUE(fh) << err;
  EXPECT_EQ(fh->type, "long");
  EXPECT_EQ(fh->var, "i");
  EXPECT_EQ(fh->lo, "2");
  EXPECT_EQ(fh->hi, "n + 1");
  EXPECT_EQ(fh->step, "1");
}

TEST(SourceScan, ForHeaderLessEqualAndStep) {
  std::string err;
  auto fh = parse_for_header("for (j = a; j <= b; j += 2) x;", 0, &err);
  ASSERT_TRUE(fh) << err;
  EXPECT_EQ(fh->hi, "(b) + 1");
  EXPECT_EQ(fh->step, "2");
}

TEST(SourceScan, ForHeaderRejectsDownwardLoops) {
  std::string err;
  EXPECT_FALSE(parse_for_header("for (i = n; i > 0; i--) x;", 0, &err));
}

// ----------------------------------------------------------------- codegen ----

TEST(Codegen, ParallelForLowering) {
  const auto r = translate_source(
      "#pragma omp parallel for schedule(static, 8)\n"
      "for (int i = 0; i < n; i++) { a[i] = i; }\n",
      "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("rt.parallel("), std::string::npos);
  EXPECT_NE(r.output.find("for_loop"), std::string::npos);
  EXPECT_NE(r.output.find("static_chunked(8)"), std::string::npos);
  EXPECT_NE(r.output.find("a[i] = i;"), std::string::npos);
}

TEST(Codegen, ParallelRegionWithNestedDirectives) {
  const auto r = translate_source(
      "#pragma omp parallel\n"
      "{\n"
      "  work();\n"
      "#pragma omp barrier\n"
      "#pragma omp critical(tally)\n"
      "  { total++; }\n"
      "#pragma omp master\n"
      "  { report(); }\n"
      "}\n",
      "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("omsp_team.barrier();"), std::string::npos);
  EXPECT_NE(r.output.find("critical(\"tally\""), std::string::npos);
  EXPECT_NE(r.output.find("master(["), std::string::npos);
}

TEST(Codegen, ReductionRewritesAccumulator) {
  const auto r = translate_source(
      "#pragma omp parallel for reduction(+: sum)\n"
      "for (long i = 0; i < n; i++) sum += a[i];\n",
      "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("omsp_red_sum += a[i]"), std::string::npos);
  EXPECT_NE(r.output.find(".reduce(omsp_red_sum"), std::string::npos);
  // Exactly one thread folds the result back.
  EXPECT_NE(r.output.find("thread_num() == 0"), std::string::npos);
}

TEST(Codegen, NonOmpPragmasPassThrough) {
  const auto r = translate_source("#pragma once\nint x;\n", "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("#pragma once"), std::string::npos);
}

TEST(Codegen, PlainSourceUnchanged) {
  const std::string src = "int main() { return 0; }\n";
  const auto r = translate_source(src, "rt");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.output, src);
}

TEST(Codegen, ErrorsPropagate) {
  const auto bad = translate_source("#pragma omp parallel for\nwhile (1);\n",
                                    "rt");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  const auto orphan =
      translate_source("#pragma omp for\nfor (int i = 0; i < 3; i++) x;\n",
                       "rt");
  EXPECT_FALSE(orphan.ok);
}

TEST(Codegen, FirstPrivateBecomesInitCapture) {
  const auto r = translate_source(
      "#pragma omp parallel firstprivate(seed)\n"
      "{ use(seed); }\n",
      "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("seed = seed"), std::string::npos);
}

TEST(Codegen, SingleAndNowait) {
  const auto r = translate_source(
      "#pragma omp parallel\n"
      "{\n"
      "#pragma omp single\n"
      "  { init(); }\n"
      "}\n",
      "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("single(["), std::string::npos);
}

} // namespace
} // namespace omsp::translate

namespace omsp::translate {
namespace {

TEST(DirectiveParse, RuntimeSchedule) {
  std::string err;
  auto d = parse_directive(" for schedule(runtime)", &err);
  ASSERT_TRUE(d) << err;
  EXPECT_EQ(d->schedule, ScheduleKind::kRuntime);
}

TEST(Codegen, RuntimeScheduleLowersToEnvQuery) {
  const auto r = translate_source(
      "#pragma omp parallel for schedule(runtime)\n"
      "for (int i = 0; i < n; i++) a[i] = i;\n",
      "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find("runtime_schedule()"), std::string::npos);
}

} // namespace
} // namespace omsp::translate

namespace omsp::translate {
namespace {

TEST(Codegen, SectionsLowering) {
  const auto r = translate_source(
      "#pragma omp parallel\n"
      "{\n"
      "#pragma omp sections\n"
      "  {\n"
      "#pragma omp section\n"
      "    { work_a(); }\n"
      "#pragma omp section\n"
      "    { work_b(); }\n"
      "  }\n"
      "}\n",
      "rt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.output.find(".sections({"), std::string::npos);
  EXPECT_NE(r.output.find("work_a();"), std::string::npos);
  EXPECT_NE(r.output.find("work_b();"), std::string::npos);
}

TEST(Codegen, OrphanSectionRejected) {
  const auto r = translate_source(
      "#pragma omp parallel\n"
      "{\n"
      "#pragma omp section\n"
      "  { lonely(); }\n"
      "}\n",
      "rt");
  EXPECT_FALSE(r.ok);
}

} // namespace
} // namespace omsp::translate

namespace omsp::translate {
namespace {

TEST(DirectiveHelpers, ReductionIdentitiesAndCombiners) {
  EXPECT_STREQ(reduction_identity(ReductionOp::kSum), "0");
  EXPECT_STREQ(reduction_identity(ReductionOp::kProd), "1");
  EXPECT_STREQ(reduction_combine_expr(ReductionOp::kSum), "a + b");
  EXPECT_STREQ(reduction_combine_expr(ReductionOp::kProd), "a * b");
  // min/max identities reference numeric_limits (usable in generated code).
  EXPECT_NE(std::string(reduction_identity(ReductionOp::kMin)).find("max"),
            std::string::npos);
  EXPECT_NE(std::string(reduction_identity(ReductionOp::kMax)).find("lowest"),
            std::string::npos);
}

// ------------------------------------------------- shared-access lint -------

TEST(SharedWriteLint, FlagsUnprotectedSharedWriteWithExactFormat) {
  const std::string src = "int main() {\n"
                          "  double sum = 0;\n"
                          "#pragma omp parallel\n"
                          "  {\n"
                          "    sum = sum + 1;\n"
                          "    sum = sum * 2;\n" // same var: one diagnostic
                          "  }\n"
                          "}\n";
  const auto diags = lint_source(src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 5u); // anchored at the FIRST offending write
  EXPECT_EQ(diags[0].var, "sum");
  EXPECT_EQ(diags[0].message,
            "line 5: warning: shared variable 'sum' written in parallel "
            "region without reduction/critical/ordered protection "
            "[-Wshared-write]");
}

TEST(SharedWriteLint, EachRegionAndVariableReportedOnce) {
  const std::string src = "void f() {\n"
                          "  int a = 0, b = 0;\n"
                          "#pragma omp parallel\n"
                          "  {\n"
                          "    a++;\n"
                          "    b -= 2;\n"
                          "  }\n"
                          "#pragma omp parallel\n"
                          "  {\n"
                          "    a--;\n"
                          "  }\n"
                          "}\n";
  const auto diags = lint_source(src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].var, "a");
  EXPECT_EQ(diags[0].line, 5u);
  EXPECT_EQ(diags[1].var, "b");
  EXPECT_EQ(diags[1].line, 6u);
  EXPECT_EQ(diags[2].var, "a");
  EXPECT_EQ(diags[2].line, 10u);
}

// Every sanctioned protection pattern in one kernel: reduction clauses,
// worksharing-partitioned subscripts, region locals, critical sections and
// private clauses must all silence the lint.
TEST(SharedWriteLint, AnnotatedAndPartitionedWritesAreClean) {
  const std::string src = "void k(double* a, int n) {\n"
                          "  double sum = 0;\n"
                          "  int hits = 0;\n"
                          "  int scratch = 0;\n"
                          "#pragma omp parallel for reduction(+: sum)\n"
                          "  for (int i = 0; i < n; ++i) {\n"
                          "    double t = a[i] * 2;\n"
                          "    a[i] = t;\n"
                          "    sum += t;\n"
                          "  }\n"
                          "#pragma omp parallel private(scratch)\n"
                          "  {\n"
                          "    int mine = 0;\n"
                          "    mine++;\n"
                          "    scratch = mine;\n"
                          "#pragma omp critical\n"
                          "    hits += mine;\n"
                          "  }\n"
                          "}\n";
  EXPECT_TRUE(lint_source(src).empty());
}

// The translator's own example corpus must produce zero diagnostics — the
// lint under-reports rather than cry wolf (see src/translate/lint.hpp).
TEST(SharedWriteLint, ExampleCorpusIsClean) {
  for (const char* name : {"histogram.ompcpp", "pi.ompcpp", "sor.ompcpp"}) {
    std::ifstream in(std::string(OMSP_EXAMPLES_DIR "/") + name);
    ASSERT_TRUE(in.is_open()) << name;
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto diags = lint_source(buf.str());
    EXPECT_TRUE(diags.empty())
        << name << ": " << (diags.empty() ? "" : diags[0].message);
  }
}

} // namespace
} // namespace omsp::translate
