#!/bin/sh
# Rebuild everything, run the full test suite, and regenerate every table and
# figure of the paper's evaluation. Artifacts land in the repository root:
#   test_output.txt   — full ctest log
#   bench_output.txt  — every bench binary's output
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "Done. See test_output.txt and bench_output.txt."
