#!/bin/sh
# Rebuild everything, run the full test suite, and regenerate every table and
# figure of the paper's evaluation. Artifacts land in the repository root:
#   test_output.txt   — full ctest log
#   bench_output.txt  — every bench binary's output
# With OMSP_TRACES=1, also record SOR/TSP protocol traces (both modes), audit
# them against the stats counters, and leave traces/*.trace + *.json behind.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

if [ "${OMSP_TRACES:-0}" = "1" ]; then
  mkdir -p traces
  ./build/src/trace/omsp-trace --self-check
  for app in sor tsp; do
    for mode in thread process; do
      ./build/src/trace/omsp-trace record "$app" --mode "$mode" \
        -o "traces/${app}_${mode}"
      ./build/src/trace/omsp-trace check "traces/${app}_${mode}.trace"
    done
  done
  echo "Traces in traces/ — open the .json files in ui.perfetto.dev."
fi

echo "Done. See test_output.txt and bench_output.txt."
