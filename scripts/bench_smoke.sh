#!/usr/bin/env bash
# Bench smoke: run the evaluation benches at CI problem sizes, merge their
# machine-readable rows into BENCH_pr10.json, and fail if message counts
# drifted vs the committed baseline under the default (inline, synchronous)
# transport. Each bench row also records its host WALL-CLOCK seconds
# ("wall_clock_s") — modeled results answer "is the simulation right",
# the wall-clock column answers "how long does the simulator itself take",
# which is what the SIMD/pooling/zero-copy work (ISSUE 8) optimizes. The
# diff-kernel microbenchmarks (scalar vs SIMD create, apply, twin
# provisioning, intra-node zero-copy fetch) are folded in under
# "micro_diff_kernels" when bench/micro_dsm is built.
#
#   scripts/bench_smoke.sh [--build-dir <dir>] [--out <file>] [--update-baseline]
#
# Drift policy (see the probe notes in tests/tmk/overlap_test.cc): MPI
# message counts are a pure function of the modeled algorithm and must match
# the baseline EXACTLY. SDSM (OpenMP/orig + OpenMP/thread) counts depend on
# host-scheduling races between fault-time fetches and concurrent interval
# flushes, so they get a +/-25% band — wide enough never to flake, tight
# enough to catch a protocol regression that doubles traffic. TSP's SDSM
# rows are exempt entirely: its branch-and-bound pruning makes message
# counts vary by orders of magnitude run to run.
#
# Baselines are keyed by topology spec AND collective engine
# (bench/bench_smoke_baseline.json maps "sp2", "flat:64x4", "sp2+coll=tree",
# ... to their own table2 rows), so the exact no-loss 4x4 baseline survives
# sweeps over larger machines or OMSP_COLL=tree: a run is compared only
# against ITS key's baseline and fails loudly if none is committed yet.
#
# The beyond-the-SP2 scalability sweep (speedup_curve --scale) runs under
# seeds 1-3; its MPI curves are bit-deterministic per seed (per-link loss
# schedules, named-source SOR), which the script proves by running seed 1
# twice and comparing the MPI subtree exactly.
set -euo pipefail

BUILD_DIR=build
OUT=BENCH_pr10.json
UPDATE=0
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    --update-baseline) UPDATE=1; shift ;;
    *) echo "usage: $0 [--build-dir <dir>] [--out <file>] [--update-baseline]" >&2
       exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
BASELINE=bench/bench_smoke_baseline.json

command -v python3 >/dev/null || { echo "bench_smoke: python3 required" >&2; exit 1; }
for b in table2_traffic fig1_speedup speedup_curve; do
  [ -x "$BUILD_DIR/bench/$b" ] || {
    echo "bench_smoke: $BUILD_DIR/bench/$b not built" >&2; exit 1; }
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Default transport only: no OMSP_OVERLAP / loss in the environment — this
# is the bit-for-bit seed configuration the drift check certifies.
# OMSP_TOPOLOGY and OMSP_COLL are deliberately NOT unset: a caller-selected
# machine shape or collective engine is a legitimate sweep, checked against
# its own baseline key.
unset OMSP_OVERLAP OMSP_OVERLAP_FETCH OMSP_OVERLAP_PREFETCH OMSP_PERTURB_SEED \
      OMSP_LOSS_PROB OMSP_RACE

# The no-loss baseline must not engage the reliability layer at all: zero
# losses, zero retransmissions, zero acks (and therefore zero extra wire
# bytes — the inline seed path is byte-for-byte unchanged). Audited from a
# recorded trace so the check covers the same counters CI reconciles.
if [ -x "$BUILD_DIR/src/trace/omsp-trace" ]; then
  echo "== no-loss reliability invariant =="
  "$BUILD_DIR/src/trace/omsp-trace" record sor -o "$TMP/noloss" >/dev/null
  for c in msgs_lost retransmits acks_sent; do
    n=$("$BUILD_DIR/src/trace/omsp-trace" check "$TMP/noloss.trace" \
        | awk -v c="$c" '$1 == c { print $2 }')
    if [ "$n" != "0" ]; then
      echo "bench_smoke: no-loss baseline has $c=$n, want 0" >&2
      exit 1
    fi
  done
  echo "no-loss baseline: zero losses/retransmits/acks"
fi

# Race-detector invariant: the default baseline is race-clean, and switching
# the detector on leaves the message counts unchanged — the detector rides
# the existing diff/flush traffic and adds zero messages of its own. The
# digest's exit code asserts cleanliness (0 = sweeps ran, nothing found);
# the count check reuses the drift policy below on a detector-on table2 run
# (MPI exact — the detector never touches mini-MPI — SDSM within the band).
if [ -x "$BUILD_DIR/src/trace/omsp-trace" ]; then
  echo "== race-detector invariant (OMSP_RACE=page) =="
  OMSP_RACE=page "$BUILD_DIR/src/trace/omsp-trace" record sor \
      -o "$TMP/race_sor" >/dev/null
  "$BUILD_DIR/src/trace/omsp-trace" races "$TMP/race_sor.trace" || {
    echo "bench_smoke: default baseline is not race-clean" >&2; exit 1; }
fi
echo "== table2_traffic --smoke, detector on =="
OMSP_RACE=page "$BUILD_DIR/bench/table2_traffic" --smoke \
    --json "$TMP/table2_race.json"

# Host wall-clock per bench (the column ISSUE 8's host-side optimizations
# move; modeled numbers in the same rows must not move at all).
wallclock() { # wallclock <name> <cmd...>
  local name=$1; shift
  local t0 t1
  t0=$(date +%s.%N)
  "$@"
  t1=$(date +%s.%N)
  printf '%s %s\n' "$name" "$(echo "$t0 $t1" | awk '{printf "%.3f", $2-$1}')" \
      >> "$TMP/wallclock.txt"
}
: > "$TMP/wallclock.txt"

echo "== table2_traffic --smoke =="
wallclock table2_traffic \
    "$BUILD_DIR/bench/table2_traffic" --smoke --json "$TMP/table2.json"
echo "== fig1_speedup --smoke =="
wallclock fig1_speedup \
    "$BUILD_DIR/bench/fig1_speedup" --smoke --json "$TMP/fig1.json"

echo "== speedup_curve --scale (seeds 1-3) =="
for s in 1 2 3; do
  wallclock "speedup_curve_seed$s" \
      "$BUILD_DIR/bench/speedup_curve" --smoke --scale --seed "$s" \
      --json "$TMP/scale_seed$s.json" > "$TMP/scale_seed$s.txt"
done
# Determinism proof: the seed-1 MPI curves must be bit-identical on a rerun.
"$BUILD_DIR/bench/speedup_curve" --smoke --scale --seed 1 \
    --json "$TMP/scale_seed1_rerun.json" >/dev/null

# Diff-kernel microbenches (host nanoseconds): scalar vs SIMD create, the
# checked apply vs the pre-PR loop, pooled twin provisioning, zero-copy vs
# copy-in intra-node fetch. Medians over 5 repetitions with random
# interleaving so the scalar/SIMD ratio is robust to frequency drift.
if [ -x "$BUILD_DIR/bench/micro_dsm" ]; then
  echo "== micro_dsm diff kernels =="
  "$BUILD_DIR/bench/micro_dsm" \
      --benchmark_filter='BM_Diff|BM_Twin|BM_IntraNode' \
      --benchmark_repetitions=5 --benchmark_enable_random_interleaving=true \
      --benchmark_report_aggregates_only=true \
      --benchmark_format=json > "$TMP/micro.json"
fi

python3 - "$TMP" "$OUT" "$BASELINE" "$UPDATE" <<'EOF'
import json, os, sys

tmp, out_path, baseline_path, update = sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4] == "1"

table2 = json.load(open(f"{tmp}/table2.json"))
table2_race = json.load(open(f"{tmp}/table2_race.json"))
fig1 = json.load(open(f"{tmp}/fig1.json"))
topo = table2.get("topology", "sp2")
coll = os.environ.get("OMSP_COLL", "")
key = topo if coll in ("", "central") else f"{topo}+coll={coll}"

scale = {}
for s in (1, 2, 3):
    scale[f"seed{s}"] = json.load(open(f"{tmp}/scale_seed{s}.json"))

# Scalability determinism: the MPI subtree is a pure function of the seed.
rerun = json.load(open(f"{tmp}/scale_seed1_rerun.json"))
if scale["seed1"]["curves"]["mpi"] != rerun["curves"]["mpi"]:
    print("speedup_curve --scale --seed 1: MPI curves differ between runs "
          "(expected bit-identical)", file=sys.stderr)
    sys.exit(1)
print("scale sweep: seed-1 MPI curves bit-identical across runs")

# Hierarchical-collectives acceptance: on the 64- and 256-node fat trees the
# tree engine's modeled barrier and 64 KB allreduce must beat the
# centralized/flat engine strictly; the 8-byte column keeps the size
# crossover visible (flat wins the small-message star at 32/128 ranks).
colls = scale["seed1"]["curves"]["collectives"]
for shape in ("fat:2x8x2", "fat:2x16x2"):
    row = colls[shape]
    if not row["barrier_tree_us"] < row["barrier_central_us"]:
        print(f"{shape}: tree barrier {row['barrier_tree_us']} !< "
              f"central {row['barrier_central_us']}", file=sys.stderr)
        sys.exit(1)
    if not row["allreduce64k_tree_us"] < row["allreduce64k_flat_us"]:
        print(f"{shape}: tree 64K allreduce {row['allreduce64k_tree_us']} !< "
              f"flat {row['allreduce64k_flat_us']}", file=sys.stderr)
        sys.exit(1)
small = colls["fat:2x4x2"]
if not small["allreduce8_flat_us"] < small["allreduce8_tree_us"]:
    print("fat:2x4x2: expected the flat star to win the 8-byte allreduce "
          "(size crossover)", file=sys.stderr)
    sys.exit(1)
print("collectives: tree beats central/flat at 64 and 256 nodes "
      "(barrier + 64K allreduce); 8-byte crossover intact")

# Saturation-shape invariant (per-stage congestion): the cross-switch shift
# permutation must saturate the fat trees' spine trunks strictly before the
# edge NICs (which see only residual reply holds), the flat crossbars must
# never queue a permutation or an incast (private per-node ports), and
# pointing every sender at rank 0 must drag the hot receiver's edge downlink
# into the queueing beyond the permutation's residual level.
incast = scale["seed1"]["curves"]["incast"]
for shape in ("fat:2x8x1", "fat:2x16x1"):
    sh = incast[f"{shape}/shift"]
    if not sh["spine_wait_us"] > sh["edge_wait_us"] > 0:
        print(f"{shape}/shift: expected spine wait {sh['spine_wait_us']} > "
              f"edge wait {sh['edge_wait_us']} > 0 (spine saturates first)",
              file=sys.stderr)
        sys.exit(1)
# The hot-downlink signature needs enough senders to outrun the spine's
# absorption: at 64 nodes the upstream trunk queues delay arrivals enough
# that the shared downlink rarely blocks, so the check is 256-node only.
inc = incast["fat:2x16x1/incast"]
sh = incast["fat:2x16x1/shift"]
if not inc["edge_wait_us"] > sh["edge_wait_us"]:
    print(f"fat:2x16x1: incast edge wait {inc['edge_wait_us']} !> shift "
          f"edge wait {sh['edge_wait_us']} (hot downlink)", file=sys.stderr)
    sys.exit(1)
for shape in ("flat:64x1", "flat:256x1"):
    for pat in ("shift", "incast"):
        row = incast[f"{shape}/{pat}"]
        if row["edge_wait_us"] != 0 or row["spine_wait_us"] != 0:
            print(f"{shape}/{pat}: crossbar queued (edge "
                  f"{row['edge_wait_us']}, spine {row['spine_wait_us']}), "
                  f"expected private ports", file=sys.stderr)
            sys.exit(1)
print("saturation shape: fat-tree spine saturates before edge NICs at 64 and "
      "256 nodes; crossbars never queue; incast lights the hot edge downlink")

# Host wall-clock per bench run, written by the wallclock() wrapper.
wall = {}
try:
    for line in open(f"{tmp}/wallclock.txt"):
        name, secs = line.split()
        wall[name] = float(secs)
except FileNotFoundError:
    pass

# Diff-kernel microbench medians + scalar/SIMD throughput ratios.
micro = None
if os.path.exists(f"{tmp}/micro.json"):
    raw = json.load(open(f"{tmp}/micro.json"))
    med, label = {}, {}
    for b in raw["benchmarks"]:
        if b.get("aggregate_name") == "median":
            med[b["run_name"]] = b["real_time"]
            if b.get("label"):
                label[b["run_name"]] = b["label"]
    def ratio(a, b):
        return round(med[a] / med[b], 2) if a in med and b in med else None
    micro = {
        "kernel": label.get("BM_DiffCreate/5", "unknown"),
        "median_ns": {k: round(v, 1) for k, v in sorted(med.items())},
        "create_scalar_over_simd": {
            f"{p}pct": ratio(f"BM_DiffCreateScalar/{p}", f"BM_DiffCreate/{p}")
            for p in (0, 5, 25, 100)},
        "apply_prepr_over_new": {
            f"{p}pct": ratio(f"BM_DiffApplyRef/{p}", f"BM_DiffApply/{p}")
            for p in (5, 25, 100)},
        "twin_unpooled_over_pooled":
            ratio("BM_TwinProvision/pooled:0", "BM_TwinProvision/pooled:1"),
        "fetch_copy_over_zerocopy":
            ratio("BM_IntraNodeFetchZeroCopy/zerocopy:0",
                  "BM_IntraNodeFetchZeroCopy/zerocopy:1"),
    }
    c5 = micro["create_scalar_over_simd"]["5pct"]
    c25 = micro["create_scalar_over_simd"]["25pct"]
    if micro["kernel"] != "portable64" and (c5 is None or c5 < 2.0
                                            or c25 is None or c25 < 2.0):
        print(f"micro_dsm: SIMD create speedup below 2x on sparse pages "
              f"(5%: {c5}, 25%: {c25})", file=sys.stderr)
        sys.exit(1)
    print(f"diff kernels [{micro['kernel']}]: create scalar/SIMD "
          f"5%={c5}x 25%={c25}x")

merged = {
    "generated_by": "scripts/bench_smoke.sh",
    "transport": "inline (default)",
    "topology": topo,
    "coll": coll or "central",
    "wall_clock_s": wall,
    "micro_diff_kernels": micro,
    "table2_traffic": table2,
    "table2_traffic_race_on": table2_race,
    "fig1_speedup": fig1,
    "speedup_curve_scale": scale,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")

if update:
    try:
        baselines = json.load(open(baseline_path))
    except FileNotFoundError:
        baselines = {}
    baselines[key] = table2  # other keys' baselines are preserved
    with open(baseline_path, "w") as f:
        json.dump(baselines, f, indent=2)
        f.write("\n")
    print(f"updated {baseline_path} [{key}]")
    sys.exit(0)

baselines = json.load(open(baseline_path))
if key not in baselines:
    print(f"no committed baseline for '{key}' in {baseline_path}; "
          f"run with --update-baseline under that configuration first",
          file=sys.stderr)
    sys.exit(1)
baseline = baselines[key]
SDSM_BAND = 0.25
def drift(run, tag):
    failures = []
    for app, versions in baseline["apps"].items():
        for ver, base_row in versions.items():
            cur = run["apps"][app][ver]["msgs"]
            base = base_row["msgs"]
            if ver == "mpi":
                if cur != base:
                    failures.append(
                        f"{app}/{ver}: msgs {cur} != baseline {base} (exact)")
            elif app == "TSP":
                continue  # speculative search: counts are race-dependent
            else:
                lo, hi = base * (1 - SDSM_BAND), base * (1 + SDSM_BAND)
                if not (lo <= cur <= hi):
                    failures.append(
                        f"{app}/{ver}: msgs {cur} outside [{lo:.0f}, {hi:.0f}] "
                        f"(baseline {base} +/-25%)")
    if failures:
        print(f"message-count drift vs seed baseline [{key}] {tag}:",
              file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        sys.exit(1)

drift(table2, "(detector off)")
# The detector-on run is held to the SAME baseline: OMSP_RACE adds zero
# messages, so the exact MPI rows and the SDSM band apply unchanged.
drift(table2_race, "(OMSP_RACE=page)")
print(f"message counts match the seed baseline [{key}], detector off AND on "
      "(MPI exact, SDSM within 25%, TSP SDSM exempt)")
EOF
