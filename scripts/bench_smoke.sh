#!/usr/bin/env bash
# Bench smoke: run the evaluation benches at CI problem sizes, merge their
# machine-readable rows into BENCH_pr3.json, and fail if message counts
# drifted vs the committed baseline under the default (inline, synchronous)
# transport.
#
#   scripts/bench_smoke.sh [--build-dir <dir>] [--out <file>] [--update-baseline]
#
# Drift policy (see the probe notes in tests/tmk/overlap_test.cc): MPI
# message counts are a pure function of the modeled algorithm and must match
# the baseline EXACTLY. SDSM (OpenMP/orig + OpenMP/thread) counts depend on
# host-scheduling races between fault-time fetches and concurrent interval
# flushes, so they get a +/-25% band — wide enough never to flake, tight
# enough to catch a protocol regression that doubles traffic. TSP's SDSM
# rows are exempt entirely: its branch-and-bound pruning makes message
# counts vary by orders of magnitude run to run.
set -euo pipefail

BUILD_DIR=build
OUT=BENCH_pr3.json
UPDATE=0
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    --update-baseline) UPDATE=1; shift ;;
    *) echo "usage: $0 [--build-dir <dir>] [--out <file>] [--update-baseline]" >&2
       exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
BASELINE=bench/bench_smoke_baseline.json

command -v python3 >/dev/null || { echo "bench_smoke: python3 required" >&2; exit 1; }
for b in table2_traffic fig1_speedup; do
  [ -x "$BUILD_DIR/bench/$b" ] || {
    echo "bench_smoke: $BUILD_DIR/bench/$b not built" >&2; exit 1; }
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Default transport only: no OMSP_OVERLAP / loss in the environment — this
# is the bit-for-bit seed configuration the drift check certifies.
unset OMSP_OVERLAP OMSP_OVERLAP_FETCH OMSP_OVERLAP_PREFETCH OMSP_PERTURB_SEED \
      OMSP_LOSS_PROB

# The no-loss baseline must not engage the reliability layer at all: zero
# losses, zero retransmissions, zero acks (and therefore zero extra wire
# bytes — the inline seed path is byte-for-byte unchanged). Audited from a
# recorded trace so the check covers the same counters CI reconciles.
if [ -x "$BUILD_DIR/src/trace/omsp-trace" ]; then
  echo "== no-loss reliability invariant =="
  "$BUILD_DIR/src/trace/omsp-trace" record sor -o "$TMP/noloss" >/dev/null
  for c in msgs_lost retransmits acks_sent; do
    n=$("$BUILD_DIR/src/trace/omsp-trace" check "$TMP/noloss.trace" \
        | awk -v c="$c" '$1 == c { print $2 }')
    if [ "$n" != "0" ]; then
      echo "bench_smoke: no-loss baseline has $c=$n, want 0" >&2
      exit 1
    fi
  done
  echo "no-loss baseline: zero losses/retransmits/acks"
fi

echo "== table2_traffic --smoke =="
"$BUILD_DIR/bench/table2_traffic" --smoke --json "$TMP/table2.json"
echo "== fig1_speedup --smoke =="
"$BUILD_DIR/bench/fig1_speedup" --smoke --json "$TMP/fig1.json"

python3 - "$TMP" "$OUT" "$BASELINE" "$UPDATE" <<'EOF'
import json, sys

tmp, out_path, baseline_path, update = sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4] == "1"

table2 = json.load(open(f"{tmp}/table2.json"))
fig1 = json.load(open(f"{tmp}/fig1.json"))

merged = {
    "generated_by": "scripts/bench_smoke.sh",
    "transport": "inline (default)",
    "table2_traffic": table2,
    "fig1_speedup": fig1,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")

if update:
    with open(baseline_path, "w") as f:
        json.dump(table2, f, indent=2)
        f.write("\n")
    print(f"updated {baseline_path}")
    sys.exit(0)

baseline = json.load(open(baseline_path))
SDSM_BAND = 0.25
failures = []
for app, versions in baseline["apps"].items():
    for ver, base_row in versions.items():
        cur = table2["apps"][app][ver]["msgs"]
        base = base_row["msgs"]
        if ver == "mpi":
            if cur != base:
                failures.append(f"{app}/{ver}: msgs {cur} != baseline {base} (exact)")
        elif app == "TSP":
            continue  # speculative search: counts are race-dependent
        else:
            lo, hi = base * (1 - SDSM_BAND), base * (1 + SDSM_BAND)
            if not (lo <= cur <= hi):
                failures.append(
                    f"{app}/{ver}: msgs {cur} outside [{lo:.0f}, {hi:.0f}] "
                    f"(baseline {base} +/-25%)")

if failures:
    print("message-count drift vs seed baseline:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("message counts match the seed baseline "
      "(MPI exact, SDSM within 25%, TSP SDSM exempt)")
EOF
