#!/usr/bin/env bash
# clang-tidy gate, run as the CI static-analysis job. Uses the curated check
# set in .clang-tidy (WarningsAsErrors: '*', so any finding fails the job).
#
#   scripts/clang_tidy_check.sh [--build-dir <dir>] [--jobs N]
#
# Needs a compile_commands.json; the script configures a throwaway build dir
# with CMAKE_EXPORT_COMPILE_COMMANDS when the given one lacks it. When
# clang-tidy is not installed (the default dev container ships only gcc),
# the script SKIPS with exit 0 and says so — the CI image provides the tool,
# so the gate is enforced where it matters without breaking local loops.
set -euo pipefail

BUILD_DIR=build
JOBS=$(nproc 2>/dev/null || echo 4)
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --jobs) JOBS=$2; shift 2 ;;
    *) echo "usage: $0 [--build-dir <dir>] [--jobs N]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

TIDY=$(command -v clang-tidy || true)
if [ -z "$TIDY" ]; then
  echo "clang_tidy_check: clang-tidy not installed — SKIPPED (CI enforces it)"
  exit 0
fi
RUNNER=$(command -v run-clang-tidy || true)

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -S . -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party translation units only: generated/example code and tests track
# different idioms; the curated set targets the simulator and runtime proper.
mapfile -t FILES < <(git ls-files 'src/**/*.cc' | grep -v '_main\.cc$')
echo "clang_tidy_check: ${#FILES[@]} files, $JOBS jobs"

if [ -n "$RUNNER" ]; then
  "$RUNNER" -p "$BUILD_DIR" -j "$JOBS" -quiet "${FILES[@]}"
else
  STATUS=0
  for f in "${FILES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
  done
  [ "$STATUS" -eq 0 ]
fi
echo "clang_tidy_check: all green"
