#!/usr/bin/env bash
# Docs <-> code sync check, run as the CI docs-check job. Three passes:
#
#  1. Markdown link check: every relative link target in docs/, README.md,
#     EXPERIMENTS.md, DESIGN.md and ROADMAP.md must exist on disk.
#  2. Counter-name sync: every `counter_name`-style token referenced in
#     docs/OBSERVABILITY.md must appear in the names array of
#     src/common/stats.hpp (a renamed counter must update its docs).
#  3. Topology-preset sync: every preset and spec prefix documented in
#     docs/TOPOLOGY.md must exist in src/sim/topology.hpp, and vice versa —
#     a new preset cannot ship undocumented.
#
# Pure stdlib python3; no dependencies beyond what the CI image carries.
set -euo pipefail
cd "$(dirname "$0")/.."

command -v python3 >/dev/null || { echo "docs_check: python3 required" >&2; exit 1; }

python3 - <<'EOF'
import os, re, sys

failures = []

# ---- 1. relative markdown links exist --------------------------------------
doc_files = ["README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md"]
doc_files += sorted("docs/" + f for f in os.listdir("docs") if f.endswith(".md"))

link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
for path in doc_files:
    text = open(path, encoding="utf-8").read()
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#")[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
        if not os.path.exists(resolved):
            failures.append(f"{path}: broken link -> {target}")
print(f"link check: {len(doc_files)} files scanned")

# ---- 2. OBSERVABILITY.md counter names exist in stats.hpp ------------------
stats = open("src/common/stats.hpp", encoding="utf-8").read()
known = set(re.findall(r'"([a-z][a-z0-9_]*)"', stats))
# OBSERVABILITY.md also names trace event kinds (src/trace/event.hpp), which
# share the snake_case shape; those are code identifiers too, so accept them.
known |= set(re.findall(r'"([a-z][a-z0-9_]*)"',
                        open("src/trace/event.hpp", encoding="utf-8").read()))
obs = open("docs/OBSERVABILITY.md", encoding="utf-8").read()
# Counter tokens appear in backticks or table cells as snake_case words.
referenced = set(re.findall(r"\b([a-z]+(?:_[a-z0-9]+)+)\b", obs))
# Only check tokens that look like counters (match one of the known-name
# suffixes), so prose snake_case like `trace_event` is not misflagged.
counterish = {t for t in referenced if t in known or any(
    t.endswith(s) for s in ("_sent", "_recv", "_offnode", "_created",
                            "_applied", "_faults", "_acquires", "_fetches",
                            "_fetched", "_hits", "_batches", "_lost",
                            "_invalidations"))}
for t in sorted(counterish - known):
    failures.append(f"docs/OBSERVABILITY.md: counter '{t}' not in "
                    "src/common/stats.hpp names[]")
print(f"counter sync: {len(counterish & known)} documented counters verified")

# ---- 3. TOPOLOGY.md presets match topology.hpp -----------------------------
topo_hpp = open("src/sim/topology.hpp", encoding="utf-8").read()
topo_md = open("docs/TOPOLOGY.md", encoding="utf-8").read()
code_presets = set(re.findall(r"static Topology (\w+)\(", topo_hpp))
doc_presets = set(re.findall(r"Topology::(\w+)\(", topo_md))
for p in sorted(code_presets - doc_presets - {"parse", "from_env_or"}):
    failures.append(f"src/sim/topology.hpp: preset '{p}' undocumented in "
                    "docs/TOPOLOGY.md")
# The docs also reference ordinary members as Topology::name(...); any
# callable defined in the header is fair game.
code_callables = set(re.findall(r"\b(\w+)\(", topo_hpp))
for p in sorted(doc_presets - code_callables):
    failures.append(f"docs/TOPOLOGY.md: 'Topology::{p}' does not exist in "
                    "src/sim/topology.hpp")
# Spec grammar prefixes must agree between parse() and the docs.
code_prefixes = set(re.findall(r'substr\(0, \d+\) == "(\w+):"', topo_hpp))
for p in sorted(code_prefixes):
    if f"`{p}:" not in topo_md:
        failures.append(f"docs/TOPOLOGY.md: spec prefix '{p}:' undocumented")
print(f"preset sync: {len(code_presets - {'parse', 'from_env_or'})} presets, "
      f"{len(code_prefixes)} spec prefixes verified")

if failures:
    print("docs_check failures:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("docs_check: all green")
EOF
