// Static shared-access lint for the translator (the OMP2MPI-style
// directive-level classification that makes automatic OpenMP lowering onto a
// DSM trustworthy): every variable written inside a parallel region must be
// covered by a data-sharing or synchronization annotation, or it is a
// candidate write-write race on the shared heap.
//
// A write to variable `v` inside `#pragma omp parallel` is SAFE when any of:
//   * v appears in a private / firstprivate / reduction / threadprivate
//     clause of the region (or a nested directive),
//   * v is declared inside the region (a stack local of the outlined body),
//   * v is the loop variable of a worksharing `#pragma omp for`,
//   * the write sits inside a `critical`, `single` or `master` construct,
//   * the write is subscripted and the index expression mentions a
//     worksharing loop variable or clause-private variable (each thread
//     writes its own partition of the array).
// Everything else is reported.
//
// Deliberate blind spots (the dynamic detector's domain, docs/PROTOCOL.md):
// writes through pointers and function calls (`*p = x`, `relax(g, r)`), and
// locals aliasing shared memory (`double* row = g + ...; row[c] = ...`).
// The lint is tuned for zero false positives on the translator corpus; it
// under-reports rather than cry wolf.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace omsp::translate {

struct LintDiagnostic {
  std::size_t line = 0; // 1-based source line of the offending write
  std::string var;      // the shared variable written
  std::string message;  // fully formatted, test-asserted:
  // "line N: warning: shared variable 'v' written in parallel region
  //  without reduction/critical/ordered protection [-Wshared-write]"
};

// Lint every parallel region of `src`. One diagnostic per (region, variable),
// anchored at the first offending write, in source order.
std::vector<LintDiagnostic> lint_source(const std::string& src);

} // namespace omsp::translate
