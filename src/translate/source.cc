#include "translate/source.hpp"

#include <cctype>
#include <vector>

namespace omsp::translate {

namespace {

// Advance one character, tracking string/char literals and comments so brace
// matching cannot be fooled by them.
std::size_t skip_literal(const std::string& s, std::size_t i) {
  const char quote = s[i];
  ++i;
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;
      continue;
    }
    if (s[i] == quote) return i + 1;
    ++i;
  }
  return i;
}

} // namespace

std::size_t skip_blank(const std::string& src, std::size_t pos) {
  while (pos < src.size()) {
    if (std::isspace(static_cast<unsigned char>(src[pos]))) {
      ++pos;
    } else if (src.compare(pos, 2, "//") == 0) {
      while (pos < src.size() && src[pos] != '\n') ++pos;
    } else if (src.compare(pos, 2, "/*") == 0) {
      pos = src.find("*/", pos + 2);
      pos = (pos == std::string::npos) ? src.size() : pos + 2;
    } else {
      break;
    }
  }
  return pos;
}

std::optional<std::size_t> statement_end(const std::string& src,
                                         std::size_t pos) {
  pos = skip_blank(src, pos);
  if (pos >= src.size()) return std::nullopt;

  if (src[pos] == '{') {
    int depth = 0;
    for (std::size_t i = pos; i < src.size();) {
      const char c = src[i];
      if (c == '"' || c == '\'') {
        i = skip_literal(src, i);
        continue;
      }
      if (src.compare(i, 2, "//") == 0 || src.compare(i, 2, "/*") == 0) {
        i = skip_blank(src, i);
        continue;
      }
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return std::nullopt;
  }

  // `for (...) stmt` / `if (...) stmt`: consume the parenthesized head, then
  // recurse on the controlled statement.
  if (src.compare(pos, 3, "for") == 0 || src.compare(pos, 2, "if") == 0 ||
      src.compare(pos, 5, "while") == 0) {
    std::size_t open = src.find('(', pos);
    if (open == std::string::npos) return std::nullopt;
    int depth = 0;
    std::size_t i = open;
    for (; i < src.size(); ++i) {
      if (src[i] == '(') ++depth;
      if (src[i] == ')') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (i >= src.size()) return std::nullopt;
    return statement_end(src, i + 1);
  }

  // Plain statement: scan to the ';' at depth 0.
  int depth = 0;
  for (std::size_t i = pos; i < src.size();) {
    const char c = src[i];
    if (c == '"' || c == '\'') {
      i = skip_literal(src, i);
      continue;
    }
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ';' && depth == 0) return i + 1;
    ++i;
  }
  return std::nullopt;
}

std::optional<ForHeader> parse_for_header(const std::string& src,
                                          std::size_t for_pos,
                                          std::string* error) {
  const std::size_t open = src.find('(', for_pos);
  if (open == std::string::npos) {
    *error = "for loop without '('";
    return std::nullopt;
  }
  int depth = 0;
  std::size_t close = open;
  for (; close < src.size(); ++close) {
    if (src[close] == '(') ++depth;
    if (src[close] == ')') {
      --depth;
      if (depth == 0) break;
    }
  }
  if (close >= src.size()) {
    *error = "unbalanced for header";
    return std::nullopt;
  }
  const std::string head = src.substr(open + 1, close - open - 1);

  // Split init; cond; incr at top level.
  std::vector<std::string> parts;
  {
    std::string cur;
    int d = 0;
    for (char c : head) {
      if (c == '(') ++d;
      if (c == ')') --d;
      if (c == ';' && d == 0) {
        parts.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    parts.push_back(cur);
  }
  if (parts.size() != 3) {
    *error = "for header must have init; cond; incr";
    return std::nullopt;
  }

  auto trim = [](std::string s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
  };

  ForHeader fh;
  // init: [type] var = lo
  {
    const std::string init = trim(parts[0]);
    const auto eq = init.find('=');
    if (eq == std::string::npos) {
      *error = "for init must assign the loop variable";
      return std::nullopt;
    }
    fh.lo = trim(init.substr(eq + 1));
    std::string left = trim(init.substr(0, eq));
    const auto last_space = left.find_last_of(" \t*&");
    if (last_space == std::string::npos) {
      fh.var = left;
    } else {
      fh.type = trim(left.substr(0, last_space + 1));
      fh.var = trim(left.substr(last_space + 1));
    }
  }
  // cond: var < hi  or  var <= hi-1 (only '<' and '<=' supported)
  {
    const std::string cond = trim(parts[1]);
    std::size_t lt = cond.find('<');
    if (lt == std::string::npos || cond.compare(0, fh.var.size(), fh.var) != 0) {
      *error = "for condition must be '" + fh.var + " < bound'";
      return std::nullopt;
    }
    const bool le = lt + 1 < cond.size() && cond[lt + 1] == '=';
    std::string hi = trim(cond.substr(lt + (le ? 2 : 1)));
    fh.hi = le ? "(" + hi + ") + 1" : hi;
  }
  // incr: var++ / ++var / var += step / var = var + step
  {
    const std::string incr = trim(parts[2]);
    if (incr == fh.var + "++" || incr == "++" + fh.var) {
      fh.step = "1";
    } else if (incr.compare(0, fh.var.size(), fh.var) == 0) {
      std::string rest = trim(incr.substr(fh.var.size()));
      if (rest.rfind("+=", 0) == 0) {
        fh.step = trim(rest.substr(2));
      } else {
        *error = "unsupported for increment '" + incr + "'";
        return std::nullopt;
      }
    } else {
      *error = "unsupported for increment '" + incr + "'";
      return std::nullopt;
    }
  }
  fh.body_pos = skip_blank(src, close + 1);
  return fh;
}

} // namespace omsp::translate
