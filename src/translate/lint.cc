#include "translate/lint.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <set>
#include <string_view>

#include "translate/directive.hpp"
#include "translate/source.hpp"

namespace omsp::translate {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Type keywords that open a declaration; the next identifier (skipping
// cv-qualifiers and declarator punctuation) names a region-local variable.
bool is_type_keyword(const std::string& tok) {
  static const std::set<std::string> kTypes = {
      "auto",    "bool",     "char",     "double", "float",
      "int",     "long",     "short",    "signed", "unsigned",
      "size_t",  "int8_t",   "int16_t",  "int32_t", "int64_t",
      "uint8_t", "uint16_t", "uint32_t", "uint64_t", "void",
  };
  if (kTypes.count(tok) != 0) {
    return true;
  }
  // std::size_t, std::int64_t, my_t — common typedef spellings.
  if (tok.size() > 2 && tok.compare(tok.size() - 2, 2, "_t") == 0) {
    return true;
  }
  return false;
}

// Qualifiers that may precede a type keyword without ending the declaration.
bool is_decl_qualifier(const std::string& tok) {
  return tok == "const" || tok == "static" || tok == "volatile" ||
         tok == "register" || tok == "constexpr" || tok == "std";
}

bool is_keyword(const std::string& tok) {
  static const std::set<std::string> kKeywords = {
      "if",     "else",   "for",      "while",  "do",      "switch",
      "case",   "default","break",    "continue","return", "goto",
      "sizeof", "new",    "delete",   "true",   "false",   "nullptr",
      "struct", "class",  "enum",     "union",  "typedef", "using",
      "namespace", "template", "operator", "this",
  };
  return kKeywords.count(tok) != 0 || is_type_keyword(tok) ||
         is_decl_qualifier(tok);
}

std::size_t line_of(const std::string& src, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(src.begin(), src.begin() + static_cast<long>(pos),
                            '\n'));
}

// End of a `#pragma` line honoring backslash continuations (same rule the
// code generator uses when it consumes directives).
std::size_t pragma_line_end(const std::string& src, std::size_t pos) {
  std::size_t end = pos;
  while (end < src.size()) {
    std::size_t nl = src.find('\n', end);
    if (nl == std::string::npos) {
      return src.size();
    }
    std::size_t back = nl;
    while (back > end && (src[back - 1] == ' ' || src[back - 1] == '\t' ||
                          src[back - 1] == '\r')) {
      --back;
    }
    if (back > end && src[back - 1] == '\\') {
      end = nl + 1;
      continue;
    }
    return nl;
  }
  return src.size();
}

// Directive text (everything after "omp") if `pos` is at a `#pragma omp`
// line; npos-marked failure otherwise.
std::optional<std::string> omp_directive_text(const std::string& src,
                                              std::size_t pragma_pos,
                                              std::size_t* line_end) {
  std::size_t after = pragma_pos + std::string_view("#pragma").size();
  std::size_t p = skip_blank(src, after);
  if (src.compare(p, 3, "omp") != 0 ||
      (p + 3 < src.size() && is_ident_char(src[p + 3]))) {
    return std::nullopt;
  }
  *line_end = pragma_line_end(src, pragma_pos);
  std::string text = src.substr(p + 3, *line_end - (p + 3));
  for (char& c : text) {
    if (c == '\\' || c == '\r') {
      c = ' ';
    }
  }
  return text;
}

struct Write {
  std::size_t pos = 0;        // offset of the base identifier
  std::string var;            // base identifier written
  bool subscripted = false;   // wrote through var[...]
  std::string subscript;      // concatenated index expression text
};

// One parallel region being linted.
struct RegionScan {
  std::set<std::string> safe;      // clause vars + locals declared inside
  std::set<std::string> part_vars; // vars that partition array subscripts
  std::vector<Write> writes;
};

void add_clause_vars(const Directive& d, RegionScan* scan) {
  for (const auto& list : {d.private_vars, d.firstprivate_vars,
                           d.threadprivate_vars}) {
    for (const auto& v : list) {
      scan->safe.insert(v);
      scan->part_vars.insert(v);
    }
  }
  for (const auto& red : d.reductions) {
    for (const auto& v : red.vars) {
      scan->safe.insert(v);
      scan->part_vars.insert(v);
    }
  }
}

// Scan `src[pos, end)` — the body of one parallel region — collecting
// unprotected writes into `scan`. Recursion handles nested constructs;
// `protected_ctx` is true inside critical/single/master extents.
void scan_region(const std::string& src, std::size_t pos, std::size_t end,
                 RegionScan* scan, bool protected_ctx) {
  bool decl_pending = false;  // a type keyword opened a declaration
  bool decl_stmt = false;     // inside that declaration, up to ';'
  bool inc_dec_pending = false;
  while (pos < end) {
    char c = src[pos];
    // Comments and literals never contain lintable writes.
    if (c == '/' && pos + 1 < end && src[pos + 1] == '/') {
      pos = std::min(end, src.find('\n', pos));
      continue;
    }
    if (c == '/' && pos + 1 < end && src[pos + 1] == '*') {
      std::size_t close = src.find("*/", pos + 2);
      pos = close == std::string::npos ? end : std::min(end, close + 2);
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      while (pos < end && src[pos] != quote) {
        pos += src[pos] == '\\' ? 2 : 1;
      }
      ++pos;
      continue;
    }
    if (c == '#') {
      std::size_t line_end = 0;
      auto text = omp_directive_text(src, pos, &line_end);
      if (!text.has_value()) {
        pos = std::min(end, pragma_line_end(src, pos)); // other preprocessor
        continue;
      }
      std::string error;
      auto dir = parse_directive(*text, &error);
      if (!dir.has_value()) {
        pos = std::min(end, line_end);
        continue;
      }
      std::size_t stmt_begin = skip_blank(src, line_end);
      switch (dir->kind) {
        case DirectiveKind::kCritical:
        case DirectiveKind::kSingle:
        case DirectiveKind::kMaster: {
          // Writes under mutual exclusion (or a single executor) are safe;
          // skip the whole construct.
          auto extent = statement_end(src, stmt_begin);
          pos = extent.has_value() ? std::min(end, *extent)
                                   : std::min(end, line_end);
          continue;
        }
        case DirectiveKind::kFor:
        case DirectiveKind::kParallelFor: {
          add_clause_vars(*dir, scan);
          std::string error2;
          auto header = parse_for_header(src, stmt_begin, &error2);
          if (header.has_value()) {
            // The worksharing loop variable both is private and partitions
            // any subscript it appears in.
            scan->safe.insert(header->var);
            scan->part_vars.insert(header->var);
          }
          pos = std::min(end, line_end); // fall through into the loop text
          continue;
        }
        case DirectiveKind::kParallel:
        case DirectiveKind::kSections:
        case DirectiveKind::kSection:
        case DirectiveKind::kThreadPrivate:
          add_clause_vars(*dir, scan);
          pos = std::min(end, line_end);
          continue;
        case DirectiveKind::kBarrier:
          pos = std::min(end, line_end);
          continue;
      }
      pos = std::min(end, line_end);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t id_begin = pos;
      while (pos < end && is_ident_char(src[pos])) {
        ++pos;
      }
      std::string tok = src.substr(id_begin, pos - id_begin);
      if (decl_pending && !is_keyword(tok)) {
        // `long local` / `double* row` — the declarator names a local.
        scan->safe.insert(tok);
        decl_pending = false;
        inc_dec_pending = false;
        continue;
      }
      if (is_type_keyword(tok)) {
        decl_pending = true;
        decl_stmt = true;
        inc_dec_pending = false;
        continue;
      }
      if (is_keyword(tok)) {
        inc_dec_pending = false;
        continue;
      }
      // Follow the access chain: subscripts and member selections keep the
      // base variable as the store target.
      bool subscripted = false;
      std::string subscript;
      std::size_t after = skip_blank(src, pos);
      while (after < end) {
        if (src[after] == '[') {
          int depth = 1;
          std::size_t close = after + 1;
          while (close < end && depth > 0) {
            depth += src[close] == '[' ? 1 : (src[close] == ']' ? -1 : 0);
            ++close;
          }
          subscripted = true;
          subscript += src.substr(after + 1, close - after - 2);
          subscript += ' ';
          after = skip_blank(src, close);
          continue;
        }
        if (src[after] == '.' ||
            (src[after] == '-' && after + 1 < end && src[after + 1] == '>')) {
          std::size_t m = after + (src[after] == '.' ? 1 : 2);
          m = skip_blank(src, m);
          while (m < end && is_ident_char(src[m])) {
            ++m;
          }
          after = skip_blank(src, m);
          continue;
        }
        break;
      }
      bool is_write = inc_dec_pending;
      inc_dec_pending = false;
      if (!is_write && after < end) {
        std::string_view rest(src.data() + after,
                              std::min<std::size_t>(3, end - after));
        if (rest.rfind("++", 0) == 0 || rest.rfind("--", 0) == 0) {
          is_write = true;
        } else if (rest.size() >= 3 &&
                   (rest.substr(0, 3) == "<<=" || rest.substr(0, 3) == ">>=")) {
          is_write = true;
        } else if (rest.size() >= 2 && rest[1] == '=' &&
                   std::string_view("+-*/%&|^").find(rest[0]) !=
                       std::string_view::npos) {
          is_write = true;
        } else if (rest[0] == '=' && (rest.size() < 2 || rest[1] != '=')) {
          is_write = true;
        }
      }
      if (is_write && !protected_ctx) {
        // `*p = ...` writes through a pointer, not to `p`; skip (blind spot).
        std::size_t back = id_begin;
        while (back > 0 && (src[back - 1] == ' ' || src[back - 1] == '\t' ||
                            src[back - 1] == '\n')) {
          --back;
        }
        bool deref = back > 0 && src[back - 1] == '*';
        if (!deref) {
          scan->writes.push_back(
              Write{id_begin, tok, subscripted, subscript});
        }
      }
      pos = after;
      continue;
    }
    if (c == '+' && pos + 1 < end && src[pos + 1] == '+') {
      inc_dec_pending = true;
      pos += 2;
      continue;
    }
    if (c == '-' && pos + 1 < end && src[pos + 1] == '-') {
      inc_dec_pending = true;
      pos += 2;
      continue;
    }
    if (c == ';') {
      decl_pending = false;
      decl_stmt = false;
      inc_dec_pending = false;
      ++pos;
      continue;
    }
    if (c == ',') {
      // `int a = 1, b;` — the next declarator is a local too.
      decl_pending = decl_stmt;
      ++pos;
      continue;
    }
    if (c == '*' || c == '&') {
      ++pos; // declarator punctuation keeps decl_pending alive
      continue;
    }
    if (c == '=' || c == '(') {
      decl_pending = false; // initializer / call: idents inside are reads
      ++pos;
      continue;
    }
    inc_dec_pending = false;
    ++pos;
  }
}

bool subscript_is_partitioned(const RegionScan& scan, const Write& w) {
  std::size_t pos = 0;
  while (pos < w.subscript.size()) {
    if (!is_ident_start(w.subscript[pos])) {
      ++pos;
      continue;
    }
    std::size_t begin = pos;
    while (pos < w.subscript.size() && is_ident_char(w.subscript[pos])) {
      ++pos;
    }
    if (scan.part_vars.count(w.subscript.substr(begin, pos - begin)) != 0) {
      return true;
    }
  }
  return false;
}

// Top-level walk: find each `#pragma omp parallel` / `parallel for` region
// and lint its extent.
void lint_range(const std::string& src, std::size_t pos, std::size_t end,
                std::vector<LintDiagnostic>* out) {
  while (pos < end) {
    std::size_t pragma_pos = src.find("#pragma", pos);
    if (pragma_pos == std::string::npos || pragma_pos >= end) {
      return;
    }
    std::size_t line_end = 0;
    auto text = omp_directive_text(src, pragma_pos, &line_end);
    if (!text.has_value()) {
      pos = pragma_line_end(src, pragma_pos) + 1;
      continue;
    }
    std::string error;
    auto dir = parse_directive(*text, &error);
    if (!dir.has_value() || (dir->kind != DirectiveKind::kParallel &&
                             dir->kind != DirectiveKind::kParallelFor)) {
      pos = line_end + 1;
      continue;
    }
    std::size_t body_begin = skip_blank(src, line_end);
    auto extent = statement_end(src, body_begin);
    std::size_t body_end = extent.has_value() ? std::min(end, *extent) : end;

    RegionScan scan;
    add_clause_vars(*dir, &scan);
    if (dir->kind == DirectiveKind::kParallelFor) {
      std::string error2;
      auto header = parse_for_header(src, body_begin, &error2);
      if (header.has_value()) {
        scan.safe.insert(header->var);
        scan.part_vars.insert(header->var);
      }
    }
    scan_region(src, body_begin, body_end, &scan, /*protected_ctx=*/false);

    std::set<std::string> reported;
    for (const auto& w : scan.writes) {
      if (scan.safe.count(w.var) != 0) {
        continue;
      }
      if (w.subscripted && subscript_is_partitioned(scan, w)) {
        continue;
      }
      if (!reported.insert(w.var).second) {
        continue;
      }
      LintDiagnostic d;
      d.line = line_of(src, w.pos);
      d.var = w.var;
      d.message = "line " + std::to_string(d.line) +
                  ": warning: shared variable '" + w.var +
                  "' written in parallel region without "
                  "reduction/critical/ordered protection [-Wshared-write]";
      out->push_back(std::move(d));
    }
    pos = body_end;
  }
}

} // namespace

std::vector<LintDiagnostic> lint_source(const std::string& src) {
  std::vector<LintDiagnostic> out;
  lint_range(src, 0, src.size(), &out);
  std::sort(out.begin(), out.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return a.line != b.line ? a.line < b.line : a.var < b.var;
            });
  return out;
}

} // namespace omsp::translate
