// Structural source scanning for the translator: statement/block extents,
// canonical for-loop headers, and pragma line detection. The scanner is
// token-shape-aware (strings, char literals, comments) but deliberately does
// not parse C — the paper's translator outlines the marked region verbatim
// and so do we.
#pragma once

#include <optional>
#include <string>

namespace omsp::translate {

// The [begin, end) extent of the statement starting at `pos` in `src`: a
// balanced {...} block, or a single statement up to its terminating ';'
// (with `for (...) stmt` handled recursively).
std::optional<std::size_t> statement_end(const std::string& src,
                                         std::size_t pos);

// Canonicalized `for` header: for (TYPE VAR = LO; VAR < HI; VAR++ / ++VAR /
// VAR += STEP).
struct ForHeader {
  std::string type; // may be empty when the loop reuses an outer variable
  std::string var;
  std::string lo;
  std::string hi;
  std::string step;      // "1" unless VAR += STEP
  std::size_t body_pos;  // index of the loop body statement
};

std::optional<ForHeader> parse_for_header(const std::string& src,
                                          std::size_t for_pos,
                                          std::string* error);

// Skip whitespace and comments starting at pos.
std::size_t skip_blank(const std::string& src, std::size_t pos);

} // namespace omsp::translate
