// OpenMP -> omsp::core code generation (§4 of the paper).
//
// The paper's translator encapsulates each parallel region into a separate
// subroutine and passes pointers to shared variables plus firstprivate
// initial values to the slaves at the fork. Our C++ target expresses exactly
// that lowering with lambdas:
//   * a parallel region becomes `rt.parallel([&](Team& t){ ... })` — the
//     by-reference capture is the shared-pointer struct;
//   * `private` variables are redeclared inside the outlined lambda (paper
//     §4.2: "allocated on the private stack of each thread");
//   * `firstprivate` variables are captured by value in an init-capture;
//   * `reduction` variables accumulate into a lambda-local copy and combine
//     through Team::reduce at region end;
//   * worksharing `for` becomes Team::for_loop with the schedule clause;
//   * critical/barrier/single/master map 1:1 onto Team operations.
#pragma once

#include <string>

namespace omsp::translate {

struct TranslateResult {
  bool ok = false;
  std::string output; // translated source
  std::string error;  // diagnostic when !ok
};

// Translate OpenMP-annotated source. `runtime_expr` is the C++ expression
// for the OmpRuntime to run regions on (default matches the preamble emitted
// by ompcc); `team_var` is the Team parameter name used in outlined regions.
TranslateResult translate_source(const std::string& source,
                                 const std::string& runtime_expr = "omsp_rt()");

} // namespace omsp::translate
