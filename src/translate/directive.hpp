// OpenMP directive model + pragma parser (the front half of the paper's §4
// SUIF-based translator, narrowed to the C/C++ subset the evaluation needs).
//
// Grammar handled (OpenMP C/C++ 1.0):
//   #pragma omp parallel [clauses]
//   #pragma omp for [clauses]            (inside a parallel region)
//   #pragma omp parallel for [clauses]
//   #pragma omp critical [(name)]
//   #pragma omp barrier
//   #pragma omp single [nowait] / master
//   #pragma omp threadprivate(list)
// Clauses: shared(list) private(list) firstprivate(list)
//          reduction(op: list) schedule(kind[, chunk]) num_threads(n) nowait
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace omsp::translate {

enum class DirectiveKind {
  kParallel,
  kFor,
  kParallelFor,
  kCritical,
  kBarrier,
  kSingle,
  kMaster,
  kSections,
  kSection,
  kThreadPrivate,
};

enum class ScheduleKind { kDefault, kStatic, kDynamic, kGuided, kRuntime };

enum class ReductionOp { kSum, kProd, kMin, kMax, kAnd, kOr };

struct Reduction {
  ReductionOp op;
  std::vector<std::string> vars;
};

struct Directive {
  DirectiveKind kind;
  std::vector<std::string> shared_vars;
  std::vector<std::string> private_vars;
  std::vector<std::string> firstprivate_vars;
  std::vector<Reduction> reductions;
  ScheduleKind schedule = ScheduleKind::kDefault;
  std::string schedule_chunk; // expression text; empty = default
  std::string num_threads;    // expression text; empty = all
  std::string critical_name;  // empty = unnamed
  bool nowait = false;
  std::vector<std::string> threadprivate_vars;
};

// Parse the text after "#pragma omp". Returns nullopt (with *error set) on
// malformed input.
std::optional<Directive> parse_directive(const std::string& text,
                                         std::string* error);

// Helpers exposed for tests.
std::vector<std::string> split_var_list(const std::string& inside);
const char* reduction_identity(ReductionOp op);
const char* reduction_combine_expr(ReductionOp op); // "a + b" etc.

} // namespace omsp::translate
