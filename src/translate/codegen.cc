#include "translate/codegen.hpp"

#include <cctype>
#include <sstream>

#include "translate/directive.hpp"
#include "translate/source.hpp"

namespace omsp::translate {

namespace {

struct Ctx {
  const std::string& src;
  const std::string& rt;
  std::string error;
  int depth = 0; // nesting of parallel regions (team variable scoping)
};

std::string team_var(int depth) {
  return depth == 0 ? "omsp_team" : "omsp_team" + std::to_string(depth);
}

// Emit declarations for private / firstprivate variables at the top of an
// outlined region body.
void emit_data_env(std::ostringstream& out, const Directive& d) {
  for (const auto& v : d.private_vars)
    out << "auto " << v << " = decltype(" << v << "){}; (void)" << v << ";\n";
  // firstprivate: handled via init-capture at the lambda, nothing here.
}

std::string schedule_expr(const Directive& d) {
  switch (d.schedule) {
  case ScheduleKind::kDefault:
  case ScheduleKind::kStatic:
    if (!d.schedule_chunk.empty())
      return "omsp::core::Schedule::static_chunked(" + d.schedule_chunk + ")";
    return "omsp::core::Schedule::static_block()";
  case ScheduleKind::kDynamic:
    return "omsp::core::Schedule::dynamic(" +
           (d.schedule_chunk.empty() ? std::string("1") : d.schedule_chunk) +
           ")";
  case ScheduleKind::kGuided:
    return "omsp::core::Schedule::guided(" +
           (d.schedule_chunk.empty() ? std::string("1") : d.schedule_chunk) +
           ")";
  case ScheduleKind::kRuntime:
    // Resolved from OMP_SCHEDULE at runtime-construction time.
    return "omsp_rt().runtime_schedule()";
  }
  return "omsp::core::Schedule::static_block()";
}

std::string capture_list(const Directive& d) {
  std::string cap = "&";
  for (const auto& v : d.firstprivate_vars) cap += ", " + v + " = " + v;
  return cap;
}

// Forward declaration: translates src[begin,end) appending to out.
bool translate_range(Ctx& ctx, std::size_t begin, std::size_t end,
                     std::ostringstream& out);

// Translate the body of a worksharing for directive.
bool emit_for(Ctx& ctx, const Directive& d, std::size_t for_pos,
              std::size_t stmt_end, std::ostringstream& out,
              const std::string& team) {
  std::string err;
  auto fh = parse_for_header(ctx.src, for_pos, &err);
  if (!fh) {
    ctx.error = err;
    return false;
  }
  // Reduction support: redeclare each reduction var locally, combine after.
  std::ostringstream pre, post;
  for (const auto& red : d.reductions) {
    for (const auto& v : red.vars) {
      pre << "auto omsp_red_" << v << " = decltype(" << v << "){"
          << "};\n";
      // reduce() returns the combined value on every thread; exactly one
      // thread folds it into the shared variable (OpenMP semantics: the
      // reduction result combines with the variable's prior contents), and a
      // barrier orders the update before any subsequent reads.
      post << "{ auto omsp_redval_" << v << " = " << team << ".reduce(omsp_red_"
           << v << ", [](auto a, auto b) { return "
           << reduction_combine_expr(red.op) << "; });\n";
      post << "if (" << team << ".thread_num() == 0) " << v
           << " = omsp_redval_" << v << " ";
      switch (red.op) {
      case ReductionOp::kSum: post << "+ " << v; break;
      case ReductionOp::kProd: post << "* " << v; break;
      default: break; // min/max/logical: prior value participates via init
      }
      post << ";\n" << team << ".barrier(); }\n";
    }
  }

  out << "{\n" << pre.str();
  emit_data_env(out, d);
  out << team << ".for_loop" << (d.nowait ? "_nowait" : "") << "(("
      << "std::int64_t)(" << fh->lo << "), (std::int64_t)(" << fh->hi
      << "), " << schedule_expr(d) << ", [" << capture_list(d)
      << "](std::int64_t " << fh->var << ") {\n";
  // Rewrite reduction accumulations: the body refers to the shared name; the
  // local accumulator must be used instead.
  const auto body_end = statement_end(ctx.src, fh->body_pos);
  if (!body_end) {
    ctx.error = "cannot find loop body extent";
    return false;
  }
  std::string body = ctx.src.substr(fh->body_pos, *body_end - fh->body_pos);
  for (const auto& red : d.reductions)
    for (const auto& v : red.vars) {
      // Textual substitution of the reduction variable (whole identifiers).
      std::string replaced;
      for (std::size_t i = 0; i < body.size();) {
        if (body.compare(i, v.size(), v) == 0 &&
            (i == 0 || (!std::isalnum(static_cast<unsigned char>(body[i - 1])) &&
                        body[i - 1] != '_')) &&
            (i + v.size() >= body.size() ||
             (!std::isalnum(static_cast<unsigned char>(body[i + v.size()])) &&
              body[i + v.size()] != '_'))) {
          replaced += "omsp_red_" + v;
          i += v.size();
        } else {
          replaced += body[i++];
        }
      }
      body = replaced;
    }
  out << body << "\n});\n" << post.str() << "}\n";
  (void)stmt_end;
  return true;
}

// Handle one "#pragma omp ..." at `pragma_pos`; sets *next to the position
// after the construct.
bool emit_directive(Ctx& ctx, std::size_t pragma_pos, std::size_t line_end,
                    std::size_t* next, std::ostringstream& out) {
  const std::size_t text_pos = ctx.src.find("omp", pragma_pos) + 3;
  const std::string text = ctx.src.substr(text_pos, line_end - text_pos);
  std::string err;
  auto d = parse_directive(text, &err);
  if (!d) {
    ctx.error = err;
    return false;
  }
  std::size_t stmt_begin = skip_blank(ctx.src, line_end);

  const std::string team = team_var(ctx.depth > 0 ? ctx.depth - 1 : 0);
  switch (d->kind) {
  case DirectiveKind::kBarrier:
    out << team << ".barrier();\n";
    *next = stmt_begin;
    return true;
  case DirectiveKind::kThreadPrivate:
    // Lowered by the programmer via omsp::core::ThreadPrivate<T>; emit a
    // marker comment (the declaration itself stays).
    out << "/* omsp: threadprivate(";
    for (const auto& v : d->threadprivate_vars) out << v << " ";
    out << ") — use omsp::core::ThreadPrivate<T> */\n";
    *next = stmt_begin;
    return true;
  default:
    break;
  }

  const auto stmt_stop = statement_end(ctx.src, stmt_begin);
  if (!stmt_stop) {
    ctx.error = "cannot find statement following directive";
    return false;
  }

  switch (d->kind) {
  case DirectiveKind::kParallel: {
    out << ctx.rt << ".parallel([" << capture_list(*d) << "](omsp::core::Team& "
        << team_var(ctx.depth) << ") {\n";
    emit_data_env(out, *d);
    ++ctx.depth;
    const bool ok = translate_range(ctx, stmt_begin, *stmt_stop, out);
    --ctx.depth;
    if (!ok) return false;
    out << "}" << (d->num_threads.empty() ? "" : ", " + d->num_threads)
        << ");\n";
    break;
  }
  case DirectiveKind::kParallelFor: {
    out << ctx.rt << ".parallel([" << capture_list(*d) << "](omsp::core::Team& "
        << team_var(ctx.depth) << ") {\n";
    emit_data_env(out, *d);
    ++ctx.depth;
    const bool ok = emit_for(ctx, *d, stmt_begin, *stmt_stop, out,
                             team_var(ctx.depth - 1));
    --ctx.depth;
    if (!ok) return false;
    out << "}" << (d->num_threads.empty() ? "" : ", " + d->num_threads)
        << ");\n";
    break;
  }
  case DirectiveKind::kFor:
    if (ctx.depth == 0) {
      ctx.error = "#pragma omp for outside a parallel region";
      return false;
    }
    if (!emit_for(ctx, *d, stmt_begin, *stmt_stop, out, team)) return false;
    break;
  case DirectiveKind::kCritical:
    out << team << ".critical(\"" << d->critical_name << "\", [&] {\n";
    if (!translate_range(ctx, stmt_begin, *stmt_stop, out)) return false;
    out << "});\n";
    break;
  case DirectiveKind::kSingle:
    out << team << ".single([&] {\n";
    if (!translate_range(ctx, stmt_begin, *stmt_stop, out)) return false;
    out << "}" << (d->nowait ? ", true" : "") << ");\n";
    break;
  case DirectiveKind::kMaster:
    out << team << ".master([&] {\n";
    if (!translate_range(ctx, stmt_begin, *stmt_stop, out)) return false;
    out << "});\n";
    break;
  case DirectiveKind::kSections: {
    // The block contains `#pragma omp section` markers; each marked
    // statement becomes one element of the Team::sections vector.
    std::size_t pos = skip_blank(ctx.src, stmt_begin);
    if (pos >= ctx.src.size() || ctx.src[pos] != '{') {
      ctx.error = "sections requires a { ... } block";
      return false;
    }
    out << team << ".sections({\n";
    ++pos;
    const std::size_t block_end = *stmt_stop - 1; // closing brace
    bool first_section = true;
    while (true) {
      pos = skip_blank(ctx.src, pos);
      if (pos >= block_end) break;
      const std::size_t marker = ctx.src.find("#pragma", pos);
      if (marker == std::string::npos || marker >= block_end) {
        ctx.error = "content in sections block outside a section";
        return false;
      }
      std::size_t line_end2 = ctx.src.find('\n', marker);
      const std::string text2 =
          ctx.src.substr(marker, line_end2 - marker);
      if (text2.find("omp") == std::string::npos ||
          text2.find("section") == std::string::npos) {
        ctx.error = "unexpected pragma inside sections block";
        return false;
      }
      const std::size_t body_begin = skip_blank(ctx.src, line_end2);
      const auto body_end = statement_end(ctx.src, body_begin);
      if (!body_end) {
        ctx.error = "cannot find section body";
        return false;
      }
      if (!first_section) out << ",\n";
      first_section = false;
      out << "[&] {\n";
      if (!translate_range(ctx, body_begin, *body_end, out)) return false;
      out << "}";
      pos = *body_end;
    }
    out << "\n}" << (d->nowait ? ", true" : "") << ");\n";
    break;
  }
  case DirectiveKind::kSection:
    ctx.error = "#pragma omp section outside a sections block";
    return false;
  default:
    ctx.error = "unhandled directive";
    return false;
  }
  *next = *stmt_stop;
  return true;
}

bool translate_range(Ctx& ctx, std::size_t begin, std::size_t end,
                     std::ostringstream& out) {
  std::size_t pos = begin;
  while (pos < end) {
    const std::size_t pragma = ctx.src.find("#pragma", pos);
    if (pragma == std::string::npos || pragma >= end) {
      out << ctx.src.substr(pos, end - pos);
      return true;
    }
    // Is it an omp pragma?
    std::size_t after = pragma + 7;
    after = skip_blank(ctx.src, after);
    if (ctx.src.compare(after, 3, "omp") != 0) {
      const std::size_t line_end = ctx.src.find('\n', pragma);
      out << ctx.src.substr(pos, (line_end == std::string::npos ? end
                                                                : line_end) -
                                     pos);
      pos = line_end == std::string::npos ? end : line_end;
      continue;
    }
    out << ctx.src.substr(pos, pragma - pos);
    std::size_t line_end = ctx.src.find('\n', pragma);
    // Continuation lines with trailing backslash.
    while (line_end != std::string::npos && line_end > 0 &&
           ctx.src[line_end - 1] == '\\')
      line_end = ctx.src.find('\n', line_end + 1);
    if (line_end == std::string::npos) line_end = end;
    std::size_t next = 0;
    if (!emit_directive(ctx, pragma, line_end, &next, out)) return false;
    pos = next;
  }
  return true;
}

} // namespace

TranslateResult translate_source(const std::string& source,
                                 const std::string& runtime_expr) {
  TranslateResult result;
  Ctx ctx{source, runtime_expr, "", 0};
  std::ostringstream out;
  if (!translate_range(ctx, 0, source.size(), out)) {
    result.error = ctx.error;
    return result;
  }
  result.ok = true;
  result.output = out.str();
  return result;
}

} // namespace omsp::translate
