#include "translate/directive.hpp"

#include <cctype>

namespace omsp::translate {

namespace {

// Minimal token cursor over the pragma text.
class Cursor {
public:
  explicit Cursor(const std::string& s) : s_(&s) {}

  void skip_ws() {
    while (pos_ < s_->size() && std::isspace(static_cast<unsigned char>((*s_)[pos_])))
      ++pos_;
  }

  bool done() {
    skip_ws();
    return pos_ >= s_->size();
  }

  // Read an identifier (empty if next char is not an identifier start).
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_->size() &&
           (std::isalnum(static_cast<unsigned char>((*s_)[pos_])) || (*s_)[pos_] == '_'))
      ++pos_;
    return s_->substr(start, pos_ - start);
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_->size() && (*s_)[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Read a balanced "(...)" group, returning the inside text.
  std::optional<std::string> paren_group() {
    skip_ws();
    if (pos_ >= s_->size() || (*s_)[pos_] != '(') return std::nullopt;
    int depth = 0;
    std::size_t start = pos_ + 1;
    for (std::size_t i = pos_; i < s_->size(); ++i) {
      if ((*s_)[i] == '(') ++depth;
      if ((*s_)[i] == ')') {
        --depth;
        if (depth == 0) {
          std::string inside = s_->substr(start, i - start);
          pos_ = i + 1;
          return inside;
        }
      }
    }
    return std::nullopt;
  }

private:
  const std::string* s_;
  std::size_t pos_ = 0;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<ReductionOp> parse_reduction_op(const std::string& op) {
  if (op == "+" || op == "|+|") return ReductionOp::kSum;
  if (op == "*") return ReductionOp::kProd;
  if (op == "min") return ReductionOp::kMin;
  if (op == "max") return ReductionOp::kMax;
  if (op == "&&" || op == "&") return ReductionOp::kAnd;
  if (op == "||" || op == "|") return ReductionOp::kOr;
  return std::nullopt;
}

// Parse the clause tail shared by parallel/for directives.
bool parse_clauses(Cursor& cur, Directive& d, std::string* error) {
  while (!cur.done()) {
    const std::string name = cur.ident();
    if (name.empty()) {
      *error = "expected clause name";
      return false;
    }
    if (name == "nowait") {
      d.nowait = true;
      continue;
    }
    auto group = cur.paren_group();
    if (name == "shared" || name == "private" || name == "firstprivate") {
      if (!group) {
        *error = name + " clause needs a variable list";
        return false;
      }
      auto vars = split_var_list(*group);
      auto& dst = name == "shared"    ? d.shared_vars
                  : name == "private" ? d.private_vars
                                      : d.firstprivate_vars;
      dst.insert(dst.end(), vars.begin(), vars.end());
    } else if (name == "reduction") {
      if (!group) {
        *error = "reduction clause needs (op: list)";
        return false;
      }
      const auto colon = group->find(':');
      if (colon == std::string::npos) {
        *error = "reduction clause missing ':'";
        return false;
      }
      const auto op = parse_reduction_op(trim(group->substr(0, colon)));
      if (!op) {
        *error = "unsupported reduction operator";
        return false;
      }
      Reduction r;
      r.op = *op;
      r.vars = split_var_list(group->substr(colon + 1));
      d.reductions.push_back(std::move(r));
    } else if (name == "schedule") {
      if (!group) {
        *error = "schedule clause needs (kind[, chunk])";
        return false;
      }
      std::string kind = *group, chunk;
      if (const auto comma = group->find(','); comma != std::string::npos) {
        kind = group->substr(0, comma);
        chunk = trim(group->substr(comma + 1));
      }
      kind = trim(kind);
      if (kind == "static")
        d.schedule = ScheduleKind::kStatic;
      else if (kind == "dynamic")
        d.schedule = ScheduleKind::kDynamic;
      else if (kind == "guided")
        d.schedule = ScheduleKind::kGuided;
      else if (kind == "runtime")
        d.schedule = ScheduleKind::kRuntime;
      else {
        *error = "unsupported schedule kind '" + kind + "'";
        return false;
      }
      d.schedule_chunk = chunk;
    } else if (name == "num_threads") {
      if (!group) {
        *error = "num_threads needs an expression";
        return false;
      }
      d.num_threads = trim(*group);
    } else if (name == "default") {
      // default(shared) is our model already; default(none) is advisory.
    } else {
      *error = "unknown clause '" + name + "'";
      return false;
    }
  }
  return true;
}

} // namespace

std::vector<std::string> split_var_list(const std::string& inside) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : inside) {
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      if (auto t = trim(cur); !t.empty()) out.push_back(t);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (auto t = trim(cur); !t.empty()) out.push_back(t);
  return out;
}

const char* reduction_identity(ReductionOp op) {
  switch (op) {
  case ReductionOp::kSum: return "0";
  case ReductionOp::kProd: return "1";
  case ReductionOp::kMin: return "std::numeric_limits<double>::max()";
  case ReductionOp::kMax: return "std::numeric_limits<double>::lowest()";
  case ReductionOp::kAnd: return "1";
  case ReductionOp::kOr: return "0";
  }
  return "0";
}

const char* reduction_combine_expr(ReductionOp op) {
  switch (op) {
  case ReductionOp::kSum: return "a + b";
  case ReductionOp::kProd: return "a * b";
  case ReductionOp::kMin: return "a < b ? a : b";
  case ReductionOp::kMax: return "a > b ? a : b";
  case ReductionOp::kAnd: return "a && b";
  case ReductionOp::kOr: return "a || b";
  }
  return "a + b";
}

std::optional<Directive> parse_directive(const std::string& text,
                                         std::string* error) {
  Cursor cur(text);
  Directive d{};
  const std::string first = cur.ident();
  if (first == "parallel") {
    // Either `parallel` or `parallel for`.
    Cursor peek = cur;
    const std::string second = peek.ident();
    if (second == "for") {
      cur = peek;
      d.kind = DirectiveKind::kParallelFor;
    } else {
      d.kind = DirectiveKind::kParallel;
    }
  } else if (first == "for") {
    d.kind = DirectiveKind::kFor;
  } else if (first == "critical") {
    d.kind = DirectiveKind::kCritical;
    if (auto group = cur.paren_group()) d.critical_name = trim(*group);
    return d;
  } else if (first == "barrier") {
    d.kind = DirectiveKind::kBarrier;
    return d;
  } else if (first == "single") {
    d.kind = DirectiveKind::kSingle;
    Cursor peek = cur;
    if (peek.ident() == "nowait") {
      cur = peek;
      d.nowait = true;
    }
    return d;
  } else if (first == "master") {
    d.kind = DirectiveKind::kMaster;
    return d;
  } else if (first == "sections") {
    d.kind = DirectiveKind::kSections;
    Cursor peek = cur;
    if (peek.ident() == "nowait") {
      cur = peek;
      d.nowait = true;
    }
    return d;
  } else if (first == "section") {
    d.kind = DirectiveKind::kSection;
    return d;
  } else if (first == "threadprivate") {
    d.kind = DirectiveKind::kThreadPrivate;
    auto group = cur.paren_group();
    if (!group) {
      *error = "threadprivate needs a variable list";
      return std::nullopt;
    }
    d.threadprivate_vars = split_var_list(*group);
    return d;
  } else {
    *error = "unknown directive '" + first + "'";
    return std::nullopt;
  }
  if (!parse_clauses(cur, d, error)) return std::nullopt;
  return d;
}

} // namespace omsp::translate
