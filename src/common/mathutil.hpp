// Small arithmetic helpers used across the runtime.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omsp {

constexpr std::uint64_t round_up(std::uint64_t x, std::uint64_t align) {
  return (x + align - 1) / align * align;
}

constexpr std::uint64_t round_down(std::uint64_t x, std::uint64_t align) {
  return x / align * align;
}

constexpr bool is_pow2(std::uint64_t x) { return x && (x & (x - 1)) == 0; }

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// Block decomposition: the contiguous [begin, end) slice of n items that
// worker `who` of `nworkers` owns (earlier workers get the remainder).
struct BlockRange {
  std::uint64_t begin;
  std::uint64_t end;
};

constexpr BlockRange block_partition(std::uint64_t n, std::uint32_t nworkers,
                                     std::uint32_t who) {
  const std::uint64_t base = n / nworkers;
  const std::uint64_t rem = n % nworkers;
  const std::uint64_t begin =
      static_cast<std::uint64_t>(who) * base + (who < rem ? who : rem);
  const std::uint64_t len = base + (who < rem ? 1 : 0);
  return {begin, begin + len};
}

} // namespace omsp
