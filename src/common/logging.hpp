// Minimal leveled logger. Protocol code logs at kTrace/kDebug; those levels
// are off by default so the fault handler stays cheap. The sink is a plain
// FILE* write, which keeps logging usable from SIGSEGV context in practice
// (we only enable it while debugging).
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace omsp {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void logf(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    if (!enabled(level)) return;
    static const char* names[] = {"TRACE", "DEBUG", "INFO",
                                  "WARN",  "ERROR", "OFF"};
    std::fprintf(stderr, "[omsp %s] ", names[static_cast<int>(level)]);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
  }

private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
};

} // namespace omsp

#define OMSP_LOG(level, ...)                                                  \
  do {                                                                        \
    if (::omsp::Logger::instance().enabled(level)) [[unlikely]]               \
      ::omsp::Logger::instance().logf(level, __VA_ARGS__);                    \
  } while (0)

#define OMSP_TRACE(...) OMSP_LOG(::omsp::LogLevel::kTrace, __VA_ARGS__)
#define OMSP_DEBUG(...) OMSP_LOG(::omsp::LogLevel::kDebug, __VA_ARGS__)
#define OMSP_INFO(...) OMSP_LOG(::omsp::LogLevel::kInfo, __VA_ARGS__)
#define OMSP_WARN(...) OMSP_LOG(::omsp::LogLevel::kWarn, __VA_ARGS__)
#define OMSP_ERROR(...) OMSP_LOG(::omsp::LogLevel::kError, __VA_ARGS__)
