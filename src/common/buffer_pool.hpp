// Free-list pools for the allocation-heavy hot paths (ISSUE 8): twin pages
// (one 4 KB block per write fault) and byte-vector scratch (diff encoding,
// envelope payloads, serialization buffers). Neither pool changes any
// modeled number — they only recycle host memory that used to come from the
// allocator each time.
//
// Thread safety: both pools take a mutex per acquire/release. The hot paths
// that use them are per-context (twins) or per-transport-worker (payload
// scratch), so contention is between a handful of threads at page-fault
// frequency — far below the allocator traffic they replace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace omsp {

// Fixed-size block pool. acquire() hands out a unique_ptr whose deleter
// returns the block to the pool (so existing unique_ptr-holding code keeps
// its ownership discipline); blocks are created zero-initialized exactly
// like the make_unique<uint8_t[]>(n) calls they replace, and REMAIN zeroed
// on reuse is NOT guaranteed — callers that need defined contents must fill
// the block (every twin is memcpy-filled immediately).
class PagePool {
 public:
  explicit PagePool(std::size_t block_bytes) : block_bytes_(block_bytes) {}

  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  class Deleter {
   public:
    Deleter() = default;
    explicit Deleter(PagePool* pool) : pool_(pool) {}
    void operator()(std::uint8_t* p) const {
      if (pool_ != nullptr)
        pool_->release(p);
      else
        delete[] p;
    }

   private:
    PagePool* pool_ = nullptr;
  };
  using Handle = std::unique_ptr<std::uint8_t[], Deleter>;

  // A handle's deleter points back at this pool: the pool must outlive every
  // handle it produced (declare the pool before the structures holding the
  // handles).
  Handle acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::uint8_t* p = free_.back().release();
        free_.pop_back();
        return Handle(p, Deleter(this));
      }
    }
    return Handle(new std::uint8_t[block_bytes_](), Deleter(this));
  }

  std::size_t block_bytes() const { return block_bytes_; }

  std::size_t free_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  void release(std::uint8_t* p) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.emplace_back(p);
  }

  const std::size_t block_bytes_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<std::uint8_t[]>> free_;
};

// Byte-vector pool: recycles the backing capacity of std::vector<uint8_t>
// scratch buffers. acquire() returns a cleared vector (size 0) with
// whatever capacity its previous life grew; release() takes the vector
// back. Dropping a vector on the floor instead of releasing it is safe —
// the pool just re-grows.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  std::vector<std::uint8_t> acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) return {};
    std::vector<std::uint8_t> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  void release(std::vector<std::uint8_t>&& v) {
    if (v.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.size() < kMaxFree) free_.push_back(std::move(v));
  }

  std::size_t free_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  // Bounds pool growth under bursts (e.g. a barrier flushing every dirty
  // page at once): beyond this the excess vectors go back to the allocator.
  static constexpr std::size_t kMaxFree = 256;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> free_;
};

} // namespace omsp
