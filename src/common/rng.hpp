// Deterministic pseudo-random generators for workload construction and
// property tests. We avoid std::mt19937's size and seed-sensitivity: apps and
// tests need cheap, reproducible streams that can be split per worker.
#pragma once

#include <cstdint>

namespace omsp {

// SplitMix64 — used to seed and to derive per-worker streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — the main generator.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x6d73704f'70656eULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Bias is negligible for bound << 2^64.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound ? next_u64() % bound : 0;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64()); }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double p = 0.5) { return next_double() < p; }

  // Derive an independent stream for worker `index`.
  Rng split(std::uint64_t index) const {
    std::uint64_t sm = s_[0] ^ (index * 0x9e3779b97f4a7c15ULL + 0x1234567);
    return Rng(splitmix64(sm));
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

} // namespace omsp
