// Fundamental identifier and size types shared across the OMSP libraries.
//
// Conventions:
//  * A "context" is one DSM address space: one per node in thread mode, one
//    per processor in process mode.
//  * A "rank" identifies an OpenMP/MPI worker globally in [0, nprocs).
//  * Global shared-heap addresses are byte offsets from the heap base so they
//    are meaningful in every context regardless of where its copy is mapped.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omsp {

using NodeId = std::uint32_t;     // physical SMP node index
using ProcId = std::uint32_t;     // processor index within a node
using Rank = std::uint32_t;       // global worker index
using ContextId = std::uint32_t;  // DSM address-space index
using PageId = std::uint32_t;     // page index within the shared heap
using LockId = std::uint32_t;     // TreadMarks lock identifier
using GlobalAddr = std::uint64_t; // byte offset into the shared heap

inline constexpr ContextId kInvalidContext = ~ContextId{0};
inline constexpr PageId kInvalidPage = ~PageId{0};
inline constexpr GlobalAddr kNullGlobalAddr = ~GlobalAddr{0};

// Interval sequence number local to a creating context. Interval 0 is the
// implicit initial interval (all-zero heap) that every context knows.
using IntervalSeq = std::uint32_t;

} // namespace omsp
