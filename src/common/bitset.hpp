// Dynamic bitset used for page-level dirty/valid tracking. Sized at heap
// creation; the fault-path operations (test/set/reset) are branch-free word
// ops. Not thread-safe by itself — callers hold the relevant page or context
// lock.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace omsp {

class DynamicBitset {
public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    OMSP_DCHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i) {
    OMSP_DCHECK(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    OMSP_DCHECK(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  // Visit every set bit in ascending order.
  template <typename Fn> void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

} // namespace omsp
