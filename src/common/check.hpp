// Invariant checking. OMSP_CHECK is always on (the runtime is a memory
// consistency protocol: silent corruption is far worse than an abort);
// OMSP_DCHECK compiles out in NDEBUG builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace omsp::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "OMSP_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

} // namespace omsp::detail

#define OMSP_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr)) [[unlikely]]                                                 \
      ::omsp::detail::check_failed(#expr, __FILE__, __LINE__, "");            \
  } while (0)

#define OMSP_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) [[unlikely]]                                                 \
      ::omsp::detail::check_failed(#expr, __FILE__, __LINE__, (msg));         \
  } while (0)

#ifdef NDEBUG
#define OMSP_DCHECK(expr) ((void)0)
#else
#define OMSP_DCHECK(expr) OMSP_CHECK(expr)
#endif
