// Byte-level serialization for protocol messages.
//
// Every request/reply that crosses a context boundary is serialized through
// these classes so message *sizes* reported in Table 2 reflect real encoded
// bytes, not sizeof() of in-memory structs. Encoding is little-endian
// fixed-width for trivially-copyable scalars plus length-prefixed spans.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace omsp {

// Serialized size of a length-prefixed span of n elements of T — the single
// source of wire-layout arithmetic for put_span/get_span payloads, so code
// that pre-accounts message volumes can never drift from the encoder.
template <typename T>
  requires std::is_trivially_copyable_v<T>
constexpr std::size_t span_wire_size(std::size_t n) {
  return sizeof(std::uint32_t) + n * sizeof(T);
}

class ByteWriter {
public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  // Length-prefixed span of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> values) {
    put<std::uint32_t>(static_cast<std::uint32_t>(values.size()));
    put_bytes(values.data(), values.size_bytes());
  }

  void put_string(std::string_view s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  std::size_t size() const { return buf_.size(); }
  const std::uint8_t* data() const { return buf_.data(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(std::span<const std::uint8_t> bytes)
      : ByteReader(bytes.data(), bytes.size()) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    OMSP_CHECK_MSG(pos_ + sizeof(T) <= size_, "ByteReader underflow");
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void get_bytes(void* out, std::size_t n) {
    OMSP_CHECK_MSG(pos_ + n <= size_, "ByteReader underflow");
    if (n == 0) return; // out may be null for an empty span (vector::data())
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_span() {
    auto count = get<std::uint32_t>();
    std::vector<T> out(count);
    get_bytes(out.data(), count * sizeof(T));
    return out;
  }

  std::string get_string() {
    auto count = get<std::uint32_t>();
    std::string out(count, '\0');
    get_bytes(out.data(), count);
    return out;
  }

  // Borrow n bytes without copying; valid while the underlying buffer lives.
  std::span<const std::uint8_t> view_bytes(std::size_t n) {
    OMSP_CHECK_MSG(pos_ + n <= size_, "ByteReader underflow");
    std::span<const std::uint8_t> out(data_ + pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }

private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

} // namespace omsp
