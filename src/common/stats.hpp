// Statistics counters for the Table 2 / Table 3 measurements.
//
// Every protocol-visible event (message sent, bytes moved, mprotect issued,
// SIGSEGV taken, twin made, diff created/applied, ...) increments a named
// counter on the StatsBoard of the context where it happened. Counters are
// relaxed atomics: the totals are read only at quiescent points (after joins
// and barriers — the same points where trace rings are drained), so no
// ordering is needed, only loss-free increments from concurrent threads of a
// node.
//
// Cross-check invariant: every add() on a protocol path is paired with an
// OMSP_TRACE_EVENT emission at the same site, so a lossless trace folds back
// into an identical StatsSnapshot (trace::reconstruct_counters). Adding or
// moving a counter increment without its event (or vice versa) breaks
// `omsp-trace check` and the trace integration tests. DsmSystem::reset_stats
// clears both layers together to keep their windows aligned.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace omsp {

// The full set of countable events. Kept as an enum (not string keys) so the
// fault path is an indexed add.
enum class Counter : std::size_t {
  kMsgsSent = 0,     // protocol messages (requests + replies)
  kBytesSent,        // serialized payload bytes
  kMsgsOffNode,      // subset of kMsgsSent that crossed a physical node
  kBytesOffNode,
  kMprotect,         // page-protection system calls
  kPageFaults,       // SIGSEGV-driven access misses on the shared heap
  kReadFaults,
  kWriteFaults,
  kTwins,            // twin (page copy) creations
  kDiffsCreated,
  kDiffsApplied,
  kDiffBytesCreated, // encoded diff payload bytes
  kIntervals,        // intervals closed (releases that had local writes/sync)
  kWriteNoticesSent,
  kWriteNoticesRecv,
  kPageInvalidations,
  kBarriers,         // barrier episodes observed by this context
  kLockAcquires,
  kLockRemoteAcquires, // acquires that needed a message to manager/holder
  kFullPageFetches,
  kPrefetchBatches,     // aggregated kDiffRequestBatch rounds issued
  kPrefetchPagesFetched, // pages covered by those batches
  kPrefetchHits,        // fault-time creator needs satisfied from the buffer
  kMsgsLost,            // one-way deliveries dropped by the lossy transport
  kRetransmits,         // retransmissions issued after a modeled RTO expiry
  kAcksSent,            // explicit ack messages for reliable notice channels
  kCollStages,          // hierarchical-collective schedule edges traversed
  kCollBytes,           // wire bytes carried across those schedule edges
  kZeroCopyDeliveries,  // same-node payloads handed over as views, no copy
  kZeroCopyBytes,       // payload bytes those deliveries avoided copying
  kRaceChecks,          // detector pairwise concurrency checks (OMSP_RACE)
  kRacesDetected,       // write-write race reports from those checks
  kContentionStageWaits, // sends that queued behind a busy link segment, one
                         // per (message, segment) wait along the path
  kCount
};

inline const char* counter_name(Counter c) {
  static constexpr std::array<const char*, static_cast<std::size_t>(Counter::kCount)>
      names = {"msgs_sent",        "bytes_sent",      "msgs_offnode",
               "bytes_offnode",    "mprotect",        "page_faults",
               "read_faults",      "write_faults",    "twins",
               "diffs_created",    "diffs_applied",   "diff_bytes_created",
               "intervals",        "write_notices_sent",
               "write_notices_recv", "page_invalidations",
               "barriers",         "lock_acquires",   "lock_remote_acquires",
               "full_page_fetches", "prefetch_batches",
               "prefetch_pages_fetched", "prefetch_hits",
               "msgs_lost",        "retransmits",     "acks_sent",
               "coll_stages",      "coll_bytes",
               "zerocopy_deliveries", "zerocopy_bytes",
               "race_checks",      "races_detected",
               "contention_stage_waits"};
  return names[static_cast<std::size_t>(c)];
}

class StatsBoard {
public:
  StatsBoard() {
    for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  }

  void add(Counter c, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(c)].fetch_add(n,
                                                     std::memory_order_relaxed);
  }

  std::uint64_t get(Counter c) const {
    return counters_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }

  void reset() {
    for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  }

  // Accumulate this board into `out[counter]`.
  void accumulate(std::array<std::uint64_t,
                             static_cast<std::size_t>(Counter::kCount)>& out)
      const {
    for (std::size_t i = 0; i < counters_.size(); ++i)
      out[i] += counters_[i].load(std::memory_order_relaxed);
  }

private:
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(Counter::kCount)>
      counters_;
};

// Aggregated, plain-value snapshot for reporting.
struct StatsSnapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)> v{};

  std::uint64_t operator[](Counter c) const {
    return v[static_cast<std::size_t>(c)];
  }
  std::uint64_t& operator[](Counter c) { return v[static_cast<std::size_t>(c)]; }

  StatsSnapshot& operator+=(const StatsSnapshot& other) {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] += other.v[i];
    return *this;
  }

  double data_mbytes() const {
    return static_cast<double>((*this)[Counter::kBytesSent]) / (1024.0 * 1024.0);
  }
  double offnode_mbytes() const {
    return static_cast<double>((*this)[Counter::kBytesOffNode]) /
           (1024.0 * 1024.0);
  }
};

} // namespace omsp
