// The OpenMP run-time library functions (OpenMP C/C++ 1.0 §3), bound to the
// calling thread's current team. Names carry the omsp_ prefix to avoid
// colliding with a host OpenMP runtime; the translator emits these.
#pragma once

#include <cstdint>

#include "core/runtime.hpp"

namespace omsp::core {

// --- execution environment ---------------------------------------------------
inline int omp_get_thread_num() {
  Team* t = OmpRuntime::current_team();
  return t != nullptr ? static_cast<int>(t->thread_num()) : 0;
}

inline int omp_get_num_threads() {
  Team* t = OmpRuntime::current_team();
  return t != nullptr ? static_cast<int>(t->num_threads()) : 1;
}

inline int omp_in_parallel() {
  return OmpRuntime::current_team() != nullptr ? 1 : 0;
}

inline int omp_get_max_threads(OmpRuntime& rt) {
  return static_cast<int>(rt.max_threads());
}

inline int omp_get_num_procs(OmpRuntime& rt) {
  return static_cast<int>(rt.dsm().config().topology.nprocs());
}

// --- timing -------------------------------------------------------------------
inline double omp_get_wtime(OmpRuntime& rt) { return rt.wtime(); }
// Resolution of the virtual clock: one microsecond.
inline double omp_get_wtick() { return 1e-6; }

// --- lock routines -------------------------------------------------------------
// omp_lock_t maps onto a TreadMarks lock. Lock ids are drawn from a range
// disjoint from critical sections and internal locks.
struct omp_lock_t {
  LockId id = 0;
  bool initialized = false;
};

inline constexpr LockId kFirstOmpLockId = 0x20000000;

class OmpLockAllocator {
public:
  explicit OmpLockAllocator(OmpRuntime& rt) : rt_(rt) {}

  void init(omp_lock_t* lock) {
    lock->id = next_.fetch_add(1);
    lock->initialized = true;
  }
  void destroy(omp_lock_t* lock) { lock->initialized = false; }
  void set(omp_lock_t* lock) {
    rt_.dsm().lock_acquire(lock->id);
  }
  void unset(omp_lock_t* lock) { rt_.dsm().lock_release(lock->id); }
  // omp_test_lock: acquire if free, never block.
  bool test(omp_lock_t* lock) { return rt_.dsm().lock_try_acquire(lock->id); }

private:
  OmpRuntime& rt_;
  std::atomic<LockId> next_{kFirstOmpLockId};
};

} // namespace omsp::core
