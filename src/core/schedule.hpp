// OpenMP 1.0 loop schedules (the `schedule` clause of the `for` directive).
//
// chunk_for(...) enumerates the chunks a given team member executes; it is a
// pure function of (schedule, bounds, team), so static and static-chunked
// schedules cost nothing at run time. Dynamic and guided schedules draw
// chunks from a shared counter (see Team::for_loop) the way TreadMarks-based
// OpenMP must: through synchronized shared state.
#pragma once

#include <cstdint>
#include <functional>

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace omsp::core {

enum class ScheduleKind { kStatic, kDynamic, kGuided };

struct Schedule {
  ScheduleKind kind = ScheduleKind::kStatic;
  std::int64_t chunk = 0; // 0 = default (static: block; dynamic/guided: 1)

  static Schedule static_block() { return {ScheduleKind::kStatic, 0}; }
  static Schedule static_chunked(std::int64_t chunk) {
    return {ScheduleKind::kStatic, chunk};
  }
  static Schedule dynamic(std::int64_t chunk = 1) {
    return {ScheduleKind::kDynamic, chunk};
  }
  static Schedule guided(std::int64_t chunk = 1) {
    return {ScheduleKind::kGuided, chunk};
  }
};

// Enumerate the [begin,end) chunks thread `tid` of `nthreads` executes for a
// *static* schedule over [lo, hi). Chunks are visited in ascending order.
template <typename Fn>
void static_chunks(std::int64_t lo, std::int64_t hi, std::int64_t chunk,
                   std::uint32_t tid, std::uint32_t nthreads, Fn&& fn) {
  OMSP_CHECK(nthreads > 0);
  const std::int64_t n = hi - lo;
  if (n <= 0) return;
  if (chunk <= 0) {
    // Default static: one contiguous block per thread.
    const auto range = block_partition(static_cast<std::uint64_t>(n), nthreads,
                                       tid);
    if (range.begin < range.end)
      fn(lo + static_cast<std::int64_t>(range.begin),
         lo + static_cast<std::int64_t>(range.end));
    return;
  }
  // static,chunk: chunks dealt round-robin starting at thread 0.
  for (std::int64_t start = lo + static_cast<std::int64_t>(tid) * chunk;
       start < hi; start += chunk * nthreads) {
    fn(start, start + chunk < hi ? start + chunk : hi);
  }
}

// Next chunk size for a guided schedule: remaining / nthreads, at least
// min_chunk (OpenMP 1.0 semantics).
inline std::int64_t guided_next_chunk(std::int64_t remaining,
                                      std::uint32_t nthreads,
                                      std::int64_t min_chunk) {
  const std::int64_t c = remaining / nthreads;
  return c > min_chunk ? c : min_chunk;
}

} // namespace omsp::core
