// The OpenMP runtime on top of TreadMarks — the paper's contribution (§4).
//
// A parallel region is an outlined function receiving a Team handle, exactly
// the shape the source translator emits:
//
//   #pragma omp parallel for           =>   rt.parallel([&](Team& t) {
//   for (i = 0; i < n; i++) a[i] = i;         t.for_loop(0, n, sched,
//                                                [&](int64 i){ a[i] = i; });
//                                           });
//
// Data environment lowering (§4.2):
//   * shared       — data in the DSM heap, captured by reference / GlobalPtr;
//   * private      — locals declared inside the outlined lambda;
//   * firstprivate — captured by value at the fork;
//   * reduction    — Team::reduce / Team::reduce_array (the paper extends the
//                    standard to array reductions for Water);
//   * threadprivate— ThreadPrivate<T>: one persistent copy per thread,
//                    indexed by the thread id (§4.2's array of copies).
//
// Synchronization directives map directly onto TreadMarks operations:
// barrier -> Tmk_barrier, critical -> a Tmk lock keyed by the critical's
// name, flush -> an acquire/release pair on a dedicated lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedule.hpp"
#include "tmk/system.hpp"

namespace omsp::core {

class Team;

// Reserved internal lock ids (application criticals get ids below these).
inline constexpr LockId kReduceLockId = 0x7fff0001;
inline constexpr LockId kFlushLockId = 0x7fff0002;
inline constexpr LockId kFirstCriticalLockId = 0x40000000;

class OmpRuntime {
public:
  explicit OmpRuntime(tmk::Config config);
  ~OmpRuntime();

  tmk::DsmSystem& dsm() { return dsm_; }
  std::uint32_t max_threads() const { return dsm_.nprocs(); }

  // #pragma omp parallel [num_threads(n)]
  // Runs fn on a team of n threads (default: omp_set_num_threads's value,
  // else OMP_NUM_THREADS, else all processors). Nested parallelism
  // serializes, as OpenMP 1.0 allows.
  void parallel(const std::function<void(Team&)>& fn, std::uint32_t num_threads = 0);

  // omp_set_num_threads / the OMP_NUM_THREADS environment variable.
  void set_num_threads(std::uint32_t n) { default_num_threads_ = n; }
  std::uint32_t num_threads_setting() const { return default_num_threads_; }

  // schedule(runtime): the OMP_SCHEDULE environment variable, parsed at
  // construction ("kind[,chunk]"); defaults to static.
  Schedule runtime_schedule() const { return runtime_schedule_; }

  // #pragma omp parallel for — shorthand for a region with a single for.
  void parallel_for(std::int64_t lo, std::int64_t hi, Schedule sched,
                    const std::function<void(std::int64_t)>& body,
                    std::uint32_t num_threads = 0);

  // Shared-heap allocation forwarding (the translator moves globals and
  // region-referenced stack variables to the shared heap, §4.2).
  template <typename T>
  tmk::GlobalPtr<T> alloc(std::size_t count = 1,
                          std::size_t align = alignof(T)) {
    return dsm_.alloc<T>(count, align);
  }
  template <typename T>
  tmk::GlobalPtr<T> alloc_page_aligned(std::size_t count = 1) {
    return dsm_.alloc_page_aligned<T>(count);
  }
  void free(GlobalAddr addr) { dsm_.shared_free(addr); }

  // Lock id for a named critical section (stable across the program run).
  LockId critical_lock_id(const std::string& name);

  // Simulated wall time in seconds (omp_get_wtime on the virtual clock).
  double wtime();

  // The team the calling thread is executing in, or nullptr outside regions.
  static Team* current_team();

private:
  friend class Team;

  tmk::DsmSystem dsm_;

  // Per-rank worksharing state, reset at region entry.
  struct RankState {
    std::uint64_t loop_count = 0;   // worksharing constructs encountered
    std::uint64_t single_count = 0; // single constructs encountered
  };
  std::vector<RankState> rank_state_;

  // Shared counters for dynamic/guided loops, keyed by construct instance.
  std::mutex loop_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::atomic<std::int64_t>>>
      loop_counters_;
  std::uint64_t region_epoch_ = 0;

  // single: highest construct instance already claimed.
  std::atomic<std::uint64_t> single_claimed_{0};

  // reduce: arrivals this episode; guarded by the DSM reduce lock.
  std::uint32_t reduce_arrivals_ = 0;
  GlobalAddr reduce_scratch_;
  static constexpr std::size_t kReduceScratchBytes = 4096;

  std::mutex critical_mutex_;
  std::unordered_map<std::string, LockId> critical_ids_;
  LockId next_critical_id_ = kFirstCriticalLockId;

  std::uint32_t default_num_threads_ = 0; // 0 = all processors
  Schedule runtime_schedule_ = Schedule::static_block();
};

// The handle a parallel region receives: thread identity, worksharing,
// synchronization and reductions.
class Team {
public:
  Team(OmpRuntime& rt, Rank rank, std::uint32_t size)
      : rt_(rt), rank_(rank), size_(size) {}

  std::uint32_t thread_num() const { return rank_; }
  std::uint32_t num_threads() const { return size_; }
  OmpRuntime& runtime() { return rt_; }

  // #pragma omp barrier
  void barrier() { rt_.dsm_.barrier(); }

  // #pragma omp for [schedule(...)] [nowait]
  void for_loop(std::int64_t lo, std::int64_t hi, Schedule sched,
                const std::function<void(std::int64_t)>& body) {
    for_loop_nowait(lo, hi, sched, body);
    barrier(); // implicit barrier at the end of a worksharing construct
  }
  void for_loop_nowait(std::int64_t lo, std::int64_t hi, Schedule sched,
                       const std::function<void(std::int64_t)>& body);

  // Chunked variant (the body receives [begin,end)): lets tight inner loops
  // avoid a std::function call per iteration.
  void for_chunks(std::int64_t lo, std::int64_t hi, Schedule sched,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  bool nowait = false);

  // #pragma omp critical [(name)]
  void critical(const std::function<void()>& fn) { critical("", fn); }
  void critical(const std::string& name, const std::function<void()>& fn);

  // #pragma omp single / master / sections
  void single(const std::function<void()>& fn, bool nowait = false);
  void master(const std::function<void()>& fn) {
    if (rank_ == 0) fn();
  }
  void sections(const std::vector<std::function<void()>>& sections,
                bool nowait = false);

  // #pragma omp flush — full-memory flush: acquire/release on a dedicated
  // lock propagates this thread's writes to the next flusher.
  void flush();

  // reduction(op:var) — returns the combined value on every thread.
  template <typename T, typename Op> T reduce(T local, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= OmpRuntime::kReduceScratchBytes);
    auto scratch = tmk::GlobalPtr<T>(rt_.reduce_scratch_);
    rt_.dsm_.lock_acquire(kReduceLockId);
    if (rt_.reduce_arrivals_++ == 0)
      *scratch = local;
    else
      *scratch = op(*scratch, local);
    if (rt_.reduce_arrivals_ == size_) rt_.reduce_arrivals_ = 0;
    rt_.dsm_.lock_release(kReduceLockId);
    barrier();
    T out = *scratch;
    barrier(); // scratch may be reused immediately after return
    return out;
  }

  // The paper's extension: reduction over arrays. Combines each thread's
  // `local[0..n)` into the shared vector `dst` (which must hold the identity
  // on entry of the first combiner; reduce_array initializes it from the
  // first arriver, matching scalar semantics).
  template <typename T, typename Op>
  void reduce_array(const T* local, tmk::GlobalPtr<T> dst, std::size_t n,
                    Op op) {
    rt_.dsm_.lock_acquire(kReduceLockId);
    T* d = dst.local();
    if (rt_.reduce_arrivals_++ == 0) {
      for (std::size_t i = 0; i < n; ++i) d[i] = local[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) d[i] = op(d[i], local[i]);
    }
    if (rt_.reduce_arrivals_ == size_) rt_.reduce_arrivals_ = 0;
    rt_.dsm_.lock_release(kReduceLockId);
    barrier();
  }

private:
  friend class OmpRuntime;
  std::atomic<std::int64_t>& loop_counter(std::uint64_t instance,
                                          std::int64_t init);

  OmpRuntime& rt_;
  Rank rank_;
  std::uint32_t size_;
};

// threadprivate lowering (§4.2): one persistent copy per thread, indexed by
// the (global) thread id. Copies live host-side: in the paper each node's
// globals are already private to the node and the translator adds per-thread
// copies within a node; the net effect — a private persistent copy per
// OpenMP thread — is what this reproduces.
template <typename T> class ThreadPrivate {
public:
  explicit ThreadPrivate(OmpRuntime& rt, T init = T{})
      : copies_(rt.max_threads(), Padded{init}) {}

  T& get(const Team& team) { return copies_[team.thread_num()].value; }
  T& get(std::uint32_t thread) { return copies_[thread].value; }

private:
  struct Padded {
    alignas(64) T value; // avoid (host) false sharing between copies
  };
  std::vector<Padded> copies_;
};

} // namespace omsp::core
