#include "core/runtime.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/tracer.hpp"

namespace omsp::core {

namespace {
thread_local Team* t_current_team = nullptr;
} // namespace

Team* OmpRuntime::current_team() { return t_current_team; }

namespace {

// Parse OMP_SCHEDULE ("kind[,chunk]", OpenMP 1.0 §4).
Schedule parse_omp_schedule(const char* value) {
  if (value == nullptr) return Schedule::static_block();
  std::string s(value);
  std::string kind = s;
  std::int64_t chunk = 0;
  if (const auto comma = s.find(','); comma != std::string::npos) {
    kind = s.substr(0, comma);
    chunk = std::atoll(s.c_str() + comma + 1);
  }
  if (kind == "dynamic") return Schedule::dynamic(chunk > 0 ? chunk : 1);
  if (kind == "guided") return Schedule::guided(chunk > 0 ? chunk : 1);
  if (kind == "static" && chunk > 0) return Schedule::static_chunked(chunk);
  return Schedule::static_block();
}

} // namespace

OmpRuntime::OmpRuntime(tmk::Config config) : dsm_(std::move(config)) {
  rank_state_.resize(dsm_.nprocs());
  reduce_scratch_ = dsm_.shared_malloc(kReduceScratchBytes, tmk::kPageSize);
  if (const char* env = std::getenv("OMP_NUM_THREADS"); env != nullptr) {
    const long n = std::atol(env);
    if (n > 0) default_num_threads_ = static_cast<std::uint32_t>(n);
  }
  runtime_schedule_ = parse_omp_schedule(std::getenv("OMP_SCHEDULE"));
}

OmpRuntime::~OmpRuntime() = default;

LockId OmpRuntime::critical_lock_id(const std::string& name) {
  std::lock_guard<std::mutex> lk(critical_mutex_);
  auto [it, inserted] = critical_ids_.emplace(name, next_critical_id_);
  if (inserted) ++next_critical_id_;
  return it->second;
}

double OmpRuntime::wtime() {
  auto* clock = sim::VirtualClock::current();
  OMSP_CHECK_MSG(clock != nullptr, "wtime() needs a bound virtual clock");
  clock->sync_cpu();
  return clock->now_us() * 1e-6;
}

void OmpRuntime::parallel(const std::function<void(Team&)>& fn,
                          std::uint32_t num_threads) {
  if (num_threads == 0) num_threads = default_num_threads_;
  if (num_threads == 0 || num_threads > dsm_.nprocs())
    num_threads = dsm_.nprocs();

  if (t_current_team != nullptr) {
    // Nested parallel region: OpenMP 1.0 serializes it — a team of one,
    // executed by the encountering thread.
    Team inner(*this, 0, 1);
    Team* outer = t_current_team;
    t_current_team = &inner;
    fn(inner);
    t_current_team = outer;
    return;
  }

  for (auto& rs : rank_state_) rs = RankState{};
  {
    std::lock_guard<std::mutex> lk(loop_mutex_);
    loop_counters_.clear();
    ++region_epoch_;
  }
  single_claimed_.store(0, std::memory_order_relaxed);

  const std::uint32_t team_size = num_threads;
  OMSP_TRACE_EVENT(kRegionBegin, 0, region_epoch_, team_size);
  dsm_.parallel([&](Rank rank) {
    if (rank >= team_size) return; // not a team member this region
    Team team(*this, rank, team_size);
    t_current_team = &team;
    fn(team);
    t_current_team = nullptr;
  });
  OMSP_TRACE_EVENT(kRegionEnd, 0, region_epoch_, team_size);
}

void OmpRuntime::parallel_for(std::int64_t lo, std::int64_t hi, Schedule sched,
                              const std::function<void(std::int64_t)>& body,
                              std::uint32_t num_threads) {
  parallel([&](Team& t) { t.for_loop_nowait(lo, hi, sched, body); },
           num_threads);
  // The region join is the barrier.
}

std::atomic<std::int64_t>& Team::loop_counter(std::uint64_t instance,
                                              std::int64_t init) {
  std::lock_guard<std::mutex> lk(rt_.loop_mutex_);
  const std::uint64_t key = (rt_.region_epoch_ << 32) | instance;
  auto it = rt_.loop_counters_.find(key);
  if (it == rt_.loop_counters_.end()) {
    it = rt_.loop_counters_
             .emplace(key,
                      std::make_unique<std::atomic<std::int64_t>>(init))
             .first;
  }
  return *it->second;
}

void Team::for_loop_nowait(std::int64_t lo, std::int64_t hi, Schedule sched,
                           const std::function<void(std::int64_t)>& body) {
  for_chunks(
      lo, hi, sched,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) body(i);
      },
      /*nowait=*/true);
}

void Team::for_chunks(std::int64_t lo, std::int64_t hi, Schedule sched,
                      const std::function<void(std::int64_t, std::int64_t)>&
                          body,
                      bool nowait) {
  const std::uint64_t instance = rt_.rank_state_[rank_].loop_count++;
  switch (sched.kind) {
  case ScheduleKind::kStatic:
    static_chunks(lo, hi, sched.chunk, rank_, size_, body);
    break;
  case ScheduleKind::kDynamic: {
    const std::int64_t chunk = sched.chunk > 0 ? sched.chunk : 1;
    auto& next = loop_counter(instance, lo);
    const ContextId cid = rt_.dsm_.config().context_of_rank(rank_);
    for (;;) {
      const std::int64_t b = next.fetch_add(chunk);
      if (b >= hi) break;
      // A chunk grab is a round trip to the loop's shared counter, which
      // lives with the team master (TreadMarks implements this with a lock
      // plus a shared index). Charge and count it honestly.
      if (cid != 0) {
        auto* clock = sim::VirtualClock::current();
        if (clock != nullptr) {
          auto& transport = rt_.dsm_.router().transport();
          const std::size_t bytes =
              net::msg_fixed_bytes(net::MsgType::kLoopChunk);
          clock->charge(transport.notify(
              net::Envelope::notice(cid, 0, net::MsgType::kLoopChunk, bytes)));
          clock->charge(transport.notify(
              net::Envelope::notice(0, cid, net::MsgType::kLoopChunk, bytes)));
          clock->charge(rt_.dsm_.config().cost.lock_service_us);
        }
      }
      body(b, b + chunk < hi ? b + chunk : hi);
    }
    break;
  }
  case ScheduleKind::kGuided: {
    const std::int64_t min_chunk = sched.chunk > 0 ? sched.chunk : 1;
    auto& next = loop_counter(instance, lo);
    const ContextId cid = rt_.dsm_.config().context_of_rank(rank_);
    for (;;) {
      std::int64_t b = next.load();
      std::int64_t c;
      do {
        if (b >= hi) break;
        c = guided_next_chunk(hi - b, size_, min_chunk);
      } while (!next.compare_exchange_weak(b, b + c));
      if (b >= hi) break;
      if (cid != 0) {
        auto* clock = sim::VirtualClock::current();
        if (clock != nullptr) {
          auto& transport = rt_.dsm_.router().transport();
          const std::size_t bytes =
              net::msg_fixed_bytes(net::MsgType::kLoopChunk);
          clock->charge(transport.notify(
              net::Envelope::notice(cid, 0, net::MsgType::kLoopChunk, bytes)));
          clock->charge(transport.notify(
              net::Envelope::notice(0, cid, net::MsgType::kLoopChunk, bytes)));
          clock->charge(rt_.dsm_.config().cost.lock_service_us);
        }
      }
      body(b, b + c < hi ? b + c : hi);
    }
    break;
  }
  }
  if (!nowait) barrier();
}

void Team::critical(const std::string& name,
                    const std::function<void()>& fn) {
  const LockId id = rt_.critical_lock_id(name);
  rt_.dsm_.lock_acquire(id);
  fn();
  rt_.dsm_.lock_release(id);
}

void Team::single(const std::function<void()>& fn, bool nowait) {
  const std::uint64_t instance = ++rt_.rank_state_[rank_].single_count;
  std::uint64_t expected = instance - 1;
  if (rt_.single_claimed_.compare_exchange_strong(expected, instance)) fn();
  if (!nowait) barrier();
}

void Team::sections(const std::vector<std::function<void()>>& sections,
                    bool nowait) {
  for (std::size_t s = rank_; s < sections.size(); s += size_) sections[s]();
  if (!nowait) barrier();
}

void Team::flush() {
  rt_.dsm_.lock_acquire(kFlushLockId);
  rt_.dsm_.lock_release(kFlushLockId);
}

} // namespace omsp::core
