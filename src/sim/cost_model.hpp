// LogP-style communication and VM-operation cost model.
//
// The host machine has one core and is ~50x faster per thread than a 1999
// PowerPC 604, so wall-clock time cannot reproduce the paper's Figure 1.
// Instead every runtime operation charges simulated microseconds to the
// calling thread's VirtualClock:
//
//   * messages:   one-way cost = sum over the stages of the src->dst path
//                 through the machine hierarchy (sim::Topology, see
//                 docs/TOPOLOGY.md) of latency + bytes / bandwidth. This
//                 struct owns the two inheritable (latency, bandwidth)
//                 pairs — intra-node shared memory and the inter-node SP2
//                 switch — that topology stages resolve by default;
//                 message_us(bytes, same_node) below is the two-stage
//                 shorthand, bit-for-bit what Topology::sp2() computes;
//   * VM ops:     fixed costs for mprotect, SIGSEGV dispatch, twin copies and
//                 per-byte diff creation/application;
//   * compute:    measured host CPU seconds (CLOCK_THREAD_CPUTIME_ID) scaled
//                 by cpu_scale to PowerPC-604-era speed.
//
// Defaults are calibrated to published TreadMarks/SP2-era measurements
// (small-message one-way latency ~60us on the SP2 switch through UDP/IP,
// ~10us via intra-node shared memory; sustained bandwidths ~35 MB/s and
// ~150 MB/s respectively; mprotect/fault in the tens of microseconds).
// Every knob is a plain struct member so benches and ablations can override.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omsp::sim {

struct CostModel {
  // --- interconnect -------------------------------------------------------
  double net_latency_us = 60.0;   // inter-node one-way message latency
  double net_bw_bytes_per_us = 35.0; // ~35 MB/s SP2 switch via UDP
  double shm_latency_us = 10.0;   // intra-node message through shared memory
  double shm_bw_bytes_per_us = 150.0;

  // Transport-layer knobs, charged per message by the Transport (not folded
  // into message_us): sender-side occupancy (fixed + per wire byte) and a
  // queueing penalty per message already in flight on the same link segment
  // (the sender's uplink into the top stage crossed — Router::link_segment).
  // Zero by default so the base model is unchanged.
  double send_occupancy_us = 0.0;
  double occupancy_byte_us = 0.0;
  double link_contention_us = 0.0;

  // Reliable-delivery timer model (used only when the transport runs with
  // loss enabled): base retransmission timeout and exponential backoff
  // factor. TreadMarks-era UDP stacks used RTOs of a few round trips; the
  // default is ~3 SP2 round trips. The retry cap lives in PerturbOptions.
  double rto_us = 400.0;
  double rto_backoff = 2.0;

  // --- VM / protocol service costs ----------------------------------------
  double mprotect_us = 15.0;      // one mprotect system call
  double fault_dispatch_us = 40.0; // SIGSEGV trap + kernel + handler entry
  double twin_us = 25.0;          // copy one 4K page to its twin
  double diff_create_base_us = 15.0;
  double diff_byte_us = 0.01;     // per byte scanned/encoded
  double diff_apply_base_us = 8.0;
  double handler_service_us = 12.0; // remote request handler fixed overhead
  double barrier_service_us = 8.0; // manager work per arrival/departure
  double lock_service_us = 6.0;

  // --- compute -------------------------------------------------------------
  // Host CPU seconds -> simulated seconds. A 1999 PowerPC 604e (~200 MHz)
  // versus a modern x86 core is roughly a factor of 50 on these kernels.
  double cpu_scale = 50.0;

  // Sender-side occupancy surcharge for one message of `bytes` on the wire.
  double occupancy_us(std::size_t bytes) const {
    return send_occupancy_us + occupancy_byte_us * static_cast<double>(bytes);
  }

  // Modeled retransmission timeout before attempt k+2 (attempt indexes are
  // 0-based; the first retransmission waits retransmit_timeout_us(0)).
  double retransmit_timeout_us(std::uint32_t attempt) const {
    double t = rto_us;
    for (std::uint32_t i = 0; i < attempt; ++i) t *= rto_backoff;
    return t;
  }

  // One-way cost of a message of `bytes` payload.
  double message_us(std::size_t bytes, bool same_node) const {
    if (same_node)
      return shm_latency_us +
             static_cast<double>(bytes) / shm_bw_bytes_per_us;
    return net_latency_us + static_cast<double>(bytes) / net_bw_bytes_per_us;
  }

  // The paper's platform.
  static CostModel sp2_default() { return CostModel{}; }

  // A model where communication is free — used by unit tests that only care
  // about protocol correctness, keeping virtual time deterministic.
  static CostModel zero() {
    CostModel m;
    m.net_latency_us = m.shm_latency_us = 0;
    m.net_bw_bytes_per_us = m.shm_bw_bytes_per_us = 1e18;
    m.mprotect_us = m.fault_dispatch_us = m.twin_us = 0;
    m.diff_create_base_us = m.diff_byte_us = m.diff_apply_base_us = 0;
    m.handler_service_us = m.barrier_service_us = m.lock_service_us = 0;
    m.rto_us = 0;
    m.cpu_scale = 0;
    return m;
  }
};

} // namespace omsp::sim
