// Per-thread virtual clocks for direct-execution simulation.
//
// Each worker thread owns a VirtualClock. Application compute advances it by
// the thread's measured CPU time (so it works on a single-core host where
// threads are time-sliced); runtime operations advance it by modeled costs
// from the CostModel. The runtime brackets its own code in a RuntimeSection
// so its *host* CPU time is excluded — protocol work is charged at modeled
// SP2 cost, not at host speed.
//
// Synchronization points exchange timestamps: a barrier departure sets every
// participant to max(arrivals) + cost; a lock grant makes the acquirer wait
// for the releaser's release time. This yields a causally consistent virtual
// makespan regardless of how the host scheduler interleaved the threads.
#pragma once

#include <ctime>

#include "common/check.hpp"
#include "sim/cost_model.hpp"

namespace omsp::sim {

class VirtualClock {
public:
  explicit VirtualClock(double cpu_scale = 1.0) : cpu_scale_(cpu_scale) {
    cpu_base_us_ = thread_cpu_us();
  }

  // Fold the thread's CPU time since the last sample into virtual time.
  void sync_cpu() {
    const double now = thread_cpu_us();
    now_us_ += (now - cpu_base_us_) * cpu_scale_;
    cpu_base_us_ = now;
  }

  // Resample the CPU base without accumulating: used when leaving runtime
  // code whose host cost must not count as application compute.
  void skip_cpu() { cpu_base_us_ = thread_cpu_us(); }

  // Add modeled cost.
  void charge(double us) {
    OMSP_DCHECK(us >= 0);
    now_us_ += us;
  }

  // Remove `host_us` of HOST CPU time that sync_cpu unavoidably captured but
  // that is not application compute (e.g. the kernel's SIGSEGV trap and
  // sigreturn around a page fault — the handler itself is excluded by
  // RuntimeSection, but the trap happens before the handler can resample).
  // The amount is scaled like any other compute.
  void discount_cpu(double host_us) { now_us_ -= host_us * cpu_scale_; }

  // Lamport-style merge with an incoming timestamp.
  void advance_to(double t_us) {
    if (t_us > now_us_) now_us_ = t_us;
  }

  double now_us() const { return now_us_; }
  void set_now_us(double t) { now_us_ = t; }
  double cpu_scale() const { return cpu_scale_; }
  void set_cpu_scale(double s) { cpu_scale_ = s; }

  static double thread_cpu_us() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }

  // --- thread-local binding -------------------------------------------------
  // The DSM fault handler and message layer need "the clock of the thread
  // executing right now". Worker threads bind their clock on startup.
  static VirtualClock*& current() {
    thread_local VirtualClock* tls = nullptr;
    return tls;
  }

  class Binder {
  public:
    explicit Binder(VirtualClock* clock) : prev_(current()) {
      current() = clock;
    }
    ~Binder() { current() = prev_; }
    Binder(const Binder&) = delete;
    Binder& operator=(const Binder&) = delete;

  private:
    VirtualClock* prev_;
  };

private:
  double now_us_ = 0;
  double cpu_base_us_ = 0;
  double cpu_scale_;
};

// RAII bracket around runtime code: on entry, fold pending app compute into
// the clock; on exit, drop the host CPU the runtime consumed.
class RuntimeSection {
public:
  RuntimeSection() : clock_(VirtualClock::current()) {
    if (clock_ != nullptr) clock_->sync_cpu();
  }
  ~RuntimeSection() {
    if (clock_ != nullptr) clock_->skip_cpu();
  }
  RuntimeSection(const RuntimeSection&) = delete;
  RuntimeSection& operator=(const RuntimeSection&) = delete;

  VirtualClock* clock() const { return clock_; }

private:
  VirtualClock* clock_;
};

} // namespace omsp::sim
