// Cluster topology: a declarative, hierarchical machine descriptor.
//
// The machine is an ordered stack of Stages, leaf-most first. Stage 0 is the
// intra-node shared-memory level (its fanout is processors per node); every
// stage i >= 1 is a network tier that groups the tier below it (nodes under
// an edge switch, edge switches under a spine, ...). Each stage carries its
// own {latency_us, bw_bytes_per_us, occupancy_us}. A message from node A to
// node B crosses the stages on the unique tree path between them — up
// through tiers 1..k-1, across the top tier k where the two leaves first
// share a group, back down through k-1..1 — and its one-way cost is the sum
// of the per-stage costs along that path (path_stages / message_us).
//
// Stage parameters default to Stage::kInherit, which resolves against the
// CostModel at costing time: stage 0 inherits the shm pair, stages >= 1 the
// net pair. CostModel::zero() and per-bench cost overrides therefore keep
// working for every preset that does not pin explicit per-tier numbers.
//
// The paper's platform (IBM SP2, 4 nodes x 4 PowerPC-604 processors) is the
// sp2() preset: two stages, node + switch, which reproduces the legacy
// binary intra/inter cost split bit-for-bit.
//
// A global Rank in [0, nprocs()) identifies one OpenMP/MPI worker. Ranks are
// laid out node-major: rank r runs on node r / procs_per_node, local
// processor r % procs_per_node (for asymmetric mixes, consecutive ranks fill
// each node before spilling to the next). This matches the paper's placement
// (block of consecutive ranks per node), which matters for SOR's observation
// that neighbouring ranks usually share a node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/cost_model.hpp"

namespace omsp::sim {

// One level of the machine hierarchy. `fanout` is how many units of the
// level below share one unit of this level (stage 0: procs per node; stage
// i >= 1: groups of stage i-1 per group of stage i). Latency/bandwidth left
// at kInherit resolve from the CostModel (stage 0 -> shm, others -> net);
// occupancy_us is an additive per-traversal surcharge, zero by default.
//
// The congestion triple (send_occupancy_us / occupancy_byte_us /
// link_contention_us) is per-stage as well: an edge NIC and a spine trunk
// queue their senders and saturate at independent rates. All three default
// to kInherit, which resolves to the CostModel's global scalars — so a
// topology that pins nothing behaves exactly as the pre-stage-aware model
// did, for every preset and every CostModel override.
struct Stage {
  static constexpr double kInherit = -1.0;

  std::uint32_t fanout = 1;
  double latency_us = kInherit;
  double bw_bytes_per_us = kInherit;
  double occupancy_us = 0.0;
  double send_occupancy_us = kInherit;
  double occupancy_byte_us = kInherit;
  double link_contention_us = kInherit;

  bool operator==(const Stage&) const = default;
};

class Topology {
public:
  // Legacy flat constructor: one node stage plus one switch stage covering
  // all nodes. Equivalent to flat_switch(nodes, procs_per_node).
  Topology(std::uint32_t nodes, std::uint32_t procs_per_node)
      : Topology(make_flat_stages(nodes, procs_per_node),
                 flat_spec(nodes, procs_per_node)) {}

  // General uniform descriptor: stages[0] is the node level; the product of
  // stages[1..k].fanout is the node count.
  Topology(std::vector<Stage> stages, std::string spec)
      : stages_(std::move(stages)), spec_(std::move(spec)) {
    OMSP_CHECK(stages_.size() >= 2);
    OMSP_CHECK(stages_[0].fanout >= 1);
    nodes_ = 1;
    group_size_.assign(stages_.size(), 1);
    for (std::size_t i = 1; i < stages_.size(); ++i) {
      OMSP_CHECK(stages_[i].fanout >= 1);
      nodes_ *= stages_[i].fanout;
      group_size_[i] = group_size_[i - 1] * stages_[i].fanout;
    }
    OMSP_CHECK(group_size_.back() == nodes_);
  }

  // --- presets --------------------------------------------------------------

  // The paper's evaluation platform: 4 SMP nodes x 4 processors behind one
  // SP2 switch. Costs inherit the CostModel shm/net pairs, so this preset is
  // bit-for-bit the legacy two-level model.
  static Topology sp2() {
    Topology t(make_flat_stages(4, 4), "sp2");
    return t;
  }

  // The sp2 preset with the switch stage's congestion triple pinned to the
  // published SP2/AIX-era numbers instead of inheriting the CostModel's zero
  // defaults (docs/TOPOLOGY.md "Per-stage congestion and calibration"):
  //   send_occupancy_us 25 — UDP/IP send-side processing per message,
  //   occupancy_byte_us 0.01 — protocol-stack per-byte handling cost,
  //   link_contention_us 30 — the adapter holds the link roughly one
  //     small-message service time per send, so back-to-back senders queue.
  // Latency/bandwidth stay kInherit: the CostModel defaults (60us one-way,
  // 35 bytes/us) are already the calibrated switch numbers. The node stage
  // stays all-kInherit — intra-node costs are unchanged. With these numbers
  // the Table 2 per-application traffic prices out to Table 1-consistent
  // 16-processor runtimes (asserted by sim/topology_test.cc's calibration
  // band test).
  static Topology sp2_calibrated() {
    Topology t(make_flat_stages(4, 4), "sp2cal");
    t.stages_[1].send_occupancy_us = kSp2SendOccupancyUs;
    t.stages_[1].occupancy_byte_us = kSp2OccupancyByteUs;
    t.stages_[1].link_contention_us = kSp2LinkContentionUs;
    return t;
  }

  // `nodes` SMP nodes, `ppn` processors each, one crossbar switch.
  static Topology flat_switch(std::uint32_t nodes, std::uint32_t ppn) {
    return Topology(nodes, ppn);
  }

  // A `levels`-deep switch hierarchy of uniform `radix`: radix nodes per
  // edge switch, radix edge switches per next tier, ... (radix^levels nodes
  // total). The edge tier inherits the CostModel net pair (it stands in for
  // the endpoint UDP/IP stack); upper tiers are switch-to-switch hardware
  // hops, pinned at 25us latency / 300 bytes-per-us.
  static Topology fat_tree(std::uint32_t levels, std::uint32_t radix,
                           std::uint32_t ppn) {
    OMSP_CHECK(levels >= 1 && radix >= 1 && ppn >= 1);
    std::vector<Stage> stages;
    stages.push_back(Stage{ppn});
    stages.push_back(Stage{radix}); // edge tier: inherits net params
    for (std::uint32_t l = 1; l < levels; ++l)
      stages.push_back(Stage{radix, kSpineLatencyUs, kSpineBwBytesPerUs});
    return Topology(std::move(stages),
                    "fat:" + std::to_string(levels) + "x" +
                        std::to_string(radix) + "x" + std::to_string(ppn));
  }

  // Asymmetric node mix behind one switch: node i hosts node_procs[i]
  // processors. Ranks stay node-major (node 0's block first).
  static Topology asymmetric(std::vector<std::uint32_t> node_procs) {
    OMSP_CHECK(!node_procs.empty());
    std::uint32_t maxp = 1;
    for (const std::uint32_t p : node_procs) {
      OMSP_CHECK(p >= 1);
      maxp = std::max(maxp, p);
    }
    Topology t(make_flat_stages(
                   static_cast<std::uint32_t>(node_procs.size()), maxp),
               std::string());
    std::string spec = "asym:";
    for (std::size_t i = 0; i < node_procs.size(); ++i) {
      if (i) spec += '+';
      spec += std::to_string(node_procs[i]);
    }
    t.spec_ = std::move(spec);
    t.node_procs_ = std::move(node_procs);
    t.rank_base_.assign(t.node_procs_.size() + 1, 0);
    for (std::size_t i = 0; i < t.node_procs_.size(); ++i)
      t.rank_base_[i + 1] = t.rank_base_[i] + t.node_procs_[i];
    return t;
  }

  // --- spec strings ---------------------------------------------------------

  // Parse a descriptor spec: "sp2", "sp2cal", "flat:<nodes>x<ppn>",
  // "fat:<levels>x<radix>x<ppn>", or "asym:<p0>+<p1>+...". Returns nullopt
  // on malformed input. parse(t.spec()) round-trips for every preset.
  static std::optional<Topology> parse(std::string_view spec) {
    if (spec == "sp2") return sp2();
    if (spec == "sp2cal") return sp2_calibrated();
    if (spec.substr(0, 5) == "flat:") {
      const auto dims = parse_dims(spec.substr(5), 'x');
      if (dims.size() != 2) return std::nullopt;
      return flat_switch(dims[0], dims[1]);
    }
    if (spec.substr(0, 4) == "fat:") {
      const auto dims = parse_dims(spec.substr(4), 'x');
      if (dims.size() != 3) return std::nullopt;
      return fat_tree(dims[0], dims[1], dims[2]);
    }
    if (spec.substr(0, 5) == "asym:") {
      const auto procs = parse_dims(spec.substr(5), '+');
      if (procs.empty()) return std::nullopt;
      return asymmetric(procs);
    }
    return std::nullopt;
  }

  // Resolve OMSP_TOPOLOGY from the environment; `fallback` when unset. A set
  // but malformed value is a hard error — a silent fallback would quietly
  // bench the wrong machine.
  static Topology from_env_or(const Topology& fallback) {
    const char* env = std::getenv("OMSP_TOPOLOGY");
    if (env == nullptr || *env == '\0') return fallback;
    std::optional<Topology> t = parse(env);
    OMSP_CHECK(t.has_value());
    return *t;
  }

  // Canonical spec string ("sp2", "flat:64x4", ...). Used as the JSON key
  // for per-topology bench baselines.
  const std::string& spec() const { return spec_; }

  // --- shape ----------------------------------------------------------------

  std::uint32_t nodes() const { return nodes_; }
  std::uint32_t num_stages() const {
    return static_cast<std::uint32_t>(stages_.size());
  }
  const Stage& stage(std::uint32_t i) const {
    OMSP_DCHECK(i < stages_.size());
    return stages_[i];
  }
  bool uniform() const { return node_procs_.empty(); }

  std::uint32_t procs_per_node() const {
    OMSP_CHECK(uniform()); // asymmetric mixes: use procs_on_node()
    return stages_[0].fanout;
  }
  std::uint32_t procs_on_node(NodeId n) const {
    OMSP_DCHECK(n < nodes_);
    return uniform() ? stages_[0].fanout : node_procs_[n];
  }
  std::uint32_t nprocs() const {
    return uniform() ? nodes_ * stages_[0].fanout
                     : static_cast<std::uint32_t>(rank_base_.back());
  }

  NodeId node_of_rank(Rank r) const {
    OMSP_DCHECK(r < nprocs());
    if (uniform()) return r / stages_[0].fanout;
    const auto it =
        std::upper_bound(rank_base_.begin(), rank_base_.end(), r);
    return static_cast<NodeId>(it - rank_base_.begin() - 1);
  }
  ProcId proc_of_rank(Rank r) const {
    OMSP_DCHECK(r < nprocs());
    if (uniform()) return r % stages_[0].fanout;
    return r - rank_base_[node_of_rank(r)];
  }
  Rank rank_of(NodeId n, ProcId p) const {
    OMSP_DCHECK(n < nodes_ && p < procs_on_node(n));
    if (uniform()) return n * stages_[0].fanout + p;
    return rank_base_[n] + p;
  }

  bool same_node(Rank a, Rank b) const {
    return node_of_rank(a) == node_of_rank(b);
  }

  // --- path costing ---------------------------------------------------------

  // The topmost stage a message between nodes a and b must cross: 0 when the
  // endpoints share a node, otherwise the smallest tier whose group contains
  // both. Symmetric in (a, b).
  std::uint32_t top_stage(NodeId a, NodeId b) const {
    OMSP_DCHECK(a < nodes_ && b < nodes_);
    if (a == b) return 0;
    for (std::uint32_t i = 1; i < stages_.size(); ++i)
      if (a / group_size_[i] == b / group_size_[i]) return i;
    return num_stages() - 1; // unreachable: the top stage covers all nodes
  }

  // The ordered list of stage indices a one-way message traverses: {0} for
  // same-node, else up through 1..k and back down k-1..1 where k =
  // top_stage. Lower tiers appear twice (up + down), the top tier once.
  std::vector<std::uint32_t> path_stages(NodeId a, NodeId b) const {
    const std::uint32_t k = top_stage(a, b);
    if (k == 0) return {0};
    std::vector<std::uint32_t> path;
    path.reserve(2 * k - 1);
    for (std::uint32_t i = 1; i <= k; ++i) path.push_back(i);
    for (std::uint32_t i = k - 1; i >= 1; --i) path.push_back(i);
    return path;
  }

  // Per-stage one-way traversal cost with kInherit resolved from `m`.
  double stage_cost_us(const CostModel& m, std::uint32_t i,
                       std::size_t bytes) const {
    const Stage& s = stages_[i];
    const double lat = s.latency_us == Stage::kInherit
                           ? (i == 0 ? m.shm_latency_us : m.net_latency_us)
                           : s.latency_us;
    const double bw = s.bw_bytes_per_us == Stage::kInherit
                          ? (i == 0 ? m.shm_bw_bytes_per_us
                                    : m.net_bw_bytes_per_us)
                          : s.bw_bytes_per_us;
    return lat + static_cast<double>(bytes) / bw + s.occupancy_us;
  }

  // One-way cost of a message of `bytes` between nodes a and b: the sum of
  // stage_cost_us over path_stages(a, b). For two-stage presets with zero
  // occupancy this is exactly the legacy CostModel::message_us split
  // (bit-for-bit, including for sp2()).
  double message_us(const CostModel& m, std::size_t bytes, NodeId a,
                    NodeId b) const {
    const std::uint32_t k = top_stage(a, b);
    if (k == 0) return stage_cost_us(m, 0, bytes);
    double total = 0.0;
    for (std::uint32_t i = 1; i < k; ++i)
      total += 2.0 * stage_cost_us(m, i, bytes);
    total += stage_cost_us(m, k, bytes);
    return total;
  }

  // Identifier of the contended link segment for a message a -> b: the
  // sender's uplink into the top stage crossed (stage 1: node a's NIC;
  // stage k >= 2: a's stage-(k-1) group's trunk). Same-node traffic keys on
  // (stage 0, node). Packs (stage << 32 | segment) so transports can use it
  // directly as a busy-window map key.
  std::uint64_t link_segment(NodeId a, NodeId b) const {
    const std::uint32_t k = top_stage(a, b);
    const std::uint64_t seg =
        k == 0 ? a : a / group_size_[k - 1];
    return (static_cast<std::uint64_t>(k) << 32) | seg;
  }

  // Extract the stage index back out of a packed segment key.
  static std::uint32_t segment_stage(std::uint64_t seg_key) {
    return static_cast<std::uint32_t>(seg_key >> 32);
  }

  // Every contended segment a one-way message a -> b traverses, in path
  // order, packed like link_segment. Going up, the message crosses a's
  // uplink at each tier (stage i keyed by a's stage-(i-1) group, i = 1..k);
  // coming down it crosses b's downlink at each tier (stage i keyed by b's
  // stage-(i-1) group, i = k-1..1). Same-node traffic is the single
  // (stage 0, node) segment. For any two-stage topology this is exactly
  // {link_segment(a, b)}, so flat presets keep their single busy window.
  std::vector<std::uint64_t> path_segments(NodeId a, NodeId b) const {
    std::vector<std::uint64_t> segs;
    for_each_path_segment(a, b,
                          [&](std::uint64_t s) { segs.push_back(s); });
    return segs;
  }

  // Allocation-free traversal of path_segments(a, b), in path order, for
  // transport hot paths.
  template <typename Fn>
  void for_each_path_segment(NodeId a, NodeId b, Fn&& fn) const {
    const std::uint32_t k = top_stage(a, b);
    if (k == 0) {
      fn(static_cast<std::uint64_t>(a));
      return;
    }
    for (std::uint32_t i = 1; i <= k; ++i)
      fn((static_cast<std::uint64_t>(i) << 32) | (a / group_size_[i - 1]));
    for (std::uint32_t i = k - 1; i >= 1; --i)
      fn((static_cast<std::uint64_t>(i) << 32) | (b / group_size_[i - 1]));
  }

  // --- per-stage congestion resolution --------------------------------------

  // The fixed per-send transport occupancy at stage i (kInherit -> the
  // CostModel scalar).
  double stage_send_occupancy_us(const CostModel& m, std::uint32_t i) const {
    const double v = stages_[i].send_occupancy_us;
    return v == Stage::kInherit ? m.send_occupancy_us : v;
  }
  // The per-byte serialization occupancy at stage i.
  double stage_occupancy_byte_us(const CostModel& m, std::uint32_t i) const {
    const double v = stages_[i].occupancy_byte_us;
    return v == Stage::kInherit ? m.occupancy_byte_us : v;
  }
  // The busy-window length one message holds a stage-i segment for.
  double stage_link_contention_us(const CostModel& m, std::uint32_t i) const {
    const double v = stages_[i].link_contention_us;
    return v == Stage::kInherit ? m.link_contention_us : v;
  }
  // Fixed + per-byte occupancy of one `bytes`-sized send at stage i;
  // all-kInherit stages make this exactly CostModel::occupancy_us(bytes).
  double stage_occupancy_us(const CostModel& m, std::uint32_t i,
                            std::size_t bytes) const {
    return stage_send_occupancy_us(m, i) +
           stage_occupancy_byte_us(m, i) * static_cast<double>(bytes);
  }
  // Occupancy a message a -> b charges its sender: the rate of the top
  // stage crossed — the bottleneck serialization point. Charged once per
  // message (not per segment), so all-kInherit topologies of any depth are
  // bit-for-bit the pre-stage-aware single-scalar model.
  double message_occupancy_us(const CostModel& m, std::size_t bytes, NodeId a,
                              NodeId b) const {
    return stage_occupancy_us(m, top_stage(a, b), bytes);
  }

  bool operator==(const Topology& o) const {
    return stages_ == o.stages_ && node_procs_ == o.node_procs_;
  }

private:
  static constexpr double kSpineLatencyUs = 25.0;
  static constexpr double kSpineBwBytesPerUs = 300.0;
  // sp2_calibrated switch-stage congestion (docs/TOPOLOGY.md).
  static constexpr double kSp2SendOccupancyUs = 25.0;
  static constexpr double kSp2OccupancyByteUs = 0.01;
  static constexpr double kSp2LinkContentionUs = 30.0;

  static std::vector<Stage> make_flat_stages(std::uint32_t nodes,
                                             std::uint32_t ppn) {
    OMSP_CHECK(nodes >= 1 && ppn >= 1);
    return {Stage{ppn}, Stage{nodes}};
  }
  static std::string flat_spec(std::uint32_t nodes, std::uint32_t ppn) {
    return "flat:" + std::to_string(nodes) + "x" + std::to_string(ppn);
  }

  // Split `s` on `sep` into positive u32s; empty vector on any bad field.
  static std::vector<std::uint32_t> parse_dims(std::string_view s, char sep) {
    std::vector<std::uint32_t> out;
    while (!s.empty()) {
      const std::size_t cut = s.find(sep);
      const std::string_view field =
          cut == std::string_view::npos ? s : s.substr(0, cut);
      if (field.empty()) return {};
      std::uint64_t v = 0;
      for (const char c : field) {
        if (c < '0' || c > '9') return {};
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > 1u << 20) return {}; // implausible machine, reject
      }
      if (v == 0) return {};
      out.push_back(static_cast<std::uint32_t>(v));
      if (cut == std::string_view::npos) break;
      s.remove_prefix(cut + 1);
      if (s.empty()) return {}; // trailing separator ("4x", "4+")
    }
    return out;
  }

  std::vector<Stage> stages_;      // [0] = node level, [1..] = network tiers
  std::string spec_;               // canonical descriptor string
  std::uint32_t nodes_ = 1;
  std::vector<std::uint32_t> group_size_; // nodes per group at each stage
  // Asymmetric mixes only: per-node proc counts + node-major rank prefix.
  std::vector<std::uint32_t> node_procs_;
  std::vector<std::uint32_t> rank_base_;
};

} // namespace omsp::sim
