// Cluster topology: a network of SMP nodes, as in the paper's platform
// (an IBM SP2 with 4 nodes x 4 PowerPC-604 processors).
//
// A global Rank in [0, nprocs()) identifies one OpenMP/MPI worker. Ranks are
// laid out node-major: rank r runs on node r / procs_per_node, local
// processor r % procs_per_node. This matches the paper's placement (block of
// consecutive ranks per node), which matters for SOR's observation that
// neighbouring ranks usually share a node.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace omsp::sim {

class Topology {
public:
  Topology(std::uint32_t nodes, std::uint32_t procs_per_node)
      : nodes_(nodes), procs_per_node_(procs_per_node) {
    OMSP_CHECK(nodes >= 1 && procs_per_node >= 1);
  }

  // The paper's evaluation platform.
  static Topology sp2() { return Topology(4, 4); }

  std::uint32_t nodes() const { return nodes_; }
  std::uint32_t procs_per_node() const { return procs_per_node_; }
  std::uint32_t nprocs() const { return nodes_ * procs_per_node_; }

  NodeId node_of_rank(Rank r) const {
    OMSP_DCHECK(r < nprocs());
    return r / procs_per_node_;
  }
  ProcId proc_of_rank(Rank r) const {
    OMSP_DCHECK(r < nprocs());
    return r % procs_per_node_;
  }
  Rank rank_of(NodeId n, ProcId p) const {
    OMSP_DCHECK(n < nodes_ && p < procs_per_node_);
    return n * procs_per_node_ + p;
  }

  bool same_node(Rank a, Rank b) const {
    return node_of_rank(a) == node_of_rank(b);
  }

  bool operator==(const Topology&) const = default;

private:
  std::uint32_t nodes_;
  std::uint32_t procs_per_node_;
};

} // namespace omsp::sim
