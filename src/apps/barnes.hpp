// Barnes-Hut N-body simulation (§5.2 "Barnes", from SPLASH-2).
//
// Each iteration has two steps, exactly as the paper describes:
//   1. Tree building — a single thread (the master) reads the particles and
//      rebuilds the shared octree.
//   2. Force evaluation — all threads participate. Particles are ordered by
//      the Morton (Z-order) linearization of space and divided into
//      contiguous segments weighted by the interaction counts recorded in
//      the previous iteration; each thread evaluates forces for its segment
//      by partially traversing the shared tree (so every thread reads a
//      large portion of the tree).
//
// The OpenMP port uses the `parallel region` directive (master + barriers
// inside one region). The MPI version replicates the particles and
// duplicates the tree build on every process; its only communication per
// iteration is the exchange of each process's updated particles — the
// pattern the paper credits for MPI-Barnes' tiny message count.
#pragma once

#include "apps/common.hpp"

namespace omsp::apps::barnes {

struct Params {
  std::int64_t bodies = 1024;
  int iters = 3;
  double theta = 0.7; // opening criterion
  double dt = 0.02;
  double eps = 0.05;  // gravitational softening
  std::uint64_t seed = 17;
};

Result run_seq(const Params& p, double cpu_scale);
Result run_omp(const Params& p, const tmk::Config& cfg);
Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb = {});

// 30-bit Morton (Z-order) code of a position quantized within [lo, hi)^3;
// exposed for unit tests.
std::uint32_t morton3(const double pos[3], double lo, double hi);

} // namespace omsp::apps::barnes
