#include "apps/tsp.hpp"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <thread>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "sim/virtual_clock.hpp"

namespace omsp::apps::tsp {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

struct Distances {
  int n;
  int d[kMaxCities][kMaxCities];
  int min_out[kMaxCities]; // cheapest edge leaving each city (for bounds)
};

Distances make_distances(const Params& p) {
  OMSP_CHECK(p.cities >= 3 && p.cities <= kMaxCities);
  Distances dist;
  dist.n = p.cities;
  Rng rng(p.seed);
  // Random points on a grid; Euclidean-ish metric keeps bounds meaningful.
  int x[kMaxCities], y[kMaxCities];
  for (int i = 0; i < p.cities; ++i) {
    x[i] = static_cast<int>(rng.next_below(1000));
    y[i] = static_cast<int>(rng.next_below(1000));
  }
  for (int i = 0; i < p.cities; ++i)
    for (int j = 0; j < p.cities; ++j) {
      const double dx = x[i] - x[j], dy = y[i] - y[j];
      dist.d[i][j] = static_cast<int>(std::sqrt(dx * dx + dy * dy));
    }
  for (int i = 0; i < p.cities; ++i) {
    dist.min_out[i] = kInf;
    for (int j = 0; j < p.cities; ++j)
      if (j != i) dist.min_out[i] = std::min(dist.min_out[i], dist.d[i][j]);
  }
  return dist;
}

// A partial tour (the paper's pool element).
struct Tour {
  std::int32_t length = 0; // cities in path
  std::int32_t cost = 0;   // edge cost of the prefix
  std::int32_t bound = 0;  // lower bound on any completion
  std::uint32_t visited = 0;
  std::int8_t path[kMaxCities] = {};
};

int lower_bound(const Distances& dist, const Tour& t) {
  int b = t.cost;
  for (int c = 0; c < dist.n; ++c)
    if ((t.visited & (1u << c)) == 0) b += dist.min_out[c];
  // The tour must also leave the current last city again.
  if (t.length < dist.n) b += dist.min_out[t.path[t.length - 1]];
  return b;
}

// Exhaustive DFS completion of a partial tour; returns the best full-tour
// cost found (or `best` if nothing better). Prunes on the running best.
int dfs_complete(const Distances& dist, Tour& t, int best) {
  if (t.length == dist.n) {
    const int total = t.cost + dist.d[t.path[t.length - 1]][t.path[0]];
    return std::min(best, total);
  }
  const int last = t.path[t.length - 1];
  for (int c = 0; c < dist.n; ++c) {
    if (t.visited & (1u << c)) continue;
    const int step = dist.d[last][c];
    if (t.cost + step >= best) continue;
    t.path[t.length++] = static_cast<std::int8_t>(c);
    t.cost += step;
    t.visited |= 1u << c;
    best = dfs_complete(dist, t, best);
    t.visited &= ~(1u << c);
    t.cost -= step;
    --t.length;
  }
  return best;
}

Tour root_tour() {
  Tour t;
  t.length = 1;
  t.path[0] = 0;
  t.visited = 1;
  return t;
}

// ---------------------------------------------------------------------------
// Shared branch-and-bound state: pool + priority queue + free stack + best.
// In the OpenMP version this lives in the DSM heap and is mutated only inside
// `critical`; the sequential version uses the same code on private memory.
// ---------------------------------------------------------------------------
struct SharedState {
  static constexpr std::int32_t kPool = 8192;
  std::int32_t best = kInf;
  std::int32_t heap_size = 0;
  std::int32_t free_top = 0;   // stack pointer into free_stack
  std::int32_t outstanding = 0; // queued but not yet fully processed tours
  std::int32_t heap[kPool];       // min-heap of pool indices, keyed by bound
  std::int32_t free_stack[kPool]; // unused pool slots
  Tour pool[kPool];

  void init() {
    best = kInf;
    heap_size = 0;
    outstanding = 0;
    free_top = kPool;
    for (std::int32_t i = 0; i < kPool; ++i) free_stack[i] = kPool - 1 - i;
  }

  bool heap_less(std::int32_t a, std::int32_t b) const {
    return pool[a].bound < pool[b].bound;
  }

  // Push a tour; returns false when the pool is full (caller solves inline).
  bool push(const Tour& t) {
    if (free_top == 0) return false;
    const std::int32_t slot = free_stack[--free_top];
    pool[slot] = t;
    std::int32_t i = heap_size++;
    heap[i] = slot;
    while (i > 0) {
      const std::int32_t parent = (i - 1) / 2;
      if (!heap_less(heap[i], heap[parent])) break;
      std::swap(heap[i], heap[parent]);
      i = parent;
    }
    ++outstanding;
    return true;
  }

  // Pop the most promising tour into `out`; false when the queue is empty.
  bool pop(Tour& out) {
    if (heap_size == 0) return false;
    const std::int32_t slot = heap[0];
    out = pool[slot];
    free_stack[free_top++] = slot;
    heap[0] = heap[--heap_size];
    std::int32_t i = 0;
    for (;;) {
      const std::int32_t l = 2 * i + 1, r = 2 * i + 2;
      std::int32_t smallest = i;
      if (l < heap_size && heap_less(heap[l], heap[smallest])) smallest = l;
      if (r < heap_size && heap_less(heap[r], heap[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap[i], heap[smallest]);
      i = smallest;
    }
    return true;
  }
};

// One scheduling step against shared state under the provided mutual
// exclusion primitive. Returns false when the computation is finished.
// `locked` runs fn under the critical section.
template <typename Locked>
bool worker_step(const Distances& dist, const Params& p, SharedState* st,
                 Locked&& locked) {
  Tour t;
  bool got = false;
  bool done = false;
  int best_now = kInf;
  locked([&] {
    got = st->pop(t);
    if (!got) done = (st->outstanding == 0);
    best_now = st->best;
  });
  if (!got) {
    if (done) return false;
    // Idle back-off: a worker that found the queue empty waits before
    // re-polling instead of hammering the critical section (real TreadMarks
    // workers block on the lock; unthrottled polling would inflate the
    // message counts Table 2 reports by an order of magnitude).
    if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
      clock->charge(200.0); // 200us virtual poll interval
    std::this_thread::yield();
    return true;
  }

  if (t.bound >= best_now) {
    // Pruned. Account the completed unit of work.
    locked([&] { --st->outstanding; });
    return true;
  }

  if (dist.n - t.length <= p.solve_threshold) {
    const int found = dfs_complete(dist, t, best_now);
    locked([&] {
      if (found < st->best) st->best = found;
      --st->outstanding;
    });
    return true;
  }

  // Expand by one city; push children (solve inline if the pool is full).
  const int last = t.path[t.length - 1];
  std::vector<Tour> children;
  std::vector<Tour> overflow;
  for (int c = 0; c < dist.n; ++c) {
    if (t.visited & (1u << c)) continue;
    Tour child = t;
    child.path[child.length++] = static_cast<std::int8_t>(c);
    child.cost += dist.d[last][c];
    child.visited |= 1u << c;
    child.bound = lower_bound(dist, child);
    if (child.bound < best_now) children.push_back(child);
  }
  int solved_best = kInf;
  locked([&] {
    for (const Tour& child : children) {
      if (child.bound >= st->best) continue;
      if (!st->push(child)) overflow.push_back(child);
    }
    --st->outstanding;
  });
  for (Tour& child : overflow)
    solved_best = std::min(solved_best, dfs_complete(dist, child, solved_best));
  if (solved_best < kInf) {
    locked([&] {
      if (solved_best < st->best) st->best = solved_best;
    });
  }
  return true;
}

} // namespace

int brute_force_optimum(const Params& p) {
  const Distances dist = make_distances(p);
  Tour t = root_tour();
  return dfs_complete(dist, t, kInf);
}

Result run_seq(const Params& p, double cpu_scale) {
  return run_sequential(cpu_scale, [&] {
    const Distances dist = make_distances(p);
    auto st = std::make_unique<SharedState>();
    st->init();
    Tour root = root_tour();
    root.bound = lower_bound(dist, root);
    st->push(root);
    auto locked = [](auto&& fn) { fn(); };
    while (worker_step(dist, p, st.get(), locked)) {
    }
    return static_cast<double>(st->best);
  });
}

Result run_omp(const Params& p, const tmk::Config& cfg_in) {
  tmk::Config cfg = cfg_in;
  cfg.heap_bytes = std::max<std::size_t>(cfg.heap_bytes,
                                         sizeof(SharedState) + (1u << 20));
  core::OmpRuntime rt(cfg);
  const Distances dist = make_distances(p);

  auto st = rt.alloc_page_aligned<SharedState>(1);
  st->init();
  Tour root = root_tour();
  root.bound = lower_bound(dist, root);
  st->push(root);

  return run_openmp(rt, [&] {
    // #pragma omp parallel — workers drain the shared queue under critical.
    rt.parallel([&](core::Team& t) {
      SharedState* s = st.local();
      auto locked = [&](auto&& fn) { t.critical("tsp", fn); };
      while (worker_step(dist, p, s, locked)) {
      }
    });
    return static_cast<double>(st->best);
  });
}

Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb) {
  mpi::MpiWorld world(topo, cost, perturb);
  const Distances dist = make_distances(p);
  Result result;
  double checksum = 0;

  // Master-worker: rank 0 expands the root a few levels breadth-first and
  // hands partial tours to workers on request; work replies carry the
  // current global best for pruning, completion messages carry improved
  // bests back.
  constexpr int kTagReq = 1, kTagWork = 2, kTagDone = 3;

  world.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      // Breadth-first expansion to a fixed frontier depth.
      std::vector<Tour> frontier;
      {
        Tour root = root_tour();
        root.bound = lower_bound(dist, root);
        std::vector<Tour> cur{root};
        // Master-worker grain: expand one level past the solve threshold so
        // there are enough work units to balance the workers even when many
        // subtrees prune instantly.
        const int depth = std::max(2, dist.n - p.solve_threshold + 1);
        for (int level = 0; level < depth; ++level) {
          std::vector<Tour> next;
          for (const Tour& t : cur) {
            const int last = t.path[t.length - 1];
            for (int city = 0; city < dist.n; ++city) {
              if (t.visited & (1u << city)) continue;
              Tour child = t;
              child.path[child.length++] = static_cast<std::int8_t>(city);
              child.cost += dist.d[last][city];
              child.visited |= 1u << city;
              child.bound = lower_bound(dist, child);
              next.push_back(child);
            }
          }
          cur = std::move(next);
        }
        frontier = std::move(cur);
        std::sort(frontier.begin(), frontier.end(),
                  [](const Tour& a, const Tour& b) { return a.bound < b.bound; });
      }

      int best = kInf;
      std::size_t cursor = 0;
      int active_workers = c.size() - 1;
      while (active_workers > 0) {
        // Request payload: the worker's best-known tour (may improve ours).
        int worker_best = kInf;
        int src = -1;
        c.recv(mpi::kAnySource, kTagReq, &worker_best, sizeof(int), &src);
        best = std::min(best, worker_best);
        // Skip frontier entries the bound already kills.
        while (cursor < frontier.size() && frontier[cursor].bound >= best)
          ++cursor;
        if (cursor < frontier.size()) {
          struct {
            int best;
            Tour tour;
          } work{best, frontier[cursor++]};
          c.send(src, kTagWork, &work, sizeof(work));
        } else {
          c.send(src, kTagDone, &best, sizeof(int));
          --active_workers;
        }
      }
      checksum = static_cast<double>(best);
    } else {
      int my_best = kInf;
      for (;;) {
        c.send(0, kTagReq, &my_best, sizeof(int));
        struct {
          int best;
          Tour tour;
        } work;
        int tag_probe_best = 0;
        // Either work or done can arrive; distinguish by tag.
        int src = -1;
        std::uint8_t buf[sizeof(work)];
        // Receive whichever message the master sent us next.
        const std::size_t got =
            c.recv(0, mpi::kAnyTag, buf, sizeof(buf), &src);
        if (got == sizeof(int)) { // kTagDone
          std::memcpy(&tag_probe_best, buf, sizeof(int));
          break;
        }
        std::memcpy(&work, buf, sizeof(work));
        my_best = std::min(my_best, work.best);
        if (work.tour.bound < my_best)
          my_best = std::min(my_best,
                             dfs_complete(dist, work.tour, my_best));
      }
    }
  });

  result.checksum = checksum;
  result.time_us = world.makespan_us();
  result.stats = world.stats();
  return result;
}

} // namespace omsp::apps::tsp
