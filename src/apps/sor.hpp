// Red-Black Successive Over-Relaxation (§5.2 "SOR").
//
// Solves a PDE by iterating over a 2-D grid: each element is updated to the
// average of its four nearest neighbours, with the grid colored like a
// checkerboard so all updates of one color are independent.
//
// Paper configuration: 8K x 4K grid, 20 iterations, parallelized with
// `parallel for` over rows. The MPI version partitions rows in blocks and
// exchanges whole boundary rows each phase — which is why the paper finds
// TreadMarks sends *less* data than MPI here (diffs skip unchanged bytes).
#pragma once

#include "apps/common.hpp"

namespace omsp::apps::sor {

struct Params {
  std::int64_t rows = 512;
  std::int64_t cols = 256;
  int iters = 10;
  // Boundary condition magnitude; interior starts at 0.
  double boundary = 1.0;
};

Result run_seq(const Params& p, double cpu_scale);
Result run_omp(const Params& p, const tmk::Config& cfg);
Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb = {});

} // namespace omsp::apps::sor
