#include "apps/barnes.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/mathutil.hpp"
#include "common/rng.hpp"

namespace omsp::apps::barnes {

namespace {

struct Body {
  double pos[3];
  double vel[3];
  double acc[3];
  double mass;
  double work; // interactions in the previous iteration (load estimate)
};

// Octree cell. child[i] >= 0 is a cell index; kEmpty is empty; other
// negative values encode leaf body b as -(b + 2).
struct Cell {
  double center[3];
  double half; // half edge length
  double mass;
  double com[3];
  std::int32_t child[8];
};

constexpr std::int32_t kEmpty = -1;
inline std::int32_t encode_body(std::int64_t b) {
  return -static_cast<std::int32_t>(b) - 2;
}
inline std::int64_t decode_body(std::int32_t c) { return -(c + 2); }

// Shared simulation arena: bodies, tree pool, Morton order, segment bounds.
// In the OpenMP version this whole block lives in the DSM heap.
struct Arena {
  Body* bodies;
  Cell* cells;
  std::int32_t* order;    // Morton-ordered body indices
  std::int64_t* seg;      // nthreads+1 segment boundaries into order[]
  std::int32_t* cell_count; // single counter (master writes)
  std::int64_t n;
  std::int64_t max_cells;
};

int octant_of(const Cell& c, const double pos[3]) {
  int o = 0;
  for (int d = 0; d < 3; ++d)
    if (pos[d] >= c.center[d]) o |= 1 << d;
  return o;
}

std::int32_t new_cell(Arena& a, const double center[3], double half) {
  OMSP_CHECK_MSG(*a.cell_count < a.max_cells, "barnes cell pool exhausted");
  const std::int32_t idx = (*a.cell_count)++;
  Cell& c = a.cells[idx];
  for (int d = 0; d < 3; ++d) c.center[d] = center[d];
  c.half = half;
  c.mass = 0;
  c.com[0] = c.com[1] = c.com[2] = 0;
  for (auto& ch : c.child) ch = kEmpty;
  return idx;
}

void insert_body(Arena& a, std::int32_t cell, std::int64_t b) {
  Cell& c = a.cells[cell];
  const int o = octant_of(c, a.bodies[b].pos);
  const std::int32_t ch = c.child[o];
  if (ch == kEmpty) {
    c.child[o] = encode_body(b);
    return;
  }
  if (ch >= 0) {
    insert_body(a, ch, b);
    return;
  }
  // Leaf: split into a sub-cell holding both bodies.
  const std::int64_t other = decode_body(ch);
  double sub_center[3];
  const double sub_half = c.half / 2;
  for (int d = 0; d < 3; ++d)
    sub_center[d] = c.center[d] + ((o >> d) & 1 ? sub_half : -sub_half);
  const std::int32_t sub = new_cell(a, sub_center, sub_half);
  c.child[o] = sub;
  insert_body(a, sub, other);
  insert_body(a, sub, b);
}

// Bottom-up mass/center-of-mass computation.
void summarize(Arena& a, std::int32_t cell) {
  Cell& c = a.cells[cell];
  c.mass = 0;
  c.com[0] = c.com[1] = c.com[2] = 0;
  for (const std::int32_t ch : c.child) {
    if (ch == kEmpty) continue;
    double m;
    const double* pos;
    if (ch >= 0) {
      summarize(a, ch);
      m = a.cells[ch].mass;
      pos = a.cells[ch].com;
    } else {
      const Body& b = a.bodies[decode_body(ch)];
      m = b.mass;
      pos = b.pos;
    }
    c.mass += m;
    for (int d = 0; d < 3; ++d) c.com[d] += m * pos[d];
  }
  if (c.mass > 0)
    for (int d = 0; d < 3; ++d) c.com[d] /= c.mass;
}

// Step 1 of the paper: the master rebuilds the tree, Morton-orders the
// bodies and computes the cost-weighted segments for `nthreads` workers.
void build_tree(Arena& a, const Params& p, std::uint32_t nthreads) {
  double lo = a.bodies[0].pos[0], hi = lo;
  for (std::int64_t b = 0; b < a.n; ++b)
    for (int d = 0; d < 3; ++d) {
      lo = std::min(lo, a.bodies[b].pos[d]);
      hi = std::max(hi, a.bodies[b].pos[d]);
    }
  hi += 1e-9;
  *a.cell_count = 0;
  double center[3] = {(lo + hi) / 2, (lo + hi) / 2, (lo + hi) / 2};
  const std::int32_t root = new_cell(a, center, (hi - lo) / 2 + 1e-9);
  OMSP_CHECK(root == 0);
  for (std::int64_t b = 0; b < a.n; ++b) insert_body(a, 0, b);
  summarize(a, 0);

  // Morton ordering (the paper's linearization for partitioning).
  std::vector<std::pair<std::uint32_t, std::int32_t>> keyed(a.n);
  for (std::int64_t b = 0; b < a.n; ++b)
    keyed[b] = {morton3(a.bodies[b].pos, lo, hi), static_cast<std::int32_t>(b)};
  std::sort(keyed.begin(), keyed.end());
  for (std::int64_t i = 0; i < a.n; ++i) a.order[i] = keyed[i].second;

  // Cost-weighted contiguous segments (weight = last iteration's work).
  double total = 0;
  for (std::int64_t b = 0; b < a.n; ++b) total += a.bodies[b].work;
  a.seg[0] = 0;
  double acc = 0;
  std::int64_t pos = 0;
  for (std::uint32_t t = 1; t <= nthreads; ++t) {
    const double target =
        total * static_cast<double>(t) / static_cast<double>(nthreads);
    while (pos < a.n && (acc < target || pos == 0)) {
      acc += a.bodies[a.order[pos]].work;
      ++pos;
      if (acc >= target && t < nthreads) break;
    }
    a.seg[t] = (t == nthreads) ? a.n : pos;
  }
  (void)p;
}

// Force on body b by partial tree traversal; returns the interaction count
// (the work estimate for the next iteration's partition).
double compute_force(const Arena& a, std::int64_t b, const Params& p) {
  const Body& body = a.bodies[b];
  double acc[3] = {0, 0, 0};
  double interactions = 0;
  // Explicit stack avoids deep recursion on shared data.
  std::int32_t stack[512];
  int top = 0;
  stack[top++] = 0;
  while (top > 0) {
    const std::int32_t node = stack[--top];
    if (node < 0) { // leaf body
      const std::int64_t ob = decode_body(node);
      if (ob == b) continue;
      const Body& o = a.bodies[ob];
      double dx[3], r2 = p.eps * p.eps;
      for (int d = 0; d < 3; ++d) {
        dx[d] = o.pos[d] - body.pos[d];
        r2 += dx[d] * dx[d];
      }
      const double inv_r = 1.0 / std::sqrt(r2);
      const double f = o.mass * inv_r * inv_r * inv_r;
      for (int d = 0; d < 3; ++d) acc[d] += f * dx[d];
      interactions += 1;
      continue;
    }
    const Cell& c = a.cells[node];
    if (c.mass <= 0) continue;
    double dx[3], r2 = p.eps * p.eps;
    for (int d = 0; d < 3; ++d) {
      dx[d] = c.com[d] - body.pos[d];
      r2 += dx[d] * dx[d];
    }
    const double size = 2 * c.half;
    if (size * size < p.theta * p.theta * r2) {
      // Far enough: use the cell's aggregate.
      const double inv_r = 1.0 / std::sqrt(r2);
      const double f = c.mass * inv_r * inv_r * inv_r;
      for (int d = 0; d < 3; ++d) acc[d] += f * dx[d];
      interactions += 1;
    } else {
      for (const std::int32_t ch : c.child) {
        if (ch == kEmpty) continue;
        OMSP_CHECK(top < 511);
        stack[top++] = ch;
      }
    }
  }
  Body& mut = a.bodies[b];
  for (int d = 0; d < 3; ++d) mut.acc[d] = acc[d];
  return interactions;
}

void init_bodies(Body* bodies, const Params& p) {
  Rng rng(p.seed);
  for (std::int64_t b = 0; b < p.bodies; ++b) {
    for (int d = 0; d < 3; ++d) {
      bodies[b].pos[d] = rng.next_double();
      bodies[b].vel[d] = 0.02 * rng.next_double(-1.0, 1.0);
      bodies[b].acc[d] = 0;
    }
    bodies[b].mass = 1.0 / static_cast<double>(p.bodies);
    bodies[b].work = 1.0;
  }
}

double position_checksum(const Body* bodies, std::int64_t n) {
  double s = 0;
  for (std::int64_t b = 0; b < n; ++b)
    for (int d = 0; d < 3; ++d) s += bodies[b].pos[d];
  return s;
}

std::int64_t cells_needed(std::int64_t bodies) { return 16 * bodies + 64; }

} // namespace

std::uint32_t morton3(const double pos[3], double lo, double hi) {
  std::uint32_t key = 0;
  for (int d = 0; d < 3; ++d) {
    const double t = (pos[d] - lo) / (hi - lo);
    auto q = static_cast<std::uint32_t>(t * 1023.0);
    if (q > 1023) q = 1023;
    // Interleave 10 bits of q into positions d, d+3, d+6, ...
    for (int bit = 0; bit < 10; ++bit)
      key |= ((q >> bit) & 1u) << (3 * bit + d);
  }
  return key;
}

Result run_seq(const Params& p, double cpu_scale) {
  return run_sequential(cpu_scale, [&] {
    std::vector<Body> bodies(p.bodies);
    std::vector<Cell> cells(cells_needed(p.bodies));
    std::vector<std::int32_t> order(p.bodies);
    std::vector<std::int64_t> seg(2);
    std::int32_t cell_count = 0;
    Arena a{bodies.data(), cells.data(),  order.data(),         seg.data(),
            &cell_count,   p.bodies,      cells_needed(p.bodies)};
    init_bodies(bodies.data(), p);
    for (int it = 0; it < p.iters; ++it) {
      build_tree(a, p, 1);
      for (std::int64_t i = 0; i < a.n; ++i)
        a.bodies[a.order[i]].work = compute_force(a, a.order[i], p);
      for (std::int64_t b = 0; b < a.n; ++b)
        for (int d = 0; d < 3; ++d) {
          bodies[b].vel[d] += p.dt * bodies[b].acc[d];
          bodies[b].pos[d] += p.dt * bodies[b].vel[d];
        }
    }
    return position_checksum(bodies.data(), p.bodies);
  });
}

Result run_omp(const Params& p, const tmk::Config& cfg_in) {
  tmk::Config cfg = cfg_in;
  const std::size_t need =
      static_cast<std::size_t>(p.bodies) * sizeof(Body) +
      static_cast<std::size_t>(cells_needed(p.bodies)) * sizeof(Cell) +
      (2u << 20);
  cfg.heap_bytes = std::max(cfg.heap_bytes, need);
  core::OmpRuntime rt(cfg);
  const std::uint32_t nthreads = rt.max_threads();

  auto bodies = rt.alloc_page_aligned<Body>(p.bodies);
  auto cells = rt.alloc_page_aligned<Cell>(cells_needed(p.bodies));
  auto order = rt.alloc_page_aligned<std::int32_t>(p.bodies);
  auto seg = rt.alloc_page_aligned<std::int64_t>(nthreads + 1);
  auto cell_count = rt.alloc_page_aligned<std::int32_t>(1);
  init_bodies(bodies.local(), p);

  return run_openmp(rt, [&] {
    for (int it = 0; it < p.iters; ++it) {
      // One parallel region per iteration (the paper's `parallel region`).
      rt.parallel([&](core::Team& t) {
        Arena a{bodies.local(), cells.local(),        order.local(),
                seg.local(),    cell_count.local(),   p.bodies,
                cells_needed(p.bodies)};
        // Step 1: master rebuilds the tree (single thread).
        t.master([&] { build_tree(a, p, t.num_threads()); });
        t.barrier();
        // Step 2: force evaluation over this thread's Morton segment.
        const std::int64_t lo = a.seg[t.thread_num()];
        const std::int64_t hi = a.seg[t.thread_num() + 1];
        for (std::int64_t i = lo; i < hi; ++i)
          a.bodies[a.order[i]].work = compute_force(a, a.order[i], p);
        t.barrier();
        // Position update for the same segment.
        for (std::int64_t i = lo; i < hi; ++i) {
          Body& b = a.bodies[a.order[i]];
          for (int d = 0; d < 3; ++d) {
            b.vel[d] += p.dt * b.acc[d];
            b.pos[d] += p.dt * b.vel[d];
          }
        }
      });
    }
    return position_checksum(bodies.local(), p.bodies);
  });
}

Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb) {
  mpi::MpiWorld world(topo, cost, perturb);
  Result result;
  double sum = 0;

  world.run([&](mpi::Comm& c) {
    const int np = c.size();
    const std::uint32_t nthreads = static_cast<std::uint32_t>(np);
    std::vector<Body> bodies(p.bodies);
    std::vector<Cell> cells(cells_needed(p.bodies));
    std::vector<std::int32_t> order(p.bodies);
    std::vector<std::int64_t> seg(np + 1);
    std::int32_t cell_count = 0;
    Arena a{bodies.data(), cells.data(),  order.data(),         seg.data(),
            &cell_count,   p.bodies,      cells_needed(p.bodies)};
    init_bodies(bodies.data(), p); // particles replicated on every process

    // Exchange slots: each rank sends (index, pos, vel, work) for the bodies
    // of its segment. Cost-weighted segments vary in size, so the slot width
    // is agreed per iteration (allreduce of the largest segment).
    struct Update {
      std::int32_t idx;
      double pos[3];
      double vel[3];
      double work;
    };
    std::vector<Update> mine(p.bodies), all;

    for (int it = 0; it < p.iters; ++it) {
      // Every process duplicates the tree build (paper §5.3.2).
      build_tree(a, p, nthreads);
      const std::int64_t lo = seg[c.rank()], hi = seg[c.rank() + 1];
      // Force phase first (all reads see pre-step positions), then the
      // integration phase — mirroring the barrier between the two steps in
      // the shared-memory versions.
      for (std::int64_t i = lo; i < hi; ++i)
        bodies[order[i]].work = compute_force(a, order[i], p);
      std::int64_t count = 0;
      for (std::int64_t i = lo; i < hi; ++i) {
        Body& b = bodies[order[i]];
        for (int d = 0; d < 3; ++d) {
          b.vel[d] += p.dt * b.acc[d];
          b.pos[d] += p.dt * b.vel[d];
        }
        Update& u = mine[count++];
        u.idx = order[i];
        for (int d = 0; d < 3; ++d) {
          u.pos[d] = b.pos[d];
          u.vel[d] = b.vel[d];
        }
        u.work = b.work;
      }
      std::int64_t max_seg = count;
      c.allreduce(&max_seg, 1,
                  [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
      for (std::int64_t i = count; i < max_seg; ++i) mine[i].idx = -1;
      all.resize(static_cast<std::size_t>(max_seg) * np);
      // The single per-iteration exchange of modified particles.
      c.allgather(mine.data(), all.data(), static_cast<std::size_t>(max_seg));
      for (std::int64_t i = 0; i < max_seg * np; ++i) {
        const Update& u = all[i];
        if (u.idx < 0) continue;
        Body& b = bodies[u.idx];
        for (int d = 0; d < 3; ++d) {
          b.pos[d] = u.pos[d];
          b.vel[d] = u.vel[d];
        }
        b.work = u.work;
      }
    }
    double part = 0;
    const std::int64_t lo = seg[c.rank()], hi = seg[c.rank() + 1];
    for (std::int64_t i = lo; i < hi; ++i)
      for (int d = 0; d < 3; ++d) part += bodies[order[i]].pos[d];
    c.reduce(0, &part, 1, std::plus<double>{});
    if (c.rank() == 0) sum = part;
  });

  result.checksum = sum;
  result.time_us = world.makespan_us();
  result.stats = world.stats();
  return result;
}

} // namespace omsp::apps::barnes
