// Traveling Salesman by branch-and-bound (§5.2 "TSP").
//
// The paper's major data structures: a pool of partially evaluated tours, a
// priority queue of pointers into the pool ordered by lower bound, a free
// stack of unused pool slots, and the current shortest tour. A thread
// repeatedly dequeues the most promising partial tour and either extends it
// by one city (enqueueing the children) or, when few cities remain, solves
// the remainder exhaustively. All queue operations are guarded by the
// OpenMP `critical` directive; the result (the optimal tour length) is
// deterministic regardless of interleaving.
#pragma once

#include "apps/common.hpp"

namespace omsp::apps::tsp {

inline constexpr int kMaxCities = 20;

struct Params {
  int cities = 12;
  std::uint64_t seed = 42; // distance matrix generator
  // Partial tours with at most this many cities left are solved exhaustively
  // (the paper's "-r" recursion threshold).
  int solve_threshold = 8;
};

Result run_seq(const Params& p, double cpu_scale);
Result run_omp(const Params& p, const tmk::Config& cfg);
Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb = {});

// The deterministic optimum for the given parameters, computed by plain
// exhaustive DFS; tests compare all versions against it.
int brute_force_optimum(const Params& p);

} // namespace omsp::apps::tsp
