#include "apps/mgs.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace omsp::apps::mgs {

namespace {

void fill_input(double* a, const Params& p) {
  Rng rng(p.seed);
  for (std::int64_t i = 0; i < p.n * p.dim; ++i)
    a[i] = rng.next_double(-1.0, 1.0);
  // Make the matrix comfortably full-rank: boost the diagonal band.
  for (std::int64_t i = 0; i < p.n; ++i) a[i * p.dim + (i % p.dim)] += 4.0;
}

inline double dot(const double* x, const double* y, std::int64_t d) {
  double s = 0;
  for (std::int64_t k = 0; k < d; ++k) s += x[k] * y[k];
  return s;
}

// Normalize row i; returns false if the vector is (numerically) zero.
inline void normalize(double* v, std::int64_t d) {
  const double norm = std::sqrt(dot(v, v, d));
  for (std::int64_t k = 0; k < d; ++k) v[k] /= norm;
}

// Remove the projection of row j onto (unit) row i.
inline void orthogonalize(double* vj, const double* vi, std::int64_t d) {
  const double proj = dot(vj, vi, d);
  for (std::int64_t k = 0; k < d; ++k) vj[k] -= proj * vi[k];
}

double matrix_sum(const double* a, std::int64_t n, std::int64_t d) {
  double s = 0;
  for (std::int64_t i = 0; i < n * d; ++i) s += a[i];
  return s;
}

} // namespace

double orthogonality_defect(const double* basis, std::int64_t n,
                            std::int64_t dim) {
  double worst = 0;
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i; j < n; ++j) {
      const double d = dot(basis + i * dim, basis + j * dim, dim);
      const double defect = (i == j) ? std::abs(d - 1.0) : std::abs(d);
      worst = std::max(worst, defect);
    }
  return worst;
}

Result run_seq(const Params& p, double cpu_scale) {
  return run_sequential(cpu_scale, [&] {
    std::vector<double> a(p.n * p.dim);
    fill_input(a.data(), p);
    for (std::int64_t i = 0; i < p.n; ++i) {
      double* vi = a.data() + i * p.dim;
      normalize(vi, p.dim);
      for (std::int64_t j = i + 1; j < p.n; ++j)
        orthogonalize(a.data() + j * p.dim, vi, p.dim);
    }
    return matrix_sum(a.data(), p.n, p.dim);
  });
}

Result run_omp(const Params& p, const tmk::Config& cfg_in) {
  tmk::Config cfg = cfg_in;
  const std::size_t bytes =
      static_cast<std::size_t>(p.n * p.dim) * sizeof(double);
  cfg.heap_bytes = std::max(cfg.heap_bytes, bytes + (1u << 20));
  core::OmpRuntime rt(cfg);

  auto a = rt.alloc_page_aligned<double>(static_cast<std::size_t>(p.n * p.dim));
  fill_input(a.local(), p);

  return run_openmp(rt, [&] {
    for (std::int64_t i = 0; i < p.n; ++i) {
      // Sequential section: the master normalizes vector i (§5.2).
      normalize(a.local() + i * p.dim, p.dim);
      // #pragma omp parallel for schedule(static, 1)
      rt.parallel_for(i + 1, p.n, core::Schedule::static_chunked(1),
                      [&](std::int64_t j) {
                        orthogonalize(a.local() + j * p.dim,
                                      a.local() + i * p.dim, p.dim);
                      });
    }
    return matrix_sum(a.local(), p.n, p.dim);
  });
}

Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb) {
  mpi::MpiWorld world(topo, cost, perturb);
  Result result;
  double checksum = 0;

  world.run([&](mpi::Comm& c) {
    const int np = c.size();
    const int me = c.rank();
    // Cyclic ownership: rank r owns vectors r, r+np, r+2np, ...
    std::vector<double> a(p.n * p.dim);
    fill_input(a.data(), p); // every rank builds the input; owners keep theirs

    std::vector<double> pivot(p.dim);
    for (std::int64_t i = 0; i < p.n; ++i) {
      const int owner = static_cast<int>(i % np);
      if (owner == me) {
        normalize(a.data() + i * p.dim, p.dim);
        std::copy_n(a.data() + i * p.dim, p.dim, pivot.data());
      }
      c.bcast_n(owner, pivot.data(), static_cast<std::size_t>(p.dim));
      if (owner == me)
        std::copy_n(pivot.data(), p.dim, a.data() + i * p.dim);
      for (std::int64_t j = i + 1; j < p.n; ++j)
        if (static_cast<int>(j % np) == me)
          orthogonalize(a.data() + j * p.dim, pivot.data(), p.dim);
    }

    // Checksum over owned vectors.
    double part = 0;
    for (std::int64_t j = 0; j < p.n; ++j)
      if (static_cast<int>(j % np) == me)
        for (std::int64_t k = 0; k < p.dim; ++k) part += a[j * p.dim + k];
    c.reduce(0, &part, 1, std::plus<double>{});
    if (me == 0) checksum = part;
  });

  result.checksum = checksum;
  result.time_us = world.makespan_us();
  result.stats = world.stats();
  return result;
}

} // namespace omsp::apps::mgs
