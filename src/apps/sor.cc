#include "apps/sor.hpp"

#include <vector>

namespace omsp::apps::sor {

namespace {

// Grid layout: (rows + 2) x (cols + 2) with a fixed boundary frame. Red
// elements have (r + c) even, black ones odd.
inline std::int64_t stride(const Params& p) { return p.cols + 2; }

void init_boundary(double* g, const Params& p) {
  const std::int64_t s = stride(p);
  for (std::int64_t c = 0; c < p.cols + 2; ++c) {
    g[c] = p.boundary;
    g[(p.rows + 1) * s + c] = p.boundary;
  }
  for (std::int64_t r = 0; r < p.rows + 2; ++r) {
    g[r * s] = p.boundary;
    g[r * s + p.cols + 1] = p.boundary;
  }
}

// Update one row's elements of the given color (0 = red, 1 = black).
inline void relax_row(double* g, std::int64_t r, int color, const Params& p) {
  const std::int64_t s = stride(p);
  double* row = g + r * s;
  const std::int64_t first = 1 + ((r + color) & 1);
  for (std::int64_t c = first; c <= p.cols; c += 2)
    row[c] = 0.25 * (row[c - 1] + row[c + 1] + row[c - s] + row[c + s]);
}

double grid_checksum(const double* g, const Params& p) {
  const std::int64_t s = stride(p);
  double sum = 0;
  for (std::int64_t r = 1; r <= p.rows; ++r)
    for (std::int64_t c = 1; c <= p.cols; ++c) sum += g[r * s + c];
  return sum;
}

} // namespace

Result run_seq(const Params& p, double cpu_scale) {
  return run_sequential(cpu_scale, [&] {
    std::vector<double> grid((p.rows + 2) * stride(p), 0.0);
    init_boundary(grid.data(), p);
    for (int it = 0; it < p.iters; ++it) {
      for (int color = 0; color < 2; ++color)
        for (std::int64_t r = 1; r <= p.rows; ++r)
          relax_row(grid.data(), r, color, p);
    }
    return grid_checksum(grid.data(), p);
  });
}

Result run_omp(const Params& p, const tmk::Config& cfg_in) {
  tmk::Config cfg = cfg_in;
  const std::size_t grid_bytes =
      static_cast<std::size_t>((p.rows + 2) * stride(p)) * sizeof(double);
  cfg.heap_bytes = std::max(cfg.heap_bytes, grid_bytes + (1u << 20));
  core::OmpRuntime rt(cfg);

  auto grid = rt.alloc_page_aligned<double>(
      static_cast<std::size_t>((p.rows + 2) * stride(p)));
  for (std::int64_t i = 0; i < (p.rows + 2) * stride(p); ++i) grid[i] = 0.0;
  init_boundary(grid.local(), p);

  return run_openmp(rt, [&] {
    for (int it = 0; it < p.iters; ++it) {
      for (int color = 0; color < 2; ++color) {
        // #pragma omp parallel for  (one row per iteration, block schedule)
        rt.parallel_for(1, p.rows + 1, core::Schedule::static_block(),
                        [&](std::int64_t r) {
                          relax_row(grid.local(), r, color, p);
                        });
      }
    }
    return grid_checksum(grid.local(), p);
  });
}

Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb) {
  mpi::MpiWorld world(topo, cost, perturb);
  const std::int64_t s = stride(p);
  std::vector<double> checksums(world.size(), 0.0);
  Result result;

  world.run([&](mpi::Comm& c) {
    const int np = c.size();
    const auto range =
        block_partition(static_cast<std::uint64_t>(p.rows), np, c.rank());
    const std::int64_t lo = 1 + static_cast<std::int64_t>(range.begin);
    const std::int64_t hi = 1 + static_cast<std::int64_t>(range.end);
    const std::int64_t my_rows = hi - lo;

    // Local slab with two ghost rows (global rows lo-1 .. hi).
    std::vector<double> slab((my_rows + 2) * s, 0.0);
    auto row = [&](std::int64_t global_r) {
      return slab.data() + (global_r - (lo - 1)) * s;
    };
    // Boundary frame.
    for (std::int64_t r = lo - 1; r <= hi; ++r) {
      row(r)[0] = p.boundary;
      row(r)[p.cols + 1] = p.boundary;
    }
    if (lo == 1)
      for (std::int64_t col = 0; col < s; ++col) row(0)[col] = p.boundary;
    if (hi == p.rows + 1)
      for (std::int64_t col = 0; col < s; ++col)
        row(p.rows + 1)[col] = p.boundary;

    const int up = c.rank() - 1;
    const int down = c.rank() + 1;
    for (int it = 0; it < p.iters; ++it) {
      for (int color = 0; color < 2; ++color) {
        // Exchange boundary rows with neighbours (whole rows, always — the
        // communication pattern the paper contrasts against diffs).
        if (my_rows > 0) {
          if (up >= 0)
            c.sendrecv(up, 10, row(lo), s * sizeof(double), up, 11,
                       row(lo - 1), s * sizeof(double));
          if (down < np)
            c.sendrecv(down, 11, row(hi - 1), s * sizeof(double), down, 10,
                       row(hi), s * sizeof(double));
        }
        for (std::int64_t r = lo; r < hi; ++r) {
          double* g = row(r);
          const std::int64_t first = 1 + ((r + color) & 1);
          for (std::int64_t col = first; col <= p.cols; col += 2)
            g[col] = 0.25 * (g[col - 1] + g[col + 1] + g[col - s] + g[col + s]);
        }
      }
    }

    // Checksum: reduce partial sums to rank 0.
    double part = 0;
    for (std::int64_t r = lo; r < hi; ++r)
      for (std::int64_t col = 1; col <= p.cols; ++col) part += row(r)[col];
    c.reduce(0, &part, 1, std::plus<double>{});
    if (c.rank() == 0) checksums[0] = part;
  });

  result.checksum = checksums[0];
  result.time_us = world.makespan_us();
  result.stats = world.stats();
  return result;
}

} // namespace omsp::apps::sor
