// Water — molecular dynamics in the style of SPLASH-2 Water-Nsquared
// (§5.2 "Water").
//
// Each time step computes intra-molecular potentials (independent per
// molecule, `parallel for`) and inter-molecular pair forces over the half
// O(n^2) interaction matrix (`parallel region`). Per the paper, each thread
// accumulates inter-molecular forces into *private* memory during the pair
// computation and only synchronizes afterwards to perform a reduction —
// exercising the array-reduction extension of the translator.
#pragma once

#include "apps/common.hpp"

namespace omsp::apps::water {

struct Params {
  std::int64_t molecules = 256;
  int steps = 3;
  double dt = 1e-3;
  double cutoff = 0.45;   // interaction cutoff (box is the unit cube)
  std::uint64_t seed = 11;
};

Result run_seq(const Params& p, double cpu_scale);
Result run_omp(const Params& p, const tmk::Config& cfg);
Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb = {});

} // namespace omsp::apps::water
