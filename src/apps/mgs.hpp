// Modified Gram-Schmidt orthogonalization (§5.2 "MGS").
//
// Computes an orthonormal basis for a set of N D-dimensional vectors. At
// iteration i the algorithm normalizes vector i sequentially, then makes all
// vectors j > i orthogonal to it in parallel. The paper assigns vectors to
// threads cyclically (static schedule, chunk size 1) to balance the
// shrinking triangular workload.
#pragma once

#include "apps/common.hpp"

namespace omsp::apps::mgs {

struct Params {
  std::int64_t n = 128;   // number of vectors
  std::int64_t dim = 128; // vector dimension
  std::uint64_t seed = 7; // input matrix generator
};

Result run_seq(const Params& p, double cpu_scale);
Result run_omp(const Params& p, const tmk::Config& cfg);
Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb = {});

// Orthogonality defect of the produced basis (max |v_i . v_j|, i != j) plus
// norm defect; used by tests. The checksum in Result is the sum of all
// elements of the final basis.
double orthogonality_defect(const double* basis, std::int64_t n,
                            std::int64_t dim);

} // namespace omsp::apps::mgs
