#include "apps/fft3d.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/mathutil.hpp"
#include "common/rng.hpp"

namespace omsp::apps::fft3d {

namespace {

inline Cplx operator+(Cplx a, Cplx b) { return {a.re + b.re, a.im + b.im}; }
inline Cplx operator-(Cplx a, Cplx b) { return {a.re - b.re, a.im - b.im}; }
inline Cplx operator*(Cplx a, Cplx b) {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

// Index helpers. A is laid out (z, y, x) with x contiguous; B, the transposed
// array, is (x, y, z) with z contiguous.
struct Dims {
  std::int64_t nx, ny, nz;
  std::int64_t a_index(std::int64_t z, std::int64_t y, std::int64_t x) const {
    return (z * ny + y) * nx + x;
  }
  std::int64_t b_index(std::int64_t x, std::int64_t y, std::int64_t z) const {
    return (x * ny + y) * nz + z;
  }
  std::int64_t total() const { return nx * ny * nz; }
};

void fill_input(Cplx* a, const Params& p) {
  Rng rng(p.seed);
  const std::int64_t total = p.nx * p.ny * p.nz;
  for (std::int64_t i = 0; i < total; ++i) {
    a[i].re = rng.next_double(-0.5, 0.5);
    a[i].im = rng.next_double(-0.5, 0.5);
  }
}

// Frequency index: 0..n/2 then negative wrap.
inline std::int64_t freq(std::int64_t k, std::int64_t n) {
  return k <= n / 2 ? k : k - n;
}

// Evolution factor for frequency (kx, ky, kz) at time step t.
inline double evolve_factor(const Dims& d, std::int64_t x, std::int64_t y,
                            std::int64_t z, int t) {
  const double kx = static_cast<double>(freq(x, d.nx));
  const double ky = static_cast<double>(freq(y, d.ny));
  const double kz = static_cast<double>(freq(z, d.nz));
  return std::exp(-1e-4 * static_cast<double>(t) *
                  (kx * kx + ky * ky + kz * kz));
}

// FFT the y-lines of A for one z plane using a gather/scatter buffer.
void fft_y_plane(Cplx* a, const Dims& d, std::int64_t z, bool inv,
                 std::vector<Cplx>& line) {
  line.resize(d.ny);
  for (std::int64_t x = 0; x < d.nx; ++x) {
    for (std::int64_t y = 0; y < d.ny; ++y) line[y] = a[d.a_index(z, y, x)];
    fft1d(line.data(), d.ny, inv);
    for (std::int64_t y = 0; y < d.ny; ++y) a[d.a_index(z, y, x)] = line[y];
  }
}

double checksum_sample(const Cplx* a, std::int64_t total) {
  double s = 0;
  for (std::int64_t k = 0; k < 1024; ++k) {
    const Cplx& c = a[(17 * k) % total];
    s += c.re + c.im;
  }
  return s;
}

} // namespace

void fft1d(Cplx* a, std::int64_t n, bool inv) {
  OMSP_CHECK(is_pow2(static_cast<std::uint64_t>(n)));
  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < n; ++i) {
    std::int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2 * std::numbers::pi / static_cast<double>(len) * (inv ? 1 : -1);
    const Cplx wl{std::cos(ang), std::sin(ang)};
    for (std::int64_t i = 0; i < n; i += len) {
      Cplx w{1, 0};
      for (std::int64_t k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w = w * wl;
      }
    }
  }
  if (inv) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      a[i].re *= scale;
      a[i].im *= scale;
    }
  }
}

Result run_seq(const Params& p, double cpu_scale) {
  return run_sequential(cpu_scale, [&] {
    const Dims d{p.nx, p.ny, p.nz};
    std::vector<Cplx> a(d.total()), b(d.total()), c(d.total());
    fill_input(a.data(), p);
    std::vector<Cplx> line;

    // Forward: x then y FFTs in A, transpose, z FFT in B.
    for (std::int64_t z = 0; z < d.nz; ++z) {
      for (std::int64_t y = 0; y < d.ny; ++y)
        fft1d(a.data() + d.a_index(z, y, 0), d.nx, false);
      fft_y_plane(a.data(), d, z, false, line);
    }
    for (std::int64_t x = 0; x < d.nx; ++x)
      for (std::int64_t y = 0; y < d.ny; ++y)
        for (std::int64_t z = 0; z < d.nz; ++z)
          b[d.b_index(x, y, z)] = a[d.a_index(z, y, x)];
    for (std::int64_t x = 0; x < d.nx; ++x)
      for (std::int64_t y = 0; y < d.ny; ++y)
        fft1d(b.data() + d.b_index(x, y, 0), d.nz, false);

    double sum = 0;
    for (int t = 1; t <= p.iters; ++t) {
      // Evolve in frequency space, then inverse transform into A layout.
      for (std::int64_t x = 0; x < d.nx; ++x)
        for (std::int64_t y = 0; y < d.ny; ++y)
          for (std::int64_t z = 0; z < d.nz; ++z) {
            const double f = evolve_factor(d, x, y, z, t);
            Cplx& src = b[d.b_index(x, y, z)];
            c[d.b_index(x, y, z)] = {src.re * f, src.im * f};
          }
      for (std::int64_t x = 0; x < d.nx; ++x)
        for (std::int64_t y = 0; y < d.ny; ++y)
          fft1d(c.data() + d.b_index(x, y, 0), d.nz, true);
      for (std::int64_t z = 0; z < d.nz; ++z)
        for (std::int64_t y = 0; y < d.ny; ++y)
          for (std::int64_t x = 0; x < d.nx; ++x)
            a[d.a_index(z, y, x)] = c[d.b_index(x, y, z)];
      for (std::int64_t z = 0; z < d.nz; ++z) {
        fft_y_plane(a.data(), d, z, true, line);
        for (std::int64_t y = 0; y < d.ny; ++y)
          fft1d(a.data() + d.a_index(z, y, 0), d.nx, true);
      }
      sum += checksum_sample(a.data(), d.total());
    }
    return sum;
  });
}

Result run_omp(const Params& p, const tmk::Config& cfg_in) {
  const Dims d{p.nx, p.ny, p.nz};
  tmk::Config cfg = cfg_in;
  cfg.heap_bytes = std::max<std::size_t>(
      cfg.heap_bytes,
      3 * static_cast<std::size_t>(d.total()) * sizeof(Cplx) + (2u << 20));
  core::OmpRuntime rt(cfg);

  auto ga = rt.alloc_page_aligned<Cplx>(d.total());
  auto gb = rt.alloc_page_aligned<Cplx>(d.total());
  auto gc = rt.alloc_page_aligned<Cplx>(d.total());
  fill_input(ga.local(), p);

  return run_openmp(rt, [&] {
    // Forward transform (one region; for_loops barrier between phases).
    rt.parallel([&](core::Team& t) {
      Cplx* a = ga.local();
      Cplx* b = gb.local();
      std::vector<Cplx> line;
      // x and y FFTs over this thread's z planes.
      t.for_loop(0, d.nz, core::Schedule::static_block(), [&](std::int64_t z) {
        for (std::int64_t y = 0; y < d.ny; ++y)
          fft1d(a + d.a_index(z, y, 0), d.nx, false);
        fft_y_plane(a, d, z, false, line);
      });
      // Transpose (reads cross-slab) + z FFT over this thread's x planes.
      t.for_loop(0, d.nx, core::Schedule::static_block(), [&](std::int64_t x) {
        for (std::int64_t y = 0; y < d.ny; ++y) {
          for (std::int64_t z = 0; z < d.nz; ++z)
            b[d.b_index(x, y, z)] = a[d.a_index(z, y, x)];
          fft1d(b + d.b_index(x, y, 0), d.nz, false);
        }
      });
    });

    double sum = 0;
    for (int t_step = 1; t_step <= p.iters; ++t_step) {
      rt.parallel([&](core::Team& t) {
        Cplx* a = ga.local();
        Cplx* b = gb.local();
        Cplx* c = gc.local();
        std::vector<Cplx> line;
        // Evolve + inverse z FFT over own x planes.
        t.for_loop(0, d.nx, core::Schedule::static_block(),
                   [&](std::int64_t x) {
                     for (std::int64_t y = 0; y < d.ny; ++y) {
                       for (std::int64_t z = 0; z < d.nz; ++z) {
                         const double f = evolve_factor(d, x, y, z, t_step);
                         const Cplx& src = b[d.b_index(x, y, z)];
                         c[d.b_index(x, y, z)] = {src.re * f, src.im * f};
                       }
                       fft1d(c + d.b_index(x, y, 0), d.nz, true);
                     }
                   });
        // Transpose back (the global transpose: reads cross-slab) + inverse
        // y and x FFTs over own z planes.
        t.for_loop(0, d.nz, core::Schedule::static_block(),
                   [&](std::int64_t z) {
                     for (std::int64_t y = 0; y < d.ny; ++y)
                       for (std::int64_t x = 0; x < d.nx; ++x)
                         a[d.a_index(z, y, x)] = c[d.b_index(x, y, z)];
                     fft_y_plane(a, d, z, true, line);
                     for (std::int64_t y = 0; y < d.ny; ++y)
                       fft1d(a + d.a_index(z, y, 0), d.nx, true);
                   });
      });
      // Master samples the checksum between regions.
      sum += checksum_sample(ga.local(), d.total());
    }
    return sum;
  });
}

Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb) {
  mpi::MpiWorld world(topo, cost, perturb);
  const Dims d{p.nx, p.ny, p.nz};
  const int np = world.size();
  OMSP_CHECK_MSG(d.nz % np == 0 && d.nx % np == 0,
                 "fft3d MPI needs nz and nx divisible by nprocs");
  Result result;
  double sum = 0;

  world.run([&](mpi::Comm& c) {
    const std::int64_t zblk = d.nz / np; // my z planes in A layout
    const std::int64_t xblk = d.nx / np; // my x planes in B layout
    const std::int64_t zlo = c.rank() * zblk;
    const std::int64_t xlo = c.rank() * xblk;

    // Local slabs. a: (zblk, ny, nx); b/cw: (xblk, ny, nz).
    std::vector<Cplx> a(zblk * d.ny * d.nx);
    std::vector<Cplx> b(xblk * d.ny * d.nz), cw(xblk * d.ny * d.nz);
    auto ai = [&](std::int64_t z, std::int64_t y, std::int64_t x) {
      return (z * d.ny + y) * d.nx + x;
    };
    auto bi = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
      return (x * d.ny + y) * d.nz + z;
    };
    {
      // Deterministic replicated init, then keep own slab.
      std::vector<Cplx> full(d.total());
      fill_input(full.data(), p);
      for (std::int64_t z = 0; z < zblk; ++z)
        for (std::int64_t y = 0; y < d.ny; ++y)
          for (std::int64_t x = 0; x < d.nx; ++x)
            a[ai(z, y, x)] = full[d.a_index(zlo + z, y, x)];
    }
    std::vector<Cplx> line;
    const std::int64_t block = zblk * d.ny * xblk; // alltoall cell
    std::vector<Cplx> sendbuf(block * np), recvbuf(block * np);

    auto transpose_a_to_b = [&] {
      // Pack: cell for destination r holds (my z's, all y, r's x's).
      for (int r = 0; r < np; ++r) {
        Cplx* cell = sendbuf.data() + r * block;
        std::int64_t k = 0;
        for (std::int64_t z = 0; z < zblk; ++z)
          for (std::int64_t y = 0; y < d.ny; ++y)
            for (std::int64_t x = 0; x < xblk; ++x)
              cell[k++] = a[ai(z, y, r * xblk + x)];
      }
      c.alltoall(sendbuf.data(), recvbuf.data(), block);
      for (int r = 0; r < np; ++r) {
        const Cplx* cell = recvbuf.data() + r * block;
        std::int64_t k = 0;
        for (std::int64_t z = 0; z < zblk; ++z)
          for (std::int64_t y = 0; y < d.ny; ++y)
            for (std::int64_t x = 0; x < xblk; ++x)
              b[bi(x, y, r * zblk + z)] = cell[k++];
      }
    };
    auto transpose_b_to_a = [&](const std::vector<Cplx>& src) {
      for (int r = 0; r < np; ++r) {
        Cplx* cell = sendbuf.data() + r * block;
        std::int64_t k = 0;
        for (std::int64_t z = 0; z < zblk; ++z)
          for (std::int64_t y = 0; y < d.ny; ++y)
            for (std::int64_t x = 0; x < xblk; ++x)
              cell[k++] = src[bi(x, y, r * zblk + z)];
      }
      c.alltoall(sendbuf.data(), recvbuf.data(), block);
      for (int r = 0; r < np; ++r) {
        const Cplx* cell = recvbuf.data() + r * block;
        std::int64_t k = 0;
        for (std::int64_t z = 0; z < zblk; ++z)
          for (std::int64_t y = 0; y < d.ny; ++y)
            for (std::int64_t x = 0; x < xblk; ++x)
              a[ai(z, y, r * xblk + x)] = cell[k++];
      }
    };

    // Forward transform.
    for (std::int64_t z = 0; z < zblk; ++z) {
      for (std::int64_t y = 0; y < d.ny; ++y)
        fft1d(a.data() + ai(z, y, 0), d.nx, false);
      line.resize(d.ny);
      for (std::int64_t x = 0; x < d.nx; ++x) {
        for (std::int64_t y = 0; y < d.ny; ++y) line[y] = a[ai(z, y, x)];
        fft1d(line.data(), d.ny, false);
        for (std::int64_t y = 0; y < d.ny; ++y) a[ai(z, y, x)] = line[y];
      }
    }
    transpose_a_to_b();
    for (std::int64_t x = 0; x < xblk; ++x)
      for (std::int64_t y = 0; y < d.ny; ++y)
        fft1d(b.data() + bi(x, y, 0), d.nz, false);

    double local_sum = 0;
    for (int t_step = 1; t_step <= p.iters; ++t_step) {
      for (std::int64_t x = 0; x < xblk; ++x)
        for (std::int64_t y = 0; y < d.ny; ++y) {
          for (std::int64_t z = 0; z < d.nz; ++z) {
            const double f = evolve_factor(d, xlo + x, y, z, t_step);
            const Cplx& src = b[bi(x, y, z)];
            cw[bi(x, y, z)] = {src.re * f, src.im * f};
          }
          fft1d(cw.data() + bi(x, y, 0), d.nz, true);
        }
      transpose_b_to_a(cw);
      for (std::int64_t z = 0; z < zblk; ++z) {
        line.resize(d.ny);
        for (std::int64_t x = 0; x < d.nx; ++x) {
          for (std::int64_t y = 0; y < d.ny; ++y) line[y] = a[ai(z, y, x)];
          fft1d(line.data(), d.ny, true);
          for (std::int64_t y = 0; y < d.ny; ++y) a[ai(z, y, x)] = line[y];
        }
        for (std::int64_t y = 0; y < d.ny; ++y)
          fft1d(a.data() + ai(z, y, 0), d.nx, true);
      }
      // Checksum sample over indices this rank owns.
      for (std::int64_t k = 0; k < 1024; ++k) {
        const std::int64_t idx = (17 * k) % d.total();
        const std::int64_t z = idx / (d.ny * d.nx);
        if (z >= zlo && z < zlo + zblk) {
          const Cplx& v = a[idx - zlo * d.ny * d.nx];
          local_sum += v.re + v.im;
        }
      }
    }
    c.reduce(0, &local_sum, 1, std::plus<double>{});
    if (c.rank() == 0) sum = local_sum;
  });

  result.checksum = sum;
  result.time_us = world.makespan_us();
  result.stats = world.stats();
  return result;
}

} // namespace omsp::apps::fft3d
