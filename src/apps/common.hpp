// Shared scaffolding for the six benchmark applications.
//
// Every application is implemented three times, mirroring the paper's
// evaluation:
//   run_seq — single-threaded reference (the speedup baseline of Table 1);
//   run_omp — the OpenMP port, written exactly as the translator would emit
//             (outlined regions over omsp::core), running on the TreadMarks
//             DSM in either thread or process mode;
//   run_mpi — the hand-written message-passing version over mini-MPI.
//
// Each returns a Result carrying a numerical checksum (the three versions
// must agree), the simulated elapsed time, and the traffic/VM-operation
// statistics the benches turn into Tables 2 and 3.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "core/runtime.hpp"
#include "mpi/mpi.hpp"
#include "sim/cost_model.hpp"
#include "sim/topology.hpp"
#include "sim/virtual_clock.hpp"
#include "tmk/config.hpp"

namespace omsp::apps {

struct Result {
  double checksum = 0;   // application-defined digest; versions must agree
  double time_us = 0;    // simulated elapsed time (virtual clock)
  StatsSnapshot stats;   // communication + VM counters (zero for run_seq)
};

// Run a sequential kernel under a bound virtual clock and return its
// simulated time. `fn` returns the checksum.
template <typename Fn> Result run_sequential(double cpu_scale, Fn&& fn) {
  sim::VirtualClock clock(cpu_scale);
  sim::VirtualClock::Binder bind(&clock);
  Result r;
  clock.sync_cpu();
  const double t0 = clock.now_us();
  r.checksum = fn();
  clock.sync_cpu();
  r.time_us = clock.now_us() - t0;
  return r;
}

// Measure one OpenMP run: reset stats, time the master clock around `fn`.
template <typename Fn>
Result run_openmp(core::OmpRuntime& rt, Fn&& fn) {
  rt.dsm().reset_stats();
  Result r;
  const double t0 = rt.dsm().master_time_us();
  r.checksum = fn();
  r.time_us = rt.dsm().master_time_us() - t0;
  r.stats = rt.dsm().stats();
  return r;
}

} // namespace omsp::apps
