#include "apps/water.hpp"

#include <cmath>
#include <vector>

#include "common/mathutil.hpp"
#include "common/rng.hpp"

namespace omsp::apps::water {

namespace {

// Structure-of-arrays layout: pos[3][n], vel[3][n], force[3][n]. SoA keeps
// the DSM pages a thread writes during the update phase contiguous, like the
// original benchmark's molecule blocks.
struct View {
  double* pos[3];
  double* vel[3];
  double* force[3];
  std::int64_t n;
};

void init_system(const View& v, const Params& p) {
  Rng rng(p.seed);
  for (std::int64_t i = 0; i < v.n; ++i) {
    for (int d = 0; d < 3; ++d) {
      v.pos[d][i] = rng.next_double();
      v.vel[d][i] = 0.05 * rng.next_double(-1.0, 1.0);
      v.force[d][i] = 0.0;
    }
  }
}

// Intra-molecular potential: a stiff harmonic term pulling each molecule
// toward its lattice site (stands in for SPLASH-2's bond/angle terms; same
// access pattern: reads and writes only molecule i).
inline void intra_force(const View& v, std::int64_t i) {
  const double site = 0.5;
  for (int d = 0; d < 3; ++d)
    v.force[d][i] = -4.0 * (v.pos[d][i] - site);
}

// Inter-molecular pair force between i and j, accumulated into `acc`
// (length 3*n, layout [d*n + i]).
inline void pair_force(const View& v, std::int64_t i, std::int64_t j,
                       double cutoff2, double* acc) {
  double dx[3];
  double r2 = 0;
  for (int d = 0; d < 3; ++d) {
    dx[d] = v.pos[d][i] - v.pos[d][j];
    r2 += dx[d] * dx[d];
  }
  if (r2 >= cutoff2 || r2 < 1e-12) return;
  // Soft repulsive potential: f = k * (cutoff2 - r2) in the pair direction.
  const double k = 2.0 * (cutoff2 - r2);
  for (int d = 0; d < 3; ++d) {
    acc[d * v.n + i] += k * dx[d];
    acc[d * v.n + j] -= k * dx[d];
  }
}

// Pairs are split by the owner of the first index: thread t handles pairs
// (i, j) with i in its block, j > i — the SPLASH-2 half-matrix split.
void pair_phase(const View& v, std::int64_t i_begin, std::int64_t i_end,
                double cutoff2, double* acc) {
  for (std::int64_t i = i_begin; i < i_end; ++i)
    for (std::int64_t j = i + 1; j < v.n; ++j)
      pair_force(v, i, j, cutoff2, acc);
}

inline void integrate(const View& v, std::int64_t i, double dt) {
  for (int d = 0; d < 3; ++d) {
    v.vel[d][i] += dt * v.force[d][i];
    v.pos[d][i] += dt * v.vel[d][i];
    // Reflecting walls keep the system in the unit box.
    if (v.pos[d][i] < 0) {
      v.pos[d][i] = -v.pos[d][i];
      v.vel[d][i] = -v.vel[d][i];
    } else if (v.pos[d][i] > 1) {
      v.pos[d][i] = 2 - v.pos[d][i];
      v.vel[d][i] = -v.vel[d][i];
    }
  }
}

double checksum(const View& v) {
  double s = 0;
  for (int d = 0; d < 3; ++d)
    for (std::int64_t i = 0; i < v.n; ++i) s += v.pos[d][i];
  return s;
}

} // namespace

Result run_seq(const Params& p, double cpu_scale) {
  return run_sequential(cpu_scale, [&] {
    const std::int64_t n = p.molecules;
    std::vector<double> storage(9 * n);
    View v{{&storage[0], &storage[n], &storage[2 * n]},
           {&storage[3 * n], &storage[4 * n], &storage[5 * n]},
           {&storage[6 * n], &storage[7 * n], &storage[8 * n]},
           n};
    init_system(v, p);
    const double cutoff2 = p.cutoff * p.cutoff;
    std::vector<double> acc(3 * n);
    for (int step = 0; step < p.steps; ++step) {
      for (std::int64_t i = 0; i < n; ++i) intra_force(v, i);
      std::fill(acc.begin(), acc.end(), 0.0);
      pair_phase(v, 0, n, cutoff2, acc.data());
      for (int d = 0; d < 3; ++d)
        for (std::int64_t i = 0; i < n; ++i) v.force[d][i] += acc[d * n + i];
      for (std::int64_t i = 0; i < n; ++i) integrate(v, i, p.dt);
    }
    return checksum(v);
  });
}

Result run_omp(const Params& p, const tmk::Config& cfg_in) {
  const std::int64_t n = p.molecules;
  tmk::Config cfg = cfg_in;
  cfg.heap_bytes = std::max<std::size_t>(
      cfg.heap_bytes, 16 * static_cast<std::size_t>(n) * sizeof(double) +
                          (2u << 20));
  core::OmpRuntime rt(cfg);

  auto storage = rt.alloc_page_aligned<double>(9 * n);
  auto inter = rt.alloc_page_aligned<double>(3 * n); // reduction target
  View v{{storage.local(), storage.local() + n, storage.local() + 2 * n},
         {storage.local() + 3 * n, storage.local() + 4 * n,
          storage.local() + 5 * n},
         {storage.local() + 6 * n, storage.local() + 7 * n,
          storage.local() + 8 * n},
         n};
  init_system(v, p);
  const double cutoff2 = p.cutoff * p.cutoff;

  return run_openmp(rt, [&] {
    for (int step = 0; step < p.steps; ++step) {
      // #pragma omp parallel — one region per step (paper: for + region).
      rt.parallel([&](core::Team& t) {
        // View resolved in this thread's context.
        View lv{{storage.local(), storage.local() + n,
                 storage.local() + 2 * n},
                {storage.local() + 3 * n, storage.local() + 4 * n,
                 storage.local() + 5 * n},
                {storage.local() + 6 * n, storage.local() + 7 * n,
                 storage.local() + 8 * n},
                n};
        // Intra-molecular: parallel for, no interactions.
        t.for_loop(0, n, core::Schedule::static_block(),
                   [&](std::int64_t i) { intra_force(lv, i); });
        // Inter-molecular: private accumulation + array reduction (§5.2).
        std::vector<double> acc(3 * n, 0.0);
        const auto range = block_partition(static_cast<std::uint64_t>(n),
                                           t.num_threads(), t.thread_num());
        pair_phase(lv, static_cast<std::int64_t>(range.begin),
                   static_cast<std::int64_t>(range.end), cutoff2, acc.data());
        t.reduce_array(acc.data(), inter, 3 * n, std::plus<double>{});
        // Combine and integrate own block.
        t.for_loop(0, n, core::Schedule::static_block(), [&](std::int64_t i) {
          for (int d = 0; d < 3; ++d)
            lv.force[d][i] += inter[d * n + i];
          integrate(lv, i, p.dt);
        });
      });
    }
    return checksum(v);
  });
}

Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb) {
  mpi::MpiWorld world(topo, cost, perturb);
  const std::int64_t n = p.molecules;
  Result result;
  double sum = 0;

  world.run([&](mpi::Comm& c) {
    const int np = c.size();
    const auto range =
        block_partition(static_cast<std::uint64_t>(n), np, c.rank());
    const std::int64_t lo = static_cast<std::int64_t>(range.begin);
    const std::int64_t hi = static_cast<std::int64_t>(range.end);

    std::vector<double> storage(9 * n);
    View v{{&storage[0], &storage[n], &storage[2 * n]},
           {&storage[3 * n], &storage[4 * n], &storage[5 * n]},
           {&storage[6 * n], &storage[7 * n], &storage[8 * n]},
           n};
    init_system(v, p); // replicated init: consistent across ranks
    const double cutoff2 = p.cutoff * p.cutoff;
    std::vector<double> acc(3 * n);

    // Per-rank block sizes for position allgather (variable-size blocks are
    // exchanged as fixed max-size slots for simplicity).
    const std::int64_t max_block =
        static_cast<std::int64_t>(ceil_div(static_cast<std::uint64_t>(n), np));
    std::vector<double> slot(3 * max_block), all(3 * max_block * np);

    for (int step = 0; step < p.steps; ++step) {
      for (std::int64_t i = lo; i < hi; ++i) intra_force(v, i);
      std::fill(acc.begin(), acc.end(), 0.0);
      pair_phase(v, lo, hi, cutoff2, acc.data());
      c.allreduce(acc.data(), acc.size(), std::plus<double>{});
      for (int d = 0; d < 3; ++d)
        for (std::int64_t i = lo; i < hi; ++i)
          v.force[d][i] += acc[d * n + i];
      for (std::int64_t i = lo; i < hi; ++i) integrate(v, i, p.dt);

      // Exchange updated positions of own block with everyone.
      std::fill(slot.begin(), slot.end(), 0.0);
      for (int d = 0; d < 3; ++d)
        for (std::int64_t i = lo; i < hi; ++i)
          slot[d * max_block + (i - lo)] = v.pos[d][i];
      c.allgather(slot.data(), all.data(), 3 * max_block);
      for (int r = 0; r < np; ++r) {
        const auto rr = block_partition(static_cast<std::uint64_t>(n), np, r);
        const double* rslot = all.data() + 3 * max_block * r;
        for (int d = 0; d < 3; ++d)
          for (std::uint64_t i = rr.begin; i < rr.end; ++i)
            v.pos[d][i] = rslot[d * max_block + (i - rr.begin)];
      }
    }

    double part = 0;
    for (int d = 0; d < 3; ++d)
      for (std::int64_t i = lo; i < hi; ++i) part += v.pos[d][i];
    c.reduce(0, &part, 1, std::plus<double>{});
    if (c.rank() == 0) sum = part;
  });

  result.checksum = sum;
  result.time_us = world.makespan_us();
  result.stats = world.stats();
  return result;
}

} // namespace omsp::apps::water
