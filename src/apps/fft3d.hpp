// 3D-FFT — the NAS FT kernel (§5.2 "3D-FFT").
//
// Solves a PDE spectrally: the initial array is transformed once with a
// forward 3-D FFT; each iteration multiplies by evolution factors in the
// frequency domain, applies an inverse 3-D FFT, and folds a sample of the
// result into a running checksum. The 3-D transforms decompose into 1-D FFTs
// along each axis; the z-axis pass requires a global transpose, which is the
// all-to-all communication the paper's analysis centers on.
#pragma once

#include "apps/common.hpp"

namespace omsp::apps::fft3d {

// Trivially-copyable complex type (lives in DSM pages and MPI payloads).
struct Cplx {
  double re = 0;
  double im = 0;
};

struct Params {
  // Grid dimensions; all must be powers of two.
  std::int64_t nx = 32;
  std::int64_t ny = 32;
  std::int64_t nz = 16;
  int iters = 4;
  std::uint64_t seed = 5;
};

Result run_seq(const Params& p, double cpu_scale);
Result run_omp(const Params& p, const tmk::Config& cfg);
Result run_mpi(const Params& p, const sim::Topology& topo,
               const sim::CostModel& cost,
               const net::PerturbOptions& perturb = {});

// In-place radix-2 FFT of length n (power of two); inverse when inv is true
// (scaled by 1/n). Exposed for unit tests.
void fft1d(Cplx* a, std::int64_t n, bool inv);

} // namespace omsp::apps::fft3d
