// In-process interconnect between DSM contexts / MPI ranks.
//
// The paper's TreadMarks sends UDP messages between processes and services
// them in SIGIO handlers. Here the whole cluster lives in one process, so a
// "message" is: serialize the request, account and charge it on the sender's
// counters/clock, run the destination's handler directly (the destination
// object does its own locking), serialize the reply, account and charge it on
// the destination's counters and the requester's clock. Message counts and
// byte volumes — the Table 2 quantities — are therefore identical to what a
// wire transport would record; only the executing thread differs.
//
// The router also classifies traffic as intra-node (shared-memory transport)
// or inter-node (SP2 switch) from the context->node map, which drives both
// the off-node counters and the cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/cost_model.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/tracer.hpp"

namespace omsp::net {

// Per-message fixed framing overhead (src, dst, type, length), counted into
// byte totals the way TreadMarks counts its message headers.
inline constexpr std::size_t kHeaderBytes = 16;

// A context's inbound request dispatcher. Implementations must be safe to
// call from any thread; they lock their own state.
class MessageHandler {
public:
  virtual ~MessageHandler() = default;
  virtual void handle(ContextId src, std::uint16_t type, ByteReader& request,
                      ByteWriter& reply) = 0;
};

class Router {
public:
  // `context_node[c]` is the physical node hosting context c.
  Router(std::vector<NodeId> context_node, sim::CostModel model)
      : context_node_(std::move(context_node)), model_(model),
        stats_(context_node_.size()) {
    handlers_.resize(context_node_.size(), nullptr);
    for (auto& s : stats_) s = std::make_unique<StatsBoard>();
  }

  std::size_t num_contexts() const { return context_node_.size(); }
  NodeId node_of(ContextId c) const {
    OMSP_DCHECK(c < context_node_.size());
    return context_node_[c];
  }
  bool same_node(ContextId a, ContextId b) const {
    return node_of(a) == node_of(b);
  }

  void bind_handler(ContextId c, MessageHandler* handler) {
    OMSP_CHECK(c < handlers_.size());
    handlers_[c] = handler;
  }

  StatsBoard& stats(ContextId c) {
    OMSP_DCHECK(c < stats_.size());
    return *stats_[c];
  }

  const sim::CostModel& model() const { return model_; }

  // Aggregate counters over all contexts.
  StatsSnapshot snapshot() const {
    StatsSnapshot s;
    for (const auto& b : stats_) b->accumulate(s.v);
    return s;
  }

  void reset_stats() {
    for (auto& b : stats_) b->reset();
  }

  // Account one one-way message of `payload_bytes` and return its modeled
  // one-way cost in microseconds. Used directly by MPI and by notifications;
  // request/reply traffic goes through call().
  double account_message(ContextId src, ContextId dst,
                         std::size_t payload_bytes) {
    const bool same = same_node(src, dst);
    const std::size_t bytes = payload_bytes + kHeaderBytes;
    auto& board = *stats_[src];
    board.add(Counter::kMsgsSent);
    board.add(Counter::kBytesSent, bytes);
    if (!same) {
      board.add(Counter::kMsgsOffNode);
      board.add(Counter::kBytesOffNode, bytes);
    }
    OMSP_TRACE_EVENT(kMessage, src, bytes, dst,
                     same ? 0 : trace::kFlagOffNode);
    return model_.message_us(bytes, same);
  }

  // Request/reply round trip from `src` to `dst`. Charges the calling
  // thread's virtual clock for both directions plus handler service time.
  // Returns the reply payload.
  std::vector<std::uint8_t> call(ContextId src, ContextId dst,
                                 std::uint16_t type, const ByteWriter& request) {
    OMSP_CHECK(dst < handlers_.size());
    OMSP_CHECK_MSG(handlers_[dst] != nullptr, "destination has no handler");

    auto* clock = sim::VirtualClock::current();
    const double req_cost = account_message(src, dst, request.size());
    if (clock != nullptr) clock->charge(req_cost + model_.handler_service_us);

    ByteWriter reply;
    ByteReader reader(request.bytes());
    handlers_[dst]->handle(src, type, reader, reply);

    const double reply_cost = account_message(dst, src, reply.size());
    if (clock != nullptr) clock->charge(reply_cost);
    return reply.take();
  }

private:
  std::vector<NodeId> context_node_;
  sim::CostModel model_;
  std::vector<std::unique_ptr<StatsBoard>> stats_;
  std::vector<MessageHandler*> handlers_;
};

} // namespace omsp::net
