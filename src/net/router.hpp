// In-process interconnect between DSM contexts / MPI ranks.
//
// The paper's TreadMarks sends UDP messages between processes and services
// them in SIGIO handlers. Here the whole cluster lives in one process, so a
// "message" is an Envelope delivered by a Transport (net/transport.hpp): the
// default InlineTransport serializes the request, accounts and charges it on
// the sender's counters/clock, runs the destination's handler directly (the
// destination object does its own locking), then accounts and charges the
// reply. Message counts and byte volumes — the Table 2 quantities — are
// therefore identical to what a wire transport would record; only the
// executing thread differs.
//
// The Router is the part that stays fixed across transports: the
// context->node map plus the hierarchical Topology descriptor that together
// place every (src, dst) pair on a path of stages (intra-node shared memory,
// edge switch, spine, ...), the per-context StatsBoards, the handler table,
// and the accounting rule (account()) every transport funnels deliveries
// through so counters and trace events stay paired no matter how a message
// reached its destination. A message's modeled cost is the sum of the stage
// costs along its path (sim::Topology::message_us); traffic is "off-node"
// whenever that path rises above stage 0.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "sim/cost_model.hpp"
#include "sim/topology.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/tracer.hpp"

namespace omsp::net {

class Router {
public:
  // `context_node[c]` is the physical node hosting context c; `topo` is the
  // stage hierarchy those nodes hang off (topo.nodes() must cover every node
  // id in the map).
  Router(std::vector<NodeId> context_node, sim::CostModel model,
         sim::Topology topo)
      : context_node_(std::move(context_node)), model_(model),
        topo_(std::move(topo)), stats_(context_node_.size()) {
    init();
    OMSP_CHECK(topo_.nodes() >= num_nodes_);
  }

  // Node map only: nodes sit behind a single flat switch, which prices every
  // off-node pair identically — exactly the legacy binary intra/inter split.
  Router(std::vector<NodeId> context_node, sim::CostModel model)
      : context_node_(std::move(context_node)), model_(model), topo_(1, 1),
        stats_(context_node_.size()) {
    init();
    topo_ = sim::Topology(std::max(num_nodes_, 1u), 1);
  }

  std::size_t num_contexts() const { return context_node_.size(); }
  std::uint32_t num_nodes() const { return num_nodes_; }
  NodeId node_of(ContextId c) const {
    OMSP_DCHECK(c < context_node_.size());
    return context_node_[c];
  }
  bool same_node(ContextId a, ContextId b) const {
    return node_of(a) == node_of(b);
  }

  void bind_handler(ContextId c, MessageHandler* handler) {
    OMSP_CHECK(c < handlers_.size());
    handlers_[c] = handler;
  }

  MessageHandler* handler(ContextId c) const {
    OMSP_CHECK(c < handlers_.size());
    return handlers_[c];
  }

  StatsBoard& stats(ContextId c) {
    OMSP_DCHECK(c < stats_.size());
    return *stats_[c];
  }

  const sim::CostModel& model() const { return model_; }
  const sim::Topology& topology() const { return topo_; }

  // Shared-segment key for the (src, dst) context pair: the sender's uplink
  // into the topmost stage the message crosses. Transports key their busy
  // windows on this so traffic through the same NIC / edge-switch trunk
  // queues together even when the destinations differ.
  std::uint64_t link_segment(ContextId src, ContextId dst) const {
    return topo_.link_segment(node_of(src), node_of(dst));
  }

  // The delivery layer. Protocol code sends through this — request/reply via
  // transport().call(env), one-way notifications via transport().notify(env).
  Transport& transport() { return *transport_; }
  void set_transport(std::unique_ptr<Transport> t) {
    OMSP_CHECK(t != nullptr);
    transport_ = std::move(t);
  }

  // Aggregate counters over all contexts.
  StatsSnapshot snapshot() const {
    StatsSnapshot s;
    for (const auto& b : stats_) b->accumulate(s.v);
    return s;
  }

  void reset_stats() {
    for (auto& b : stats_) b->reset();
  }

  // The single accounting rule every transport funnels deliveries through:
  // add kHeaderBytes framing, bump the sender's message/byte counters (plus
  // the off-node pair when the link crosses a physical node), emit the paired
  // `message` trace event, and return the modeled one-way cost in
  // microseconds. The event packs (type, dst) into arg1 so analyzers can
  // report traffic by registry name; env.trace_flags (e.g. kFlagPerturbed on
  // injected duplicates) are OR-ed into the event flags.
  double account(const Envelope& env) {
    const bool same = same_node(env.src, env.dst);
    const std::size_t bytes = env.payload_size() + kHeaderBytes;
    auto& board = *stats_[env.src];
    board.add(Counter::kMsgsSent);
    board.add(Counter::kBytesSent, bytes);
    if (!same) {
      board.add(Counter::kMsgsOffNode);
      board.add(Counter::kBytesOffNode, bytes);
    }
    const double cost = topo_.message_us(model_, bytes, node_of(env.src),
                                         node_of(env.dst));
    // The modeled one-way cost rides in dur_us so `omsp-trace summary` can
    // report per-type latency without re-deriving the cost model.
    OMSP_TRACE_EVENT(kMessage, env.src, bytes,
                     message_trace_arg1(env.type, env.dst),
                     static_cast<std::uint16_t>(
                         env.trace_flags | (same ? 0 : trace::kFlagOffNode)),
                     cost);
    return cost;
  }

  // --- reliability accounting (net::PerturbingTransport's loss layer) -------
  // Same funnel discipline as account(): every counter bump is paired with
  // its trace event at the same site, so `omsp-trace check` stays exact
  // under loss. The lost copy's wire transmission is accounted separately
  // through account() by the caller — these record the protocol-level facts.

  // A one-way delivery of `env` was dropped in flight. Attributed to the
  // sender of the dropped copy.
  void account_loss(const Envelope& env) {
    stats_[env.src]->add(Counter::kMsgsLost);
    OMSP_TRACE_EVENT(kMessageLost, env.src,
                     env.payload_size() + kHeaderBytes,
                     message_trace_arg1(env.type, env.dst), env.trace_flags,
                     0.0);
  }

  // The sender's RTO for `env` expired and attempt `attempt` (1-based count
  // of retransmissions so far) is being issued after waiting rto_us.
  void account_retransmit(const Envelope& env, std::uint32_t attempt,
                          double rto_us) {
    stats_[env.src]->add(Counter::kRetransmits);
    OMSP_TRACE_EVENT(kRetransmit, env.src, attempt,
                     message_trace_arg1(env.type, env.dst), env.trace_flags,
                     rto_us);
  }

  // Context `acker` sent an explicit ack for seq `seq` of the notice channel
  // that delivered `env` (the ack message itself is accounted via account()).
  void account_ack(ContextId acker, const Envelope& env, std::uint32_t seq) {
    stats_[acker]->add(Counter::kAcksSent);
    OMSP_TRACE_EVENT(kAck, acker, seq,
                     message_trace_arg1(env.type, env.dst), env.trace_flags,
                     0.0);
  }

private:
  void init() {
    handlers_.resize(context_node_.size(), nullptr);
    for (auto& s : stats_) s = std::make_unique<StatsBoard>();
    for (const NodeId n : context_node_)
      num_nodes_ = std::max(num_nodes_, static_cast<std::uint32_t>(n) + 1);
    transport_ = std::make_unique<InlineTransport>(*this);
  }

  std::vector<NodeId> context_node_;
  sim::CostModel model_;
  sim::Topology topo_;
  std::vector<std::unique_ptr<StatsBoard>> stats_;
  std::vector<MessageHandler*> handlers_;
  std::uint32_t num_nodes_ = 0;
  std::unique_ptr<Transport> transport_;
};

} // namespace omsp::net
