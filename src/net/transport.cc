#include "net/transport.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "common/check.hpp"
#include "net/router.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/event.hpp"
#include "trace/tracer.hpp"

namespace omsp::net {

// ---------------------------------------------------------------------------
// PendingReply

std::vector<std::uint8_t> PendingReply::wait() {
  double complete = 0;
  auto reply = wait_at(&complete);
  if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
    clock->advance_to(complete);
  return reply;
}

std::vector<std::uint8_t> PendingReply::wait_at(double* complete_us) {
  OMSP_CHECK_MSG(state_ != nullptr, "wait on an empty PendingReply");
  std::unique_lock<std::mutex> lk(state_->mutex);
  state_->cv.wait(lk, [&] { return state_->done; });
  if (complete_us != nullptr)
    *complete_us = state_->complete_us + post_delay_us_;
  return std::move(state_->reply);
}

PendingReply PendingReply::ready(std::vector<std::uint8_t> reply,
                                 double complete_us) {
  PendingReply p;
  p.state_ = std::make_shared<State>();
  p.state_->done = true;
  p.state_->reply = std::move(reply);
  p.state_->complete_us = complete_us;
  return p;
}

// The synchronous bridge: the round trip already ran (and charged the
// caller's clock), so the handle completes "now" and wait() is a clock
// no-op. Keeps call_async usable against any transport.
PendingReply Transport::call_async(const Envelope& env) {
  auto reply = call(env);
  auto* clock = sim::VirtualClock::current();
  return PendingReply::ready(std::move(reply),
                             clock != nullptr ? clock->now_us() : 0);
}

// ---------------------------------------------------------------------------
// InlineTransport

InlineTransport::InlineTransport(Router& router) : router_(router) {}

double InlineTransport::contention_us(const Envelope& env,
                                      std::size_t wire_bytes, bool reserve) {
  const auto& m = router_.model();
  const sim::Topology& topo = router_.topology();
  const NodeId a = router_.node_of(env.src);
  const NodeId b = router_.node_of(env.dst);
  // Occupancy is charged once per message, at the rate of the top stage
  // crossed — the serialization bottleneck — not per segment, so all-inherit
  // topologies of any depth match the single-scalar model bit-for-bit.
  double extra = topo.message_occupancy_us(m, wire_bytes, a, b);

  // Fast path: no traversed stage charges contention — skip the window map
  // (and its lock) entirely, keeping the default-knob hot path lock-free.
  bool contended = false;
  topo.for_each_path_segment(a, b, [&](std::uint64_t seg) {
    if (topo.stage_link_contention_us(m, sim::Topology::segment_stage(seg)) >
        0)
      contended = true;
  });
  if (!contended) return extra;

  auto* clock = sim::VirtualClock::current();
  const double now = clock != nullptr ? clock->now_us() : 0;
  // The message reaches segment i of its path only after queueing at the
  // segments before it: `t` is its local modeled time, advanced past each
  // wait, so an upstream queue delays — and can avoid — a downstream one.
  double t = now;
  std::lock_guard<std::mutex> lk(link_mutex_);
  topo.for_each_path_segment(a, b, [&](std::uint64_t seg) {
    const std::uint32_t stage = sim::Topology::segment_stage(seg);
    const double hold = topo.stage_link_contention_us(m, stage);
    if (hold <= 0) return; // this tier does not model queueing
    LinkWindow& w = link_windows_[seg];
    if (t >= w.end) {
      // Idle segment at this modeled time: a fresh busy period.
      if (reserve) {
        w.start = t;
        w.end = t + hold;
      }
    } else if (t >= w.start) {
      // Inside the current busy period: queue behind it and pay the
      // residual window.
      const double wait = w.end - t;
      extra += wait;
      t = w.end;
      if (reserve) w.end += hold;
      if (stage_waits_.size() <= stage) stage_waits_.resize(stage + 1);
      stage_waits_[stage].waits += 1;
      stage_waits_[stage].wait_us += wait;
      router_.stats(env.src).add(Counter::kContentionStageWaits);
      OMSP_TRACE_EVENT(kContentionWait, env.src, stage, seg, env.trace_flags,
                       wait);
    }
    // t < w.start: this send modeled-precedes the current busy period — it
    // would have transmitted before the period began, so no queueing charge
    // no matter which host thread got here first.
  });
  return extra;
}

std::vector<InlineTransport::StageWait> InlineTransport::stage_waits() const {
  std::lock_guard<std::mutex> lk(link_mutex_);
  return stage_waits_;
}

void InlineTransport::reset_stats() {
  std::lock_guard<std::mutex> lk(link_mutex_);
  stage_waits_.clear();
}

std::vector<std::uint8_t> InlineTransport::call(const Envelope& env) {
  MessageHandler* handler = router_.handler(env.dst);
  OMSP_CHECK_MSG(handler != nullptr, "destination has no handler");

  auto* clock = sim::VirtualClock::current();
  const auto& model = router_.model();

  // Requests reserve the link's modeled occupancy window (so a nested send
  // inside the handler queues behind this one); replies and notifications
  // only pay against open windows.
  const double req_extra =
      contention_us(env, env.payload_size() + kHeaderBytes, /*reserve=*/true);

  const double req_cost = router_.account(env);
  if (clock != nullptr)
    clock->charge(req_cost + req_extra + model.handler_service_us);

  ByteWriter reply;
  ByteReader reader(env.payload);
  handler->handle(env.src, env.type, reader, reply);

  Envelope rep;
  rep.src = env.dst;
  rep.dst = env.src;
  rep.type = env.type;
  rep.payload = {reply.data(), reply.size()};
  rep.trace_flags = env.trace_flags;
  const double reply_cost = router_.account(rep);
  if (clock != nullptr)
    clock->charge(reply_cost + contention_us(rep, reply.size() + kHeaderBytes,
                                             /*reserve=*/false));
  return reply.take();
}

double InlineTransport::notify(const Envelope& env) {
  return router_.account(env) + contention_us(env,
                                              env.payload_size() + kHeaderBytes,
                                              /*reserve=*/false);
}

// ---------------------------------------------------------------------------
// OverlapOptions

namespace {
bool env_flag(const char* name, bool dflt) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return dflt;
  return !(s[0] == '0' && s[1] == '\0');
}
} // namespace

OverlapOptions OverlapOptions::from_env() {
  OverlapOptions o;
  o.enabled = env_flag("OMSP_OVERLAP", false);
  if (o.enabled) {
    o.async_fetch = env_flag("OMSP_OVERLAP_FETCH", true);
    o.prefetch = env_flag("OMSP_OVERLAP_PREFETCH", true);
  }
  return o;
}

// ---------------------------------------------------------------------------
// ZeroCopyOptions

ZeroCopyOptions ZeroCopyOptions::from_env() {
  // OMSP_ZEROCOPY=off|on|<bytes>: "on" (or "1") views every eligible
  // same-node payload; a number sets the XHC-style switchover threshold —
  // payloads below it keep the copy path (small messages gain nothing from
  // holding the backing buffer alive).
  ZeroCopyOptions o;
  const char* s = std::getenv("OMSP_ZEROCOPY");
  if (s == nullptr || *s == '\0') return o;
  const std::string_view v(s);
  if (v == "off" || v == "0") return o;
  if (v == "on" || v == "1") {
    o.enabled = true;
    return o;
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(s, &end, 10);
  if (end != s && *end == '\0') {
    o.enabled = true;
    o.threshold_bytes = static_cast<std::size_t>(n);
  }
  return o;
}

// ---------------------------------------------------------------------------
// QueuedTransport

QueuedTransport::QueuedTransport(std::unique_ptr<Transport> inner,
                                 Router& router)
    : inner_(std::move(inner)), router_(router) {
  OMSP_CHECK(inner_ != nullptr);
  workers_.resize(router_.num_contexts());
  for (std::size_t c = 0; c < workers_.size(); ++c) {
    workers_[c] = std::make_unique<Worker>();
    workers_[c]->thread =
        std::thread([this, c] { worker_main(static_cast<ContextId>(c)); });
  }
}

QueuedTransport::~QueuedTransport() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->cv.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

PendingReply QueuedTransport::call_async(const Envelope& env) {
  return call_async_with_dups(env, {});
}

PendingReply
QueuedTransport::call_async_with_dups(const Envelope& env,
                                      std::span<const DupSpec> dups) {
  // The request is fully accounted at issue time on the caller's board, so
  // counters match the synchronous path exactly; only the reply side moves
  // to the service worker.
  const double req_cost = router_.account(env);
  auto* clock = sim::VirtualClock::current();
  // Serialized sender occupancy (zero with default knobs): issuing requests
  // back-to-back costs wire occupancy per message, not a full RTT. Charged
  // at the top stage the message crosses, like the synchronous path.
  const double occ = router_.topology().message_occupancy_us(
      router_.model(), env.payload_size() + kHeaderBytes,
      router_.node_of(env.src), router_.node_of(env.dst));
  if (clock != nullptr) clock->charge(occ);

  Job job;
  job.src = env.src;
  job.dst = env.dst;
  job.type = env.type;
  job.trace_flags = env.trace_flags;
  job.payload = payload_pool_.acquire();
  job.payload.assign(env.payload.begin(), env.payload.end());
  job.arrive_us = (clock != nullptr ? clock->now_us() : 0) + req_cost;

  PendingReply p;
  p.state_ = std::make_shared<PendingReply::State>();
  job.state = p.state_;

  // Duplicate/retransmission riders: accounted at issue like the primary,
  // serviced on the same channel, replies dropped. Their arrivals are
  // pinned at (primary arrival + delay) — never earlier — so with the
  // consecutive issue seqs assigned under the queue lock below, no rider
  // can be selected ahead of its primary. (Injecting them through a fresh
  // call_async would recompute arrival from the caller's clock and take an
  // unrelated global seq — nothing would pin them behind the primary.)
  std::vector<Job> riders;
  riders.reserve(dups.size());
  for (const DupSpec& d : dups) {
    (void)router_.account(d.env);
    Job r;
    r.src = d.env.src;
    r.dst = d.env.dst;
    r.type = d.env.type;
    r.trace_flags = d.env.trace_flags;
    r.payload = payload_pool_.acquire();
    r.payload.assign(d.env.payload.begin(), d.env.payload.end());
    r.arrive_us = job.arrive_us + std::max(0.0, d.delay_us);
    riders.push_back(std::move(r));
  }

  {
    std::lock_guard<std::mutex> lk(idle_mutex_);
    outstanding_ += 1 + riders.size();
  }
  Worker& w = *workers_[env.dst];
  {
    // One critical section for the whole group, with issue seqs assigned
    // under the lock: the primary and its riders are contiguous in issue
    // order even under concurrent issuers to the same destination.
    std::lock_guard<std::mutex> lk(w.mutex);
    job.seq = issue_seq_.fetch_add(1, std::memory_order_relaxed);
    w.queue.push_back(std::move(job));
    for (Job& r : riders) {
      r.seq = issue_seq_.fetch_add(1, std::memory_order_relaxed);
      w.queue.push_back(std::move(r));
    }
  }
  w.cv.notify_one();
  return p;
}

void QueuedTransport::quiesce() {
  std::unique_lock<std::mutex> lk(idle_mutex_);
  idle_cv_.wait(lk, [&] { return outstanding_ == 0; });
}

void QueuedTransport::worker_main(ContextId dst) {
  // Service events land on a synthetic trace track, not an app rank's.
  trace::Tracer::bind_thread(service_track(dst));

  Worker& w = *workers_[dst];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(w.mutex);
      w.cv.wait(lk, [&] {
        return stop_.load(std::memory_order_acquire) || !w.queue.empty();
      });
      if (w.queue.empty()) return; // stopping and fully drained
      // Earliest modeled arrival first (issue order breaks ties). This only
      // orders handler EXECUTION (content); completion times come from the
      // per-source channels and are order-independent. A source's own jobs
      // are enqueued in program order, so its channel always services them
      // in seq order regardless of what interleaves from other sources.
      auto best = w.queue.begin();
      for (auto it = std::next(best); it != w.queue.end(); ++it)
        if (it->arrive_us < best->arrive_us ||
            (it->arrive_us == best->arrive_us && it->seq < best->seq))
          best = it;
      job = std::move(*best);
      w.queue.erase(best);
    }
    service(dst, job, w);
    {
      std::lock_guard<std::mutex> lk(idle_mutex_);
      --outstanding_;
      if (outstanding_ == 0) idle_cv_.notify_all();
    }
  }
}

void QueuedTransport::service(ContextId dst, Job& job, Worker& w) {
  MessageHandler* handler = router_.handler(dst);
  OMSP_CHECK_MSG(handler != nullptr, "destination has no handler");

  // Per-channel serialization: the request begins when it has both arrived
  // and the same source's previous request here has finished. Cross-source
  // contention is not modeled (see the class comment): this start time is a
  // pure function of the source's deterministic issue sequence.
  const double start =
      std::max(job.arrive_us, w.src_busy_until[job.src]);
  // cpu_scale 0: host time spent in the handler never leaks into virtual
  // time; the clock advances only by modeled service costs (plus whatever
  // the handler itself charges — diff creation on a first request).
  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);
  clk.advance_to(start);
  clk.charge(router_.model().handler_service_us);

  ByteWriter reply;
  ByteReader reader(std::span<const std::uint8_t>(job.payload.data(), job.payload.size()));
  handler->handle(job.src, job.type, reader, reply);
  payload_pool_.release(std::move(job.payload));

  Envelope rep;
  rep.src = dst;
  rep.dst = job.src;
  rep.type = job.type;
  rep.payload = {reply.data(), reply.size()};
  rep.trace_flags = job.trace_flags;
  const double reply_cost = router_.account(rep);
  w.src_busy_until[job.src] = clk.now_us();
  const double complete = clk.now_us() + reply_cost;

  if (job.state != nullptr) {
    std::lock_guard<std::mutex> lk(job.state->mutex);
    job.state->reply = reply.take();
    job.state->complete_us = complete;
    job.state->done = true;
    job.state->cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// PerturbOptions

PerturbOptions PerturbOptions::from_env() {
  PerturbOptions o;
  if (const char* s = std::getenv("OMSP_PERTURB_SEED"); s != nullptr && *s) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && v != 0) {
      o.enabled = true;
      o.seed = v;
    }
  }
  if (const char* s = std::getenv("OMSP_LOSS_PROB"); s != nullptr && *s) {
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end != s && v > 0) {
      if (!o.enabled) {
        // Loss requested on its own: inject ONLY loss, so lossy runs are
        // perturbed-run comparable and the knobs stay orthogonal.
        o.enabled = true;
        o.jitter_max_us = 0;
        o.duplicate_prob = 0;
        o.reorder_prob = 0;
      }
      o.loss_prob = v < 1.0 ? v : 0.95; // cap: p=1 can never deliver
      // Env-driven lossy sweeps run the entire suite, so scale the retry
      // cap to the requested rate: an attempt fails with q = 1-(1-p)^2
      // (request or reply lost); pick the cap that leaves a per-exchange
      // exhaustion residual of q^(cap+1) <= 1e-12. Explicit Config users
      // keep whatever cap they set.
      const double q =
          1.0 - (1.0 - o.loss_prob) * (1.0 - o.loss_prob);
      const double need = std::ceil(-12.0 / std::log10(q));
      o.max_retries = std::clamp(static_cast<std::uint32_t>(need), 8u, 64u);
    }
  }
  return o;
}

// ---------------------------------------------------------------------------
// PerturbingTransport

PerturbingTransport::PerturbingTransport(std::unique_ptr<Transport> inner,
                                         Router& router, PerturbOptions opts)
    : inner_(std::move(inner)), router_(router), opts_(opts), rng_(opts.seed),
      loss_base_(opts.seed ^ 0x6c6f737379ULL) {}

PerturbingTransport::Draw PerturbingTransport::draw(bool one_way) {
  std::lock_guard lock(mutex_);
  Draw d;
  if (opts_.jitter_max_us > 0)
    d.jitter_us = rng_.next_double(0.0, opts_.jitter_max_us);
  d.duplicate = rng_.next_bool(opts_.duplicate_prob);
  if (one_way && rng_.next_bool(opts_.reorder_prob)) {
    d.reorder = true;
    d.jitter_us += rng_.next_double(0.0, opts_.reorder_max_us);
  }
  stats_.jitter_us += d.jitter_us;
  if (d.duplicate) ++stats_.duplicates;
  if (d.reorder) ++stats_.reorders;
  return d;
}

PerturbingTransport::Channel& PerturbingTransport::channel(ContextId src,
                                                           ContextId dst) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(src) * router_.num_contexts() + dst;
  auto it = channels_.find(key);
  if (it == channels_.end())
    it = channels_.emplace(key, Channel(loss_base_.split(key))).first;
  return it->second;
}

bool PerturbingTransport::draw_loss(Channel& ch, std::uint32_t copy) {
  // drop_first is fully deterministic and consumes no randomness: the first
  // copy of every exchange in each direction is dropped, retransmissions go
  // through — every exchange exercises the whole retransmit path.
  if (opts_.drop_first) return copy == 0;
  return ch.rng.next_bool(opts_.loss_prob);
}

PerturbingTransport::LossSchedule
PerturbingTransport::draw_roundtrip(ContextId src, ContextId dst,
                                    std::uint32_t* seq) {
  std::lock_guard lock(mutex_);
  Channel& ch = channel(src, dst);
  *seq = ch.send_seq++;
  LossSchedule s;
  std::uint32_t fwd = 0; // forward (request/notice) copies drawn so far
  std::uint32_t bwd = 0; // backward (reply/ack) copies drawn so far
  for (std::uint32_t a = 0; a <= opts_.max_retries; ++a) {
    ++s.attempts;
    if (draw_loss(ch, fwd++)) {
      ++s.req_lost;
    } else if (draw_loss(ch, bwd++)) {
      ++s.reply_lost;
    } else {
      s.delivered = true;
      break;
    }
    s.penalty_us += router_.model().retransmit_timeout_us(a);
  }
  return s;
}

std::vector<std::uint8_t> PerturbingTransport::call(const Envelope& env) {
  const Draw d = draw(/*one_way=*/false);

  Envelope e = env;
  std::uint32_t attempt = 0; // copies of the request sent so far
  if (opts_.lossy()) {
    std::uint32_t seq = 0;
    const LossSchedule sched = draw_roundtrip(env.src, env.dst, &seq);
    e.seq = seq;
    e.wire_extra = kSeqAckBytes;
    auto* clock = sim::VirtualClock::current();
    const auto& model = router_.model();

    // Copies whose REQUEST was dropped in flight: the wire send is
    // accounted (it left the sender), the handler never runs, the caller
    // blocks out the modeled RTO and retransmits.
    for (std::uint32_t i = 0; i < sched.req_lost; ++i, ++attempt) {
      Envelope lost = e;
      if (attempt > 0)
        lost.trace_flags = static_cast<std::uint16_t>(lost.trace_flags |
                                                      trace::kFlagPerturbed);
      (void)inner_->notify(lost);
      router_.account_loss(lost);
      const double rto = model.retransmit_timeout_us(attempt);
      router_.account_retransmit(lost, attempt + 1, rto);
      if (clock != nullptr) clock->charge(rto);
      std::lock_guard lock(mutex_);
      ++stats_.losses;
      ++stats_.retransmits;
      stats_.rto_wait_us += rto;
    }
    // Copies that were delivered but whose REPLY was dropped: the handler
    // runs (and will run AGAIN on the retransmission — the idempotence
    // contract, exercised by genuine loss), the reply evaporates, the
    // caller times out and retransmits.
    for (std::uint32_t i = 0; i < sched.reply_lost; ++i, ++attempt) {
      Envelope dup = e;
      if (attempt > 0)
        dup.trace_flags = static_cast<std::uint16_t>(dup.trace_flags |
                                                     trace::kFlagPerturbed);
      auto r = inner_->call(dup); // request + reply accounted; reply dropped
      Envelope lost_reply;
      lost_reply.src = e.dst;
      lost_reply.dst = e.src;
      lost_reply.type = e.type;
      lost_reply.accounted_bytes = r.size();
      router_.account_loss(lost_reply);
      const double rto = model.retransmit_timeout_us(attempt);
      router_.account_retransmit(dup, attempt + 1, rto);
      if (clock != nullptr) clock->charge(rto);
      std::lock_guard lock(mutex_);
      ++stats_.losses;
      ++stats_.retransmits;
      stats_.rto_wait_us += rto;
    }
    if (!sched.delivered)
      throw TransportError(env.src, env.dst, env.type, sched.attempts);
    if (attempt > 0)
      e.trace_flags = static_cast<std::uint16_t>(e.trace_flags |
                                                 trace::kFlagPerturbed);
  }

  auto reply = inner_->call(e);
  if (auto* clock = sim::VirtualClock::current();
      clock != nullptr && d.jitter_us > 0)
    clock->charge(d.jitter_us);
  if (d.duplicate) {
    // Retransmission: the destination handler runs again on the same request
    // and must converge (idempotence contract); the first reply stands.
    Envelope dup = e;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    (void)inner_->call(dup);
  }
  return reply;
}

PendingReply PerturbingTransport::call_async(const Envelope& env) {
  const Draw d = draw(/*one_way=*/false);

  Envelope e = env;
  std::vector<QueuedTransport::DupSpec> riders;
  double penalty = 0; // modeled RTO latency added to the reply's completion
  if (opts_.lossy()) {
    std::uint32_t seq = 0;
    const LossSchedule sched = draw_roundtrip(env.src, env.dst, &seq);
    e.seq = seq;
    e.wire_extra = kSeqAckBytes;
    const auto& model = router_.model();
    std::uint32_t attempt = 0;

    // Request copies dropped in flight: accounted on the caller now; the
    // retransmit timer runs concurrently with the caller's compute, so the
    // RTO is folded into the reply's completion time, not charged here.
    for (std::uint32_t i = 0; i < sched.req_lost; ++i, ++attempt) {
      Envelope lost = e;
      if (attempt > 0)
        lost.trace_flags = static_cast<std::uint16_t>(lost.trace_flags |
                                                      trace::kFlagPerturbed);
      (void)inner_->notify(lost);
      router_.account_loss(lost);
      const double rto = model.retransmit_timeout_us(attempt);
      router_.account_retransmit(lost, attempt + 1, rto);
      penalty += rto;
      std::lock_guard lock(mutex_);
      ++stats_.losses;
      ++stats_.retransmits;
      stats_.rto_wait_us += rto;
    }
    if (!sched.delivered)
      throw TransportError(env.src, env.dst, env.type, sched.attempts);
    if (attempt > 0)
      e.trace_flags = static_cast<std::uint16_t>(e.trace_flags |
                                                 trace::kFlagPerturbed);
    // Reply copies dropped in flight: each retransmitted request is
    // re-serviced through the destination's idempotent handler as a rider
    // behind the primary, arriving a cumulative RTO later — the modeled
    // retransmit timer. quiesce() drains these pending retransmissions.
    for (std::uint32_t i = 0; i < sched.reply_lost; ++i, ++attempt) {
      Envelope lost_reply;
      lost_reply.src = e.dst;
      lost_reply.dst = e.src;
      lost_reply.type = e.type;
      router_.account_loss(lost_reply);
      const double rto = model.retransmit_timeout_us(attempt);
      Envelope dup = e;
      dup.trace_flags = static_cast<std::uint16_t>(dup.trace_flags |
                                                   trace::kFlagPerturbed);
      router_.account_retransmit(dup, attempt + 1, rto);
      penalty += rto;
      riders.push_back({dup, penalty});
      std::lock_guard lock(mutex_);
      ++stats_.losses;
      ++stats_.retransmits;
      stats_.rto_wait_us += rto;
    }
  }
  if (d.duplicate) {
    Envelope dup = e;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    // Injected duplicate: enqueued directly behind the primary on the same
    // channel (delay 0) — serviced and dropped; the primary's reply stands.
    riders.push_back({dup, 0.0});
  }

  PendingReply p;
  if (auto* queued = dynamic_cast<QueuedTransport*>(inner_.get());
      queued != nullptr && !riders.empty()) {
    p = queued->call_async_with_dups(e, riders);
  } else {
    p = inner_->call_async(e);
    // Synchronous bridge (no per-channel queue to order against): the
    // primary's round trip completed before each rider is issued, so
    // service order is inherently primary-first.
    for (const auto& r : riders) (void)inner_->call_async(r.env);
  }
  // Jitter (and the modeled retransmission latency) delays the reply's
  // delivery at the requester; the destination's service clock is
  // unaffected, mirroring the synchronous path.
  p.post_delay_us_ += d.jitter_us + penalty;
  return p;
}

Delivery PerturbingTransport::notify_ex(const Envelope& env) {
  const Draw d = draw(/*one_way=*/true);
  Delivery out;

  if (!opts_.lossy()) {
    out.cost_us = inner_->notify(env) + d.jitter_us;
    if (d.duplicate) {
      Envelope dup = env;
      dup.trace_flags =
          static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
      out.duplicate = true;
      out.dup_cost_us = inner_->notify(dup);
    }
    return out;
  }

  // Reliable notice channel: seq-stamped copies, explicit kAck confirmation,
  // duplicate suppression by (channel, seq) on the receive side.
  std::uint32_t seq = 0;
  const LossSchedule sched = draw_roundtrip(env.src, env.dst, &seq);
  Envelope e = env;
  e.seq = seq;
  e.wire_extra = kSeqAckBytes;
  const auto& model = router_.model();
  std::uint32_t attempt = 0;

  // Notice copies dropped in flight: the content arrives only once a copy
  // gets through, so each loss delays delivery by the sender's RTO.
  for (std::uint32_t i = 0; i < sched.req_lost; ++i, ++attempt) {
    Envelope lost = e;
    if (attempt > 0)
      lost.trace_flags = static_cast<std::uint16_t>(lost.trace_flags |
                                                    trace::kFlagPerturbed);
    (void)inner_->notify(lost);
    router_.account_loss(lost);
    const double rto = model.retransmit_timeout_us(attempt);
    router_.account_retransmit(lost, attempt + 1, rto);
    out.cost_us += rto;
    std::lock_guard lock(mutex_);
    ++stats_.losses;
    ++stats_.retransmits;
    stats_.rto_wait_us += rto;
  }
  if (!sched.delivered)
    throw TransportError(env.src, env.dst, env.type, sched.attempts);

  // The copy that got through delivers the content.
  Envelope fin = e;
  if (attempt > 0)
    fin.trace_flags = static_cast<std::uint16_t>(fin.trace_flags |
                                                 trace::kFlagPerturbed);
  out.cost_us += inner_->notify(fin) + d.jitter_us;
  {
    std::lock_guard lock(mutex_);
    Channel& ch = channel(env.src, env.dst);
    if (seq + 1 > ch.recv_applied) ch.recv_applied = seq + 1;
  }

  auto send_ack = [&]() -> Envelope {
    Envelope ack = Envelope::notice(e.dst, e.src, MsgType::kAck, 0);
    ack.ack = seq;
    ack.wire_extra = kSeqAckBytes;
    (void)inner_->notify(ack);
    router_.account_ack(e.dst, e, seq);
    std::lock_guard lock(mutex_);
    ++stats_.acks;
    return ack;
  };

  // Ack rounds that were lost: the sender's RTO expires and it retransmits
  // the notice; the receiver sees seq <= its cumulative cursor, suppresses
  // the duplicate (the content is NOT re-applied) and re-acks.
  for (std::uint32_t i = 0; i < sched.reply_lost; ++i, ++attempt) {
    const Envelope ack = send_ack();
    router_.account_loss(ack);
    const double rto = model.retransmit_timeout_us(attempt);
    Envelope dup = e;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    router_.account_retransmit(dup, attempt + 1, rto);
    out.duplicate = true;
    out.dup_cost_us += inner_->notify(dup);
    std::lock_guard lock(mutex_);
    ++stats_.losses;
    ++stats_.retransmits;
    ++stats_.dups_suppressed;
    stats_.rto_wait_us += rto;
  }
  (void)send_ack(); // the ack that finally confirms delivery

  if (d.duplicate) {
    Envelope dup = fin;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    out.duplicate = true;
    out.dup_cost_us += inner_->notify(dup);
    std::lock_guard lock(mutex_);
    ++stats_.dups_suppressed; // its seq is already applied on the channel
  }
  return out;
}

double PerturbingTransport::notify(const Envelope& env) {
  const Delivery d = notify_ex(env);
  return d.cost_us + d.dup_cost_us;
}

PerturbStats PerturbingTransport::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void PerturbingTransport::reset_stats() {
  {
    std::lock_guard lock(mutex_);
    stats_ = PerturbStats{};
  }
  inner_->reset_stats();
}

} // namespace omsp::net
