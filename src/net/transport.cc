#include "net/transport.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "net/router.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/event.hpp"

namespace omsp::net {

// ---------------------------------------------------------------------------
// InlineTransport

InlineTransport::InlineTransport(Router& router)
    : router_(router), nnodes_(router.num_nodes()) {
  if (nnodes_ > 0) {
    link_inflight_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        static_cast<std::size_t>(nnodes_) * nnodes_);
  }
}

double InlineTransport::contention_us(const Envelope& env,
                                      std::size_t wire_bytes) {
  const auto& m = router_.model();
  double extra = m.occupancy_us(wire_bytes);
  if (m.link_contention_us > 0 && link_inflight_ != nullptr) {
    const std::size_t link =
        static_cast<std::size_t>(router_.node_of(env.src)) * nnodes_ +
        router_.node_of(env.dst);
    // Messages already in flight on this link queue ahead of us.
    extra += m.link_contention_us *
             link_inflight_[link].load(std::memory_order_relaxed);
  }
  return extra;
}

std::vector<std::uint8_t> InlineTransport::call(const Envelope& env) {
  MessageHandler* handler = router_.handler(env.dst);
  OMSP_CHECK_MSG(handler != nullptr, "destination has no handler");

  auto* clock = sim::VirtualClock::current();
  const auto& model = router_.model();

  const bool track = model.link_contention_us > 0 && link_inflight_ != nullptr;
  const std::size_t link =
      track ? static_cast<std::size_t>(router_.node_of(env.src)) * nnodes_ +
                  router_.node_of(env.dst)
            : 0;
  const double req_extra =
      contention_us(env, env.payload_size() + kHeaderBytes);
  if (track) link_inflight_[link].fetch_add(1, std::memory_order_relaxed);

  const double req_cost = router_.account(env);
  if (clock != nullptr)
    clock->charge(req_cost + req_extra + model.handler_service_us);

  ByteWriter reply;
  ByteReader reader(env.payload);
  handler->handle(env.src, env.type, reader, reply);

  if (track) link_inflight_[link].fetch_sub(1, std::memory_order_relaxed);

  Envelope rep;
  rep.src = env.dst;
  rep.dst = env.src;
  rep.type = env.type;
  rep.payload = {reply.data(), reply.size()};
  rep.trace_flags = env.trace_flags;
  const double reply_cost = router_.account(rep);
  if (clock != nullptr)
    clock->charge(reply_cost + contention_us(rep, reply.size() + kHeaderBytes));
  return reply.take();
}

double InlineTransport::notify(const Envelope& env) {
  return router_.account(env) +
         contention_us(env, env.payload_size() + kHeaderBytes);
}

// ---------------------------------------------------------------------------
// PerturbOptions

PerturbOptions PerturbOptions::from_env() {
  PerturbOptions o;
  if (const char* s = std::getenv("OMSP_PERTURB_SEED"); s != nullptr && *s) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && v != 0) {
      o.enabled = true;
      o.seed = v;
    }
  }
  return o;
}

// ---------------------------------------------------------------------------
// PerturbingTransport

PerturbingTransport::PerturbingTransport(std::unique_ptr<Transport> inner,
                                         PerturbOptions opts)
    : inner_(std::move(inner)), opts_(opts), rng_(opts.seed) {}

PerturbingTransport::Draw PerturbingTransport::draw(bool one_way) {
  std::lock_guard lock(mutex_);
  Draw d;
  if (opts_.jitter_max_us > 0)
    d.jitter_us = rng_.next_double(0.0, opts_.jitter_max_us);
  d.duplicate = rng_.next_bool(opts_.duplicate_prob);
  if (one_way && rng_.next_bool(opts_.reorder_prob)) {
    d.reorder = true;
    d.jitter_us += rng_.next_double(0.0, opts_.reorder_max_us);
  }
  stats_.jitter_us += d.jitter_us;
  if (d.duplicate) ++stats_.duplicates;
  if (d.reorder) ++stats_.reorders;
  return d;
}

std::vector<std::uint8_t> PerturbingTransport::call(const Envelope& env) {
  const Draw d = draw(/*one_way=*/false);
  auto reply = inner_->call(env);
  if (auto* clock = sim::VirtualClock::current();
      clock != nullptr && d.jitter_us > 0)
    clock->charge(d.jitter_us);
  if (d.duplicate) {
    // Retransmission: the destination handler runs again on the same request
    // and must converge (idempotence contract); the first reply stands.
    Envelope dup = env;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    (void)inner_->call(dup);
  }
  return reply;
}

double PerturbingTransport::notify(const Envelope& env) {
  const Draw d = draw(/*one_way=*/true);
  double cost = inner_->notify(env) + d.jitter_us;
  if (d.duplicate) {
    Envelope dup = env;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    cost += inner_->notify(dup);
  }
  return cost;
}

PerturbStats PerturbingTransport::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

} // namespace omsp::net
