#include "net/transport.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "net/router.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/event.hpp"
#include "trace/tracer.hpp"

namespace omsp::net {

// ---------------------------------------------------------------------------
// PendingReply

std::vector<std::uint8_t> PendingReply::wait() {
  double complete = 0;
  auto reply = wait_at(&complete);
  if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
    clock->advance_to(complete);
  return reply;
}

std::vector<std::uint8_t> PendingReply::wait_at(double* complete_us) {
  OMSP_CHECK_MSG(state_ != nullptr, "wait on an empty PendingReply");
  std::unique_lock<std::mutex> lk(state_->mutex);
  state_->cv.wait(lk, [&] { return state_->done; });
  if (complete_us != nullptr)
    *complete_us = state_->complete_us + post_delay_us_;
  return std::move(state_->reply);
}

PendingReply PendingReply::ready(std::vector<std::uint8_t> reply,
                                 double complete_us) {
  PendingReply p;
  p.state_ = std::make_shared<State>();
  p.state_->done = true;
  p.state_->reply = std::move(reply);
  p.state_->complete_us = complete_us;
  return p;
}

// The synchronous bridge: the round trip already ran (and charged the
// caller's clock), so the handle completes "now" and wait() is a clock
// no-op. Keeps call_async usable against any transport.
PendingReply Transport::call_async(const Envelope& env) {
  auto reply = call(env);
  auto* clock = sim::VirtualClock::current();
  return PendingReply::ready(std::move(reply),
                             clock != nullptr ? clock->now_us() : 0);
}

// ---------------------------------------------------------------------------
// InlineTransport

InlineTransport::InlineTransport(Router& router)
    : router_(router), nnodes_(router.num_nodes()) {
  if (nnodes_ > 0) {
    link_inflight_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        static_cast<std::size_t>(nnodes_) * nnodes_);
  }
}

double InlineTransport::contention_us(const Envelope& env,
                                      std::size_t wire_bytes) {
  const auto& m = router_.model();
  double extra = m.occupancy_us(wire_bytes);
  if (m.link_contention_us > 0 && link_inflight_ != nullptr) {
    const std::size_t link =
        static_cast<std::size_t>(router_.node_of(env.src)) * nnodes_ +
        router_.node_of(env.dst);
    // Messages already in flight on this link queue ahead of us.
    extra += m.link_contention_us *
             link_inflight_[link].load(std::memory_order_relaxed);
  }
  return extra;
}

std::vector<std::uint8_t> InlineTransport::call(const Envelope& env) {
  MessageHandler* handler = router_.handler(env.dst);
  OMSP_CHECK_MSG(handler != nullptr, "destination has no handler");

  auto* clock = sim::VirtualClock::current();
  const auto& model = router_.model();

  const bool track = model.link_contention_us > 0 && link_inflight_ != nullptr;
  const std::size_t link =
      track ? static_cast<std::size_t>(router_.node_of(env.src)) * nnodes_ +
                  router_.node_of(env.dst)
            : 0;
  const double req_extra =
      contention_us(env, env.payload_size() + kHeaderBytes);
  if (track) link_inflight_[link].fetch_add(1, std::memory_order_relaxed);

  const double req_cost = router_.account(env);
  if (clock != nullptr)
    clock->charge(req_cost + req_extra + model.handler_service_us);

  ByteWriter reply;
  ByteReader reader(env.payload);
  handler->handle(env.src, env.type, reader, reply);

  if (track) link_inflight_[link].fetch_sub(1, std::memory_order_relaxed);

  Envelope rep;
  rep.src = env.dst;
  rep.dst = env.src;
  rep.type = env.type;
  rep.payload = {reply.data(), reply.size()};
  rep.trace_flags = env.trace_flags;
  const double reply_cost = router_.account(rep);
  if (clock != nullptr)
    clock->charge(reply_cost + contention_us(rep, reply.size() + kHeaderBytes));
  return reply.take();
}

double InlineTransport::notify(const Envelope& env) {
  return router_.account(env) +
         contention_us(env, env.payload_size() + kHeaderBytes);
}

// ---------------------------------------------------------------------------
// OverlapOptions

namespace {
bool env_flag(const char* name, bool dflt) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return dflt;
  return !(s[0] == '0' && s[1] == '\0');
}
} // namespace

OverlapOptions OverlapOptions::from_env() {
  OverlapOptions o;
  o.enabled = env_flag("OMSP_OVERLAP", false);
  if (o.enabled) {
    o.async_fetch = env_flag("OMSP_OVERLAP_FETCH", true);
    o.prefetch = env_flag("OMSP_OVERLAP_PREFETCH", true);
  }
  return o;
}

// ---------------------------------------------------------------------------
// QueuedTransport

QueuedTransport::QueuedTransport(std::unique_ptr<Transport> inner,
                                 Router& router)
    : inner_(std::move(inner)), router_(router) {
  OMSP_CHECK(inner_ != nullptr);
  workers_.resize(router_.num_contexts());
  for (std::size_t c = 0; c < workers_.size(); ++c) {
    workers_[c] = std::make_unique<Worker>();
    workers_[c]->thread =
        std::thread([this, c] { worker_main(static_cast<ContextId>(c)); });
  }
}

QueuedTransport::~QueuedTransport() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->cv.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

PendingReply QueuedTransport::call_async(const Envelope& env) {
  // The request is fully accounted at issue time on the caller's board, so
  // counters match the synchronous path exactly; only the reply side moves
  // to the service worker.
  const double req_cost = router_.account(env);
  auto* clock = sim::VirtualClock::current();
  // Serialized sender occupancy (zero with default knobs): issuing requests
  // back-to-back costs wire occupancy per message, not a full RTT.
  const double occ =
      router_.model().occupancy_us(env.payload_size() + kHeaderBytes);
  if (clock != nullptr) clock->charge(occ);

  Job job;
  job.src = env.src;
  job.dst = env.dst;
  job.type = env.type;
  job.trace_flags = env.trace_flags;
  job.payload.assign(env.payload.begin(), env.payload.end());
  job.arrive_us = (clock != nullptr ? clock->now_us() : 0) + req_cost;
  job.seq = issue_seq_.fetch_add(1, std::memory_order_relaxed);

  PendingReply p;
  p.state_ = std::make_shared<PendingReply::State>();
  job.state = p.state_;

  {
    std::lock_guard<std::mutex> lk(idle_mutex_);
    ++outstanding_;
  }
  Worker& w = *workers_[env.dst];
  {
    std::lock_guard<std::mutex> lk(w.mutex);
    w.queue.push_back(std::move(job));
  }
  w.cv.notify_one();
  return p;
}

void QueuedTransport::quiesce() {
  std::unique_lock<std::mutex> lk(idle_mutex_);
  idle_cv_.wait(lk, [&] { return outstanding_ == 0; });
}

void QueuedTransport::worker_main(ContextId dst) {
  // Service events land on a synthetic trace track, not an app rank's.
  trace::Tracer::bind_thread(service_track(dst));

  Worker& w = *workers_[dst];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(w.mutex);
      w.cv.wait(lk, [&] {
        return stop_.load(std::memory_order_acquire) || !w.queue.empty();
      });
      if (w.queue.empty()) return; // stopping and fully drained
      // Earliest modeled arrival first (issue order breaks ties). This only
      // orders handler EXECUTION (content); completion times come from the
      // per-source channels and are order-independent. A source's own jobs
      // are enqueued in program order, so its channel always services them
      // in seq order regardless of what interleaves from other sources.
      auto best = w.queue.begin();
      for (auto it = std::next(best); it != w.queue.end(); ++it)
        if (it->arrive_us < best->arrive_us ||
            (it->arrive_us == best->arrive_us && it->seq < best->seq))
          best = it;
      job = std::move(*best);
      w.queue.erase(best);
    }
    service(dst, job, w);
    {
      std::lock_guard<std::mutex> lk(idle_mutex_);
      --outstanding_;
      if (outstanding_ == 0) idle_cv_.notify_all();
    }
  }
}

void QueuedTransport::service(ContextId dst, Job& job, Worker& w) {
  MessageHandler* handler = router_.handler(dst);
  OMSP_CHECK_MSG(handler != nullptr, "destination has no handler");

  // Per-channel serialization: the request begins when it has both arrived
  // and the same source's previous request here has finished. Cross-source
  // contention is not modeled (see the class comment): this start time is a
  // pure function of the source's deterministic issue sequence.
  const double start =
      std::max(job.arrive_us, w.src_busy_until[job.src]);
  // cpu_scale 0: host time spent in the handler never leaks into virtual
  // time; the clock advances only by modeled service costs (plus whatever
  // the handler itself charges — diff creation on a first request).
  sim::VirtualClock clk(0.0);
  sim::VirtualClock::Binder bind(&clk);
  clk.advance_to(start);
  clk.charge(router_.model().handler_service_us);

  ByteWriter reply;
  ByteReader reader(std::span<const std::uint8_t>(job.payload.data(), job.payload.size()));
  handler->handle(job.src, job.type, reader, reply);

  Envelope rep;
  rep.src = dst;
  rep.dst = job.src;
  rep.type = job.type;
  rep.payload = {reply.data(), reply.size()};
  rep.trace_flags = job.trace_flags;
  const double reply_cost = router_.account(rep);
  w.src_busy_until[job.src] = clk.now_us();
  const double complete = clk.now_us() + reply_cost;

  if (job.state != nullptr) {
    std::lock_guard<std::mutex> lk(job.state->mutex);
    job.state->reply = reply.take();
    job.state->complete_us = complete;
    job.state->done = true;
    job.state->cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// PerturbOptions

PerturbOptions PerturbOptions::from_env() {
  PerturbOptions o;
  if (const char* s = std::getenv("OMSP_PERTURB_SEED"); s != nullptr && *s) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && v != 0) {
      o.enabled = true;
      o.seed = v;
    }
  }
  return o;
}

// ---------------------------------------------------------------------------
// PerturbingTransport

PerturbingTransport::PerturbingTransport(std::unique_ptr<Transport> inner,
                                         PerturbOptions opts)
    : inner_(std::move(inner)), opts_(opts), rng_(opts.seed) {}

PerturbingTransport::Draw PerturbingTransport::draw(bool one_way) {
  std::lock_guard lock(mutex_);
  Draw d;
  if (opts_.jitter_max_us > 0)
    d.jitter_us = rng_.next_double(0.0, opts_.jitter_max_us);
  d.duplicate = rng_.next_bool(opts_.duplicate_prob);
  if (one_way && rng_.next_bool(opts_.reorder_prob)) {
    d.reorder = true;
    d.jitter_us += rng_.next_double(0.0, opts_.reorder_max_us);
  }
  stats_.jitter_us += d.jitter_us;
  if (d.duplicate) ++stats_.duplicates;
  if (d.reorder) ++stats_.reorders;
  return d;
}

std::vector<std::uint8_t> PerturbingTransport::call(const Envelope& env) {
  const Draw d = draw(/*one_way=*/false);
  auto reply = inner_->call(env);
  if (auto* clock = sim::VirtualClock::current();
      clock != nullptr && d.jitter_us > 0)
    clock->charge(d.jitter_us);
  if (d.duplicate) {
    // Retransmission: the destination handler runs again on the same request
    // and must converge (idempotence contract); the first reply stands.
    Envelope dup = env;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    (void)inner_->call(dup);
  }
  return reply;
}

PendingReply PerturbingTransport::call_async(const Envelope& env) {
  const Draw d = draw(/*one_way=*/false);
  PendingReply p = inner_->call_async(env);
  // Jitter delays the reply's delivery at the requester; the destination's
  // service clock is unaffected, mirroring the synchronous path.
  p.post_delay_us_ += d.jitter_us;
  if (d.duplicate) {
    Envelope dup = env;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    (void)inner_->call_async(dup); // serviced and dropped; first reply stands
  }
  return p;
}

Delivery PerturbingTransport::notify_ex(const Envelope& env) {
  const Draw d = draw(/*one_way=*/true);
  Delivery out;
  out.cost_us = inner_->notify(env) + d.jitter_us;
  if (d.duplicate) {
    Envelope dup = env;
    dup.trace_flags =
        static_cast<std::uint16_t>(dup.trace_flags | trace::kFlagPerturbed);
    out.duplicate = true;
    out.dup_cost_us = inner_->notify(dup);
  }
  return out;
}

double PerturbingTransport::notify(const Envelope& env) {
  const Delivery d = notify_ex(env);
  return d.cost_us + d.dup_cost_us;
}

PerturbStats PerturbingTransport::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

} // namespace omsp::net
