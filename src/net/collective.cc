#include "net/collective.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "common/check.hpp"

namespace omsp::coll {

namespace {

// Strict decimal parse for the tree:<bytes> suffix — rejects empty strings,
// non-digits, and absurd values, matching Topology::parse_dims' posture.
bool parse_bytes(std::string_view text, std::size_t* out) {
  if (text.empty() || text.size() > 10) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  if (value > (std::size_t{1} << 30)) return false;
  *out = value;
  return true;
}

} // namespace

std::optional<Options> Options::parse(std::string_view spec) {
  Options opts;
  if (spec == "central") return opts;
  if (spec == "tree") {
    opts.tree = true;
    return opts;
  }
  constexpr std::string_view kTreePrefix = "tree:";
  if (spec.substr(0, kTreePrefix.size()) == kTreePrefix) {
    std::size_t bytes = 0;
    if (!parse_bytes(spec.substr(kTreePrefix.size()), &bytes)) {
      return std::nullopt;
    }
    opts.tree = true;
    opts.flat_max_bytes = bytes;
    return opts;
  }
  return std::nullopt;
}

Options Options::from_env() {
  const char* env = std::getenv("OMSP_COLL");
  if (env == nullptr || *env == '\0') return Options{};
  auto opts = parse(env);
  OMSP_CHECK_MSG(opts.has_value(),
                 "malformed OMSP_COLL spec (want central | tree | "
                 "tree:<flat_max_bytes>)");
  return *opts;
}

Schedule Schedule::flat(std::uint32_t n) {
  OMSP_CHECK(n >= 1);
  Schedule s;
  s.tree_ = false;
  s.depth_ = n > 1 ? 1 : 0;
  s.parent_.assign(n, -1);
  s.level_.assign(n, 0);
  s.children_.resize(n);
  s.children_[0].reserve(n - 1);
  for (std::uint32_t m = 1; m < n; ++m) {
    s.parent_[m] = 0;
    s.children_[0].push_back(m);
  }
  return s;
}

Schedule Schedule::tree(const sim::Topology& topo, std::uint32_t n,
                        const std::function<NodeId(std::uint32_t)>& node_of) {
  OMSP_CHECK(n >= 1);
  const std::uint32_t num_stages = topo.num_stages();

  // Prefix products of the network-stage fanouts: nodes with equal
  // node / group_size[L] share a stage-L group (level 0: the node itself,
  // group_size 1). Mirrors the private table Topology::top_stage uses.
  std::vector<std::uint64_t> group_size(num_stages, 1);
  for (std::uint32_t i = 1; i < num_stages; ++i) {
    group_size[i] = group_size[i - 1] * topo.stage(i).fanout;
  }

  std::vector<NodeId> node(n);
  for (std::uint32_t m = 0; m < n; ++m) {
    node[m] = node_of(m);
    OMSP_CHECK(node[m] < topo.nodes());
  }

  // Leader of a group = lowest member index in it; members are scanned in
  // ascending order so the first index seen per key wins.
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> leader(
      num_stages);
  for (std::uint32_t level = 0; level < num_stages; ++level) {
    for (std::uint32_t m = 0; m < n; ++m) {
      const std::uint64_t key = node[m] / group_size[level];
      leader[level].emplace(key, m);
    }
  }

  Schedule s;
  s.tree_ = true;
  s.parent_.assign(n, -1);
  s.level_.assign(n, 0);
  s.children_.resize(n);
  for (std::uint32_t m = 0; m < n; ++m) {
    // Attach to the leader of the first (cheapest) level where this member
    // is not itself the leader. A member that leads every level up to the
    // top is the global root — the top group spans all nodes, so that is
    // exactly member 0.
    for (std::uint32_t level = 0; level < num_stages; ++level) {
      const std::uint32_t lead = leader[level].at(node[m] / group_size[level]);
      if (lead != m) {
        s.parent_[m] = static_cast<int>(lead);
        s.level_[m] = level;
        s.children_[lead].push_back(m);
        break;
      }
    }
  }
  OMSP_CHECK(s.parent_[0] == -1);

  // Far-first child order: the down pass hands the earliest (least queued)
  // injection slots to the subtrees behind the most expensive edges.
  for (auto& kids : s.children_) {
    std::sort(kids.begin(), kids.end(),
              [&s](std::uint32_t a, std::uint32_t b) {
                if (s.level_[a] != s.level_[b]) return s.level_[a] > s.level_[b];
                return a < b;
              });
  }

  // Depth = max tree edges on any root-to-leaf path. Parent indices are
  // strictly smaller than their children (leaders are lowest-index), so one
  // ascending scan resolves every chain.
  std::vector<std::uint32_t> hops(n, 0);
  for (std::uint32_t m = 1; m < n; ++m) {
    OMSP_CHECK(s.parent_[m] >= 0 &&
               static_cast<std::uint32_t>(s.parent_[m]) < m);
    hops[m] = hops[static_cast<std::uint32_t>(s.parent_[m])] + 1;
    s.depth_ = std::max(s.depth_, hops[m]);
  }
  return s;
}

Schedule Schedule::build(const sim::Topology& topo, std::uint32_t n,
                         std::size_t payload_bytes, const Options& opts,
                         const std::function<NodeId(std::uint32_t)>& node_of) {
  if (!opts.tree || payload_bytes <= opts.flat_max_bytes) return flat(n);
  return tree(topo, n, node_of);
}

std::vector<std::uint32_t> Schedule::up_order() const {
  // Parent indices are strictly smaller than child indices, so descending
  // index order is a valid post-order (all children before their parent).
  std::vector<std::uint32_t> order(size());
  for (std::uint32_t m = 0; m < size(); ++m) order[m] = size() - 1 - m;
  return order;
}

std::vector<std::uint32_t> Schedule::down_order() const {
  // Explicit pre-order so siblings appear in children() (far-first) order —
  // the traversal the departure broadcast models.
  std::vector<std::uint32_t> order;
  order.reserve(size());
  std::vector<std::uint32_t> stack = {0};
  while (!stack.empty()) {
    const std::uint32_t m = stack.back();
    stack.pop_back();
    order.push_back(m);
    const auto& kids = children_[m];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

} // namespace omsp::coll
