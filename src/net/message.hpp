// Central message-type registry and the Envelope — the typed identity of
// every message that crosses a context boundary.
//
// The paper's protocol is defined by its messages (Table 2): diff
// request/reply, whole-page fetch, lock request/forward/grant, barrier
// arrival/departure, fork descriptors and join notices. Before this registry
// existed those identities were scattered: the tmk layer had private
// kMsg* constants, system.cc accounted lock/barrier/fork traffic with ad-hoc
// byte constants and no type at all, and the MPI layer accounted anonymous
// payloads. Here every message type has one enumerator, a printable name
// (used by `omsp-trace summary`/`export`), and its fixed descriptor size —
// the wire bytes a real implementation would spend on the request/notice
// header beyond the per-message framing (kHeaderBytes).
//
// An Envelope names one message instance: source and destination context,
// typed message id, the payload (materialized bytes for request/reply calls,
// or an accounted byte count for notifications whose payload the simulator
// applies by direct invocation), and trace flags OR-ed into the emitted
// `message` trace event (e.g. trace::kFlagPerturbed on injected duplicates).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace omsp::net {

// Per-message fixed framing overhead (src, dst, type, length), counted into
// byte totals the way TreadMarks counts its message headers.
inline constexpr std::size_t kHeaderBytes = 16;

// Reliable-delivery extension (docs/PROTOCOL.md "Reliable delivery"): when
// the transport runs with loss enabled, every request/notice additionally
// carries a 32-bit per-(src,dst)-channel sequence number and a 32-bit
// cumulative ack. Replies ack their request implicitly (the request's seq
// rides in the reply framing), so only the forward direction grows.
inline constexpr std::size_t kSeqAckBytes = 8;

// Every message type in the system. Values are part of the wire/trace
// encoding (they appear in trace files); append, never renumber.
enum class MsgType : std::uint16_t {
  kNone = 0,          // unset / unknown
  kDiffRequest = 1,   // lazy LRC: fetch stored diffs from their writer
  kDiffToHome = 2,    // home-based LRC: eager diff posted to the page's home
  kPageRequest = 3,   // home-based LRC: whole-page fetch from the home
  kForkDescriptor,    // Tmk_fork: region fn id + arg block + piggybacked records
  kJoinNotice,        // Tmk_join: slave release notice back to the master
  kBarrierArrival,    // barrier: vt + records to the manager
  kBarrierDeparture,  // barrier: vt + records from the manager
  kLockRequest,       // lock: acquirer -> manager
  kLockForward,       // lock: manager -> last holder
  kLockGrant,         // lock: releaser -> acquirer, piggybacking records
  kGcRecords,         // GC fixpoint: interval-record exchange at a barrier
  kLoopChunk,         // dynamic/guided loop chunk grab round trip
  kMpiData,           // MPI layer point-to-point payload
  kDiffRequestBatch,  // aggregated multi-page diff fetch (barrier prefetch)
  kAck,               // reliability layer: cumulative ack for a notice channel
  kCount
};

inline const char* msg_name(MsgType t) {
  static constexpr std::array<const char*,
                              static_cast<std::size_t>(MsgType::kCount)>
      names = {"none",          "diff_request",  "diff_to_home",
               "page_request",  "fork",          "join",
               "barrier_arrival", "barrier_departure", "lock_request",
               "lock_forward",  "lock_grant",    "gc_records",
               "loop_chunk",    "mpi_data",      "diff_request_batch",
               "ack"};
  const auto i = static_cast<std::size_t>(t);
  return i < names.size() ? names[i] : "invalid";
}

// Fixed request/notice descriptor size in wire bytes (beyond kHeaderBytes and
// any variable payload). These are the constants formerly scattered through
// system.cc / runtime.cc; Table 2 byte totals depend on them.
inline std::size_t msg_fixed_bytes(MsgType t) {
  switch (t) {
  case MsgType::kForkDescriptor:
  case MsgType::kJoinNotice:
    return 48; // region function id + argument block header (§3.2)
  case MsgType::kLockRequest:
  case MsgType::kLockForward:
    return 16; // lock id + requester identity
  case MsgType::kLockGrant:
    return 16; // lock id + grant header, before piggybacked records
  case MsgType::kLoopChunk:
    return 16; // shared loop index request/grant
  default:
    return 0;
  }
}

// One message instance. For request/reply calls `payload` views the
// serialized request; for accounting-only notifications (whose content the
// simulator applies by direct invocation) `accounted_bytes` carries the size
// the wire transport would have moved.
struct Envelope {
  ContextId src = 0;
  ContextId dst = 0;
  MsgType type = MsgType::kNone;
  std::span<const std::uint8_t> payload{};
  std::size_t accounted_bytes = 0;
  std::uint16_t trace_flags = 0;
  // Reliable-delivery header fields, stamped by the reliability layer when
  // loss is enabled (zero and absent from the wire otherwise): per-channel
  // sequence number, cumulative ack, and the kSeqAckBytes the extension adds
  // to the wire size.
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::size_t wire_extra = 0;

  std::size_t payload_size() const {
    return (payload.empty() ? accounted_bytes : payload.size()) + wire_extra;
  }

  static Envelope request(ContextId src, ContextId dst, MsgType type,
                          const ByteWriter& w) {
    Envelope e;
    e.src = src;
    e.dst = dst;
    e.type = type;
    e.payload = {w.data(), w.size()};
    return e;
  }

  static Envelope notice(ContextId src, ContextId dst, MsgType type,
                         std::size_t bytes) {
    Envelope e;
    e.src = src;
    e.dst = dst;
    e.type = type;
    e.accounted_bytes = bytes;
    return e;
  }
};

// The `message` trace event packs (type, dst) into arg1 so analyzers can
// report traffic by message *name* (the registry's) per destination.
inline std::uint64_t message_trace_arg1(MsgType type, ContextId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(type)) << 32) |
         dst;
}
inline MsgType message_type_of_arg1(std::uint64_t arg1) {
  return static_cast<MsgType>(static_cast<std::uint16_t>(arg1 >> 32));
}
inline ContextId message_dst_of_arg1(std::uint64_t arg1) {
  return static_cast<ContextId>(arg1 & 0xffffffffu);
}

} // namespace omsp::net
