// Hierarchical collective schedules derived from the topology descriptor.
//
// A coll::Schedule is an n-level gather/scatter tree over the members of a
// collective (DSM contexts or MPI ranks), shaped by the machine hierarchy in
// sim::Topology: members on one node attach to their node leader across the
// cheap shared-memory stage, node leaders attach to their switch-group
// leader across the edge tier, group leaders to the next tier up, and so on
// to the root. The leader of a group is always its lowest member index, so
// the root of the whole tree is member 0 and the structure is a pure
// function of (topology, member -> node mapping) — deterministic and
// host-schedule free.
//
// Both synchronization stacks execute on the same schedule:
//  * DsmSystem::barrier() in tree mode reduces interval/write-notice
//    metadata up the tree (merging at each leader, Lamport-correct) and
//    broadcasts departures down it (docs/PROTOCOL.md "Hierarchical
//    collectives").
//  * MpiWorld barrier/bcast/reduce/allreduce build their send/recv pattern
//    from the same tree, including the fused one-pass allreduce.
//
// The flat-vs-tree switchover is XHC-style (SNIPPETS.md,
// coll_smhc_bcast_flat.c vs coll_smhc_bcast_tree.c): small payloads take the
// single-level star (fewer chained hops wins when latency dominates), large
// payloads take the hierarchy (per-leader fan-in/fan-out serialization wins
// when injection bandwidth dominates). Options::flat_max_bytes is the knob;
// OMSP_COLL=central|tree|tree:<bytes> selects from the environment.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "sim/topology.hpp"

namespace omsp::coll {

// Collective-engine selection. `tree == false` (the default, spec "central")
// keeps the seed algorithms bit-for-bit: the centralized DSM barrier manager
// and the classic flat MPI collectives. "tree" enables the hierarchical
// schedules; "tree:<bytes>" additionally sets the flat-vs-tree switchover
// point (payloads at or below it still use the flat star).
struct Options {
  bool tree = false;
  // Tree mode only: payloads <= this many bytes use the flat schedule.
  // Control messages (barriers) always use the tree when tree mode is on.
  std::size_t flat_max_bytes = 1024;
  // Tree broadcasts split payloads into segments of this size so a level can
  // forward segment s while segment s+1 is still in flight to it (pipelined
  // levels instead of store-and-forward of the whole payload).
  std::size_t segment_bytes = 16384;

  // Parse "central", "tree" or "tree:<flat_max_bytes>"; nullopt on anything
  // else (including empty numbers and non-digits).
  static std::optional<Options> parse(std::string_view spec);

  // Resolve OMSP_COLL from the environment; defaults when unset. A set but
  // malformed value is a hard error, mirroring OMSP_TOPOLOGY — a typo must
  // not silently fall back to the centralized engine.
  static Options from_env();
};

// The gather/scatter tree for one collective. Members are dense indices
// 0..size()-1; the caller supplies their node placement. parent()/children()
// describe the tree (root is always member 0), level() is the topology stage
// an edge crosses (0 = intra-node, i >= 1 = network tier i), and
// up_order()/down_order() are deterministic post-/pre-order traversals for
// single-coordinator execution (the DSM barrier manager models the whole
// episode on one thread).
class Schedule {
public:
  // Single-level star rooted at member 0 — the shape of the centralized
  // algorithms, and the small-payload fallback in tree mode.
  static Schedule flat(std::uint32_t n);

  // The hierarchy tree: groups at stage level L are members whose nodes
  // share a stage-L group (level 0: the node itself); the leader of a group
  // is its lowest member index; a member attaches to the leader of the first
  // level where it is not itself the leader.
  static Schedule tree(const sim::Topology& topo, std::uint32_t n,
                       const std::function<NodeId(std::uint32_t)>& node_of);

  // Size-based switchover: flat when opts.tree is off or the payload is at
  // or below opts.flat_max_bytes, the hierarchy tree otherwise.
  static Schedule build(const sim::Topology& topo, std::uint32_t n,
                        std::size_t payload_bytes, const Options& opts,
                        const std::function<NodeId(std::uint32_t)>& node_of);

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(parent_.size());
  }
  bool is_tree() const { return tree_; }

  // Parent member, or -1 at the root (member 0).
  int parent(std::uint32_t m) const { return parent_[m]; }
  // Topology stage level of the edge to the parent (0 for the root).
  std::uint32_t level(std::uint32_t m) const { return level_[m]; }
  // Children, far-first: descending edge level, then ascending index — the
  // down pass services the most expensive subtree first.
  const std::vector<std::uint32_t>& children(std::uint32_t m) const {
    return children_[m];
  }
  // Maximum number of tree edges on any root-to-leaf path (1 for a flat
  // star with n >= 2, 0 for a singleton).
  std::uint32_t depth() const { return depth_; }

  // Every member, children strictly before parents (the gather order).
  std::vector<std::uint32_t> up_order() const;
  // Every member, parents strictly before children (the scatter order).
  std::vector<std::uint32_t> down_order() const;

private:
  bool tree_ = false;
  std::uint32_t depth_ = 0;
  std::vector<int> parent_;
  std::vector<std::uint32_t> level_;
  std::vector<std::vector<std::uint32_t>> children_;
};

} // namespace omsp::coll
