// Transport — the pluggable delivery layer below the protocol.
//
// The Router names endpoints, classifies links, owns the per-context stats
// boards and the handler table; a Transport decides *how* an Envelope
// reaches its destination and what it costs. Protocol code builds an
// Envelope and calls `router.transport().call(env)` (request/reply) or
// `.notify(env)` (one-way, accounting + modeled cost); it never constructs
// wire framing or touches counters itself.
//
// Three implementations:
//  * InlineTransport — the seed semantics, bit-for-bit: serialize, account
//    and charge on the sender, run the destination handler on the calling
//    thread, account and charge the reply. With the cost model's
//    occupancy/contention knobs at their zero defaults, every counter and
//    every charged microsecond is identical to the pre-transport Router.
//  * QueuedTransport — the asynchronous path, modeling TreadMarks' SIGIO
//    request service: call_async() accounts the request on the caller and
//    hands it to a per-destination worker thread that services requests
//    serially on its own virtual clock. The PendingReply it returns carries
//    the modeled completion time; waiting is a Lamport merge (advance_to),
//    so a thread that issued N concurrent requests ends at the MAX of their
//    completion times, not the sum — the overlap the paper's speedups come
//    from. The synchronous call()/notify() paths delegate to the inner
//    transport unchanged.
//  * PerturbingTransport — a seeded fault-injection decorator in the spirit
//    of the UDP/IP networks real SDSM systems ran on (TreadMarks serviced
//    retransmitted requests in SIGIO handlers): latency jitter, bounded
//    reordering of one-way notifications (modeled as a delivery-time
//    hold-back: a later message on the link overtakes the held one), and
//    duplicate delivery that re-runs the destination handler — the live
//    proof that DsmContext::handle is idempotent. All draws come from one
//    seeded generator, so a single-threaded message sequence perturbs
//    reproducibly; injected deliveries carry trace::kFlagPerturbed.
//
//    With loss enabled (PerturbOptions.loss_prob > 0 or drop_first), the
//    decorator additionally runs a reliable-delivery protocol over the lossy
//    link (docs/PROTOCOL.md "Reliable delivery"): every request/notice is
//    stamped with a per-(src,dst)-channel sequence number (kSeqAckBytes on
//    the wire), each one-way delivery is dropped independently per a
//    PER-LINK seeded stream (Rng::split by link index, so loss schedules
//    are seed-deterministic and host-schedule free), lost exchanges pay a
//    modeled RTO with exponential backoff (cost model rto_us/rto_backoff)
//    before retransmitting, retransmitted requests are re-serviced through
//    the destination's idempotent handler (the TreadMarks dedup strategy
//    for request channels), notice channels suppress duplicates by
//    (channel, seq) and confirm delivery with explicit kAck messages, and
//    exhausting the retry cap raises TransportError instead of hanging.
//
// Idempotence contract for handlers (docs/PROTOCOL.md "Transport layer"):
// any handler reachable through call() or call_async() must tolerate
// re-delivery of the same request — state convergent (second apply is a
// byte-level no-op), reply equivalent — because a lossy transport
// retransmits and duplicates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace omsp::sim {
class VirtualClock;
}

namespace omsp::net {

class Router;

// Hard-failure surface of the reliable-delivery layer: raised (never a hang,
// never an abort) when an exchange exhausts its retry cap on a lossy link.
// The Router's callers — protocol code, ultimately the application — see it
// as a normal C++ exception with the failed link identified.
class TransportError : public std::runtime_error {
public:
  TransportError(ContextId src, ContextId dst, MsgType type,
                 std::uint32_t attempts)
      : std::runtime_error(std::string("transport: ") + msg_name(type) +
                           " from ctx " + std::to_string(src) + " to ctx " +
                           std::to_string(dst) + " undelivered after " +
                           std::to_string(attempts) + " attempts"),
        src(src), dst(dst), type(type), attempts(attempts) {}

  ContextId src;
  ContextId dst;
  MsgType type;
  std::uint32_t attempts;
};

// A context's inbound request dispatcher. Implementations must be safe to
// call from any thread; they lock their own state. Handlers must be
// idempotent under re-delivery (see transport contract above).
class MessageHandler {
public:
  virtual ~MessageHandler() = default;
  virtual void handle(ContextId src, MsgType type, ByteReader& request,
                      ByteWriter& reply) = 0;
};

// Delivery-time decomposition of a one-way notification: the modeled arrival
// delay of the primary copy (jitter/hold-back included) and, separately, the
// cost of an injected duplicate. Layers that model their own mailboxes (the
// MPI library) use the components: the payload arrives after cost_us; a
// duplicate is absorbed by the reliability layer but its wire cost is real.
struct Delivery {
  double cost_us = 0;
  bool duplicate = false;
  double dup_cost_us = 0;
};

// Future-like handle for an asynchronous request (Transport::call_async).
//
// Contract (docs/PROTOCOL.md "Asynchronous transport and overlapped fetch"):
//  * The request was fully accounted (counters + trace event) at issue time
//    on the caller's board; the reply is accounted on the servicing side
//    when it is produced. Counters are therefore identical to the
//    synchronous path no matter when — or whether — wait() is called.
//  * wait() blocks until the reply exists, then advances the calling
//    thread's virtual clock to the reply's modeled completion time
//    (advance_to — a max-merge, never a sum). Waiting N handles issued
//    concurrently ends at max(completion), the overlapped-RTT regime.
//  * wait_at() returns the reply without touching any clock and reports the
//    completion time; used by the prefetch buffer, which charges the stall
//    (if any) only when the data is first consumed.
//  * A handle may be dropped without waiting; the transport still services
//    the request (quiesce() drains it) so accounting stays complete.
class PendingReply {
public:
  PendingReply() = default;

  bool valid() const { return state_ != nullptr; }

  // Block for the reply and Lamport-merge its completion time into the
  // calling thread's virtual clock.
  std::vector<std::uint8_t> wait();

  // Block for the reply without touching any clock; *complete_us (when
  // non-null) receives the modeled completion time.
  std::vector<std::uint8_t> wait_at(double* complete_us);

  // An already-completed reply (the synchronous bridge).
  static PendingReply ready(std::vector<std::uint8_t> reply,
                            double complete_us);

private:
  friend class Transport;
  friend class QueuedTransport;
  friend class PerturbingTransport;

  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::vector<std::uint8_t> reply;
    double complete_us = 0;
  };

  std::shared_ptr<State> state_;
  // Extra delivery latency injected by a decorating transport (perturbation
  // jitter); added to the completion time at the handle, not the worker, so
  // the destination's service clock stays unperturbed.
  double post_delay_us_ = 0;
};

class Transport {
public:
  virtual ~Transport() = default;

  // Request/reply round trip. Accounts both directions, charges the calling
  // thread's virtual clock, runs the destination handler, returns the reply.
  virtual std::vector<std::uint8_t> call(const Envelope& env) = 0;

  // One-way message whose content the caller applies by direct invocation.
  // Accounts it on the sender's board and returns the modeled one-way cost
  // in microseconds (the caller decides whose clock absorbs it).
  virtual double notify(const Envelope& env) = 0;

  // Like notify() but reports the delivery-time decomposition (see
  // Delivery). The default wraps notify(); decorators that inject faults
  // override it so mailbox layers can model arrival times faithfully.
  virtual Delivery notify_ex(const Envelope& env) {
    Delivery d;
    d.cost_us = notify(env);
    return d;
  }

  // Asynchronous request/reply. The default bridges to the synchronous
  // call() — the request completes before this returns, so the handle's
  // wait() is a no-op on the clock. Transports that truly overlap return
  // supports_async() == true; protocol code uses that to gate its
  // concurrent-issue paths (the answer must not change over the transport's
  // lifetime).
  virtual PendingReply call_async(const Envelope& env);
  virtual bool supports_async() const { return false; }

  // Block until every in-flight asynchronous request (including injected
  // duplicates and pending modeled retransmissions) has been serviced.
  // Called at quiescent points — barrier episodes, stats resets, shutdown —
  // so counter snapshots and trace drains never race a worker mid-service.
  // No-op for synchronous transports.
  virtual void quiesce() {}

  // Reset any transport-local statistics (PerturbStats on the fault-
  // injection decorator). Part of the DsmSystem::reset_stats contract: the
  // stats <-> trace audit window must cover transport-injected traffic too,
  // so transport stats reset together with boards and trace buffers.
  // Decorators forward to their inner transport.
  virtual void reset_stats() {}

  virtual const char* name() const = 0;
};

// Today's exact semantics: the destination handler runs inline on the
// caller's thread. Also the layer where the cost model's per-link
// occupancy/contention knobs are charged (zero by default).
class InlineTransport final : public Transport {
public:
  explicit InlineTransport(Router& router);

  std::vector<std::uint8_t> call(const Envelope& env) override;
  double notify(const Envelope& env) override;
  const char* name() const override { return "inline"; }

  // Cumulative modeled queueing per topology stage (index = stage), for
  // saturation-shape probes: which tier of the machine is the bottleneck.
  // Snapshot under the window lock; reset together with reset_stats().
  struct StageWait {
    std::uint64_t waits = 0; // messages that queued at this stage
    double wait_us = 0;      // total modeled wait they paid there

    bool operator==(const StageWait&) const = default;
  };
  std::vector<StageWait> stage_waits() const;
  void reset_stats() override;

private:
  // Occupancy + queueing surcharge for one message of `wire_bytes` along the
  // src->dst path; 0 with the default cost model. Occupancy is charged once
  // per message at the rate of the top stage crossed (the bottleneck
  // serialization point); queueing is charged per traversed segment at that
  // segment's stage rate. When `reserve` is set the message extends each
  // segment's busy window (requests do; replies and notifications only pay
  // against existing windows, mirroring the original in-flight accounting).
  double contention_us(const Envelope& env, std::size_t wire_bytes,
                       bool reserve);

  Router& router_;
  // Modeled-time occupancy window per shared link segment, maintained only
  // when a stage's contention knob is enabled. Windows are keyed by the
  // packed (stage, segment) keys of sim::Topology::path_segments — going up,
  // the sender's uplink at each tier (its node's NIC, then its edge switch's
  // trunk, ...); coming down, the receiver's downlink at each tier — so two
  // sends from one node to DIFFERENT destinations still queue on the same
  // outbound segments, and an edge NIC and a spine trunk queue and saturate
  // independently at their own per-stage rates. A message reaches segment i
  // of its path only after queueing at segments before it, so its local
  // modeled time advances past each wait. A send whose modeled time falls
  // inside a segment's current busy period queues behind it (and pays the
  // residual window); a send whose modeled time precedes the period would
  // have transmitted first and pays nothing — so the surcharge is a pure
  // function of modeled timestamps, never of host scheduling (the original
  // implementation counted host-concurrent calls with fetch_add/fetch_sub, a
  // determinism hole). For any two-stage topology the path is the single
  // Router::link_segment, reproducing the flat single-window model
  // bit-for-bit.
  struct LinkWindow {
    double start = 0;
    double end = 0;
  };
  mutable std::mutex link_mutex_;
  std::unordered_map<std::uint64_t, LinkWindow> link_windows_;
  mutable std::vector<StageWait> stage_waits_; // grown on demand per stage
};

// Opt-in knobs for the overlapped communication paths (tmk::Config.overlap).
// With enabled == false (the default) the DSM runs the seed-exact
// InlineTransport; OMSP_OVERLAP=1 enables from the environment, with
// OMSP_OVERLAP_FETCH=0 / OMSP_OVERLAP_PREFETCH=0 masking the sub-features.
struct OverlapOptions {
  bool enabled = false;
  // fetch_and_apply issues all per-creator diff requests of a round
  // concurrently (max-of-RTT stall instead of sum-of-RTT).
  bool async_fetch = true;
  // Barrier departure issues one aggregated kDiffRequestBatch per creator
  // for the pages its write notices invalidated, overlapped with post-
  // barrier compute until first touch.
  bool prefetch = true;

  static OverlapOptions from_env();
};

// Zero-copy intra-node delivery (docs/PROTOCOL.md "Zero-copy intra-node
// delivery"): when a request/reply's src and dst contexts share a physical
// node and the serialized payload is at least threshold_bytes, the receiver
// keeps the delivered buffer alive and parses diff payloads as views into it
// instead of deserializing copies — the XHC-style zero-copy vs copy-in/
// copy-out switch. A pure wall-clock optimization: modeled costs, message
// accounting and every pre-existing counter are bit-for-bit identical to the
// copy path (asserted by tests); only the zerocopy_* counters and the
// kZeroCopyDeliver trace event are new, and they fire only when enabled.
// OMSP_ZEROCOPY=off|on|<bytes> is the code-free enable ("on" = threshold 0).
struct ZeroCopyOptions {
  bool enabled = false;
  std::size_t threshold_bytes = 0;

  static ZeroCopyOptions from_env();
};

// Asynchronous delivery: one worker thread per destination context services
// queued requests — the analogue of TreadMarks' SIGIO handler, which
// interrupts the destination process and services one request at a time. A
// request begins service at max(modeled arrival, completion of the SAME
// source's previous request to this destination), pays the handler service
// cost plus whatever the handler itself charges (diff creation on first
// request), and the reply completes one reply-hop later.
//
// Serialization is per (source, destination) channel, not across sources:
// each source issues its requests in program order at deterministic modeled
// times, so every completion is a pure function of that source's own issue
// sequence — bit-identical across runs no matter how the host schedules the
// worker against the callers. Cross-source contention at one destination is
// deliberately NOT folded into completion times: resolving it online would
// make completions depend on which caller's request the worker happened to
// see first (a host race), and a 10us service displacement decided by the
// scheduler is exactly the nondeterminism the simulator exists to avoid.
// Host-order effects are confined to handler *content* (which twin flush a
// service-time request observes), the same window the inline transport has.
//
// The synchronous call()/notify() paths delegate to the inner transport so
// non-overlapped traffic keeps seed semantics bit-for-bit.
class QueuedTransport final : public Transport {
public:
  QueuedTransport(std::unique_ptr<Transport> inner, Router& router);
  ~QueuedTransport() override;

  std::vector<std::uint8_t> call(const Envelope& env) override {
    return inner_->call(env);
  }
  double notify(const Envelope& env) override { return inner_->notify(env); }
  Delivery notify_ex(const Envelope& env) override {
    return inner_->notify_ex(env);
  }

  PendingReply call_async(const Envelope& env) override;
  bool supports_async() const override { return true; }
  void quiesce() override;
  void reset_stats() override { inner_->reset_stats(); }

  // A duplicate/retransmission rider for call_async_with_dups: delivered on
  // the same (src,dst) channel as its primary, `delay_us` after the
  // primary's modeled arrival (0 for an immediate duplicate; the cumulative
  // RTO for a modeled retransmission).
  struct DupSpec {
    Envelope env;
    double delay_us = 0;
  };

  // Issue a request together with its injected duplicates/retransmissions
  // in ONE queue critical section: the riders get consecutive issue seqs
  // directly after the primary and arrivals >= the primary's, so no rider
  // can ever be selected ahead of its primary on the per-(src,dst) channel.
  // (Issuing a rider as a separate call_async — the old PerturbingTransport
  // path — gives it an arrival recomputed from the caller's clock and an
  // unrelated global seq, so nothing structurally pins it behind the
  // primary.) Riders' requests are accounted here like any issue; their
  // replies are serviced, accounted and dropped — the primary's reply
  // stands. quiesce() drains riders too: workers service pending modeled
  // retransmissions before a quiescent point completes.
  PendingReply call_async_with_dups(const Envelope& env,
                                    std::span<const DupSpec> dups);

  const char* name() const override { return "queued"; }
  Transport& inner() { return *inner_; }

  // Trace track id for the service worker of destination context c (keeps
  // worker-emitted events off the application rank tracks).
  static std::uint32_t service_track(ContextId c) {
    return (1u << 20) + c;
  }

private:
  struct Job {
    ContextId src = 0;
    ContextId dst = 0;
    MsgType type = MsgType::kNone;
    std::uint16_t trace_flags = 0;
    std::vector<std::uint8_t> payload;
    double arrive_us = 0;   // modeled arrival at the destination
    std::uint64_t seq = 0;  // issue order; tie-break for equal arrivals
    std::shared_ptr<PendingReply::State> state; // null for fire-and-forget
  };

  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Job> queue;
    std::thread thread;
    // Per-source service channel: finish time of this source's previous
    // request at this destination. Only the owning source's (program-
    // ordered) jobs touch an entry, so values are host-schedule free.
    std::unordered_map<ContextId, double> src_busy_until;
  };

  void worker_main(ContextId dst);
  void service(ContextId dst, Job& job, Worker& w);

  std::unique_ptr<Transport> inner_;
  Router& router_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> issue_seq_{0};

  // Recycles Job payload buffers: every call_async copies the caller's
  // serialized request into the job (the caller's ByteWriter dies before the
  // worker runs), which used to be a fresh allocation per request. Workers
  // release the payload back after service.
  BufferPool payload_pool_;

  // quiesce(): callers wait until no queued or in-service job remains.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::uint64_t outstanding_ = 0;
};

// Deterministic perturbation parameters. `enabled` gates construction by
// DsmSystem; OMSP_PERTURB_SEED=<n> enables from the environment with the
// default rates below. OMSP_LOSS_PROB=<p> enables seeded loss; when it is
// the only perturbation requested (no OMSP_PERTURB_SEED), the jitter/
// duplicate/reorder rates are zeroed so ONLY loss is injected.
struct PerturbOptions {
  bool enabled = false;
  std::uint64_t seed = 1;
  double jitter_max_us = 25.0;   // uniform extra latency per delivery
  double duplicate_prob = 0.05;  // re-deliver a request / re-account a notice
  double reorder_prob = 0.10;    // hold a one-way notice back...
  double reorder_max_us = 50.0;  // ...by up to this long (bounded overtaking)

  // Reliable-delivery layer (active when loss_prob > 0 or drop_first):
  double loss_prob = 0.0;        // P(drop) per one-way delivery, per-link RNG
  bool drop_first = false;       // adversarial: drop every exchange's first
                                 // copy in each direction (forces the full
                                 // retransmit path on every message)
  std::uint32_t max_retries = 8; // retransmissions per exchange before
                                 // TransportError

  bool lossy() const { return loss_prob > 0 || drop_first; }

  static PerturbOptions from_env();
};

struct PerturbStats {
  std::uint64_t duplicates = 0; // injected re-deliveries
  std::uint64_t reorders = 0;   // held-back one-way notifications
  double jitter_us = 0;         // total injected latency (jitter + hold-back)
  // Reliable-delivery layer:
  std::uint64_t losses = 0;         // one-way deliveries dropped
  std::uint64_t retransmits = 0;    // RTO expiries that reissued a copy
  std::uint64_t acks = 0;           // explicit acks on notice channels
  std::uint64_t dups_suppressed = 0; // notice copies deduped by (channel,seq)
  double rto_wait_us = 0;           // total modeled RTO latency injected
};

class PerturbingTransport final : public Transport {
public:
  // `router` is the accounting funnel for the reliability layer (lost-copy
  // wire accounting, retransmit/loss/ack counters + events) and supplies the
  // RTO model and the channel count for the per-link RNG streams.
  PerturbingTransport(std::unique_ptr<Transport> inner, Router& router,
                      PerturbOptions opts);

  std::vector<std::uint8_t> call(const Envelope& env) override;
  double notify(const Envelope& env) override;
  Delivery notify_ex(const Envelope& env) override;
  PendingReply call_async(const Envelope& env) override;
  bool supports_async() const override { return inner_->supports_async(); }
  void quiesce() override { inner_->quiesce(); }
  void reset_stats() override;
  const char* name() const override { return "perturbing"; }

  PerturbStats stats() const;
  const PerturbOptions& options() const { return opts_; }
  Transport& inner() { return *inner_; }

private:
  struct Draw {
    double jitter_us = 0;
    bool duplicate = false;
    bool reorder = false;
  };
  Draw draw(bool one_way);

  // Per-(src,dst) reliable channel: an independent seeded loss stream
  // (schedules are a pure function of (seed, link, per-link message index) —
  // host-schedule free across links) plus the send-side sequence counter and
  // the receive-side duplicate-suppression cursor.
  struct Channel {
    Rng rng;
    std::uint32_t send_seq = 0;
    std::uint32_t recv_applied = 0; // highest notice seq applied (cumulative)
    explicit Channel(Rng r) : rng(r) {}
  };

  // Pre-drawn loss schedule for one exchange. attempts = 1 + retransmits
  // actually issued; delivered == false means the retry cap was exhausted.
  struct LossSchedule {
    std::uint32_t req_lost = 0;   // leading copies dropped before delivery
    std::uint32_t reply_lost = 0; // delivered copies whose reply dropped
    bool delivered = false;       // a copy got through AND its reply/ack did
    double penalty_us = 0;        // total modeled RTO latency
    std::uint32_t attempts = 0;   // total copies sent
  };

  Channel& channel(ContextId src, ContextId dst); // mutex_ held by caller
  // Draw one delivery outcome on ch's stream: true = dropped. `copy` is the
  // 0-based copy index within the exchange (drop_first drops copy 0).
  bool draw_loss(Channel& ch, std::uint32_t copy);
  // Pre-draw the loss schedule for a round-trip (request/reply) or a
  // notice+ack exchange on src->dst; consumes the channel's stream and
  // stamps *seq with the exchange's channel sequence number.
  LossSchedule draw_roundtrip(ContextId src, ContextId dst,
                              std::uint32_t* seq);

  std::unique_ptr<Transport> inner_;
  Router& router_;
  PerturbOptions opts_;
  mutable std::mutex mutex_; // guards rng_, stats_ and channels_
  Rng rng_;
  PerturbStats stats_;
  // Base generator for per-link streams; never advanced, only split.
  Rng loss_base_;
  std::unordered_map<std::uint64_t, Channel> channels_;
};

} // namespace omsp::net
