// Transport — the pluggable delivery layer below the protocol.
//
// The Router names endpoints, classifies links, owns the per-context stats
// boards and the handler table; a Transport decides *how* an Envelope
// reaches its destination and what it costs. Protocol code builds an
// Envelope and calls `router.transport().call(env)` (request/reply) or
// `.notify(env)` (one-way, accounting + modeled cost); it never constructs
// wire framing or touches counters itself.
//
// Two implementations:
//  * InlineTransport — the seed semantics, bit-for-bit: serialize, account
//    and charge on the sender, run the destination handler on the calling
//    thread, account and charge the reply. With the cost model's
//    occupancy/contention knobs at their zero defaults, every counter and
//    every charged microsecond is identical to the pre-transport Router.
//  * PerturbingTransport — a seeded fault-injection decorator in the spirit
//    of the UDP/IP networks real SDSM systems ran on (TreadMarks serviced
//    retransmitted requests in SIGIO handlers): latency jitter, bounded
//    reordering of one-way notifications (modeled as a delivery-time
//    hold-back: a later message on the link overtakes the held one), and
//    duplicate delivery that re-runs the destination handler — the live
//    proof that DsmContext::handle is idempotent. All draws come from one
//    seeded generator, so a single-threaded message sequence perturbs
//    reproducibly; injected deliveries carry trace::kFlagPerturbed.
//
// Idempotence contract for handlers (docs/PROTOCOL.md "Transport layer"):
// any handler reachable through call() must tolerate re-delivery of the same
// request — state convergent (second apply is a byte-level no-op), reply
// equivalent — because a lossy transport retransmits and duplicates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace omsp::net {

class Router;

// A context's inbound request dispatcher. Implementations must be safe to
// call from any thread; they lock their own state. Handlers must be
// idempotent under re-delivery (see transport contract above).
class MessageHandler {
public:
  virtual ~MessageHandler() = default;
  virtual void handle(ContextId src, MsgType type, ByteReader& request,
                      ByteWriter& reply) = 0;
};

class Transport {
public:
  virtual ~Transport() = default;

  // Request/reply round trip. Accounts both directions, charges the calling
  // thread's virtual clock, runs the destination handler, returns the reply.
  virtual std::vector<std::uint8_t> call(const Envelope& env) = 0;

  // One-way message whose content the caller applies by direct invocation.
  // Accounts it on the sender's board and returns the modeled one-way cost
  // in microseconds (the caller decides whose clock absorbs it).
  virtual double notify(const Envelope& env) = 0;

  virtual const char* name() const = 0;
};

// Today's exact semantics: the destination handler runs inline on the
// caller's thread. Also the layer where the cost model's per-link
// occupancy/contention knobs are charged (zero by default).
class InlineTransport final : public Transport {
public:
  explicit InlineTransport(Router& router);

  std::vector<std::uint8_t> call(const Envelope& env) override;
  double notify(const Envelope& env) override;
  const char* name() const override { return "inline"; }

private:
  // Occupancy + queueing surcharge for one message of `wire_bytes` on the
  // src->dst link; 0 with the default cost model.
  double contention_us(const Envelope& env, std::size_t wire_bytes);

  Router& router_;
  // In-flight call() count per (src node, dst node) link, maintained only
  // when the contention knob is enabled.
  std::unique_ptr<std::atomic<std::uint32_t>[]> link_inflight_;
  std::uint32_t nnodes_ = 0;
};

// Deterministic perturbation parameters. `enabled` gates construction by
// DsmSystem; OMSP_PERTURB_SEED=<n> enables from the environment with the
// default rates below.
struct PerturbOptions {
  bool enabled = false;
  std::uint64_t seed = 1;
  double jitter_max_us = 25.0;   // uniform extra latency per delivery
  double duplicate_prob = 0.05;  // re-deliver a request / re-account a notice
  double reorder_prob = 0.10;    // hold a one-way notice back...
  double reorder_max_us = 50.0;  // ...by up to this long (bounded overtaking)

  static PerturbOptions from_env();
};

struct PerturbStats {
  std::uint64_t duplicates = 0; // injected re-deliveries
  std::uint64_t reorders = 0;   // held-back one-way notifications
  double jitter_us = 0;         // total injected latency (jitter + hold-back)
};

class PerturbingTransport final : public Transport {
public:
  PerturbingTransport(std::unique_ptr<Transport> inner, PerturbOptions opts);

  std::vector<std::uint8_t> call(const Envelope& env) override;
  double notify(const Envelope& env) override;
  const char* name() const override { return "perturbing"; }

  PerturbStats stats() const;
  const PerturbOptions& options() const { return opts_; }
  Transport& inner() { return *inner_; }

private:
  struct Draw {
    double jitter_us = 0;
    bool duplicate = false;
    bool reorder = false;
  };
  Draw draw(bool one_way);

  std::unique_ptr<Transport> inner_;
  PerturbOptions opts_;
  mutable std::mutex mutex_; // guards rng_ and stats_
  Rng rng_;
  PerturbStats stats_;
};

} // namespace omsp::net
