#include "mpi/mpi.hpp"

#include <algorithm>

#include "net/message.hpp"
#include "trace/tracer.hpp"

namespace omsp::mpi {

MpiWorld::MpiWorld(sim::Topology topo, sim::CostModel cost)
    : MpiWorld(std::move(topo), cost, net::PerturbOptions{}) {}

MpiWorld::MpiWorld(sim::Topology topo, sim::CostModel cost,
                   const net::PerturbOptions& perturb)
    : topo_(std::move(topo)) {
  std::vector<NodeId> rank_node(topo_.nprocs());
  for (Rank r = 0; r < topo_.nprocs(); ++r)
    rank_node[r] = topo_.node_of_rank(r);
  router_ = std::make_unique<net::Router>(std::move(rank_node), cost, topo_);
  if (perturb.enabled) {
    router_->set_transport(std::make_unique<net::PerturbingTransport>(
        std::make_unique<net::InlineTransport>(*router_), *router_, perturb));
  }
  mailboxes_.resize(topo_.nprocs());
  for (auto& m : mailboxes_) m = std::make_unique<Mailbox>();
  // OMSP_COLL selects the collective engine code-free, mirroring the DSM
  // side; set_coll() overrides explicitly before run().
  coll_ = coll::Options::from_env();
}

MpiWorld::~MpiWorld() = default;

void MpiWorld::run(const std::function<void(Comm&)>& fn) {
  const int p = size();
  std::vector<double> final_times(p, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(p);
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      sim::VirtualClock clock(router_->model().cpu_scale);
      sim::VirtualClock::Binder bind(&clock);
      Comm comm(*this, r, clock);
      fn(comm);
      clock.sync_cpu();
      final_times[r] = clock.now_us();
    });
  }
  for (auto& t : threads) t.join();
  makespan_us_ = *std::max_element(final_times.begin(), final_times.end());
  // Drop any stray messages so a world can be reused.
  for (auto& m : mailboxes_) {
    std::lock_guard<std::mutex> lk(m->mutex);
    OMSP_CHECK_MSG(m->queue.empty(), "unreceived MPI messages at exit");
  }
}

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  OMSP_CHECK(dst >= 0 && dst < size());
  clock_.sync_cpu();
  // notify_ex separates the arrival-relevant delivery cost (base + any
  // perturbation jitter/holdback) from a duplicate's wire cost: the dup is
  // absorbed by the reliability layer, so it is accounted (counters, trace)
  // but never delays or re-delivers the application payload.
  const net::Delivery d = world_.router_->transport().notify_ex(
      net::Envelope::notice(static_cast<ContextId>(rank_),
                            static_cast<ContextId>(dst),
                            net::MsgType::kMpiData, bytes));
  MpiWorld::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload.assign(static_cast<const std::uint8_t*>(data),
                     static_cast<const std::uint8_t*>(data) + bytes);
  msg.arrive_time_us = clock_.now_us() + d.cost_us;
  auto& box = *world_.mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lk(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
  clock_.skip_cpu();
}

std::size_t Comm::recv(int src, int tag, void* data, std::size_t bytes,
                       int* out_src) {
  clock_.sync_cpu();
  auto& box = *world_.mailboxes_[rank_];
  std::unique_lock<std::mutex> lk(box.mutex);
  MpiWorld::Message msg;
  for (;;) {
    // Candidates are each source's FIRST matching message (MPI's
    // non-overtaking guarantee is per (src, tag) pair); among those the
    // earliest modeled arrival wins. With the perturbation schedule threaded
    // into arrive_time_us this is the order a jittery wire would actually
    // deliver wildcard receives in; with the default transport and a named
    // source it degenerates to plain FIFO.
    auto best = box.queue.end();
    std::vector<int> seen_src;
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!((src == kAnySource || it->src == src) &&
            (tag == kAnyTag || it->tag == tag)))
        continue;
      if (std::find(seen_src.begin(), seen_src.end(), it->src) !=
          seen_src.end())
        continue;
      seen_src.push_back(it->src);
      if (best == box.queue.end() ||
          it->arrive_time_us < best->arrive_time_us)
        best = it;
    }
    if (best != box.queue.end()) {
      msg = std::move(*best);
      box.queue.erase(best);
      break;
    }
    box.cv.wait(lk);
  }
  lk.unlock();
  OMSP_CHECK_MSG(msg.payload.size() <= bytes, "recv buffer too small");
  std::memcpy(data, msg.payload.data(), msg.payload.size());
  if (out_src != nullptr) *out_src = msg.src;
  clock_.advance_to(msg.arrive_time_us);
  clock_.skip_cpu();
  return msg.payload.size();
}

void Comm::sendrecv(int dst, int send_tag, const void* send_data,
                    std::size_t send_bytes, int src, int recv_tag,
                    void* recv_data, std::size_t recv_bytes) {
  // Eager sends cannot deadlock, so a simple send-then-recv suffices.
  send(dst, send_tag, send_data, send_bytes);
  recv(src, recv_tag, recv_data, recv_bytes);
}

void Comm::barrier() {
  if (tree_mode()) {
    sched_barrier();
    return;
  }
  // Dissemination barrier: ceil(log2 p) rounds, one send+recv per round.
  const int p = size();
  char token = 0;
  for (int round = 1; round < p; round <<= 1) {
    const int dst = (rank_ + round) % p;
    const int src = (rank_ - round % p + p) % p;
    sendrecv(dst, kTagBarrier, &token, 1, src, kTagBarrier, &token, 1);
  }
}

void Comm::bcast(int root, void* data, std::size_t bytes) {
  if (tree_mode()) {
    sched_bcast(root, data, bytes);
    return;
  }
  // Binomial tree rooted at `root`; relative ranks linearize the tree.
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  // Receive from parent (highest set bit of rel).
  if (rel != 0) {
    int mask = 1;
    while (mask * 2 <= rel) mask <<= 1;
    const int parent = (rel - mask + root) % p;
    recv(parent, kTagBcast, data, bytes);
  }
  // Forward to children.
  int mask = 1;
  while (mask <= rel) mask <<= 1;
  for (; rel + mask < p; mask <<= 1) {
    const int child = (rel + mask + root) % p;
    send(child, kTagBcast, data, bytes);
  }
}

void Comm::reduce_impl(int root, void* inout, std::size_t n, std::size_t elem,
                       const CombineFn& combine) {
  if (tree_mode()) {
    sched_reduce(root, inout, n, elem, combine);
    return;
  }
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  const std::size_t bytes = n * elem;
  std::vector<std::uint8_t> scratch(bytes);
  // Binomial tree: gather partial results toward relative rank 0.
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((rel & mask) != 0) {
      const int parent = (rel & ~mask) ;
      send((parent + root) % p, kTagReduce, inout, bytes);
      return;
    }
    if (rel + mask < p) {
      recv((rel + mask + root) % p, kTagReduce, scratch.data(), bytes);
      combine(inout, scratch.data(), n);
    }
  }
}

void Comm::gather_impl(int root, const void* send_buf, void* recv_buf,
                       std::size_t block_bytes) {
  // Binomial gather: each subtree owner accumulates a contiguous run of
  // relative-rank blocks and ships it up in one message.
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  std::vector<std::uint8_t> agg(block_bytes * static_cast<std::size_t>(p));
  std::memcpy(agg.data(), send_buf, block_bytes);
  std::size_t have = 1; // blocks held: rel .. rel+have-1 (relative)
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((rel & mask) != 0) {
      const int parent = (rel & ~mask);
      send((parent + root) % p, kTagGather, agg.data(), have * block_bytes);
      have = 0;
      break;
    }
    if (rel + mask < p) {
      const std::size_t child_blocks =
          std::min<std::size_t>(mask, static_cast<std::size_t>(p - rel - mask));
      recv((rel + mask + root) % p, kTagGather,
           agg.data() + have * block_bytes, child_blocks * block_bytes);
      have += child_blocks;
    }
  }
  if (rel == 0) {
    // Unrotate the relative layout into absolute rank order.
    auto* out = static_cast<std::uint8_t*>(recv_buf);
    for (int rr = 0; rr < p; ++rr) {
      const int abs = (rr + root) % p;
      std::memcpy(out + static_cast<std::size_t>(abs) * block_bytes,
                  agg.data() + static_cast<std::size_t>(rr) * block_bytes,
                  block_bytes);
    }
  }
}

// --- hierarchical collectives (coll::Schedule) -------------------------------

bool Comm::tree_mode() const { return world_.coll_.tree; }

coll::Schedule Comm::coll_schedule(int root, std::size_t payload_bytes) const {
  // Members are root-relative ranks so member 0 is the root, while each
  // member keeps its absolute rank's node placement — the tree follows the
  // real machine hierarchy for any root.
  const int p = size();
  return coll::Schedule::build(
      world_.topo_, static_cast<std::uint32_t>(p), payload_bytes,
      world_.coll_, [this, root, p](std::uint32_t m) {
        return world_.topo_.node_of_rank(
            static_cast<Rank>((static_cast<int>(m) + root) % p));
      });
}

void Comm::coll_send(int dst, int tag, const void* data, std::size_t bytes,
                     std::uint32_t level, int leader) {
  const std::size_t wire = bytes + net::kHeaderBytes;
  // Injection serialization: consecutive fan-out sends from one member
  // queue behind each other's wire occupancy (zero with the default cost
  // knobs), at the rate of the stage the schedule edge crosses. Charged
  // before the send so later children's arrivals include every earlier
  // sibling's occupancy.
  clock_.charge(world_.topo_.stage_occupancy_us(world_.router_->model(),
                                                level, wire));
  send(dst, tag, data, bytes);
  if (tree_mode()) {
    auto& stats = world_.router_->stats(static_cast<ContextId>(rank_));
    stats.add(Counter::kCollStages);
    stats.add(Counter::kCollBytes, wire);
    OMSP_TRACE_EVENT(kCollStage, static_cast<ContextId>(rank_), wire,
                     (static_cast<std::uint64_t>(level) << 32) |
                         static_cast<std::uint64_t>(leader));
  }
}

void Comm::coll_sink(std::size_t bytes, std::uint32_t level) {
  // Fan-in serialization: a leader absorbs one child message per occupancy
  // window on its downlink, at the rate of the stage that edge crosses.
  clock_.charge(world_.topo_.stage_occupancy_us(
      world_.router_->model(), level, bytes + net::kHeaderBytes));
}

void Comm::sched_barrier() {
  // Control message: always the full hierarchy tree, regardless of the
  // flat-vs-tree payload switchover.
  const int p = size();
  const coll::Schedule sched = coll::Schedule::tree(
      world_.topo_, static_cast<std::uint32_t>(p), [this](std::uint32_t m) {
        return world_.topo_.node_of_rank(static_cast<Rank>(m));
      });
  const auto me = static_cast<std::uint32_t>(rank_);
  char token = 0;
  for (const std::uint32_t child : sched.children(me)) {
    recv(static_cast<int>(child), kTagBarrier, &token, 1);
    coll_sink(1, sched.level(child));
  }
  const int parent = sched.parent(me);
  if (parent >= 0) {
    coll_send(parent, kTagBarrier, &token, 1, sched.level(me), parent);
    recv(parent, kTagBarrier, &token, 1);
  }
  for (const std::uint32_t child : sched.children(me)) {
    coll_send(static_cast<int>(child), kTagBarrier, &token, 1,
              sched.level(child), rank_);
  }
}

void Comm::sched_bcast(int root, void* data, std::size_t bytes) {
  const int p = size();
  const coll::Schedule sched = coll_schedule(root, bytes);
  const auto me = static_cast<std::uint32_t>((rank_ - root + p) % p);
  const auto abs = [root, p](std::uint32_t m) {
    return (static_cast<int>(m) + root) % p;
  };
  const int parent = sched.parent(me);
  auto* buf = static_cast<std::uint8_t*>(data);
  // Pipelined segments: a member forwards segment s while segment s+1 is
  // still in flight to it, so deep trees stream instead of
  // store-and-forwarding the whole payload per level.
  const std::size_t seg = std::max<std::size_t>(1, world_.coll_.segment_bytes);
  std::size_t off = 0;
  do {
    const std::size_t len = std::min(seg, bytes - off);
    if (parent >= 0) recv(abs(static_cast<std::uint32_t>(parent)),
                          kTagBcast, buf + off, len);
    for (const std::uint32_t child : sched.children(me)) {
      coll_send(abs(child), kTagBcast, buf + off, len, sched.level(child),
                rank_);
    }
    off += seg;
  } while (off < bytes);
}

void Comm::sched_reduce(int root, void* inout, std::size_t n,
                        std::size_t elem, const CombineFn& combine) {
  const int p = size();
  const std::size_t bytes = n * elem;
  const coll::Schedule sched = coll_schedule(root, bytes);
  const auto me = static_cast<std::uint32_t>((rank_ - root + p) % p);
  const auto abs = [root, p](std::uint32_t m) {
    return (static_cast<int>(m) + root) % p;
  };
  std::vector<std::uint8_t> scratch(bytes);
  for (const std::uint32_t child : sched.children(me)) {
    recv(abs(child), kTagReduce, scratch.data(), bytes);
    coll_sink(bytes, sched.level(child));
    combine(inout, scratch.data(), n);
  }
  const int parent = sched.parent(me);
  if (parent >= 0) {
    coll_send(abs(static_cast<std::uint32_t>(parent)), kTagReduce, inout,
              bytes, sched.level(me), abs(static_cast<std::uint32_t>(parent)));
  }
}

void Comm::allreduce_impl(void* inout, std::size_t n, std::size_t elem,
                          const CombineFn& combine) {
  // Fused one-pass allreduce through rank 0 (flat star in central mode or
  // below the switchover, the hierarchy tree above it): partials combine on
  // the way up, the result returns down the same schedule. Same 2(p−1)
  // message count as the old reduce-then-bcast pair, but one traversal of
  // latency each way instead of two chained binomial trees.
  const std::size_t bytes = n * elem;
  const coll::Schedule sched = coll_schedule(0, bytes);
  const auto me = static_cast<std::uint32_t>(rank_);
  std::vector<std::uint8_t> scratch(bytes);
  for (const std::uint32_t child : sched.children(me)) {
    recv(static_cast<int>(child), kTagReduce, scratch.data(), bytes);
    coll_sink(bytes, sched.level(child));
    combine(inout, scratch.data(), n);
  }
  const int parent = sched.parent(me);
  if (parent >= 0) {
    coll_send(parent, kTagReduce, inout, bytes, sched.level(me), parent);
    recv(parent, kTagBcast, inout, bytes);
  }
  for (const std::uint32_t child : sched.children(me)) {
    coll_send(static_cast<int>(child), kTagBcast, inout, bytes,
              sched.level(child), rank_);
  }
}

} // namespace omsp::mpi
