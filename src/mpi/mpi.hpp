// Mini-MPI: the message-passing baseline of the paper's evaluation.
//
// The paper compares TreadMarks against MPICH, whose shared-memory device
// makes intra-node messages cheap; Table 2 therefore reports both total and
// off-node traffic for MPI. This library reproduces that cost structure on
// the simulated cluster: every rank is a thread, sends are eager (buffered),
// and each message is accounted and charged through the same
// Router/Topology/CostModel stack as the DSM. A message's cost is the sum of
// the topology stages on the src->dst path (intra-node traffic crosses only
// the shared-memory stage; switch traffic pays each network tier it
// traverses), and Table 2's off-node split counts exactly the messages whose
// path rises above the node stage.
//
// Collectives default to the classic MPICH algorithms of the era:
// dissemination barrier, binomial-tree bcast/reduce, pairwise alltoall,
// binomial gather — so message *counts* scale the way the paper's MPI
// columns do. Allreduce is a fused star/tree (partials combine on the way up
// to rank 0, the result returns down the same schedule) rather than a
// chained reduce+bcast, which halves its latency at identical message count.
// Under coll::Options tree mode (OMSP_COLL=tree, or MpiWorld::set_coll),
// barrier/bcast/reduce/allreduce instead follow the hierarchical
// coll::Schedule derived from the topology — the same engine the DSM
// barrier uses — with the flat-vs-tree switchover by payload size and
// segment-pipelined tree broadcasts, so the MPI baseline stays an honest
// comparison at large node counts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "net/collective.hpp"
#include "net/router.hpp"
#include "sim/cost_model.hpp"
#include "sim/topology.hpp"
#include "sim/virtual_clock.hpp"

namespace omsp::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Comm;

class MpiWorld {
public:
  MpiWorld(sim::Topology topo, sim::CostModel cost);
  // With fault injection: when `perturb.enabled`, wraps the transport in a
  // PerturbingTransport (seeded jitter/duplication/loss + the reliable-
  // delivery layer). Loss-only options (jitter/dup/reorder zeroed) keep
  // makespans a pure function of the seed for named-source programs: loss
  // schedules are drawn from per-link split streams, never host order.
  MpiWorld(sim::Topology topo, sim::CostModel cost,
           const net::PerturbOptions& perturb);
  ~MpiWorld();

  MpiWorld(const MpiWorld&) = delete;
  MpiWorld& operator=(const MpiWorld&) = delete;

  // Run fn on every rank (spawns size() threads and joins them).
  void run(const std::function<void(Comm&)>& fn);

  int size() const { return static_cast<int>(topo_.nprocs()); }
  const sim::Topology& topology() const { return topo_; }
  net::Router& router() { return *router_; }
  StatsSnapshot stats() const { return router_->snapshot(); }
  void reset_stats() { router_->reset_stats(); }

  // Virtual makespan of the last run(): max over ranks of their final clock.
  double makespan_us() const { return makespan_us_; }

  // Collective engine selection (resolved from OMSP_COLL at construction).
  // Explicit override for tests and benches; call before run().
  void set_coll(const coll::Options& opts) { coll_ = opts; }
  const coll::Options& coll() const { return coll_; }

private:
  friend class Comm;

  struct Message {
    int src;
    int tag;
    std::vector<std::uint8_t> payload;
    double arrive_time_us;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  sim::Topology topo_;
  std::unique_ptr<net::Router> router_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  coll::Options coll_;
  double makespan_us_ = 0;
};

// Per-rank communicator handle; passed to the rank function by run().
class Comm {
public:
  Comm(MpiWorld& world, int rank, sim::VirtualClock& clock)
      : world_(world), rank_(rank), clock_(clock) {}

  int rank() const { return rank_; }
  int size() const { return world_.size(); }
  sim::VirtualClock& clock() { return clock_; }

  // --- point to point ---------------------------------------------------------
  // Eager (buffered) send: copies the payload, accounts/charges the message,
  // returns immediately — MPICH's eager protocol for the paper's message
  // sizes.
  void send(int dst, int tag, const void* data, std::size_t bytes);
  // Blocking receive with (src, tag) matching; kAnySource/kAnyTag wildcard.
  // Returns the actual byte count (must fit in `bytes`); out_src reports the
  // matched sender when non-null.
  std::size_t recv(int src, int tag, void* data, std::size_t bytes,
                   int* out_src = nullptr);
  // Combined exchange (no deadlock regardless of order).
  void sendrecv(int dst, int send_tag, const void* send_data,
                std::size_t send_bytes, int src, int recv_tag, void* recv_data,
                std::size_t recv_bytes);

  // --- nonblocking point-to-point ----------------------------------------------
  // Isend completes immediately (eager buffered send, like MPICH's short
  // protocol); Irecv registers interest and wait() blocks until the matching
  // message arrives and is copied out.
  struct Request {
    bool is_recv = false;
    bool done = false;
    int src = kAnySource;
    int tag = kAnyTag;
    void* buffer = nullptr;
    std::size_t capacity = 0;
    std::size_t received = 0;
  };

  Request isend(int dst, int tag, const void* data, std::size_t bytes) {
    send(dst, tag, data, bytes);
    Request r;
    r.done = true;
    return r;
  }

  Request irecv(int src, int tag, void* data, std::size_t bytes) {
    Request r;
    r.is_recv = true;
    r.src = src;
    r.tag = tag;
    r.buffer = data;
    r.capacity = bytes;
    return r;
  }

  // Block until the request completes; returns bytes received for receives.
  std::size_t wait(Request& r) {
    if (!r.done && r.is_recv) {
      r.received = recv(r.src, r.tag, r.buffer, r.capacity);
      r.done = true;
    }
    return r.received;
  }

  void waitall(std::vector<Request>& rs) {
    for (auto& r : rs) wait(r);
  }

  template <typename T> void send_n(int dst, int tag, const T* data, std::size_t n) {
    send(dst, tag, data, n * sizeof(T));
  }
  template <typename T> void recv_n(int src, int tag, T* data, std::size_t n) {
    const std::size_t got = recv(src, tag, data, n * sizeof(T));
    OMSP_CHECK(got == n * sizeof(T));
  }

  // --- collectives -------------------------------------------------------------
  void barrier();
  void bcast(int root, void* data, std::size_t bytes);
  template <typename T> void bcast_n(int root, T* data, std::size_t n) {
    bcast(root, data, n * sizeof(T));
  }

  // Element-wise reduce of inout[0..n) to the root (binomial tree by
  // default, the hierarchical schedule in tree mode).
  template <typename T, typename Op>
  void reduce(int root, T* inout, std::size_t n, Op op) {
    reduce_impl(root, inout, n, sizeof(T), combine_fn<T, Op>(op));
  }

  // Fused allreduce: partials combine up the schedule to rank 0 and the
  // result returns down the same schedule in one pass — 2(p−1) messages
  // like reduce+bcast, at the latency of a single traversal each way.
  template <typename T, typename Op>
  void allreduce(T* inout, std::size_t n, Op op) {
    allreduce_impl(inout, n, sizeof(T), combine_fn<T, Op>(op));
  }

  // Pairwise exchange: send[r*count..] of each rank lands in recv[me*count..]
  // of rank r.
  template <typename T>
  void alltoall(const T* send_buf, T* recv_buf, std::size_t count) {
    const int p = size();
    std::memcpy(recv_buf + rank_ * count, send_buf + rank_ * count,
                count * sizeof(T));
    for (int step = 1; step < p; ++step) {
      const int dst = (rank_ + step) % p;
      const int src = (rank_ - step + p) % p;
      sendrecv(dst, kTagAlltoall, send_buf + dst * count, count * sizeof(T),
               src, kTagAlltoall, recv_buf + src * count, count * sizeof(T));
    }
  }

  // Variable-size pairwise exchange: send `send_counts[r]` elements starting
  // at send_offsets[r] to rank r; receive into recv_offsets[s].
  template <typename T>
  void alltoallv(const T* send_buf, const std::size_t* send_counts,
                 const std::size_t* send_offsets, T* recv_buf,
                 const std::size_t* recv_counts,
                 const std::size_t* recv_offsets) {
    const int p = size();
    std::memcpy(recv_buf + recv_offsets[rank_], send_buf + send_offsets[rank_],
                send_counts[rank_] * sizeof(T));
    for (int step = 1; step < p; ++step) {
      const int dst = (rank_ + step) % p;
      const int src = (rank_ - step + p) % p;
      send(dst, kTagAlltoall, send_buf + send_offsets[dst],
           send_counts[dst] * sizeof(T));
      const std::size_t got = recv(src, kTagAlltoall,
                                   recv_buf + recv_offsets[src],
                                   recv_counts[src] * sizeof(T));
      OMSP_CHECK(got == recv_counts[src] * sizeof(T));
    }
  }

  // Binomial-tree gather of per-rank blocks (count elements each) to root.
  template <typename T>
  void gather(int root, const T* send_buf, T* recv_buf, std::size_t count) {
    gather_impl(root, send_buf, recv_buf, count * sizeof(T));
  }

  template <typename T>
  void allgather(const T* send_buf, T* recv_buf, std::size_t count) {
    gather(0, send_buf, recv_buf, count);
    bcast(0, recv_buf, count * sizeof(T) * static_cast<std::size_t>(size()));
  }

  // Root distributes block r of send_buf to rank r (linear scatter, like
  // early MPICH's MPI_Scatter for small communicators).
  template <typename T>
  void scatter(int root, const T* send_buf, T* recv_buf, std::size_t count) {
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r == root)
          std::memcpy(recv_buf, send_buf + r * count, count * sizeof(T));
        else
          send(r, kTagScatter, send_buf + r * count, count * sizeof(T));
      }
    } else {
      recv(root, kTagScatter, recv_buf, count * sizeof(T));
    }
  }

  // Inclusive prefix scan: recv_buf = op over ranks 0..me of send values
  // (linear pipeline, matching MPI_Scan's semantics).
  template <typename T, typename Op>
  void scan(const T* send_buf, T* recv_buf, std::size_t n, Op op) {
    if (rank_ == 0) {
      std::memcpy(recv_buf, send_buf, n * sizeof(T));
    } else {
      recv(rank_ - 1, kTagScan, recv_buf, n * sizeof(T));
      for (std::size_t i = 0; i < n; ++i)
        recv_buf[i] = op(recv_buf[i], send_buf[i]);
    }
    if (rank_ + 1 < size()) send(rank_ + 1, kTagScan, recv_buf, n * sizeof(T));
  }

private:
  static constexpr int kTagBarrier = -100;
  static constexpr int kTagBcast = -101;
  static constexpr int kTagReduce = -102;
  static constexpr int kTagAlltoall = -103;
  static constexpr int kTagGather = -104;
  static constexpr int kTagScatter = -105;
  static constexpr int kTagScan = -106;

  using CombineFn = std::function<void(void*, const void*, std::size_t)>;
  template <typename T, typename Op> static CombineFn combine_fn(Op op) {
    return [op](void* a, const void* b, std::size_t count) {
      T* ta = static_cast<T*>(a);
      const T* tb = static_cast<const T*>(b);
      for (std::size_t i = 0; i < count; ++i) ta[i] = op(ta[i], tb[i]);
    };
  }

  void reduce_impl(int root, void* inout, std::size_t n, std::size_t elem,
                   const CombineFn& combine);
  void allreduce_impl(void* inout, std::size_t n, std::size_t elem,
                      const CombineFn& combine);
  void gather_impl(int root, const void* send_buf, void* recv_buf,
                   std::size_t block_bytes);

  // --- hierarchical-collective machinery (coll::Schedule) --------------------
  bool tree_mode() const;
  // Schedule over root-relative members (member 0 = root) with each member
  // placed on its absolute rank's node; build() applies the flat-vs-tree
  // switchover for `payload_bytes`.
  coll::Schedule coll_schedule(int root, std::size_t payload_bytes) const;
  // Send one schedule edge: charges the sender's injection occupancy (so
  // consecutive fan-out sends serialize; zero with default cost knobs) and,
  // in tree mode, books the kCollStage event + coll_* counters.
  void coll_send(int dst, int tag, const void* data, std::size_t bytes,
                 std::uint32_t level, int leader);
  // Receiver-side fan-in serialization for one absorbed schedule message;
  // `level` is the topology stage the absorbed edge crossed.
  void coll_sink(std::size_t bytes, std::uint32_t level);
  void sched_barrier();
  void sched_bcast(int root, void* data, std::size_t bytes);
  void sched_reduce(int root, void* inout, std::size_t n, std::size_t elem,
                    const CombineFn& combine);

  MpiWorld& world_;
  int rank_;
  sim::VirtualClock& clock_;
};

} // namespace omsp::mpi
