// Low-overhead structured tracing for the DSM protocol.
//
// Design:
//  * One process-global active Tracer (installed by the DsmSystem whose
//    Config enabled tracing). Emission sites call the OMSP_TRACE_EVENT macro,
//    which is a single relaxed atomic load plus a predicted-untaken branch
//    when tracing is off — cheap enough for the fault and message hot paths.
//  * Each emitting thread owns a single-producer/single-consumer ring buffer
//    registered on first emission. Producers never take a lock and never
//    block: a full ring drops the event and counts it (the drop counter is
//    part of the trace header, and `omsp-trace check` refuses to certify a
//    lossy trace).
//  * Rings are drained at quiescent points — barrier episodes (every worker
//    is parked), parallel-region joins, and system shutdown — into one
//    collected vector that the sinks serialize.
//  * Timestamps are the emitting thread's *virtual* clock, so exported traces
//    line up with the simulated SP2 timeline, not host scheduling noise.
//
// Thread-track re-binding across DsmSystem lifetimes is handled with a global
// generation counter: a cached thread-local ring is revalidated against the
// active tracer's generation on every emit, so stale pointers from a
// destroyed tracer are never dereferenced.
//
// Define OMSP_TRACE_COMPILED_OUT to compile every emission site down to
// nothing (the "compile-time-cheap" escape hatch for overhead audits).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/event.hpp"

namespace omsp::trace {

// Tracing configuration, embedded in tmk::Config as `config.trace`.
struct Options {
  bool enabled = false;
  // Per-thread ring capacity in events (rounded up to a power of two).
  // Rings are drained at every barrier episode, so this bounds the events
  // emitted between two quiescent points, not per run.
  std::size_t ring_events = 1u << 16;
  // Sink paths written at system shutdown; empty = skip that sink.
  std::string binary_path; // raw events + embedded StatsSnapshot (omsp-trace)
  std::string json_path;   // Chrome trace_event JSON (Perfetto/chrome://tracing)

  // Environment fallback: OMSP_TRACE_BIN=<path> / OMSP_TRACE_JSON=<path>
  // enable tracing with the given sink(s) without touching code.
  static Options from_env();
};

// SPSC ring: the owning thread pushes, the quiescent-point drainer pops.
class Ring {
public:
  explicit Ring(std::size_t capacity);

  // Producer side. Returns false (and counts a drop) when full.
  bool push(const Event& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h - t >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[h & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: pop everything currently published, in emission order.
  template <typename Fn> void drain(Fn&& fn) {
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    for (; t != h; ++t) fn(slots_[t & mask_]);
    tail_.store(t, std::memory_order_release);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void reset_dropped() { dropped_.store(0, std::memory_order_relaxed); }
  std::size_t capacity() const { return slots_.size(); }

private:
  std::vector<Event> slots_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

class Tracer {
public:
  explicit Tracer(Options opts);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- global activation ----------------------------------------------------
  // At most one tracer is active at a time; install() is a no-op (returns
  // false) if another is already active.
  bool install();
  void uninstall();
  static Tracer* active() {
    return g_active.load(std::memory_order_relaxed);
  }

  // Bind the calling thread's track id (the global rank). Plain thread-local
  // store; called unconditionally by the worker pool.
  static void bind_thread(std::uint32_t track);

  // --- emission (hot path; use the macro) -----------------------------------
  void emit(EventKind kind, ContextId ctx, std::uint64_t arg0 = 0,
            std::uint64_t arg1 = 0, std::uint16_t flags = 0,
            double dur_us = 0);

  // --- quiescent-point operations -------------------------------------------
  // Pop every ring into the collected vector. Safe whenever no thread is
  // emitting concurrently with its own ring being drained twice (the SPSC
  // contract); the runtime calls it only while workers are parked.
  void drain_all();
  // Drained events so far (drain_all first for completeness).
  const std::vector<Event>& events() const { return collected_; }
  std::vector<Event> snapshot_events() {
    drain_all();
    return collected_;
  }
  // Total events dropped to full rings since the last clear().
  std::uint64_t dropped_total() const;
  // Drop all collected events and reset drop counters. Paired with
  // StatsBoard::reset so trace totals and counters stay comparable.
  void clear();

  // Drain everything and write the configured sinks, embedding `stats` (the
  // counter snapshot the trace must reconcile with) in the binary header.
  void finish(const StatsSnapshot& stats);

  const Options& options() const { return opts_; }

private:
  Ring* local_ring();

  static std::atomic<Tracer*> g_active;

  Options opts_;
  std::uint64_t generation_;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;

  std::mutex collect_mutex_;
  std::vector<Event> collected_;
  std::uint64_t dropped_before_clear_ = 0; // from rings retired by clear()
};

} // namespace omsp::trace

// Emission macro. `kind_` is the bare EventKind member name; remaining
// arguments forward to Tracer::emit (arg0, arg1, flags, dur_us).
#ifdef OMSP_TRACE_COMPILED_OUT
#define OMSP_TRACE_EVENT(kind_, ctx_, ...)                                     \
  do {                                                                         \
  } while (0)
#else
#define OMSP_TRACE_EVENT(kind_, ctx_, ...)                                     \
  do {                                                                         \
    if (::omsp::trace::Tracer* omsp_tr_ = ::omsp::trace::Tracer::active();     \
        omsp_tr_ != nullptr) [[unlikely]]                                      \
      omsp_tr_->emit(::omsp::trace::EventKind::kind_, (ctx_), ##__VA_ARGS__);  \
  } while (0)
#endif
