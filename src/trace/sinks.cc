#include "trace/sinks.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "common/serialize.hpp"
#include "net/message.hpp"
#include "trace/tracer.hpp"

namespace omsp::trace {

std::vector<std::uint8_t> encode_trace(const std::vector<Event>& events,
                                       std::uint64_t dropped,
                                       const StatsSnapshot& stats) {
  ByteWriter w(64 + events.size() * kEventWireBytes);
  w.put_bytes(kTraceMagic, sizeof kTraceMagic);
  w.put<std::uint32_t>(kTraceVersion);
  w.put<std::uint64_t>(dropped);
  const auto ncounters = static_cast<std::uint32_t>(Counter::kCount);
  w.put<std::uint32_t>(ncounters);
  for (std::uint32_t i = 0; i < ncounters; ++i) {
    w.put_string(counter_name(static_cast<Counter>(i)));
    w.put<std::uint64_t>(stats.v[i]);
  }
  w.put<std::uint64_t>(events.size());
  for (const Event& e : events) serialize_event(e, w);
  return w.take();
}

TraceFile decode_trace(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  char magic[sizeof kTraceMagic];
  r.get_bytes(magic, sizeof magic);
  OMSP_CHECK_MSG(std::memcmp(magic, kTraceMagic, sizeof magic) == 0,
                 "not an omsp trace file (bad magic)");
  const auto version = r.get<std::uint32_t>();
  OMSP_CHECK_MSG(version == kTraceVersion, "unsupported trace version");

  TraceFile tf;
  tf.dropped = r.get<std::uint64_t>();
  const auto ncounters = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < ncounters; ++i) {
    std::string name = r.get_string();
    const auto value = r.get<std::uint64_t>();
    tf.raw_counters.emplace_back(name, value);
    // Match by name so traces survive counter-enum reordering.
    for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c)
      if (name == counter_name(static_cast<Counter>(c))) tf.stats.v[c] = value;
  }
  const auto nevents = r.get<std::uint64_t>();
  tf.events.reserve(nevents);
  for (std::uint64_t i = 0; i < nevents; ++i)
    tf.events.push_back(deserialize_event(r));
  OMSP_CHECK_MSG(r.done(), "trailing bytes after trace events");
  return tf;
}

void write_binary(const std::string& path, const std::vector<Event>& events,
                  std::uint64_t dropped, const StatsSnapshot& stats) {
  const auto bytes = encode_trace(events, dropped, stats);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  OMSP_CHECK_MSG(f != nullptr, "cannot open trace file for writing");
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  OMSP_CHECK_MSG(n == bytes.size(), "short write to trace file");
}

TraceFile read_binary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  OMSP_CHECK_MSG(f != nullptr, "cannot open trace file for reading");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  OMSP_CHECK_MSG(n == bytes.size(), "short read from trace file");
  return decode_trace(bytes.data(), bytes.size());
}

namespace {

void append_args(std::string& out, const Event& e) {
  char buf[160];
  switch (e.kind) {
  case EventKind::kMessage:
    std::snprintf(buf, sizeof buf,
                  "{\"bytes\":%" PRIu64 ",\"type\":\"%s\",\"dst\":%u,"
                  "\"offnode\":%d,\"perturbed\":%d}",
                  e.arg0, net::msg_name(net::message_type_of_arg1(e.arg1)),
                  net::message_dst_of_arg1(e.arg1),
                  (e.flags & kFlagOffNode) ? 1 : 0,
                  (e.flags & kFlagPerturbed) ? 1 : 0);
    break;
  case EventKind::kPageFault:
    std::snprintf(buf, sizeof buf, "{\"page\":%" PRIu64 ",\"write\":%d}",
                  e.arg0, (e.flags & kFlagWrite) ? 1 : 0);
    break;
  case EventKind::kLockAcquire:
    std::snprintf(buf, sizeof buf, "{\"lock\":%" PRIu64 ",\"remote\":%d}",
                  e.arg0, (e.flags & kFlagRemote) ? 1 : 0);
    break;
  case EventKind::kLockGrant:
    std::snprintf(buf, sizeof buf, "{\"lock\":%" PRIu64 ",\"to\":%" PRIu64 "}",
                  e.arg0, e.arg1);
    break;
  case EventKind::kDiffCreate:
  case EventKind::kDiffApply:
  case EventKind::kDiffFetch:
  case EventKind::kDiffFetchAsync:
  case EventKind::kPrefetchHit:
    std::snprintf(buf, sizeof buf, "{\"page\":%" PRIu64 ",\"bytes\":%" PRIu64
                  ",\"offnode\":%d}",
                  e.arg0, e.arg1, (e.flags & kFlagOffNode) ? 1 : 0);
    break;
  case EventKind::kMessageLost:
  case EventKind::kRetransmit:
  case EventKind::kAck:
    std::snprintf(buf, sizeof buf,
                  "{\"arg0\":%" PRIu64 ",\"type\":\"%s\",\"dst\":%u}", e.arg0,
                  net::msg_name(net::message_type_of_arg1(e.arg1)),
                  net::message_dst_of_arg1(e.arg1));
    break;
  case EventKind::kCollStage:
    std::snprintf(buf, sizeof buf,
                  "{\"bytes\":%" PRIu64 ",\"level\":%" PRIu64
                  ",\"leader\":%" PRIu64 "}",
                  e.arg0, e.arg1 >> 32, e.arg1 & std::uint64_t{0xFFFFFFFF});
    break;
  case EventKind::kRaceDetected:
    std::snprintf(buf, sizeof buf,
                  "{\"page\":%" PRIu64 ",\"lo\":%" PRIu64 ",\"hi\":%" PRIu64
                  ",\"ctx_a\":%" PRIu64 ",\"ctx_b\":%" PRIu64
                  ",\"seq_a\":%" PRIu64 ",\"seq_b\":%" PRIu64 "}",
                  e.arg0 >> 32, (e.arg0 >> 16) & std::uint64_t{0xFFFF},
                  e.arg0 & std::uint64_t{0xFFFF}, e.arg1 >> 48,
                  (e.arg1 >> 32) & std::uint64_t{0xFFFF},
                  (e.arg1 >> 16) & std::uint64_t{0xFFFF},
                  e.arg1 & std::uint64_t{0xFFFF});
    break;
  default:
    std::snprintf(buf, sizeof buf, "{\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64
                  "}",
                  e.arg0, e.arg1);
    break;
  }
  out += buf;
}

} // namespace

std::string chrome_trace_json(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 128 + 4096);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Metadata: name the per-context process groups and per-rank tracks so
  // Perfetto's timeline reads "node N / rank R" instead of bare ids.
  std::vector<std::pair<ContextId, std::uint32_t>> tracks;
  for (const Event& e : events) {
    std::pair<ContextId, std::uint32_t> key{e.ctx, e.rank};
    bool seen = false;
    for (const auto& t : tracks)
      if (t == key) {
        seen = true;
        break;
      }
    if (!seen) tracks.push_back(key);
  }
  char buf[256];
  bool first = true;
  for (const auto& [ctx, rank] : tracks) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"ctx%u\"}},\n",
                  ctx, ctx);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":%u,\"args\":{\"name\":\"rank%u\"}}",
                  ctx, rank, rank);
    out += buf;
  }

  for (const Event& e : events) {
    if (!first) out += ",\n";
    first = false;
    const bool slice = e.dur_us > 0;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"omsp\",\"ph\":\"%s\","
                  "\"ts\":%.3f,%s\"pid\":%u,\"tid\":%u,\"args\":",
                  event_name(e.kind), slice ? "X" : "i", e.ts_us,
                  slice ? "" : "\"s\":\"t\",", e.ctx, e.rank);
    out += buf;
    append_args(out, e);
    if (slice) {
      std::snprintf(buf, sizeof buf, ",\"dur\":%.3f}", e.dur_us);
      out += buf;
    } else {
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_json(const std::string& path,
                       const std::vector<Event>& events) {
  const std::string json = chrome_trace_json(events);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  OMSP_CHECK_MSG(f != nullptr, "cannot open json trace file for writing");
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  OMSP_CHECK_MSG(n == json.size(), "short write to json trace file");
}

StatsSnapshot reconstruct_counters(const std::vector<Event>& events) {
  StatsSnapshot s;
  for (const Event& e : events) {
    switch (e.kind) {
    case EventKind::kMessage:
      s[Counter::kMsgsSent] += 1;
      s[Counter::kBytesSent] += e.arg0;
      if (e.flags & kFlagOffNode) {
        s[Counter::kMsgsOffNode] += 1;
        s[Counter::kBytesOffNode] += e.arg0;
      }
      break;
    case EventKind::kPageFault:
      s[Counter::kPageFaults] += 1;
      s[(e.flags & kFlagWrite) ? Counter::kWriteFaults
                               : Counter::kReadFaults] += 1;
      break;
    case EventKind::kTwinCreate:
      s[Counter::kTwins] += 1;
      break;
    case EventKind::kDiffCreate:
      s[Counter::kDiffsCreated] += 1;
      s[Counter::kDiffBytesCreated] += e.arg1;
      break;
    case EventKind::kDiffApply:
      s[Counter::kDiffsApplied] += 1;
      break;
    case EventKind::kMprotect:
      s[Counter::kMprotect] += 1;
      break;
    case EventKind::kLockAcquire:
      s[Counter::kLockAcquires] += 1;
      if (e.flags & kFlagRemote) s[Counter::kLockRemoteAcquires] += 1;
      break;
    case EventKind::kBarrierArrive:
      s[Counter::kBarriers] += 1;
      break;
    case EventKind::kIntervalClose:
      s[Counter::kIntervals] += 1;
      break;
    case EventKind::kWriteNoticesSent:
      s[Counter::kWriteNoticesSent] += e.arg0;
      break;
    case EventKind::kWriteNoticesRecv:
      s[Counter::kWriteNoticesRecv] += e.arg0;
      break;
    case EventKind::kInvalidate:
      s[Counter::kPageInvalidations] += 1;
      break;
    case EventKind::kFullPageFetch:
      s[Counter::kFullPageFetches] += 1;
      break;
    case EventKind::kPrefetchBatch:
      s[Counter::kPrefetchBatches] += 1;
      s[Counter::kPrefetchPagesFetched] += e.arg1;
      break;
    case EventKind::kPrefetchHit:
      s[Counter::kPrefetchHits] += 1;
      break;
    case EventKind::kMessageLost:
      s[Counter::kMsgsLost] += 1;
      break;
    case EventKind::kRetransmit:
      s[Counter::kRetransmits] += 1;
      break;
    case EventKind::kAck:
      s[Counter::kAcksSent] += 1;
      break;
    case EventKind::kCollStage:
      s[Counter::kCollStages] += 1;
      s[Counter::kCollBytes] += e.arg0;
      break;
    case EventKind::kZeroCopyDeliver:
      s[Counter::kZeroCopyDeliveries] += 1;
      s[Counter::kZeroCopyBytes] += e.arg1;
      break;
    case EventKind::kRaceCheck:
      s[Counter::kRaceChecks] += e.arg0;
      break;
    case EventKind::kRaceDetected:
      s[Counter::kRacesDetected] += 1;
      break;
    case EventKind::kContentionWait:
      s[Counter::kContentionStageWaits] += 1;
      break;
    case EventKind::kLockGrant:
    case EventKind::kBarrierWait:
    case EventKind::kDiffFetch:
    case EventKind::kDiffFetchAsync:
    case EventKind::kGcEpisode:
    case EventKind::kRegionBegin:
    case EventKind::kRegionEnd:
    case EventKind::kCount:
      break; // analysis-only kinds have no counter mapping
    }
  }
  return s;
}

// Tracer::finish lives here so tracer.cc stays sink-agnostic.
void Tracer::finish(const StatsSnapshot& stats) {
  drain_all();
  if (!opts_.binary_path.empty())
    write_binary(opts_.binary_path, collected_, dropped_total(), stats);
  if (!opts_.json_path.empty()) write_chrome_json(opts_.json_path, collected_);
}

} // namespace omsp::trace
