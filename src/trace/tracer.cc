#include "trace/tracer.hpp"

#include <cstdlib>

namespace omsp::trace {

namespace {

// Bumped on every install; a thread-local cached ring is only valid while its
// generation matches the active tracer's, which makes stale pointers from a
// destroyed tracer unreachable without any hot-path locking.
std::atomic<std::uint64_t> g_generation{0};

struct LocalRef {
  std::uint64_t generation = 0;
  Ring* ring = nullptr;
};
thread_local LocalRef t_local;
thread_local std::uint32_t t_track = 0;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

} // namespace

std::atomic<Tracer*> Tracer::g_active{nullptr};

Options Options::from_env() {
  Options o;
  if (const char* bin = std::getenv("OMSP_TRACE_BIN"); bin != nullptr) {
    o.binary_path = bin;
    o.enabled = true;
  }
  if (const char* json = std::getenv("OMSP_TRACE_JSON"); json != nullptr) {
    o.json_path = json;
    o.enabled = true;
  }
  return o;
}

Ring::Ring(std::size_t capacity) {
  capacity = round_up_pow2(capacity < 2 ? 2 : capacity);
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

Tracer::Tracer(Options opts) : opts_(std::move(opts)), generation_(0) {}

Tracer::~Tracer() { uninstall(); }

bool Tracer::install() {
  Tracer* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_release,
                                        std::memory_order_relaxed))
    return false;
  generation_ = g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  return true;
}

void Tracer::uninstall() {
  Tracer* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_release,
                                   std::memory_order_relaxed);
}

void Tracer::bind_thread(std::uint32_t track) {
  t_track = track;
  // Eagerly register this thread's ring: emissions also happen from the
  // SIGSEGV handler (page faults ARE the protocol), and pre-registration
  // keeps that path free of the registry mutex.
  if (Tracer* t = active(); t != nullptr) (void)t->local_ring();
}

Ring* Tracer::local_ring() {
  if (t_local.generation == generation_ && t_local.ring != nullptr)
    return t_local.ring;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  rings_.push_back(std::make_unique<Ring>(opts_.ring_events));
  t_local = LocalRef{generation_, rings_.back().get()};
  return t_local.ring;
}

void Tracer::emit(EventKind kind, ContextId ctx, std::uint64_t arg0,
                  std::uint64_t arg1, std::uint16_t flags, double dur_us) {
  Event e;
  e.kind = kind;
  e.ctx = ctx;
  e.rank = t_track;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.flags = flags;
  e.dur_us = dur_us;
  // ts is the event's virtual START time: emission happens at completion for
  // duration-carrying events, so back the stamp up by the duration.
  if (const auto* clock = sim::VirtualClock::current(); clock != nullptr)
    e.ts_us = clock->now_us() - dur_us;
  local_ring()->push(e);
}

void Tracer::drain_all() {
  std::lock_guard<std::mutex> clock(collect_mutex_);
  std::lock_guard<std::mutex> rlock(registry_mutex_);
  for (auto& ring : rings_)
    ring->drain([&](const Event& e) { collected_.push_back(e); });
}

std::uint64_t Tracer::dropped_total() const {
  std::lock_guard<std::mutex> rlock(registry_mutex_);
  std::uint64_t n = dropped_before_clear_;
  for (const auto& ring : rings_) n += ring->dropped();
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> clock(collect_mutex_);
  std::lock_guard<std::mutex> rlock(registry_mutex_);
  for (auto& ring : rings_) {
    ring->drain([](const Event&) {});
    ring->reset_dropped();
  }
  collected_.clear();
  dropped_before_clear_ = 0;
}

} // namespace omsp::trace
