// omsp::trace — typed protocol events.
//
// One Event is a fixed-size, trivially-copyable record of a single protocol
// action, stamped with the emitting thread's virtual clock and the context it
// happened in. The taxonomy deliberately mirrors the StatsBoard counters:
// every counter increment in the runtime has a corresponding event emission
// at the same site, so a trace can be folded back into a StatsSnapshot and
// compared against the live counters — a built-in consistency audit of the
// stats layer (see reconstruct_counters in sinks.hpp and `omsp-trace check`).
//
// Field use per kind is documented on the enum; unused fields are zero.
#pragma once

#include <array>
#include <cstdint>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace omsp::trace {

enum class EventKind : std::uint16_t {
  // Counter-bearing events (each maps onto one or more StatsBoard counters).
  kMessage = 0,      // arg0 = wire bytes (payload + header),
                     // arg1 = (msg type << 32) | dst ctx (net/message.hpp);
                     // kFlagOffNode when it crossed a physical node,
                     // kFlagPerturbed on transport-injected duplicates
  kPageFault,        // arg0 = page; kFlagWrite; dur = fault service vtime
  kTwinCreate,       // arg0 = page
  kDiffCreate,       // arg0 = page, arg1 = encoded diff bytes
  kDiffApply,        // arg0 = page, arg1 = encoded diff bytes
  kMprotect,         // arg0 = page, arg1 = new protection (0/1/2 = N/R/RW)
  kLockAcquire,      // arg0 = lock id; kFlagRemote; dur = acquire wait vtime
  kLockGrant,        // arg0 = lock id, arg1 = acquiring ctx; emitted by releaser
  kBarrierArrive,    // one per context per episode, arg0 = generation
  kIntervalClose,    // arg0 = interval seq, arg1 = pages listed (write notices)
  kWriteNoticesSent, // arg0 = notice count piggybacked on one release message
  kWriteNoticesRecv, // arg0 = notice count incorporated from one record batch
  kInvalidate,       // arg0 = page
  kFullPageFetch,    // arg0 = page; home-based protocol page served by home

  // Analysis-only events (no counter mapping).
  kBarrierWait,      // per rank; arg0 = generation; dur = arrival..departure
  kDiffFetch,        // arg0 = page, arg1 = reply bytes; kFlagOffNode per hop
  kGcEpisode,        // arg0 = stored diff bytes that triggered the episode
  kRegionBegin,      // arg0 = parallel region epoch (OpenMP layer)
  kRegionEnd,        // arg0 = parallel region epoch

  // Appended kinds (values are wire-stable; append, never renumber).
  kDiffFetchAsync,   // analysis-only: one overlapped fetch round; arg0 = page,
                     // arg1 = total reply bytes; dur = stall (issue..last
                     // reply completion on the faulting thread's clock)
  kPrefetchBatch,    // counter-bearing: one kDiffRequestBatch issued at
                     // barrier departure; arg0 = creator ctx, arg1 = pages
                     // (kPrefetchBatches += 1, kPrefetchPagesFetched += arg1)
  kPrefetchHit,      // counter-bearing: a fault-time creator need satisfied
                     // entirely from prefetched diffs; arg0 = page,
                     // arg1 = buffered bytes used; dur = residual stall
                     // (0 = batch completed before first touch)
  kMessageLost,      // counter-bearing: one-way delivery dropped by the lossy
                     // transport; arg0 = wire bytes, arg1 = (type<<32)|dst,
                     // ctx = the sender of the dropped copy
                     // (kMsgsLost += 1). The lost copy's kMessage event was
                     // emitted by account() — it went on the wire.
  kRetransmit,       // counter-bearing: a retransmission issued after a
                     // modeled RTO expiry; arg0 = attempt number (1-based),
                     // arg1 = (type<<32)|dst; dur = the RTO charged
                     // (kRetransmits += 1)
  kAck,              // counter-bearing: explicit ack for a reliable notice
                     // channel; arg0 = acked seq, arg1 = (type<<32)|dst of
                     // the acked notice; ctx = the acking side
                     // (kAcksSent += 1; the ack's own kMessage event is
                     // emitted by account() like any wire message)
  kCollStage,        // counter-bearing: one edge of a hierarchical collective
                     // schedule traversed (tree mode only); arg0 = wire
                     // bytes, arg1 = (level<<32)|leader where level is the
                     // topology stage the edge crosses and leader is the
                     // receiving (up pass) or sending (down pass) leader;
                     // ctx = the sender (kCollStages += 1,
                     // kCollBytes += arg0). The message's own kMessage event
                     // is emitted by account() like any wire message.
  kZeroCopyDeliver,  // counter-bearing: one same-node payload handed to the
                     // receiver as a view into the delivered buffer instead
                     // of a deserialize copy (OMSP_ZEROCOPY); arg0 = peer
                     // ctx the payload came from, arg1 = bytes viewed;
                     // ctx = the receiver (kZeroCopyDeliveries += 1,
                     // kZeroCopyBytes += arg1). Wall-clock only: the
                     // message's own accounting and modeled costs are
                     // emitted unchanged by the copy-path sites.
  kRaceCheck,        // counter-bearing: one detector sweep that ran at least
                     // one pairwise concurrency check (OMSP_RACE); arg0 =
                     // pair checks performed, arg1 = write entries swept;
                     // ctx = 0 (the sweep runs at a quiescent point)
                     // (kRaceChecks += arg0)
  kRaceDetected,     // counter-bearing: one write-write race report; arg0 =
                     // (page << 32) | (lo << 16) | hi — the overlapping byte
                     // range [lo, hi) within the page; arg1 = (ctx_a << 48) |
                     // (ctx_b << 32) | ((seq_a & 0xffff) << 16) |
                     // (seq_b & 0xffff) — the racing writers and their
                     // interval seqs (16-bit truncated on the wire; full
                     // values live in race::Detector::reports()); ctx = 0
                     // (kRacesDetected += 1)
  kContentionWait,   // counter-bearing: one message queued behind the busy
                     // window of one link segment along its path; arg0 = the
                     // topology stage of the segment, arg1 = the packed
                     // segment key (sim::Topology::path_segments); dur = the
                     // modeled wait charged; ctx = the sender
                     // (kContentionStageWaits += 1)
  kCount
};

// Flag bits (Event::flags).
inline constexpr std::uint16_t kFlagWrite = 1;   // kPageFault: write access
inline constexpr std::uint16_t kFlagOffNode = 2; // crossed a physical node
inline constexpr std::uint16_t kFlagRemote = 4;  // kLockAcquire: needed msgs
inline constexpr std::uint16_t kFlagPerturbed = 8; // injected by the
                                                   // perturbing transport

inline const char* event_name(EventKind k) {
  static constexpr std::array<const char*,
                              static_cast<std::size_t>(EventKind::kCount)>
      names = {"message",        "page_fault",   "twin_create",
               "diff_create",    "diff_apply",   "mprotect",
               "lock_acquire",   "lock_grant",   "barrier_arrive",
               "interval_close", "notices_sent", "notices_recv",
               "invalidate",     "full_page_fetch",
               "barrier_wait",   "diff_fetch",   "gc_episode",
               "region_begin",   "region_end",   "diff_fetch_async",
               "prefetch_batch", "prefetch_hit", "message_lost",
               "retransmit",     "ack",          "coll_stage",
               "zerocopy_deliver", "race_check", "race_detected",
               "contention_wait"};
  return names[static_cast<std::size_t>(k)];
}

struct Event {
  double ts_us = 0;  // virtual-time START of the event on the emitter's clock
  double dur_us = 0; // virtual-time duration (0 for instant events)
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  ContextId ctx = 0;      // DSM context the event is attributed to
  std::uint32_t rank = 0; // emitting worker (global rank / thread track)
  EventKind kind = EventKind::kMessage;
  std::uint16_t flags = 0;

  bool operator==(const Event&) const = default;
};

// Fixed wire encoding (44 bytes, little-endian like all protocol messages).
inline constexpr std::size_t kEventWireBytes = 44;

inline void serialize_event(const Event& e, ByteWriter& w) {
  w.put<double>(e.ts_us);
  w.put<double>(e.dur_us);
  w.put<std::uint64_t>(e.arg0);
  w.put<std::uint64_t>(e.arg1);
  w.put<ContextId>(e.ctx);
  w.put<std::uint32_t>(e.rank);
  w.put<std::uint16_t>(static_cast<std::uint16_t>(e.kind));
  w.put<std::uint16_t>(e.flags);
}

inline Event deserialize_event(ByteReader& r) {
  Event e;
  e.ts_us = r.get<double>();
  e.dur_us = r.get<double>();
  e.arg0 = r.get<std::uint64_t>();
  e.arg1 = r.get<std::uint64_t>();
  e.ctx = r.get<ContextId>();
  e.rank = r.get<std::uint32_t>();
  e.kind = static_cast<EventKind>(r.get<std::uint16_t>());
  e.flags = r.get<std::uint16_t>();
  return e;
}

} // namespace omsp::trace
