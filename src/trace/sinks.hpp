// Trace sinks and the trace→counters reconstruction.
//
// Two on-disk formats:
//  * Binary (`.trace`) — the authoritative record: a small header (magic,
//    version, drop count), the StatsSnapshot at finish time (name/value
//    pairs, so the file is self-describing even if counters change), and the
//    fixed-width event stream. `omsp-trace` consumes this.
//  * Chrome trace_event JSON — opens directly in Perfetto / chrome://tracing
//    with one process group per DSM context and one track per worker rank on
//    the virtual-time axis. Duration events (faults, barrier waits, lock
//    acquires) render as slices; everything else as instants.
//
// reconstruct_counters folds an event stream back into a StatsSnapshot using
// the kind→counter mapping documented in event.hpp — the core of the
// trace/stats consistency audit (`omsp-trace check` / `--self-check`).
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "trace/event.hpp"

namespace omsp::trace {

inline constexpr char kTraceMagic[8] = {'O', 'M', 'S', 'P',
                                        'T', 'R', 'C', '1'};
// Version 2: kMessage packs (msg type << 32) | dst ctx into arg1 so
// analyzers can report traffic by registry name (net/message.hpp).
// Version 3: kMessage carries the modeled one-way cost in dur_us (the
// analyzer's per-type latency column); adds the overlapped-fetch kinds
// kDiffFetchAsync/kPrefetchBatch/kPrefetchHit and the prefetch counters.
// Version 4: adds the reliable-delivery kinds kMessageLost/kRetransmit/kAck
// and the msgs_lost/retransmits/acks_sent counters (lossy transport).
// Version 5: adds the hierarchical-collectives kind kCollStage (arg0 = wire
// bytes, arg1 = (level<<32)|leader) and the coll_stages/coll_bytes counters.
// Version 6: adds the zero-copy intra-node delivery kind kZeroCopyDeliver
// (arg0 = peer ctx, arg1 = bytes viewed) and the zerocopy_deliveries/
// zerocopy_bytes counters (OMSP_ZEROCOPY).
// Version 7: adds the data-race detector kinds kRaceCheck (arg0 = pair
// checks, arg1 = entries swept) and kRaceDetected (arg0 = (page<<32)|
// (lo<<16)|hi, arg1 = packed writer ctxs + interval seqs) and the
// race_checks/races_detected counters (OMSP_RACE).
// Version 8: adds the per-stage congestion kind kContentionWait (arg0 =
// topology stage, arg1 = packed segment key, dur = modeled wait) and the
// contention_stage_waits counter (stage-aware link busy windows).
inline constexpr std::uint32_t kTraceVersion = 8;

struct TraceFile {
  std::vector<Event> events;
  std::uint64_t dropped = 0;   // events lost to full rings while recording
  StatsSnapshot stats;         // counters embedded at finish time
  std::vector<std::pair<std::string, std::uint64_t>> raw_counters; // as stored
};

// Serialize / parse the binary container (in-memory; tests use these).
std::vector<std::uint8_t> encode_trace(const std::vector<Event>& events,
                                       std::uint64_t dropped,
                                       const StatsSnapshot& stats);
TraceFile decode_trace(const std::uint8_t* data, std::size_t size);

// File variants. Readers abort (OMSP_CHECK) on malformed input.
void write_binary(const std::string& path, const std::vector<Event>& events,
                  std::uint64_t dropped, const StatsSnapshot& stats);
TraceFile read_binary(const std::string& path);

// Chrome trace_event JSON (the "traceEvents" object form Perfetto accepts).
std::string chrome_trace_json(const std::vector<Event>& events);
void write_chrome_json(const std::string& path,
                       const std::vector<Event>& events);

// Fold the event stream back into counter totals. Events attributed to
// context `ctx` land on that context's conceptual board, exactly like the
// live StatsBoard increments; the returned snapshot is the all-context sum.
StatsSnapshot reconstruct_counters(const std::vector<Event>& events);

} // namespace omsp::trace
