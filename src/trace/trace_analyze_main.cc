// omsp-trace — analyzer CLI for omsp binary traces.
//
//   omsp-trace summary <run.trace>            event census + audit verdict
//   omsp-trace pages   <run.trace> [--top N]  per-page fault/diff heatmap
//   omsp-trace threads <run.trace>            per-rank virtual-time breakdown
//   omsp-trace races   <run.trace>            data-race report digest (v7)
//   omsp-trace check   <run.trace>            trace totals vs embedded counters
//   omsp-trace export  <run.trace> -o t.json  convert to Chrome trace JSON
//   omsp-trace record  <sor|tsp> [--mode thread|process] [-o base]
//                                             run an app with tracing enabled,
//                                             write base.trace + base.json
//   omsp-trace --self-check                   record SOR and TSP in both
//                                             modes, audit each trace, exit
//                                             non-zero on any mismatch
//
// The check/self-check audit is exact: every StatsBoard counter must equal
// the total reconstructed from the trace (see reconstruct_counters), and the
// trace must be lossless (no ring overflow drops).
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "net/message.hpp"
#include "trace/sinks.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace omsp;
using namespace omsp::trace;

int usage() {
  std::fprintf(
      stderr,
      "usage: omsp-trace <summary|pages|threads|races|check|export|record> "
      "...\n"
      "       omsp-trace --self-check\n");
  return 2;
}

// ---------------------------------------------------------------------------

void cmd_summary(const TraceFile& tf) {
  struct MsgRow {
    std::uint64_t count = 0, bytes = 0, offnode = 0, perturbed = 0;
    std::uint64_t lost = 0, rexmit = 0; // reliability layer, per type
    double lat_sum = 0, lat_max = 0; // modeled one-way cost (dur_us)
  };
  struct CollLevel {
    std::uint64_t stages = 0, bytes = 0;
  };
  std::map<EventKind, std::uint64_t> by_kind;
  std::map<ContextId, std::uint64_t> by_ctx;
  std::map<net::MsgType, MsgRow> by_msg;
  std::map<std::uint64_t, CollLevel> coll_levels; // level -> stage traffic
  std::uint64_t losses = 0, rexmits = 0, acks = 0;
  double rto_wait = 0; // total modeled time spent in retransmission timers
  double tmax = 0;
  for (const Event& e : tf.events) {
    ++by_kind[e.kind];
    ++by_ctx[e.ctx];
    tmax = std::max(tmax, e.ts_us + e.dur_us);
    if (e.kind == EventKind::kMessage) {
      MsgRow& row = by_msg[net::message_type_of_arg1(e.arg1)];
      ++row.count;
      row.bytes += e.arg0;
      if (e.flags & kFlagOffNode) ++row.offnode;
      if (e.flags & kFlagPerturbed) ++row.perturbed;
      row.lat_sum += e.dur_us;
      row.lat_max = std::max(row.lat_max, e.dur_us);
    } else if (e.kind == EventKind::kMessageLost) {
      ++by_msg[net::message_type_of_arg1(e.arg1)].lost;
      ++losses;
    } else if (e.kind == EventKind::kRetransmit) {
      ++by_msg[net::message_type_of_arg1(e.arg1)].rexmit;
      ++rexmits;
      rto_wait += e.dur_us;
    } else if (e.kind == EventKind::kAck) {
      ++acks;
    } else if (e.kind == EventKind::kCollStage) {
      CollLevel& lvl = coll_levels[e.arg1 >> 32];
      ++lvl.stages;
      lvl.bytes += e.arg0;
    }
  }
  std::printf("%zu events, %" PRIu64 " dropped, %.1f us of virtual time\n\n",
              tf.events.size(), tf.dropped, tmax);
  std::printf("%-18s %12s\n", "event", "count");
  for (const auto& [kind, n] : by_kind)
    std::printf("%-18s %12" PRIu64 "\n", event_name(kind), n);
  if (!by_msg.empty()) {
    std::printf("\n%-18s %10s %12s %10s %10s %8s %8s %10s %10s\n", "message",
                "count", "bytes", "offnode", "perturbed", "lost", "rexmit",
                "lat_mean", "lat_max");
    for (const auto& [type, row] : by_msg)
      std::printf("%-18s %10" PRIu64 " %12" PRIu64 " %10" PRIu64 " %10" PRIu64
                  " %8" PRIu64 " %8" PRIu64 " %10.2f %10.2f\n",
                  net::msg_name(type), row.count, row.bytes, row.offnode,
                  row.perturbed, row.lost, row.rexmit,
                  row.count != 0 ? row.lat_sum / static_cast<double>(row.count)
                                 : 0.0,
                  row.lat_max);
  }
  if (losses != 0 || rexmits != 0 || acks != 0)
    std::printf("\nreliability: %" PRIu64 " lost, %" PRIu64
                " retransmits (%.1f us in RTO timers), %" PRIu64 " acks\n",
                losses, rexmits, rto_wait, acks);
  if (!coll_levels.empty()) {
    std::uint64_t stages = 0;
    for (const auto& [level, row] : coll_levels) stages += row.stages;
    // A root-to-leaf path crosses each stage level at most once, in
    // decreasing order, so the deepest tree has one hop per distinct level
    // observed — the distinct-level count is the max tree depth.
    std::printf("\ncollectives: %" PRIu64
                " stage messages, max tree depth %zu (top stage level %"
                PRIu64 ")\n",
                stages, coll_levels.size(), coll_levels.rbegin()->first);
    std::printf("%-18s %12s %12s\n", "level", "stages", "bytes");
    for (const auto& [level, row] : coll_levels)
      std::printf("level%-13" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n", level,
                  row.stages, row.bytes);
  }
  std::printf("\n%-18s %12s\n", "context", "events");
  for (const auto& [ctx, n] : by_ctx)
    std::printf("ctx%-15u %12" PRIu64 "\n", ctx, n);
}

// ---------------------------------------------------------------------------

struct PageRow {
  std::uint64_t faults = 0, wfaults = 0, twins = 0, diffs_created = 0,
                diffs_applied = 0, invalidations = 0, fetches = 0,
                fetch_bytes = 0;
  std::uint64_t total() const {
    return faults + twins + diffs_created + diffs_applied + invalidations +
           fetches;
  }
};

void cmd_pages(const TraceFile& tf, std::size_t top) {
  std::map<std::uint64_t, PageRow> pages;
  for (const Event& e : tf.events) {
    switch (e.kind) {
    case EventKind::kPageFault:
      ++pages[e.arg0].faults;
      if (e.flags & kFlagWrite) ++pages[e.arg0].wfaults;
      break;
    case EventKind::kTwinCreate: ++pages[e.arg0].twins; break;
    case EventKind::kDiffCreate: ++pages[e.arg0].diffs_created; break;
    case EventKind::kDiffApply: ++pages[e.arg0].diffs_applied; break;
    case EventKind::kInvalidate: ++pages[e.arg0].invalidations; break;
    case EventKind::kDiffFetch:
      ++pages[e.arg0].fetches;
      pages[e.arg0].fetch_bytes += e.arg1;
      break;
    default: break;
    }
  }
  std::vector<std::pair<std::uint64_t, PageRow>> rows(pages.begin(),
                                                      pages.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total() > b.second.total();
  });
  std::printf("%zu pages with protocol activity; top %zu by event count:\n\n",
              rows.size(), std::min(top, rows.size()));
  std::printf("%8s %8s %8s %6s %8s %8s %8s %8s %10s\n", "page", "faults",
              "wfaults", "twins", "diffs+", "diffs<", "invals", "fetches",
              "fetchB");
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    const auto& [p, r] = rows[i];
    std::printf("%8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %6" PRIu64
                " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %10" PRIu64 "\n",
                p, r.faults, r.wfaults, r.twins, r.diffs_created,
                r.diffs_applied, r.invalidations, r.fetches, r.fetch_bytes);
  }
  // Coarse heatmap over the touched page range: fault density per bucket.
  if (!pages.empty()) {
    const std::uint64_t lo = pages.begin()->first;
    const std::uint64_t hi = pages.rbegin()->first;
    constexpr int kBuckets = 64;
    std::vector<std::uint64_t> heat(kBuckets, 0);
    const std::uint64_t span = hi - lo + 1;
    for (const auto& [p, r] : pages)
      heat[static_cast<std::size_t>((p - lo) * kBuckets / span)] += r.faults;
    const std::uint64_t peak =
        std::max<std::uint64_t>(1, *std::max_element(heat.begin(), heat.end()));
    static const char* shades[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    std::printf("\nfault heatmap, pages %" PRIu64 "..%" PRIu64 ": [", lo, hi);
    for (const auto h : heat)
      std::fputs(shades[h * 7 / peak], stdout);
    std::printf("]\n");
  }
}

// ---------------------------------------------------------------------------

// Digest of the vector-clock detector's output (OMSP_RACE traces, v7): sweep
// totals, then one row per distinct (page, writer pair) with the merged byte
// range — the shape a user needs to map a report back to a data structure.
// Exit status mirrors the verdict so scripts can assert "race-clean".
int cmd_races(const TraceFile& tf) {
  struct PairRow {
    std::uint64_t reports = 0;
    std::uint64_t lo = ~std::uint64_t{0}, hi = 0; // merged byte range
    std::uint64_t seq_a = 0, seq_b = 0;           // example interval pair
  };
  std::uint64_t sweeps = 0, checks = 0, entries = 0;
  // Key: page << 32 | ctx_a << 16 | ctx_b (ctx pairs are 16-bit on the wire).
  std::map<std::uint64_t, PairRow> pairs;
  for (const Event& e : tf.events) {
    if (e.kind == EventKind::kRaceCheck) {
      ++sweeps;
      checks += e.arg0;
      entries += e.arg1;
    } else if (e.kind == EventKind::kRaceDetected) {
      const std::uint64_t page = e.arg0 >> 32;
      const std::uint64_t lo = (e.arg0 >> 16) & 0xFFFFu;
      const std::uint64_t hi = e.arg0 & 0xFFFFu;
      const std::uint64_t ctx_a = e.arg1 >> 48;
      const std::uint64_t ctx_b = (e.arg1 >> 32) & 0xFFFFu;
      PairRow& row = pairs[page << 32 | ctx_a << 16 | ctx_b];
      ++row.reports;
      row.lo = std::min(row.lo, lo);
      row.hi = std::max(row.hi, hi);
      row.seq_a = (e.arg1 >> 16) & 0xFFFFu;
      row.seq_b = e.arg1 & 0xFFFFu;
    }
  }
  if (sweeps == 0) {
    std::printf("no detector sweeps in this trace — was it recorded with "
                "OMSP_RACE=page|word?\n");
    return 2;
  }
  std::printf("%" PRIu64 " detector sweeps, %" PRIu64 " pairwise checks over %"
              PRIu64 " write entries\n",
              sweeps, checks, entries);
  if (pairs.empty()) {
    std::printf("race-clean: no concurrent overlapping writes detected\n");
    return 0;
  }
  std::uint64_t total = 0;
  for (const auto& [key, row] : pairs) total += row.reports;
  std::printf("\n%" PRIu64 " write-write race report(s), %zu distinct "
              "(page, writer-pair) site(s):\n\n",
              total, pairs.size());
  std::printf("%8s %8s %16s %8s %18s\n", "page", "writers", "bytes[lo,hi)",
              "reports", "example seqs");
  for (const auto& [key, row] : pairs)
    std::printf("%8" PRIu64 " %3" PRIu64 "|%-4" PRIu64 " [%6" PRIu64 ",%6"
                PRIu64 ") %8" PRIu64 "     s%" PRIu64 "|s%" PRIu64 "\n",
                key >> 32, (key >> 16) & 0xFFFFu, key & 0xFFFFu, row.lo,
                row.hi, row.reports, row.seq_a, row.seq_b);
  return 1;
}

// ---------------------------------------------------------------------------

void cmd_threads(const TraceFile& tf) {
  struct RankRow {
    ContextId ctx = 0;
    double span = 0, fault = 0, sync = 0;
    std::uint64_t faults = 0, waits = 0;
  };
  std::map<std::uint32_t, RankRow> ranks;
  for (const Event& e : tf.events) {
    RankRow& r = ranks[e.rank];
    r.span = std::max(r.span, e.ts_us + e.dur_us);
    if (e.kind == EventKind::kPageFault) {
      r.fault += e.dur_us;
      ++r.faults;
      r.ctx = e.ctx;
    } else if (e.kind == EventKind::kBarrierWait ||
               e.kind == EventKind::kLockAcquire) {
      r.sync += e.dur_us;
      ++r.waits;
      r.ctx = e.ctx;
    }
  }
  std::printf("per-rank virtual-time breakdown (us; compute = span - fault "
              "service - sync wait):\n\n");
  std::printf("%6s %6s %12s %12s %12s %12s %8s %8s\n", "rank", "ctx", "span",
              "compute", "fault_svc", "sync_wait", "faults", "waits");
  for (const auto& [rank, r] : ranks) {
    const double compute = std::max(0.0, r.span - r.fault - r.sync);
    std::printf("%6u %6u %12.1f %12.1f %12.1f %12.1f %8" PRIu64 " %8" PRIu64
                "\n",
                rank, r.ctx, r.span, compute, r.fault, r.sync, r.faults,
                r.waits);
  }
}

// ---------------------------------------------------------------------------

// Audit one trace: reconstruct counters from events and compare with the
// StatsSnapshot embedded at record time. Returns true when exact.
bool audit(const TraceFile& tf, bool verbose) {
  bool ok = true;
  if (tf.dropped != 0) {
    std::printf("FAIL: %" PRIu64 " events dropped to full rings — raise "
                "Options::ring_events\n",
                tf.dropped);
    ok = false;
  }
  const StatsSnapshot rec = reconstruct_counters(tf.events);
  if (verbose)
    std::printf("%-22s %14s %14s %10s\n", "counter", "stats", "trace",
                "delta");
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount); ++i) {
    const auto c = static_cast<Counter>(i);
    const std::uint64_t a = tf.stats[c], b = rec[c];
    if (verbose || a != b)
      std::printf("%-22s %14" PRIu64 " %14" PRIu64 " %10lld%s\n",
                  counter_name(c), a, b,
                  static_cast<long long>(b) - static_cast<long long>(a),
                  a == b ? "" : "   <-- MISMATCH");
    if (a != b) ok = false;
  }
  std::printf("%s\n", ok ? "OK: trace reconstructs every counter exactly"
                         : "FAIL: trace/counter mismatch");
  return ok;
}

// ---------------------------------------------------------------------------

// Run one app with tracing enabled, writing base.trace (+ base.json).
bool record_run(const std::string& app, tmk::Mode mode,
                const std::string& base, bool json) {
  tmk::Config cfg;
  cfg.topology = sim::Topology(2, 2);
  cfg.mode = mode;
  cfg.trace.enabled = true;
  cfg.trace.binary_path = base + ".trace";
  if (json) cfg.trace.json_path = base + ".json";

  apps::Result r;
  if (app == "sor") {
    apps::sor::Params p;
    p.rows = 128;
    p.cols = 64;
    p.iters = 4;
    r = apps::sor::run_omp(p, cfg);
  } else if (app == "tsp") {
    apps::tsp::Params p;
    p.cities = 9;
    p.solve_threshold = 5;
    r = apps::tsp::run_omp(p, cfg);
  } else {
    std::fprintf(stderr, "unknown app '%s' (want sor|tsp)\n", app.c_str());
    return false;
  }
  std::printf("recorded %s (%s mode): checksum %.6g, %.0f us simulated -> "
              "%s.trace%s\n",
              app.c_str(), mode == tmk::Mode::kThread ? "thread" : "process",
              r.checksum, r.time_us, base.c_str(),
              json ? (" + " + base + ".json").c_str() : "");
  return true;
}

int self_check() {
  struct Case {
    const char* app;
    tmk::Mode mode;
    const char* name;
  };
  const Case cases[] = {
      {"sor", tmk::Mode::kThread, "sor-thread"},
      {"sor", tmk::Mode::kProcess, "sor-process"},
      {"tsp", tmk::Mode::kThread, "tsp-thread"},
      {"tsp", tmk::Mode::kProcess, "tsp-process"},
  };
  int failures = 0;
  for (const Case& c : cases) {
    const std::string base =
        std::string("/tmp/omsp_selfcheck_") + c.name + "_" +
        std::to_string(static_cast<unsigned>(::getpid()));
    std::printf("=== %s ===\n", c.name);
    if (!record_run(c.app, c.mode, base, /*json=*/false)) {
      ++failures;
      continue;
    }
    const TraceFile tf = read_binary(base + ".trace");
    if (!audit(tf, /*verbose=*/false)) ++failures;
    std::remove((base + ".trace").c_str());
    std::printf("\n");
  }
  std::printf("self-check: %d of %zu cases failed\n", failures,
              std::size(cases));
  return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "--self-check") return self_check();

  if (cmd == "record") {
    if (argc < 3) return usage();
    const std::string app = argv[2];
    tmk::Mode mode = tmk::Mode::kThread;
    std::string base = app;
    for (int i = 3; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--mode" && i + 1 < argc) {
        const std::string m = argv[++i];
        if (m == "process")
          mode = tmk::Mode::kProcess;
        else if (m == "thread")
          mode = tmk::Mode::kThread;
        else {
          std::fprintf(stderr, "unknown --mode '%s' (want thread|process)\n",
                       m.c_str());
          return 2;
        }
      } else if (a == "-o" && i + 1 < argc)
        base = argv[++i];
      else
        return usage();
    }
    return record_run(app, mode, base, /*json=*/true) ? 0 : 1;
  }

  if (cmd != "summary" && cmd != "pages" && cmd != "threads" &&
      cmd != "races" && cmd != "check" && cmd != "export")
    return usage();
  if (argc < 3) return usage();
  // Friendly error for a mistyped path; read_binary OMSP_CHECK-aborts.
  if (std::FILE* f = std::fopen(argv[2], "rb"); f == nullptr) {
    std::fprintf(stderr, "omsp-trace: cannot open '%s'\n", argv[2]);
    return 1;
  } else {
    std::fclose(f);
  }
  const TraceFile tf = read_binary(argv[2]);

  if (cmd == "summary") {
    cmd_summary(tf);
    const bool ok = audit(tf, /*verbose=*/false);
    return ok ? 0 : 1;
  }
  if (cmd == "pages") {
    std::size_t top = 20;
    for (int i = 3; i < argc; ++i)
      if (std::string(argv[i]) == "--top" && i + 1 < argc)
        top = static_cast<std::size_t>(std::atoll(argv[++i]));
    cmd_pages(tf, top);
    return 0;
  }
  if (cmd == "threads") {
    cmd_threads(tf);
    return 0;
  }
  if (cmd == "races") return cmd_races(tf);
  if (cmd == "check") return audit(tf, /*verbose=*/true) ? 0 : 1;
  if (cmd == "export") {
    std::string out;
    for (int i = 3; i < argc; ++i)
      if (std::string(argv[i]) == "-o" && i + 1 < argc) out = argv[++i];
    if (out.empty()) return usage();
    write_chrome_json(out, tf.events);
    std::printf("wrote %s (%zu events)\n", out.c_str(), tf.events.size());
    return 0;
  }
  return usage();
}
