// Configuration for a TreadMarks DSM instance.
//
// The two execution modes reproduce the paper's two systems:
//   * kThread  — the paper's contribution ("OpenMP/thread"): one DSM context
//     (address space) per SMP node, POSIX threads inside it, alias mapping of
//     the shared heap, per-page fault mutex.
//   * kProcess — the baseline ("OpenMP/original"): one DSM context per
//     processor; processors on one node still exchange protocol messages
//     (classified intra-node), no alias mapping, so page updates need the
//     extra write-enable/write-disable mprotect pair the paper counts.
#pragma once

#include <cstddef>
#include <optional>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "net/collective.hpp"
#include "net/transport.hpp"
#include "race/options.hpp"
#include "sim/cost_model.hpp"
#include "sim/topology.hpp"
#include "trace/tracer.hpp"

namespace omsp::tmk {

enum class Mode { kThread, kProcess };

// Consistency protocol family:
//  * kLazyRC  — TreadMarks' lazy release consistency with distributed diffs
//    fetched from their writers on demand (the paper's system).
//  * kHomeLRC — home-based LRC in the style of HLRC-SMP/Cashmere-2L (§6
//    related work): every page has a home; writers eagerly flush diffs to
//    the home at releases, and faulting nodes fetch the whole page from the
//    home. Fewer control messages, more data — the classic trade-off.
enum class Protocol { kLazyRC, kHomeLRC };

struct Config {
  sim::Topology topology = sim::Topology::sp2();
  Mode mode = Mode::kThread;
  std::size_t heap_bytes = 16u << 20; // shared heap size (rounded to pages)
  sim::CostModel cost = sim::CostModel::sp2_default();

  // Ablation knobs. Defaults follow the paper: the thread version has the
  // alias ("second") mapping and the per-page fault mutex; the original
  // version has neither.
  std::optional<bool> alias_mapping; // default: mode == kThread
  std::optional<bool> per_page_fault_lock; // default: mode == kThread

  // When false, diffs are created eagerly at interval close instead of on
  // first request (TreadMarks is lazy; this knob exists for the ablation
  // bench).
  bool lazy_diffs = true;

  // Garbage collection: when the cluster-wide stored-diff volume exceeds
  // this many bytes, the next barrier runs a TreadMarks-style GC — every
  // context validates all its pages, then interval records and stored diffs
  // are discarded. 0 disables GC.
  std::size_t gc_threshold_bytes = 0;

  Protocol protocol = Protocol::kLazyRC;

  // Structured protocol tracing (docs/OBSERVABILITY.md). Off by default; the
  // OMSP_TRACE_BIN / OMSP_TRACE_JSON environment variables override this at
  // DsmSystem construction when trace.enabled is false.
  trace::Options trace;

  // Seeded transport fault injection (net::PerturbingTransport): latency
  // jitter, bounded reordering of notifications and duplicate delivery. Off
  // by default; OMSP_PERTURB_SEED=<n> overrides at DsmSystem construction
  // when perturb.enabled is false.
  net::PerturbOptions perturb;

  // Overlapped communication (net::QueuedTransport): concurrent per-creator
  // diff fetches and barrier-time batched prefetch. Off by default so the
  // InlineTransport seed semantics stay bit-for-bit; OMSP_OVERLAP=1
  // overrides at DsmSystem construction when overlap.enabled is false.
  // Only the lazy-RC protocol has overlapped paths; home-based fetches stay
  // synchronous.
  net::OverlapOptions overlap;

  // Zero-copy intra-node delivery (net::ZeroCopyOptions): same-node diff and
  // page payloads are parsed as views into the delivered buffer instead of
  // deserialized copies. Wall-clock only — modeled times and all pre-existing
  // counters are bit-for-bit identical either way. Off by default;
  // OMSP_ZEROCOPY=off|on|<bytes> overrides at DsmSystem construction when
  // zerocopy.enabled is false.
  net::ZeroCopyOptions zerocopy;

  // Collective engine (coll::Schedule): central keeps the seed's
  // manager-based barrier bit-for-bit; tree reduces arrivals up the
  // topology-derived leader tree and broadcasts departures down it
  // (docs/PROTOCOL.md "Hierarchical collectives"). Central by default;
  // OMSP_COLL=central|tree|tree:<bytes> overrides at DsmSystem construction
  // when coll.tree is false.
  coll::Options coll;

  // Data-race detection (race::Detector): vector-clock concurrency checks
  // over flushed diffs, swept at barriers and joins (docs/PROTOCOL.md "Race
  // detection under lazy release consistency"). Off by default — with the
  // detector off every modeled number stays bit-for-bit identical to the
  // seed; OMSP_RACE=off|page|word overrides at DsmSystem construction when
  // race.enabled() is false.
  race::Options race;

  bool use_alias_mapping() const {
    return alias_mapping.value_or(mode == Mode::kThread);
  }
  bool use_per_page_fault_lock() const {
    return per_page_fault_lock.value_or(mode == Mode::kThread);
  }

  // One DSM context per node (thread mode) or per processor (process mode).
  std::uint32_t num_contexts() const {
    return mode == Mode::kThread ? topology.nodes() : topology.nprocs();
  }
  // Worker threads hosted by context c: that node's processor count in
  // thread mode (asymmetric mixes give different contexts different widths),
  // always 1 in process mode.
  std::uint32_t threads_in_context(ContextId c) const {
    return mode == Mode::kThread ? topology.procs_on_node(c) : 1;
  }
  // Uniform-topology shorthand; asymmetric configs must ask per context.
  std::uint32_t threads_per_context() const {
    return mode == Mode::kThread ? topology.procs_per_node() : 1;
  }
  ContextId context_of_rank(Rank r) const {
    return mode == Mode::kThread ? topology.node_of_rank(r) : r;
  }
  NodeId node_of_context(ContextId c) const {
    return mode == Mode::kThread ? c : topology.node_of_rank(c);
  }
  // Thread slot of rank within its context.
  std::uint32_t slot_of_rank(Rank r) const {
    return mode == Mode::kThread ? topology.proc_of_rank(r) : 0;
  }

  void validate() const {
    OMSP_CHECK(heap_bytes > 0);
    OMSP_CHECK(topology.nprocs() >= 1);
  }
};

} // namespace omsp::tmk
