#include "tmk/diff.hpp"

#include <cstring>

#include "common/check.hpp"

namespace omsp::tmk {

namespace {

// Runs are encoded as {u16 offset, u16 len} headers. A page offset fits in
// 16 bits for pages up to 64K; length of a full-page run (4096) also fits.
struct RunHeader {
  std::uint16_t offset;
  std::uint16_t length;
};

void put_run(DiffBytes& out, std::size_t offset, std::size_t length,
             const std::uint8_t* data) {
  RunHeader h{static_cast<std::uint16_t>(offset),
              static_cast<std::uint16_t>(length)};
  const auto* hp = reinterpret_cast<const std::uint8_t*>(&h);
  out.insert(out.end(), hp, hp + sizeof(h));
  out.insert(out.end(), data + offset, data + offset + length);
}

} // namespace

DiffBytes create_diff(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size) {
  OMSP_CHECK(page_size % sizeof(std::uint64_t) == 0);
  OMSP_CHECK(page_size <= 65536);
  DiffBytes out;

  // Runs must be byte-exact: a diff may never carry an unchanged byte,
  // because concurrent writers of the same page (false sharing) rely on the
  // merge touching only bytes they actually wrote. Words are compared first
  // as a fast scan, then changed words are refined to exact byte runs.
  const std::size_t words = page_size / sizeof(std::uint64_t);
  std::uint64_t tw, cw;
  std::size_t run_begin = page_size; // page_size == "no open run"
  for (std::size_t w = 0; w < words; ++w) {
    std::memcpy(&tw, twin + w * 8, 8);
    std::memcpy(&cw, current + w * 8, 8);
    if (tw == cw) {
      if (run_begin != page_size) {
        put_run(out, run_begin, w * 8 - run_begin, current);
        run_begin = page_size;
      }
      continue;
    }
    for (std::size_t b = w * 8; b < w * 8 + 8; ++b) {
      if (twin[b] != current[b]) {
        if (run_begin == page_size) run_begin = b;
      } else if (run_begin != page_size) {
        put_run(out, run_begin, b - run_begin, current);
        run_begin = page_size;
      }
    }
  }
  if (run_begin != page_size)
    put_run(out, run_begin, page_size - run_begin, current);
  return out;
}

void apply_diff(std::span<const std::uint8_t> diff, std::uint8_t* dst) {
  std::size_t pos = 0;
  while (pos < diff.size()) {
    OMSP_CHECK_MSG(pos + sizeof(RunHeader) <= diff.size(),
                   "truncated diff header");
    RunHeader h;
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    pos += sizeof(h);
    OMSP_CHECK_MSG(pos + h.length <= diff.size(), "truncated diff run");
    std::memcpy(dst + h.offset, diff.data() + pos, h.length);
    pos += h.length;
  }
}

std::size_t diff_patch_bytes(std::span<const std::uint8_t> diff) {
  std::size_t total = 0;
  std::size_t pos = 0;
  while (pos < diff.size()) {
    RunHeader h;
    OMSP_CHECK(pos + sizeof(h) <= diff.size());
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    pos += sizeof(h) + h.length;
    total += h.length;
  }
  OMSP_CHECK(pos == diff.size());
  return total;
}

std::size_t diff_run_count(std::span<const std::uint8_t> diff) {
  std::size_t runs = 0;
  std::size_t pos = 0;
  while (pos < diff.size()) {
    RunHeader h;
    OMSP_CHECK(pos + sizeof(h) <= diff.size());
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    pos += sizeof(h) + h.length;
    ++runs;
  }
  return runs;
}

} // namespace omsp::tmk
