#include "tmk/diff.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

// Build-time kernel selection. The compare kernels only read memory and
// produce per-byte difference masks; the run encoding itself is shared, so
// every kernel emits byte-identical diffs (asserted by the property tests).
// -DOMSP_DIFF_PORTABLE (cmake -DOMSP_SIMD=portable) forces the word kernel
// even on x86 so CI can exercise the fallback.
#if defined(OMSP_DIFF_PORTABLE)
#define OMSP_DIFF_KERNEL_NAME "portable64"
#elif defined(__AVX2__)
#include <immintrin.h>
#define OMSP_DIFF_KERNEL_NAME "avx2"
#elif defined(__SSE2__)
#include <emmintrin.h>
#define OMSP_DIFF_KERNEL_NAME "sse2"
#else
#define OMSP_DIFF_KERNEL_NAME "portable64"
#endif

namespace omsp::tmk {

namespace {

using detail::RunHeader;

inline void put_run(DiffBytes& out, std::size_t offset, std::size_t length,
                    const std::uint8_t* data) {
  OMSP_CHECK(length <= 0xffff); // u16 wire length; offset checked by caller
  RunHeader h{static_cast<std::uint16_t>(offset),
              static_cast<std::uint16_t>(length)};
  const auto* hp = reinterpret_cast<const std::uint8_t*>(&h);
  out.insert(out.end(), hp, hp + sizeof(h));
  out.insert(out.end(), data + offset, data + offset + length);
}

// Turns per-byte difference masks into maximal byte-exact runs. Fed one
// block at a time: bit i of `m` says byte (base + i) differs. A run that
// reaches the end of a block is left open and either extended or closed by
// the next block — so runs straddle word, lane and block boundaries without
// the kernels having to care.
struct RunEmitter {
  DiffBytes& out;
  const std::uint8_t* cur;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t run_begin = kNone;

  // `nbytes` is the block width (<= 64); bits >= nbytes of `m` must be 0.
  inline void feed(std::size_t base, std::uint64_t m, unsigned nbytes) {
    unsigned bit = 0;
    if (run_begin != kNone) {
      const unsigned ones = static_cast<unsigned>(std::countr_one(m));
      if (ones >= nbytes) return; // open run covers this whole block
      put_run(out, run_begin, base + ones - run_begin, cur);
      run_begin = kNone;
      m >>= ones;
      bit = ones;
    }
    while (m != 0) {
      const unsigned zeros = static_cast<unsigned>(std::countr_zero(m));
      m >>= zeros;
      bit += zeros;
      const unsigned ones = static_cast<unsigned>(std::countr_one(m));
      if (bit + ones >= nbytes) { // run reaches block end: leave it open
        run_begin = base + bit;
        return;
      }
      put_run(out, base + bit, ones, cur);
      m >>= ones;
      bit += ones;
    }
  }

  inline void close_at(std::size_t end) {
    if (run_begin != kNone) {
      put_run(out, run_begin, end - run_begin, cur);
      run_begin = kNone;
    }
  }
};

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// Per-byte difference mask of one 8-byte word (bit b set iff byte b
// differs), used by the portable kernel and every tail smaller than the
// vector width.
inline std::uint64_t word_mask(const std::uint8_t* twin,
                               const std::uint8_t* cur) {
  const std::uint64_t x = load_u64(twin) ^ load_u64(cur);
  if (x == 0) return 0;
  std::uint64_t m = 0;
  for (unsigned b = 0; b < 8; ++b)
    if ((x >> (8 * b)) & 0xff) m |= std::uint64_t{1} << b;
  return m;
}

// Per-byte difference mask of one 64-byte block.
inline std::uint64_t block_mask64(const std::uint8_t* twin,
                                  const std::uint8_t* cur) {
#if defined(OMSP_DIFF_PORTABLE)
  std::uint64_t m = 0;
  for (unsigned w = 0; w < 8; ++w)
    m |= word_mask(twin + 8 * w, cur + 8 * w) << (8 * w);
  return m;
#elif defined(__AVX2__)
  const __m256i t0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twin));
  const __m256i c0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur));
  const __m256i t1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twin + 32));
  const __m256i c1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + 32));
  const auto eq0 = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(t0, c0)));
  const auto eq1 = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(t1, c1)));
  return ~(static_cast<std::uint64_t>(eq0) |
           (static_cast<std::uint64_t>(eq1) << 32));
#elif defined(__SSE2__)
  std::uint64_t eq = 0;
  for (unsigned i = 0; i < 4; ++i) {
    const __m128i t =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(twin + 16 * i));
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + 16 * i));
    eq |= static_cast<std::uint64_t>(
              static_cast<std::uint16_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(t, c))))
          << (16 * i);
  }
  return ~eq;
#else
  std::uint64_t m = 0;
  for (unsigned w = 0; w < 8; ++w)
    m |= word_mask(twin + 8 * w, cur + 8 * w) << (8 * w);
  return m;
#endif
}

} // namespace

const char* diff_kernel_name() { return OMSP_DIFF_KERNEL_NAME; }

void create_diff_into(const std::uint8_t* twin, const std::uint8_t* current,
                      DiffBytes& out, std::size_t page_size) {
  OMSP_CHECK(page_size % sizeof(std::uint64_t) == 0);
  OMSP_CHECK(page_size <= 65536);
  out.clear();

  // Runs must be byte-exact: a diff may never carry an unchanged byte,
  // because concurrent writers of the same page (false sharing) rely on the
  // merge touching only bytes they actually wrote. Blocks are compared 64
  // bytes at a time; only blocks with differences reach the run emitter.
  RunEmitter em{out, current};
  std::size_t base = 0;
  for (; base + 64 <= page_size; base += 64) {
    const std::uint64_t m = block_mask64(twin + base, current + base);
    if (m == 0) {
      em.close_at(base); // an equal byte always terminates an open run
      continue;
    }
    em.feed(base, m, 64);
  }
  for (; base < page_size; base += 8)
    em.feed(base, word_mask(twin + base, current + base), 8);
  em.close_at(page_size);
}

DiffBytes create_diff(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size) {
  DiffBytes out;
  create_diff_into(twin, current, out, page_size);
  return out;
}

DiffBytes create_diff_scalar(const std::uint8_t* twin,
                             const std::uint8_t* current,
                             std::size_t page_size) {
  OMSP_CHECK(page_size % sizeof(std::uint64_t) == 0);
  OMSP_CHECK(page_size <= 65536);
  DiffBytes out;

  // The original TreadMarks-style encoder: compare a machine word at a time,
  // refine changed words to exact byte runs. Kept verbatim as the reference
  // implementation the vector kernels are proved against.
  const std::size_t words = page_size / sizeof(std::uint64_t);
  std::uint64_t tw, cw;
  std::size_t run_begin = page_size; // page_size == "no open run"
  for (std::size_t w = 0; w < words; ++w) {
    std::memcpy(&tw, twin + w * 8, 8);
    std::memcpy(&cw, current + w * 8, 8);
    if (tw == cw) {
      if (run_begin != page_size) {
        put_run(out, run_begin, w * 8 - run_begin, current);
        run_begin = page_size;
      }
      continue;
    }
    for (std::size_t b = w * 8; b < w * 8 + 8; ++b) {
      if (twin[b] != current[b]) {
        if (run_begin == page_size) run_begin = b;
      } else if (run_begin != page_size) {
        put_run(out, run_begin, b - run_begin, current);
        run_begin = page_size;
      }
    }
  }
  if (run_begin != page_size)
    put_run(out, run_begin, page_size - run_begin, current);
  return out;
}

namespace {

// Fixed-width 32/64-byte copies. GCC lowers memcpy(·, ·, 64) to eight
// 16-byte xmm moves even under -mavx2; the explicit ymm intrinsics halve
// that. Plain memcpy otherwise — both forms are byte-identical copies.
inline void copy32(std::uint8_t* dst, const std::uint8_t* src) {
#if defined(__AVX2__)
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
#else
  std::memcpy(dst, src, 32);
#endif
}

inline void copy64(std::uint8_t* dst, const std::uint8_t* src) {
  copy32(dst, src);
  copy32(dst + 32, src + 32);
}

// memcpy for one run. Most runs are short (a few words of one cache line),
// where libc memcpy's size dispatch dominates; copy those with overlapping
// fixed-width moves instead. Every store stays inside [dst, dst+n) — the
// overlap is between the head and tail copies of the same run, never with
// bytes outside it, so the byte-exact merge contract holds.
inline void copy_run(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n) {
  if (n > 64) { // first test, not last: keeps the big-run path hot
    if (n <= 128) { // two overlapping 64-byte moves beat a libc call
      copy64(dst, src);
      copy64(dst + n - 64, src + n - 64);
      return;
    }
    std::memcpy(dst, src, n);
    return;
  }
  if (n >= 16) {
    if (n > 32) {
      copy32(dst, src);
      copy32(dst + n - 32, src + n - 32);
      return;
    }
    std::memcpy(dst, src, 16);
    std::memcpy(dst + n - 16, src + n - 16, 16);
    return;
  }
  if (n >= 8) {
    std::memcpy(dst, src, 8);
    std::memcpy(dst + n - 8, src + n - 8, 8);
    return;
  }
  if (n >= 4) {
    std::memcpy(dst, src, 4);
    std::memcpy(dst + n - 4, src + n - 4, 4);
    return;
  }
  if (n >= 2) {
    std::memcpy(dst, src, 2);
    std::memcpy(dst + n - 2, src + n - 2, 2);
    return;
  }
  if (n == 1) *dst = *src;
}

} // namespace

void apply_diff(std::span<const std::uint8_t> diff, std::uint8_t* dst,
                std::size_t page_size) {
  for_each_run(diff, page_size,
               [dst](std::size_t offset, const std::uint8_t* src,
                     std::size_t length) { copy_run(dst + offset, src, length); });
}

std::size_t diff_patch_bytes(std::span<const std::uint8_t> diff,
                             std::size_t page_size) {
  std::size_t total = 0;
  for_each_run(diff, page_size,
               [&total](std::size_t, const std::uint8_t*, std::size_t length) {
                 total += length;
               });
  return total;
}

std::size_t diff_run_count(std::span<const std::uint8_t> diff,
                           std::size_t page_size) {
  std::size_t runs = 0;
  for_each_run(diff, page_size,
               [&runs](std::size_t, const std::uint8_t*, std::size_t) { ++runs; });
  return runs;
}

DiffStats diff_stats(std::span<const std::uint8_t> diff,
                     std::size_t page_size) {
  DiffStats s;
  for_each_run(diff, page_size,
               [&s](std::size_t, const std::uint8_t*, std::size_t length) {
                 s.patch_bytes += length;
                 ++s.runs;
               });
  return s;
}

} // namespace omsp::tmk
