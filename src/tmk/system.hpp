// DsmSystem — a whole TreadMarks cluster in one object.
//
// Owns the router, the DSM contexts (one per node in thread mode, one per
// processor in process mode), the worker-thread pool that implements
// Tmk_fork/Tmk_join (§3.2: all threads are created at startup; slaves block
// between forks), the centralized barrier manager, the distributed lock
// table, the shared-heap allocator and the per-rank virtual clocks.
//
// Usage (mirrors what the OpenMP translator emits):
//
//   tmk::Config cfg;              // 4 nodes x 4 procs, thread mode
//   tmk::DsmSystem dsm(cfg);
//   auto data = dsm.alloc<double>(n);       // master allocates shared data
//   dsm.parallel([&](Rank r) {              // Tmk_fork .. Tmk_join
//     ... data[i] = ...;                    // plain loads/stores; the VM
//     dsm.barrier();                        //   protocol keeps them coherent
//   });
//   double t = dsm.master_time_us();        // simulated elapsed time
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/router.hpp"
#include "race/detector.hpp"
#include "sim/virtual_clock.hpp"
#include "tmk/config.hpp"
#include "tmk/context.hpp"
#include "tmk/global_ptr.hpp"
#include "tmk/heap_alloc.hpp"
#include "trace/tracer.hpp"

namespace omsp::tmk {

class DsmSystem {
public:
  explicit DsmSystem(Config config);
  ~DsmSystem();

  DsmSystem(const DsmSystem&) = delete;
  DsmSystem& operator=(const DsmSystem&) = delete;

  const Config& config() const { return config_; }
  net::Router& router() { return *router_; }
  DsmContext& context(ContextId c) { return *contexts_[c]; }
  std::uint32_t nprocs() const { return config_.topology.nprocs(); }
  std::uint32_t num_contexts() const { return config_.num_contexts(); }

  // --- fork / join -----------------------------------------------------------
  // Run fn(rank) on every rank (the calling master thread runs rank 0).
  // Implements Tmk_fork (master release + slave acquire, with a fork
  // descriptor message per remote context) and Tmk_join (slave release +
  // master acquire). Must be called from the thread that constructed the
  // system; nesting is rejected (OpenMP 1.0 serializes nested parallelism at
  // the layer above).
  void parallel(const std::function<void(Rank)>& fn);
  bool in_parallel() const { return in_parallel_; }

  // --- synchronization (call from inside parallel regions) ------------------
  void barrier();
  void lock_acquire(LockId l);
  // Non-blocking acquire: returns false immediately when the lock is held.
  bool lock_try_acquire(LockId l);
  void lock_release(LockId l);

  // --- shared heap (master only, outside parallel regions) ------------------
  GlobalAddr shared_malloc(std::size_t bytes, std::size_t align = 16);
  void shared_free(GlobalAddr addr);

  template <typename T>
  GlobalPtr<T> alloc(std::size_t count = 1, std::size_t align = alignof(T)) {
    return GlobalPtr<T>(shared_malloc(sizeof(T) * count, align));
  }
  // Page-aligned variant: the paper's applications lay out per-thread data on
  // page boundaries to limit false sharing.
  template <typename T> GlobalPtr<T> alloc_page_aligned(std::size_t count = 1) {
    return GlobalPtr<T>(shared_malloc(sizeof(T) * count, kPageSize));
  }

  HeapAllocator& allocator() { return allocator_; }

  // --- identity / time / stats ----------------------------------------------
  static Rank current_rank();
  sim::VirtualClock& clock(Rank r) { return *clocks_[r]; }
  // Simulated time on the master's clock (the program's elapsed time).
  double master_time_us();
  StatsSnapshot stats() const { return router_->snapshot(); }
  StatsBoard& context_stats(ContextId c) { return router_->stats(c); }
  // Resets counters AND discards buffered trace events together: the two are
  // compared event-for-counter at finish time (docs/OBSERVABILITY.md), so
  // they must always cover the same window.
  void reset_stats() {
    router_->transport().quiesce(); // in-flight sends still count/trace
    router_->reset_stats();
    router_->transport().reset_stats(); // perturbation/loss tallies too
    if (tracer_ != nullptr) tracer_->clear();
  }
  // The tracer owned by this system, or nullptr when tracing is off (or
  // another DsmSystem already holds the process-global tracer slot).
  trace::Tracer* tracer() { return tracer_.get(); }
  // The data-race detector, or nullptr when OMSP_RACE is off (the default).
  race::Detector* race_detector() { return race_.get(); }

private:
  struct LockWaiter {
    Rank rank;
    ContextId ctx;
    bool granted = false;
    double grant_time = 0;
  };

  struct LockState {
    bool initialized = false;
    bool held = false;
    ContextId holder_ctx = 0;
    Rank holder_rank = 0;
    ContextId cached_at = 0; // context owning the token (last holder)
    double release_time = 0;
    std::deque<LockWaiter*> queue;
  };

  void worker_main(Rank rank);
  void rank_epilogue(Rank rank);
  // Barrier-time batched prefetch (overlap.prefetch): run by the barrier
  // manager at the quiescent point after departure records were applied.
  // Issues each context's per-creator kDiffRequestBatch with a clock pinned
  // to that context's departure time (so modeled completion overlaps
  // post-barrier compute) and absorbs every reply before workers resume —
  // keeping creator-side service deterministic per seed.
  void start_prefetch_rounds();
  // TreadMarks-style GC, run by the barrier manager when stored diffs exceed
  // the configured threshold: validate everything, then drop history.
  void maybe_collect_garbage();
  // Tree-mode barrier episode (config_.coll.tree): reduce interval records
  // up the topology-derived leader tree, broadcast departures down it. Runs
  // entirely on the last-arriving thread under bar_mutex_, so the traversal
  // order — and every draw from a seeded transport — is a pure function of
  // the schedule.
  void tree_barrier_episode();
  // Counter + trace bookkeeping for one traversed schedule edge (tree mode).
  void coll_stage(ContextId sender, std::uint32_t level, ContextId leader,
                  std::size_t wire_bytes);
  // Transfer lock `l` (state `st`) from st.cached_at to (to_ctx,to_rank);
  // computes the grant time. locks_mutex_ held.
  double grant_lock(LockId l, LockState& st, ContextId to_ctx, Rank to_rank);
  // Race-detector sweep at a quiescent point (barrier episode / join): pull
  // the not-yet-flushed twin deltas of every context into the detector, then
  // run the pairwise concurrency check. No-op when the detector is off.
  // Must run BEFORE GC/prefetch, whose forced flushes would mint post-merge
  // intervals that causally cover — and so mask — the races of the epoch.
  void maybe_race_sweep();

  // Send a typed one-way notification through the transport layer; returns
  // the modeled one-way cost. The payload itself (interval records, vector
  // times) is applied by direct invocation right after — this accounts the
  // bytes a wire transport would have moved.
  double notify(ContextId src, ContextId dst, net::MsgType type,
                std::size_t bytes) {
    return router_->transport().notify(
        net::Envelope::notice(src, dst, type, bytes));
  }

  std::size_t vt_wire_size() const {
    return VectorTime::wire_size(config_.num_contexts());
  }

  Config config_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<net::Router> router_;
  std::unique_ptr<race::Detector> race_;
  std::vector<std::unique_ptr<DsmContext>> contexts_;
  std::vector<std::unique_ptr<sim::VirtualClock>> clocks_;

  // Allocator (master-only access by contract).
  HeapAllocator allocator_;

  // Fork/join machinery.
  std::mutex fork_mutex_;
  std::condition_variable fork_cv_;
  std::uint64_t fork_gen_ = 0;
  bool stop_ = false;
  std::function<void(Rank)> fork_fn_;
  std::vector<double> fork_start_time_; // per context

  std::mutex join_mutex_;
  std::condition_variable join_cv_;
  std::vector<std::uint32_t> ctx_done_;
  std::uint32_t contexts_done_ = 0;
  bool join_ready_ = false;
  std::vector<double> join_times_; // per rank

  bool in_parallel_ = false;
  std::thread::id master_thread_;

  // Barrier machinery (centralized manager at context 0, §3.1.2).
  std::mutex bar_mutex_;
  std::condition_variable bar_cv_;
  std::uint64_t bar_generation_ = 0;
  std::uint32_t bar_arrived_ = 0;
  std::vector<std::uint32_t> bar_ctx_arrived_;
  std::vector<VectorTime> bar_arrival_vt_;
  std::vector<IntervalRecord> bar_pending_arrivals_;
  std::vector<double> bar_departure_time_; // per context
  double bar_max_arrival_ = 0;
  // Tree mode: per context, the virtual time its last thread reached the
  // barrier — the earliest the context can send its arrival up the tree.
  std::vector<double> bar_ctx_ready_;

  // Lock table.
  std::mutex locks_mutex_;
  std::condition_variable locks_cv_;
  std::unordered_map<LockId, LockState> locks_;

  std::vector<std::thread> workers_;
  std::optional<ThreadHeapBinding::Scope> master_heap_scope_;
  std::optional<sim::VirtualClock::Binder> master_clock_scope_;
};

} // namespace omsp::tmk
