// Vector timestamps over per-context interval sequence numbers.
//
// vt[c] = number of intervals of context c whose write notices this context
// has incorporated. Interval seq numbers start at 1; vt[c] == s means
// intervals 1..s of c are known.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace omsp::tmk {

class VectorTime {
public:
  VectorTime() = default;
  explicit VectorTime(std::uint32_t ncontexts) : v_(ncontexts, 0) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(v_.size()); }

  IntervalSeq operator[](ContextId c) const {
    OMSP_DCHECK(c < v_.size());
    return v_[c];
  }
  IntervalSeq& operator[](ContextId c) {
    OMSP_DCHECK(c < v_.size());
    return v_[c];
  }

  // True if this timestamp already covers interval (c, seq).
  bool covers(ContextId c, IntervalSeq seq) const { return (*this)[c] >= seq; }

  // True if this covers every component of other (other happened-before or
  // equals this).
  bool covers(const VectorTime& other) const {
    OMSP_DCHECK(other.size() == size());
    for (std::uint32_t i = 0; i < size(); ++i)
      if (v_[i] < other.v_[i]) return false;
    return true;
  }

  void merge(const VectorTime& other) {
    OMSP_DCHECK(other.size() == size());
    for (std::uint32_t i = 0; i < size(); ++i)
      if (other.v_[i] > v_[i]) v_[i] = other.v_[i];
  }

  // Scalar that linearizes the happens-before partial order: if a <= b
  // componentwise and a != b then sum(a) < sum(b). Used to apply diffs in a
  // causally consistent order.
  std::uint64_t sum() const {
    std::uint64_t s = 0;
    for (auto x : v_) s += x;
    return s;
  }

  void serialize(ByteWriter& w) const {
    w.put_span<IntervalSeq>({v_.data(), v_.size()});
  }
  static VectorTime deserialize(ByteReader& r) {
    VectorTime vt;
    vt.v_ = r.get_span<IntervalSeq>();
    return vt;
  }

  // Serialized size, for pre-accounting message volumes without an encode
  // pass. Must match serialize() exactly.
  std::size_t wire_size() const { return wire_size(size()); }
  static constexpr std::size_t wire_size(std::uint32_t ncontexts) {
    return span_wire_size<IntervalSeq>(ncontexts);
  }

  bool operator==(const VectorTime&) const = default;

private:
  std::vector<IntervalSeq> v_;
};

} // namespace omsp::tmk
