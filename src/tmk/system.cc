#include "tmk/system.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace omsp::tmk {

namespace {
thread_local Rank t_current_rank = 0;

// Fixed descriptor sizes come from the message registry (net/message.hpp) so
// Table 2 byte totals have a single source of truth.
using net::MsgType;
const std::size_t kForkDescriptorBytes =
    net::msg_fixed_bytes(MsgType::kForkDescriptor);
const std::size_t kLockRequestBytes =
    net::msg_fixed_bytes(MsgType::kLockRequest);
const std::size_t kLockGrantHeaderBytes =
    net::msg_fixed_bytes(MsgType::kLockGrant);
} // namespace

Rank DsmSystem::current_rank() { return t_current_rank; }

DsmSystem::DsmSystem(Config config)
    : config_(config), allocator_(config.heap_bytes) {
  config_.validate();
  const std::uint32_t nc = config_.num_contexts();
  const std::uint32_t np = config_.topology.nprocs();

  // Install the tracer before any context exists so construction-time
  // protocol activity is captured. Environment variables provide an
  // code-free enable when the Config leaves tracing off.
  trace::Options topt = config_.trace;
  if (!topt.enabled) topt = trace::Options::from_env();
  if (topt.enabled) {
    tracer_ = std::make_unique<trace::Tracer>(topt);
    if (!tracer_->install()) tracer_.reset(); // another system is tracing
  }

  std::vector<NodeId> context_node(nc);
  for (ContextId c = 0; c < nc; ++c)
    context_node[c] = config_.node_of_context(c);
  router_ = std::make_unique<net::Router>(std::move(context_node),
                                          config_.cost, config_.topology);

  // Optional layers below the protocol, stacked bottom-up: the queued
  // transport (overlapped delivery) wraps the inline one, and fault
  // injection wraps whichever of those is active. Both are Config-plumbed
  // with environment variables (OMSP_OVERLAP=1, OMSP_PERTURB_SEED=<n>) as
  // code-free enables, mirroring tracing above. The resolved overlap options
  // are written back into config_ before any context is constructed so
  // DsmContext's gating sees them.
  net::PerturbOptions perturb = config_.perturb;
  if (!perturb.enabled) perturb = net::PerturbOptions::from_env();
  config_.perturb = perturb;
  net::OverlapOptions overlap = config_.overlap;
  if (!overlap.enabled) overlap = net::OverlapOptions::from_env();
  config_.overlap = overlap;
  // Collective engine selection follows the same pattern (OMSP_COLL as the
  // code-free enable); resolved before any barrier can run.
  if (!config_.coll.tree) config_.coll = coll::Options::from_env();
  // Zero-copy intra-node delivery, same pattern (OMSP_ZEROCOPY); resolved
  // before any context is constructed so every fetch path sees one answer.
  if (!config_.zerocopy.enabled)
    config_.zerocopy = net::ZeroCopyOptions::from_env();
  // Data-race detection, same pattern (OMSP_RACE); resolved before any
  // context is constructed so every fault/flush hook sees one answer.
  if (!config_.race.enabled()) config_.race = race::Options::from_env();
  if (overlap.enabled || perturb.enabled) {
    std::unique_ptr<net::Transport> t =
        std::make_unique<net::InlineTransport>(*router_);
    if (overlap.enabled)
      t = std::make_unique<net::QueuedTransport>(std::move(t), *router_);
    if (perturb.enabled)
      t = std::make_unique<net::PerturbingTransport>(std::move(t), *router_,
                                                     perturb);
    router_->set_transport(std::move(t));
  }

  contexts_.reserve(nc);
  for (ContextId c = 0; c < nc; ++c)
    contexts_.push_back(std::make_unique<DsmContext>(c, config_, *router_));
  if (config_.race.enabled()) {
    race_ = std::make_unique<race::Detector>(config_.race, nc);
    for (auto& c : contexts_) c->set_race_detector(race_.get());
  }

  clocks_.reserve(np);
  for (Rank r = 0; r < np; ++r)
    clocks_.push_back(
        std::make_unique<sim::VirtualClock>(config_.cost.cpu_scale));

  fork_start_time_.assign(nc, 0.0);
  ctx_done_.assign(nc, 0);
  join_times_.assign(np, 0.0);
  bar_ctx_arrived_.assign(nc, 0);
  bar_arrival_vt_.assign(nc, VectorTime(nc));
  bar_departure_time_.assign(nc, 0.0);
  bar_ctx_ready_.assign(nc, 0.0);

  master_thread_ = std::this_thread::get_id();
  t_current_rank = 0;
  trace::Tracer::bind_thread(0);
  master_heap_scope_.emplace(contexts_[0]->heap().app_base());
  master_clock_scope_.emplace(clocks_[0].get());

  workers_.reserve(np - 1);
  for (Rank r = 1; r < np; ++r)
    workers_.emplace_back([this, r] { worker_main(r); });
}

DsmSystem::~DsmSystem() {
  {
    std::lock_guard<std::mutex> lk(fork_mutex_);
    stop_ = true;
  }
  fork_cv_.notify_all();
  for (auto& w : workers_) w.join();
  master_clock_scope_.reset();
  master_heap_scope_.reset();
  // All emitters are gone once in-flight transport jobs settle; drain the
  // rings and write the configured sinks with the final counter snapshot the
  // trace must reconcile against.
  router_->transport().quiesce();
  if (tracer_ != nullptr) tracer_->finish(router_->snapshot());
}

void DsmSystem::worker_main(Rank rank) {
  const ContextId cid = config_.context_of_rank(rank);
  ThreadHeapBinding::Scope heap_scope(contexts_[cid]->heap().app_base());
  sim::VirtualClock::Binder clock_scope(clocks_[rank].get());
  t_current_rank = rank;
  trace::Tracer::bind_thread(rank);

  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(fork_mutex_);
      fork_cv_.wait(lk, [&] { return stop_ || fork_gen_ > seen_gen; });
      if (stop_) return;
      seen_gen = fork_gen_;
    }
    auto& clk = *clocks_[rank];
    clk.skip_cpu(); // parked time is not compute
    clk.advance_to(fork_start_time_[cid]);
    fork_fn_(rank);
    rank_epilogue(rank);
  }
}

void DsmSystem::rank_epilogue(Rank rank) {
  sim::RuntimeSection rs;
  const ContextId cid = config_.context_of_rank(rank);
  std::lock_guard<std::mutex> lk(join_mutex_);
  join_times_[rank] = clocks_[rank]->now_us();
  if (++ctx_done_[cid] == config_.threads_in_context(cid)) {
    contexts_[cid]->close_interval(); // slave-side release of Tmk_join
    if (++contexts_done_ == config_.num_contexts()) {
      join_ready_ = true;
      join_cv_.notify_all();
    }
  }
}

void DsmSystem::parallel(const std::function<void(Rank)>& fn) {
  OMSP_CHECK_MSG(std::this_thread::get_id() == master_thread_,
                 "parallel() must be called from the master thread");
  OMSP_CHECK_MSG(!in_parallel_, "DsmSystem::parallel does not nest");
  in_parallel_ = true;

  auto& mclk = *clocks_[0];
  mclk.sync_cpu(); // sequential-section compute accrues to the master

  // --- Tmk_fork: master release, slaves acquire ------------------------------
  contexts_[0]->close_interval();
  {
    std::lock_guard<std::mutex> lk(join_mutex_);
    std::fill(ctx_done_.begin(), ctx_done_.end(), 0);
    contexts_done_ = 0;
    join_ready_ = false;
  }
  const double mnow = mclk.now_us();
  fork_start_time_[0] = mnow;
  for (ContextId c = 1; c < config_.num_contexts(); ++c) {
    auto recs = contexts_[0]->records_unknown_to(contexts_[c]->vt_snapshot());
    const std::size_t bytes = kForkDescriptorBytes + records_wire_size(recs);
    const double cost = notify(0, c, MsgType::kForkDescriptor, bytes);
    const auto notices = records_notice_count(recs);
    router_->stats(0).add(Counter::kWriteNoticesSent, notices);
    if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesSent, 0, notices);
    contexts_[c]->apply_records(recs);
    // Fork is a sync edge: the slave's race clock inherits everything the
    // master sync-knows, even intervals the record stream skipped because
    // the slave already held them via data piggybacks.
    if (race_ != nullptr)
      contexts_[c]->sync_cover(contexts_[0]->sync_vt_snapshot());
    fork_start_time_[c] = mnow + cost;
  }
  {
    std::lock_guard<std::mutex> lk(fork_mutex_);
    fork_fn_ = fn;
    ++fork_gen_;
  }
  fork_cv_.notify_all();

  // The master is part of the team: run rank 0's share with app compute
  // charged to the master clock.
  mclk.skip_cpu(); // fork bookkeeping is runtime, not app compute
  fn(0);
  rank_epilogue(0);

  // --- Tmk_join: slaves release, master acquires -----------------------------
  {
    std::unique_lock<std::mutex> lk(join_mutex_);
    join_cv_.wait(lk, [&] { return join_ready_; });
  }
  mclk.sync_cpu();
  for (ContextId c = 1; c < config_.num_contexts(); ++c) {
    auto recs = contexts_[c]->records_unknown_to(contexts_[0]->vt_snapshot());
    const std::size_t bytes = kForkDescriptorBytes + records_wire_size(recs);
    const double cost = notify(c, 0, MsgType::kJoinNotice, bytes);
    const auto notices = records_notice_count(recs);
    router_->stats(c).add(Counter::kWriteNoticesSent, notices);
    if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesSent, c, notices);
    contexts_[0]->apply_records(recs);
    if (race_ != nullptr) // join: master sync-inherits each slave's clock
      contexts_[0]->sync_cover(contexts_[c]->sync_vt_snapshot());
    // Master resumes after the last join message arrives.
    for (Rank r = 0; r < nprocs(); ++r)
      if (config_.context_of_rank(r) == c)
        mclk.advance_to(join_times_[r] + cost);
  }
  for (Rank r = 0; r < nprocs(); ++r)
    if (config_.context_of_rank(r) == 0) mclk.advance_to(join_times_[r]);
  mclk.skip_cpu();

  // Join is a quiescent point like a barrier episode: sweep the epoch's
  // write histories before anything can flush on top of them.
  maybe_race_sweep();

  // Quiescent point: every slave has run its epilogue and emits nothing
  // until the next fork, so the rings can be drained safely (after any
  // fire-and-forget transport jobs — perturbation duplicates — finish).
  router_->transport().quiesce();
  if (tracer_ != nullptr) tracer_->drain_all();

  in_parallel_ = false;
}

void DsmSystem::barrier() {
  const Rank rank = current_rank();
  const ContextId cid = config_.context_of_rank(rank);
  auto& clk = *clocks_[rank];
  clk.sync_cpu();
  const double wait_t0 = clk.now_us();

  std::unique_lock<std::mutex> lk(bar_mutex_);
  const std::uint64_t mygen = bar_generation_;

  const bool tree = config_.coll.tree;
  double arrival_cost = 0;
  if (++bar_ctx_arrived_[cid] == config_.threads_in_context(cid)) {
    // Context-level release: the last thread of the node closes the interval
    // and sends the arrival message to the manager (context 0). The arrival
    // carries every record the manager lacks — not only this context's own:
    // a lock grant can close a third context's interval after that context
    // already arrived (the grant runs on the acquirer's thread), and then
    // only later arrivers know about it.
    //
    // In tree mode the context only closes its interval here: arrivals flow
    // child -> leader -> root inside tree_barrier_episode(), modeled in one
    // deterministic traversal once everyone has arrived.
    contexts_[cid]->close_interval();
    auto recs =
        contexts_[cid]->records_unknown_to(contexts_[0]->vt_snapshot());
    bar_arrival_vt_[cid] = contexts_[cid]->vt_snapshot();
    if (cid != 0 && !tree) {
      const std::size_t bytes = vt_wire_size() + records_wire_size(recs);
      arrival_cost = notify(cid, 0, MsgType::kBarrierArrival, bytes);
      const auto notices = records_notice_count(recs);
      router_->stats(cid).add(Counter::kWriteNoticesSent, notices);
      if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesSent, cid, notices);
      bar_pending_arrivals_.insert(bar_pending_arrivals_.end(),
                                   std::make_move_iterator(recs.begin()),
                                   std::make_move_iterator(recs.end()));
    }
    router_->stats(cid).add(Counter::kBarriers);
    OMSP_TRACE_EVENT(kBarrierArrive, cid, mygen);
  }
  bar_max_arrival_ = std::max(bar_max_arrival_, clk.now_us() + arrival_cost);
  if (tree)
    bar_ctx_ready_[cid] = std::max(bar_ctx_ready_[cid], clk.now_us());

  if (++bar_arrived_ == nprocs()) {
    if (tree) {
      tree_barrier_episode();
    } else {
      // Last arrival: perform the manager's work on this thread.
      contexts_[0]->apply_records(bar_pending_arrivals_);
      bar_pending_arrivals_.clear();
      // Barrier arrivals are sync edges into the manager; departures below
      // hand the merged clock back out. Write entries carry close-time
      // clocks, so this can never mask the epoch's own races.
      if (race_ != nullptr)
        for (ContextId c = 1; c < config_.num_contexts(); ++c)
          contexts_[0]->sync_cover(contexts_[c]->sync_vt_snapshot());
      const double depart =
          bar_max_arrival_ + config_.cost.barrier_service_us;
      bar_departure_time_[0] = depart;
      // Departures all leave through the manager's uplink: message i queues
      // behind the occupancy of the i earlier ones (zero with the default
      // cost knobs, so the seed timing is unchanged).
      double inject_backlog = 0;
      for (ContextId c = 1; c < config_.num_contexts(); ++c) {
        auto recs = contexts_[0]->records_unknown_to(bar_arrival_vt_[c]);
        const std::size_t bytes = vt_wire_size() + records_wire_size(recs);
        const double cost = notify(0, c, MsgType::kBarrierDeparture, bytes);
        const auto notices = records_notice_count(recs);
        router_->stats(0).add(Counter::kWriteNoticesSent, notices);
        if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesSent, 0, notices);
        contexts_[c]->apply_records(recs);
        if (race_ != nullptr)
          contexts_[c]->sync_cover(contexts_[0]->sync_vt_snapshot());
        bar_departure_time_[c] = depart + inject_backlog + cost;
        inject_backlog += config_.topology.message_occupancy_us(
            config_.cost, bytes + net::kHeaderBytes,
            config_.node_of_context(0), config_.node_of_context(c));
      }
    }
    // The race sweep must see the epoch as the merge left it: GC and
    // prefetch below force flushes that mint post-merge intervals whose vts
    // cover — and would mask — the concurrent pairs of this epoch.
    maybe_race_sweep();
    maybe_collect_garbage();
    start_prefetch_rounds();
    // Every other worker is parked in the wait below — a quiescent point;
    // drain so per-episode event volume, not per-run, sizes the rings.
    router_->transport().quiesce();
    if (tracer_ != nullptr) tracer_->drain_all();
    std::fill(bar_ctx_arrived_.begin(), bar_ctx_arrived_.end(), 0);
    std::fill(bar_ctx_ready_.begin(), bar_ctx_ready_.end(), 0.0);
    bar_arrived_ = 0;
    bar_max_arrival_ = 0;
    ++bar_generation_;
    bar_cv_.notify_all();
  } else {
    bar_cv_.wait(lk, [&] { return bar_generation_ != mygen; });
  }
  clk.advance_to(bar_departure_time_[cid]);
  clk.skip_cpu();
  OMSP_TRACE_EVENT(kBarrierWait, cid, mygen, 0, std::uint16_t{0},
                   clk.now_us() - wait_t0);
}

void DsmSystem::maybe_race_sweep() {
  if (race_ == nullptr) return;
  // Pull the epoch's not-yet-flushed writes (live twin deltas) into the
  // detector first: under lazy diffs a page nobody fetched has no flushed
  // diff yet, but its twin delta is exactly what the flush would publish.
  for (auto& c : contexts_) c->race_collect_pending();
  race_->sweep(router_->stats(0));
}

void DsmSystem::coll_stage(ContextId sender, std::uint32_t level,
                           ContextId leader, std::size_t wire_bytes) {
  router_->stats(sender).add(Counter::kCollStages);
  router_->stats(sender).add(Counter::kCollBytes, wire_bytes);
  OMSP_TRACE_EVENT(kCollStage, sender, wire_bytes,
                   (static_cast<std::uint64_t>(level) << 32) | leader);
}

void DsmSystem::tree_barrier_episode() {
  // Modeled entirely by the last-arriving thread under bar_mutex_: the
  // traversal order — and therefore every counter bump and every draw a
  // seeded transport makes — is a pure function of the schedule, not of
  // host thread arrival order.
  const std::uint32_t nc = config_.num_contexts();
  const coll::Schedule sched = coll::Schedule::tree(
      config_.topology, nc,
      [this](std::uint32_t m) { return config_.node_of_context(m); });

  // Up pass (post-order): each context forwards to its leader every record
  // the leader still lacks — its own closed interval plus anything that
  // reached it sideways (lock grants close third-party intervals) — and
  // leaders merge before forwarding, so context 0 ends with the global
  // union exactly as the centralized manager does. A leader's fan-in
  // serializes on its downlink: child i queues behind the occupancy of the
  // i earlier arrivals (zero with the default cost knobs).
  std::vector<double> ready = bar_ctx_ready_;
  std::vector<double> sink_backlog(nc, 0.0);
  for (const std::uint32_t m : sched.up_order()) {
    if (sched.parent(m) < 0) continue;
    const auto parent = static_cast<ContextId>(sched.parent(m));
    auto recs =
        contexts_[m]->records_unknown_to(contexts_[parent]->vt_snapshot());
    const std::size_t bytes = vt_wire_size() + records_wire_size(recs);
    const double cost = notify(m, parent, MsgType::kBarrierArrival, bytes);
    const auto notices = records_notice_count(recs);
    router_->stats(m).add(Counter::kWriteNoticesSent, notices);
    if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesSent, m, notices);
    coll_stage(m, sched.level(m), parent, bytes + net::kHeaderBytes);
    contexts_[parent]->apply_records(recs);
    if (race_ != nullptr) // tree arrival: sync edge child -> leader
      contexts_[parent]->sync_cover(contexts_[m]->sync_vt_snapshot());
    ready[parent] =
        std::max(ready[parent], ready[m] + sink_backlog[parent] + cost);
    // The fan-in serializes at the rate of the stage the edge crosses: an
    // edge switch absorbs its nodes at NIC rate, a spine leader at trunk rate.
    sink_backlog[parent] += config_.topology.stage_occupancy_us(
        config_.cost, sched.level(m), bytes + net::kHeaderBytes);
  }

  const double depart = ready[0] + config_.cost.barrier_service_us;
  bar_departure_time_[0] = depart;

  // Down pass (pre-order, far subtrees first): each leader pushes every
  // record a child still lacks. After its departure message a context holds
  // the full union — the same post-barrier state the centralized path
  // establishes — so prefetch batches and GC run unchanged on top.
  std::vector<double> inject_backlog(nc, 0.0);
  for (const std::uint32_t m : sched.down_order()) {
    if (sched.parent(m) < 0) continue;
    const auto parent = static_cast<ContextId>(sched.parent(m));
    auto recs =
        contexts_[parent]->records_unknown_to(contexts_[m]->vt_snapshot());
    const std::size_t bytes = vt_wire_size() + records_wire_size(recs);
    const double cost = notify(parent, m, MsgType::kBarrierDeparture, bytes);
    const auto notices = records_notice_count(recs);
    router_->stats(parent).add(Counter::kWriteNoticesSent, notices);
    if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesSent, parent, notices);
    coll_stage(parent, sched.level(m), parent, bytes + net::kHeaderBytes);
    contexts_[m]->apply_records(recs);
    if (race_ != nullptr) // tree departure: sync edge leader -> child
      contexts_[m]->sync_cover(contexts_[parent]->sync_vt_snapshot());
    bar_departure_time_[m] =
        bar_departure_time_[parent] + inject_backlog[parent] + cost;
    inject_backlog[parent] += config_.topology.stage_occupancy_us(
        config_.cost, sched.level(m), bytes + net::kHeaderBytes);
  }
}

double DsmSystem::grant_lock(LockId l, LockState& st, ContextId to_ctx,
                             Rank to_rank) {
  const ContextId from = st.cached_at;
  OMSP_CHECK(from != to_ctx);
  // Releaser-side: close the interval so writes made under the lock become
  // notices, then piggyback every record the acquirer lacks on the grant.
  contexts_[from]->close_interval();
  auto recs = contexts_[from]->records_unknown_to(
      contexts_[to_ctx]->vt_snapshot());
  const std::size_t bytes = kLockGrantHeaderBytes + records_wire_size(recs);
  const double cost = notify(from, to_ctx, MsgType::kLockGrant, bytes);
  const auto notices = records_notice_count(recs);
  router_->stats(from).add(Counter::kWriteNoticesSent, notices);
  if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesSent, from, notices);
  OMSP_TRACE_EVENT(kLockGrant, from, l, to_ctx);
  contexts_[to_ctx]->apply_records(recs);
  // Lock transfer: LRC acquire semantics hand the acquirer everything the
  // releaser sync-knows (the grant's record stream alone under-delivers when
  // the acquirer already held some records via data piggybacks).
  if (race_ != nullptr)
    contexts_[to_ctx]->sync_cover(contexts_[from]->sync_vt_snapshot());

  st.held = true;
  st.holder_ctx = to_ctx;
  st.holder_rank = to_rank;
  st.cached_at = to_ctx;
  return std::max(st.release_time, 0.0) + cost;
}

void DsmSystem::lock_acquire(LockId l) {
  const Rank rank = current_rank();
  const ContextId cid = config_.context_of_rank(rank);
  auto& clk = *clocks_[rank];
  clk.sync_cpu();
  const double acq_t0 = clk.now_us();
  router_->stats(cid).add(Counter::kLockAcquires);

  std::unique_lock<std::mutex> lk(locks_mutex_);
  LockState& st = locks_[l];
  if (!st.initialized) {
    st.initialized = true;
    st.cached_at = l % config_.num_contexts(); // static manager owns it first
  }

  if (!st.held && st.cached_at == cid) {
    // Intra-node reacquire: hardware coherence, no messages (§3.3.1).
    st.held = true;
    st.holder_ctx = cid;
    st.holder_rank = rank;
    clk.advance_to(st.release_time);
    clk.skip_cpu();
    OMSP_TRACE_EVENT(kLockAcquire, cid, l, 0, std::uint16_t{0},
                     clk.now_us() - acq_t0);
    return;
  }

  router_->stats(cid).add(Counter::kLockRemoteAcquires);
  const ContextId manager = l % config_.num_contexts();
  if (cid != manager) {
    clk.charge(notify(cid, manager, MsgType::kLockRequest,
                      kLockRequestBytes + vt_wire_size()));
  }
  clk.charge(config_.cost.lock_service_us);
  if (manager != st.cached_at) {
    // Manager forwards the request to the last holder.
    clk.charge(notify(manager, st.cached_at, MsgType::kLockForward,
                      kLockRequestBytes + vt_wire_size()));
  }

  if (!st.held) {
    const double grant_time = grant_lock(l, st, cid, rank);
    clk.advance_to(grant_time);
    clk.skip_cpu();
    OMSP_TRACE_EVENT(kLockAcquire, cid, l, 0, trace::kFlagRemote,
                     clk.now_us() - acq_t0);
    return;
  }

  LockWaiter waiter{rank, cid, false, 0.0};
  st.queue.push_back(&waiter);
  locks_cv_.wait(lk, [&] { return waiter.granted; });
  clk.advance_to(waiter.grant_time);
  clk.skip_cpu();
  OMSP_TRACE_EVENT(kLockAcquire, cid, l, 0, trace::kFlagRemote,
                   clk.now_us() - acq_t0);
}

bool DsmSystem::lock_try_acquire(LockId l) {
  const Rank rank = current_rank();
  const ContextId cid = config_.context_of_rank(rank);
  auto& clk = *clocks_[rank];
  clk.sync_cpu();
  const double acq_t0 = clk.now_us();

  std::unique_lock<std::mutex> lk(locks_mutex_);
  LockState& st = locks_[l];
  if (!st.initialized) {
    st.initialized = true;
    st.cached_at = l % config_.num_contexts();
  }
  if (st.held) {
    // A real implementation asks the manager and gets "busy" back; charge
    // that round trip unless the manager is local.
    const ContextId manager = l % config_.num_contexts();
    if (cid != manager)
      // One accounted message, two charged hops: the "busy" reply carries no
      // payload worth accounting but the round trip still takes time.
      clk.charge(2 * notify(cid, manager, MsgType::kLockRequest,
                            kLockRequestBytes));
    clk.skip_cpu();
    return false;
  }
  router_->stats(cid).add(Counter::kLockAcquires);
  bool remote = false;
  if (st.cached_at == cid) {
    st.held = true;
    st.holder_ctx = cid;
    st.holder_rank = rank;
    clk.advance_to(st.release_time);
  } else {
    remote = true;
    router_->stats(cid).add(Counter::kLockRemoteAcquires);
    const ContextId manager = l % config_.num_contexts();
    if (cid != manager)
      clk.charge(notify(cid, manager, MsgType::kLockRequest,
                        kLockRequestBytes + vt_wire_size()));
    clk.charge(config_.cost.lock_service_us);
    if (manager != st.cached_at)
      clk.charge(notify(manager, st.cached_at, MsgType::kLockForward,
                        kLockRequestBytes + vt_wire_size()));
    clk.advance_to(grant_lock(l, st, cid, rank));
  }
  clk.skip_cpu();
  OMSP_TRACE_EVENT(kLockAcquire, cid, l, 0,
                   remote ? trace::kFlagRemote : std::uint16_t{0},
                   clk.now_us() - acq_t0);
  return true;
}

void DsmSystem::lock_release(LockId l) {
  const Rank rank = current_rank();
  const ContextId cid = config_.context_of_rank(rank);
  auto& clk = *clocks_[rank];
  clk.sync_cpu();

  std::unique_lock<std::mutex> lk(locks_mutex_);
  auto it = locks_.find(l);
  OMSP_CHECK_MSG(it != locks_.end() && it->second.held,
                 "release of a lock that is not held");
  LockState& st = it->second;
  OMSP_CHECK_MSG(st.holder_rank == rank && st.holder_ctx == cid,
                 "lock released by a thread that does not hold it");

  st.release_time = clk.now_us();
  if (st.queue.empty()) {
    st.held = false;
    clk.skip_cpu();
    return;
  }
  LockWaiter* w = st.queue.front();
  st.queue.pop_front();
  if (w->ctx == cid) {
    // Intra-node handoff: hardware shared memory, no protocol action.
    st.holder_ctx = w->ctx;
    st.holder_rank = w->rank;
    w->grant_time = clk.now_us();
  } else {
    w->grant_time = grant_lock(l, st, w->ctx, w->rank);
  }
  w->granted = true;
  locks_cv_.notify_all();
  clk.skip_cpu();
}

void DsmSystem::start_prefetch_rounds() {
  // Runs on the barrier manager's thread while every worker is parked.
  // Issuing AND absorbing here (rather than letting batches race with
  // post-barrier compute) keeps the creator-side state each batch observes —
  // and therefore message counts and sizes — deterministic; the overlap
  // lives entirely in modeled time: each batch is stamped as issued at its
  // context's departure time, and the fault-path drain only charges the
  // residual (ready_us - first_touch) stall, which is zero when the batch
  // would have completed before the first touch.
  if (!config_.overlap.enabled || !config_.overlap.prefetch ||
      config_.protocol != Protocol::kLazyRC ||
      !router_->transport().supports_async())
    return;
  const std::uint32_t nc = config_.num_contexts();
  // The buffer deliberately persists across barriers: entries a context never
  // touched last epoch carry their coverage forward, so the next round asks
  // each creator only for diffs above what is already buffered instead of
  // re-shipping the page's whole history every barrier.
  for (ContextId c = 0; c < nc; ++c) {
    sim::VirtualClock pclk(0.0); // pure runtime: no cpu accrual
    pclk.set_now_us(bar_departure_time_[c]);
    sim::VirtualClock::Binder bind(&pclk);
    contexts_[c]->start_prefetch_round();
  }
  for (ContextId c = 0; c < nc; ++c) contexts_[c]->absorb_prefetch_replies();
}

void DsmSystem::maybe_collect_garbage() {
  // Runs on the barrier manager's thread while every worker is parked at the
  // barrier, so direct cross-context calls are safe.
  if (config_.gc_threshold_bytes == 0) return;
  std::size_t stored = 0;
  for (auto& c : contexts_) stored += c->stored_diff_bytes();
  if (stored <= config_.gc_threshold_bytes) return;
  OMSP_TRACE_EVENT(kGcEpisode, 0, stored);

  const std::uint32_t nc = config_.num_contexts();
  // Fixpoint: validating a page can flush a twin at its creator, which mints
  // a new interval other contexts then need. Each pass consumes twins and
  // never creates new application writes (all threads are parked), so the
  // loop reaches quiescence quickly.
  for (int pass = 0; pass < 16; ++pass) {
    // Pull every record into context 0, then push the union to everyone.
    for (ContextId c = 1; c < nc; ++c) {
      auto recs = contexts_[c]->records_unknown_to(contexts_[0]->vt_snapshot());
      notify(c, 0, MsgType::kGcRecords, records_wire_size(recs));
      contexts_[0]->apply_records(recs);
    }
    for (ContextId c = 1; c < nc; ++c) {
      auto recs = contexts_[0]->records_unknown_to(contexts_[c]->vt_snapshot());
      notify(0, c, MsgType::kGcRecords, records_wire_size(recs));
      contexts_[c]->apply_records(recs);
    }
    std::uint64_t seq_sum_before = 0;
    for (ContextId c = 0; c < nc; ++c)
      seq_sum_before += contexts_[c]->own_seq();
    for (ContextId c = 0; c < nc; ++c) contexts_[c]->validate_all_pages();
    std::uint64_t seq_sum_after = 0;
    for (ContextId c = 0; c < nc; ++c)
      seq_sum_after += contexts_[c]->own_seq();
    if (seq_sum_after == seq_sum_before) break;
  }
  // One final exchange so every vector time is identical, then drop the
  // consistency history everywhere.
  for (ContextId c = 1; c < nc; ++c) {
    auto recs = contexts_[c]->records_unknown_to(contexts_[0]->vt_snapshot());
    contexts_[0]->apply_records(recs);
    if (race_ != nullptr) // GC's gather is a sync edge into the manager
      contexts_[0]->sync_cover(contexts_[c]->sync_vt_snapshot());
  }
  const VectorTime everything = contexts_[0]->vt_snapshot();
  for (ContextId c = 1; c < nc; ++c) {
    auto recs = contexts_[0]->records_unknown_to(contexts_[c]->vt_snapshot());
    contexts_[c]->apply_records(recs);
    if (race_ != nullptr) // ... and the push-back hands the union out
      contexts_[c]->sync_cover(contexts_[0]->sync_vt_snapshot());
    OMSP_CHECK_MSG(contexts_[c]->vt_snapshot() == everything,
                   "GC requires identical vector times");
  }
  for (ContextId c = 0; c < nc; ++c) contexts_[c]->collect_garbage();
  // Every page was just validated (applied == pending everywhere), so all
  // buffered prefetch entries are stale; drop them with the rest of the
  // history so requester-side buffers do not outlive the GC they survived.
  for (ContextId c = 0; c < nc; ++c) contexts_[c]->clear_prefetch_buffer();
}

GlobalAddr DsmSystem::shared_malloc(std::size_t bytes, std::size_t align) {
  OMSP_CHECK_MSG(!in_parallel_,
                 "shared_malloc must be called from sequential sections");
  OMSP_CHECK_MSG(std::this_thread::get_id() == master_thread_,
                 "shared_malloc is master-only");
  const GlobalAddr addr = allocator_.allocate(bytes, align);
  OMSP_CHECK_MSG(addr != kNullGlobalAddr, "shared heap exhausted");
  return addr;
}

void DsmSystem::shared_free(GlobalAddr addr) {
  OMSP_CHECK_MSG(!in_parallel_,
                 "shared_free must be called from sequential sections");
  allocator_.free(addr);
}

double DsmSystem::master_time_us() {
  clocks_[0]->sync_cpu();
  return clocks_[0]->now_us();
}

} // namespace omsp::tmk
