// Intervals and write notices — the units of consistency information in
// lazy release consistency.
//
// A context closes an interval at each release that transfers consistency
// information to another context (lock handoff, barrier arrival, fork/join).
// The interval record carries the creator's vector time and the list of pages
// dirty in that interval; each (page, interval) pair acts as a write notice:
// a receiving context invalidates its copy of the page and later fetches the
// corresponding diff from the creator on demand.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "tmk/vclock.hpp"

namespace omsp::tmk {

struct IntervalRecord {
  ContextId creator = kInvalidContext;
  IntervalSeq seq = 0; // 1-based per creator
  VectorTime vt;       // creator's vector time when the interval closed
  std::vector<PageId> pages; // write notices

  void serialize(ByteWriter& w) const {
    w.put<ContextId>(creator);
    w.put<IntervalSeq>(seq);
    vt.serialize(w);
    w.put_span<PageId>({pages.data(), pages.size()});
  }

  static IntervalRecord deserialize(ByteReader& r) {
    IntervalRecord rec;
    rec.creator = r.get<ContextId>();
    rec.seq = r.get<IntervalSeq>();
    rec.vt = VectorTime::deserialize(r);
    rec.pages = r.get_span<PageId>();
    return rec;
  }

  // Serialized size (used to pre-account message volumes without an extra
  // encode pass). Must match serialize() exactly.
  std::size_t wire_size() const {
    return sizeof(ContextId) + sizeof(IntervalSeq) + vt.wire_size() +
           span_wire_size<PageId>(pages.size());
  }
};

inline void serialize_records(const std::vector<IntervalRecord>& recs,
                              ByteWriter& w) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(recs.size()));
  for (const auto& r : recs) r.serialize(w);
}

// Serialized size of a record batch; used to account message volumes for
// payloads that are logically transferred but applied by direct invocation.
inline std::size_t records_wire_size(const std::vector<IntervalRecord>& recs) {
  std::size_t n = 4;
  for (const auto& r : recs) n += r.wire_size();
  return n;
}

// Total write notices (page entries) in a record batch.
inline std::uint64_t records_notice_count(const std::vector<IntervalRecord>& recs) {
  std::uint64_t n = 0;
  for (const auto& r : recs) n += r.pages.size();
  return n;
}

inline std::vector<IntervalRecord> deserialize_records(ByteReader& r) {
  auto n = r.get<std::uint32_t>();
  std::vector<IntervalRecord> recs;
  recs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    recs.push_back(IntervalRecord::deserialize(r));
  return recs;
}

} // namespace omsp::tmk
