// DsmContext — one TreadMarks address space.
//
// In thread mode a context is an SMP node shared by procs_per_node worker
// threads (the paper's contribution); in process mode a context is a single
// processor (the paper's "original" system). Each context owns:
//   * a private copy of the shared heap (HeapMapping) whose page protections
//     implement access detection,
//   * a page table with twins, stored per-interval diffs and fetch state,
//   * the lazy-release-consistency bookkeeping: a vector time, the table of
//     known intervals with their write notices, and per-page pending/applied
//     interval marks per creator.
//
// Correctness cornerstones (each guards against a bug class found while
// hardening the protocol; see DESIGN.md):
//   * Byte-exact diffs: a diff never carries an unchanged byte, so the
//     multiple-writer merge only touches bytes its creator actually wrote.
//   * A flush write-protects the page BEFORE scanning it, so a concurrent
//     sibling store either completes (visible to the diff) or faults.
//   * Incoming diffs are applied to the twin as well as the working copy, so
//     a local diff never re-exports another context's bytes.
//   * A diff whose twin held writes not yet covered by a published interval
//     is tagged with a freshly minted interval carrying the context's
//     current vector time. Combined with diff replies piggybacking the
//     interval records the requester lacks, every consumer's later intervals
//     causally dominate the bytes it consumed — which makes the vt-sum apply
//     order correct for all conflicting diffs.
//   * Diffs gathered across all rounds of one fetch are applied in a single
//     globally vt-sorted pass (a per-round apply could put an older diff on
//     top of a newer one).
//   * Observability: every StatsBoard increment on these paths is paired
//     with an OMSP_TRACE_EVENT at the same site, and `omsp-trace check`
//     asserts a lossless trace reconstructs every counter exactly — so a
//     protocol change that forgets either half of the pair fails the trace
//     integration tests rather than silently skewing Tables 2-3.
//
// Locking discipline (deadlock-free by construction):
//   page_lock(p)  — guards one page's state/twin/diffs. Taken by the fault
//                   path, invalidation, and the remote diff-request handler
//                   (each only for its own context's pages). NEVER held
//                   across a remote call: the fault path marks the page
//                   "fetch in progress", unlocks, fetches, re-locks.
//   table_mutex_  — guards vt/interval table/pending/applied/last_listed.
//                   May be taken while holding a page lock, never the other
//                   way round.
//   dirty_mutex_  — guards the dirty-page bitset; leaf lock (may nest inside
//                   both of the above).
// Remote handlers only take locks of the *target* context and never call out
// while holding them, so the wait-for graph has no cross-context cycles.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitset.hpp"
#include "common/buffer_pool.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/router.hpp"
#include "race/detector.hpp"
#include "tmk/config.hpp"
#include "tmk/diff.hpp"
#include "tmk/fault_registry.hpp"
#include "tmk/heap_mapping.hpp"
#include "tmk/interval.hpp"
#include "tmk/vclock.hpp"

namespace omsp::tmk {

enum class PageState : std::uint8_t { kInvalid, kRead, kReadWrite };

// Test-only seam: when non-null, called from apply_bytes_at_home with the
// home's context id and page, page lock held, after the (modeled) write
// enable and before the incoming bytes are applied — i.e. inside the window
// the original system's protection dance used to open on the app mapping.
// Regression tests use it to park a handler mid-update while a home
// application thread stores into the same page, pinning the ordering that
// every such store faults and is twin-tracked. Never set outside tests.
extern void (*testing_home_apply_hook)(ContextId home, PageId page);

class DsmContext final : public FaultTarget, public net::MessageHandler {
public:
  DsmContext(ContextId id, const Config& config, net::Router& router);
  ~DsmContext() override;

  DsmContext(const DsmContext&) = delete;
  DsmContext& operator=(const DsmContext&) = delete;

  ContextId id() const { return id_; }
  HeapMapping& heap() { return heap_; }
  StatsBoard& stats() { return *stats_; }
  std::size_t num_pages() const { return heap_.pages(); }

  // --- access-miss handling (FaultTarget) ----------------------------------
  void on_fault(void* addr, bool is_write) override;

  // --- remote requests (net::MessageHandler) -------------------------------
  // Idempotent under re-delivery (the Transport contract): a duplicate
  // kDiffRequest finds the twin already consumed and ships the same stored
  // diffs again; a duplicate kDiffToHome re-applies byte-identical diffs; a
  // duplicate kPageRequest is a pure read. A lossy/perturbing transport may
  // therefore retransmit any of these without corrupting page contents.
  void handle(ContextId src, net::MsgType type, ByteReader& request,
              ByteWriter& reply) override;

  // --- release / acquire protocol ------------------------------------------
  // Close the open interval. Returns the record (already stored locally) if
  // there were dirty pages, nullopt otherwise.
  std::optional<IntervalRecord> close_interval();

  // Incorporate foreign interval records: store them, merge the vector time,
  // record pending write notices and invalidate affected pages.
  //
  // `sync` marks records arriving over a synchronization edge — barrier
  // arrival/departure, fork/join, lock grant, GC exchange — and additionally
  // merges them into the SYNC vector time the race detector orders accesses
  // by. Data-path piggybacks (page/diff fetch replies, prefetch batches)
  // pass false: a data fetch moves bytes, not happens-before — treating it
  // as an ordering edge would hide a race whenever the second writer's
  // fault lands after the first writer's stores (host-scheduling dependent).
  void apply_records(const std::vector<IntervalRecord>& records,
                     bool sync = true);

  // All records (any creator) with seq > other_vt[creator]. Used to build
  // lock-grant, barrier and diff-reply payloads.
  std::vector<IntervalRecord> records_unknown_to(const VectorTime& other_vt);

  // This context's own records with seq > since (test hook).
  std::vector<IntervalRecord> own_records_since(IntervalSeq since);

  VectorTime vt_snapshot();
  // The synchronization-only clock (see sync_vt_): what this context knows
  // through real sync edges alone. This is what sync_cover() on a peer
  // should receive — passing vt_snapshot() would launder data-piggyback
  // knowledge into the happens-before order.
  VectorTime sync_vt_snapshot();
  IntervalSeq own_seq();

  // --- introspection (tests) ------------------------------------------------
  PageState page_state(PageId p);
  bool page_dirty(PageId p);
  std::size_t stored_diff_count(PageId p);
  // Pool introspection: free blocks currently parked in the twin/diff pools.
  std::size_t twin_pool_free() const { return twin_pool_.free_count(); }
  std::size_t diff_pool_free() const { return diff_pool_.free_count(); }

  // Eagerly flush all dirty pages to diffs (the !lazy_diffs ablation; also a
  // test hook).
  void flush_all_diffs();

  // --- garbage collection (quiescent barriers only) --------------------------
  // Bytes of stored diffs currently held for remote consumption.
  std::size_t stored_diff_bytes() const {
    return stored_diff_bytes_.load(std::memory_order_relaxed);
  }
  // Bring every page up to date (fetch all pending diffs). Caller must
  // guarantee no concurrent application activity (all threads at a barrier).
  void validate_all_pages();
  // Drop stored diffs and compact interval tables. Only sound when every
  // context has validated (applied == pending everywhere) and all vector
  // times are equal — the caller (the barrier manager) checks that.
  void collect_garbage();

  // --- barrier-time batched prefetch (overlap.prefetch) ---------------------
  // Issue one aggregated kDiffRequestBatch per creator covering every page
  // this context holds pending-but-unapplied notices for. Called once per
  // context right after barrier departure (clock == departure time) so the
  // fetch overlaps post-barrier compute until first touch. No-op unless the
  // transport supports async and the protocol is lazy RC.
  void start_prefetch_round();
  // Block until every in-flight prefetch batch has replied and park the
  // diffs in the prefetch buffer. Safe to call from any thread not holding
  // a page lock.
  void absorb_prefetch_replies();
  // Drop all buffered prefetched diffs. The buffer persists across barriers
  // (its per-entry coverage is what stops a round from re-shipping history),
  // so this is only sound right after a GC validated every page — everything
  // buffered is stale by then.
  void clear_prefetch_buffer();

  // --- data-race detection (OMSP_RACE) ---------------------------------------
  // Wire the system-owned detector in; every flush and fault hook feeds it.
  // nullptr (the default) keeps all hooks inert.
  void set_race_detector(race::Detector* d) { race_ = d; }
  // Sync-edge hook: merge a peer's full vector time into the sync clock.
  // Called by the system at real synchronization transfers (barrier
  // departure, fork, join, lock grant) where the record stream alone can
  // under-deliver: records_unknown_to() skips intervals this context already
  // learned through data piggybacks, but after a sync edge those intervals
  // ARE happens-before ordered and the race clock must say so.
  void sync_cover(const VectorTime& vt);
  // Sweep-time collection: record each dirty page's delta since the last
  // collection (diff against the page's race twin) as a write of the page's
  // current unflushed interval. Uncounted (no stats, no clock charge — a
  // diagnostic read, not protocol traffic); only called from the system's
  // quiescent-point sweep.
  void race_collect_pending();

private:
  struct PageMeta {
    PageState state = PageState::kRead;
    // Mirror of the application mapping's actual protection; lets process
    // mode know when an explicit write-enable mprotect is required.
    Protection prot = Protection::kRead;
    bool fetch_in_progress = false;
    // Prefetch-candidate gate, both required. `fresh_invalidate` is set on
    // the valid->invalid transition and consumed by the next prefetch round:
    // pages that stayed invalid because the context stopped touching them
    // don't re-qualify. `ever_accessed` is set at the first fault and never
    // cleared: pages are born kRead, so the transition alone also fires for
    // born-valid pages this context never touched (e.g. a whole array the
    // master initialized), which would ship every creator's stream here
    // speculatively.
    bool fresh_invalidate = false;
    bool ever_accessed = false;
    // Set whenever write access is granted; cleared when a flush ships the
    // twin. While set, the twin may hold writes not yet covered by any
    // published interval, so the flush must mint a fresh interval for them.
    bool written_since_flush = false;
    // Pooled 4 KB block (PagePool::Handle returns it to twin_pool_ on reset;
    // same null/reset discipline as the unique_ptr it replaced).
    PagePool::Handle twin;
    // Race-detection baseline (detector on only): the page content at the
    // last time the detector collected this page's delta. Born equal to the
    // twin, advanced to the current content at every collection, and patched
    // with the same remote bytes as the twin — so (current − race_twin) is
    // exactly the local writes not yet attributed to an interval, while the
    // protocol twin keeps its own lifecycle untouched. Dies with the twin.
    PagePool::Handle race_twin;
    // Newest own interval seq whose close (or the sweep) has collected this
    // page's delta. Lets a fetch-forced flush tell pre-close bytes (a close
    // listed p but has not collected it yet — attribute to that close) from
    // current-epoch bytes (attribute to the freshly minted interval).
    IntervalSeq race_collected_seq = 0;
    // Per-interval diffs created by this context for this page, seq ascending.
    std::vector<std::pair<IntervalSeq, DiffBytes>> stored_diffs;
  };

  struct IntervalInfo {
    VectorTime vt;
    std::vector<PageId> pages;
  };

  std::mutex& page_lock(PageId p) {
    return per_page_locks_ ? page_mutexes_[p] : coarse_page_mutex_;
  }

  // Fault path helpers. All called with page_lock(p) held unless noted.
  void fetch_and_apply(PageId p, std::unique_lock<std::mutex>& lock);
  void make_twin(PageId p);
  // Creator-side: turn the outstanding twin into a stored diff, minting a
  // fresh interval when the twin holds unpublished writes. Frees the twin.
  void flush_page_diff_locked(PageId p);
  // Counted protection change that keeps PageMeta.prot in sync.
  void set_prot(PageId p, Protection prot);
  // Home-based protocol helpers.
  ContextId home_of(PageId p) const { return p % nc_; }
  void fetch_from_home(PageId p, std::unique_lock<std::mutex>& lock);
  // Install `bytes` into this (home) context's copy of p, preserving a
  // concurrent local twin's delta discipline.
  void apply_bytes_at_home(PageId p, const std::uint8_t* bytes,
                           std::size_t len, bool full_page);

  std::uint64_t vt_sum_of_own(IntervalSeq seq);

  // True when a payload of `payload_bytes` arriving from `peer` may be
  // handed over as a view instead of a deserialized copy: zero-copy enabled,
  // same physical node (stage-0 adjacency in sim::Topology), and at least
  // the configured switchover threshold.
  bool zerocopy_eligible(ContextId peer, std::size_t payload_bytes) const {
    return config_.zerocopy.enabled &&
           payload_bytes >= config_.zerocopy.threshold_bytes &&
           router_.same_node(id_, peer);
  }

  // --- overlapped-fetch internals -------------------------------------------
  // One diff as shipped on the wire, parked until a fetch session drains it.
  // `view` always points at the diff payload; on the copy path it views
  // `owned`, on the zero-copy path it views the shared reply buffer kept
  // alive by `backing` (moving `owned` preserves its heap pointer, so views
  // survive container moves either way).
  struct BufferedDiff {
    IntervalSeq seq = 0;
    std::uint64_t vt_sum = 0;
    DiffBytes owned;
    std::shared_ptr<std::vector<std::uint8_t>> backing;
    std::span<const std::uint8_t> view;
  };
  // Prefetched state for one (page, creator) pair. `floor` is the creator's
  // last_listed_ answer (lets the drain advance applied_ even when no diffs
  // shipped); `ready_us` is the modeled completion time of the batch reply.
  // `covers` says every interval at or below it is either applied at request
  // time or present in `diffs` — the next prefetch round requests only diffs
  // above the buffered coverage, so a page that sits prefetched-but-untouched
  // across barriers ships each diff once, not its whole history every round.
  struct PrefetchEntry {
    ContextId creator = 0;
    IntervalSeq floor = 0;
    IntervalSeq covers = 0;
    double ready_us = 0;
    std::vector<BufferedDiff> diffs;
  };
  // One outstanding kDiffRequestBatch: the pages asked of one creator plus
  // the pending reply handle.
  struct PrefetchBatch {
    ContextId creator = 0;
    std::vector<std::pair<PageId, IntervalSeq>> pages; // (page, have)
    net::PendingReply reply;
  };

  // True when this context may issue/consume overlapped traffic.
  bool overlap_async_fetch() const;
  bool overlap_prefetch() const;
  // Wait for one batch's reply, apply its piggybacked records (no locks
  // held), then park its diffs in prefetch_buffer_. Caller must have removed
  // the batch from prefetch_inflight_ already.
  void absorb_batch_reply(PrefetchBatch& batch);
  // Absorb only the in-flight batches whose page list contains p (fault
  // path: first touch of a prefetched page waits for its batch instead of
  // re-requesting the same diffs). No page lock may be held.
  void absorb_inflight_for(PageId p);

  // Guards prefetch_inflight_ and prefetch_buffer_. Never held across a
  // blocking wait or while taking any other lock: absorb removes batches
  // under it, releases it, waits/parses, then re-takes it to insert buffer
  // entries; the fault-path drain takes it briefly inside a page lock.
  std::mutex prefetch_mutex_;
  std::vector<PrefetchBatch> prefetch_inflight_;
  // Buffered prefetched diffs per page. A pure cache: applied_ only advances
  // when entries are drained into an active fetch session (draining under
  // the page lock), never at absorb time — otherwise a fetch session already
  // past its drain could mark bytes applied that it never merged.
  std::unordered_map<PageId, std::vector<PrefetchEntry>> prefetch_buffer_;

  const Config& config_;
  ContextId id_;
  std::uint32_t nc_ = 0; // cached num_contexts
  net::Router& router_;
  StatsBoard* stats_;
  race::Detector* race_ = nullptr;
  HeapMapping heap_;

  bool per_page_locks_;
  std::unique_ptr<std::mutex[]> page_mutexes_;
  std::mutex coarse_page_mutex_;
  std::condition_variable_any fetch_cv_;

  // Free-list pools for the fault/flush hot paths. Declared BEFORE pages_:
  // PageMeta.twin handles return their blocks to twin_pool_ on destruction,
  // so the pool must outlive the page table (members destroy in reverse
  // declaration order).
  PagePool twin_pool_{kPageSize};
  BufferPool diff_pool_;

  std::vector<PageMeta> pages_;

  std::mutex dirty_mutex_;
  DynamicBitset dirty_;

  std::atomic<std::size_t> stored_diff_bytes_{0};

  std::mutex table_mutex_;
  VectorTime vt_;
  // Synchronization-only vector time (guarded by table_mutex_ like vt_):
  // advanced by own interval closes and by apply_records(sync=true) merges,
  // never by data-path piggybacks. sync_vt_ <= vt_ componentwise. The race
  // detector captures THIS clock in its write entries, so two accesses look
  // ordered only when a real sync chain (barrier, fork/join, lock transfer)
  // connects them — not when one merely fetched the other's bytes.
  VectorTime sync_vt_;
  // Interval records per creator; the record for (c, seq) lives at index
  // seq - 1 - table_base_[c]. GC advances the base and drops the prefix.
  std::vector<std::vector<IntervalInfo>> table_;
  std::vector<IntervalSeq> table_base_;
  // last_listed_[p]: newest own interval whose record lists page p.
  std::vector<IntervalSeq> last_listed_;
  // pending_[p * ncontexts + c]: newest notice seq received for (p, c).
  // applied_[p * ncontexts + c]: newest diff seq applied for (p, c).
  std::vector<IntervalSeq> pending_;
  std::vector<IntervalSeq> applied_;
  // Close-time sync_vt_ per own interval seq, populated (detector on only)
  // by close_interval and the flush mint branch, consumed and cleared by
  // race_collect_pending at the next sweep. Guarded by table_mutex_.
  std::map<IntervalSeq, VectorTime> close_sync_vts_;
};

} // namespace omsp::tmk
