// Twin/diff machinery for the multiple-writer protocol.
//
// On the first write to a page in an interval the faulting context copies the
// page to a "twin". A diff is the run-length encoding of the bytes that
// changed between the twin and the current contents; applying a diff patches
// only those bytes, which is what lets two contexts modify disjoint parts of
// the same page concurrently (false sharing) and merge at the next
// synchronization.
//
// Encoding: sequence of runs, each {u16 offset, u16 length, length bytes},
// comparing at machine-word granularity and then trimming to bytes, which is
// how TreadMarks keeps diff creation cheap while emitting compact patches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace omsp::tmk {

inline constexpr std::size_t kPageSize = 4096;

using DiffBytes = std::vector<std::uint8_t>;

// Encode the difference (twin -> current) of one page. Returns an empty
// vector when nothing changed.
DiffBytes create_diff(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size = kPageSize);

// Patch `dst` with a diff produced by create_diff. `dst` must point at a
// buffer of at least the page size the diff was created with.
void apply_diff(std::span<const std::uint8_t> diff, std::uint8_t* dst);

// Number of payload bytes a diff patches (sum of run lengths); used by
// tests and the stats counters.
std::size_t diff_patch_bytes(std::span<const std::uint8_t> diff);

// Number of runs in a diff.
std::size_t diff_run_count(std::span<const std::uint8_t> diff);

} // namespace omsp::tmk
