// Twin/diff machinery for the multiple-writer protocol.
//
// On the first write to a page in an interval the faulting context copies the
// page to a "twin". A diff is the run-length encoding of the bytes that
// changed between the twin and the current contents; applying a diff patches
// only those bytes, which is what lets two contexts modify disjoint parts of
// the same page concurrently (false sharing) and merge at the next
// synchronization.
//
// Encoding: sequence of runs, each {u16 offset, u16 length, length bytes}.
// A run is a MAXIMAL stretch of strictly differing bytes — any equal byte
// terminates it — so the encoding is canonical: every correct encoder
// produces byte-identical output for the same (twin, current) pair. That is
// the contract that lets create_diff() be vectorized: the wide kernels
// (AVX2/SSE2, selected at build time, with a portable 64-bit-word fallback)
// compute a per-byte "differs" mask 64 bytes at a time and feed it to one
// shared mask->run emitter, and the property tests assert the output equals
// create_diff_scalar()'s byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace omsp::tmk {

inline constexpr std::size_t kPageSize = 4096;

using DiffBytes = std::vector<std::uint8_t>;

namespace detail {

// Wire layout of one run header. A page offset fits in 16 bits for pages up
// to 64K; so does the length of any run shorter than a full 64K page.
struct RunHeader {
  std::uint16_t offset;
  std::uint16_t length;
};

} // namespace detail

// Walk every run of a diff, validating as it goes: each header must be
// complete, each run's payload must be inside the diff buffer, and each run
// must land entirely inside [0, page_size). All of apply_diff(),
// diff_patch_bytes(), diff_run_count() and diff_stats() are this one loop —
// malformed input dies on the same OMSP_CHECKs everywhere.
// fn(offset, payload, length) is called once per run.
template <typename Fn>
inline void for_each_run(std::span<const std::uint8_t> diff,
                         std::size_t page_size, Fn&& fn) {
  const std::uint8_t* p = diff.data();
  const std::size_t n = diff.size();
  std::size_t pos = 0;
  while (pos < n) {
    OMSP_CHECK_MSG(pos + sizeof(detail::RunHeader) <= n,
                   "truncated diff header");
    detail::RunHeader h;
    std::memcpy(&h, p + pos, sizeof h);
    pos += sizeof h;
    const std::size_t offset = h.offset, length = h.length;
    // One fused test: run payload inside the diff AND inside the page.
    OMSP_CHECK_MSG((pos + length <= n) & (offset + length <= page_size),
                   "truncated diff run or run overflows page");
    fn(offset, p + pos, length);
    pos += length;
  }
}

// Encode the difference (twin -> current) of one page. Returns an empty
// vector when nothing changed. Uses the widest compare kernel the build
// enabled (see diff_kernel_name()).
DiffBytes create_diff(const std::uint8_t* twin, const std::uint8_t* current,
                      std::size_t page_size = kPageSize);

// Same, writing into `out` (cleared first). Reuses out's capacity — the
// flush path feeds pooled scratch vectors through this to avoid one heap
// allocation per dirty page.
void create_diff_into(const std::uint8_t* twin, const std::uint8_t* current,
                      DiffBytes& out, std::size_t page_size = kPageSize);

// The original word-at-a-time scalar encoder, kept as the executable
// reference: property tests assert the SIMD kernel's output is
// byte-identical, and micro_dsm benches it against create_diff() to record
// the speedup in BENCH_*.json.
DiffBytes create_diff_scalar(const std::uint8_t* twin,
                             const std::uint8_t* current,
                             std::size_t page_size = kPageSize);

// Which compare kernel create_diff() was compiled with: "avx2", "sse2" or
// "portable64".
const char* diff_kernel_name();

// Patch `dst` with a diff produced by create_diff. `dst` must point at a
// buffer of at least `page_size` bytes; a run that would write outside it is
// rejected (OMSP_CHECK) before any byte of that run is copied.
void apply_diff(std::span<const std::uint8_t> diff, std::uint8_t* dst,
                std::size_t page_size = kPageSize);

// Number of payload bytes a diff patches (sum of run lengths); used by
// tests and the stats counters.
std::size_t diff_patch_bytes(std::span<const std::uint8_t> diff,
                             std::size_t page_size = kPageSize);

// Number of runs in a diff.
std::size_t diff_run_count(std::span<const std::uint8_t> diff,
                           std::size_t page_size = kPageSize);

// Both of the above in one walk (the barrier flush wants both counters and
// should not pay two passes).
struct DiffStats {
  std::size_t patch_bytes = 0;
  std::size_t runs = 0;
};
DiffStats diff_stats(std::span<const std::uint8_t> diff,
                     std::size_t page_size = kPageSize);

} // namespace omsp::tmk
