// Cross-context pointers into the shared heap.
//
// Real TreadMarks maps the shared heap at the same virtual address in every
// process, so raw pointers travel. Here every context maps its own copy at a
// distinct base, so the portable pointer is the heap *offset*; GlobalPtr<T>
// resolves it through the calling thread's bound context base. Worker threads
// are bound by DsmSystem for their lifetime; the master thread is bound while
// its DsmSystem exists.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace omsp::tmk {

// Thread-local binding installed by DsmSystem.
struct ThreadHeapBinding {
  static std::uint8_t*& base() {
    thread_local std::uint8_t* tls = nullptr;
    return tls;
  }

  class Scope {
  public:
    explicit Scope(std::uint8_t* b) : prev_(base()) { base() = b; }
    ~Scope() { base() = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    std::uint8_t* prev_;
  };
};

template <typename T> class GlobalPtr {
public:
  GlobalPtr() = default;
  explicit GlobalPtr(GlobalAddr addr) : addr_(addr) {}

  static GlobalPtr null() { return GlobalPtr(kNullGlobalAddr); }
  bool is_null() const { return addr_ == kNullGlobalAddr; }
  explicit operator bool() const { return !is_null(); }

  GlobalAddr addr() const { return addr_; }

  // Resolve in the calling thread's context.
  T* local() const {
    OMSP_DCHECK(!is_null());
    std::uint8_t* base = ThreadHeapBinding::base();
    OMSP_DCHECK(base != nullptr);
    return reinterpret_cast<T*>(base + addr_);
  }

  T& operator*() const { return *local(); }
  T* operator->() const { return local(); }
  T& operator[](std::size_t i) const { return local()[i]; }

  GlobalPtr operator+(std::ptrdiff_t n) const {
    return GlobalPtr(addr_ + static_cast<GlobalAddr>(n * static_cast<std::ptrdiff_t>(sizeof(T))));
  }
  GlobalPtr operator-(std::ptrdiff_t n) const { return *this + (-n); }
  GlobalPtr& operator+=(std::ptrdiff_t n) { return *this = *this + n; }

  // Reinterpret as a pointer to another element type at the same offset.
  template <typename U> GlobalPtr<U> cast() const {
    return GlobalPtr<U>(addr_);
  }

  bool operator==(const GlobalPtr&) const = default;

private:
  GlobalAddr addr_ = kNullGlobalAddr;
};

} // namespace omsp::tmk
