// Shared-heap allocator (the Tmk_malloc of the paper).
//
// Returns GlobalAddr offsets into the shared heap. A first-fit free list with
// coalescing; metadata lives host-side (not in DSM memory), which is
// interface-equivalent to TreadMarks' allocator while keeping allocator
// traffic out of the measured protocol counters. Allocation is master-only
// (OpenMP programs allocate shared data in sequential sections; the paper's
// translator hoists such allocations the same way), so the class is not
// thread-safe by design — DsmSystem enforces the discipline.
#pragma once

#include <cstddef>
#include <map>

#include "common/types.hpp"

namespace omsp::tmk {

class HeapAllocator {
public:
  explicit HeapAllocator(std::size_t heap_bytes);

  // Allocate `bytes` aligned to `align` (a power of two). Returns
  // kNullGlobalAddr when the heap is exhausted.
  GlobalAddr allocate(std::size_t bytes, std::size_t align = 16);

  // Free a block previously returned by allocate. Coalesces with free
  // neighbours.
  void free(GlobalAddr addr);

  std::size_t bytes_in_use() const { return in_use_; }
  std::size_t bytes_total() const { return total_; }
  std::size_t allocation_count() const { return live_.size(); }

  // Size recorded for a live allocation (0 if unknown).
  std::size_t allocation_size(GlobalAddr addr) const;

private:
  std::size_t total_;
  std::size_t in_use_ = 0;
  // Free blocks by offset -> length. Adjacent blocks are always coalesced.
  std::map<GlobalAddr, std::size_t> free_blocks_;
  // Live allocations: user offset -> (block offset, block length).
  struct Live {
    GlobalAddr block;
    std::size_t length;
  };
  std::map<GlobalAddr, Live> live_;
};

} // namespace omsp::tmk
