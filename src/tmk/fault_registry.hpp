// Global SIGSEGV dispatch.
//
// TreadMarks detects shared-memory access misses with the VM hardware: an
// access to an invalid page raises SIGSEGV and the handler runs the
// consistency protocol. Because this reproduction hosts every context in one
// Linux process, a single process-wide handler looks up which context's
// application mapping contains the faulting address and forwards the fault.
//
// The registry supports multiple concurrent DSM systems (gtest runs many) and
// restores default disposition when the last region deregisters, so genuine
// bugs still crash loudly. Faults outside any registered region re-raise with
// default disposition.
#pragma once

#include <cstdint>

namespace omsp::tmk {

class FaultTarget {
public:
  virtual ~FaultTarget() = default;
  // Handle an access miss at `addr`. `is_write` derives from the fault's
  // error code. Called on the faulting thread, inside the signal handler.
  virtual void on_fault(void* addr, bool is_write) = 0;
};

class FaultRegistry {
public:
  // Register [base, base+bytes) as belonging to `target`. Installs the
  // process-wide SIGSEGV handler on first registration.
  static void add_region(void* base, std::size_t bytes, FaultTarget* target);
  static void remove_region(void* base);

  // Test hook: number of live regions.
  static std::size_t region_count();

  // Host CPU microseconds one SIGSEGV-mediated access miss costs outside the
  // handler (trap + signal delivery + sigreturn + instruction retry),
  // measured once per process. The virtual clock discounts this per fault so
  // kernel trap time is not mistaken for (cpu_scale-multiplied) application
  // compute.
  static double fault_trap_overhead_us();
};

} // namespace omsp::tmk
