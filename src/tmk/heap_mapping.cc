#include "tmk/heap_mapping.hpp"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "sim/virtual_clock.hpp"
#include "tmk/diff.hpp"
#include "trace/tracer.hpp"

namespace omsp::tmk {

namespace {

int make_memfd(std::size_t bytes) {
  int fd = static_cast<int>(::syscall(SYS_memfd_create, "omsp-heap", 0u));
  OMSP_CHECK_MSG(fd >= 0, "memfd_create failed");
  OMSP_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(bytes)) == 0,
                 "ftruncate failed");
  return fd;
}

int to_native(Protection p) {
  switch (p) {
  case Protection::kNone: return PROT_NONE;
  case Protection::kRead: return PROT_READ;
  case Protection::kReadWrite: return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

} // namespace

HeapMapping::HeapMapping(std::size_t bytes, bool alias, ContextId owner,
                         StatsBoard* stats, const sim::CostModel* cost)
    : bytes_(round_up(bytes, kHeapPageSize)), owner_(owner), stats_(stats),
      cost_(cost) {
  OMSP_CHECK(static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)) ==
             kHeapPageSize);
  // Both modes are memfd-backed so the runtime can always reach page
  // contents without relaxing the application mapping's protections; only
  // the persistent alias mapping is thread-mode-specific (§3.3.1).
  memfd_ = make_memfd(bytes_);
  void* app = ::mmap(nullptr, bytes_, PROT_READ, MAP_SHARED, memfd_, 0);
  OMSP_CHECK_MSG(app != MAP_FAILED, "app mapping failed");
  app_base_ = static_cast<std::uint8_t*>(app);
  if (alias) {
    void* rt =
        ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, memfd_, 0);
    OMSP_CHECK_MSG(rt != MAP_FAILED, "alias mapping failed");
    alias_base_ = static_cast<std::uint8_t*>(rt);
  }
}

HeapMapping::~HeapMapping() {
  if (app_base_ != nullptr) ::munmap(app_base_, bytes_);
  if (alias_base_ != nullptr) ::munmap(alias_base_, bytes_);
  if (memfd_ >= 0) ::close(memfd_);
}

void HeapMapping::snapshot_page(PageId page, std::uint8_t* out) const {
  OMSP_DCHECK(page < pages());
  if (alias_base_ != nullptr) {
    std::memcpy(out, alias_base_ + std::size_t{page} * kHeapPageSize,
                kHeapPageSize);
    return;
  }
  const off_t offset = static_cast<off_t>(page) * kHeapPageSize;
  void* window =
      ::mmap(nullptr, kHeapPageSize, PROT_READ, MAP_SHARED, memfd_, offset);
  OMSP_CHECK_MSG(window != MAP_FAILED, "snapshot window mmap failed");
  std::memcpy(out, window, kHeapPageSize);
  ::munmap(window, kHeapPageSize);
}

void HeapMapping::protect(PageId page, Protection prot) {
  OMSP_DCHECK(page < pages());
  const int rc = ::mprotect(app_page(page), kHeapPageSize, to_native(prot));
  OMSP_CHECK_MSG(rc == 0, "mprotect failed");
  if (stats_ != nullptr) stats_->add(Counter::kMprotect);
  OMSP_TRACE_EVENT(kMprotect, owner_, page, static_cast<std::uint64_t>(prot));
  if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
    clock->charge(cost_->mprotect_us);
}

} // namespace omsp::tmk
