#include "tmk/heap_mapping.hpp"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "sim/virtual_clock.hpp"
#include "tmk/diff.hpp"
#include "trace/tracer.hpp"

namespace omsp::tmk {

namespace {

int make_memfd(std::size_t bytes) {
  int fd = static_cast<int>(::syscall(SYS_memfd_create, "omsp-heap", 0u));
  OMSP_CHECK_MSG(fd >= 0, "memfd_create failed");
  OMSP_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(bytes)) == 0,
                 "ftruncate failed");
  return fd;
}

int to_native(Protection p) {
  switch (p) {
  case Protection::kNone: return PROT_NONE;
  case Protection::kRead: return PROT_READ;
  case Protection::kReadWrite: return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

} // namespace

HeapMapping::HeapMapping(std::size_t bytes, bool alias, ContextId owner,
                         StatsBoard* stats, const sim::CostModel* cost)
    : bytes_(round_up(bytes, kHeapPageSize)), modeled_alias_(alias),
      owner_(owner), stats_(stats), cost_(cost) {
  OMSP_CHECK(static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)) ==
             kHeapPageSize);
  // Both modes are memfd-backed and dual-mapped on the host: the runtime
  // mapping stays read-write so protocol handlers — which run concurrently
  // with application threads here, unlike the original's interrupting SIGIO
  // handler — can read and update page contents without ever relaxing the
  // application mapping's protections. `alias` only selects whether the
  // MODELED machine has the persistent alias (thread mode, §3.3.1) or pays
  // the original's write-enable mprotects (process mode, via
  // charge_protect).
  memfd_ = make_memfd(bytes_);
  void* app = ::mmap(nullptr, bytes_, PROT_READ, MAP_SHARED, memfd_, 0);
  OMSP_CHECK_MSG(app != MAP_FAILED, "app mapping failed");
  app_base_ = static_cast<std::uint8_t*>(app);
  void* rt =
      ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, memfd_, 0);
  OMSP_CHECK_MSG(rt != MAP_FAILED, "runtime mapping failed");
  runtime_base_ = static_cast<std::uint8_t*>(rt);
}

HeapMapping::~HeapMapping() {
  if (app_base_ != nullptr) ::munmap(app_base_, bytes_);
  if (runtime_base_ != nullptr) ::munmap(runtime_base_, bytes_);
  if (memfd_ >= 0) ::close(memfd_);
}

void HeapMapping::snapshot_page(PageId page, std::uint8_t* out) const {
  OMSP_DCHECK(page < pages());
  std::memcpy(out, runtime_base_ + std::size_t{page} * kHeapPageSize,
              kHeapPageSize);
}

void HeapMapping::protect(PageId page, Protection prot) {
  OMSP_DCHECK(page < pages());
  const int rc = ::mprotect(app_page(page), kHeapPageSize, to_native(prot));
  OMSP_CHECK_MSG(rc == 0, "mprotect failed");
  charge_protect(page, prot);
}

void HeapMapping::charge_protect(PageId page, Protection prot) {
  OMSP_DCHECK(page < pages());
  if (stats_ != nullptr) stats_->add(Counter::kMprotect);
  OMSP_TRACE_EVENT(kMprotect, owner_, page, static_cast<std::uint64_t>(prot));
  if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
    clock->charge(cost_->mprotect_us);
}

} // namespace omsp::tmk
